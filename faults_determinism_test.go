package abenet_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"abenet"
	"abenet/internal/simtime"
)

// goldenFaultEnv is the pinned (Env, Plan, seed) triple: every fault axis
// is active at once — stochastic loss/duplication/reorder, stochastic
// crash-recovery churn, a scripted crash with recovery, a link outage and
// a partition with heal — under KeepRunning so the full horizon is
// exercised.
func goldenFaultEnv() (abenet.Env, abenet.Protocol) {
	plan := &abenet.FaultPlan{
		Loss: 0.1, Duplicate: 0.05, Reorder: 0.1,
		CrashRate: 0.01, RecoverRate: 0.05,
		Events: append(
			abenet.PartitionDuring(40, 80, 0, 1, 2, 3),
			abenet.CrashAt(25, 5),
			abenet.RecoverAt(55, 5),
			abenet.LinkDownAt(10, 2, 3),
			abenet.LinkUpAt(30, 2, 3),
		),
	}
	env := abenet.Env{N: 8, Seed: 2024, Horizon: simtime.Time(300), Faults: plan}
	return env, abenet.Election{KeepRunning: true}
}

// TestGoldenFaultRun pins the exact trajectory of the golden fault run:
// a fault-injected run is a pure function of (Env, Plan, seed), so these
// literals only change when the kernel, RNG derivation tree or fault
// semantics change — which must be deliberate and explained in the same
// commit (the fault analogue of core's TestGoldenSeeds).
func TestGoldenFaultRun(t *testing.T) {
	env, proto := goldenFaultEnv()
	rep, err := abenet.Run(env, proto)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults == nil {
		t.Fatal("no fault telemetry")
	}
	tel := rep.Faults
	got := map[string]int{
		"messages":          int(rep.Messages),
		"leaders":           rep.Leaders,
		"violations":        len(rep.Violations),
		"dropped":           int(tel.MessagesDropped),
		"duplicated":        int(tel.MessagesDuplicated),
		"delayed":           int(tel.MessagesDelayed),
		"link_drops":        int(tel.LinkDrops),
		"dead_letters":      int(tel.DeadLetters),
		"timers_suppressed": int(tel.TimersSuppressed),
		"crashes":           tel.Crashes,
		"recoveries":        tel.Recoveries,
		"intervals":         len(tel.CrashIntervals),
	}
	want := map[string]int{
		"messages":          31,
		"leaders":           0,
		"violations":        0,
		"dropped":           3,
		"duplicated":        2,
		"delayed":           3,
		"link_drops":        1,
		"dead_letters":      1,
		"timers_suppressed": 23,
		"crashes":           23,
		"recoveries":        19,
		"intervals":         23,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("golden fault run drifted:\n got:  %v\n want: %v", got, want)
	}
	if ts := fmt.Sprintf("%.9g", rep.Time); ts != "300" {
		t.Errorf("time = %s, want the full horizon 300", ts)
	}
	// The first (stochastic) interval's exact bit pattern is the strongest
	// indicator that the fault RNG derivation tree is unchanged.
	if s := fmt.Sprintf("%.9g..%.9g", tel.CrashIntervals[0].Start, tel.CrashIntervals[0].End); s != "11.3214437..16.5883277" {
		t.Errorf("first crash interval = %s, want 11.3214437..16.5883277", s)
	}
	// The scripted crash of node 5 at t=25 keeps its full window to the
	// scripted recovery at t=55: stochastic churn only recovers outages it
	// caused, never a scripted one.
	scripted := false
	for _, iv := range tel.CrashIntervals {
		if iv.Node == 5 && iv.Start == 25 {
			scripted = true
			if iv.End != 55 {
				t.Errorf("scripted outage of node 5 ended at %g, want the scripted recovery at 55", iv.End)
			}
		}
	}
	if !scripted {
		t.Error("scripted crash of node 5 at t=25 missing from the intervals")
	}
	// Crash-stop tails: the run ends with nodes still down (End = -1).
	open := 0
	for _, iv := range tel.CrashIntervals {
		if iv.End == -1 {
			open++
		}
	}
	if open != tel.Crashes-tel.Recoveries {
		t.Errorf("%d open intervals for %d unrecovered crashes", open, tel.Crashes-tel.Recoveries)
	}
}

// TestFaultRunByteIdentical asserts byte-identical Reports (fault
// telemetry included) for the fixed triple across two sequential runs and
// a concurrent pair — the latter exercising the determinism contract under
// the race detector, where sweep workers share graphs and plans.
func TestFaultRunByteIdentical(t *testing.T) {
	env, proto := goldenFaultEnv()
	runOnce := func() abenet.Report {
		rep, err := abenet.Run(env, proto)
		if err != nil {
			t.Error(err)
		}
		return rep
	}

	// render flattens a report to bytes with the telemetry dereferenced
	// (a *Telemetry field would otherwise render as a pointer address),
	// so "byte-identical" means every field including float bit patterns.
	render := func(rep abenet.Report) string {
		flat := rep
		flat.Faults = nil
		return fmt.Sprintf("%#v|%#v", flat, *rep.Faults)
	}

	first, second := runOnce(), runOnce()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("sequential runs diverged:\n a: %+v\n b: %+v", first, second)
	}
	if a, b := render(first), render(second); a != b {
		t.Fatalf("rendered reports diverged:\n a: %s\n b: %s", a, b)
	}

	// Concurrent runs sharing the same Env and *Plan (as sweep workers
	// do) must neither race nor diverge.
	const workers = 4
	reports := make([]abenet.Report, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i] = runOnce()
		}(i)
	}
	wg.Wait()
	for i, rep := range reports {
		if !reflect.DeepEqual(rep, first) {
			t.Fatalf("concurrent run %d diverged:\n got:  %+v\n want: %+v", i, rep, first)
		}
	}
}
