module abenet

go 1.24
