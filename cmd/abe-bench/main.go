// Command abe-bench regenerates the paper's full experiment suite
// (E1..E12, DESIGN.md §5), printing each experiment's table and writing
// CSVs for plotting. EXPERIMENTS.md records a full run's output.
//
// Usage:
//
//	abe-bench [-quick] [-seed N] [-only E3,E7] [-csv DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"abenet/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abe-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	quick := flag.Bool("quick", false, "use reduced sweeps and repetitions")
	seed := flag.Uint64("seed", 1, "base seed for all repetitions")
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV files (optional)")
	flag.Parse()

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	opt := experiments.Options{Quick: *quick, Seed: *seed}
	failures := 0
	for _, exp := range experiments.All() {
		if len(selected) > 0 && !selected[exp.ID] {
			continue
		}
		start := time.Now()
		res, err := exp.Run(opt)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		fmt.Printf("=== %s: %s\n", res.ID, exp.Name)
		fmt.Printf("claim: %s\n\n", res.Claim)
		for _, table := range res.Tables() {
			if err := table.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		fmt.Printf("findings:")
		for name, v := range res.Findings {
			fmt.Printf(" %s=%.4g", name, v)
		}
		status := "REPRODUCED"
		if !res.Pass {
			status = "NOT REPRODUCED"
			failures++
		}
		fmt.Printf("\nstatus: %s (%.1fs)\n\n", status, time.Since(start).Seconds())

		if *csvDir != "" {
			if err := writeCSVs(*csvDir, res); err != nil {
				return err
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiments did not reproduce their claims", failures)
	}
	return nil
}

func writeCSVs(dir string, res experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, table := range res.Tables() {
		name := strings.ToLower(res.ID)
		if i > 0 {
			name = fmt.Sprintf("%s_part%d", name, i+1)
		}
		path := filepath.Join(dir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := table.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
