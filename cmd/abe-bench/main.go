// Command abe-bench regenerates the paper's full experiment suite
// (E1..E14, DESIGN.md §5), printing each experiment's table and writing
// CSVs for plotting. EXPERIMENTS.md records a full run's output.
//
// With -proto it instead sweeps any registry protocol over network sizes
// through the unified Env/Protocol API — the generic (protocol × env)
// door that needs no per-protocol code here at all. With -spec it runs a
// declarative scenario file's sweep block (the internal/spec JSON schema),
// through the same harness path abe-serve uses.
//
// Usage:
//
//	abe-bench [-quick] [-seed N] [-only E3,E7] [-csv DIR] [-workers N]
//	abe-bench -proto chang-roberts [-sizes 8,16,32,64] [-reps 50] [-seed N]
//	abe-bench -spec scenario.json [-seed N] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"abenet"
	"abenet/internal/experiments"
	"abenet/internal/harness"
	"abenet/internal/spec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abe-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	quick := flag.Bool("quick", false, "use reduced sweeps and repetitions")
	seed := flag.Uint64("seed", 1, "base seed for all repetitions")
	scheduler := flag.String("scheduler", "", "kernel event scheduler for -proto/-spec sweeps: heap or calendar (default heap; results are byte-identical either way)")
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV files (optional)")
	proto := flag.String("proto", "", "sweep this registry protocol by name instead of the experiment suite")
	sizes := flag.String("sizes", "8,16,32,64", "network sizes for the -proto sweep")
	reps := flag.Int("reps", 50, "repetitions per size for the -proto sweep")
	workers := flag.Int("workers", 0, "sweep parallelism (0 = GOMAXPROCS); results are identical for any value")
	specPath := flag.String("spec", "", "run this scenario file's sweep block instead of the experiment suite")
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if *specPath != "" {
		// The spec states the scenario; flags that would fight it are
		// rejected rather than silently losing. -seed overrides the run,
		// -workers the parallelism.
		var clash []string
		for _, name := range []string{"proto", "quick", "only", "csv", "sizes", "reps"} {
			if set[name] {
				clash = append(clash, "-"+name)
			}
		}
		if len(clash) > 0 {
			sort.Strings(clash)
			return fmt.Errorf("-spec states the scenario; drop %v (only -seed, -scheduler and -workers combine with it)", clash)
		}
		var seedOverride *uint64
		if set["seed"] {
			seedOverride = seed
		}
		// The scheduler, like the seed, is not part of the scenario
		// identity (results are byte-identical across schedulers), so the
		// flag composes with a spec file as an override.
		var schedOverride *string
		if set["scheduler"] {
			schedOverride = scheduler
		}
		return specSweep(*specPath, *workers, seedOverride, schedOverride)
	}
	if *proto != "" {
		return protocolSweep(*proto, *sizes, *reps, *seed, *scheduler, *workers)
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	opt := experiments.Options{Quick: *quick, Seed: *seed, Workers: *workers}
	failures := 0
	for _, exp := range experiments.All() {
		if len(selected) > 0 && !selected[exp.ID] {
			continue
		}
		start := time.Now()
		res, err := exp.Run(opt)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		fmt.Printf("=== %s: %s\n", res.ID, exp.Name)
		fmt.Printf("claim: %s\n\n", res.Claim)
		for _, table := range res.Tables() {
			if err := table.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		fmt.Printf("findings:")
		for name, v := range res.Findings {
			fmt.Printf(" %s=%.4g", name, v)
		}
		status := "REPRODUCED"
		if !res.Pass {
			status = "NOT REPRODUCED"
			failures++
		}
		fmt.Printf("\nstatus: %s (%.1fs)\n\n", status, time.Since(start).Seconds())

		if *csvDir != "" {
			if err := writeCSVs(*csvDir, res); err != nil {
				return err
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiments did not reproduce their claims", failures)
	}
	return nil
}

// specSweep runs a scenario file's sweep block and renders the table —
// the CLI face of the same (spec → harness.Sweep) path abe-serve runs, so
// the numbers match a POST /v1/runs of the same file byte for byte.
func specSweep(path string, workers int, seedOverride *uint64, schedOverride *string) error {
	s, err := spec.DecodeFile(path)
	if err != nil {
		return err
	}
	if s.Sweep == nil {
		return fmt.Errorf("%s has no sweep block; run it with abe-elect -spec", path)
	}
	if seedOverride != nil {
		s.Env.Seed = *seedOverride
	}
	if schedOverride != nil {
		s.Env.Scheduler = *schedOverride
	}
	hash, err := s.Hash()
	if err != nil {
		return err
	}
	points, err := s.RunSweep(workers)
	if err != nil {
		return err
	}
	// The table honours the spec's metrics filter (same view as abe-elect
	// -spec and abe-serve); the growth fit reads the unfiltered points so
	// it works even when "messages" is not among the kept columns.
	reps := s.Sweep.Repetitions
	if reps == 0 {
		reps = harness.DefaultRepetitions
	}
	table := abenet.PointsTable(fmt.Sprintf("%s over %d seeds per size (spec %s)",
		s.Protocol.Name, reps, hash[:12]), "n",
		spec.FilterPoints(points, s.Sweep.Metrics))
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	if fit, err := abenet.GrowthExponent(points, "messages"); err == nil {
		fmt.Printf("\nmessage growth exponent: %.3f (R²=%.4f)\n", fit.Slope, fit.R2)
	}
	return nil
}

// protocolSweep runs any registered protocol over the given sizes through
// the unified API and renders the aggregated points.
func protocolSweep(name, sizeList string, reps int, seed uint64, scheduler string, workers int) error {
	var xs []float64
	for _, f := range strings.Split(sizeList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return fmt.Errorf("bad size %q: %w", f, err)
		}
		xs = append(xs, float64(v))
	}
	sweep := abenet.Sweep{Name: "abe-bench/" + name, Repetitions: reps, Seed: seed, Workers: workers}
	points, err := sweep.RunProtocol(name, abenet.Env{Scheduler: scheduler}, xs, nil)
	if err != nil {
		return err
	}
	table := abenet.PointsTable(fmt.Sprintf("%s over %d seeds per size", name, reps), "n", points)
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	if fit, err := abenet.GrowthExponent(points, "messages"); err == nil {
		fmt.Printf("\nmessage growth exponent: %.3f (R²=%.4f)\n", fit.Slope, fit.R2)
	}
	return nil
}

func writeCSVs(dir string, res experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, table := range res.Tables() {
		name := strings.ToLower(res.ID)
		if i > 0 {
			name = fmt.Sprintf("%s_part%d", name, i+1)
		}
		path := filepath.Join(dir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := table.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
