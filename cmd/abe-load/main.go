// Command abe-load replays concurrent scenario submissions against an
// abe-serve instance and reports latency percentiles, throughput, and the
// per-tier cache hit rate — the load harness behind the serving tier's
// "every cached byte is exactly reusable" claim: runs are pure functions
// of (scenario, seed), so repeats must be served without simulating.
//
// By default it starts an in-process server (the full HTTP stack on a
// loopback listener) and drives it; -url points it at a remote abe-serve
// instead. The workload is a deterministic mix of fresh submissions
// (unique seeds over the spec corpus) and repeats of earlier submissions,
// controlled by -repeat and -seed.
//
// Usage:
//
//	abe-load [-n 200] [-c 8] [-repeat 0.5] [-seed 1] [-specs examples/specs]
//	         [-sweeps] [-url http://host:8080] [-store DIR] [-label AbeLoad]
//	         [-workers 0] [-queue 256] [-timeout 2m]
//
// Stdout carries one benchmark-formatted line, so CI can pipe it through
// internal/tools/benchjson into a committed BENCH_*.json; the human
// summary goes to stderr:
//
//	go run ./cmd/abe-load -n 200 | go run ./internal/tools/benchjson > BENCH_pr6.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"abenet/internal/runner"
	"abenet/internal/service"
	"abenet/internal/spec"
	"abenet/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abe-load:", err)
		os.Exit(1)
	}
}

// scenario is one submittable spec: the raw bytes POSTed and the decoded
// form (for its protocol name).
type scenario struct {
	name string
	raw  json.RawMessage
}

// request is one planned submission.
type request struct {
	scenario int
	seed     uint64
}

// outcome is one completed submission's measurement.
type outcome struct {
	latency  time.Duration
	hit      bool // served with CacheHits > 0 (no simulation for this client)
	rejected bool // 503: queue full or admission control
	failed   bool // transport error, non-2xx/503, or a failed job
}

func run() error {
	n := flag.Int("n", 200, "total submissions to replay")
	c := flag.Int("c", 8, "concurrent clients")
	repeat := flag.Float64("repeat", 0.5, "fraction of submissions that repeat an earlier (scenario, seed)")
	seed := flag.Uint64("seed", 1, "workload seed (request mix and fresh-run seeds)")
	specsDir := flag.String("specs", "examples/specs", "directory of scenario spec fixtures")
	sweeps := flag.Bool("sweeps", false, "include sweep specs in the corpus (slower per request)")
	url := flag.String("url", "", "remote abe-serve base URL (empty = start an in-process server)")
	storeDir := flag.String("store", "", "in-process server: persistent result-store directory")
	workers := flag.Int("workers", 0, "in-process server: job executors (0 = 2)")
	queue := flag.Int("queue", 256, "in-process server: queued-job bound")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request timeout")
	label := flag.String("label", "AbeLoad", "benchmark name suffix on the stdout line (Benchmark<label>)")
	metricsURL := flag.String("metrics-url", "", `Prometheus endpoint to scrape before/after and diff ("auto" = the driven server's /metrics)`)
	flag.Parse()

	if *n <= 0 || *c <= 0 {
		return fmt.Errorf("need positive -n and -c (got %d, %d)", *n, *c)
	}
	if *repeat < 0 || *repeat >= 1 {
		return fmt.Errorf("-repeat %g outside [0, 1)", *repeat)
	}

	corpus, err := loadCorpus(*specsDir, *sweeps)
	if err != nil {
		return err
	}

	base := *url
	if base == "" {
		shutdown, addr, err := startServer(*workers, *queue, *storeDir)
		if err != nil {
			return err
		}
		defer shutdown()
		base = "http://" + addr
	}
	base = strings.TrimSuffix(base, "/")
	client := &http.Client{Timeout: *timeout}

	before, err := fetchStats(client, base)
	if err != nil {
		return fmt.Errorf("server not reachable at %s: %w", base, err)
	}
	scrapeURL := *metricsURL
	if scrapeURL == "auto" {
		scrapeURL = base + "/metrics"
	}
	var promBefore map[string]float64
	if scrapeURL != "" {
		if promBefore, err = scrapeMetrics(client, scrapeURL); err != nil {
			return fmt.Errorf("metrics endpoint not reachable at %s: %w", scrapeURL, err)
		}
	}

	plan := planRequests(*n, *repeat, *seed, len(corpus))

	// Replay: c clients drain the plan; each submission is synchronous
	// (wait=true), so latency covers queueing + execution or cache serve.
	jobs := make(chan request)
	outcomes := make([]outcome, *n)
	var idx struct {
		sync.Mutex
		next int
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range jobs {
				o := submit(client, base, corpus[req.scenario].raw, req.seed)
				idx.Lock()
				outcomes[idx.next] = o
				idx.next++
				idx.Unlock()
			}
		}()
	}
	for _, req := range plan {
		jobs <- req
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	after, err := fetchStats(client, base)
	if err != nil {
		return err
	}
	var promDeltas map[string]float64
	if scrapeURL != "" {
		promAfter, err := scrapeMetrics(client, scrapeURL)
		if err != nil {
			return err
		}
		promDeltas = metricDeltas(promBefore, promAfter)
	}
	return report(*label, outcomes, elapsed, before, after, promDeltas, corpus, *n, *c, *repeat)
}

// loadCorpus decodes every deterministic spec fixture in dir. Sweep specs
// are included only on request; nondeterministic protocols are always
// skipped (their results are never cacheable, so they measure nothing the
// harness cares about).
func loadCorpus(dir string, includeSweeps bool) ([]scenario, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var corpus []scenario
	for _, path := range paths {
		sp, err := spec.DecodeFile(path)
		if err != nil {
			return nil, err
		}
		if info, ok := runner.ProtocolInfo(sp.Protocol.Name); !ok || !info.Deterministic {
			continue
		}
		if sp.Sweep != nil && !includeSweeps {
			continue
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		corpus = append(corpus, scenario{name: filepath.Base(path), raw: raw})
	}
	if len(corpus) == 0 {
		return nil, fmt.Errorf("no usable spec fixtures in %s", dir)
	}
	return corpus, nil
}

// planRequests builds the deterministic workload: each slot is a repeat of
// an earlier planned submission with probability repeatFrac (once one
// exists), otherwise a fresh (scenario, seed) pair. Note a repeat replayed
// concurrently with its original may coalesce onto the in-flight job
// instead of hitting the cache — both mean "no second simulation".
func planRequests(n int, repeatFrac float64, seed uint64, scenarios int) []request {
	rng := rand.New(rand.NewSource(int64(seed)))
	plan := make([]request, 0, n)
	nextSeed := seed*1_000_003 + 17
	for i := 0; i < n; i++ {
		if len(plan) > 0 && rng.Float64() < repeatFrac {
			plan = append(plan, plan[rng.Intn(len(plan))])
			continue
		}
		plan = append(plan, request{scenario: rng.Intn(scenarios), seed: nextSeed})
		nextSeed++
	}
	return plan
}

// startServer runs the full serving stack in-process on a loopback
// listener, so the harness measures the same code path a remote client
// sees, network stack included.
func startServer(workers, queue int, storeDir string) (shutdown func(), addr string, err error) {
	var persist store.Store[*service.Result]
	if storeDir != "" {
		disk, err := store.OpenDisk[*service.Result](storeDir)
		if err != nil {
			return nil, "", err
		}
		persist = disk
	}
	svc := service.New(service.Options{Workers: workers, QueueDepth: queue, Persist: persist})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Close()
		return nil, "", err
	}
	srv := &http.Server{Handler: service.NewHandler(svc, service.HandlerOptions{})}
	go func() { _ = srv.Serve(ln) }()
	shutdown = func() {
		_ = srv.Close()
		svc.Close()
	}
	return shutdown, ln.Addr().String(), nil
}

// submit POSTs one synchronous run and classifies the outcome.
func submit(client *http.Client, base string, raw json.RawMessage, seed uint64) outcome {
	body, _ := json.Marshal(map[string]any{"spec": raw, "seed": seed, "wait": true})
	t0 := time.Now()
	resp, err := client.Post(base+"/v1/runs", "application/json", bytes.NewReader(body))
	o := outcome{latency: time.Since(t0)}
	if err != nil {
		o.failed = true
		return o
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		o.rejected = true
		return o
	case resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted:
		o.failed = true
		return o
	}
	var v service.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		o.failed = true
		return o
	}
	o.latency = time.Since(t0)
	o.hit = v.CacheHits > 0
	if v.Status != service.StatusDone {
		o.failed = true
	}
	return o
}

// scrapeMetrics reads a Prometheus text-format endpoint into a flat
// series → value map (the metric name with its rendered label set, e.g.
// `abe_cache_hits_total{tier="memory"}`). Sample lines are
// `name value [timestamp]` — the optional trailing millisecond timestamp
// is ignored, and label values may contain spaces. Comment and blank lines
// are skipped; an unparsable sample line is an error — a scrape target
// that is not actually Prometheus-shaped should fail loudly, not diff as
// zeros.
func scrapeMetrics(client *http.Client, url string) (map[string]float64, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Split the series name from the trailing fields. Label values may
		// contain spaces, but never an unescaped `}`, and the value and
		// timestamp that follow the label set are bare numbers — so the
		// last `}` on the line closes the label set.
		var name string
		var fields []string
		if i := strings.LastIndexByte(line, '}'); i >= 0 {
			name = line[:i+1]
			fields = strings.Fields(line[i+1:])
		} else if all := strings.Fields(line); len(all) >= 2 {
			name, fields = all[0], all[1:]
		}
		if name == "" || len(fields) < 1 || len(fields) > 2 {
			return nil, fmt.Errorf("scrape %s: unparsable sample line %q", url, line)
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("scrape %s: sample line %q: %w", url, line, err)
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// metricDeltas diffs two scrapes, keeping only series that moved. Series
// absent from the first scrape count from zero (counters with labels often
// appear on first increment).
func metricDeltas(before, after map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// fetchStats reads the server's /healthz counters.
func fetchStats(client *http.Client, base string) (service.Stats, error) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return service.Stats{}, err
	}
	defer resp.Body.Close()
	var health struct {
		Stats service.Stats `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return service.Stats{}, err
	}
	return health.Stats, nil
}

// report prints the stderr summary and the stdout benchmark line, and
// fails if any submission failed outright.
func report(label string, outcomes []outcome, elapsed time.Duration, before, after service.Stats, promDeltas map[string]float64, corpus []scenario, n, c int, repeatFrac float64) error {
	lat := make([]time.Duration, 0, len(outcomes))
	var hits, rejected, failed int
	var total time.Duration
	for _, o := range outcomes {
		if o.failed {
			failed++
			continue
		}
		if o.rejected {
			rejected++
			continue
		}
		lat = append(lat, o.latency)
		total += o.latency
		if o.hit {
			hits++
		}
	}
	if len(lat) == 0 {
		return fmt.Errorf("no submission succeeded (%d rejected, %d failed)", rejected, failed)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p50 := percentile(lat, 0.50)
	p99 := percentile(lat, 0.99)
	mean := total / time.Duration(len(lat))
	rps := float64(len(lat)) / elapsed.Seconds()

	served := len(lat)
	memHits := after.MemoryHits - before.MemoryHits
	storeHits := after.StoreHits - before.StoreHits
	hitRate := float64(hits) / float64(served)
	memRate := float64(memHits) / float64(served)
	storeRate := float64(storeHits) / float64(served)

	names := make([]string, len(corpus))
	for i, s := range corpus {
		names[i] = s.name
	}
	fmt.Fprintf(os.Stderr, "abe-load: %d requests, %d concurrent, repeat fraction %.2f, corpus %v\n",
		n, c, repeatFrac, names)
	fmt.Fprintf(os.Stderr, "  latency    p50 %s  p99 %s  mean %s\n", p50, p99, mean)
	fmt.Fprintf(os.Stderr, "  throughput %.1f req/s (%d served in %s)\n", rps, served, elapsed.Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "  cache      client-visible hit rate %.3f; server tiers: memory %d, store %d (entries: %d mem, %d store)\n",
		hitRate, memHits, storeHits, after.CacheEntries, after.StoreEntries)
	if rejected > 0 || failed > 0 {
		fmt.Fprintf(os.Stderr, "  degraded   %d rejected (503), %d failed\n", rejected, failed)
	}
	if promDeltas != nil {
		// Counter deltas across the run, from the scraped /metrics endpoint
		// (counters only: gauge movements across a whole run are noise).
		keys := make([]string, 0, len(promDeltas))
		for k := range promDeltas {
			if strings.Contains(k, "_total") {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		if len(keys) == 0 {
			fmt.Fprintf(os.Stderr, "  metrics    no counter moved during the run\n")
		}
		for _, k := range keys {
			fmt.Fprintf(os.Stderr, "  metrics    %s +%g\n", k, promDeltas[k])
		}
	}

	// One benchmark-shaped line for internal/tools/benchjson.
	fmt.Printf("Benchmark%s %d %d ns/op %d p50-ns %d p99-ns %.1f req/s %.3f hit-rate %.3f mem-hit-rate %.3f store-hit-rate\n",
		label, served, mean.Nanoseconds(), p50.Nanoseconds(), p99.Nanoseconds(), rps, hitRate, memRate, storeRate)

	if failed > 0 {
		return fmt.Errorf("%d of %d submissions failed", failed, n)
	}
	return nil
}

// percentile returns the q-quantile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
