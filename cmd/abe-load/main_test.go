package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestScrapeMetricsParsesTextFormat pins the scrape parser against the
// Prometheus text-format corners -metrics-url can point it at: optional
// trailing timestamps, label values containing spaces and braces, and
// comment/blank lines.
func TestScrapeMetricsParsesTextFormat(t *testing.T) {
	body := `# HELP abe_jobs_total jobs by state
# TYPE abe_jobs_total counter
abe_jobs_total{state="done"} 12
abe_jobs_total{state="failed"} 0 1691400000000
abe_cache_hits_total{tier="memory",note="a b}c"} 7.5
abe_queue_depth 3

abe_uptime_seconds 42.25 1691400000123
`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(body))
	}))
	defer srv.Close()

	got, err := scrapeMetrics(srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		`abe_jobs_total{state="done"}`:                     12,
		`abe_jobs_total{state="failed"}`:                   0,
		`abe_cache_hits_total{tier="memory",note="a b}c"}`: 7.5,
		"abe_queue_depth":                                  3,
		"abe_uptime_seconds":                               42.25,
	}
	if len(got) != len(want) {
		t.Fatalf("scraped %d series, want %d: %v", len(got), len(want), got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("series %q = %g, want %g", k, got[k], v)
		}
	}
}

// TestScrapeMetricsRejectsNonPrometheus: a target that is not actually
// Prometheus-shaped must fail loudly, not diff as zeros.
func TestScrapeMetricsRejectsNonPrometheus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer srv.Close()
	if _, err := scrapeMetrics(srv.Client(), srv.URL); err == nil {
		t.Fatal("JSON body scraped without error")
	}

	srv2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("abe_x 1 2 3\n"))
	}))
	defer srv2.Close()
	if _, err := scrapeMetrics(srv2.Client(), srv2.URL); err == nil {
		t.Fatal("sample line with trailing garbage scraped without error")
	}
}

// TestMetricDeltas pins the diff: only moved series survive, and series
// absent from the first scrape count from zero.
func TestMetricDeltas(t *testing.T) {
	before := map[string]float64{"a": 1, "b": 5}
	after := map[string]float64{"a": 4, "b": 5, "c": 2}
	got := metricDeltas(before, after)
	want := map[string]float64{"a": 3, "c": 2}
	if len(got) != len(want) || got["a"] != 3 || got["c"] != 2 {
		t.Fatalf("deltas = %v, want %v", got, want)
	}
}
