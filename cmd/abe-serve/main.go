// Command abe-serve serves ABE scenario runs over HTTP: POST a scenario
// spec (the internal/spec JSON schema), get back the run's report and
// metrics — computed once per (spec hash, seed), served from the two-tier
// result cache (memory LRU in front of an optional persistent disk store)
// on every resubmission, across restarts when -store is set.
//
// Usage:
//
//	abe-serve [-addr :8080] [-workers 2] [-sweep-workers 0]
//	          [-queue 64] [-cache 1024] [-store DIR]
//	          [-max-body 1048576] [-submit-rate 0] [-submit-burst 0]
//	          [-log-format text|json] [-pprof ADDR]
//
// API:
//
//	POST   /v1/runs             {"spec": {...}, "seed": 7, "wait": true}
//	GET    /v1/runs/{id}        job status / result
//	GET    /v1/runs/{id}/events progress stream (Server-Sent Events)
//	GET    /v1/runs/{id}/trace  causal trace (?format=chrome|jsonl|text)
//	DELETE /v1/runs/{id}        cancel
//	GET    /v1/protocols        registry metadata (names, options, capabilities)
//	GET    /healthz             liveness + counters (?quick=1: status only)
//	GET    /metrics             counters in Prometheus text format
//
// Quickstart:
//
//	abe-serve -store /var/lib/abe &
//	curl -s localhost:8080/v1/runs -d '{"spec": '"$(cat examples/specs/election_ring.json)"', "wait": true}'
//	curl -N localhost:8080/v1/runs/<id>/events   # follow a job live
//	curl -s localhost:8080/metrics               # scrape the counters
//
// -pprof starts the net/http/pprof handlers on their own listener (and only
// there — nothing pprof-related is ever mounted on the public -addr mux):
//
//	abe-serve -pprof localhost:6060 &
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"abenet/internal/service"
	"abenet/internal/store"
)

// version is the build string /healthz reports; release builds override it
// with -ldflags "-X main.version=...".
var version = "0.9.0-dev"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abe-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent job executors (0 = 2)")
	sweepWorkers := flag.Int("sweep-workers", 0, "cap on per-sweep parallelism (0 = spec / GOMAXPROCS)")
	queue := flag.Int("queue", 0, "queued-job bound (0 = 64)")
	cache := flag.Int("cache", 0, "memory-tier result-cache entries (0 = 1024)")
	storeDir := flag.String("store", "", "persistent result-store directory (empty = memory only)")
	maxBody := flag.Int64("max-body", service.DefaultMaxBodyBytes, "POST body byte cap (requests beyond it get 413)")
	submitRate := flag.Float64("submit-rate", 0, "admission control: sustained fresh submissions/sec (0 = unlimited)")
	submitBurst := flag.Int("submit-burst", 0, "admission control burst (0 = 2×rate)")
	logFormat := flag.String("log-format", "text", "request log format: text or json")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (own listener; empty = off)")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return fmt.Errorf("unknown -log-format %q (text or json)", *logFormat)
	}
	logger := slog.New(handler)

	var persist store.Store[*service.Result]
	if *storeDir != "" {
		disk, err := store.OpenDisk[*service.Result](*storeDir)
		if err != nil {
			return err
		}
		log.Printf("abe-serve: persistent result store at %s (%d entries)", disk.Dir(), disk.Len())
		persist = disk
	}

	svc := service.New(service.Options{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		SweepWorkers: *sweepWorkers,
		Persist:      persist,
		SubmitRate:   *submitRate,
		SubmitBurst:  *submitBurst,
	})

	server := &http.Server{
		Addr: *addr,
		Handler: service.RequestLogger(logger,
			service.NewHandler(svc, service.HandlerOptions{MaxBodyBytes: *maxBody, Version: version})),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)

	// The profiling endpoints live on their own mux and listener: explicit
	// handler registration (never http.DefaultServeMux, which package pprof
	// pollutes on import) keeps them off the public API surface entirely.
	var pprofServer *http.Server
	if *pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofServer = &http.Server{Addr: *pprofAddr, Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			log.Printf("abe-serve: pprof on %s", *pprofAddr)
			if err := pprofServer.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				errc <- fmt.Errorf("pprof listener: %w", err)
			}
		}()
	}

	go func() {
		log.Printf("abe-serve: listening on %s", *addr)
		errc <- server.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Print("abe-serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if pprofServer != nil {
		_ = pprofServer.Shutdown(shutdownCtx)
	}
	if err := server.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	svc.Close()
	return nil
}
