// Command abe-serve serves ABE scenario runs over HTTP: POST a scenario
// spec (the internal/spec JSON schema), get back the run's report and
// metrics — computed once per (spec hash, seed), served from the two-tier
// result cache (memory LRU in front of an optional persistent disk store)
// on every resubmission, across restarts when -store is set.
//
// Usage:
//
//	abe-serve [-addr :8080] [-workers 2] [-sweep-workers 0]
//	          [-queue 64] [-cache 1024] [-store DIR]
//	          [-max-body 1048576] [-submit-rate 0] [-submit-burst 0]
//
// API:
//
//	POST   /v1/runs             {"spec": {...}, "seed": 7, "wait": true}
//	GET    /v1/runs/{id}        job status / result
//	GET    /v1/runs/{id}/events progress stream (Server-Sent Events)
//	DELETE /v1/runs/{id}        cancel
//	GET    /v1/protocols        registry metadata (names, options, capabilities)
//	GET    /healthz             liveness + counters (?quick=1: status only)
//	GET    /metrics             counters in Prometheus text format
//
// Quickstart:
//
//	abe-serve -store /var/lib/abe &
//	curl -s localhost:8080/v1/runs -d '{"spec": '"$(cat examples/specs/election_ring.json)"', "wait": true}'
//	curl -N localhost:8080/v1/runs/<id>/events   # follow a job live
//	curl -s localhost:8080/metrics               # scrape the counters
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"abenet/internal/service"
	"abenet/internal/store"
)

// version is the build string /healthz reports; release builds override it
// with -ldflags "-X main.version=...".
var version = "0.8.0-dev"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abe-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent job executors (0 = 2)")
	sweepWorkers := flag.Int("sweep-workers", 0, "cap on per-sweep parallelism (0 = spec / GOMAXPROCS)")
	queue := flag.Int("queue", 0, "queued-job bound (0 = 64)")
	cache := flag.Int("cache", 0, "memory-tier result-cache entries (0 = 1024)")
	storeDir := flag.String("store", "", "persistent result-store directory (empty = memory only)")
	maxBody := flag.Int64("max-body", service.DefaultMaxBodyBytes, "POST body byte cap (requests beyond it get 413)")
	submitRate := flag.Float64("submit-rate", 0, "admission control: sustained fresh submissions/sec (0 = unlimited)")
	submitBurst := flag.Int("submit-burst", 0, "admission control burst (0 = 2×rate)")
	flag.Parse()

	var persist store.Store[*service.Result]
	if *storeDir != "" {
		disk, err := store.OpenDisk[*service.Result](*storeDir)
		if err != nil {
			return err
		}
		log.Printf("abe-serve: persistent result store at %s (%d entries)", disk.Dir(), disk.Len())
		persist = disk
	}

	svc := service.New(service.Options{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		SweepWorkers: *sweepWorkers,
		Persist:      persist,
		SubmitRate:   *submitRate,
		SubmitBurst:  *submitBurst,
	})

	server := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(svc, service.HandlerOptions{MaxBodyBytes: *maxBody, Version: version}),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("abe-serve: listening on %s", *addr)
		errc <- server.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Print("abe-serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	svc.Close()
	return nil
}
