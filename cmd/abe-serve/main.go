// Command abe-serve serves ABE scenario runs over HTTP: POST a scenario
// spec (the internal/spec JSON schema), get back the run's report and
// metrics — computed once per (spec hash, seed) and served from the result
// cache on every resubmission.
//
// Usage:
//
//	abe-serve [-addr :8080] [-workers 2] [-sweep-workers 0]
//	          [-queue 64] [-cache 1024]
//
// API:
//
//	POST   /v1/runs        {"spec": {...}, "seed": 7, "wait": true}
//	GET    /v1/runs/{id}   job status / result
//	DELETE /v1/runs/{id}   cancel
//	GET    /v1/protocols   registry metadata (names, options, capabilities)
//	GET    /healthz        liveness + counters
//
// Quickstart:
//
//	abe-serve &
//	curl -s localhost:8080/v1/runs -d '{"spec": '"$(cat examples/specs/election_ring.json)"', "wait": true}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"abenet/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abe-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent job executors (0 = 2)")
	sweepWorkers := flag.Int("sweep-workers", 0, "cap on per-sweep parallelism (0 = spec / GOMAXPROCS)")
	queue := flag.Int("queue", 0, "queued-job bound (0 = 64)")
	cache := flag.Int("cache", 0, "result-cache entries (0 = 1024)")
	flag.Parse()

	svc := service.New(service.Options{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		SweepWorkers: *sweepWorkers,
	})

	server := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("abe-serve: listening on %s", *addr)
		errc <- server.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Print("abe-serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	svc.Close()
	return nil
}
