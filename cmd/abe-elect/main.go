// Command abe-elect runs one protocol from the registry on an ABE
// environment and reports what happened — optionally with a full message
// trace for the paper's election.
//
// Usage:
//
//	abe-elect [-proto election] [-topo ring] [-n 16] [-a0 0] [-seed 1]
//	          [-delay exp|det|uniform|pareto|arq] [-mean 1] [-drift 1]
//	          [-gamma 0] [-loss 0] [-crash 0] [-recover 0] [-horizon 0]
//	          [-trace] [-check] [-live]
//
// -proto accepts any registered protocol name (see -list); -topo accepts
// ring, biring, complete or hypercube (ring protocols run along the
// topology's embedded Hamiltonian cycle). -loss and -crash inject faults
// (message loss, node churn) into fault-capable protocols; lossy runs are
// bounded by -horizon, which defaults to 1000·δ when faults are injected
// so a deadlocked election terminates the simulation instead of the user.
package main

import (
	"flag"
	"fmt"
	"os"

	"abenet"
	"abenet/internal/simtime"
	"abenet/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abe-elect:", err)
		os.Exit(1)
	}
}

func run() error {
	proto := flag.String("proto", "election", "protocol to run (see -list)")
	list := flag.Bool("list", false, "list registered protocols and exit")
	topo := flag.String("topo", "ring", "topology: ring, biring, complete, hypercube")
	n := flag.Int("n", 16, "network size (hypercube rounds down to a power of two)")
	a0 := flag.Float64("a0", 0, "election activation parameter (0 = balanced default)")
	seed := flag.Uint64("seed", 1, "random seed")
	delayKind := flag.String("delay", "exp", "delay model: exp, det, uniform, pareto, arq")
	mean := flag.Float64("mean", 1, "expected link delay δ")
	drift := flag.Float64("drift", 1, "clock speed ratio s_high/s_low (1 = perfect clocks)")
	gamma := flag.Float64("gamma", 0, "expected processing time γ (0 = instantaneous)")
	loss := flag.Float64("loss", 0, "per-message loss probability in [0, 1) (fault injection)")
	crashRate := flag.Float64("crash", 0, "per-node exponential crash rate (fault injection)")
	recoverRate := flag.Float64("recover", 0, "crashed-node recovery rate (0 with -crash = crash-stop churn off)")
	horizon := flag.Float64("horizon", 0, "virtual-time bound (0 = unbounded, or 1000·δ when faults are on)")
	withTrace := flag.Bool("trace", false, "print the full message trace")
	withCheck := flag.Bool("check", false, "also model-check the election exhaustively at this size (n <= 5)")
	liveMode := flag.Bool("live", false, "run on real goroutines/channels instead of the simulator")
	flag.Parse()

	if *list {
		for _, name := range abenet.Protocols() {
			fmt.Println(name)
		}
		return nil
	}

	env := abenet.Env{Seed: *seed}
	switch *topo {
	case "ring":
		env.N = *n
	case "biring":
		env.Graph = abenet.BiRing(*n)
	case "complete":
		env.Graph = abenet.Complete(*n)
	case "hypercube":
		dim := 0
		for 1<<(dim+1) <= *n {
			dim++
		}
		env.Graph = abenet.Hypercube(dim)
	default:
		return fmt.Errorf("unknown topology %q", *topo)
	}
	size := env.N
	if env.Graph != nil {
		size = env.Graph.N() // hypercube rounds -n down to a power of two
	}

	switch *delayKind {
	case "exp":
		env.Delay = abenet.Exponential(*mean)
	case "det":
		env.Delay = abenet.Deterministic(*mean)
	case "uniform":
		env.Delay = abenet.Uniform(0, 2**mean)
	case "pareto":
		env.Delay = abenet.ParetoWithMean(*mean, 2)
	case "arq":
		// p = 0.5 with slots sized so the mean comes out right; declare
		// δ = slot/p so defaulted parameters (A0) stay balanced.
		env.Links = abenet.ARQLinks(0.5, *mean/2)
		env.Delta = *mean
	default:
		return fmt.Errorf("unknown delay model %q", *delayKind)
	}
	if *drift > 1 {
		env.Clocks = abenet.WanderingClocks(1, *drift, 1)
	} else if *drift < 1 {
		return fmt.Errorf("drift ratio %g must be >= 1", *drift)
	}
	if *gamma > 0 {
		env.Processing = abenet.Exponential(*gamma)
	}
	if *loss > 0 || *crashRate > 0 {
		env.Faults = &abenet.FaultPlan{
			Loss:        *loss,
			CrashRate:   *crashRate,
			RecoverRate: *recoverRate,
		}
	} else if *recoverRate > 0 {
		return fmt.Errorf("-recover %g needs -crash to recover from", *recoverRate)
	}
	if *horizon > 0 {
		env.Horizon = simtime.Time(*horizon)
	} else if env.Faults != nil {
		// Lossy runs can deadlock legitimately; bound them by default.
		env.Horizon = simtime.Time(1000 * *mean)
	}

	if *liveMode {
		rep, err := abenet.Run(env, abenet.LiveElection{A0: *a0})
		if err != nil {
			return err
		}
		fmt.Printf("live run on %d goroutines (real concurrency, wall-clock delays)\n", *n)
		fmt.Printf("leader   : node %d (of %d leaders)\n", rep.LeaderIndex, rep.Leaders)
		fmt.Printf("messages : %d\n", rep.Messages)
		fmt.Printf("elapsed  : %s\n", rep.Extra.(abenet.LiveExtra).Elapsed)
		return nil
	}

	protocol, ok := abenet.ProtocolByName(*proto)
	if !ok {
		return fmt.Errorf("unknown protocol %q (try -list)", *proto)
	}
	if *proto == "election" {
		protocol = abenet.Election{A0: *a0}
	}

	var rec *trace.Recorder
	if *withTrace {
		// Only the event-driven protocols have a message stream to trace.
		traceable := map[string]bool{
			"election": true, "itai-rodeh-async": true,
			"chang-roberts": true, "peterson": true,
		}
		if !traceable[*proto] {
			return fmt.Errorf("-trace is not supported for %q (round-engine and synchronizer protocols have no event stream)", *proto)
		}
		rec = trace.NewRecorder(0)
		env.Tracer = rec
	}

	rep, err := abenet.Run(env, protocol)
	if err != nil {
		return err
	}

	if rec != nil {
		if _, err := rec.WriteTo(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	fmt.Printf("protocol            : %s\n", rep.Protocol)
	fmt.Printf("environment         : %s(%d)\n", *topo, size)
	if rep.Params != (abenet.Params{}) {
		fmt.Printf("ABE parameters      : δ=%.3g  s∈[%.3g,%.3g]  γ=%.3g\n",
			rep.Params.Delta, rep.Params.SLow, rep.Params.SHigh, rep.Params.Gamma)
	}
	if rep.Elected || rep.Leaders > 0 {
		fmt.Printf("leader              : node %d (of %d leaders)\n", rep.LeaderIndex, rep.Leaders)
	}
	fmt.Printf("virtual time        : %.3f\n", rep.Time)
	fmt.Printf("messages            : %d (%.2f per node)\n", rep.Messages, float64(rep.Messages)/float64(size))
	if rep.Transmissions > 0 {
		fmt.Printf("transmissions       : %d\n", rep.Transmissions)
	}
	if rep.Rounds > 0 {
		fmt.Printf("rounds              : %d\n", rep.Rounds)
	}
	if extra, ok := rep.Extra.(abenet.ElectionExtra); ok {
		fmt.Printf("activations         : %d\n", extra.Activations)
		fmt.Printf("knockouts           : %d\n", extra.Knockouts)
	}
	if extra, ok := rep.Extra.(abenet.ClockSyncExtra); ok {
		fmt.Printf("round violations    : %d (rate %.4f, max lateness %d)\n",
			extra.RoundViolations, extra.ViolationRate, extra.MaxLateness)
	}
	if extra, ok := rep.Extra.(abenet.SyncExtra); ok {
		fmt.Printf("messages per round  : %.1f\n", extra.MessagesPerRound)
	}
	if tel := rep.Faults; tel != nil {
		fmt.Printf("faults injected     : %d (dropped %d, duplicated %d, delayed %d, dead letters %d, crashes %d)\n",
			tel.TotalFaults(), tel.MessagesDropped+tel.LinkDrops, tel.MessagesDuplicated,
			tel.MessagesDelayed, tel.DeadLetters, tel.Crashes)
		if tel.Crashes > 0 {
			fmt.Printf("node churn          : %d crashes, %d recoveries\n", tel.Crashes, tel.Recoveries)
			const maxIntervals = 10
			for i, iv := range tel.CrashIntervals {
				if i == maxIntervals {
					fmt.Printf("  ... %d more outages\n", len(tel.CrashIntervals)-maxIntervals)
					break
				}
				end := "end of run"
				if iv.End >= 0 {
					end = fmt.Sprintf("%.3f", iv.End)
				}
				fmt.Printf("  node %-3d down %.3f .. %s\n", iv.Node, iv.Start, end)
			}
		}
		if !rep.Elected && rep.Leaders == 0 {
			fmt.Printf("outcome             : no leader within the horizon (faults won this one)\n")
		}
	}
	if len(rep.Violations) > 0 {
		fmt.Printf("VIOLATIONS          : %v\n", rep.Violations)
	}

	if *withCheck {
		if *n > 5 {
			return fmt.Errorf("-check supports n <= 5 (state space), got %d", *n)
		}
		report, err := abenet.CheckElection(abenet.CheckOptions{N: *n})
		if err != nil {
			return err
		}
		verdict := "SAFE (exhaustive within 2 activations/node)"
		if !report.OK() {
			verdict = fmt.Sprintf("%d VIOLATIONS", len(report.Violations))
		}
		fmt.Printf("model check         : %s — %d states, %d with a leader\n",
			verdict, report.StatesExplored, report.LeaderStates)
	}
	return nil
}
