// Command abe-elect runs one protocol from the registry on an ABE
// environment and reports what happened — optionally with a full message
// trace for the paper's election.
//
// Usage:
//
//	abe-elect [-proto election] [-topo ring] [-n 16] [-a0 0] [-seed 1]
//	          [-delay exp|det|uniform|pareto|arq] [-mean 1] [-drift 1]
//	          [-gamma 0] [-loss 0] [-crash 0] [-recover 0] [-horizon 0]
//	          [-trace] [-trace-out FILE] [-trace-format chrome|jsonl|text]
//	          [-check] [-live] [-json]
//	abe-elect -spec scenario.json [-seed N] [-workers N] [-dry-run] [-json]
//
// -proto accepts any registered protocol name (see -list); -topo accepts
// ring, biring, complete or hypercube (ring protocols run along the
// topology's embedded Hamiltonian cycle). -loss and -crash inject faults
// (message loss, node churn) into fault-capable protocols; lossy runs are
// bounded by -horizon, which defaults to 1000·δ when faults are injected
// so a deadlocked election terminates the simulation instead of the user.
//
// -trace records every kernel event (sends, deliveries, timers, the
// decision) as a causal forest — each event carries a Lamport clock and a
// happens-before parent edge — and prints it with a critical-path summary.
// -trace-out writes the trace to FILE instead: -trace-format chrome (the
// default) is Chrome trace-event JSON, loadable in Perfetto or
// chrome://tracing with one track per node and flow arrows for message
// edges; jsonl is one event per line for stream processing; text is the
// human dump. Tracing is observational only: a traced run's report is
// byte-identical to the untraced run's.
//
// -spec runs a declarative scenario file (the internal/spec JSON schema)
// through exactly the same runner.Run path as the flags — and as
// abe-serve — so the three doors produce byte-identical reports for the
// same (scenario, seed). A spec with a "sweep" block renders the
// aggregated table instead ( -workers bounds its parallelism); -dry-run
// validates the file and prints its scenario hash without running.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"abenet"
	"abenet/internal/probe"
	"abenet/internal/simtime"
	"abenet/internal/spec"
	"abenet/internal/trace"
	"abenet/internal/trace/causal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abe-elect:", err)
		os.Exit(1)
	}
}

func run() error {
	proto := flag.String("proto", "election", "protocol to run (see -list)")
	list := flag.Bool("list", false, "list registered protocols and exit")
	topo := flag.String("topo", "ring", "topology: ring, biring, complete, hypercube")
	n := flag.Int("n", 16, "network size (hypercube rounds down to a power of two)")
	a0 := flag.Float64("a0", 0, "election activation parameter (0 = balanced default)")
	seed := flag.Uint64("seed", 1, "random seed")
	scheduler := flag.String("scheduler", "", "kernel event scheduler: heap or calendar (default heap; results are byte-identical either way)")
	delayKind := flag.String("delay", "exp", "delay model: exp, det, uniform, pareto, arq")
	mean := flag.Float64("mean", 1, "expected link delay δ")
	drift := flag.Float64("drift", 1, "clock speed ratio s_high/s_low (1 = perfect clocks)")
	gamma := flag.Float64("gamma", 0, "expected processing time γ (0 = instantaneous)")
	loss := flag.Float64("loss", 0, "per-message loss probability in [0, 1) (fault injection)")
	crashRate := flag.Float64("crash", 0, "per-node exponential crash rate (fault injection)")
	recoverRate := flag.Float64("recover", 0, "crashed-node recovery rate (0 with -crash = crash-stop churn off)")
	equivocate := flag.Int("equivocate", 0, "make nodes 0..k-1 Byzantine equivocators (honoured by ben-or)")
	broadcast := flag.Bool("broadcast", false, "atomic local-broadcast medium instead of point-to-point links (honoured by ben-or)")
	horizon := flag.Float64("horizon", 0, "virtual-time bound (0 = unbounded, or 1000·δ when faults are on)")
	withTrace := flag.Bool("trace", false, "print the full causal trace")
	traceOut := flag.String("trace-out", "", "write the causal trace to FILE (implies tracing)")
	traceFormat := flag.String("trace-format", "chrome", "trace file format: chrome, jsonl or text (with -trace-out)")
	obsEvery := flag.Uint64("observe-every", 0, "sample a time series every K executed events (observe-capable protocols)")
	obsInterval := flag.Float64("observe-interval", 0, "sample a time series every T virtual time units")
	obsMax := flag.Int("observe-max", 0, "cap on stored samples (0 = 100000)")
	obsCSV := flag.String("observe-csv", "", "write the sampled series as CSV to FILE (\"-\" = stdout)")
	withCheck := flag.Bool("check", false, "also model-check the election exhaustively at this size (n <= 5)")
	liveMode := flag.Bool("live", false, "run on real goroutines/channels instead of the simulator")
	specPath := flag.String("spec", "", "run a declarative scenario file instead of building one from flags")
	dryRun := flag.Bool("dry-run", false, "with -spec: validate the file and print its hash without running")
	workers := flag.Int("workers", 0, "sweep parallelism for -spec sweeps (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "print the report as JSON (machine-readable)")
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	switch *traceFormat {
	case "chrome", "jsonl", "text":
	default:
		return fmt.Errorf("unknown -trace-format %q (chrome, jsonl or text)", *traceFormat)
	}
	if set["trace-format"] && *traceOut == "" {
		return fmt.Errorf("-trace-format picks the -trace-out file format; set -trace-out FILE (plain -trace always prints text)")
	}

	if *list {
		for _, name := range abenet.Protocols() {
			fmt.Println(name)
		}
		return nil
	}

	// The live runtime has no fault injection: naming both on one command
	// line is a contradiction, not a request to ignore the fault flags.
	if *liveMode && (set["loss"] || set["crash"] || set["recover"] || set["equivocate"] || set["broadcast"]) {
		return fmt.Errorf("-live cannot be combined with -loss/-crash/-recover/-equivocate/-broadcast: the live goroutine runtime has no fault injection; drop -live to run the plan on the simulator")
	}
	if *liveMode && (set["observe-every"] || set["observe-interval"]) {
		return fmt.Errorf("-live cannot be combined with -observe-every/-observe-interval: the live goroutine runtime has no event kernel to sample")
	}
	if *liveMode && (*withTrace || *traceOut != "") {
		return fmt.Errorf("-live cannot be combined with -trace/-trace-out: the live goroutine runtime has no event kernel to trace")
	}
	if *liveMode && set["scheduler"] {
		return fmt.Errorf("-live cannot be combined with -scheduler: the live goroutine runtime has no event kernel")
	}

	if *specPath != "" {
		// A spec file states the whole scenario; flags that would fight it
		// are rejected rather than silently losing.
		conflicting := []string{"proto", "topo", "n", "a0", "delay", "mean", "drift", "gamma",
			"loss", "crash", "recover", "equivocate", "broadcast", "horizon", "live", "check",
			"observe-every", "observe-interval", "observe-max"}
		var clash []string
		for _, name := range conflicting {
			if set[name] {
				clash = append(clash, "-"+name)
			}
		}
		if len(clash) > 0 {
			sort.Strings(clash)
			return fmt.Errorf("-spec states the scenario; drop %v (only -seed, -scheduler, -trace, -trace-out, -trace-format, -workers, -observe-csv, -json and -dry-run combine with it)", clash)
		}
		var seedOverride *uint64
		if set["seed"] {
			seedOverride = seed
		}
		// Like the seed, the scheduler is not part of the scenario identity
		// (runs are byte-identical across schedulers), so the flag composes
		// with a spec file as an override.
		var schedOverride *string
		if set["scheduler"] {
			schedOverride = scheduler
		}
		return runSpec(*specPath, seedOverride, schedOverride, *workers, *dryRun, *withTrace, *jsonOut, *obsCSV, *traceOut, *traceFormat)
	}
	if *dryRun {
		return fmt.Errorf("-dry-run requires -spec")
	}

	env := abenet.Env{Seed: *seed, Scheduler: *scheduler}
	switch *topo {
	case "ring":
		env.N = *n
	case "biring":
		env.Graph = abenet.BiRing(*n)
	case "complete":
		env.Graph = abenet.Complete(*n)
	case "hypercube":
		dim := 0
		for 1<<(dim+1) <= *n {
			dim++
		}
		env.Graph = abenet.Hypercube(dim)
	default:
		return fmt.Errorf("unknown topology %q", *topo)
	}
	size := env.N
	if env.Graph != nil {
		size = env.Graph.N() // hypercube rounds -n down to a power of two
	}

	switch *delayKind {
	case "exp":
		env.Delay = abenet.Exponential(*mean)
	case "det":
		env.Delay = abenet.Deterministic(*mean)
	case "uniform":
		env.Delay = abenet.Uniform(0, 2**mean)
	case "pareto":
		env.Delay = abenet.ParetoWithMean(*mean, 2)
	case "arq":
		// p = 0.5 with slots sized so the mean comes out right; declare
		// δ = slot/p so defaulted parameters (A0) stay balanced.
		env.Links = abenet.ARQLinks(0.5, *mean/2)
		env.Delta = *mean
	default:
		return fmt.Errorf("unknown delay model %q", *delayKind)
	}
	if *drift > 1 {
		env.Clocks = abenet.WanderingClocks(1, *drift, 1)
	} else if *drift < 1 {
		return fmt.Errorf("drift ratio %g must be >= 1", *drift)
	}
	if *gamma > 0 {
		env.Processing = abenet.Exponential(*gamma)
	}
	if *loss > 0 || *crashRate > 0 {
		env.Faults = &abenet.FaultPlan{
			Loss:        *loss,
			CrashRate:   *crashRate,
			RecoverRate: *recoverRate,
		}
	} else if *recoverRate > 0 {
		return fmt.Errorf("-recover %g needs -crash to recover from", *recoverRate)
	}
	if *equivocate > 0 {
		env.Byzantine = abenet.Equivocators(*equivocate)
	}
	env.LocalBroadcast = *broadcast
	if *horizon > 0 {
		env.Horizon = simtime.Time(*horizon)
	} else if env.Faults != nil {
		// Lossy runs can deadlock legitimately; bound them by default.
		env.Horizon = simtime.Time(1000 * *mean)
	}
	if *obsEvery > 0 || *obsInterval > 0 {
		env.Observe = &probe.Config{EveryEvents: *obsEvery, Interval: *obsInterval, MaxSamples: *obsMax}
	} else if set["observe-max"] || set["observe-csv"] {
		return fmt.Errorf("-observe-max/-observe-csv need a sampling cadence: set -observe-every and/or -observe-interval")
	}

	if *liveMode {
		rep, err := abenet.Run(env, abenet.LiveElection{A0: *a0})
		if err != nil {
			return err
		}
		if *jsonOut {
			return printJSON(rep, "")
		}
		fmt.Printf("live run on %d goroutines (real concurrency, wall-clock delays)\n", *n)
		fmt.Printf("leader   : node %d (of %d leaders)\n", rep.LeaderIndex, rep.Leaders)
		fmt.Printf("messages : %d\n", rep.Messages)
		fmt.Printf("elapsed  : %s\n", rep.Extra.(abenet.LiveExtra).Elapsed)
		return nil
	}

	protocol, ok := abenet.ProtocolByName(*proto)
	if !ok {
		return fmt.Errorf("unknown protocol %q (try -list)", *proto)
	}
	if *proto == "election" {
		protocol = abenet.Election{A0: *a0}
	}

	// -check is flag-only validation: fail before the simulation runs, not
	// after it has already spent the work.
	if *withCheck && *n > 5 {
		return fmt.Errorf("-check supports n <= 5 (state space), got %d", *n)
	}

	if *withTrace || *traceOut != "" {
		env.Trace = &trace.Config{}
	}

	rep, err := abenet.Run(env, protocol)
	if err != nil {
		return err
	}

	// Lift the trace off the report: the JSON document summarises it (the
	// full export goes to -trace-out / the text dump), and the report stays
	// the same value an untraced run produces.
	exp := rep.Trace
	rep.Trace = nil
	if err := emitTrace(exp, *withTrace, *traceOut, *traceFormat, *jsonOut); err != nil {
		return err
	}
	if err := writeSeriesCSV(rep.Series, *obsCSV, *jsonOut); err != nil {
		return err
	}

	// Run the model check before rendering so its outcome can live inside
	// the JSON document: -json promises one parseable value on stdout.
	var check *abenet.CheckReport
	if *withCheck {
		report, err := abenet.CheckElection(abenet.CheckOptions{N: *n})
		if err != nil {
			return err
		}
		check = &report
	}

	if *jsonOut {
		out := reportJSON(rep, "")
		if exp != nil {
			out["trace"] = traceJSON(exp)
		}
		if check != nil {
			out["model_check"] = map[string]any{
				"safe":            check.OK(),
				"states_explored": check.StatesExplored,
				"leader_states":   check.LeaderStates,
				"violations":      len(check.Violations),
			}
		}
		return encodeJSON(out)
	}
	printReport(rep, *topo, size)
	printTraceSummary(exp, *traceOut)
	if check != nil {
		verdict := "SAFE (exhaustive within 2 activations/node)"
		if !check.OK() {
			verdict = fmt.Sprintf("%d VIOLATIONS", len(check.Violations))
		}
		fmt.Printf("model check         : %s — %d states, %d with a leader\n",
			verdict, check.StatesExplored, check.LeaderStates)
	}
	return nil
}

// runSpec executes (or just validates) a scenario file.
func runSpec(path string, seedOverride *uint64, schedOverride *string, workers int, dryRun, withTrace, jsonOut bool, obsCSV, traceOut, traceFormat string) error {
	s, err := spec.DecodeFile(path)
	if err != nil {
		return err
	}
	if seedOverride != nil {
		s.Env.Seed = *seedOverride
	}
	if schedOverride != nil {
		s.Env.Scheduler = *schedOverride
	}
	hash, err := s.Hash()
	if err != nil {
		return err
	}

	if dryRun {
		kind := "run"
		if s.Sweep != nil {
			kind = fmt.Sprintf("sweep over %v", s.Sweep.Xs)
		}
		if jsonOut {
			return encodeJSON(map[string]any{
				"spec":      path,
				"spec_hash": hash,
				"protocol":  s.Protocol.Name,
				"kind":      kind,
				"seed":      s.Env.Seed,
				"valid":     true,
			})
		}
		fmt.Printf("spec      : %s\n", path)
		fmt.Printf("hash      : %s\n", hash)
		fmt.Printf("protocol  : %s\n", s.Protocol.Name)
		fmt.Printf("kind      : %s\n", kind)
		fmt.Printf("seed      : %d\n", s.Env.Seed)
		fmt.Println("status    : valid")
		return nil
	}

	if s.Sweep != nil {
		if withTrace || traceOut != "" {
			return fmt.Errorf("-trace/-trace-out apply to single runs, not sweeps")
		}
		points, err := s.RunSweep(workers)
		if err != nil {
			return err
		}
		if jsonOut {
			return encodeJSON(map[string]any{
				"spec_hash": hash,
				"seed":      s.Env.Seed,
				"protocol":  s.Protocol.Name,
				"points":    spec.SweepView(points, s.Sweep.Metrics),
			})
		}
		table := abenet.PointsTable(fmt.Sprintf("%s (spec %s)", s.Protocol.Name, hash[:12]), "n",
			spec.FilterPoints(points, s.Sweep.Metrics))
		return table.Render(os.Stdout)
	}

	env, protocol, err := s.Build()
	if err != nil {
		return err
	}
	// The flags imply tracing even when the spec file carries no trace
	// block; a spec block's cap wins when both are present.
	if (withTrace || traceOut != "") && env.Trace == nil {
		env.Trace = &trace.Config{}
	}
	rep, err := abenet.Run(env, protocol)
	if err != nil {
		return err
	}
	exp := rep.Trace
	rep.Trace = nil
	if err := emitTrace(exp, withTrace, traceOut, traceFormat, jsonOut); err != nil {
		return err
	}
	if err := writeSeriesCSV(rep.Series, obsCSV, jsonOut); err != nil {
		return err
	}
	if jsonOut {
		out := reportJSON(rep, hash)
		if exp != nil {
			out["trace"] = traceJSON(exp)
		}
		return encodeJSON(out)
	}
	label := "ring"
	if s.Env.Topology != nil {
		label = s.Env.Topology.Name
	}
	size := env.N
	if env.Graph != nil {
		size = env.Graph.N()
	}
	fmt.Printf("spec                : %s (hash %s)\n", path, hash[:12])
	printReport(rep, label, size)
	printTraceSummary(exp, traceOut)
	return nil
}

// emitTrace renders the exported trace: the text dump for -trace (to
// stderr under -json so stdout stays one parseable value) and the chosen
// file format for -trace-out.
func emitTrace(exp *trace.Export, withTrace bool, traceOut, traceFormat string, jsonOut bool) error {
	if exp == nil {
		return nil
	}
	if withTrace {
		dest := io.Writer(os.Stdout)
		if jsonOut {
			dest = os.Stderr
		}
		if err := trace.WriteText(dest, exp); err != nil {
			return err
		}
		fmt.Fprintln(dest)
	}
	if traceOut == "" {
		return nil
	}
	f, err := os.Create(traceOut)
	if err != nil {
		return err
	}
	switch traceFormat {
	case "chrome":
		err = trace.WriteChrome(f, exp)
	case "jsonl":
		err = trace.WriteJSONL(f, exp)
	case "text":
		err = trace.WriteText(f, exp)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// traceJSON summarises the trace for the JSON document: the recorder
// counters plus the causal analysis (critical path to the decision,
// relay-depth maximum) — the full event list lives in -trace-out, not here.
func traceJSON(exp *trace.Export) map[string]any {
	return map[string]any{
		"events":    len(exp.Events),
		"dropped":   exp.Dropped,
		"truncated": exp.Dropped > 0,
		"causal":    causal.Summarize(exp),
	}
}

// printTraceSummary renders the causal analysis under the report: the
// critical path — the longest happens-before chain ending at the decision —
// split into message-delay and local time, and the deepest relay chain.
func printTraceSummary(exp *trace.Export, traceOut string) {
	if exp == nil {
		return
	}
	s := causal.Summarize(exp)
	line := fmt.Sprintf("trace               : %d events", s.Events)
	if s.Dropped > 0 {
		line += fmt.Sprintf(" (%d more dropped past the cap)", s.Dropped)
	}
	fmt.Println(line)
	target := "deepest event"
	if s.Decision != 0 {
		target = "decision"
	}
	fmt.Printf("critical path       : %d edges (%d hops) to the %s — %.3f virtual time (%.3f message delay, %.3f local)\n",
		s.PathLen, s.Hops, target, s.Time, s.MessageTime, s.LocalTime)
	fmt.Printf("max relay depth     : %d\n", s.MaxHopDepth)
	if traceOut != "" {
		fmt.Printf("trace written       : %s\n", traceOut)
	}
}

// writeSeriesCSV renders the sampled time series as CSV: a header of
// time,event plus the gauge names, one row per sample. dest "-" streams to
// stdout (text mode only — under -json stdout carries the JSON document).
func writeSeriesCSV(s *probe.Series, dest string, jsonOut bool) error {
	if dest == "" {
		return nil
	}
	if s == nil {
		return fmt.Errorf("-observe-csv: the run produced no series (set a cadence via -observe-every/-observe-interval or a spec observe block)")
	}
	if dest == "-" {
		if jsonOut {
			return fmt.Errorf(`-observe-csv "-" cannot combine with -json (stdout is the JSON document); write the CSV to a file`)
		}
		return seriesCSV(s, os.Stdout)
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	if err := seriesCSV(s, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// seriesCSV writes the series rows.
func seriesCSV(s *probe.Series, w io.Writer) error {
	header := "time,event"
	for _, name := range s.Names {
		header += "," + name
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, smp := range s.Samples {
		row := strconv.FormatFloat(smp.Time, 'g', -1, 64) + "," + strconv.FormatUint(smp.Event, 10)
		for _, v := range smp.Values {
			row += "," + strconv.FormatFloat(v, 'g', -1, 64)
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}

// reportJSON assembles the machine-readable report (the same metric map
// the sweep harness and abe-serve aggregate, so outputs diff cleanly).
func reportJSON(rep abenet.Report, specHash string) map[string]any {
	out := map[string]any{
		"protocol": rep.Protocol,
		"report":   rep,
		"metrics":  rep.Metrics(),
	}
	if specHash != "" {
		out["spec_hash"] = specHash
	}
	return out
}

// printJSON emits the machine-readable report.
func printJSON(rep abenet.Report, specHash string) error {
	return encodeJSON(reportJSON(rep, specHash))
}

func encodeJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// printReport renders the human-readable report shared by the flag path
// and the spec path.
func printReport(rep abenet.Report, envLabel string, size int) {
	fmt.Printf("protocol            : %s\n", rep.Protocol)
	fmt.Printf("environment         : %s(%d)\n", envLabel, size)
	if rep.Params != (abenet.Params{}) {
		fmt.Printf("ABE parameters      : δ=%.3g  s∈[%.3g,%.3g]  γ=%.3g\n",
			rep.Params.Delta, rep.Params.SLow, rep.Params.SHigh, rep.Params.Gamma)
	}
	if rep.Elected || rep.Leaders > 0 {
		fmt.Printf("leader              : node %d (of %d leaders)\n", rep.LeaderIndex, rep.Leaders)
	}
	fmt.Printf("virtual time        : %.3f\n", rep.Time)
	fmt.Printf("messages            : %d (%.2f per node)\n", rep.Messages, float64(rep.Messages)/float64(size))
	if rep.Transmissions > 0 {
		fmt.Printf("transmissions       : %d\n", rep.Transmissions)
	}
	if rep.Rounds > 0 {
		fmt.Printf("rounds              : %d\n", rep.Rounds)
	}
	if extra, ok := rep.Extra.(abenet.ElectionExtra); ok {
		fmt.Printf("activations         : %d\n", extra.Activations)
		fmt.Printf("knockouts           : %d\n", extra.Knockouts)
	}
	if extra, ok := rep.Extra.(abenet.ClockSyncExtra); ok {
		fmt.Printf("round violations    : %d (rate %.4f, max lateness %d)\n",
			extra.RoundViolations, extra.ViolationRate, extra.MaxLateness)
	}
	if extra, ok := rep.Extra.(abenet.SyncExtra); ok {
		fmt.Printf("messages per round  : %.1f\n", extra.MessagesPerRound)
	}
	consensus := false
	if extra, ok := rep.Extra.(abenet.ConsensusExtra); ok {
		consensus = true
		fmt.Printf("consensus           : %d/%d honest decided %d (agreement %v, validity %v, termination %v)\n",
			extra.Decided, extra.Honest, extra.Decision, extra.Agreement, extra.Validity, extra.Termination)
		fmt.Printf("coin flips          : %d (decision round %d)\n", extra.CoinFlips, extra.DecisionRound)
	}
	if tel := rep.Faults; tel != nil {
		fmt.Printf("faults injected     : %d (dropped %d, duplicated %d, delayed %d, dead letters %d, crashes %d)\n",
			tel.TotalFaults(), tel.MessagesDropped+tel.LinkDrops, tel.MessagesDuplicated,
			tel.MessagesDelayed, tel.DeadLetters, tel.Crashes)
		if tel.Crashes > 0 {
			fmt.Printf("node churn          : %d crashes, %d recoveries\n", tel.Crashes, tel.Recoveries)
			const maxIntervals = 10
			for i, iv := range tel.CrashIntervals {
				if i == maxIntervals {
					fmt.Printf("  ... %d more outages\n", len(tel.CrashIntervals)-maxIntervals)
					break
				}
				end := "end of run"
				if iv.End >= 0 {
					end = fmt.Sprintf("%.3f", iv.End)
				}
				fmt.Printf("  node %-3d down %.3f .. %s\n", iv.Node, iv.Start, end)
			}
		}
		if byz := tel.Byzantine; byz != nil && byz.Total() > 0 {
			fmt.Printf("adversary actions   : %d (equivocations %d, corruptions %d, omissions %d, stalls %d)\n",
				byz.Total(), byz.Equivocations, byz.Corruptions, byz.Omissions, byz.Stalls)
		}
		if !rep.Elected && rep.Leaders == 0 && !consensus {
			fmt.Printf("outcome             : no leader within the horizon (faults won this one)\n")
		}
	}
	if s := rep.Series; s != nil {
		line := fmt.Sprintf("series              : %d samples × %d gauges", len(s.Samples), len(s.Names))
		if s.Truncated > 0 {
			line += fmt.Sprintf(" (%d more truncated past the cap)", s.Truncated)
		}
		fmt.Println(line)
	}
	if len(rep.Violations) > 0 {
		fmt.Printf("VIOLATIONS          : %v\n", rep.Violations)
	}
}
