// Command abe-elect runs one leader election on an anonymous
// unidirectional ABE ring and reports what happened — optionally with a
// full message trace.
//
// Usage:
//
//	abe-elect [-n 16] [-a0 0] [-seed 1] [-delay exp|det|uniform|pareto|arq]
//	          [-mean 1] [-drift 1] [-gamma 0] [-trace] [-check]
package main

import (
	"flag"
	"fmt"
	"os"

	"abenet"
	"abenet/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abe-elect:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 16, "ring size")
	a0 := flag.Float64("a0", 0, "base activation parameter (0 = balanced default 1/n²)")
	seed := flag.Uint64("seed", 1, "random seed")
	delayKind := flag.String("delay", "exp", "delay model: exp, det, uniform, pareto, arq")
	mean := flag.Float64("mean", 1, "expected link delay δ")
	drift := flag.Float64("drift", 1, "clock speed ratio s_high/s_low (1 = perfect clocks)")
	gamma := flag.Float64("gamma", 0, "expected processing time γ (0 = instantaneous)")
	withTrace := flag.Bool("trace", false, "print the full message trace")
	withCheck := flag.Bool("check", false, "also model-check the protocol exhaustively at this size (n <= 5)")
	liveMode := flag.Bool("live", false, "run on real goroutines/channels instead of the simulator")
	flag.Parse()

	if *liveMode {
		res, err := abenet.RunLiveElection(abenet.LiveElectionConfig{
			N: *n, A0: *a0, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("live run on %d goroutines (real concurrency, wall-clock delays)\n", *n)
		fmt.Printf("leader   : node %d (of %d leaders)\n", res.LeaderIndex, res.Leaders)
		fmt.Printf("messages : %d\n", res.Messages)
		fmt.Printf("elapsed  : %s\n", res.Elapsed)
		return nil
	}

	cfg := abenet.ElectionConfig{N: *n, A0: *a0, Seed: *seed}
	if cfg.A0 == 0 {
		cfg.A0 = abenet.A0ForRing(*n, *mean, 1, 1)
	}

	switch *delayKind {
	case "exp":
		cfg.Delay = abenet.Exponential(*mean)
	case "det":
		cfg.Delay = abenet.Deterministic(*mean)
	case "uniform":
		cfg.Delay = abenet.Uniform(0, 2**mean)
	case "pareto":
		cfg.Delay = abenet.ParetoWithMean(*mean, 2)
	case "arq":
		// p = 0.5 with slots sized so the mean comes out right.
		cfg.Links = abenet.ARQLinks(0.5, *mean/2)
	default:
		return fmt.Errorf("unknown delay model %q", *delayKind)
	}
	if *drift > 1 {
		cfg.Clocks = abenet.WanderingClocks(1, *drift, 1)
	} else if *drift < 1 {
		return fmt.Errorf("drift ratio %g must be >= 1", *drift)
	}
	if *gamma > 0 {
		cfg.Processing = abenet.Exponential(*gamma)
	}

	var rec *trace.Recorder
	if *withTrace {
		rec = trace.NewRecorder(0)
		cfg.Tracer = rec
	}

	res, err := abenet.RunElection(cfg)
	if err != nil {
		return err
	}

	if rec != nil {
		if _, err := rec.WriteTo(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	fmt.Printf("ring size n         : %d (anonymous, unidirectional)\n", *n)
	fmt.Printf("activation A0       : %.6g\n", cfg.A0)
	fmt.Printf("ABE parameters      : δ=%.3g  s∈[%.3g,%.3g]  γ=%.3g\n",
		res.Params.Delta, res.Params.SLow, res.Params.SHigh, res.Params.Gamma)
	fmt.Printf("leader              : node %d (of %d leaders)\n", res.LeaderIndex, res.Leaders)
	fmt.Printf("virtual time        : %.3f\n", res.Time)
	fmt.Printf("messages            : %d (%.2f per node)\n", res.Messages, float64(res.Messages)/float64(*n))
	fmt.Printf("transmissions       : %d\n", res.Transmissions)
	fmt.Printf("activations         : %d\n", res.Activations)
	fmt.Printf("knockouts           : %d\n", res.Knockouts)
	if len(res.Violations) > 0 {
		fmt.Printf("VIOLATIONS          : %v\n", res.Violations)
	}

	if *withCheck {
		if *n > 5 {
			return fmt.Errorf("-check supports n <= 5 (state space), got %d", *n)
		}
		report, err := abenet.CheckElection(abenet.CheckOptions{N: *n})
		if err != nil {
			return err
		}
		verdict := "SAFE (exhaustive within 2 activations/node)"
		if !report.OK() {
			verdict = fmt.Sprintf("%d VIOLATIONS", len(report.Violations))
		}
		fmt.Printf("model check         : %s — %d states, %d with a leader\n",
			verdict, report.StatesExplored, report.LeaderStates)
	}
	return nil
}
