// Command abe-sync demonstrates synchronizers on ABE networks and the
// cost Theorem 1 imposes on them, entirely through the unified
// Env/Protocol/Report API.
//
// Modes:
//
//	abe-sync -mode cost                 messages/round across synchronizers & topologies
//	abe-sync -mode abd                  clock-driven ABD synchronizer on ABD vs ABE delays
//	abe-sync -mode election             synchronous Itai-Rodeh over a synchronizer vs native ABE election
package main

import (
	"flag"
	"fmt"
	"os"

	"abenet"
	"abenet/internal/experiments"
	"abenet/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abe-sync:", err)
		os.Exit(1)
	}
}

func run() error {
	mode := flag.String("mode", "cost", "demo: cost, abd, or election")
	seed := flag.Uint64("seed", 1, "random seed")
	n := flag.Int("n", 16, "network size (election mode ring size)")
	rounds := flag.Int("rounds", 50, "rounds to drive (cost/abd modes)")
	flag.Parse()

	switch *mode {
	case "cost":
		return costDemo(*seed, *rounds)
	case "abd":
		return abdDemo(*seed, *rounds)
	case "election":
		return electionDemo(*seed, *n)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

// heartbeat drives the synchronizer with one payload per edge per round.
type heartbeat struct{ limit int }

func (p *heartbeat) Round(ctx abenet.SyncProtocolContext, round int, _ []abenet.SyncMessage) {
	if round >= p.limit {
		ctx.StopNetwork("done")
		return
	}
	for port := 0; port < ctx.OutDegree(); port++ {
		ctx.Send(port, round)
	}
}

func costDemo(seed uint64, rounds int) error {
	fmt.Println("Theorem 1: an ABE network of size n cannot be synchronised with")
	fmt.Println("fewer than n messages per round. Measured synchronizer costs:")
	fmt.Println()
	table := harness.NewTable("", "topology", "n", "synchronizer", "msgs/round", "bound n", "meets bound")
	cases := []struct {
		name  string
		graph *abenet.Graph
		kind  abenet.SyncKind
	}{
		{"ring(16)", abenet.Ring(16), abenet.SyncRound},
		{"ring(64)", abenet.Ring(64), abenet.SyncRound},
		{"biring(16)", abenet.BiRing(16), abenet.SyncRound},
		{"complete(8)", abenet.Complete(8), abenet.SyncRound},
		{"biring(16)", abenet.BiRing(16), abenet.SyncAlpha},
		{"complete(8)", abenet.Complete(8), abenet.SyncAlpha},
		{"biring(16)", abenet.BiRing(16), abenet.SyncBeta},
		{"complete(8)", abenet.Complete(8), abenet.SyncBeta},
		{"biring(16)", abenet.BiRing(16), abenet.SyncGamma},
		{"complete(8)", abenet.Complete(8), abenet.SyncGamma},
	}
	for _, c := range cases {
		rep, err := abenet.Run(
			abenet.Env{Graph: c.graph, Seed: seed},
			abenet.Synchronized{
				Kind:     c.kind,
				MakeNode: func(int) abenet.SyncProtocol { return &heartbeat{limit: rounds} },
			},
		)
		if err != nil {
			return err
		}
		perRound := rep.Extra.(abenet.SyncExtra).MessagesPerRound
		table.AddRow(c.name, fmt.Sprint(c.graph.N()), c.kind.String(),
			fmt.Sprintf("%.1f", perRound),
			fmt.Sprint(c.graph.N()),
			fmt.Sprintf("%v", perRound >= float64(c.graph.N())))
	}
	return table.Render(os.Stdout)
}

func abdDemo(seed uint64, rounds int) error {
	fmt.Println("A clock-driven ABD synchronizer (Tel-Korach-Zaks) uses zero control")
	fmt.Println("messages but trusts a hard delay bound. On an ABE network the bound")
	fmt.Println("does not exist; rounds break with positive probability:")
	fmt.Println()
	table := harness.NewTable("", "period", "ABD uniform[0,1]", "ABE exp(0.5)")
	for _, period := range []float64{1.5, 2, 3, 4, 6} {
		clockSync := func(delay abenet.DelayDist) (abenet.ClockSyncExtra, error) {
			rep, err := abenet.Run(
				abenet.Env{N: 16, Delay: delay, Seed: seed},
				abenet.ClockSync{Period: period, Rounds: rounds},
			)
			if err != nil {
				return abenet.ClockSyncExtra{}, err
			}
			return rep.Extra.(abenet.ClockSyncExtra), nil
		}
		abd, err := clockSync(abenet.Uniform(0, 1))
		if err != nil {
			return err
		}
		abe, err := clockSync(abenet.Exponential(0.5))
		if err != nil {
			return err
		}
		table.AddRow(fmt.Sprintf("%g", period),
			fmt.Sprintf("%d violations (%.3f%%)", abd.RoundViolations, 100*abd.ViolationRate),
			fmt.Sprintf("%d violations (%.3f%%)", abe.RoundViolations, 100*abe.ViolationRate))
	}
	return table.Render(os.Stdout)
}

func electionDemo(seed uint64, n int) error {
	fmt.Println("Running a synchronous election through a synchronizer multiplies its")
	fmt.Println("message cost by the round count; the native ABE election avoids that:")
	fmt.Println()

	env := abenet.Env{N: n, Seed: seed}
	native, err := abenet.Run(env, abenet.Election{})
	if err != nil {
		return err
	}

	syncEnv := env
	syncEnv.MaxRounds = 100_000
	synced, err := abenet.Run(syncEnv, abenet.SynchronizedElection{})
	if err != nil {
		return err
	}

	table := harness.NewTable("", "approach", "messages", "leaders", "notes")
	table.AddRow("native ABE election", fmt.Sprint(native.Messages), fmt.Sprint(native.Leaders),
		fmt.Sprintf("%.2f msgs/node", float64(native.Messages)/float64(n)))
	table.AddRow("Itai-Rodeh sync over round synchronizer", fmt.Sprint(synced.Messages), fmt.Sprint(synced.Leaders),
		fmt.Sprintf("%d rounds x %d msgs/round", synced.Rounds, n))
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nsynchronisation overhead: %.1fx\n", float64(synced.Messages)/float64(native.Messages))

	// Also show where these numbers sit in the full sweep.
	res, err := experiments.E8Synchronizer(experiments.Options{Quick: true, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println()
	for _, t := range res.Tables() {
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
