// Command abe-sync demonstrates synchronizers on ABE networks and the
// cost Theorem 1 imposes on them.
//
// Modes:
//
//	abe-sync -mode cost                 messages/round across synchronizers & topologies
//	abe-sync -mode abd                  clock-driven ABD synchronizer on ABD vs ABE delays
//	abe-sync -mode election             synchronous Itai-Rodeh over a synchronizer vs native ABE election
package main

import (
	"flag"
	"fmt"
	"os"

	"abenet"
	"abenet/internal/election"
	"abenet/internal/experiments"
	"abenet/internal/harness"
	"abenet/internal/synchronizer"
	"abenet/internal/syncnet"
	"abenet/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "abe-sync:", err)
		os.Exit(1)
	}
}

func run() error {
	mode := flag.String("mode", "cost", "demo: cost, abd, or election")
	seed := flag.Uint64("seed", 1, "random seed")
	n := flag.Int("n", 16, "network size (election mode ring size)")
	rounds := flag.Int("rounds", 50, "rounds to drive (cost/abd modes)")
	flag.Parse()

	switch *mode {
	case "cost":
		return costDemo(*seed, *rounds)
	case "abd":
		return abdDemo(*seed, *rounds)
	case "election":
		return electionDemo(*seed, *n)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

// heartbeat drives the synchronizer with one payload per edge per round.
type heartbeat struct{ limit int }

func (p *heartbeat) Round(ctx syncnet.NodeContext, round int, _ []syncnet.Message) {
	if round >= p.limit {
		ctx.StopNetwork("done")
		return
	}
	for port := 0; port < ctx.OutDegree(); port++ {
		ctx.Send(port, round)
	}
}

func costDemo(seed uint64, rounds int) error {
	fmt.Println("Theorem 1: an ABE network of size n cannot be synchronised with")
	fmt.Println("fewer than n messages per round. Measured synchronizer costs:")
	fmt.Println()
	table := harness.NewTable("", "topology", "n", "synchronizer", "msgs/round", "bound n", "meets bound")
	cases := []struct {
		name  string
		graph *topology.Graph
		kind  synchronizer.Kind
	}{
		{"ring(16)", topology.Ring(16), synchronizer.KindRound},
		{"ring(64)", topology.Ring(64), synchronizer.KindRound},
		{"biring(16)", topology.BiRing(16), synchronizer.KindRound},
		{"complete(8)", topology.Complete(8), synchronizer.KindRound},
		{"biring(16)", topology.BiRing(16), synchronizer.KindAlpha},
		{"complete(8)", topology.Complete(8), synchronizer.KindAlpha},
		{"biring(16)", topology.BiRing(16), synchronizer.KindBeta},
		{"complete(8)", topology.Complete(8), synchronizer.KindBeta},
		{"biring(16)", topology.BiRing(16), synchronizer.KindGamma},
		{"complete(8)", topology.Complete(8), synchronizer.KindGamma},
	}
	for _, c := range cases {
		res, err := synchronizer.Run(synchronizer.Config{
			Kind: c.kind, Graph: c.graph, Seed: seed,
		}, func(int) syncnet.Node { return &heartbeat{limit: rounds} })
		if err != nil {
			return err
		}
		table.AddRow(c.name, fmt.Sprint(c.graph.N()), c.kind.String(),
			fmt.Sprintf("%.1f", res.MessagesPerRound),
			fmt.Sprint(c.graph.N()),
			fmt.Sprintf("%v", res.MessagesPerRound >= float64(c.graph.N())))
	}
	return table.Render(os.Stdout)
}

func abdDemo(seed uint64, rounds int) error {
	fmt.Println("A clock-driven ABD synchronizer (Tel-Korach-Zaks) uses zero control")
	fmt.Println("messages but trusts a hard delay bound. On an ABE network the bound")
	fmt.Println("does not exist; rounds break with positive probability:")
	fmt.Println()
	table := harness.NewTable("", "period", "ABD uniform[0,1]", "ABE exp(0.5)")
	for _, period := range []float64{1.5, 2, 3, 4, 6} {
		abd, err := abenet.RunClockSync(abenet.ClockSyncConfig{
			Graph: abenet.Ring(16), Delay: abenet.Uniform(0, 1),
			Period: period, Rounds: rounds, Seed: seed,
		})
		if err != nil {
			return err
		}
		abe, err := abenet.RunClockSync(abenet.ClockSyncConfig{
			Graph: abenet.Ring(16), Delay: abenet.Exponential(0.5),
			Period: period, Rounds: rounds, Seed: seed,
		})
		if err != nil {
			return err
		}
		table.AddRow(fmt.Sprintf("%g", period),
			fmt.Sprintf("%d violations (%.3f%%)", abd.Violations, 100*abd.ViolationRate()),
			fmt.Sprintf("%d violations (%.3f%%)", abe.Violations, 100*abe.ViolationRate()))
	}
	return table.Render(os.Stdout)
}

func electionDemo(seed uint64, n int) error {
	fmt.Println("Running a synchronous election through a synchronizer multiplies its")
	fmt.Println("message cost by the round count; the native ABE election avoids that:")
	fmt.Println()

	native, err := abenet.RunElection(abenet.ElectionConfig{
		N: n, A0: abenet.DefaultA0(n), Seed: seed,
	})
	if err != nil {
		return err
	}

	nodes := make([]*election.ItaiRodehSyncNode, n)
	synced, err := synchronizer.Run(synchronizer.Config{
		Kind:      synchronizer.KindRound,
		Graph:     topology.Ring(n),
		Seed:      seed,
		Anonymous: true,
		MaxRounds: 100_000,
	}, func(i int) syncnet.Node {
		node, err := election.NewItaiRodehSyncNode(n, 1/float64(n))
		if err != nil {
			panic(err) // validated; unreachable
		}
		nodes[i] = node
		return node
	})
	if err != nil {
		return err
	}
	leaders := 0
	for _, node := range nodes {
		if node.IsLeader() {
			leaders++
		}
	}

	table := harness.NewTable("", "approach", "messages", "leaders", "notes")
	table.AddRow("native ABE election", fmt.Sprint(native.Messages), fmt.Sprint(native.Leaders),
		fmt.Sprintf("%.2f msgs/node", float64(native.Messages)/float64(n)))
	table.AddRow("Itai-Rodeh sync over round synchronizer", fmt.Sprint(synced.Messages), fmt.Sprint(leaders),
		fmt.Sprintf("%d rounds x %d msgs/round", synced.Rounds, n))
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nsynchronisation overhead: %.1fx\n", float64(synced.Messages)/float64(native.Messages))

	// Also show where these numbers sit in the full sweep.
	res, err := experiments.E8Synchronizer(experiments.Options{Quick: true, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println()
	for _, t := range res.Tables() {
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
