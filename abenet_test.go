package abenet_test

import (
	"testing"
	"time"

	"abenet"
)

// These tests exercise the public facade end to end: a downstream user's
// first contact with the library must work exactly as documented.

func TestFacadeElection(t *testing.T) {
	res, err := abenet.RunElection(abenet.ElectionConfig{
		N:    16,
		A0:   abenet.DefaultA0(16),
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Leaders != 1 || !res.Elected {
		t.Fatalf("result: %+v", res)
	}
	if res.Params.Delta != 1 {
		t.Fatalf("default δ = %v, want 1", res.Params.Delta)
	}
}

func TestFacadeElectionOnARQLinks(t *testing.T) {
	// The sensor-network scenario: lossy radio with p = 0.5 and 0.5-unit
	// slots gives expected delay 1 — an ABE network by Section 1 (iii).
	res, err := abenet.RunElection(abenet.ElectionConfig{
		N:     8,
		A0:    abenet.DefaultA0(8),
		Links: abenet.ARQLinks(0.5, 0.5),
		Seed:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Leaders != 1 {
		t.Fatalf("leaders = %d", res.Leaders)
	}
	if res.Transmissions <= res.Messages {
		t.Fatalf("ARQ links must retransmit: %d transmissions for %d messages",
			res.Transmissions, res.Messages)
	}
}

func TestFacadeDelayConstructors(t *testing.T) {
	dists := []abenet.DelayDist{
		abenet.Deterministic(1),
		abenet.Uniform(0, 2),
		abenet.Exponential(1),
		abenet.Retransmission(0.5, 0.5),
		abenet.ParetoWithMean(1, 2),
		abenet.Erlang(3, 1),
		abenet.Bimodal(abenet.Deterministic(0.5), abenet.Deterministic(5.5), 0.1),
	}
	for _, d := range dists {
		if d.Mean() <= 0 {
			t.Fatalf("%s mean = %v", d.Name(), d.Mean())
		}
	}
}

func TestFacadeBaselines(t *testing.T) {
	if res, err := abenet.RunItaiRodehSync(8, 0, 1, 0); err != nil || res.Leaders != 1 {
		t.Fatalf("sync IR: %+v, %v", res, err)
	}
	if res, err := abenet.RunItaiRodehAsync(abenet.AsyncRingConfig{N: 8, Seed: 1}); err != nil || res.Leaders != 1 {
		t.Fatalf("async IR: %+v, %v", res, err)
	}
	if res, err := abenet.RunChangRoberts(abenet.ChangRobertsConfig{N: 8, Seed: 1}); err != nil || res.Leaders != 1 {
		t.Fatalf("CR: %+v, %v", res, err)
	}
}

// broadcastProto floods one counter per round for a fixed number of rounds.
type broadcastProto struct{ limit int }

func (p *broadcastProto) Round(ctx abenet.SyncProtocolContext, round int, inbox []abenet.SyncMessage) {
	if round >= p.limit {
		ctx.StopNetwork("done")
		return
	}
	for port := 0; port < ctx.OutDegree(); port++ {
		ctx.Send(port, round)
	}
}

func TestFacadeSynchronizer(t *testing.T) {
	res, err := abenet.RunSynchronized(abenet.SyncConfig{
		Kind:  abenet.SyncRound,
		Graph: abenet.Ring(6),
		Seed:  3,
	}, func(int) abenet.SyncProtocol {
		return &broadcastProto{limit: 15}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesPerRound < 6 {
		t.Fatalf("Theorem 1 violated by facade run: %v msgs/round", res.MessagesPerRound)
	}
}

func TestFacadeClockSync(t *testing.T) {
	abd, err := abenet.RunClockSync(abenet.ClockSyncConfig{
		Graph:  abenet.Ring(6),
		Delay:  abenet.Uniform(0, 1),
		Period: 1.1,
		Rounds: 100,
		Seed:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if abd.Violations != 0 {
		t.Fatalf("ABD run violated: %+v", abd)
	}
	abe, err := abenet.RunClockSync(abenet.ClockSyncConfig{
		Graph:  abenet.Ring(6),
		Delay:  abenet.Exponential(0.5),
		Period: 1.1,
		Rounds: 100,
		Seed:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if abe.Violations == 0 {
		t.Fatal("ABE run produced no violations")
	}
}

func TestFacadeModelChecker(t *testing.T) {
	report, err := abenet.CheckElection(abenet.CheckOptions{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("violations: %+v", report.Violations)
	}
}

func TestFacadeLiveElection(t *testing.T) {
	res, err := abenet.RunLiveElection(abenet.LiveElectionConfig{
		N:         5,
		MeanDelay: 100 * time.Microsecond,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Leaders != 1 {
		t.Fatalf("live leaders = %d", res.Leaders)
	}
}

func TestFacadeSweep(t *testing.T) {
	sweep := abenet.Sweep{Name: "facade", Repetitions: 20, Seed: 6}
	points, err := sweep.Run([]float64{8, 16, 32}, func(x float64, seed uint64) (abenet.SweepMetrics, error) {
		res, err := abenet.RunElection(abenet.ElectionConfig{
			N:    int(x),
			A0:   abenet.DefaultA0(int(x)),
			Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		return abenet.SweepMetrics{"messages": float64(res.Messages), "time": res.Time}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fit, err := abenet.GrowthExponent(points, "messages")
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope < 0.5 || fit.Slope > 1.6 {
		t.Fatalf("message growth exponent %v not near linear", fit.Slope)
	}
	table := abenet.PointsTable("demo", "n", points)
	if len(table.Rows) != 3 {
		t.Fatalf("table rows = %d", len(table.Rows))
	}
}

func TestFacadeClockModels(t *testing.T) {
	for _, m := range []abenet.ClockModel{
		abenet.PerfectClocks(),
		abenet.UniformClocks(0.5, 2),
		abenet.WanderingClocks(0.5, 2, 1),
	} {
		res, err := abenet.RunElection(abenet.ElectionConfig{
			N: 6, A0: 0.05, Clocks: m, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Leaders != 1 {
			t.Fatalf("%T: leaders = %d", m, res.Leaders)
		}
	}
}

func TestFacadeParams(t *testing.T) {
	p := abenet.DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeUnifiedRun(t *testing.T) {
	// The single-door path: one Env, any protocol.
	env := abenet.Env{N: 16, Seed: 1}
	rep, err := abenet.Run(env, abenet.Election{})
	if err != nil {
		t.Fatal(err)
	}
	if err := abenet.RequireElected(rep); err != nil {
		t.Fatal(err)
	}
	if rep.Protocol != "election" {
		t.Fatalf("protocol = %q", rep.Protocol)
	}
	if _, ok := rep.Extra.(abenet.ElectionExtra); !ok {
		t.Fatalf("Extra is %T", rep.Extra)
	}

	// The deprecated shim must agree with the direct Run call exactly.
	old, err := abenet.RunElection(abenet.ElectionConfig{
		N: 16, A0: abenet.DefaultA0(16), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if old.LeaderIndex != rep.LeaderIndex || old.Messages != rep.Messages || old.Time != rep.Time {
		t.Fatalf("shim diverged from Run:\n shim: %+v\n run:  %+v", old, rep)
	}
}

func TestFacadeRegistry(t *testing.T) {
	names := abenet.Protocols()
	if len(names) == 0 {
		t.Fatal("empty protocol registry")
	}
	p, ok := abenet.ProtocolByName("election")
	if !ok {
		t.Fatal("election not registered")
	}
	rep, err := abenet.Run(abenet.Env{N: 8, Seed: 2}, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Leaders != 1 {
		t.Fatalf("leaders = %d", rep.Leaders)
	}
}

func TestFacadePeterson(t *testing.T) {
	// Peterson was implemented but never exported before the unified API.
	rep, err := abenet.Run(abenet.Env{N: 12, Seed: 3}, abenet.Peterson{})
	if err != nil {
		t.Fatal(err)
	}
	if err := abenet.RequireElected(rep); err != nil {
		t.Fatal(err)
	}
	// Deprecated-style shim, for symmetry with the other baselines.
	old, err := abenet.RunPeterson(abenet.ChangRobertsConfig{N: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if old.LeaderIndex != rep.LeaderIndex || old.Messages != rep.Messages {
		t.Fatalf("shim diverged: %+v vs %+v", old, rep)
	}
	// The descending arrangement is Peterson's showcase: it stays
	// O(n log n) where Chang-Roberts goes quadratic.
	pet, err := abenet.Run(abenet.Env{N: 32, Seed: 4},
		abenet.Peterson{Arrangement: abenet.ArrangementDescending})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := abenet.Run(abenet.Env{N: 32, Seed: 4},
		abenet.ChangRoberts{Arrangement: abenet.ArrangementDescending})
	if err != nil {
		t.Fatal(err)
	}
	if pet.Messages >= cr.Messages {
		t.Fatalf("Peterson (%d msgs) should beat Chang-Roberts (%d msgs) on descending rings",
			pet.Messages, cr.Messages)
	}
}

func TestFacadeElectionOnNonRingTopology(t *testing.T) {
	// The environments the old config structs could not express: the same
	// election on a hypercube, routed along its embedded Hamiltonian cycle.
	rep, err := abenet.Run(abenet.Env{Graph: abenet.Hypercube(3), Seed: 5}, abenet.Election{})
	if err != nil {
		t.Fatal(err)
	}
	if err := abenet.RequireElected(rep); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSweepRunProtocol(t *testing.T) {
	sweep := abenet.Sweep{Name: "facade-by-name", Repetitions: 10, Seed: 8}
	points, err := sweep.RunProtocol("itai-rodeh-async", abenet.Env{},
		[]float64{6, 10}, abenet.RequireElected)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].Mean("messages") <= 0 {
		t.Fatalf("unexpected points: %+v", points)
	}
}

func TestFacadeClockSyncShimValidation(t *testing.T) {
	// The deprecated shim keeps the historical contract: zero Period or
	// Rounds is an error, not a silent default.
	if _, err := abenet.RunClockSync(abenet.ClockSyncConfig{Graph: abenet.Ring(4), Rounds: 10}); err == nil {
		t.Fatal("zero period must error")
	}
	if _, err := abenet.RunClockSync(abenet.ClockSyncConfig{Graph: abenet.Ring(4), Period: 2}); err == nil {
		t.Fatal("zero rounds must error")
	}
}
