// Quickstart: elect a leader on an anonymous unidirectional ABE ring.
//
// The library's API has three pieces, mirroring the paper's separation of
// network and algorithm:
//
//   - Env states the ABE environment (Definition 1) once: topology, link
//     delays (δ), clock speeds ([s_low, s_high]), processing times (γ),
//     and the seed.
//   - A Protocol bundles one algorithm with its options — here Election,
//     the paper's probabilistic leader election. Zero values select
//     balanced defaults.
//   - Run executes any protocol on any environment and returns a common
//     Report.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"abenet"
)

func main() {
	const n = 32

	// The paper's canonical setting: n nodes in a one-way ring, no
	// identities, exponential link delays with known expected delay δ = 1,
	// perfect clocks. Election{} defaults A0 to the balanced 1/n² — see
	// abenet.A0ForRing for the derivation.
	env := abenet.Env{N: n, Delay: abenet.Exponential(1), Seed: 42}

	rep, err := abenet.Run(env, abenet.Election{})
	if err != nil {
		log.Fatal(err)
	}

	extra := rep.Extra.(abenet.ElectionExtra)
	fmt.Printf("elected node %d on an anonymous ring of %d\n", rep.LeaderIndex, n)
	fmt.Printf("  virtual time : %.2f time units (δ = 1)\n", rep.Time)
	fmt.Printf("  messages     : %d (%.2f per node — the paper's linear average)\n",
		rep.Messages, float64(rep.Messages)/n)
	fmt.Printf("  activations  : %d candidate wake-ups, %d knocked out\n",
		extra.Activations, extra.Knockouts)

	// The same election runs unchanged on any topology embedding a ring —
	// here a hypercube; messages travel its Hamiltonian cycle.
	cube, err := abenet.Run(abenet.Env{Graph: abenet.Hypercube(5), Seed: 42}, abenet.Election{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame protocol on a hypercube(5): node %d won with %d messages\n",
		cube.LeaderIndex, cube.Messages)

	// Averages need repetition. Protocols are registered by name, so a
	// sweep needs no adapter code: x is the ring size, seeds are derived
	// deterministically per repetition.
	sweep := abenet.Sweep{Name: "quickstart", Repetitions: 100, Seed: 7}
	points, err := sweep.RunProtocol("election", abenet.Env{}, []float64{n}, abenet.RequireElected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nover 100 seeded runs:\n")
	fmt.Printf("  mean messages : %s\n", points[0].Samples["messages"])
	fmt.Printf("  mean time     : %s\n", points[0].Samples["time"])
}
