// Quickstart: elect a leader on an anonymous unidirectional ABE ring.
//
// The network is the paper's canonical setting: n nodes in a one-way ring,
// no identities, exponential link delays with known expected delay δ = 1,
// perfect clocks. The algorithm is parameterised only by the known ring
// size n and the base activation parameter A0.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"abenet"
)

func main() {
	const n = 32

	// A0 = 1/n² balances waiting time against knockout collisions; see
	// abenet.A0ForRing for the derivation.
	cfg := abenet.ElectionConfig{
		N:    n,
		A0:   abenet.DefaultA0(n),
		Seed: 42,
	}

	res, err := abenet.RunElection(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("elected node %d on an anonymous ring of %d\n", res.LeaderIndex, n)
	fmt.Printf("  virtual time : %.2f time units (δ = 1)\n", res.Time)
	fmt.Printf("  messages     : %d (%.2f per node — the paper's linear average)\n",
		res.Messages, float64(res.Messages)/n)
	fmt.Printf("  activations  : %d candidate wake-ups, %d knocked out\n",
		res.Activations, res.Knockouts)

	// Averages need repetition: run 100 seeds and report the mean.
	sweep := abenet.Sweep{Name: "quickstart", Repetitions: 100, Seed: 7}
	points, err := sweep.Run([]float64{n}, func(_ float64, seed uint64) (abenet.SweepMetrics, error) {
		r, err := abenet.RunElection(abenet.ElectionConfig{N: n, A0: abenet.DefaultA0(n), Seed: seed})
		if err != nil {
			return nil, err
		}
		return abenet.SweepMetrics{"messages": float64(r.Messages), "time": r.Time}, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	msgs := points[0].Samples["messages"]
	times := points[0].Samples["time"]
	fmt.Printf("\nover 100 seeded runs:\n")
	fmt.Printf("  mean messages : %s\n", msgs)
	fmt.Printf("  mean time     : %s\n", times)
}
