// Adhoc: a heterogeneous ad-hoc network — the paper's Section 2 argument
// for declaring a *bound* on the expected delay rather than the expected
// delay itself.
//
// Links differ (short hops, congested hops, multi-hop routed stretches),
// cheap node clocks drift within known bounds, and event processing takes
// real time. No single "expected delay" describes this network; the
// tightest valid ABE declaration is δ = max over links of E[delay],
// s_low/s_high from the clock spec sheet, and γ from the CPU budget —
// exactly Definition 1. This example builds such a network, verifies the
// declaration mechanically, and elects a coordinator.
//
// Run with:
//
//	go run ./examples/adhoc
package main

import (
	"fmt"
	"log"

	"abenet"
	"abenet/internal/channel"
	"abenet/internal/core"
	"abenet/internal/dist"
)

func main() {
	const n = 20

	// Three link classes laid around the ring: fast line-of-sight hops,
	// congested hops that occasionally stall, and routed stretches that
	// cross several relays (Erlang stages).
	linkFor := func(edge int) dist.Dist {
		switch edge % 3 {
		case 0:
			return dist.NewUniform(0.1, 0.5) // line of sight: mean 0.3
		case 1:
			return dist.NewBimodal( // congestion: mean 0.4·0.9 + 4·0.1 = 0.76
				dist.NewDeterministic(0.4),
				dist.NewExponential(4),
				0.1,
			)
		default:
			return dist.NewErlang(3, 1.2) // routed: mean 1.2
		}
	}

	// The declared ABE parameters: δ must cover the worst link (1.2),
	// clocks are ±25% parts, and processing is budgeted at 0.05 expected.
	declared := core.Params{Delta: 1.2, SLow: 0.75, SHigh: 1.25, Gamma: 0.05}
	if err := declared.Validate(); err != nil {
		log.Fatal(err)
	}

	// The whole deployment is one Env: links, clocks, processing, seed.
	env := abenet.Env{
		N:          n,
		Links:      channel.HeterogeneousFactory(linkFor),
		Clocks:     abenet.WanderingClocks(0.75, 1.25, 2),
		Processing: abenet.Exponential(0.05),
		Seed:       7,
	}
	proto := abenet.Election{A0: abenet.A0ForRing(n, declared.Delta, 1, 1)}

	res, err := abenet.Run(env, proto)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("declared ABE bounds (Definition 1):")
	fmt.Printf("  δ = %.3g   s ∈ [%.3g, %.3g]   γ = %.3g\n",
		declared.Delta, declared.SLow, declared.SHigh, declared.Gamma)
	fmt.Println("tightest parameters of the built network:")
	fmt.Printf("  δ = %.3g   s ∈ [%.3g, %.3g]   γ = %.3g\n",
		res.Params.Delta, res.Params.SLow, res.Params.SHigh, res.Params.Gamma)
	if declared.Admits(res.Params) {
		fmt.Println("  => declaration VALID: the network is ABE under these bounds")
	} else {
		fmt.Println("  => declaration INVALID")
	}

	fmt.Printf("\ncoordinator elected: node %d (%d leader)\n", res.LeaderIndex, res.Leaders)
	fmt.Printf("messages: %d, time: %.1f units\n", res.Messages, res.Time)

	// Average behaviour over many deployments: the sweep reuses the same
	// (env, protocol) pair and injects per-repetition seeds.
	sweep := abenet.Sweep{Name: "adhoc", Repetitions: 60, Seed: 99}
	points, err := sweep.RunEnv([]float64{n}, func(float64) (abenet.Env, abenet.Protocol, error) {
		return env, proto, nil
	}, abenet.RequireElected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nover 60 deployments: messages %s, time %s\n",
		points[0].Samples["messages"], points[0].Samples["time"])
	fmt.Println("heterogeneity moves the constants; the ABE guarantees hold unchanged.")
}
