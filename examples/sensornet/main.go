// Sensornet: the paper's motivating scenario, Section 1 case (iii).
//
// Sensor radios lose packets: each physical transmission succeeds only
// with probability p, so messages are retransmitted until they get
// through (stop-and-wait ARQ). The number of transmissions is unbounded —
// no ABD-style hard delay bound exists — but its expectation is exactly
// k_avg = Σ (k+1)(1−p)^k·p = 1/p, so the link has a *known bound on the
// expected delay*: an ABE network.
//
// This example (a) verifies k_avg = 1/p on a simulated lossy link, and
// (b) elects a cluster head over those lossy radios with the paper's
// algorithm.
//
// Run with:
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"log"

	"abenet"
)

func main() {
	fmt.Println("== part 1: lossy-channel arithmetic (k_avg = 1/p) ==")
	// A ring where each hop is a lossy radio with p = 0.4 and 0.5-time-
	// unit slots: expected delay = slot/p = 1.25 per hop.
	const (
		p    = 0.4
		slot = 0.5
		n    = 24
	)
	delta := slot / p
	fmt.Printf("per-attempt success p=%.1f, slot=%.2f  =>  δ = slot/p = %.3f\n\n", p, slot, delta)

	fmt.Println("== part 2: cluster-head election over the lossy radios ==")
	res, err := abenet.Run(
		abenet.Env{N: n, Links: abenet.ARQLinks(p, slot), Seed: 2026},
		abenet.Election{A0: abenet.A0ForRing(n, delta, 1, 1)},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster head : node %d (exactly %d leader)\n", res.LeaderIndex, res.Leaders)
	fmt.Printf("messages     : %d logical\n", res.Messages)
	fmt.Printf("transmissions: %d physical (%.2f per message — expect 1/p = %.2f)\n",
		res.Transmissions, float64(res.Transmissions)/float64(res.Messages), 1/p)
	fmt.Printf("δ reported   : %.3f (network's worst link mean, = slot/p)\n", res.Params.Delta)
	fmt.Printf("time         : %.1f units\n\n", res.Time)

	fmt.Println("== part 3: the same election across radio qualities ==")
	fmt.Printf("%-6s  %-10s  %-14s  %-12s\n", "p", "δ=slot/p", "transmissions", "time")
	for _, quality := range []float64{0.9, 0.6, 0.4, 0.2} {
		quality := quality
		d := slot / quality
		sweep := abenet.Sweep{Name: fmt.Sprintf("sensornet-p%.1f", quality), Repetitions: 40, Seed: 5}
		points, err := sweep.RunEnv([]float64{quality}, func(float64) (abenet.Env, abenet.Protocol, error) {
			return abenet.Env{N: n, Links: abenet.ARQLinks(quality, slot)},
				abenet.Election{A0: abenet.A0ForRing(n, d, 1, 1)}, nil
		}, abenet.RequireElected)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.1f  %-10.3f  %-14.1f  %-12.1f\n",
			quality, d, points[0].Mean("transmissions"), points[0].Mean("time"))
	}
	fmt.Println("\nworse radios stretch δ and the election time, but correctness and")
	fmt.Println("the linear message budget survive — only the *expected* delay matters.")
}
