// Synchronizer: Theorem 1 in action, through the unified API.
//
// "ABE networks of size n cannot be synchronised with fewer than n
// messages per round" — so running synchronous algorithms on an ABE
// network destroys their message complexity. This example measures all
// three sides of that statement with one Env and three protocols:
//
//  1. message-driven synchronizers (Synchronized) pay ≥ n messages every
//     round;
//  2. the zero-message clock-driven alternative (ClockSync) silently
//     breaks rounds on ABE delays;
//  3. a synchronous election run through a synchronizer
//     (SynchronizedElection) costs a large multiple of the native ABE
//     election (Election) on the identical network.
//
// Run with:
//
//	go run ./examples/synchronizer
package main

import (
	"fmt"
	"log"
	"os"

	"abenet"
	"abenet/internal/harness"
)

// pulse sends one payload per edge per round, for limit rounds.
type pulse struct{ limit int }

func (p *pulse) Round(ctx abenet.SyncProtocolContext, round int, _ []abenet.SyncMessage) {
	if round >= p.limit {
		ctx.StopNetwork("done")
		return
	}
	for port := 0; port < ctx.OutDegree(); port++ {
		ctx.Send(port, round)
	}
}

func main() {
	const n = 16

	fmt.Println("== 1. every synchronised round costs at least n messages ==")
	table := harness.NewTable("", "synchronizer", "topology", "msgs/round", "Theorem 1 bound")
	for _, c := range []struct {
		kind  abenet.SyncKind
		name  string
		graph *abenet.Graph
	}{
		{abenet.SyncRound, "ring(16)", abenet.Ring(n)},
		{abenet.SyncRound, "biring(16)", abenet.BiRing(n)},
		{abenet.SyncAlpha, "biring(16)", abenet.BiRing(n)},
	} {
		rep, err := abenet.Run(
			abenet.Env{Graph: c.graph, Seed: 1},
			abenet.Synchronized{
				Kind:     c.kind,
				MakeNode: func(int) abenet.SyncProtocol { return &pulse{limit: 40} },
			},
		)
		if err != nil {
			log.Fatal(err)
		}
		table.AddRow(c.kind.String(), c.name,
			fmt.Sprintf("%.1f", rep.Extra.(abenet.SyncExtra).MessagesPerRound), fmt.Sprint(n))
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== 2. the zero-message ABD synchronizer breaks on ABE delays ==")
	for _, period := range []float64{2, 4} {
		abd, err := abenet.Run(
			abenet.Env{N: n, Delay: abenet.Uniform(0, 1), Seed: 1},
			abenet.ClockSync{Period: period, Rounds: 300},
		)
		if err != nil {
			log.Fatal(err)
		}
		abe, err := abenet.Run(
			abenet.Env{N: n, Delay: abenet.Exponential(0.5), Seed: 1},
			abenet.ClockSync{Period: period, Rounds: 300},
		)
		if err != nil {
			log.Fatal(err)
		}
		abdX := abd.Extra.(abenet.ClockSyncExtra)
		abeX := abe.Extra.(abenet.ClockSyncExtra)
		fmt.Printf("period %.0f: bounded delays %d violations; ABE delays %d violations (%.2f%%)\n",
			period, abdX.RoundViolations, abeX.RoundViolations, 100*abeX.ViolationRate)
	}

	fmt.Println("\n== 3. synchronous election via synchronizer vs native ABE election ==")
	env := abenet.Env{N: n, Seed: 3}
	native, err := abenet.Run(env, abenet.Election{})
	if err != nil {
		log.Fatal(err)
	}
	syncEnv := env
	syncEnv.MaxRounds = 100_000
	synced, err := abenet.Run(syncEnv, abenet.SynchronizedElection{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native ABE election        : %d messages\n", native.Messages)
	fmt.Printf("Itai-Rodeh + synchronizer  : %d messages over %d rounds\n", synced.Messages, synced.Rounds)
	fmt.Printf("overhead                   : %.1fx — the message complexity Theorem 1 predicts you lose\n",
		float64(synced.Messages)/float64(native.Messages))
}
