// Synchronizer: Theorem 1 in action.
//
// "ABE networks of size n cannot be synchronised with fewer than n
// messages per round" — so running synchronous algorithms on an ABE
// network destroys their message complexity. This example measures all
// three sides of that statement:
//
//  1. message-driven synchronizers pay ≥ n messages every round;
//  2. the zero-message clock-driven (ABD) alternative silently breaks
//     rounds on ABE delays;
//  3. a synchronous election run through a synchronizer costs a large
//     multiple of the native ABE election on the identical network.
//
// Run with:
//
//	go run ./examples/synchronizer
package main

import (
	"fmt"
	"log"
	"os"

	"abenet"
	"abenet/internal/election"
	"abenet/internal/harness"
	"abenet/internal/synchronizer"
	"abenet/internal/syncnet"
	"abenet/internal/topology"
)

// pulse sends one payload per edge per round, for limit rounds.
type pulse struct{ limit int }

func (p *pulse) Round(ctx syncnet.NodeContext, round int, _ []syncnet.Message) {
	if round >= p.limit {
		ctx.StopNetwork("done")
		return
	}
	for port := 0; port < ctx.OutDegree(); port++ {
		ctx.Send(port, round)
	}
}

func main() {
	const n = 16

	fmt.Println("== 1. every synchronised round costs at least n messages ==")
	table := harness.NewTable("", "synchronizer", "topology", "msgs/round", "Theorem 1 bound")
	for _, c := range []struct {
		kind  synchronizer.Kind
		name  string
		graph *topology.Graph
	}{
		{synchronizer.KindRound, "ring(16)", topology.Ring(n)},
		{synchronizer.KindRound, "biring(16)", topology.BiRing(n)},
		{synchronizer.KindAlpha, "biring(16)", topology.BiRing(n)},
	} {
		res, err := synchronizer.Run(synchronizer.Config{
			Kind: c.kind, Graph: c.graph, Seed: 1,
		}, func(int) syncnet.Node { return &pulse{limit: 40} })
		if err != nil {
			log.Fatal(err)
		}
		table.AddRow(c.kind.String(), c.name,
			fmt.Sprintf("%.1f", res.MessagesPerRound), fmt.Sprint(n))
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== 2. the zero-message ABD synchronizer breaks on ABE delays ==")
	for _, period := range []float64{2, 4} {
		abd, err := abenet.RunClockSync(abenet.ClockSyncConfig{
			Graph: abenet.Ring(n), Delay: abenet.Uniform(0, 1),
			Period: period, Rounds: 300, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		abe, err := abenet.RunClockSync(abenet.ClockSyncConfig{
			Graph: abenet.Ring(n), Delay: abenet.Exponential(0.5),
			Period: period, Rounds: 300, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("period %.0f: bounded delays %d violations; ABE delays %d violations (%.2f%%)\n",
			period, abd.Violations, abe.Violations, 100*abe.ViolationRate())
	}

	fmt.Println("\n== 3. synchronous election via synchronizer vs native ABE election ==")
	native, err := abenet.RunElection(abenet.ElectionConfig{
		N: n, A0: abenet.DefaultA0(n), Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	nodes := make([]*election.ItaiRodehSyncNode, n)
	synced, err := synchronizer.Run(synchronizer.Config{
		Kind:      synchronizer.KindRound,
		Graph:     topology.Ring(n),
		Seed:      3,
		Anonymous: true,
		MaxRounds: 100_000,
	}, func(i int) syncnet.Node {
		node, err := election.NewItaiRodehSyncNode(n, 1.0/float64(n))
		if err != nil {
			panic(err) // parameters validated above; unreachable
		}
		nodes[i] = node
		return node
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native ABE election        : %d messages\n", native.Messages)
	fmt.Printf("Itai-Rodeh + synchronizer  : %d messages over %d rounds\n", synced.Messages, synced.Rounds)
	fmt.Printf("overhead                   : %.1fx — the message complexity Theorem 1 predicts you lose\n",
		float64(synced.Messages)/float64(native.Messages))
}
