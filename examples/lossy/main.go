// Lossy: the fault-injection walkthrough — what happens to the paper's
// election when the ABE comfort zone ends.
//
// Definition 1 bounds the *expectation* of message delays; it says nothing
// about messages that never arrive, nodes that die, or segments that
// partition. This example leaves that comfort zone in three acts:
//
//  1. A loss sweep: raw per-message loss versus the same physical loss
//     handled by stop-and-wait ARQ (the paper's Section 1 case (iii)).
//     Raw loss breaks guaranteed termination; ARQ restores it and merely
//     inflates the expected delay to slot/p — which is exactly the regime
//     the ABE model absorbs.
//  2. Crash–recovery churn: nodes keep dying and restarting with fresh
//     state while the election runs anyway.
//  3. A scripted partition that heals — with a twist. Healing the
//     *network* is not enough: the election has no self-stabilization
//     (nodes knocked passive never re-candidate), so once every token has
//     died at the cut the healed ring stays leaderless forever. Two
//     escapes are shown: restart churn — crash-recovery bringing nodes
//     back as fresh idle candidates — and the opt-in re-candidacy
//     timeout (Election.RecandidacyTimeout), which lets a quiesced
//     passive node rejoin as a candidate in a fresh epoch without any
//     node ever dying.
//
// Every run is a pure function of (environment, fault plan, seed) — rerun
// the example and the tables reproduce byte for byte.
//
// Run with:
//
//	go run ./examples/lossy
package main

import (
	"fmt"
	"log"

	"abenet"
	"abenet/internal/simtime"
)

const (
	n       = 16
	horizon = simtime.Time(2000)
	reps    = 40
)

func main() {
	lossSweep()
	churn()
	partition()
}

// lossSweep contrasts raw loss with ARQ-protected loss across 0–20%.
func lossSweep() {
	fmt.Println("Act 1 — loss sweep: raw loss vs stop-and-wait ARQ")
	fmt.Println("loss   raw: elected   raw: time   arq: elected   arq: time")
	for _, loss := range []float64{0, 0.05, 0.10, 0.20} {
		raw := sweep("raw", abenet.Env{N: n, Horizon: horizon},
			&abenet.FaultPlan{Loss: loss})
		arq := sweep("arq", abenet.Env{
			N: n,
			// Same physical loss rate, but every transmission is retried
			// until it lands: mean delay slot/p, no message ever lost.
			Links: abenet.ARQLinks(1-loss, 1),
			Delta: 1 / (1 - loss),
		}, nil)
		fmt.Printf("%3.0f%%   %11.0f%%   %9.1f   %11.0f%%   %9.1f\n",
			loss*100, raw.elected*100, raw.time, arq.elected*100, arq.time)
	}
	fmt.Println()
}

// churn runs the election under permanent crash-recovery pressure.
func churn() {
	fmt.Println("Act 2 — crash-recovery churn (crash rate 0.01, recovery rate 0.1)")
	rep, err := abenet.Run(abenet.Env{
		N:       n,
		Seed:    7,
		Horizon: horizon,
		Faults:  &abenet.FaultPlan{CrashRate: 0.01, RecoverRate: 0.1},
	}, abenet.Election{})
	if err != nil {
		log.Fatal(err)
	}
	tel := rep.Faults
	fmt.Printf("leader elected      : node %d at t=%.1f (leaders: %d)\n",
		rep.LeaderIndex, rep.Time, rep.Leaders)
	fmt.Printf("churn survived      : %d crashes, %d recoveries, %d dead letters, %d stale timers\n\n",
		tel.Crashes, tel.Recoveries, tel.DeadLetters, tel.TimersSuppressed)
}

// partition cuts the ring in half during [0, 60), heals it, and shows
// that only restart churn brings the wedged protocol back.
func partition() {
	fmt.Println("Act 3 — partition {0..7} | {8..15} during [0, 60), then heal")
	cut := abenet.PartitionDuring(0, 60, 0, 1, 2, 3, 4, 5, 6, 7)

	// Heal alone: every token dies at the cut, the survivors are passive,
	// and passive nodes never re-candidate. The healed ring is wedged.
	wedged, err := abenet.Run(abenet.Env{
		N: n, Seed: 11, Horizon: horizon,
		Faults: &abenet.FaultPlan{Events: cut},
	}, abenet.Election{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heal alone          : elected=%v after %.0f time units (%d sends died at the cut)\n",
		wedged.Elected, wedged.Time, wedged.Faults.LinkDrops)

	// Heal plus churn: restarts return nodes to the idle state, fresh
	// candidacies flow, and the election completes after the heal.
	healed, err := abenet.Run(abenet.Env{
		N: n, Seed: 2, Horizon: 5000,
		Faults: &abenet.FaultPlan{Events: cut, CrashRate: 0.005, RecoverRate: 0.05},
	}, abenet.Election{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heal + churn        : elected=%v — node %d wins at t=%.1f (churn: %d restarts)\n",
		healed.Elected, healed.LeaderIndex, healed.Time, healed.Faults.Recoveries)

	// Heal plus re-candidacy: same scenario and seed as the wedged run,
	// but passive nodes that see no traffic for 150 local time units
	// rejoin as candidates (in a fresh epoch, so stale knowledge cannot
	// corrupt the hop arithmetic). Liveness returns without a single
	// crash.
	revived, err := abenet.Run(abenet.Env{
		N: n, Seed: 11, Horizon: horizon,
		Faults: &abenet.FaultPlan{Events: cut},
	}, abenet.Election{RecandidacyTimeout: 150})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heal + re-candidacy : elected=%v — node %d wins at t=%.1f (%d re-candidacies, 0 crashes)\n",
		revived.Elected, revived.LeaderIndex, revived.Time,
		revived.Extra.(abenet.ElectionExtra).Recandidacies)
}

// outcome aggregates a small seeded sweep by hand (the experiment harness
// does this at scale; see internal/experiments.E13LossResilience).
type outcome struct{ elected, time float64 }

func sweep(label string, env abenet.Env, plan *abenet.FaultPlan) outcome {
	var out outcome
	for seed := 0; seed < reps; seed++ {
		env := env
		env.Seed = 1000*uint64(seed) + 17
		env.Faults = plan
		rep, err := abenet.Run(env, abenet.Election{})
		if err != nil {
			log.Fatalf("%s sweep: %v", label, err)
		}
		if rep.Elected {
			out.elected++
		}
		out.time += rep.Time
	}
	out.elected /= reps
	out.time /= reps
	return out
}
