package abenet_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"abenet"
	"abenet/internal/channel"
	"abenet/internal/dist"
	"abenet/internal/experiments"
	"abenet/internal/rng"
	"abenet/internal/sim"
	"abenet/internal/simtime"
)

// One benchmark per experiment (E1..E15, DESIGN.md §5 plus the PR 3 fault
// suite). Each iteration
// executes the experiment in its reduced (Quick) configuration — the full
// configurations are run by cmd/abe-bench, which regenerates the tables
// recorded in EXPERIMENTS.md. Headline findings are attached as custom
// benchmark metrics so regressions in the *shape* of a result (growth
// exponents, violation rates, overhead factors) show up in benchmark diffs.

func benchExperiment(b *testing.B, run func(experiments.Options) (experiments.Result, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		// Fixed seed: each iteration measures the identical deterministic
		// workload (seed 1 quick mode, which the test suite verifies to
		// reproduce the claim). Varying the seed here would make timings
		// incomparable and the quick-mode shape criteria — designed for
		// that verified configuration — statistically fragile.
		res, err := run(experiments.Options{Quick: true, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Pass {
			b.Fatalf("%s failed to reproduce its claim: %v", res.ID, res.Findings)
		}
		if i == b.N-1 { // report the last iteration's findings
			for name, v := range res.Findings {
				b.ReportMetric(v, name)
			}
		}
	}
}

func BenchmarkE1RetransmissionDelay(b *testing.B) {
	benchExperiment(b, experiments.E1Retransmission)
}

func BenchmarkE2ElectionCorrectness(b *testing.B) {
	benchExperiment(b, experiments.E2Correctness)
}

func BenchmarkE3MessagesVsN(b *testing.B) {
	benchExperiment(b, experiments.E3Messages)
}

func BenchmarkE4TimeVsN(b *testing.B) {
	benchExperiment(b, experiments.E4Time)
}

func BenchmarkE5ActivationAblation(b *testing.B) {
	benchExperiment(b, experiments.E5Ablation)
}

func BenchmarkE6A0Sweep(b *testing.B) {
	benchExperiment(b, experiments.E6A0Sweep)
}

func BenchmarkE7VsItaiRodeh(b *testing.B) {
	benchExperiment(b, experiments.E7Comparison)
}

func BenchmarkE8SynchronizerOverhead(b *testing.B) {
	benchExperiment(b, experiments.E8Synchronizer)
}

func BenchmarkE9ABDSyncOnABE(b *testing.B) {
	benchExperiment(b, experiments.E9ABDOnABE)
}

func BenchmarkE10DelayDistributions(b *testing.B) {
	benchExperiment(b, experiments.E10DelayShapes)
}

func BenchmarkE11ClockDrift(b *testing.B) {
	benchExperiment(b, experiments.E11ClockDrift)
}

func BenchmarkE12ProcessingDelay(b *testing.B) {
	benchExperiment(b, experiments.E12Processing)
}

func BenchmarkE13LossResilience(b *testing.B) {
	benchExperiment(b, experiments.E13LossResilience)
}

func BenchmarkE14ByzantineBroadcast(b *testing.B) {
	benchExperiment(b, experiments.E14ByzantineBroadcast)
}

func BenchmarkE15CausalDepth(b *testing.B) {
	benchExperiment(b, experiments.E15CausalDepth)
}

func BenchmarkE16ScalingLadder(b *testing.B) {
	benchExperiment(b, experiments.E16Scale)
}

// ---- Micro-benchmarks of the core building blocks ----

func BenchmarkSingleElection64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := abenet.RunElection(abenet.ElectionConfig{
			N:    64,
			A0:   abenet.DefaultA0(64),
			Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Leaders != 1 {
			b.Fatalf("leaders = %d", res.Leaders)
		}
	}
}

func BenchmarkSingleElection512(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := abenet.RunElection(abenet.ElectionConfig{
			N:    512,
			A0:   abenet.DefaultA0(512),
			Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Leaders != 1 {
			b.Fatalf("leaders = %d", res.Leaders)
		}
	}
}

func BenchmarkItaiRodehSync64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := abenet.RunItaiRodehSync(64, 0, uint64(i), 0)
		if err != nil {
			b.Fatal(err)
		}
		if res.Leaders != 1 {
			b.Fatalf("leaders = %d", res.Leaders)
		}
	}
}

func BenchmarkChangRoberts64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := abenet.RunChangRoberts(abenet.ChangRobertsConfig{N: 64, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Leaders != 1 {
			b.Fatalf("leaders = %d", res.Leaders)
		}
	}
}

func BenchmarkModelCheckRing4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report, err := abenet.CheckElection(abenet.CheckOptions{N: 4})
		if err != nil {
			b.Fatal(err)
		}
		if !report.OK() {
			b.Fatal("model check failed")
		}
	}
}

func BenchmarkLiveElection8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := abenet.RunLiveElection(abenet.LiveElectionConfig{
			N:         8,
			A0:        0.05,
			MeanDelay: 50 * time.Microsecond,
			Seed:      uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Leaders != 1 {
			b.Fatalf("leaders = %d", res.Leaders)
		}
	}
}

// ---- Benchmarks through the unified Run path ----
//
// These drive the Env/Protocol/Report API directly (CI's bench smoke step
// records them in BENCH_pr2.json): one canonical election, one non-ring
// environment, and a registry pass that runs the protocols by name —
// exactly the code path Sweep.RunProtocol and the CLIs use.

func BenchmarkRunElection64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := abenet.Run(abenet.Env{N: 64, Seed: uint64(i)}, abenet.Election{})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Leaders != 1 {
			b.Fatalf("leaders = %d", rep.Leaders)
		}
	}
}

func BenchmarkRunElectionHypercube64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := abenet.Run(abenet.Env{Graph: abenet.Hypercube(6), Seed: uint64(i)}, abenet.Election{})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Leaders != 1 {
			b.Fatalf("leaders = %d", rep.Leaders)
		}
	}
}

// ---- Scaling ladder and delivery-path allocation benchmarks (PR 10) ----

// BenchmarkScaleElection runs one rung of the E16 ladder per sub-benchmark:
// a ring election parameterised for O(n) total events (A0 = 1/n, tick
// interval n) under each kernel scheduler. Run with -benchtime 1x: each
// "op" is one complete election, and the attached events/sec metric is the
// kernel throughput headline BENCH_pr10.json records. The ladder tops out
// at n = 10⁵ here; the 10⁶ rung costs ~½ minute per scheduler, so it opts
// in via ABE_BENCH_MILLION=1 (the BENCH_pr10.json one-liner in README.md
// sets it).
func BenchmarkScaleElection(b *testing.B) {
	sizes := []int{1_000, 10_000, 100_000}
	if os.Getenv("ABE_BENCH_MILLION") != "" {
		sizes = append(sizes, 1_000_000)
	}
	for _, sched := range abenet.Schedulers() {
		for _, n := range sizes {
			b.Run(fmt.Sprintf("%s/n=%d", sched, n), func(b *testing.B) {
				var events uint64
				for i := 0; i < b.N; i++ {
					res, err := abenet.RunElection(abenet.ElectionConfig{
						N:            n,
						A0:           1 / float64(n),
						TickInterval: float64(n),
						Seed:         1,
						Scheduler:    sched,
						MaxEvents:    2_000_000_000,
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Leaders != 1 {
						b.Fatalf("leaders = %d", res.Leaders)
					}
					events += res.Events
				}
				b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
			})
		}
	}
}

// BenchmarkLinkDelivery measures the per-message cost of the pooled,
// batched delivery path in isolation: b.N sends through one link, drained
// in one kernel run. allocs/op is the headline — the payload pool and the
// batch event amortise what used to be one scheduled closure per message —
// so CI runs this under -benchmem and benchjson's allocation table pins
// the delta against the previous PR's baseline.
func BenchmarkLinkDelivery(b *testing.B) {
	for _, tc := range []struct {
		name string
		make func(k *sim.Kernel, r *rng.Source, deliver channel.DeliverFunc) channel.Link
	}{
		{"random-delay", func(k *sim.Kernel, r *rng.Source, deliver channel.DeliverFunc) channel.Link {
			return channel.NewRandomDelay(k, dist.NewExponential(1), r, deliver)
		}},
		{"fifo", func(k *sim.Kernel, r *rng.Source, deliver channel.DeliverFunc) channel.Link {
			return channel.NewFIFO(k, dist.NewExponential(1), r, deliver)
		}},
		{"arq", func(k *sim.Kernel, r *rng.Source, deliver channel.DeliverFunc) channel.Link {
			return channel.NewARQ(k, 0.9, 1, r, deliver)
		}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			kernel := sim.New()
			delivered := 0
			link := tc.make(kernel, rng.New(7), func(any) { delivered++ })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				link.Send(i)
			}
			if err := kernel.Run(simtime.Forever, 0); err != nil {
				b.Fatal(err)
			}
			if delivered != b.N {
				b.Fatalf("delivered %d of %d", delivered, b.N)
			}
		})
	}
}

func BenchmarkRunRegistry16(b *testing.B) {
	// The whole registry on one default environment. live-election is
	// excluded: it sleeps wall-clock time, which is not what this
	// throughput benchmark tracks.
	for i := 0; i < b.N; i++ {
		for _, name := range abenet.Protocols() {
			if name == "live-election" {
				continue
			}
			p, ok := abenet.ProtocolByName(name)
			if !ok {
				b.Fatalf("%s missing from registry", name)
			}
			rep, err := abenet.Run(abenet.Env{N: 16, Seed: uint64(i)}, p)
			if err != nil {
				b.Fatalf("%s: %v", name, err)
			}
			if rep.Messages == 0 {
				b.Fatalf("%s: no messages", name)
			}
		}
	}
}
