package abenet_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"abenet"
	"abenet/internal/probe"
	"abenet/internal/simtime"
	"abenet/internal/spec"
	"abenet/internal/trace"
)

// TestSchedulerDifferentialDeterminism is the cross-scheduler analogue of
// the golden pins: both kernel schedulers implement the same (time, seq)
// total order, so every deterministic scenario in the registry — plain
// elections, the comparison baselines, the synchronizers, consensus, the
// fault- and adversary-injected golden runs, and observed/traced runs —
// must produce byte-identical Reports under "heap" and "calendar". A
// divergence here means a scheduler reordered same-instant events, which
// would silently invalidate every golden pin the moment anyone flips the
// performance knob.
func TestSchedulerDifferentialDeterminism(t *testing.T) {
	faultEnv, faultProto := goldenFaultEnv()
	byzEnv, byzProto := goldenByzantineEnv()
	scenarios := []struct {
		name  string
		env   abenet.Env
		proto abenet.Protocol
	}{
		{"election", abenet.Env{N: 10, Seed: 7}, abenet.Election{}},
		{"election/observed", abenet.Env{N: 8, Seed: 3,
			Observe: &probe.Config{EveryEvents: 2, Interval: 0.5}}, abenet.Election{}},
		{"election/traced", abenet.Env{N: 6, Seed: 5,
			Trace: &trace.Config{}}, abenet.Election{}},
		{"election/faults", faultEnv, faultProto},
		{"ben-or/byzantine", byzEnv, byzProto},
		{"chang-roberts", abenet.Env{N: 16, Seed: 11}, abenet.ChangRoberts{}},
		{"peterson", abenet.Env{N: 16, Seed: 13}, abenet.Peterson{}},
		{"itai-rodeh-async", abenet.Env{N: 8, Seed: 17}, abenet.ItaiRodehAsync{}},
		{"itai-rodeh-sync", abenet.Env{N: 8, Seed: 19}, abenet.ItaiRodehSync{}},
		{"synchronized-election", abenet.Env{N: 8, Seed: 23}, abenet.SynchronizedElection{}},
		{"clock-sync", abenet.Env{N: 6, Seed: 29, MaxRounds: 40}, abenet.ClockSync{}},
		{"ben-or/clean", abenet.Env{N: 7, Seed: 31, MaxRounds: 60}, abenet.BenOr{Init: "half"}},
		{"election/arq-links", abenet.Env{N: 8, Seed: 37,
			Links: abenet.ARQLinks(0.5, 1), Horizon: simtime.Time(50000)}, abenet.Election{}},
		{"election/fifo-links", abenet.Env{N: 8, Seed: 41,
			Links: abenet.FIFOLinks(abenet.Exponential(1))}, abenet.Election{}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			type rendered struct {
				rep   abenet.Report
				bytes string
			}
			runs := map[string]rendered{}
			for _, sched := range abenet.Schedulers() {
				env := sc.env
				env.Scheduler = sched
				rep, err := abenet.Run(env, sc.proto)
				if err != nil {
					t.Fatalf("%s: %v", sched, err)
				}
				// JSON flattens every pointer field (fault telemetry, series,
				// trace) to content, so equal bytes mean equal values down to
				// float bit patterns — Go renders each float's shortest exact
				// representation.
				b, err := json.Marshal(rep)
				if err != nil {
					t.Fatalf("%s: marshal: %v", sched, err)
				}
				runs[sched] = rendered{rep: rep, bytes: string(b)}
			}
			ref := runs[abenet.SchedulerHeap]
			for _, sched := range abenet.Schedulers() {
				got := runs[sched]
				if !reflect.DeepEqual(got.rep, ref.rep) {
					t.Errorf("scheduler %q diverged from heap:\n heap:     %+v\n %s: %+v",
						sched, ref.rep, sched, got.rep)
				}
				if got.bytes != ref.bytes {
					t.Errorf("scheduler %q rendered report differs from heap:\n heap:     %s\n %s: %s",
						sched, ref.bytes, sched, got.bytes)
				}
			}
		})
	}
}

// TestSchedulerFieldSpecHashStable pins that env.scheduler stays outside
// scenario identity: a spec with the field set hashes identically to the
// same spec without it. Runs are byte-identical across schedulers (the test
// above), so the knob must not split the service's result cache or change
// any previously published spec hash.
func TestSchedulerFieldSpecHashStable(t *testing.T) {
	base := []byte(`{"version":1,"env":{"n":8,"seed":5},"protocol":{"name":"election"}}`)
	withSched := []byte(`{"version":1,"env":{"n":8,"seed":5,"scheduler":"calendar"},"protocol":{"name":"election"}}`)

	hash := func(raw []byte) string {
		s, err := spec.DecodeBytes(raw)
		if err != nil {
			t.Fatal(err)
		}
		h, err := s.Hash()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	a, b := hash(base), hash(withSched)
	if a != b {
		t.Fatalf("env.scheduler changed the spec hash: %s vs %s", a, b)
	}
}
