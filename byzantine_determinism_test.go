package abenet_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"abenet"
)

// goldenByzantineEnv is the pinned (Env, Plan, seed) triple for the
// adversary subsystem: Ben-Or at the f < n/3 edge on the local-broadcast
// medium, with every adversarial behaviour class active at once — an
// equivocator (which the medium degrades to consistent corruption), a
// probabilistic corruptor, and a staller with a non-default hold-back
// distribution.
func goldenByzantineEnv() (abenet.Env, abenet.Protocol) {
	plan := &abenet.ByzantinePlan{Roles: []abenet.ByzantineRole{
		{Node: 0, Behavior: abenet.Equivocate},
		{Node: 1, Behavior: abenet.Corrupt, Prob: 0.5},
		{Node: 2, Behavior: abenet.Stall, StallDelay: abenet.Exponential(2)},
	}}
	env := abenet.Env{
		Graph:          abenet.Complete(11),
		Seed:           4242,
		MaxRounds:      60,
		Byzantine:      plan,
		LocalBroadcast: true,
	}
	return env, abenet.BenOr{F: 3, Init: "half", Coin: "common"}
}

// TestGoldenByzantineRun pins the exact trajectory of the golden adversarial
// consensus run: an adversarial run is a pure function of (Env, Plan, seed),
// so these literals only change when the kernel, the RNG derivation tree,
// the broadcast medium or the adversary semantics change — which must be
// deliberate and explained in the same commit (the Byzantine analogue of
// TestGoldenFaultRun).
func TestGoldenByzantineRun(t *testing.T) {
	env, proto := goldenByzantineEnv()
	rep, err := abenet.Run(env, proto)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults == nil || rep.Faults.Byzantine == nil {
		t.Fatal("no adversary telemetry")
	}
	extra, ok := rep.Extra.(abenet.ConsensusExtra)
	if !ok {
		t.Fatalf("Extra is %T, want ConsensusExtra", rep.Extra)
	}
	byz := rep.Faults.Byzantine
	got := map[string]int{
		"messages":       int(rep.Messages),
		"transmissions":  int(rep.Transmissions),
		"rounds":         rep.Rounds,
		"violations":     len(rep.Violations),
		"equivocations":  int(byz.Equivocations),
		"corruptions":    int(byz.Corruptions),
		"omissions":      int(byz.Omissions),
		"stalls":         int(byz.Stalls),
		"honest":         extra.Honest,
		"decided":        extra.Decided,
		"decision":       extra.Decision,
		"decision_round": extra.DecisionRound,
		"coin_flips":     extra.CoinFlips,
		"ignored":        extra.Ignored,
	}
	want := map[string]int{
		"messages":       165,
		"transmissions":  163,
		"rounds":         8,
		"violations":     0,
		"equivocations":  0,
		"corruptions":    26,
		"omissions":      0,
		"stalls":         15,
		"honest":         8,
		"decided":        8,
		"decision":       0,
		"decision_round": 7,
		"coin_flips":     40,
		"ignored":        0,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("golden byzantine run drifted:\n got:  %v\n want: %v", got, want)
	}
	if !extra.Agreement || !extra.Validity || !extra.Termination {
		t.Fatalf("safety/liveness verdicts = %v/%v/%v, want all true",
			extra.Agreement, extra.Validity, extra.Termination)
	}
	// The radio medium defeated the equivocator: its substitutions are
	// consistent, so they land in Corruptions and Equivocations stays zero.
	if byz.Equivocations != 0 {
		t.Errorf("equivocations = %d on the broadcast medium, want 0", byz.Equivocations)
	}
	// The virtual-time trajectory, bit-exact: the strongest indicator that
	// the broadcast and stall RNG derivation trees are unchanged.
	if ts := fmt.Sprintf("%.9g", rep.Time); ts != "18.3049633" {
		t.Errorf("time = %s, want 18.3049633", ts)
	}
}

// TestByzantineRunByteIdentical asserts byte-identical Reports (adversary
// telemetry included) for the fixed triple across two sequential runs and a
// concurrent pair — the latter exercising the determinism contract under the
// race detector, where sweep workers share graphs and plans.
func TestByzantineRunByteIdentical(t *testing.T) {
	env, proto := goldenByzantineEnv()
	runOnce := func() abenet.Report {
		rep, err := abenet.Run(env, proto)
		if err != nil {
			t.Error(err)
		}
		return rep
	}

	// render flattens a report to bytes with both telemetry levels
	// dereferenced (pointer fields would otherwise render as addresses), so
	// "byte-identical" means every field including float bit patterns.
	render := func(rep abenet.Report) string {
		flat := rep
		flat.Faults = nil
		tel := *rep.Faults
		byz := *tel.Byzantine
		tel.Byzantine = nil
		return fmt.Sprintf("%#v|%#v|%#v", flat, tel, byz)
	}

	first, second := runOnce(), runOnce()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("sequential runs diverged:\n a: %+v\n b: %+v", first, second)
	}
	if a, b := render(first), render(second); a != b {
		t.Fatalf("rendered reports diverged:\n a: %s\n b: %s", a, b)
	}

	// Concurrent runs sharing the same Env and *Plan (as sweep workers do)
	// must neither race nor diverge.
	const workers = 4
	reports := make([]abenet.Report, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i] = runOnce()
		}(i)
	}
	wg.Wait()
	for i, rep := range reports {
		if !reflect.DeepEqual(rep, first) {
			t.Fatalf("concurrent run %d diverged:\n got:  %+v\n want: %+v", i, rep, first)
		}
	}
}
