// Package abenet is a library for building and analysing asynchronous
// bounded expected delay (ABE) networks, reproducing
//
//	R. Bakhshi, J. Endrullis, W. Fokkink, J. Pang.
//	"Brief Announcement: Asynchronous Bounded Expected Delay Networks",
//	PODC 2010 (full version: arXiv:1003.2084).
//
// The ABE model strengthens asynchronous networks with three known bounds
// (Definition 1): δ on the expected message delay, [s_low, s_high] on local
// clock speeds, and γ on the expected event-processing time. Every
// asynchronous execution remains possible — only a bound on the delay's
// expectation is assumed, not on the delay itself — which captures lossy
// radio links with retransmission, congested links, and dynamic routing.
//
// The package exposes:
//
//   - the ABE model as machine-checkable parameters (Params, VerifyNetwork);
//   - the paper's probabilistic leader-election algorithm for anonymous,
//     unidirectional ABE rings of known size, with average linear time and
//     message complexity (RunElection, A0ForRing);
//   - baseline elections for comparison: Itai–Rodeh on synchronous and
//     asynchronous anonymous rings, Chang–Roberts with identities
//     (RunItaiRodehSync, RunItaiRodehAsync, RunChangRoberts);
//   - synchronizers and the Theorem 1 measurement machinery: the round and
//     α synchronizers (≥ n messages per round) and the clock-driven ABD
//     synchronizer whose round discipline provably breaks on ABE networks
//     (RunSynchronized, RunClockSync);
//   - an exhaustive bounded model checker for the election protocol's
//     safety invariants (CheckElection);
//   - a live goroutine/channel runtime demonstrating the algorithm under
//     real concurrency (RunLiveElection);
//   - a seeded experiment harness for parameter sweeps with confidence
//     intervals and growth-exponent fits (Sweep, GrowthExponent).
//
// The delay, clock and processing models live in the re-exported
// constructors (Exponential, Retransmission, UniformClocks, ...); all
// simulation is deterministic given a seed.
package abenet

import (
	"abenet/internal/channel"
	"abenet/internal/check"
	"abenet/internal/clock"
	"abenet/internal/core"
	"abenet/internal/dist"
	"abenet/internal/election"
	"abenet/internal/harness"
	"abenet/internal/live"
	"abenet/internal/stats"
	"abenet/internal/synchronizer"
	"abenet/internal/syncnet"
	"abenet/internal/topology"
)

// ---- The ABE model (Definition 1) ----

// Params are the known ABE bounds (δ, s_low, s_high, γ).
type Params = core.Params

// DefaultParams returns the unit parameterisation: δ = 1, perfect clocks,
// instantaneous processing.
func DefaultParams() Params { return core.DefaultParams() }

// ---- The election algorithm (Section 3) ----

// ElectionConfig configures one election run on an anonymous
// unidirectional ABE ring.
type ElectionConfig = core.ElectionConfig

// ElectionResult summarises one election run.
type ElectionResult = core.ElectionResult

// RunElection runs the paper's election algorithm.
func RunElection(cfg ElectionConfig) (ElectionResult, error) {
	return core.RunElection(cfg)
}

// A0ForRing returns the base activation parameter that realises the
// paper's linear average complexity on a ring of size n with expected
// per-link delay delta, tick interval tick and aggressiveness c.
func A0ForRing(n int, delta, tick, c float64) float64 {
	return core.A0ForRing(n, delta, tick, c)
}

// DefaultA0 is A0ForRing(n, 1, 1, 1).
func DefaultA0(n int) float64 { return core.DefaultA0(n) }

// ---- Delay distributions (condition 1: known bound on E[delay]) ----

// DelayDist is a non-negative distribution with a known exact mean.
type DelayDist = dist.Dist

// Deterministic returns the fixed-delay distribution (the ABD limit case).
func Deterministic(v float64) DelayDist { return dist.NewDeterministic(v) }

// Uniform returns the uniform distribution on [low, high] (bounded support,
// ABD-compatible).
func Uniform(low, high float64) DelayDist { return dist.NewUniform(low, high) }

// Exponential returns the exponential distribution with the given mean —
// the canonical unbounded ABE delay.
func Exponential(mean float64) DelayDist { return dist.NewExponential(mean) }

// Retransmission returns the paper's case (iii) delay: per-attempt success
// probability p, per-attempt duration slot; mean slot/p with unbounded
// support.
func Retransmission(p, slot float64) DelayDist { return dist.NewRetransmission(p, slot) }

// ParetoWithMean returns a heavy-tailed Pareto delay with the given mean
// and tail index alpha > 1.
func ParetoWithMean(mean, alpha float64) DelayDist { return dist.ParetoWithMean(mean, alpha) }

// Erlang returns a k-stage Erlang delay with the given total mean
// (multi-hop routing, case (ii)).
func Erlang(k int, mean float64) DelayDist { return dist.NewErlang(k, mean) }

// Bimodal mixes fast and slow delays (congestion peaks, case (i)).
func Bimodal(fast, slow DelayDist, pSlow float64) DelayDist {
	return dist.NewBimodal(fast, slow, pSlow)
}

// ---- Clock models (condition 2: speeds within [s_low, s_high]) ----

// ClockModel assigns local clocks to nodes.
type ClockModel = clock.Model

// PerfectClocks gives every node a rate-1 clock.
func PerfectClocks() ClockModel { return clock.PerfectModel{} }

// UniformClocks draws each node's constant rate uniformly from
// [low, high].
func UniformClocks(low, high float64) ClockModel { return clock.NewUniformFixedModel(low, high) }

// WanderingClocks gives each node a piecewise-constant clock whose rate is
// redrawn from [low, high] at exponential(segmentMean) intervals.
func WanderingClocks(low, high, segmentMean float64) ClockModel {
	return clock.NewWanderingModel(low, high, segmentMean)
}

// ---- Link factories ----

// LinkFactory builds one link per directed edge.
type LinkFactory = channel.Factory

// RandomDelayLinks returns non-FIFO links with independent per-message
// delays — the paper's channel model.
func RandomDelayLinks(delay DelayDist) LinkFactory { return channel.RandomDelayFactory(delay) }

// FIFOLinks returns order-preserving links (needed by Itai–Rodeh async).
func FIFOLinks(delay DelayDist) LinkFactory { return channel.FIFOFactory(delay) }

// ARQLinks returns lossy stop-and-wait links with per-attempt success
// probability p and slot duration slot — the physical model behind
// Retransmission.
func ARQLinks(p, slot float64) LinkFactory { return channel.ARQFactory(p, slot) }

// ---- Baseline elections ----

// ItaiRodehSyncResult reports the synchronous baseline run.
type ItaiRodehSyncResult = election.ItaiRodehSyncResult

// RunItaiRodehSync runs the phase-based Itai–Rodeh style election on an
// anonymous synchronous ring (q = 0 means 1/n).
func RunItaiRodehSync(n int, q float64, seed uint64, maxRounds int) (ItaiRodehSyncResult, error) {
	return election.RunItaiRodehSync(n, q, seed, maxRounds)
}

// AsyncRingConfig configures an asynchronous baseline run.
type AsyncRingConfig = election.AsyncRingConfig

// AsyncRingResult reports an asynchronous baseline run.
type AsyncRingResult = election.AsyncRingResult

// RunItaiRodehAsync runs the classic Itai–Rodeh election (anonymous,
// FIFO, Θ(n log n) expected messages).
func RunItaiRodehAsync(cfg AsyncRingConfig) (AsyncRingResult, error) {
	return election.RunItaiRodehAsync(cfg)
}

// ChangRobertsConfig configures a Chang–Roberts run.
type ChangRobertsConfig = election.ChangRobertsConfig

// ChangRobertsArrangement selects the identity layout.
type ChangRobertsArrangement = election.ChangRobertsArrangement

// Identity arrangements for Chang–Roberts.
const (
	ArrangementRandom     = election.ArrangementRandom
	ArrangementAscending  = election.ArrangementAscending
	ArrangementDescending = election.ArrangementDescending
)

// RunChangRoberts runs the identity-based election baseline.
func RunChangRoberts(cfg ChangRobertsConfig) (AsyncRingResult, error) {
	return election.RunChangRoberts(cfg)
}

// ---- Synchronizers (Section 2, Theorem 1) ----

// SyncKind selects a message-driven synchronizer.
type SyncKind = synchronizer.Kind

// The message-driven synchronizers.
const (
	SyncRound = synchronizer.KindRound
	SyncAlpha = synchronizer.KindAlpha
	SyncBeta  = synchronizer.KindBeta
	SyncGamma = synchronizer.KindGamma
)

// SyncConfig configures a synchronized execution.
type SyncConfig = synchronizer.Config

// SyncResult reports a synchronized execution, including the
// messages-per-round cost Theorem 1 lower bounds by n.
type SyncResult = synchronizer.Result

// SyncProtocol is a synchronous protocol runnable natively or over a
// synchronizer.
type SyncProtocol = syncnet.Node

// SyncProtocolContext is the per-round local view a SyncProtocol receives.
type SyncProtocolContext = syncnet.NodeContext

// SyncMessage is one message delivered to a SyncProtocol at a round start.
type SyncMessage = syncnet.Message

// RunSynchronized executes a synchronous protocol over an asynchronous
// network via the configured synchronizer.
func RunSynchronized(cfg SyncConfig, makeNode func(i int) SyncProtocol) (SyncResult, error) {
	return synchronizer.Run(cfg, makeNode)
}

// ClockSyncConfig configures the clock-driven ABD synchronizer workload.
type ClockSyncConfig = synchronizer.ClockSyncConfig

// ClockSyncResult reports round violations of the ABD synchronizer.
type ClockSyncResult = synchronizer.ClockSyncResult

// RunClockSync measures how the zero-message ABD synchronizer behaves on
// bounded (ABD) versus expected-bounded (ABE) delays.
func RunClockSync(cfg ClockSyncConfig) (ClockSyncResult, error) {
	return synchronizer.RunClockSync(cfg)
}

// ---- Model checking ----

// CheckOptions configures the exhaustive exploration.
type CheckOptions = check.Options

// CheckReport is the exploration outcome.
type CheckReport = check.Report

// CheckElection exhaustively verifies the election protocol's safety
// invariants on a small ring.
func CheckElection(opts CheckOptions) (CheckReport, error) {
	return check.CheckElection(opts)
}

// ---- Live (goroutine) runtime ----

// LiveElectionConfig configures a real-concurrency election run.
type LiveElectionConfig = live.ElectionConfig

// LiveElectionResult reports a real-concurrency election run.
type LiveElectionResult = live.ElectionResult

// RunLiveElection runs the election on goroutines and channels with real
// (wall-clock) delays.
func RunLiveElection(cfg LiveElectionConfig) (LiveElectionResult, error) {
	return live.RunElection(cfg)
}

// ---- Topologies ----

// Graph is a directed communication topology.
type Graph = topology.Graph

// Ring returns the anonymous unidirectional ring on n nodes.
func Ring(n int) *Graph { return topology.Ring(n) }

// BiRing returns the bidirectional ring on n nodes.
func BiRing(n int) *Graph { return topology.BiRing(n) }

// Complete returns the complete graph on n nodes.
func Complete(n int) *Graph { return topology.Complete(n) }

// Hypercube returns the 2^dim-node hypercube.
func Hypercube(dim int) *Graph { return topology.Hypercube(dim) }

// ---- Experiment harness ----

// Sweep runs seeded repetitions over a parameter range in parallel.
type Sweep = harness.Sweep

// SweepMetrics is one run's named measurements.
type SweepMetrics = harness.Metrics

// SweepPoint aggregates repetitions at one parameter value.
type SweepPoint = harness.Point

// GrowthFit is a least-squares fit (slope = growth exponent on log-log
// axes).
type GrowthFit = stats.LinearFit

// GrowthExponent fits metric ~ C·x^k over sweep points.
func GrowthExponent(points []SweepPoint, metric string) (GrowthFit, error) {
	return harness.GrowthExponent(points, metric)
}

// Table is an aligned-text/CSV results table.
type Table = harness.Table

// PointsTable renders sweep points as a table.
func PointsTable(title, xHeader string, points []SweepPoint) *Table {
	return harness.PointsTable(title, xHeader, points)
}
