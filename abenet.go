// Package abenet is a library for building and analysing asynchronous
// bounded expected delay (ABE) networks, reproducing
//
//	R. Bakhshi, J. Endrullis, W. Fokkink, J. Pang.
//	"Brief Announcement: Asynchronous Bounded Expected Delay Networks",
//	PODC 2010 (full version: arXiv:1003.2084).
//
// The ABE model strengthens asynchronous networks with three known bounds
// (Definition 1): δ on the expected message delay, [s_low, s_high] on local
// clock speeds, and γ on the expected event-processing time. Every
// asynchronous execution remains possible — only a bound on the delay's
// expectation is assumed, not on the delay itself — which captures lossy
// radio links with retransmission, congested links, and dynamic routing.
//
// # The unified API
//
// The package mirrors the paper's own separation of network and algorithm:
// an Env states the ABE environment once (topology, links, clocks,
// processing, seed, run bounds), a Protocol bundles one algorithm with its
// options, and Run executes any protocol on any environment, returning a
// common Report:
//
//	rep, err := abenet.Run(
//	    abenet.Env{N: 64, Delay: abenet.Exponential(1), Seed: 7},
//	    abenet.Election{},
//	)
//
// Protocols are also registered by name (Protocols, ProtocolByName), so
// tools and sweeps can drive any (protocol × environment) pair generically:
//
//	sweep := abenet.Sweep{Name: "demo", Repetitions: 50}
//	points, err := sweep.RunProtocol("chang-roberts", abenet.Env{},
//	    []float64{8, 16, 32, 64}, abenet.RequireElected)
//
// The available protocols: the paper's election for anonymous ABE rings
// (Election), the synchronous and asynchronous Itai–Rodeh baselines
// (ItaiRodehSync, ItaiRodehAsync), the identity-based Chang–Roberts and
// Peterson baselines (ChangRoberts, Peterson), synchronizer-backed
// synchronous execution (Synchronized, SynchronizedElection), the
// clock-driven ABD synchronizer workload (ClockSync), and the
// real-concurrency goroutine runtime (LiveElection). Ring protocols run on
// any topology embedding a directed Hamiltonian cycle (Ring, BiRing,
// Complete, Hypercube, ...).
//
// The historical per-protocol entry points (RunElection, RunItaiRodehSync,
// ...) remain as deprecated shims over Run with byte-identical outputs.
// One deliberate break: configs that set both Delay and Links (previously
// "Links wins, Delay ignored") now require Delta to declare the governing
// δ — Env.Validate rejects the ambiguous declaration.
//
// The package also exposes the ABE model itself as machine-checkable
// parameters (Params), an exhaustive bounded model checker for the
// election's safety invariants (CheckElection), and a seeded experiment
// harness with confidence intervals and growth-exponent fits (Sweep,
// GrowthExponent). The delay, clock and link models live in the
// re-exported constructors (Exponential, Retransmission, UniformClocks,
// ARQLinks, ...); all simulation is deterministic given a seed.
package abenet

import (
	"fmt"
	"math"

	"abenet/internal/byzantine"
	"abenet/internal/channel"
	"abenet/internal/check"
	"abenet/internal/clock"
	"abenet/internal/core"
	"abenet/internal/dist"
	"abenet/internal/election"
	"abenet/internal/faults"
	"abenet/internal/harness"
	"abenet/internal/live"
	"abenet/internal/runner"
	"abenet/internal/sim"
	"abenet/internal/stats"
	"abenet/internal/synchronizer"
	"abenet/internal/syncnet"
	"abenet/internal/topology"
)

// ---- The unified Env / Protocol / Report API ----

// Env states the ABE environment (Definition 1) plus run bounds, once, for
// every protocol: topology, link delays, clock speeds, processing times,
// the seed, and the horizon/event/round budgets.
type Env = runner.Env

// Protocol is a runnable protocol: an algorithm plus its options, bound to
// an environment only at Run time.
type Protocol = runner.Protocol

// Report is the common result shape of every protocol run, with a typed
// Extra payload for protocol-specific measurements.
type Report = runner.Report

// Extra payload types carried by Report.Extra, per protocol.
type (
	// ElectionExtra is Election's Extra payload.
	ElectionExtra = runner.ElectionExtra
	// SyncExtra is Synchronized and SynchronizedElection's Extra payload.
	SyncExtra = runner.SyncExtra
	// ClockSyncExtra is ClockSync's Extra payload.
	ClockSyncExtra = runner.ClockSyncExtra
	// LiveExtra is LiveElection's Extra payload.
	LiveExtra = runner.LiveExtra
	// ConsensusExtra is BenOr's Extra payload: the agreement, validity and
	// termination verdicts over the honest nodes plus the decision trace.
	ConsensusExtra = runner.ConsensusExtra
)

// The protocol option structs. Zero values select balanced defaults, so
// every protocol is runnable as-is.
type (
	// Election is the paper's probabilistic leader election for anonymous
	// unidirectional ABE rings (Section 3).
	Election = runner.Election
	// ItaiRodehSync is the phase-based synchronous Itai–Rodeh baseline.
	ItaiRodehSync = runner.ItaiRodehSync
	// ItaiRodehAsync is the classic asynchronous Itai–Rodeh baseline
	// (FIFO channels, Θ(n log n) expected messages).
	ItaiRodehAsync = runner.ItaiRodehAsync
	// ChangRoberts is the identity-based asynchronous baseline.
	ChangRoberts = runner.ChangRoberts
	// Peterson is Peterson's deterministic O(n log n) election for
	// unidirectional rings with identities and FIFO channels.
	Peterson = runner.Peterson
	// Synchronized executes an arbitrary synchronous protocol over the
	// ABE environment via a message-driven synchronizer.
	Synchronized = runner.Synchronized
	// SynchronizedElection runs the synchronous Itai–Rodeh election over
	// a synchronizer — the Theorem 1 cost workload.
	SynchronizedElection = runner.SynchronizedElection
	// ClockSync is the clock-driven ABD synchronizer workload.
	ClockSync = runner.ClockSync
	// LiveElection runs the election on real goroutines and channels.
	LiveElection = runner.LiveElection
	// BenOr is Ben-Or randomized binary consensus provisioned for f
	// Byzantine nodes — the one protocol honouring Env.Byzantine and
	// Env.LocalBroadcast.
	BenOr = runner.BenOr
)

// Run executes protocol p on environment env — the single entry point
// every other Run* function is a shim over.
func Run(env Env, p Protocol) (Report, error) { return runner.Run(env, p) }

// Protocols returns the sorted names of every registered protocol.
func Protocols() []string { return runner.Protocols() }

// ProtocolByName returns the registered protocol's runnable default
// instance.
func ProtocolByName(name string) (Protocol, bool) { return runner.ProtocolByName(name) }

// RequireElected returns an error unless the report shows exactly one
// leader and no invariant violations.
func RequireElected(r Report) error { return runner.RequireElected(r) }

// ---- Kernel schedulers ----

// The event-scheduler implementations selectable via Env.Scheduler. Every
// scheduler executes events in the same (time, sequence) total order, so a
// run is byte-identical whichever is chosen; the choice trades queue
// performance only (the calendar queue's O(1) amortised operations pay off
// on very large networks).
const (
	// SchedulerHeap is the default intrusive 4-ary min-heap.
	SchedulerHeap = sim.SchedulerHeap
	// SchedulerCalendar is the calendar-queue scheduler (Brown 1988).
	SchedulerCalendar = sim.SchedulerCalendar
)

// Schedulers returns the names of the registered kernel schedulers.
func Schedulers() []string { return sim.SchedulerNames() }

// ErrMaxEvents marks a run that exhausted its event budget (a livelock
// guard tripping, not a protocol decision). Classify with errors.Is.
var ErrMaxEvents = sim.ErrMaxEvents

// ---- The ABE model (Definition 1) ----

// Params are the known ABE bounds (δ, s_low, s_high, γ).
type Params = core.Params

// DefaultParams returns the unit parameterisation: δ = 1, perfect clocks,
// instantaneous processing.
func DefaultParams() Params { return core.DefaultParams() }

// ---- The election algorithm (Section 3) ----

// ElectionConfig configures one election run on an anonymous
// unidirectional ABE ring.
//
// Deprecated: state the environment in Env and the algorithm options in
// Election; run with Run.
type ElectionConfig = core.ElectionConfig

// ElectionResult summarises one election run.
type ElectionResult = core.ElectionResult

// RunElection runs the paper's election algorithm.
//
// Deprecated: use Run(Env{...}, Election{...}). This shim routes through
// Run with byte-identical results, except that A0 = 0 now selects the
// balanced default instead of erroring.
func RunElection(cfg ElectionConfig) (ElectionResult, error) {
	rep, err := Run(Env{
		Graph:      cfg.Graph,
		N:          cfg.N,
		Delay:      cfg.Delay,
		Links:      cfg.Links,
		Clocks:     cfg.Clocks,
		Processing: cfg.Processing,
		Seed:       cfg.Seed,
		Scheduler:  cfg.Scheduler,
		Horizon:    cfg.Horizon,
		MaxEvents:  cfg.MaxEvents,
		Tracer:     cfg.Tracer,
		Faults:     cfg.Faults,
	}, Election{
		A0:                 cfg.A0,
		TickInterval:       cfg.TickInterval,
		ConstantActivation: cfg.ConstantActivation,
		KeepRunning:        cfg.KeepRunning,
		RecandidacyTimeout: cfg.RecandidacyTimeout,
	})
	if err != nil {
		return ElectionResult{}, err
	}
	extra := rep.Extra.(ElectionExtra)
	return ElectionResult{
		Elected:        rep.Elected,
		LeaderIndex:    rep.LeaderIndex,
		Leaders:        rep.Leaders,
		Messages:       rep.Messages,
		Transmissions:  rep.Transmissions,
		Time:           rep.Time,
		Events:         rep.Events,
		Activations:    extra.Activations,
		Knockouts:      extra.Knockouts,
		ResidualPurges: extra.ResidualPurges,
		Recandidacies:  extra.Recandidacies,
		StalePurges:    extra.StalePurges,
		Violations:     rep.Violations,
		Params:         rep.Params,
		Faults:         rep.Faults,
	}, nil
}

// A0ForRing returns the base activation parameter that realises the
// paper's linear average complexity on a ring of size n with expected
// per-link delay delta, tick interval tick and aggressiveness c.
func A0ForRing(n int, delta, tick, c float64) float64 {
	return core.A0ForRing(n, delta, tick, c)
}

// DefaultA0 is A0ForRing(n, 1, 1, 1).
func DefaultA0(n int) float64 { return core.DefaultA0(n) }

// ---- Delay distributions (condition 1: known bound on E[delay]) ----

// DelayDist is a non-negative distribution with a known exact mean.
type DelayDist = dist.Dist

// Deterministic returns the fixed-delay distribution (the ABD limit case).
func Deterministic(v float64) DelayDist { return dist.NewDeterministic(v) }

// Uniform returns the uniform distribution on [low, high] (bounded support,
// ABD-compatible).
func Uniform(low, high float64) DelayDist { return dist.NewUniform(low, high) }

// Exponential returns the exponential distribution with the given mean —
// the canonical unbounded ABE delay.
func Exponential(mean float64) DelayDist { return dist.NewExponential(mean) }

// Retransmission returns the paper's case (iii) delay: per-attempt success
// probability p, per-attempt duration slot; mean slot/p with unbounded
// support.
func Retransmission(p, slot float64) DelayDist { return dist.NewRetransmission(p, slot) }

// ParetoWithMean returns a heavy-tailed Pareto delay with the given mean
// and tail index alpha > 1.
func ParetoWithMean(mean, alpha float64) DelayDist { return dist.ParetoWithMean(mean, alpha) }

// Erlang returns a k-stage Erlang delay with the given total mean
// (multi-hop routing, case (ii)).
func Erlang(k int, mean float64) DelayDist { return dist.NewErlang(k, mean) }

// Bimodal mixes fast and slow delays (congestion peaks, case (i)).
func Bimodal(fast, slow DelayDist, pSlow float64) DelayDist {
	return dist.NewBimodal(fast, slow, pSlow)
}

// ---- Fault & churn injection ----

// FaultPlan states deterministic fault injection for a run: stochastic
// per-message loss/duplication/reorder, stochastic crash(-recovery) churn,
// and scripted events (crashes, link outages, partitions). Set it on
// Env.Faults; a nil plan keeps every run byte-identical to a fault-free
// build. Honoured by the event-driven network protocols Election,
// ChangRoberts and ItaiRodehAsync; the others — including Peterson, whose
// step protocol requires reliable FIFO channels — reject a non-nil plan.
// Pair lossy plans with a finite Env.Horizon — a protocol may (correctly)
// never terminate once its messages are destroyed.
type FaultPlan = faults.Plan

// FaultEvent is one scripted fault; build them with CrashAt, RecoverAt,
// LinkDownAt, LinkUpAt and PartitionDuring.
type FaultEvent = faults.Event

// FaultTelemetry is Report.Faults: what the plan actually did to the run.
type FaultTelemetry = faults.Telemetry

// CrashInterval is one node outage recorded in FaultTelemetry.
type CrashInterval = faults.CrashInterval

// CrashAt scripts a crash of node at virtual time t.
func CrashAt(t float64, node int) FaultEvent { return faults.CrashAt(t, node) }

// RecoverAt scripts a fresh restart (churn) of node at virtual time t.
func RecoverAt(t float64, node int) FaultEvent { return faults.RecoverAt(t, node) }

// LinkDownAt / LinkUpAt script an outage of the directed edge from→to.
func LinkDownAt(t float64, from, to int) FaultEvent { return faults.LinkDownAt(t, from, to) }

// LinkUpAt restores the directed edge from→to at virtual time t.
func LinkUpAt(t float64, from, to int) FaultEvent { return faults.LinkUpAt(t, from, to) }

// PartitionDuring scripts a partition separating group from the rest of
// the network during [start, end): both the cut and the heal.
func PartitionDuring(start, end float64, group ...int) []FaultEvent {
	return faults.PartitionDuring(start, end, group...)
}

// ---- Byzantine adversaries & local broadcast ----

// ByzantinePlan assigns per-node adversarial roles for a run. Set it on
// Env.Byzantine; a nil plan keeps every run byte-identical to an
// adversary-free build. Honoured by BenOr; every other protocol rejects a
// non-nil plan with a typed error.
type ByzantinePlan = byzantine.Plan

// ByzantineRole binds one behaviour to one node.
type ByzantineRole = byzantine.Role

// ByzantineBehavior selects a node's attack.
type ByzantineBehavior = byzantine.Behavior

// The adversarial behaviours. Equivocate tells every neighbour a different
// value on point-to-point links; under Env.LocalBroadcast the radio medium
// makes per-receiver divergence impossible and the attack degrades to a
// consistent corruption.
const (
	Equivocate = byzantine.Equivocate
	Mute       = byzantine.Mute
	Corrupt    = byzantine.Corrupt
	Stall      = byzantine.Stall
)

// ByzantineTelemetry is FaultTelemetry.Byzantine: what the adversaries
// actually did to the run.
type ByzantineTelemetry = byzantine.Telemetry

// Equivocators returns a plan making nodes 0..k-1 equivocate on every
// message — the canonical adversary for the local-broadcast separation.
func Equivocators(k int) *ByzantinePlan { return byzantine.Equivocators(k) }

// ImpairedLinks wraps any link factory with stochastic per-message
// impairments — the channel-layer mechanism behind FaultPlan's loss,
// duplication and reorder axes, composable with ARQ and FIFO factories.
func ImpairedLinks(inner LinkFactory, drop, duplicate, delay float64, extra DelayDist) LinkFactory {
	return channel.ImpairedFactory(inner, channel.Impairment{
		Drop: drop, Duplicate: duplicate, Delay: delay, ExtraDelay: extra,
	})
}

// ---- Clock models (condition 2: speeds within [s_low, s_high]) ----

// ClockModel assigns local clocks to nodes.
type ClockModel = clock.Model

// PerfectClocks gives every node a rate-1 clock.
func PerfectClocks() ClockModel { return clock.PerfectModel{} }

// UniformClocks draws each node's constant rate uniformly from
// [low, high].
func UniformClocks(low, high float64) ClockModel { return clock.NewUniformFixedModel(low, high) }

// WanderingClocks gives each node a piecewise-constant clock whose rate is
// redrawn from [low, high] at exponential(segmentMean) intervals.
func WanderingClocks(low, high, segmentMean float64) ClockModel {
	return clock.NewWanderingModel(low, high, segmentMean)
}

// ---- Link factories ----

// LinkFactory builds one link per directed edge.
type LinkFactory = channel.Factory

// RandomDelayLinks returns non-FIFO links with independent per-message
// delays — the paper's channel model.
func RandomDelayLinks(delay DelayDist) LinkFactory { return channel.RandomDelayFactory(delay) }

// FIFOLinks returns order-preserving links (needed by Itai–Rodeh async).
func FIFOLinks(delay DelayDist) LinkFactory { return channel.FIFOFactory(delay) }

// ARQLinks returns lossy stop-and-wait links with per-attempt success
// probability p and slot duration slot — the physical model behind
// Retransmission.
func ARQLinks(p, slot float64) LinkFactory { return channel.ARQFactory(p, slot) }

// ---- Baseline elections (deprecated entry points) ----

// ItaiRodehSyncResult reports the synchronous baseline run.
type ItaiRodehSyncResult = election.ItaiRodehSyncResult

// RunItaiRodehSync runs the phase-based Itai–Rodeh style election on an
// anonymous synchronous ring (q = 0 means 1/n).
//
// Deprecated: use Run(Env{N: n, Seed: seed, MaxRounds: maxRounds},
// ItaiRodehSync{Q: q}).
func RunItaiRodehSync(n int, q float64, seed uint64, maxRounds int) (ItaiRodehSyncResult, error) {
	rep, err := Run(Env{N: n, Seed: seed, MaxRounds: maxRounds}, ItaiRodehSync{Q: q})
	if err != nil {
		return ItaiRodehSyncResult{}, err
	}
	return ItaiRodehSyncResult{
		Elected:     rep.Elected,
		LeaderIndex: rep.LeaderIndex,
		Leaders:     rep.Leaders,
		Messages:    rep.Messages,
		Rounds:      rep.Rounds,
	}, nil
}

// AsyncRingConfig configures an asynchronous baseline run.
//
// Deprecated: state the environment in Env; run with Run.
type AsyncRingConfig = election.AsyncRingConfig

// AsyncRingResult reports an asynchronous baseline run.
type AsyncRingResult = election.AsyncRingResult

// asyncRingResult converts a Report into the historical result shape.
func asyncRingResult(rep Report) AsyncRingResult {
	return AsyncRingResult{
		Elected:     rep.Elected,
		LeaderIndex: rep.LeaderIndex,
		Leaders:     rep.Leaders,
		Messages:    rep.Messages,
		Time:        rep.Time,
		Faults:      rep.Faults,
	}
}

// RunItaiRodehAsync runs the classic Itai–Rodeh election (anonymous,
// FIFO, Θ(n log n) expected messages).
//
// Deprecated: use Run(Env{...}, ItaiRodehAsync{}).
func RunItaiRodehAsync(cfg AsyncRingConfig) (AsyncRingResult, error) {
	rep, err := Run(Env{
		Graph:      cfg.Graph,
		N:          cfg.N,
		Delay:      cfg.Delay,
		Links:      cfg.Links,
		Clocks:     cfg.Clocks,
		Processing: cfg.Processing,
		Seed:       cfg.Seed,
		Horizon:    cfg.Horizon,
		MaxEvents:  cfg.MaxEvents,
		Faults:     cfg.Faults,
	}, ItaiRodehAsync{})
	if err != nil {
		return AsyncRingResult{}, err
	}
	return asyncRingResult(rep), nil
}

// ChangRobertsConfig configures a Chang–Roberts (or Peterson) run.
//
// Deprecated: state the environment in Env and the identity layout in
// ChangRoberts/Peterson; run with Run.
type ChangRobertsConfig = election.ChangRobertsConfig

// ChangRobertsArrangement selects the identity layout.
type ChangRobertsArrangement = election.ChangRobertsArrangement

// Identity arrangements for Chang–Roberts and Peterson.
const (
	ArrangementRandom     = election.ArrangementRandom
	ArrangementAscending  = election.ArrangementAscending
	ArrangementDescending = election.ArrangementDescending
)

// changRobertsEnv maps the historical config onto Env.
func changRobertsEnv(cfg ChangRobertsConfig) Env {
	return Env{
		Graph:      cfg.Graph,
		N:          cfg.N,
		Delay:      cfg.Delay,
		Links:      cfg.Links,
		Clocks:     cfg.Clocks,
		Processing: cfg.Processing,
		Seed:       cfg.Seed,
		Horizon:    cfg.Horizon,
		MaxEvents:  cfg.MaxEvents,
		Faults:     cfg.Faults,
	}
}

// RunChangRoberts runs the identity-based election baseline.
//
// Deprecated: use Run(Env{...}, ChangRoberts{...}).
func RunChangRoberts(cfg ChangRobertsConfig) (AsyncRingResult, error) {
	rep, err := Run(changRobertsEnv(cfg), ChangRoberts{Arrangement: cfg.Arrangement})
	if err != nil {
		return AsyncRingResult{}, err
	}
	return asyncRingResult(rep), nil
}

// RunPeterson runs Peterson's deterministic election baseline (unique
// identities, FIFO links).
//
// Deprecated: use Run(Env{...}, Peterson{...}). This entry point exists
// for symmetry with the other baselines; new code should call Run.
func RunPeterson(cfg ChangRobertsConfig) (AsyncRingResult, error) {
	rep, err := Run(changRobertsEnv(cfg), Peterson{Arrangement: cfg.Arrangement})
	if err != nil {
		return AsyncRingResult{}, err
	}
	return asyncRingResult(rep), nil
}

// ---- Synchronizers (Section 2, Theorem 1) ----

// SyncKind selects a message-driven synchronizer.
type SyncKind = synchronizer.Kind

// The message-driven synchronizers.
const (
	SyncRound = synchronizer.KindRound
	SyncAlpha = synchronizer.KindAlpha
	SyncBeta  = synchronizer.KindBeta
	SyncGamma = synchronizer.KindGamma
)

// SyncConfig configures a synchronized execution.
//
// Deprecated: state the environment in Env and the synchronizer choice in
// Synchronized; run with Run.
type SyncConfig = synchronizer.Config

// SyncResult reports a synchronized execution, including the
// messages-per-round cost Theorem 1 lower bounds by n.
type SyncResult = synchronizer.Result

// SyncProtocol is a synchronous protocol runnable natively or over a
// synchronizer.
type SyncProtocol = syncnet.Node

// SyncProtocolContext is the per-round local view a SyncProtocol receives.
type SyncProtocolContext = syncnet.NodeContext

// SyncMessage is one message delivered to a SyncProtocol at a round start.
type SyncMessage = syncnet.Message

// RunSynchronized executes a synchronous protocol over an asynchronous
// network via the configured synchronizer.
//
// Deprecated: use Run(Env{...}, Synchronized{Kind: ..., MakeNode: ...}).
// Note Synchronized treats kind 0 as the round synchronizer.
func RunSynchronized(cfg SyncConfig, makeNode func(i int) SyncProtocol) (SyncResult, error) {
	rep, err := Run(Env{
		Graph:     cfg.Graph,
		Links:     cfg.Links,
		Clocks:    cfg.Clocks,
		Seed:      cfg.Seed,
		MaxRounds: cfg.MaxRounds,
		MaxEvents: cfg.MaxEvents,
	}, Synchronized{
		Kind:          cfg.Kind,
		ClusterRadius: cfg.ClusterRadius,
		Anonymous:     cfg.Anonymous,
		MakeNode:      makeNode,
	})
	if err != nil {
		return SyncResult{}, err
	}
	extra := rep.Extra.(SyncExtra)
	return SyncResult{
		Rounds:           rep.Rounds,
		MinRounds:        extra.MinRounds,
		Messages:         rep.Messages,
		PayloadMessages:  extra.PayloadMessages,
		MessagesPerRound: extra.MessagesPerRound,
		Time:             rep.Time,
		Stopped:          extra.Stopped,
		StopCause:        extra.StopCause,
	}, nil
}

// ClockSyncConfig configures the clock-driven ABD synchronizer workload.
//
// Deprecated: state the environment in Env and the period/rounds in
// ClockSync; run with Run.
type ClockSyncConfig = synchronizer.ClockSyncConfig

// ClockSyncResult reports round violations of the ABD synchronizer.
type ClockSyncResult = synchronizer.ClockSyncResult

// RunClockSync measures how the zero-message ABD synchronizer behaves on
// bounded (ABD) versus expected-bounded (ABE) delays.
//
// Deprecated: use Run(Env{...}, ClockSync{Period: ..., Rounds: ...}).
// Unlike ClockSync (whose zero values select defaults), this shim keeps
// the historical contract that Period and Rounds must be set explicitly.
func RunClockSync(cfg ClockSyncConfig) (ClockSyncResult, error) {
	if !(cfg.Period > 0) || math.IsInf(cfg.Period, 0) || math.IsNaN(cfg.Period) {
		return ClockSyncResult{}, fmt.Errorf("synchronizer: period %g must be positive and finite", cfg.Period)
	}
	if cfg.Rounds < 1 {
		return ClockSyncResult{}, fmt.Errorf("synchronizer: rounds %d must be positive", cfg.Rounds)
	}
	rep, err := Run(Env{
		Graph:  cfg.Graph,
		Delay:  cfg.Delay,
		Links:  cfg.Links,
		Clocks: cfg.Clocks,
		Seed:   cfg.Seed,
	}, ClockSync{Period: cfg.Period, Rounds: cfg.Rounds})
	if err != nil {
		return ClockSyncResult{}, err
	}
	extra := rep.Extra.(ClockSyncExtra)
	return ClockSyncResult{
		Messages:    rep.Messages,
		Violations:  extra.RoundViolations,
		MaxLateness: extra.MaxLateness,
		Time:        rep.Time,
	}, nil
}

// ---- Model checking ----

// CheckOptions configures the exhaustive exploration.
type CheckOptions = check.Options

// CheckReport is the exploration outcome.
type CheckReport = check.Report

// CheckElection exhaustively verifies the election protocol's safety
// invariants on a small ring.
func CheckElection(opts CheckOptions) (CheckReport, error) {
	return check.CheckElection(opts)
}

// ---- Live (goroutine) runtime ----

// LiveElectionConfig configures a real-concurrency election run.
//
// Deprecated: state N and Seed in Env and the timing in LiveElection; run
// with Run.
type LiveElectionConfig = live.ElectionConfig

// LiveElectionResult reports a real-concurrency election run.
type LiveElectionResult = live.ElectionResult

// RunLiveElection runs the election on goroutines and channels with real
// (wall-clock) delays.
//
// Deprecated: use Run(Env{N: ..., Seed: ...}, LiveElection{...}).
func RunLiveElection(cfg LiveElectionConfig) (LiveElectionResult, error) {
	rep, err := Run(Env{N: cfg.N, Seed: cfg.Seed}, LiveElection{
		A0:        cfg.A0,
		MeanDelay: cfg.MeanDelay,
		TickEvery: cfg.TickEvery,
		Timeout:   cfg.Timeout,
	})
	if err != nil {
		return LiveElectionResult{}, err
	}
	return LiveElectionResult{
		LeaderIndex: rep.LeaderIndex,
		Leaders:     rep.Leaders,
		Messages:    rep.Messages,
		Elapsed:     rep.Extra.(LiveExtra).Elapsed,
	}, nil
}

// ---- Topologies ----

// Graph is a directed communication topology.
type Graph = topology.Graph

// Ring returns the anonymous unidirectional ring on n nodes.
func Ring(n int) *Graph { return topology.Ring(n) }

// BiRing returns the bidirectional ring on n nodes.
func BiRing(n int) *Graph { return topology.BiRing(n) }

// Complete returns the complete graph on n nodes.
func Complete(n int) *Graph { return topology.Complete(n) }

// Hypercube returns the 2^dim-node hypercube.
func Hypercube(dim int) *Graph { return topology.Hypercube(dim) }

// ---- Experiment harness ----

// Sweep runs seeded repetitions over a parameter range in parallel. Run
// takes a bare func(x, seed) adapter; RunEnv and RunProtocol route through
// the unified Run entry point instead.
type Sweep = harness.Sweep

// SweepMetrics is one run's named measurements.
type SweepMetrics = harness.Metrics

// SweepPoint aggregates repetitions at one parameter value.
type SweepPoint = harness.Point

// GrowthFit is a least-squares fit (slope = growth exponent on log-log
// axes).
type GrowthFit = stats.LinearFit

// GrowthExponent fits metric ~ C·x^k over sweep points.
func GrowthExponent(points []SweepPoint, metric string) (GrowthFit, error) {
	return harness.GrowthExponent(points, metric)
}

// Table is an aligned-text/CSV results table.
type Table = harness.Table

// PointsTable renders sweep points as a table.
func PointsTable(title, xHeader string, points []SweepPoint) *Table {
	return harness.PointsTable(title, xHeader, points)
}
