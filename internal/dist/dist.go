// Package dist provides non-negative delay distributions with exactly known
// means, realising condition 1 of the ABE model (Bakhshi et al., PODC 2010,
// Definition 1): every link's message delay has a *known bound on its
// expectation*, while the delay itself may be unbounded.
//
// Every distribution reports its exact analytic mean through Mean(), so the
// network layer can verify a configured topology against a declared δ
// without sampling. Sampling is fully deterministic given an rng.Source:
// each Sample call consumes a well-defined number of variates from the
// source, so simulation runs replay bit-identically from a seed.
//
// The catalogue covers the paper's Section 1 motivating cases:
//
//   - Deterministic, Uniform: bounded support — the ABD (asynchronous
//     bounded delay) limit cases.
//   - Exponential, Erlang: the canonical unbounded ABE delays; Erlang is
//     the k-hop routed case (ii).
//   - Bimodal: congestion peaks, case (i).
//   - Retransmission: lossy link with stop-and-wait ARQ, case (iii) —
//     geometric attempts × slot time, mean slot/p.
//   - Pareto: heavy tails with finite mean but (for α ≤ 2) infinite
//     variance, the sharpest ABE-vs-ABD separation.
//
// All constructors validate their parameters eagerly and panic on invalid
// arguments: a mis-parameterised delay model is a programming error, and
// every consumer (link factories, network builders) relies on construction
// implying a usable distribution.
package dist

import (
	"fmt"
	"math"

	"abenet/internal/rng"
)

// Dist is a non-negative random delay with exactly known expectation.
//
// Sample draws one value using only the provided source; implementations
// must be stateless so that a Dist value can be shared across links and
// goroutines, with all mutable state living in the per-caller rng.Source.
type Dist interface {
	// Sample returns one non-negative draw.
	Sample(r *rng.Source) float64
	// Mean returns the exact expectation (the per-link δ bound).
	Mean() float64
	// Name returns a short human-readable description for tables and
	// test output.
	Name() string
}

// check panics with a dist-prefixed message when ok is false.
func check(ok bool, format string, args ...any) {
	if !ok {
		panic("dist: " + fmt.Sprintf(format, args...))
	}
}

// finite reports whether v is neither NaN nor ±Inf.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// ---- Deterministic ----

type deterministic struct{ v float64 }

// NewDeterministic returns the distribution concentrated on v ≥ 0: the
// fixed-delay ABD limit case.
func NewDeterministic(v float64) Dist {
	check(finite(v) && v >= 0, "deterministic delay %v must be finite and non-negative", v)
	return deterministic{v}
}

func (d deterministic) Sample(*rng.Source) float64 { return d.v }
func (d deterministic) Mean() float64              { return d.v }
func (d deterministic) Name() string               { return fmt.Sprintf("det(%g)", d.v) }

// ---- Uniform ----

type uniform struct{ low, high float64 }

// NewUniform returns the uniform distribution on [low, high] with
// 0 ≤ low ≤ high: bounded support, ABD-compatible.
func NewUniform(low, high float64) Dist {
	check(finite(low) && finite(high) && 0 <= low && low <= high,
		"uniform bounds [%v, %v] must satisfy 0 <= low <= high", low, high)
	return uniform{low, high}
}

func (d uniform) Sample(r *rng.Source) float64 { return d.low + (d.high-d.low)*r.Float64() }
func (d uniform) Mean() float64                { return (d.low + d.high) / 2 }
func (d uniform) Name() string                 { return fmt.Sprintf("uniform[%g,%g]", d.low, d.high) }

// ---- Exponential ----

type exponential struct{ mean float64 }

// NewExponential returns the exponential distribution with the given
// mean > 0 — the canonical unbounded ABE delay.
func NewExponential(mean float64) Dist {
	check(finite(mean) && mean > 0, "exponential mean %v must be finite and positive", mean)
	return exponential{mean}
}

func (d exponential) Sample(r *rng.Source) float64 { return d.mean * r.ExpFloat64() }
func (d exponential) Mean() float64                { return d.mean }
func (d exponential) Name() string                 { return fmt.Sprintf("exp(%g)", d.mean) }

// ---- Erlang ----

type erlang struct {
	k    int
	mean float64
}

// NewErlang returns the k-stage Erlang distribution with the given *total*
// mean (the sum of k independent exponentials of mean mean/k): the routed
// multi-hop delay of the paper's case (ii). Requires k ≥ 1 and mean > 0.
func NewErlang(k int, mean float64) Dist {
	check(k >= 1, "erlang stage count %d must be at least 1", k)
	check(finite(mean) && mean > 0, "erlang mean %v must be finite and positive", mean)
	return erlang{k, mean}
}

func (d erlang) Sample(r *rng.Source) float64 {
	stage := d.mean / float64(d.k)
	sum := 0.0
	for i := 0; i < d.k; i++ {
		sum += stage * r.ExpFloat64()
	}
	return sum
}
func (d erlang) Mean() float64 { return d.mean }
func (d erlang) Name() string  { return fmt.Sprintf("erlang(k=%d,mean=%g)", d.k, d.mean) }

// ---- Pareto ----

type pareto struct {
	xm    float64 // scale: the minimum delay
	alpha float64 // tail index
}

// ParetoWithMean returns the Pareto (type I) distribution with tail index
// alpha > 1, scaled so its mean is exactly the given mean > 0. For
// 1 < alpha ≤ 2 the variance is infinite while the mean stays finite —
// a delay that is ABE but as far from ABD as it gets; alpha → 1⁺ pushes
// ever more mass into the tail while Mean() stays pinned.
func ParetoWithMean(mean, alpha float64) Dist {
	check(finite(mean) && mean > 0, "pareto mean %v must be finite and positive", mean)
	check(finite(alpha) && alpha > 1, "pareto tail index %v must exceed 1 for a finite mean", alpha)
	return pareto{xm: mean * (alpha - 1) / alpha, alpha: alpha}
}

func (d pareto) Sample(r *rng.Source) float64 {
	// Inverse CDF: F(x) = 1 - (xm/x)^alpha. Float64 is in [0, 1), so
	// 1-u is in (0, 1] and the power never divides by zero.
	return d.xm * math.Pow(1-r.Float64(), -1/d.alpha)
}
func (d pareto) Mean() float64 { return d.alpha * d.xm / (d.alpha - 1) }
func (d pareto) Name() string  { return fmt.Sprintf("pareto(mean=%g,alpha=%g)", d.Mean(), d.alpha) }

// Alpha returns the tail index (exported for conformance checks).
func (d pareto) Alpha() float64 { return d.alpha }

// Scale returns the minimum delay x_m (exported for conformance checks).
func (d pareto) Scale() float64 { return d.xm }

// ---- Bimodal ----

type bimodal struct {
	fast, slow Dist
	pSlow      float64
}

// NewBimodal mixes two delay distributions: with probability pSlow the
// delay is drawn from slow, otherwise from fast — congestion peaks, the
// paper's case (i). Requires non-nil components and pSlow in [0, 1].
func NewBimodal(fast, slow Dist, pSlow float64) Dist {
	check(fast != nil && slow != nil, "bimodal components must be non-nil")
	check(finite(pSlow) && 0 <= pSlow && pSlow <= 1, "bimodal mixture weight %v must be in [0, 1]", pSlow)
	return bimodal{fast, slow, pSlow}
}

func (d bimodal) Sample(r *rng.Source) float64 {
	// One variate chooses the branch, then the branch samples: the draw
	// count depends only on the chosen component, keeping replay stable.
	if r.Float64() < d.pSlow {
		return d.slow.Sample(r)
	}
	return d.fast.Sample(r)
}
func (d bimodal) Mean() float64 {
	return (1-d.pSlow)*d.fast.Mean() + d.pSlow*d.slow.Mean()
}
func (d bimodal) Name() string {
	return fmt.Sprintf("bimodal(%s,%s,p=%g)", d.fast.Name(), d.slow.Name(), d.pSlow)
}
