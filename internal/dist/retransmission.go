package dist

import (
	"fmt"
	"math"

	"abenet/internal/rng"
)

// Retransmission models the paper's Section 1 case (iii) delay: a lossy
// physical channel with per-transmission success probability P and
// stop-and-wait ARQ. Each attempt occupies SlotTime time units and succeeds
// independently, so the number of attempts is geometric with parameter P
// and the delay is attempts × SlotTime: unbounded support with exact
// expectation SlotTime/P (the paper's k_avg = 1/p analysis).
//
// The struct is exported (unlike the other distributions) because the ARQ
// link simulates the individual attempts and therefore needs Attempts and
// SlotTime separately, not just the folded delay.
type Retransmission struct {
	// P is the per-attempt success probability, in (0, 1].
	P float64
	// SlotTime is the duration of one transmission attempt, > 0.
	SlotTime float64
}

var _ Dist = Retransmission{}

// NewRetransmission returns the ARQ delay model with per-attempt success
// probability p ∈ (0, 1] and per-attempt duration slot > 0. It panics on
// invalid parameters.
func NewRetransmission(p, slot float64) Retransmission {
	check(finite(p) && 0 < p && p <= 1, "retransmission success probability %v must be in (0, 1]", p)
	check(finite(slot) && slot > 0, "retransmission slot time %v must be finite and positive", slot)
	return Retransmission{P: p, SlotTime: slot}
}

// Attempts draws the number of transmission attempts until first success:
// geometric on {1, 2, ...} with parameter P, sampled by inverse CDF so
// exactly one variate is consumed regardless of the outcome.
func (d Retransmission) Attempts(r *rng.Source) int {
	u := r.Float64()
	if d.P >= 1 {
		return 1
	}
	// P(X > k) = (1-p)^k, so X = ceil(log(1-u) / log(1-p)) maps the
	// uniform u exactly onto the geometric law. Log1p keeps precision
	// for small p and small u.
	k := math.Ceil(math.Log1p(-u) / math.Log1p(-d.P))
	if k < 1 {
		return 1 // u == 0 maps to the first attempt
	}
	if k > math.MaxInt32 {
		return math.MaxInt32 // unreachable for sane p; guards int overflow
	}
	return int(k)
}

// Sample implements Dist: attempts × slot time.
func (d Retransmission) Sample(r *rng.Source) float64 {
	return float64(d.Attempts(r)) * d.SlotTime
}

// Mean implements Dist: exactly SlotTime/P.
func (d Retransmission) Mean() float64 { return d.SlotTime / d.P }

// Name implements Dist.
func (d Retransmission) Name() string {
	return fmt.Sprintf("retx(p=%g,slot=%g)", d.P, d.SlotTime)
}
