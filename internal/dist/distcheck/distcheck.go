// Package distcheck is a reusable conformance kit for dist.Dist
// implementations: it turns the ABE model's condition 1 — "the delay's
// expectation is exactly the declared bound" — into checkable statistical
// invariants, the way an arrival-time contract should be enforced rather
// than assumed.
//
// The kit provides:
//
//   - CheckMean: the empirical mean of n samples must match Mean() within
//     a CLT-derived k·s/√n bound (self-normalised, so it adapts to the
//     distribution's spread). The bound is only valid for finite-variance
//     laws: for infinite-variance tails (Pareto α ≤ 2) no CLT applies and
//     the empirical mean misbehaves by design — cover those with the
//     shape-specific checks below instead.
//   - CheckVariance: for finite-variance distributions, the sample
//     variance must match the analytic variance within a bound derived
//     from the sampling distribution of s² (using the empirical fourth
//     central moment).
//   - CheckTailIndex: a Hill estimate over the upper order statistics
//     must recover a declared power-law tail index (Pareto).
//   - CheckUnbounded: the sample maximum must exceed any proposed ABD-style
//     hard bound — the observable ABE-vs-ABD distinction.
//   - CheckNonNegative and CheckReplay: delays are non-negative, and
//     sampling is a pure function of the rng.Source (same seed → identical
//     sequence, and no hidden state coupling between sources).
//
// All checks take a testing.TB so the kit itself is testable, and draw
// from a fixed default seed so results are reproducible: a passing check
// stays passing.
package distcheck

import (
	"math"
	"sort"
	"testing"

	"abenet/internal/dist"
	"abenet/internal/rng"
)

// DefaultSamples is the sample size used when Options.Samples is zero. At
// 10⁵ samples the CLT bound on the mean is tight enough to catch a
// mis-declared Mean() of a few percent for the light-tailed families.
const DefaultSamples = 100_000

// Options tunes a check run. The zero value is ready to use.
type Options struct {
	// Samples is the number of draws; 0 means DefaultSamples.
	Samples int
	// Sigmas is the width of the acceptance band in estimated standard
	// errors; 0 means 4 (a ~6·10⁻⁵ false-alarm rate per check if the
	// estimator were Gaussian, and deterministic anyway under a fixed
	// seed).
	Sigmas float64
	// Seed seeds the rng.Source; 0 means a fixed default so runs are
	// reproducible by default.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Samples <= 0 {
		o.Samples = DefaultSamples
	}
	if o.Sigmas <= 0 {
		o.Sigmas = 4
	}
	if o.Seed == 0 {
		o.Seed = 0xabe_de1a7 // arbitrary fixed default
	}
	return o
}

// Draw returns opt.Samples draws of d from a fresh source seeded with
// opt.Seed.
func Draw(d dist.Dist, opt Options) []float64 {
	opt = opt.withDefaults()
	r := rng.New(opt.Seed)
	xs := make([]float64, opt.Samples)
	for i := range xs {
		xs[i] = d.Sample(r)
	}
	return xs
}

// Moments summarises one sampling run.
type Moments struct {
	N        int
	Mean     float64
	Var      float64 // unbiased sample variance
	M4       float64 // fourth central moment (biased, for s² standard errors)
	Min, Max float64
}

// MomentsOf computes Moments in two passes (exact mean first, then central
// moments), which is numerically safer than one-pass updates at this scale.
func MomentsOf(xs []float64) Moments {
	m := Moments{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if m.N == 0 {
		return m
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < m.Min {
			m.Min = x
		}
		if x > m.Max {
			m.Max = x
		}
	}
	m.Mean = sum / float64(m.N)
	var m2, m4 float64
	for _, x := range xs {
		d := x - m.Mean
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	if m.N > 1 {
		m.Var = m2 / float64(m.N-1)
	}
	m.M4 = m4 / float64(m.N)
	return m
}

// eps is the absolute floating-point slack added to every statistical
// bound, covering summation rounding and exact (zero-variance) cases.
func eps(scale float64) float64 { return 1e-9 * (1 + math.Abs(scale)) }

// CheckMean verifies |empirical mean − d.Mean()| ≤ Sigmas·s/√n: the
// declared expectation must be the one the samples actually converge to.
// Only call this for finite-variance distributions; with an infinite
// variance s/√n is not a standard error and the check turns into a coin
// flip over seeds.
func CheckMean(t testing.TB, d dist.Dist, opt Options) {
	t.Helper()
	opt = opt.withDefaults()
	meanWithinBand(t, d, MomentsOf(Draw(d, opt)), opt)
}

func meanWithinBand(t testing.TB, d dist.Dist, m Moments, opt Options) {
	t.Helper()
	want := d.Mean()
	bound := opt.Sigmas*math.Sqrt(m.Var/float64(m.N)) + eps(want)
	if diff := math.Abs(m.Mean - want); diff > bound {
		t.Errorf("%s: empirical mean %v vs declared %v: |diff| = %v exceeds %g·s/√n = %v (n = %d)",
			d.Name(), m.Mean, want, diff, opt.Sigmas, bound, m.N)
	}
}

// CheckVariance verifies the sample variance against the analytic variance
// wantVar. The acceptance band is Sigmas standard errors of s², using
// se(s²) ≈ √((m₄ − s⁴)/n). Only call this for finite-variance
// distributions; heavy tails (Pareto α ≤ 2) have no variance to check.
func CheckVariance(t testing.TB, d dist.Dist, wantVar float64, opt Options) {
	t.Helper()
	opt = opt.withDefaults()
	m := MomentsOf(Draw(d, opt))
	se := math.Sqrt(math.Max(0, m.M4-m.Var*m.Var) / float64(m.N))
	bound := opt.Sigmas*se + eps(wantVar)
	if diff := math.Abs(m.Var - wantVar); diff > bound {
		t.Errorf("%s: sample variance %v vs analytic %v: |diff| = %v exceeds %g·se(s²) = %v (n = %d)",
			d.Name(), m.Var, wantVar, diff, opt.Sigmas, bound, m.N)
	}
}

// HillTailIndex returns the Hill estimate of the power-law tail index from
// the k largest of xs: k / Σ log(x₍ᵢ₎/x₍ₖ₊₁₎). It panics if the data has
// fewer than k+1 positive values.
func HillTailIndex(xs []float64, k int) float64 {
	if k < 1 || k+1 > len(xs) {
		panic("distcheck: Hill estimator needs 1 <= k < len(xs)")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	ref := sorted[k]
	if ref <= 0 {
		panic("distcheck: Hill estimator needs positive order statistics")
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += math.Log(sorted[i] / ref)
	}
	return float64(k) / sum
}

// CheckTailIndex verifies that the Hill estimate over the top 1% of
// samples recovers wantAlpha within relative tolerance relTol. Use it for
// distributions with genuine power-law tails (Pareto).
func CheckTailIndex(t testing.TB, d dist.Dist, wantAlpha, relTol float64, opt Options) {
	t.Helper()
	opt = opt.withDefaults()
	xs := Draw(d, opt)
	k := len(xs) / 100
	if k < 10 {
		k = 10
	}
	got := HillTailIndex(xs, k)
	if rel := math.Abs(got-wantAlpha) / wantAlpha; rel > relTol {
		t.Errorf("%s: Hill tail index %v vs declared α = %v (rel. error %v > %v, k = %d)",
			d.Name(), got, wantAlpha, rel, relTol, k)
	}
}

// CheckUnbounded verifies the sample maximum exceeds mustExceed: evidence
// that no hard ABD-style delay bound at that level exists, even though the
// expectation is finite and known.
func CheckUnbounded(t testing.TB, d dist.Dist, mustExceed float64, opt Options) {
	t.Helper()
	m := MomentsOf(Draw(d, opt))
	if m.Max <= mustExceed {
		t.Errorf("%s: max of %d samples is %v, expected unbounded support to exceed %v",
			d.Name(), m.N, m.Max, mustExceed)
	}
}

// CheckNonNegative verifies every sample is finite and ≥ 0: delays cannot
// be negative, NaN or infinite.
func CheckNonNegative(t testing.TB, d dist.Dist, opt Options) {
	t.Helper()
	nonNegative(t, d, Draw(d, opt))
}

func nonNegative(t testing.TB, d dist.Dist, xs []float64) {
	t.Helper()
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			t.Errorf("%s: sample %d is %v, want finite and non-negative", d.Name(), i, x)
			return
		}
	}
}

// CheckReplay verifies sampling is a pure function of the rng.Source:
// the same seed yields an identical sequence, and drawing on one source is
// unaffected by interleaved draws on another (no hidden shared state in
// the Dist value).
func CheckReplay(t testing.TB, d dist.Dist, opt Options) {
	t.Helper()
	opt = opt.withDefaults()
	n := opt.Samples
	if n > 1000 {
		n = 1000 // replay needs exactness, not statistics
	}
	ref := make([]float64, n)
	r := rng.New(opt.Seed)
	for i := range ref {
		ref[i] = d.Sample(r)
	}
	a, b := rng.New(opt.Seed), rng.New(opt.Seed+1)
	for i := 0; i < n; i++ {
		got := d.Sample(a)
		if got != ref[i] {
			t.Errorf("%s: replay diverged at sample %d: %v vs %v", d.Name(), i, got, ref[i])
			return
		}
		d.Sample(b) // interleaved draws must not perturb a's stream
	}
}

// CheckBasics runs the finite-variance contract: mean convergence,
// non-negativity and seed-determinism, over a single shared sample set.
// Shape-specific checks (variance, tail index, unboundedness) are
// parameterised and invoked separately; infinite-variance laws should
// skip this in favour of CheckNonNegative + CheckReplay + tail checks.
func CheckBasics(t testing.TB, d dist.Dist, opt Options) {
	t.Helper()
	opt = opt.withDefaults()
	xs := Draw(d, opt)
	meanWithinBand(t, d, MomentsOf(xs), opt)
	nonNegative(t, d, xs)
	CheckReplay(t, d, opt)
}
