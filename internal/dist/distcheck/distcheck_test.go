package distcheck

import (
	"fmt"
	"math"
	"testing"

	"abenet/internal/dist"
	"abenet/internal/rng"
)

// recorder is a testing.TB that records failures instead of failing, so
// the kit's ability to *detect* broken distributions is itself testable.
type recorder struct {
	testing.TB
	msgs []string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.msgs = append(r.msgs, fmt.Sprintf(format, args...))
}
func (r *recorder) failed() bool { return len(r.msgs) > 0 }

// lyingMean reports a mean the samples do not have.
type lyingMean struct{ dist.Dist }

func (l lyingMean) Mean() float64 { return l.Dist.Mean() * 1.2 }
func (l lyingMean) Name() string  { return "lying-mean" }

// negative sometimes produces negative delays.
type negative struct{}

func (negative) Sample(r *rng.Source) float64 { return r.Float64() - 0.5 }
func (negative) Mean() float64                { return 0 }
func (negative) Name() string                 { return "negative" }

// stateful violates purity: its output depends on hidden internal state,
// not only on the rng.Source passed in.
type stateful struct{ calls *int }

func (s stateful) Sample(r *rng.Source) float64 {
	*s.calls++
	return r.Float64() + float64(*s.calls%2)
}
func (stateful) Mean() float64 { return 1 }
func (stateful) Name() string  { return "stateful" }

func TestCheckMeanAcceptsHonestDist(t *testing.T) {
	CheckMean(t, dist.NewExponential(1), Options{})
}

func TestCheckMeanRejectsLyingDist(t *testing.T) {
	rec := &recorder{}
	CheckMean(rec, lyingMean{dist.NewExponential(1)}, Options{})
	if !rec.failed() {
		t.Fatal("a 20% mis-declared mean slipped past the 4σ CLT bound")
	}
}

func TestCheckVarianceRejectsWrongVariance(t *testing.T) {
	rec := &recorder{}
	CheckVariance(rec, dist.NewExponential(1), 1.5, Options{})
	if !rec.failed() {
		t.Fatal("a 50% wrong variance slipped past the se(s²) bound")
	}
}

func TestCheckNonNegativeRejectsNegativeSamples(t *testing.T) {
	rec := &recorder{}
	CheckNonNegative(rec, negative{}, Options{})
	if !rec.failed() {
		t.Fatal("negative delays went undetected")
	}
}

func TestCheckReplayRejectsHiddenState(t *testing.T) {
	rec := &recorder{}
	calls := 0
	CheckReplay(rec, stateful{&calls}, Options{})
	if !rec.failed() {
		t.Fatal("hidden sampling state went undetected")
	}
}

func TestCheckUnboundedRejectsBoundedDist(t *testing.T) {
	rec := &recorder{}
	CheckUnbounded(rec, dist.NewUniform(0, 2), 2, Options{})
	if !rec.failed() {
		t.Fatal("a bounded distribution passed the unbounded-support check")
	}
}

func TestCheckTailIndexRejectsWrongAlpha(t *testing.T) {
	rec := &recorder{}
	CheckTailIndex(rec, dist.ParetoWithMean(1, 3), 1.5, 0.15, Options{})
	if !rec.failed() {
		t.Fatal("a doubled tail index passed the Hill check")
	}
}

func TestMomentsOfKnownData(t *testing.T) {
	m := MomentsOf([]float64{1, 2, 3, 4})
	if m.N != 4 || m.Mean != 2.5 || m.Min != 1 || m.Max != 4 {
		t.Fatalf("moments = %+v", m)
	}
	if want := 5.0 / 3; math.Abs(m.Var-want) > 1e-12 {
		t.Fatalf("var = %v, want %v", m.Var, want)
	}
}

func TestMomentsOfEmpty(t *testing.T) {
	m := MomentsOf(nil)
	if m.N != 0 || m.Var != 0 {
		t.Fatalf("moments of empty = %+v", m)
	}
}

func TestHillOnExactParetoData(t *testing.T) {
	// Deterministic inverse-CDF grid of a Pareto(α = 2, x_m = 1): the
	// Hill estimate over the top 1% must land very close to 2.
	const n = 100_000
	xs := make([]float64, n)
	for i := range xs {
		u := (float64(i) + 0.5) / n
		xs[i] = math.Pow(1-u, -1.0/2)
	}
	got := HillTailIndex(xs, n/100)
	if math.Abs(got-2) > 0.1 {
		t.Fatalf("Hill index on exact Pareto(2) grid = %v", got)
	}
}

func TestHillPanicsOnBadK(t *testing.T) {
	for _, f := range []func(){
		func() { HillTailIndex([]float64{1, 2, 3}, 0) },
		func() { HillTailIndex([]float64{1, 2, 3}, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDefaultsApplied(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Samples != DefaultSamples || o.Sigmas != 4 || o.Seed == 0 {
		t.Fatalf("defaults = %+v", o)
	}
	// Explicit values survive.
	o = Options{Samples: 10, Sigmas: 2, Seed: 9}.withDefaults()
	if o.Samples != 10 || o.Sigmas != 2 || o.Seed != 9 {
		t.Fatalf("explicit options clobbered: %+v", o)
	}
}
