package dist_test

import (
	"testing"

	"abenet/internal/dist"
	"abenet/internal/dist/distcheck"
)

// opt is the shared conformance configuration: 10⁵ samples, 4σ CLT bands,
// the kit's fixed default seed. Deterministic, so a pass is stable.
var opt = distcheck.Options{}

// catalogue lists every distribution family at the parameterisations the
// simulator actually uses (experiments E1/E10, the examples, the core
// defaults) plus the p → 1 degenerate ARQ. All entries have finite
// variance, the precondition of CheckMean's CLT band; the heavy-tail
// Pareto parameterisations (α ≤ 2: infinite variance, and α → 1⁺) are
// covered by TestHeavyTails and TestParetoNearOne with checks that remain
// valid there.
func catalogue() []dist.Dist {
	return []dist.Dist{
		dist.NewDeterministic(1),
		dist.NewDeterministic(0), // zero delay is legal (instantaneous links)
		dist.NewUniform(0, 2),
		dist.NewUniform(0.1, 0.5),
		dist.NewExponential(1),
		dist.NewExponential(0.25),
		dist.NewErlang(1, 1),
		dist.NewErlang(4, 1),
		dist.ParetoWithMean(1, 3),
		dist.ParetoWithMean(1, 2.5),
		dist.NewRetransmission(0.5, 0.5),
		dist.NewRetransmission(0.1, 1),
		dist.NewRetransmission(1, 2), // p → 1 degenerate
		dist.NewBimodal(dist.NewDeterministic(0.5), dist.NewDeterministic(5.5), 0.1),
		dist.NewBimodal(dist.NewDeterministic(0.4), dist.NewExponential(4), 0.1),
	}
}

// TestConformance runs the unconditional contract — mean convergence
// within the 4σ CLT band, non-negativity, determinism under seed — over
// the whole catalogue. This is the acceptance check for condition 1 of
// Definition 1: declared expectations are the ones samples converge to.
func TestConformance(t *testing.T) {
	for _, d := range catalogue() {
		d := d
		t.Run(d.Name(), func(t *testing.T) {
			distcheck.CheckBasics(t, d, opt)
		})
	}
}

// TestParetoNearOne covers the α → 1⁺ edge: the mean is still declared
// finite and the samples are still legal delays, but at α = 1.05 the
// empirical mean converges at rate n^(1−1/α) ≈ n^0.048 — no sample size a
// test can afford gets close, so CheckMean is deliberately *not* applied.
// What remains checkable: non-negativity, replay determinism, the pinned
// analytic mean, and the tail index read off the data.
func TestParetoNearOne(t *testing.T) {
	d := dist.ParetoWithMean(1, 1.05)
	distcheck.CheckNonNegative(t, d, opt)
	distcheck.CheckReplay(t, d, opt)
	if d.Mean() != 1 {
		t.Fatalf("declared mean = %v, want exactly 1", d.Mean())
	}
	m := distcheck.MomentsOf(distcheck.Draw(d, opt))
	// The empirical mean must *under*shoot: almost all mass sits below
	// the mean, which lives in the far tail. Seeing this is evidence the
	// sampler produces the intended law rather than something symmetric.
	if m.Mean >= 1 {
		t.Fatalf("empirical mean %v not below the analytic mean at α → 1⁺", m.Mean)
	}
}

// TestVariances pins the second moment for every finite-variance family.
// (Pareto with α ≤ 2 is deliberately absent: its variance does not exist,
// which is exactly the ABE-vs-ABD point.)
func TestVariances(t *testing.T) {
	const (
		uniVar = 4.0 / 12                            // (high−low)²/12 for [0, 2]
		expVar = 1.0                                 // mean² for mean 1
		erlVar = 1.0 / 4                             // mean²/k for mean 1, k = 4
		retVar = 0.5 * 0.5 * (1 - 0.5) / (0.5 * 0.5) // slot²(1−p)/p²
	)
	// Pareto α = 3, mean 1 ⇒ x_m = 2/3; var = x_m²α/((α−1)²(α−2)) = 4/3·...
	paretoVar := (2.0 / 3) * (2.0 / 3) * 3 / (4 * 1)
	// Two-point mixture at 0.5 and 5.5 with p = 0.1: E[X²] − μ².
	mu := 0.9*0.5 + 0.1*5.5
	bimodalVar := 0.9*0.5*0.5 + 0.1*5.5*5.5 - mu*mu

	cases := []struct {
		d    dist.Dist
		want float64
	}{
		{dist.NewDeterministic(1), 0},
		{dist.NewUniform(0, 2), uniVar},
		{dist.NewExponential(1), expVar},
		{dist.NewErlang(4, 1), erlVar},
		{dist.ParetoWithMean(1, 3), paretoVar},
		{dist.NewRetransmission(0.5, 0.5), retVar},
		{dist.NewBimodal(dist.NewDeterministic(0.5), dist.NewDeterministic(5.5), 0.1), bimodalVar},
	}
	for _, c := range cases {
		c := c
		t.Run(c.d.Name(), func(t *testing.T) {
			distcheck.CheckVariance(t, c.d, c.want, opt)
		})
	}
}

// TestHeavyTails verifies the unbounded-support families really are
// unbounded in practice (samples far beyond the mean) and that Pareto's
// declared tail index is recoverable from data via the Hill estimator.
func TestHeavyTails(t *testing.T) {
	// At 10⁵ samples the expected maximum of Pareto(α) grows like
	// x_m·n^{1/α}; thresholds sit far below that but far above the mean,
	// refuting any ABD-style bound of a few δ.
	// α = 1.5 has infinite variance, so the CLT catalogue excludes it;
	// its full contract lives here: legal delays, replay determinism,
	// pinned analytic mean, unbounded support, recoverable tail index.
	heavy := dist.ParetoWithMean(1, 1.5)
	distcheck.CheckNonNegative(t, heavy, opt)
	distcheck.CheckReplay(t, heavy, opt)
	if heavy.Mean() != 1 {
		t.Fatalf("declared mean = %v, want exactly 1", heavy.Mean())
	}

	unbounded := []struct {
		d          dist.Dist
		mustExceed float64
	}{
		{dist.NewExponential(1), 8},           // max ≈ ln(10⁵) ≈ 11.5
		{dist.ParetoWithMean(1, 3), 10},       // mean 1, max ≈ 0.67·10^{5/3}/10³ ≫ 10
		{dist.ParetoWithMean(1, 1.5), 50},     // infinite variance
		{dist.NewRetransmission(0.1, 1), 40},  // geometric tail, mean 10
		{dist.NewRetransmission(0.5, 0.5), 3}, // mean 1, max ≈ 0.5·log₂(10⁵) ≈ 8
	}
	for _, c := range unbounded {
		c := c
		t.Run(c.d.Name(), func(t *testing.T) {
			distcheck.CheckUnbounded(t, c.d, c.mustExceed, opt)
		})
	}

	tails := []struct {
		d      dist.Dist
		alpha  float64
		relTol float64
	}{
		{dist.ParetoWithMean(1, 1.5), 1.5, 0.15},
		{dist.ParetoWithMean(1, 2.5), 2.5, 0.15},
		{dist.ParetoWithMean(1, 1.05), 1.05, 0.15},
	}
	for _, c := range tails {
		c := c
		t.Run("hill/"+c.d.Name(), func(t *testing.T) {
			distcheck.CheckTailIndex(t, c.d, c.alpha, c.relTol, opt)
		})
	}
}

// TestBoundedSupport pins the ABD-compatible side: Deterministic and
// Uniform must never exceed their declared support, making them valid
// delays for the bounded-delay comparison runs (e.g. RunClockSync's ABD
// baseline).
func TestBoundedSupport(t *testing.T) {
	cases := []struct {
		d   dist.Dist
		max float64
	}{
		{dist.NewDeterministic(2.5), 2.5},
		{dist.NewUniform(0, 2), 2},
		{dist.NewUniform(0.1, 0.5), 0.5},
	}
	for _, c := range cases {
		c := c
		t.Run(c.d.Name(), func(t *testing.T) {
			m := distcheck.MomentsOf(distcheck.Draw(c.d, opt))
			if m.Max > c.max {
				t.Fatalf("max sample %v exceeds declared support bound %v", m.Max, c.max)
			}
			if m.Min < 0 {
				t.Fatalf("min sample %v negative", m.Min)
			}
		})
	}
}
