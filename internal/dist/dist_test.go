package dist

import (
	"math"
	"strings"
	"testing"

	"abenet/internal/rng"
)

func TestDeclaredMeans(t *testing.T) {
	cases := []struct {
		d    Dist
		want float64
	}{
		{NewDeterministic(0), 0},
		{NewDeterministic(2.5), 2.5},
		{NewUniform(0, 2), 1},
		{NewUniform(0.1, 0.5), 0.3},
		{NewUniform(3, 3), 3},
		{NewExponential(1), 1},
		{NewExponential(0.25), 0.25},
		{NewErlang(1, 1.5), 1.5},
		{NewErlang(4, 1), 1},
		{ParetoWithMean(1, 1.5), 1},
		{ParetoWithMean(2, 3), 2},
		{ParetoWithMean(1, 1.05), 1}, // α → 1⁺: mean pinned despite the tail
		{NewRetransmission(0.5, 0.5), 1},
		{NewRetransmission(0.1, 1), 10},
		{NewRetransmission(1, 2), 2}, // p → 1: degenerate single attempt
		// The adhoc example's congestion mix: 0.4·0.9 + 4·0.1 = 0.76.
		{NewBimodal(NewDeterministic(0.4), NewExponential(4), 0.1), 0.76},
		{NewBimodal(NewDeterministic(0.5), NewDeterministic(5.5), 0), 0.5},
		{NewBimodal(NewDeterministic(0.5), NewDeterministic(5.5), 1), 5.5},
	}
	for _, c := range cases {
		if got := c.d.Mean(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: Mean() = %v, want %v", c.d.Name(), got, c.want)
		}
		if c.d.Name() == "" {
			t.Errorf("%T has empty Name()", c.d)
		}
	}
}

func TestInvalidArgumentsPanic(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		f    func()
	}{
		{"det negative", func() { NewDeterministic(-1) }},
		{"det NaN", func() { NewDeterministic(nan) }},
		{"det Inf", func() { NewDeterministic(inf) }},
		{"uniform negative low", func() { NewUniform(-1, 1) }},
		{"uniform inverted", func() { NewUniform(2, 1) }},
		{"uniform NaN", func() { NewUniform(nan, 1) }},
		{"exp zero", func() { NewExponential(0) }},
		{"exp negative", func() { NewExponential(-3) }},
		{"exp Inf", func() { NewExponential(inf) }},
		{"erlang zero stages", func() { NewErlang(0, 1) }},
		{"erlang negative stages", func() { NewErlang(-2, 1) }},
		{"erlang zero mean", func() { NewErlang(3, 0) }},
		{"pareto alpha one", func() { ParetoWithMean(1, 1) }}, // infinite mean
		{"pareto alpha below one", func() { ParetoWithMean(1, 0.5) }},
		{"pareto zero mean", func() { ParetoWithMean(0, 2) }},
		{"pareto NaN alpha", func() { ParetoWithMean(1, nan) }},
		{"retx zero p", func() { NewRetransmission(0, 1) }},
		{"retx p above one", func() { NewRetransmission(1.2, 1) }},
		{"retx zero slot", func() { NewRetransmission(0.5, 0) }},
		{"retx NaN p", func() { NewRetransmission(nan, 1) }},
		{"bimodal nil fast", func() { NewBimodal(nil, NewDeterministic(1), 0.5) }},
		{"bimodal nil slow", func() { NewBimodal(NewDeterministic(1), nil, 0.5) }},
		{"bimodal negative weight", func() { NewBimodal(NewDeterministic(1), NewDeterministic(2), -0.1) }},
		{"bimodal weight above one", func() { NewBimodal(NewDeterministic(1), NewDeterministic(2), 1.1) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("expected panic")
				}
				if msg, ok := r.(string); !ok || !strings.HasPrefix(msg, "dist: ") {
					t.Fatalf("panic value %v lacks the dist: prefix", r)
				}
			}()
			c.f()
		})
	}
}

func TestParetoScale(t *testing.T) {
	// ParetoWithMean(m, α) must place the minimum at x_m = m(α−1)/α and
	// never sample below it.
	p := ParetoWithMean(1, 2).(pareto)
	if got, want := p.Scale(), 0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("scale = %v, want %v", got, want)
	}
	if got, want := p.Alpha(), 2.0; got != want {
		t.Fatalf("alpha = %v, want %v", got, want)
	}
	r := rng.New(1)
	for i := 0; i < 10_000; i++ {
		if x := p.Sample(r); x < p.Scale() {
			t.Fatalf("sample %v below scale %v", x, p.Scale())
		}
	}
}

func TestRetransmissionAttempts(t *testing.T) {
	// Attempts is geometric on {1, 2, ...}: never below 1, mean 1/p.
	for _, p := range []float64{0.05, 0.3, 0.9, 1} {
		model := NewRetransmission(p, 1)
		r := rng.New(7)
		const n = 200_000
		total := 0
		for i := 0; i < n; i++ {
			a := model.Attempts(r)
			if a < 1 {
				t.Fatalf("p=%v: %d attempts", p, a)
			}
			total += a
		}
		got := float64(total) / n
		want := 1 / p
		// Geometric sd is √(1−p)/p, so a 5σ band on the mean of n draws.
		slack := 5*math.Sqrt(1-p)/p/math.Sqrt(n) + 1e-12
		if math.Abs(got-want) > slack {
			t.Errorf("p=%v: mean attempts %v, want %v ± %v", p, got, want, slack)
		}
	}
}

func TestRetransmissionDegenerate(t *testing.T) {
	// p = 1 is the lossless limit: exactly one attempt, delay = slot.
	model := NewRetransmission(1, 2)
	r := rng.New(3)
	for i := 0; i < 100; i++ {
		if a := model.Attempts(r); a != 1 {
			t.Fatalf("attempts = %d, want 1", a)
		}
	}
	if model.Sample(r) != 2 {
		t.Fatal("p=1 sample must equal the slot time")
	}
	if model.Mean() != 2 {
		t.Fatalf("mean = %v, want 2", model.Mean())
	}
}

func TestRetransmissionSampleMatchesAttempts(t *testing.T) {
	// Sample must be exactly Attempts × SlotTime on the same stream.
	model := NewRetransmission(0.3, 0.25)
	ra, rb := rng.New(11), rng.New(11)
	for i := 0; i < 1000; i++ {
		want := float64(model.Attempts(ra)) * model.SlotTime
		if got := model.Sample(rb); got != want {
			t.Fatalf("sample %d: %v, want %v", i, got, want)
		}
	}
}

func TestErlangOneStageIsExponential(t *testing.T) {
	// Erlang(1, m) and Exponential(m) must be the same distribution, and
	// with the stage arithmetic used here, samplewise identical.
	e1, ex := NewErlang(1, 0.7), NewExponential(0.7)
	ra, rb := rng.New(5), rng.New(5)
	for i := 0; i < 1000; i++ {
		if a, b := e1.Sample(ra), ex.Sample(rb); a != b {
			t.Fatalf("sample %d: erlang %v vs exponential %v", i, a, b)
		}
	}
}

func TestBimodalBranchSelection(t *testing.T) {
	// Weight 0 and 1 must collapse to the pure components.
	fast, slow := NewDeterministic(1), NewDeterministic(9)
	r := rng.New(2)
	for i := 0; i < 100; i++ {
		if x := NewBimodal(fast, slow, 0).Sample(r); x != 1 {
			t.Fatalf("pSlow=0 sampled %v", x)
		}
		if x := NewBimodal(fast, slow, 1).Sample(r); x != 9 {
			t.Fatalf("pSlow=1 sampled %v", x)
		}
	}
}
