// The fault-plan codec: faults.Plan as declarative JSON, scripted events
// included, with event kinds named by the same strings faults.EventKind
// prints.
package spec

import (
	"fmt"
	"sort"

	"abenet/internal/faults"
)

// FaultsSpec is the JSON shape of faults.Plan.
type FaultsSpec struct {
	// Loss is the per-message drop probability in [0, 1).
	Loss float64 `json:"loss,omitempty"`
	// Duplicate is the per-message duplication probability.
	Duplicate float64 `json:"duplicate,omitempty"`
	// Reorder is the per-message extra-hold-back probability.
	Reorder float64 `json:"reorder,omitempty"`
	// ReorderDelay is the hold-back distribution; nil means exponential(1).
	ReorderDelay *DistSpec `json:"reorder_delay,omitempty"`
	// CrashRate is the per-node exponential crash rate.
	CrashRate float64 `json:"crash_rate,omitempty"`
	// RecoverRate is the stochastic recovery rate (0 = crash-stop).
	RecoverRate float64 `json:"recover_rate,omitempty"`
	// Events is the scripted fault timeline.
	Events []EventSpec `json:"events,omitempty"`
}

// EventSpec is the JSON shape of one scripted faults.Event. Kind is one of
// crash, recover, link-down, link-up, partition, heal.
type EventSpec struct {
	// At is the virtual time of the event.
	At float64 `json:"at"`
	// Kind names the event kind.
	Kind string `json:"kind"`
	// Node targets crash/recover.
	Node int `json:"node,omitempty"`
	// From, To name the directed edge of link-down/link-up.
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// Group is one side of the cut for partition/heal.
	Group []int `json:"group,omitempty"`
}

// eventKinds maps the JSON kind names onto faults.EventKind — the same
// strings faults.EventKind.String() prints, so specs and telemetry agree.
var eventKinds = map[string]faults.EventKind{
	faults.KindCrash.String():     faults.KindCrash,
	faults.KindRecover.String():   faults.KindRecover,
	faults.KindLinkDown.String():  faults.KindLinkDown,
	faults.KindLinkUp.String():    faults.KindLinkUp,
	faults.KindPartition.String(): faults.KindPartition,
	faults.KindHeal.String():      faults.KindHeal,
}

// eventKindNames returns the accepted kind names, sorted.
func eventKindNames() []string {
	names := make([]string, 0, len(eventKinds))
	for name := range eventKinds {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Build converts the event spec into a faults.Event.
func (e EventSpec) Build() (faults.Event, error) {
	kind, ok := eventKinds[e.Kind]
	if !ok {
		return faults.Event{}, fmt.Errorf("spec: unknown event kind %q (have %v)", e.Kind, eventKindNames())
	}
	return faults.Event{
		At:    e.At,
		Kind:  kind,
		Node:  e.Node,
		From:  e.From,
		To:    e.To,
		Group: e.Group,
	}, nil
}

// Build converts the fault spec into a faults.Plan (semantic validation —
// probability ranges, event targets — happens in runner.Env.Validate, which
// calls faults.Plan.Validate against the concrete network size).
func (f *FaultsSpec) Build() (*faults.Plan, error) {
	if f == nil {
		return nil, nil
	}
	plan := &faults.Plan{
		Loss:        f.Loss,
		Duplicate:   f.Duplicate,
		Reorder:     f.Reorder,
		CrashRate:   f.CrashRate,
		RecoverRate: f.RecoverRate,
	}
	if f.ReorderDelay != nil {
		d, err := f.ReorderDelay.Build()
		if err != nil {
			return nil, err
		}
		plan.ReorderDelay = d
	}
	for i, ev := range f.Events {
		built, err := ev.Build()
		if err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		plan.Events = append(plan.Events, built)
	}
	return plan, nil
}
