package spec

import (
	"bytes"
	"testing"

	"abenet/internal/runner"
)

// roundTrip asserts encode→decode→encode is the identity on the canonical
// bytes and that the hash survives the trip.
func roundTrip(t *testing.T, s *Spec) {
	t.Helper()
	c1, err := s.Canonical()
	if err != nil {
		t.Fatalf("canonical: %v", err)
	}
	s2, err := DecodeBytes(c1)
	if err != nil {
		t.Fatalf("decode of canonical form %s: %v", c1, err)
	}
	c2, err := s2.Canonical()
	if err != nil {
		t.Fatalf("re-canonical: %v", err)
	}
	if !bytes.Equal(c1, c2) {
		t.Fatalf("encode→decode→encode is not the identity:\n1: %s\n2: %s", c1, c2)
	}
	h1, _ := s.Hash()
	h2, _ := s2.Hash()
	if h1 == "" || h1 != h2 {
		t.Fatalf("hash broke across the round trip: %q vs %q", h1, h2)
	}
}

// protoSpec wraps a registry instance, failing the test on error.
func protoSpec(t *testing.T, p runner.Protocol) ProtocolSpec {
	t.Helper()
	ps, err := ForProtocol(p)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// TestRoundTripEveryProtocol: the identity holds for every registered
// protocol with default options.
func TestRoundTripEveryProtocol(t *testing.T) {
	for _, name := range runner.Protocols() {
		t.Run(name, func(t *testing.T) {
			inst, ok := runner.NewInstance(name)
			if !ok {
				t.Fatalf("no instance for %q", name)
			}
			roundTrip(t, &Spec{
				Version:  Version,
				Env:      EnvSpec{N: 8, Seed: 1},
				Protocol: protoSpec(t, inst),
			})
		})
	}
}

// TestRoundTripEveryDistFamily: the identity holds with each delay family
// in the delay, processing and links positions where applicable.
func TestRoundTripEveryDistFamily(t *testing.T) {
	dists := map[string]*DistSpec{
		"deterministic":  Deterministic(1),
		"uniform":        Uniform(0.5, 1.5),
		"exponential":    Exponential(2),
		"erlang":         Erlang(3, 1),
		"pareto":         Pareto(1, 1.5),
		"retransmission": Retransmission(0.5, 0.5),
		"bimodal":        Bimodal(Exponential(0.5), Deterministic(10), 0.05),
	}
	// The table must cover every registered family name.
	for name := range distFamily.entries {
		if _, ok := dists[name]; !ok {
			t.Fatalf("round-trip table misses dist family %q", name)
		}
	}
	for name, d := range dists {
		t.Run(name, func(t *testing.T) {
			roundTrip(t, &Spec{
				Version:  Version,
				Env:      EnvSpec{N: 8, Delay: d, Processing: Exponential(0.01), Seed: 1},
				Protocol: protoSpec(t, runner.Election{}),
			})
		})
	}
}

// TestRoundTripEveryTopologyClockAndLinks: the identity holds for every
// topology, clock model and link factory name.
func TestRoundTripEveryTopologyClockAndLinks(t *testing.T) {
	topos := map[string]*TopologySpec{
		"ring":      RingTopology(8),
		"biring":    BiRingTopology(8),
		"line":      LineTopology(8),
		"star":      StarTopology(8),
		"complete":  CompleteTopology(8),
		"hypercube": HypercubeTopology(3),
		"torus":     TorusTopology(3, 3),
	}
	for name := range topologyFamily.entries {
		if _, ok := topos[name]; !ok {
			t.Fatalf("round-trip table misses topology %q", name)
		}
	}
	for name, topo := range topos {
		t.Run("topology/"+name, func(t *testing.T) {
			// clock-sync runs on arbitrary graphs; ring protocols would
			// reject line/star (no Hamiltonian cycle) at run time, but the
			// codec is protocol-independent.
			roundTrip(t, &Spec{
				Version:  Version,
				Env:      EnvSpec{Topology: topo, Seed: 1},
				Protocol: protoSpec(t, runner.ClockSync{}),
			})
		})
	}

	clocks := map[string]*ClockSpec{
		"perfect":   PerfectClocks(),
		"uniform":   UniformClocks(1, 2),
		"wandering": WanderingClocks(1, 1.5, 5),
	}
	for name := range clockFamily.entries {
		if _, ok := clocks[name]; !ok {
			t.Fatalf("round-trip table misses clock model %q", name)
		}
	}
	for name, c := range clocks {
		t.Run("clocks/"+name, func(t *testing.T) {
			roundTrip(t, &Spec{
				Version:  Version,
				Env:      EnvSpec{N: 8, Clocks: c, Seed: 1},
				Protocol: protoSpec(t, runner.Election{}),
			})
		})
	}

	links := map[string]*LinksSpec{
		"arq":          ARQLinks(0.5, 0.5),
		"fifo":         FIFOLinks(Exponential(1)),
		"random-delay": RandomDelayLinks(Uniform(0, 2)),
	}
	for name := range linksFamily.entries {
		if _, ok := links[name]; !ok {
			t.Fatalf("round-trip table misses link factory %q", name)
		}
	}
	for name, l := range links {
		t.Run("links/"+name, func(t *testing.T) {
			roundTrip(t, &Spec{
				Version:  Version,
				Env:      EnvSpec{N: 8, Links: l, Delta: 1, Seed: 1},
				Protocol: protoSpec(t, runner.Election{}),
			})
		})
	}
}

// TestRoundTripFaultsAndSweep: the identity holds for a spec exercising the
// full fault vocabulary and the sweep block.
func TestRoundTripFaultsAndSweep(t *testing.T) {
	roundTrip(t, &Spec{
		Version: Version,
		Env: EnvSpec{
			N:       8,
			Seed:    1,
			Horizon: 2000,
			Faults: &FaultsSpec{
				Loss:         0.05,
				Duplicate:    0.01,
				Reorder:      0.02,
				ReorderDelay: Exponential(2),
				CrashRate:    0.001,
				RecoverRate:  0.01,
				Events: []EventSpec{
					{At: 10, Kind: "crash", Node: 3},
					{At: 20, Kind: "recover", Node: 3},
					{At: 30, Kind: "link-down", From: 1, To: 2},
					{At: 40, Kind: "link-up", From: 1, To: 2},
					{At: 50, Kind: "partition", Group: []int{0, 1}},
					{At: 60, Kind: "heal", Group: []int{0, 1}},
				},
			},
		},
		Protocol: protoSpec(t, runner.Election{}),
	})

	roundTrip(t, &Spec{
		Version:  Version,
		Env:      EnvSpec{Seed: 7, Delay: Exponential(1)},
		Protocol: protoSpec(t, runner.ChangRoberts{}),
		Sweep: &SweepSpec{
			Xs:          []float64{8, 16},
			Repetitions: 3,
			Workers:     2,
			Metrics:     []string{"messages", "time"},
		},
	})
}

// TestRoundTripByzantineAndBroadcast: the identity holds for a spec
// exercising the full adversary vocabulary and the local-broadcast medium,
// and the decoded spec builds the plan the JSON describes.
func TestRoundTripByzantineAndBroadcast(t *testing.T) {
	s := &Spec{
		Version: Version,
		Env: EnvSpec{
			Topology: CompleteTopology(8),
			Seed:     1,
			Horizon:  5000,
			Byzantine: &ByzantineSpec{Roles: []ByzantineRoleSpec{
				{Node: 0, Behavior: "equivocate"},
				{Node: 1, Behavior: "mute", Prob: 0.5},
				{Node: 2, Behavior: "stall", StallDelay: Exponential(3)},
			}},
			LocalBroadcast: true,
		},
		Protocol: protoSpec(t, runner.BenOr{F: 2, Init: "half", Coin: "common"}),
	}
	roundTrip(t, s)

	env, err := s.BuildEnv()
	if err != nil {
		t.Fatal(err)
	}
	if !env.LocalBroadcast {
		t.Fatal("local_broadcast did not reach the env")
	}
	if env.Byzantine.Count() != 3 || !env.Byzantine.IsAdversary(2) {
		t.Fatalf("built plan = %+v", env.Byzantine)
	}

	// An adversary plan on a protocol that rejects plans must fail at
	// decode time, with the capable set named — same for the medium.
	for _, env := range []EnvSpec{
		{N: 8, Byzantine: &ByzantineSpec{Roles: []ByzantineRoleSpec{{Node: 0, Behavior: "mute"}}}},
		{N: 8, LocalBroadcast: true},
	} {
		bad := &Spec{Version: Version, Env: env, Protocol: protoSpec(t, runner.Election{})}
		if err := bad.Validate(); err == nil {
			t.Fatalf("election accepted adversarial env %+v", env)
		}
	}

	// Unknown behaviour names fail with the vocabulary listed.
	unk := &Spec{
		Version: Version,
		Env: EnvSpec{N: 8, Byzantine: &ByzantineSpec{
			Roles: []ByzantineRoleSpec{{Node: 0, Behavior: "gossip"}}}},
		Protocol: protoSpec(t, runner.BenOr{}),
	}
	if err := unk.Validate(); err == nil {
		t.Fatal("unknown behavior accepted")
	}
}
