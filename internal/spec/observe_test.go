package spec

import (
	"strings"
	"testing"

	"abenet/internal/runner"
)

// TestRoundTripObserve: the codec identity holds for an observed spec, the
// decoded spec builds the probe config the JSON describes, and — the cache
// soundness pin — the observe block never changes the scenario hash.
func TestRoundTripObserve(t *testing.T) {
	s := &Spec{
		Version: Version,
		Env: EnvSpec{
			N:       8,
			Seed:    1,
			Observe: &ObserveSpec{EveryEvents: 5, Interval: 0.5, MaxSamples: 1000},
		},
		Protocol: protoSpec(t, runner.Election{}),
	}
	roundTrip(t, s)

	env, err := s.BuildEnv()
	if err != nil {
		t.Fatal(err)
	}
	if env.Observe == nil || env.Observe.EveryEvents != 5 || env.Observe.Interval != 0.5 || env.Observe.MaxSamples != 1000 {
		t.Fatalf("built observe config = %+v", env.Observe)
	}

	// Observation is excluded from scenario identity: an observed spec
	// hashes identically to the same spec without the block. (The serving
	// layer keys cached payloads on (hash, seed, observe fingerprint), so
	// this exclusion is safe there too — see service.observeKey.)
	plain := *s
	plain.Env.Observe = nil
	h1, _ := s.Hash()
	h2, _ := plain.Hash()
	if h1 != h2 {
		t.Fatalf("observe block changed the hash: %q vs %q", h1, h2)
	}
	x1, _ := s.ExecutionHash()
	x2, _ := plain.ExecutionHash()
	if x1 != x2 {
		t.Fatalf("observe block changed the execution hash: %q vs %q", x1, x2)
	}
}

// TestObserveValidation pins the decode-time rejections: a cadence-less
// block, an observe block on a protocol without a kernel event stream
// (with the capable set named), and observe+sweep.
func TestObserveValidation(t *testing.T) {
	noCadence := &Spec{
		Version:  Version,
		Env:      EnvSpec{N: 8, Observe: &ObserveSpec{MaxSamples: 10}},
		Protocol: protoSpec(t, runner.Election{}),
	}
	if err := noCadence.Validate(); err == nil {
		t.Fatal("cadence-less observe block accepted")
	}

	wrongProto := &Spec{
		Version:  Version,
		Env:      EnvSpec{N: 8, Observe: &ObserveSpec{EveryEvents: 1}},
		Protocol: protoSpec(t, runner.ItaiRodehSync{}),
	}
	err := wrongProto.Validate()
	if err == nil {
		t.Fatal("observe accepted on a round-engine protocol")
	}
	if !strings.Contains(err.Error(), "election") {
		t.Fatalf("rejection does not name the observe-capable protocols: %v", err)
	}

	withSweep := &Spec{
		Version:  Version,
		Env:      EnvSpec{Seed: 1, Observe: &ObserveSpec{EveryEvents: 1}},
		Protocol: protoSpec(t, runner.Election{}),
		Sweep:    &SweepSpec{Xs: []float64{8, 16}, Repetitions: 2},
	}
	if err := withSweep.Validate(); err == nil {
		t.Fatal("observe+sweep accepted")
	}
}

// TestObservedSpecRunCarriesSeries: the spec door returns the sampled
// series on the report, like the engine door does.
func TestObservedSpecRunCarriesSeries(t *testing.T) {
	s := &Spec{
		Version:  Version,
		Env:      EnvSpec{N: 6, Seed: 3, Observe: &ObserveSpec{EveryEvents: 2}},
		Protocol: protoSpec(t, runner.Election{}),
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Series == nil || len(rep.Series.Samples) == 0 {
		t.Fatal("observed spec run returned no series")
	}
	if len(rep.Series.Names) == 0 || rep.Series.Names[0] != "in_flight" {
		t.Fatalf("series names = %v", rep.Series.Names)
	}
}
