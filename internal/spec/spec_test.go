package spec

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"abenet/internal/dist"
	"abenet/internal/harness"
	"abenet/internal/runner"
)

const fixtureDir = "../../examples/specs"

// fixturePaths returns every committed spec fixture.
func fixturePaths(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(fixtureDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no spec fixtures under %s", fixtureDir)
	}
	return paths
}

// TestFixturesDecodeAndRoundTrip: every committed fixture decodes strictly,
// validates, and its canonical encoding is a fixed point of
// encode→decode→encode.
func TestFixturesDecodeAndRoundTrip(t *testing.T) {
	for _, path := range fixturePaths(t) {
		t.Run(filepath.Base(path), func(t *testing.T) {
			s, err := DecodeFile(path)
			if err != nil {
				t.Fatal(err)
			}
			c1, err := s.Canonical()
			if err != nil {
				t.Fatal(err)
			}
			s2, err := DecodeBytes(c1)
			if err != nil {
				t.Fatalf("decoding own canonical encoding: %v", err)
			}
			c2, err := s2.Canonical()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(c1, c2) {
				t.Fatalf("canonical encoding is not a fixed point:\n1: %s\n2: %s", c1, c2)
			}
			h1, err := s.Hash()
			if err != nil {
				t.Fatal(err)
			}
			h2, err := s2.Hash()
			if err != nil {
				t.Fatal(err)
			}
			if h1 != h2 {
				t.Fatalf("hash changed across a round trip: %s vs %s", h1, h2)
			}
		})
	}
}

// TestHashIdentifiesScenario: the hash is invariant under whitespace, field
// order, seed and sweep workers — and sensitive to everything else.
func TestHashIdentifiesScenario(t *testing.T) {
	base := `{
	  "version": 1,
	  "env": {"n": 16, "delay": {"name": "exponential", "params": {"mean": 1}}, "seed": 1},
	  "protocol": {"name": "election"}
	}`
	// Same scenario: reordered fields, different whitespace, different seed.
	same := `{"protocol":{"name":"election"},"env":{"seed":42,"delay":{"params":{"mean":1},"name":"exponential"},"n":16},"version":1}`
	// Different scenario: a different delay mean.
	diff := `{"version":1,"env":{"n":16,"delay":{"name":"exponential","params":{"mean":2}},"seed":1},"protocol":{"name":"election"}}`

	h := func(doc string) string {
		t.Helper()
		s, err := DecodeBytes([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		hash, err := s.Hash()
		if err != nil {
			t.Fatal(err)
		}
		return hash
	}
	if h(base) != h(same) {
		t.Fatal("hash depends on field order, whitespace or seed")
	}
	if h(base) == h(diff) {
		t.Fatal("hash missed a changed delay mean")
	}

	// Sweep workers are an execution hint, not scenario identity.
	sweepA := `{"version":1,"env":{"seed":1},"protocol":{"name":"election"},"sweep":{"xs":[8,16],"repetitions":3,"workers":1}}`
	sweepB := `{"version":1,"env":{"seed":1},"protocol":{"name":"election"},"sweep":{"xs":[8,16],"repetitions":3,"workers":8}}`
	if h(sweepA) != h(sweepB) {
		t.Fatal("hash depends on sweep workers")
	}
}

// TestStrictDecoding: unknown fields, names and versions fail at every
// level of the tree.
func TestStrictDecoding(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of the expected error
	}{
		{"top-level unknown field", `{"version":1,"env":{"n":4},"protocol":{"name":"election"},"bogus":1}`, "bogus"},
		{"env unknown field", `{"version":1,"env":{"n":4,"topo":"ring"},"protocol":{"name":"election"}}`, "topo"},
		{"protocol unknown option", `{"version":1,"env":{"n":4},"protocol":{"name":"election","options":{"A9":1}}}`, "A9"},
		{"dist unknown param", `{"version":1,"env":{"n":4,"delay":{"name":"exponential","params":{"rate":1}}},"protocol":{"name":"election"}}`, "rate"},
		{"unknown dist", `{"version":1,"env":{"n":4,"delay":{"name":"gaussian","params":{}}},"protocol":{"name":"election"}}`, "gaussian"},
		{"unknown topology", `{"version":1,"env":{"topology":{"name":"mesh","params":{"n":4}}},"protocol":{"name":"election"}}`, "mesh"},
		{"unknown protocol", `{"version":1,"env":{"n":4},"protocol":{"name":"raft"}}`, "raft"},
		{"unknown event kind", `{"version":1,"env":{"n":4,"horizon":100,"faults":{"events":[{"at":1,"kind":"explode","node":0}]}},"protocol":{"name":"election"}}`, "explode"},
		{"missing version", `{"env":{"n":4},"protocol":{"name":"election"}}`, "version"},
		{"future version", `{"version":2,"env":{"n":4},"protocol":{"name":"election"}}`, "version 2"},
		{"perfect clock with params", `{"version":1,"env":{"n":4,"clocks":{"name":"perfect","params":{"low":1}}},"protocol":{"name":"election"}}`, "no params"},
		{"trailing data", `{"version":1,"env":{"n":4},"protocol":{"name":"election"}} {}`, "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeBytes([]byte(tc.doc))
			if err == nil {
				t.Fatalf("decode succeeded, want error mentioning %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestSemanticValidation: component construction and environment rules are
// enforced at decode time, so a decoded spec is always runnable.
func TestSemanticValidation(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"negative exponential mean", `{"version":1,"env":{"n":4,"delay":{"name":"exponential","params":{"mean":-1}}},"protocol":{"name":"election"}}`},
		{"loss of 1", `{"version":1,"env":{"n":4,"horizon":10,"faults":{"loss":1}},"protocol":{"name":"election"}}`},
		{"event edge not in ring", `{"version":1,"env":{"n":8,"horizon":10,"faults":{"events":[{"at":1,"kind":"link-down","from":3,"to":2}]}},"protocol":{"name":"election"}}`},
		{"both n and topology", `{"version":1,"env":{"n":4,"topology":{"name":"ring","params":{"n":4}}},"protocol":{"name":"election"}}`},
		{"sweep with topology", `{"version":1,"env":{"topology":{"name":"ring","params":{"n":4}}},"protocol":{"name":"election"},"sweep":{"xs":[8]}}`},
		{"sweep with fractional size", `{"version":1,"env":{},"protocol":{"name":"election"},"sweep":{"xs":[8.5]}}`},
		{"sweep with no sizes", `{"version":1,"env":{},"protocol":{"name":"election"},"sweep":{"xs":[]}}`},
		{"negative horizon", `{"version":1,"env":{"n":4,"horizon":-1},"protocol":{"name":"election"}}`},
		{"size too small", `{"version":1,"env":{"n":1},"protocol":{"name":"election"}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeBytes([]byte(tc.doc)); err == nil {
				t.Fatal("decode succeeded, want validation error")
			}
		})
	}

	// A fault plan on a fault-rejecting protocol is a scenario that can
	// never run, so it is rejected at decode time (the registry metadata
	// knows which engines honour plans).
	doc := `{"version":1,"env":{"n":4,"horizon":10,"faults":{"loss":0.1}},"protocol":{"name":"peterson"}}`
	_, err := DecodeBytes([]byte(doc))
	if err == nil {
		t.Fatal("fault plan on peterson passed validation")
	}
	if !strings.Contains(err.Error(), "fault injection") {
		t.Fatalf("error %q does not explain the fault incompatibility", err)
	}
}

// TestSpecRunMatchesDirectRun: the acceptance-criterion core — a spec run
// and a hand-built runner.Run of the same scenario produce the identical
// Report.
func TestSpecRunMatchesDirectRun(t *testing.T) {
	s, err := DecodeFile(filepath.Join(fixtureDir, "election_ring.json"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := runner.Run(runner.Env{
		N:     16,
		Delay: dist.NewExponential(1),
		Seed:  1,
	}, runner.Election{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("spec run diverged from direct run:\nspec:   %+v\ndirect: %+v", got, want)
	}
	gm, _ := json.Marshal(got.Metrics())
	wm, _ := json.Marshal(want.Metrics())
	if !bytes.Equal(gm, wm) {
		t.Fatalf("metrics diverged:\nspec:   %s\ndirect: %s", gm, wm)
	}
}

// TestSweepWorkerIndependence: sweep results are bit-identical for any
// worker count (the harness aggregates in canonical order and seeds are
// derived from the spec hash, not from scheduling).
func TestSweepWorkerIndependence(t *testing.T) {
	s, err := DecodeFile(filepath.Join(fixtureDir, "itai_rodeh_sweep.json"))
	if err != nil {
		t.Fatal(err)
	}
	one, err := s.RunSweep(1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := s.RunSweep(4)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(SweepView(one, s.Sweep.Metrics))
	b, _ := json.Marshal(SweepView(four, s.Sweep.Metrics))
	if !bytes.Equal(a, b) {
		t.Fatalf("sweep results depend on worker count:\n1: %s\n4: %s", a, b)
	}
	// The metrics filter keeps exactly the requested names.
	var views []PointView
	if err := json.Unmarshal(a, &views); err != nil {
		t.Fatal(err)
	}
	for _, v := range views {
		if len(v.Metrics) != len(s.Sweep.Metrics) {
			t.Fatalf("point at x=%g has metrics %v, want exactly %v", v.X, v.Metrics, s.Sweep.Metrics)
		}
	}
}

// TestRunSweepHonoursProtocolOptions: the sweep must execute the spec's
// decoded option struct, not the registry's zero-value default — the
// options are in the scenario hash, so they must be in the run.
func TestRunSweepHonoursProtocolOptions(t *testing.T) {
	doc := func(options string) string {
		return `{"version":1,"env":{"seed":1},"protocol":{"name":"election"` + options + `},"sweep":{"xs":[8],"repetitions":3}}`
	}
	withOpts, err := DecodeBytes([]byte(doc(`,"options":{"A0":0.9}`)))
	if err != nil {
		t.Fatal(err)
	}
	defaults, err := DecodeBytes([]byte(doc("")))
	if err != nil {
		t.Fatal(err)
	}
	got, err := withOpts.RunSweep(1)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := defaults.RunSweep(1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Mean("activations") == plain[0].Mean("activations") &&
		got[0].Mean("time") == plain[0].Mean("time") {
		t.Fatal("A0 option had no effect on the sweep: the default instance ran instead")
	}

	// And the option run is exactly the hand-built sweep of the same
	// scenario: same hash-derived seeds, same protocol instance.
	hash, err := withOpts.Hash()
	if err != nil {
		t.Fatal(err)
	}
	want, err := harness.Sweep{Name: hash, Repetitions: 3, Workers: 1, Seed: 1}.RunEnv(
		[]float64{8},
		func(x float64) (runner.Env, runner.Protocol, error) {
			return runner.Env{N: int(x)}, &runner.Election{A0: 0.9}, nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(SweepView(got, nil))
	b, _ := json.Marshal(SweepView(want, nil))
	if !bytes.Equal(a, b) {
		t.Fatalf("spec sweep diverged from the hand-built sweep:\nspec: %s\nhand: %s", a, b)
	}
}

// TestMetricsFilterNeverChangesRuns: the metrics filter is view-only — two
// sweeps differing only in displayed columns simulate identical numbers
// (seeds derive from ExecutionHash, which zeroes the filter).
func TestMetricsFilterNeverChangesRuns(t *testing.T) {
	doc := func(metrics string) string {
		return `{"version":1,"env":{"seed":1},"protocol":{"name":"election"},"sweep":{"xs":[6],"repetitions":3` + metrics + `}}`
	}
	all, err := DecodeBytes([]byte(doc("")))
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := DecodeBytes([]byte(doc(`,"metrics":["messages"]`)))
	if err != nil {
		t.Fatal(err)
	}
	// The cache identities differ (different reported payload)...
	h1, _ := all.Hash()
	h2, _ := filtered.Hash()
	if h1 == h2 {
		t.Fatal("metrics filter missing from the cache hash")
	}
	// ...but the execution identities — and therefore the numbers — match.
	e1, _ := all.ExecutionHash()
	e2, _ := filtered.ExecutionHash()
	if e1 != e2 {
		t.Fatalf("execution hash depends on the view filter: %s vs %s", e1, e2)
	}
	p1, err := all.RunSweep(1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := filtered.RunSweep(1)
	if err != nil {
		t.Fatal(err)
	}
	if p1[0].Mean("messages") != p2[0].Mean("messages") || p1[0].Mean("time") != p2[0].Mean("time") {
		t.Fatalf("display filter changed simulated numbers: messages %g vs %g, time %g vs %g",
			p1[0].Mean("messages"), p2[0].Mean("messages"), p1[0].Mean("time"), p2[0].Mean("time"))
	}
}

// TestSweepResourceCeilings: one request cannot demand unbounded work.
func TestSweepResourceCeilings(t *testing.T) {
	for name, doc := range map[string]string{
		"workers":     `{"version":1,"env":{"seed":1},"protocol":{"name":"election"},"sweep":{"xs":[8],"workers":2000000000}}`,
		"repetitions": `{"version":1,"env":{"seed":1},"protocol":{"name":"election"},"sweep":{"xs":[8],"repetitions":2000000000}}`,
		"size":        `{"version":1,"env":{"seed":1},"protocol":{"name":"election"},"sweep":{"xs":[1048577]}}`,
		"total runs":  `{"version":1,"env":{"seed":1},"protocol":{"name":"election"},"sweep":{"xs":[8,16,32,64,128,256,512,1024,2048,4096,8192],"repetitions":1000000}}`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := DecodeBytes([]byte(doc)); err == nil {
				t.Fatal("unbounded sweep passed validation")
			}
		})
	}
}

// TestSweepValidatesEverySize: a fault plan valid at one sweep size and
// invalid at another is rejected at decode time regardless of size order.
func TestSweepValidatesEverySize(t *testing.T) {
	doc := `{"version":1,"env":{"seed":1,"horizon":100,"faults":{"events":[{"at":1,"kind":"crash","node":12}]}},"protocol":{"name":"election"},"sweep":{"xs":[16,8],"repetitions":2}}`
	_, err := DecodeBytes([]byte(doc))
	if err == nil {
		t.Fatal("crash of node 12 passed validation for sweep size 8")
	}
	if !strings.Contains(err.Error(), "size 8") {
		t.Fatalf("error %q does not name the offending sweep size", err)
	}
}

// TestFixturesRunnable: every committed fixture actually executes (single
// runs as-is; sweep fixtures at reduced scale is their own committed size).
func TestFixturesRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("fixture execution is not short")
	}
	for _, path := range fixturePaths(t) {
		t.Run(filepath.Base(path), func(t *testing.T) {
			s, err := DecodeFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if s.Sweep != nil {
				if _, err := s.RunSweep(0); err != nil {
					t.Fatal(err)
				}
				return
			}
			rep, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			if rep.Protocol != s.Protocol.Name {
				t.Fatalf("report protocol %q, spec protocol %q", rep.Protocol, s.Protocol.Name)
			}
		})
	}
}

// TestDecodeFileMissing: a missing file errors cleanly.
func TestDecodeFileMissing(t *testing.T) {
	if _, err := DecodeFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("want error for missing file")
	}
	if _, err := os.Stat(fixtureDir); err != nil {
		t.Fatalf("fixture dir missing: %v", err)
	}
}
