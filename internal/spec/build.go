// Building and running specs: Spec → runner.Env + runner.Protocol →
// runner.Run / harness.Sweep. CLI, tests and the serving layer all run
// scenarios through these two entry points, which is what makes a spec's
// results byte-identical across all three.
package spec

import (
	"errors"
	"fmt"
	"math"

	"abenet/internal/harness"
	"abenet/internal/runner"
	"abenet/internal/simtime"
	"abenet/internal/stats"
)

// The sweep resource ceilings. Specs arrive over the network (abe-serve),
// so a single request must not be able to demand unbounded goroutines,
// result slots or network sizes; Validate enforces these before anything
// allocates.
const (
	// MaxSweepPositions bounds len(Sweep.Xs).
	MaxSweepPositions = 4096
	// MaxSweepSize bounds each swept network size.
	MaxSweepSize = 1 << 20
	// MaxSweepRepetitions bounds Sweep.Repetitions.
	MaxSweepRepetitions = 1_000_000
	// MaxSweepWorkers bounds Sweep.Workers (0 still means GOMAXPROCS).
	MaxSweepWorkers = 1024
	// MaxSweepRuns bounds the total run count len(Xs)·Repetitions (the
	// harness preallocates one result slot per run).
	MaxSweepRuns = 10_000_000
)

// BuildEnv constructs the runner.Env the spec describes. The returned
// environment is not yet validated against the protocol — runner.Run does
// that — but every component is constructed, so component-level errors
// (unknown names, invalid parameters) surface here.
func (s *Spec) BuildEnv() (runner.Env, error) {
	var env runner.Env
	e := s.Env
	if e.Topology != nil {
		if e.N != 0 {
			return runner.Env{}, errors.New(`spec: env sets both "topology" and "n"; the size lives in the topology params`)
		}
		g, err := e.Topology.Build()
		if err != nil {
			return runner.Env{}, err
		}
		env.Graph = g
	} else {
		env.N = e.N
	}
	if e.Delay != nil {
		d, err := e.Delay.Build()
		if err != nil {
			return runner.Env{}, err
		}
		env.Delay = d
	}
	if e.Links != nil {
		f, err := e.Links.Build()
		if err != nil {
			return runner.Env{}, err
		}
		env.Links = f
	}
	env.Delta = e.Delta
	if e.Clocks != nil {
		m, err := e.Clocks.Build()
		if err != nil {
			return runner.Env{}, err
		}
		env.Clocks = m
	}
	if e.Processing != nil {
		d, err := e.Processing.Build()
		if err != nil {
			return runner.Env{}, err
		}
		env.Processing = d
	}
	env.Seed = e.Seed
	env.Scheduler = e.Scheduler
	if e.Horizon < 0 || math.IsInf(e.Horizon, 0) {
		return runner.Env{}, fmt.Errorf("spec: horizon %g must be finite and non-negative", e.Horizon)
	}
	env.Horizon = simtime.Time(e.Horizon)
	env.MaxEvents = e.MaxEvents
	env.MaxRounds = e.MaxRounds
	if e.Faults != nil {
		plan, err := e.Faults.Build()
		if err != nil {
			return runner.Env{}, err
		}
		env.Faults = plan
	}
	if e.Byzantine != nil {
		plan, err := e.Byzantine.Build()
		if err != nil {
			return runner.Env{}, err
		}
		env.Byzantine = plan
	}
	env.LocalBroadcast = e.LocalBroadcast
	if e.Observe != nil {
		cfg, err := e.Observe.Build()
		if err != nil {
			return runner.Env{}, err
		}
		env.Observe = cfg
	}
	if e.Trace != nil {
		cfg, err := e.Trace.Build()
		if err != nil {
			return runner.Env{}, err
		}
		env.Trace = cfg
	}
	return env, nil
}

// Build returns the (environment, protocol) pair of a single-scenario spec,
// for callers that want to adjust the env (attach a tracer, override the
// seed) before running.
func (s *Spec) Build() (runner.Env, runner.Protocol, error) {
	env, err := s.BuildEnv()
	if err != nil {
		return runner.Env{}, nil, err
	}
	if s.Protocol.proto == nil {
		return runner.Env{}, nil, errors.New("spec: no protocol (decode a spec or use ForProtocol)")
	}
	return env, s.Protocol.proto, nil
}

// Validate checks the whole spec semantically: components build, the
// environment passes runner.Env.Validate, and the sweep block (if any) is
// consistent. DecodeBytes calls it, so a decoded spec is always runnable;
// success is latched, so later Run/RunSweep/Submit calls do not re-pay it.
func (s *Spec) Validate() error {
	if s.validated {
		return nil
	}
	if err := s.validate(); err != nil {
		return err
	}
	s.validated = true
	return nil
}

func (s *Spec) validate() error {
	if s.Protocol.proto == nil {
		return errors.New("spec: no protocol")
	}
	env, err := s.BuildEnv()
	if err != nil {
		return err
	}
	// A fault plan on a protocol whose engine rejects plans is a scenario
	// that can never run; the registry metadata knows, so say so at decode
	// time instead of handing abe-serve a job guaranteed to fail.
	if s.Env.Faults != nil {
		if info, ok := runner.ProtocolInfo(s.Protocol.Name); ok && !info.SupportsFaults {
			var capable []string
			for _, i := range runner.Infos() {
				if i.SupportsFaults {
					capable = append(capable, i.Name)
				}
			}
			return fmt.Errorf("spec: protocol %q does not support fault injection (fault-capable: %v)", s.Protocol.Name, capable)
		}
	}
	// Same decode-time rejection for the adversarial axes: a Byzantine plan
	// or the broadcast medium on a protocol that rejects them is a scenario
	// guaranteed to fail at run time.
	if s.Env.Byzantine != nil {
		if info, ok := runner.ProtocolInfo(s.Protocol.Name); ok && !info.SupportsByzantine {
			var capable []string
			for _, i := range runner.Infos() {
				if i.SupportsByzantine {
					capable = append(capable, i.Name)
				}
			}
			return fmt.Errorf("spec: protocol %q does not support byzantine adversaries (byzantine-capable: %v)", s.Protocol.Name, capable)
		}
	}
	if s.Env.LocalBroadcast {
		if info, ok := runner.ProtocolInfo(s.Protocol.Name); ok && !info.SupportsBroadcast {
			var capable []string
			for _, i := range runner.Infos() {
				if i.SupportsBroadcast {
					capable = append(capable, i.Name)
				}
			}
			return fmt.Errorf("spec: protocol %q does not support the local-broadcast medium (broadcast-capable: %v)", s.Protocol.Name, capable)
		}
	}
	if s.Env.Observe != nil {
		if info, ok := runner.ProtocolInfo(s.Protocol.Name); ok && !info.SupportsObserve {
			var capable []string
			for _, i := range runner.Infos() {
				if i.SupportsObserve {
					capable = append(capable, i.Name)
				}
			}
			return fmt.Errorf("spec: protocol %q does not support time-series observation (observe-capable: %v)", s.Protocol.Name, capable)
		}
		if s.Sweep != nil {
			return errors.New(`spec: "observe" applies to a single run; a sweep streams per-point completions instead — drop one of the two blocks`)
		}
	}
	if s.Env.Trace != nil {
		if info, ok := runner.ProtocolInfo(s.Protocol.Name); ok && !info.SupportsTrace {
			var capable []string
			for _, i := range runner.Infos() {
				if i.SupportsTrace {
					capable = append(capable, i.Name)
				}
			}
			return fmt.Errorf("spec: protocol %q does not support causal tracing (trace-capable: %v)", s.Protocol.Name, capable)
		}
		if s.Sweep != nil {
			return errors.New(`spec: "trace" applies to a single run; tracing every run of a sweep would multiply its memory by the event cap — drop one of the two blocks`)
		}
	}
	if sw := s.Sweep; sw != nil {
		if len(sw.Xs) == 0 {
			return errors.New(`spec: sweep needs at least one size in "xs"`)
		}
		if len(sw.Xs) > MaxSweepPositions {
			return fmt.Errorf("spec: sweep has %d positions; the limit is %d", len(sw.Xs), MaxSweepPositions)
		}
		if env.Graph != nil || env.N != 0 {
			return errors.New(`spec: a sweep varies the ring size over "xs"; leave env "topology" and "n" unset`)
		}
		for _, x := range sw.Xs {
			n := int(x)
			if float64(n) != x || n < 2 {
				return fmt.Errorf("spec: sweep size %g is not a network size (integer >= 2)", x)
			}
			if n > MaxSweepSize {
				return fmt.Errorf("spec: sweep size %d exceeds the limit %d", n, MaxSweepSize)
			}
		}
		if sw.Repetitions < 0 || sw.Repetitions > MaxSweepRepetitions {
			return fmt.Errorf("spec: sweep repetitions %d outside [0, %d]", sw.Repetitions, MaxSweepRepetitions)
		}
		reps := sw.Repetitions
		if reps == 0 {
			reps = harness.DefaultRepetitions
		}
		if total := len(sw.Xs) * reps; total > MaxSweepRuns {
			return fmt.Errorf("spec: sweep demands %d runs (%d sizes × %d repetitions); the limit is %d",
				total, len(sw.Xs), reps, MaxSweepRuns)
		}
		if sw.Workers < 0 || sw.Workers > MaxSweepWorkers {
			return fmt.Errorf("spec: sweep workers %d outside [0, %d]", sw.Workers, MaxSweepWorkers)
		}
		for _, m := range sw.Metrics {
			if m == "" {
				return errors.New("spec: empty metric name in sweep metrics")
			}
		}
		// Validate the env at every sweep size, not just the first: a
		// fault event targeting node 12 is fine at n=16 and invalid at
		// n=8, and "a decoded spec is always runnable" has to mean the
		// whole sweep, whatever order the sizes come in.
		for _, x := range sw.Xs {
			env.N = int(x)
			if err := env.Validate(); err != nil {
				return fmt.Errorf("spec: at sweep size %d: %w", env.N, err)
			}
		}
		return nil
	}
	if err := env.Validate(); err != nil {
		return err
	}
	return nil
}

// Run executes a single-scenario spec through runner.Run.
func (s *Spec) Run() (runner.Report, error) {
	if s.Sweep != nil {
		return runner.Report{}, errors.New("spec: spec has a sweep block; use RunSweep")
	}
	env, proto, err := s.Build()
	if err != nil {
		return runner.Report{}, err
	}
	return runner.Run(env, proto)
}

// RunSweep executes the spec's sweep block through harness.Sweep. The sweep
// name is the execution hash and the base seed is Env.Seed, so
// per-repetition seeds — and therefore every number — are a pure function
// of (simulated scenario, seed), independent of worker count and of the
// view-only metrics filter. workersOverride, when positive, replaces
// Sweep.Workers (a resource hint, not part of the scenario identity).
func (s *Spec) RunSweep(workersOverride int) ([]harness.Point, error) {
	return s.RunSweepStream(workersOverride, nil)
}

// RunSweepStream is RunSweep with a per-position streaming hook: onPoint
// (when non-nil) receives each position's aggregated, metrics-filtered
// view as soon as its last repetition completes — the values are identical
// to the final result's, only the arrival order across positions depends
// on scheduling. Calls are serialized but come from sweep workers, so the
// callback must be quick and must not block on the sweep itself.
func (s *Spec) RunSweepStream(workersOverride int, onPoint func(xIdx int, pv PointView)) ([]harness.Point, error) {
	if s.Sweep == nil {
		return nil, errors.New("spec: no sweep block; use Run")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	env, err := s.BuildEnv()
	if err != nil {
		return nil, err
	}
	// Seeds derive from the execution hash, which excludes the view-only
	// metrics filter: changing displayed columns never changes the runs.
	hash, err := s.ExecutionHash()
	if err != nil {
		return nil, err
	}
	workers := s.Sweep.Workers
	if workersOverride > 0 {
		workers = workersOverride
	}
	base := env
	base.Seed = 0 // the harness injects per-repetition seeds
	sweep := harness.Sweep{
		Name:        hash,
		Repetitions: s.Sweep.Repetitions,
		Workers:     workers,
		Seed:        env.Seed,
	}
	if onPoint != nil {
		keep := s.Sweep.Metrics
		sweep.OnPoint = func(xIdx int, p harness.Point) {
			views := SweepView(FilterPoints([]harness.Point{p}, keep), nil)
			onPoint(xIdx, views[0])
		}
	}
	// Run the spec's own decoded protocol instance — NOT the registry's
	// zero-value default that RunProtocol(name) would resolve: the options
	// are part of the scenario identity (they are in the hash), so they
	// must be part of the execution.
	proto := s.Protocol.proto
	return sweep.RunEnv(s.Sweep.Xs, func(x float64) (runner.Env, runner.Protocol, error) {
		env := base
		env.N = int(x)
		if float64(env.N) != x {
			return runner.Env{}, nil, fmt.Errorf("spec: sweep position %g is not a network size", x)
		}
		return env, proto, nil
	}, nil)
}

// MetricView is one aggregated metric of one sweep point, JSON-ready.
type MetricView struct {
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"std_dev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	N      int     `json:"n"`
}

// PointView is one sweep position's aggregated metrics, JSON-ready.
type PointView struct {
	X       float64               `json:"x"`
	Metrics map[string]MetricView `json:"metrics"`
}

// SweepView converts harness points into the JSON-ready view, keeping only
// the named metrics (all of them when keep is empty). Unknown names in keep
// are ignored: the metric key set is protocol-dependent and a view filter
// should never fail a finished run.
func SweepView(points []harness.Point, keep []string) []PointView {
	views := make([]PointView, len(points))
	for i, p := range FilterPoints(points, keep) {
		view := PointView{X: p.X, Metrics: map[string]MetricView{}}
		for name, sample := range p.Samples {
			view.Metrics[name] = metricView(sample)
		}
		views[i] = view
	}
	return views
}

// FilterPoints keeps only the named samples in each point (all of them
// when keep is empty) — the shared filter behind SweepView and the CLI
// table renderers, so every door reports the same metric set for the same
// spec. The input points are not mutated.
func FilterPoints(points []harness.Point, keep []string) []harness.Point {
	if len(keep) == 0 {
		return points
	}
	keepSet := make(map[string]bool, len(keep))
	for _, name := range keep {
		keepSet[name] = true
	}
	out := make([]harness.Point, len(points))
	for i, p := range points {
		filtered := harness.Point{X: p.X, Samples: make(map[string]*stats.Sample)}
		for name, s := range p.Samples {
			if keepSet[name] {
				filtered.Samples[name] = s
			}
		}
		out[i] = filtered
	}
	return out
}

func metricView(s *stats.Sample) MetricView {
	return MetricView{
		Mean:   s.Mean(),
		StdDev: s.StdDev(),
		Min:    s.Min(),
		Max:    s.Max(),
		N:      s.N(),
	}
}
