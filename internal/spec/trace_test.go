package spec

import (
	"strings"
	"testing"

	"abenet/internal/runner"
)

// TestRoundTripTrace: the codec identity holds for a traced spec, the
// decoded spec builds the trace config the JSON describes, and — the cache
// soundness pin — the trace block never changes the scenario hash.
func TestRoundTripTrace(t *testing.T) {
	s := &Spec{
		Version: Version,
		Env: EnvSpec{
			N:     8,
			Seed:  1,
			Trace: &TraceSpec{MaxEvents: 5000},
		},
		Protocol: protoSpec(t, runner.Election{}),
	}
	roundTrip(t, s)

	env, err := s.BuildEnv()
	if err != nil {
		t.Fatal(err)
	}
	if env.Trace == nil || env.Trace.MaxEvents != 5000 {
		t.Fatalf("built trace config = %+v", env.Trace)
	}

	// Tracing is excluded from scenario identity: a traced spec hashes
	// identically to the same spec without the block. (The serving layer
	// keys cached payloads on (hash, seed, trace fingerprint), so the
	// exclusion is safe there too — see service.traceKey.)
	plain := *s
	plain.Env.Trace = nil
	h1, _ := s.Hash()
	h2, _ := plain.Hash()
	if h1 != h2 {
		t.Fatalf("trace block changed the hash: %q vs %q", h1, h2)
	}
	x1, _ := s.ExecutionHash()
	x2, _ := plain.ExecutionHash()
	if x1 != x2 {
		t.Fatalf("trace block changed the execution hash: %q vs %q", x1, x2)
	}
}

// TestTraceValidation pins the decode-time rejections: a negative cap, a
// trace block on a protocol without a kernel event stream (with the
// capable set named), and trace+sweep.
func TestTraceValidation(t *testing.T) {
	negative := &Spec{
		Version:  Version,
		Env:      EnvSpec{N: 8, Trace: &TraceSpec{MaxEvents: -1}},
		Protocol: protoSpec(t, runner.Election{}),
	}
	if err := negative.Validate(); err == nil {
		t.Fatal("negative trace cap accepted")
	}

	wrongProto := &Spec{
		Version:  Version,
		Env:      EnvSpec{N: 8, Trace: &TraceSpec{}},
		Protocol: protoSpec(t, runner.ItaiRodehSync{}),
	}
	err := wrongProto.Validate()
	if err == nil {
		t.Fatal("trace accepted on a round-engine protocol")
	}
	if !strings.Contains(err.Error(), "election") {
		t.Fatalf("rejection does not name the trace-capable protocols: %v", err)
	}

	withSweep := &Spec{
		Version:  Version,
		Env:      EnvSpec{Seed: 1, Trace: &TraceSpec{}},
		Protocol: protoSpec(t, runner.Election{}),
		Sweep:    &SweepSpec{Xs: []float64{8, 16}, Repetitions: 2},
	}
	if err := withSweep.Validate(); err == nil {
		t.Fatal("trace+sweep accepted")
	}
}

// TestTracedSpecRunCarriesTrace: the spec door returns the exported trace
// on the report, causally chained down to the decision event.
func TestTracedSpecRunCarriesTrace(t *testing.T) {
	s := &Spec{
		Version:  Version,
		Env:      EnvSpec{N: 6, Seed: 3, Trace: &TraceSpec{}},
		Protocol: protoSpec(t, runner.Election{}),
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil || len(rep.Trace.Events) == 0 {
		t.Fatal("traced spec run returned no trace")
	}
	if rep.Trace.Decision == 0 {
		t.Fatal("election trace has no decision event")
	}
}
