// Component codecs: each environment ingredient (topology, delay
// distribution, clock model, link factory) is named JSON —
// {"name": ..., "params": {...}} — resolved through a small per-family
// registry of typed parameter structs. Parameters are typed, never
// free-form maps, so canonical encoding is deterministic; construction
// funnels through the library constructors, whose panics are captured as
// decode errors.
package spec

import (
	"encoding/json"
	"fmt"
	"sort"

	"abenet/internal/channel"
	"abenet/internal/clock"
	"abenet/internal/dist"
	"abenet/internal/topology"
)

// componentJSON is the shared wire shape of every named component.
type componentJSON struct {
	Name   string          `json:"name"`
	Params json.RawMessage `json:"params,omitempty"`
}

// entry describes one name in a component family: a fresh-parameters
// constructor (nil for parameterless components) and a builder from the
// populated parameters to the concrete value.
type entry[T any] struct {
	newParams func() any
	build     func(params any) (T, error)
}

// family is one component kind's name table.
type family[T any] struct {
	kind    string
	entries map[string]entry[T]
}

// names returns the family's sorted component names (for error messages).
func (f *family[T]) names() []string {
	out := make([]string, 0, len(f.entries))
	for name := range f.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// unmarshal decodes {"name", "params"} strictly against the family table.
func (f *family[T]) unmarshal(data []byte) (string, any, error) {
	var cj componentJSON
	if err := strictUnmarshal(data, &cj); err != nil {
		return "", nil, fmt.Errorf("spec: %s: %w", f.kind, err)
	}
	if cj.Name == "" {
		return "", nil, fmt.Errorf(`spec: %s needs a "name" (have %v)`, f.kind, f.names())
	}
	ent, ok := f.entries[cj.Name]
	if !ok {
		return "", nil, fmt.Errorf("spec: unknown %s %q (have %v)", f.kind, cj.Name, f.names())
	}
	if ent.newParams == nil {
		if len(cj.Params) > 0 {
			return "", nil, fmt.Errorf("spec: %s %q takes no params", f.kind, cj.Name)
		}
		return cj.Name, nil, nil
	}
	params := ent.newParams()
	if len(cj.Params) > 0 {
		if err := strictUnmarshal(cj.Params, params); err != nil {
			return "", nil, fmt.Errorf("spec: %s %q params: %w", f.kind, cj.Name, err)
		}
	}
	return cj.Name, params, nil
}

// marshal encodes a component canonically: the params object is always
// present and complete for parameterised components.
func (f *family[T]) marshal(name string, params any) ([]byte, error) {
	ent, ok := f.entries[name]
	if !ok {
		return nil, fmt.Errorf("spec: unknown %s %q (have %v)", f.kind, name, f.names())
	}
	cj := componentJSON{Name: name}
	if ent.newParams != nil {
		if params == nil {
			params = ent.newParams()
		}
		raw, err := json.Marshal(params)
		if err != nil {
			return nil, fmt.Errorf("spec: %s %q params: %w", f.kind, name, err)
		}
		cj.Params = raw
	}
	return json.Marshal(cj)
}

// build constructs the concrete value, converting constructor panics
// (the library treats mis-parameterisation as a programming error) into
// decode-side errors.
func (f *family[T]) build(name string, params any) (T, error) {
	var zero T
	ent, ok := f.entries[name]
	if !ok {
		return zero, fmt.Errorf("spec: unknown %s %q (have %v)", f.kind, name, f.names())
	}
	if ent.newParams != nil && params == nil {
		params = ent.newParams()
	}
	out, err := capture(func() (T, error) { return ent.build(params) })
	if err != nil {
		return zero, fmt.Errorf("spec: %s %q: %w", f.kind, name, err)
	}
	return out, nil
}

// capture runs fn, converting a panic into an error.
func capture[T any](fn func() (T, error)) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	return fn()
}

// ---- Delay distributions ----

// DistSpec names a delay distribution plus its parameters. Names:
// deterministic, uniform, exponential, erlang, pareto, retransmission,
// bimodal (whose fast/slow components are themselves DistSpecs).
type DistSpec struct {
	Name   string
	params any
}

// The distribution parameter structs (exported so specs can be built
// programmatically and so the JSON schema is visible in one place).
type (
	// DeterministicParams: the distribution concentrated on Value ≥ 0.
	DeterministicParams struct {
		Value float64 `json:"value"`
	}
	// UniformParams: uniform on [Low, High], 0 ≤ Low ≤ High.
	UniformParams struct {
		Low  float64 `json:"low"`
		High float64 `json:"high"`
	}
	// ExponentialParams: exponential with Mean > 0.
	ExponentialParams struct {
		Mean float64 `json:"mean"`
	}
	// ErlangParams: K-stage Erlang with total Mean.
	ErlangParams struct {
		K    int     `json:"k"`
		Mean float64 `json:"mean"`
	}
	// ParetoParams: Pareto scaled to Mean with tail index Alpha > 1.
	ParetoParams struct {
		Mean  float64 `json:"mean"`
		Alpha float64 `json:"alpha"`
	}
	// RetransmissionParams: stop-and-wait ARQ delay, per-attempt success
	// probability P, slot time Slot (mean Slot/P).
	RetransmissionParams struct {
		P    float64 `json:"p"`
		Slot float64 `json:"slot"`
	}
	// BimodalParams: Fast with probability 1−PSlow, Slow with PSlow.
	BimodalParams struct {
		Fast  *DistSpec `json:"fast"`
		Slow  *DistSpec `json:"slow"`
		PSlow float64   `json:"p_slow"`
	}
)

var distFamily = &family[dist.Dist]{kind: "distribution", entries: map[string]entry[dist.Dist]{
	"deterministic": {
		newParams: func() any { return &DeterministicParams{} },
		build: func(p any) (dist.Dist, error) {
			return dist.NewDeterministic(p.(*DeterministicParams).Value), nil
		},
	},
	"uniform": {
		newParams: func() any { return &UniformParams{} },
		build: func(p any) (dist.Dist, error) {
			pp := p.(*UniformParams)
			return dist.NewUniform(pp.Low, pp.High), nil
		},
	},
	"exponential": {
		newParams: func() any { return &ExponentialParams{} },
		build: func(p any) (dist.Dist, error) {
			return dist.NewExponential(p.(*ExponentialParams).Mean), nil
		},
	},
	"erlang": {
		newParams: func() any { return &ErlangParams{} },
		build: func(p any) (dist.Dist, error) {
			pp := p.(*ErlangParams)
			return dist.NewErlang(pp.K, pp.Mean), nil
		},
	},
	"pareto": {
		newParams: func() any { return &ParetoParams{} },
		build: func(p any) (dist.Dist, error) {
			pp := p.(*ParetoParams)
			return dist.ParetoWithMean(pp.Mean, pp.Alpha), nil
		},
	},
	"retransmission": {
		newParams: func() any { return &RetransmissionParams{} },
		build: func(p any) (dist.Dist, error) {
			pp := p.(*RetransmissionParams)
			return dist.NewRetransmission(pp.P, pp.Slot), nil
		},
	},
}}

// The bimodal entry recurses through DistSpec.Build for its components, so
// it is registered in init() to break the initialisation cycle.
func init() {
	distFamily.entries["bimodal"] = entry[dist.Dist]{
		newParams: func() any { return &BimodalParams{} },
		build: func(p any) (dist.Dist, error) {
			pp := p.(*BimodalParams)
			if pp.Fast == nil || pp.Slow == nil {
				return nil, fmt.Errorf(`bimodal needs both "fast" and "slow" component distributions`)
			}
			fast, err := pp.Fast.Build()
			if err != nil {
				return nil, err
			}
			slow, err := pp.Slow.Build()
			if err != nil {
				return nil, err
			}
			return dist.NewBimodal(fast, slow, pp.PSlow), nil
		},
	}
}

// The programmatic DistSpec constructors.

// Deterministic is the spec of dist.NewDeterministic(v).
func Deterministic(v float64) *DistSpec {
	return &DistSpec{Name: "deterministic", params: &DeterministicParams{Value: v}}
}

// Uniform is the spec of dist.NewUniform(low, high).
func Uniform(low, high float64) *DistSpec {
	return &DistSpec{Name: "uniform", params: &UniformParams{Low: low, High: high}}
}

// Exponential is the spec of dist.NewExponential(mean).
func Exponential(mean float64) *DistSpec {
	return &DistSpec{Name: "exponential", params: &ExponentialParams{Mean: mean}}
}

// Erlang is the spec of dist.NewErlang(k, mean).
func Erlang(k int, mean float64) *DistSpec {
	return &DistSpec{Name: "erlang", params: &ErlangParams{K: k, Mean: mean}}
}

// Pareto is the spec of dist.ParetoWithMean(mean, alpha).
func Pareto(mean, alpha float64) *DistSpec {
	return &DistSpec{Name: "pareto", params: &ParetoParams{Mean: mean, Alpha: alpha}}
}

// Retransmission is the spec of dist.NewRetransmission(p, slot).
func Retransmission(p, slot float64) *DistSpec {
	return &DistSpec{Name: "retransmission", params: &RetransmissionParams{P: p, Slot: slot}}
}

// Bimodal is the spec of dist.NewBimodal(fast, slow, pSlow).
func Bimodal(fast, slow *DistSpec, pSlow float64) *DistSpec {
	return &DistSpec{Name: "bimodal", params: &BimodalParams{Fast: fast, Slow: slow, PSlow: pSlow}}
}

// UnmarshalJSON implements json.Unmarshaler (strict).
func (d *DistSpec) UnmarshalJSON(data []byte) error {
	name, params, err := distFamily.unmarshal(data)
	if err != nil {
		return err
	}
	d.Name, d.params = name, params
	return nil
}

// MarshalJSON implements json.Marshaler (canonical).
func (d DistSpec) MarshalJSON() ([]byte, error) {
	return distFamily.marshal(d.Name, d.params)
}

// Build constructs the distribution.
func (d *DistSpec) Build() (dist.Dist, error) {
	return distFamily.build(d.Name, d.params)
}

// ---- Topologies ----

// TopologySpec names a communication graph plus its parameters. Names:
// ring, biring, line, star, complete (SizeParams), hypercube
// (HypercubeParams), torus (TorusParams).
type TopologySpec struct {
	Name   string
	params any
}

type (
	// SizeParams: the node count of ring/biring/line/star/complete.
	SizeParams struct {
		N int `json:"n"`
	}
	// HypercubeParams: the dimension (2^Dim nodes).
	HypercubeParams struct {
		Dim int `json:"dim"`
	}
	// TorusParams: the Rows×Cols 2-D torus.
	TorusParams struct {
		Rows int `json:"rows"`
		Cols int `json:"cols"`
	}
)

func sizedTopology(build func(n int) *topology.Graph) entry[*topology.Graph] {
	return entry[*topology.Graph]{
		newParams: func() any { return &SizeParams{} },
		build: func(p any) (*topology.Graph, error) {
			return build(p.(*SizeParams).N), nil
		},
	}
}

var topologyFamily = &family[*topology.Graph]{kind: "topology", entries: map[string]entry[*topology.Graph]{
	"ring":     sizedTopology(topology.Ring),
	"biring":   sizedTopology(topology.BiRing),
	"line":     sizedTopology(topology.Line),
	"star":     sizedTopology(topology.Star),
	"complete": sizedTopology(topology.Complete),
	"hypercube": {
		newParams: func() any { return &HypercubeParams{} },
		build: func(p any) (*topology.Graph, error) {
			return topology.Hypercube(p.(*HypercubeParams).Dim), nil
		},
	},
	"torus": {
		newParams: func() any { return &TorusParams{} },
		build: func(p any) (*topology.Graph, error) {
			pp := p.(*TorusParams)
			return topology.Torus(pp.Rows, pp.Cols), nil
		},
	},
}}

// RingTopology is the spec of topology.Ring(n).
func RingTopology(n int) *TopologySpec {
	return &TopologySpec{Name: "ring", params: &SizeParams{N: n}}
}

// BiRingTopology is the spec of topology.BiRing(n).
func BiRingTopology(n int) *TopologySpec {
	return &TopologySpec{Name: "biring", params: &SizeParams{N: n}}
}

// LineTopology is the spec of topology.Line(n).
func LineTopology(n int) *TopologySpec {
	return &TopologySpec{Name: "line", params: &SizeParams{N: n}}
}

// StarTopology is the spec of topology.Star(n).
func StarTopology(n int) *TopologySpec {
	return &TopologySpec{Name: "star", params: &SizeParams{N: n}}
}

// CompleteTopology is the spec of topology.Complete(n).
func CompleteTopology(n int) *TopologySpec {
	return &TopologySpec{Name: "complete", params: &SizeParams{N: n}}
}

// HypercubeTopology is the spec of topology.Hypercube(dim).
func HypercubeTopology(dim int) *TopologySpec {
	return &TopologySpec{Name: "hypercube", params: &HypercubeParams{Dim: dim}}
}

// TorusTopology is the spec of topology.Torus(rows, cols).
func TorusTopology(rows, cols int) *TopologySpec {
	return &TopologySpec{Name: "torus", params: &TorusParams{Rows: rows, Cols: cols}}
}

// UnmarshalJSON implements json.Unmarshaler (strict).
func (t *TopologySpec) UnmarshalJSON(data []byte) error {
	name, params, err := topologyFamily.unmarshal(data)
	if err != nil {
		return err
	}
	t.Name, t.params = name, params
	return nil
}

// MarshalJSON implements json.Marshaler (canonical).
func (t TopologySpec) MarshalJSON() ([]byte, error) {
	return topologyFamily.marshal(t.Name, t.params)
}

// Build constructs the graph.
func (t *TopologySpec) Build() (*topology.Graph, error) {
	return topologyFamily.build(t.Name, t.params)
}

// ---- Clock models ----

// ClockSpec names a clock model. Names: perfect (no params), uniform
// (UniformClockParams), wandering (WanderingClockParams).
type ClockSpec struct {
	Name   string
	params any
}

type (
	// UniformClockParams: each node's constant rate drawn uniformly from
	// [Low, High].
	UniformClockParams struct {
		Low  float64 `json:"low"`
		High float64 `json:"high"`
	}
	// WanderingClockParams: piecewise-constant rates in [Low, High],
	// resampled at exponential boundaries of mean SegmentMean.
	WanderingClockParams struct {
		Low         float64 `json:"low"`
		High        float64 `json:"high"`
		SegmentMean float64 `json:"segment_mean"`
	}
)

var clockFamily = &family[clock.Model]{kind: "clock model", entries: map[string]entry[clock.Model]{
	"perfect": {
		build: func(any) (clock.Model, error) { return clock.PerfectModel{}, nil },
	},
	"uniform": {
		newParams: func() any { return &UniformClockParams{} },
		build: func(p any) (clock.Model, error) {
			pp := p.(*UniformClockParams)
			return clock.NewUniformFixedModel(pp.Low, pp.High), nil
		},
	},
	"wandering": {
		newParams: func() any { return &WanderingClockParams{} },
		build: func(p any) (clock.Model, error) {
			pp := p.(*WanderingClockParams)
			return clock.NewWanderingModel(pp.Low, pp.High, pp.SegmentMean), nil
		},
	},
}}

// PerfectClocks is the spec of clock.PerfectModel.
func PerfectClocks() *ClockSpec { return &ClockSpec{Name: "perfect"} }

// UniformClocks is the spec of clock.NewUniformFixedModel(low, high).
func UniformClocks(low, high float64) *ClockSpec {
	return &ClockSpec{Name: "uniform", params: &UniformClockParams{Low: low, High: high}}
}

// WanderingClocks is the spec of clock.NewWanderingModel.
func WanderingClocks(low, high, segmentMean float64) *ClockSpec {
	return &ClockSpec{Name: "wandering", params: &WanderingClockParams{Low: low, High: high, SegmentMean: segmentMean}}
}

// UnmarshalJSON implements json.Unmarshaler (strict).
func (c *ClockSpec) UnmarshalJSON(data []byte) error {
	name, params, err := clockFamily.unmarshal(data)
	if err != nil {
		return err
	}
	c.Name, c.params = name, params
	return nil
}

// MarshalJSON implements json.Marshaler (canonical).
func (c ClockSpec) MarshalJSON() ([]byte, error) {
	return clockFamily.marshal(c.Name, c.params)
}

// Build constructs the clock model.
func (c *ClockSpec) Build() (clock.Model, error) {
	return clockFamily.build(c.Name, c.params)
}

// ---- Link factories ----

// LinksSpec names a full link factory, overriding the plain delay
// distribution. Names: arq (ARQLinkParams), fifo and random-delay
// (DelayLinkParams, whose delay is a DistSpec).
type LinksSpec struct {
	Name   string
	params any
}

type (
	// ARQLinkParams: lossy stop-and-wait ARQ links, per-attempt success
	// probability P, slot time Slot.
	ARQLinkParams struct {
		P    float64 `json:"p"`
		Slot float64 `json:"slot"`
	}
	// DelayLinkParams: a delay distribution applied with a fixed link
	// discipline (fifo preserves per-link order; random-delay does not).
	DelayLinkParams struct {
		Delay *DistSpec `json:"delay"`
	}
)

func delayLinks(wrap func(dist.Dist) channel.Factory) entry[channel.Factory] {
	return entry[channel.Factory]{
		newParams: func() any { return &DelayLinkParams{} },
		build: func(p any) (channel.Factory, error) {
			pp := p.(*DelayLinkParams)
			if pp.Delay == nil {
				return nil, fmt.Errorf(`needs a "delay" distribution`)
			}
			d, err := pp.Delay.Build()
			if err != nil {
				return nil, err
			}
			return wrap(d), nil
		},
	}
}

var linksFamily = &family[channel.Factory]{kind: "link factory", entries: map[string]entry[channel.Factory]{
	"arq": {
		newParams: func() any { return &ARQLinkParams{} },
		build: func(p any) (channel.Factory, error) {
			pp := p.(*ARQLinkParams)
			// The factory defers link construction into the run, so validate
			// the parameters eagerly here (panics become decode errors):
			// an invalid (p, slot) must fail at decode time, not mid-run.
			dist.NewRetransmission(pp.P, pp.Slot)
			return channel.ARQFactory(pp.P, pp.Slot), nil
		},
	},
	"fifo":         delayLinks(channel.FIFOFactory),
	"random-delay": delayLinks(channel.RandomDelayFactory),
}}

// ARQLinks is the spec of channel.ARQFactory(p, slot).
func ARQLinks(p, slot float64) *LinksSpec {
	return &LinksSpec{Name: "arq", params: &ARQLinkParams{P: p, Slot: slot}}
}

// FIFOLinks is the spec of channel.FIFOFactory(delay).
func FIFOLinks(delay *DistSpec) *LinksSpec {
	return &LinksSpec{Name: "fifo", params: &DelayLinkParams{Delay: delay}}
}

// RandomDelayLinks is the spec of channel.RandomDelayFactory(delay).
func RandomDelayLinks(delay *DistSpec) *LinksSpec {
	return &LinksSpec{Name: "random-delay", params: &DelayLinkParams{Delay: delay}}
}

// UnmarshalJSON implements json.Unmarshaler (strict).
func (l *LinksSpec) UnmarshalJSON(data []byte) error {
	name, params, err := linksFamily.unmarshal(data)
	if err != nil {
		return err
	}
	l.Name, l.params = name, params
	return nil
}

// MarshalJSON implements json.Marshaler (canonical).
func (l LinksSpec) MarshalJSON() ([]byte, error) {
	return linksFamily.marshal(l.Name, l.params)
}

// Build constructs the link factory.
func (l *LinksSpec) Build() (channel.Factory, error) {
	return linksFamily.build(l.Name, l.params)
}
