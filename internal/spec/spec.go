// Package spec is the versioned JSON codec for complete ABE scenarios: the
// runner.Env of Definition 1 (topology, delay distribution, clock model,
// processing time, fault plan, run bounds), the protocol and its options
// resolved through the runner registry, and an optional sweep block — as
// *data*, so the same scenario file drives the CLIs, the tests and the
// experiment-serving subsystem (internal/service, cmd/abe-serve).
//
// The codec is strict and deterministic by construction:
//
//   - Decoding rejects unknown fields at every level (a typoed knob must
//     fail loudly, not silently run the default), unknown component or
//     protocol names, and unsupported versions.
//   - Encoding is canonical: struct fields marshal in declaration order and
//     component parameters are typed structs, never free-form maps, so
//     encode→decode→encode is the identity on canonical bytes.
//   - Hash() is the sha256 of the canonical encoding with the two
//     non-scenario fields zeroed — Env.Seed (a run is scenario + seed) and
//     Sweep.Workers (parallelism never changes results; the harness
//     aggregates in canonical order) — so the hash identifies a scenario
//     across whitespace, field order, seeds and machine sizes.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"abenet/internal/probe"
	"abenet/internal/runner"
	"abenet/internal/trace"
)

// Version is the (only) supported spec schema version.
const Version = 1

// Spec is a complete scenario: one environment, one protocol, optionally a
// sweep over network sizes. Decode/DecodeBytes/DecodeFile construct it from
// JSON; programmatic construction uses the typed component constructors
// (Exponential, RingTopology, ...) plus ForProtocol.
type Spec struct {
	// Version is the schema version; must equal Version.
	Version int `json:"version"`
	// Env describes the ABE environment (Definition 1) plus run bounds.
	Env EnvSpec `json:"env"`
	// Protocol selects a registered protocol and its options.
	Protocol ProtocolSpec `json:"protocol"`
	// Sweep, when set, sweeps the protocol over ring sizes Xs instead of
	// running the single scenario Env describes; Env.Topology and Env.N
	// must then be unset.
	Sweep *SweepSpec `json:"sweep,omitempty"`

	// validated latches a successful Validate so hot paths (the serving
	// layer submits, every sweep) skip re-validating decoded specs. A
	// decoded spec is an immutable scenario (seed overrides excepted —
	// the seed does not affect validity); hand-built specs validate on
	// first use.
	validated bool
}

// EnvSpec is the JSON shape of runner.Env. Omitted fields select the same
// canonical defaults as runner.Env's zero values (exponential(1) delays,
// perfect clocks, instantaneous processing, no faults).
type EnvSpec struct {
	// Topology names the communication graph; nil means a unidirectional
	// ring of N nodes. Exactly one of Topology and N describes the size.
	Topology *TopologySpec `json:"topology,omitempty"`
	// N is the ring size when Topology is nil.
	N int `json:"n,omitempty"`
	// Delay names the per-link delay distribution; nil means exponential(1).
	Delay *DistSpec `json:"delay,omitempty"`
	// Links names a full link factory (ARQ, FIFO); overrides Delay.
	Links *LinksSpec `json:"links,omitempty"`
	// Delta declares the bound δ on the expected delay (see runner.Env.Delta).
	Delta float64 `json:"delta,omitempty"`
	// Clocks names the clock model; nil means perfect clocks.
	Clocks *ClockSpec `json:"clocks,omitempty"`
	// Processing names the processing-time distribution γ; nil means
	// instantaneous.
	Processing *DistSpec `json:"processing,omitempty"`
	// Seed determines the run; it is excluded from Hash().
	Seed uint64 `json:"seed,omitempty"`
	// Scheduler selects the kernel's event-queue implementation ("heap",
	// "calendar"); empty means the default heap. Excluded from Hash():
	// every scheduler implements the same (time, seq) total order, so runs
	// are byte-identical across choices — the differential suite at the
	// repo root pins this — and a performance knob must not split the
	// scenario identity (existing spec hashes are unchanged by this field).
	Scheduler string `json:"scheduler,omitempty"`
	// Horizon bounds virtual time (0 = unbounded).
	Horizon float64 `json:"horizon,omitempty"`
	// MaxEvents bounds simulation events (0 = protocol default).
	MaxEvents uint64 `json:"max_events,omitempty"`
	// MaxRounds bounds round-based protocols (0 = protocol default).
	MaxRounds int `json:"max_rounds,omitempty"`
	// Faults is the declarative fault plan; nil injects nothing.
	Faults *FaultsSpec `json:"faults,omitempty"`
	// Byzantine is the declarative adversary plan; nil assigns no roles.
	// Only protocols whose registry metadata reports supports_byzantine
	// accept it (currently ben-or).
	Byzantine *ByzantineSpec `json:"byzantine,omitempty"`
	// LocalBroadcast selects the atomic local-broadcast medium instead of
	// per-edge point-to-point links; "delay" then shapes the per-
	// transmission radio delay and "links" must be unset. Only protocols
	// reporting supports_broadcast accept it (currently ben-or).
	LocalBroadcast bool `json:"local_broadcast,omitempty"`
	// Observe samples a named time series during the run (see
	// internal/probe); nil collects nothing. Only protocols reporting
	// supports_observe accept it, and it does not combine with a sweep
	// block (sweeps stream per-point completions instead). Excluded from
	// Hash(): observation never changes a run's results — the probe reads
	// off the kernel's post-event hook, and golden pins hold an observed
	// run byte-identical to an unobserved one.
	Observe *ObserveSpec `json:"observe,omitempty"`
	// Trace records a causal event trace of the run (see internal/trace):
	// stable event IDs, Lamport clocks and exact happens-before parent
	// edges, exportable as Chrome trace-event JSON, JSONL or text. Nil
	// records nothing. Only protocols reporting supports_trace accept it,
	// and like Observe it does not combine with a sweep block. Excluded
	// from Hash() for the same reason as Observe: tracing never changes a
	// run's results — golden pins hold a traced run byte-identical to an
	// untraced one — so the cache layer differentiates on (hash, seed,
	// trace fingerprint) instead (see service.traceKey).
	Trace *TraceSpec `json:"trace,omitempty"`
}

// ObserveSpec is the JSON shape of probe.Config: the sampling cadence and
// the series cap. At least one cadence axis must be set.
type ObserveSpec struct {
	// EveryEvents samples after every K-th executed event.
	EveryEvents uint64 `json:"every_events,omitempty"`
	// Interval samples at fixed virtual-time intervals.
	Interval float64 `json:"interval,omitempty"`
	// MaxSamples caps the stored series; 0 means probe.DefaultMaxSamples.
	MaxSamples int `json:"max_samples,omitempty"`
}

// Build constructs the probe configuration the spec describes.
func (o *ObserveSpec) Build() (*probe.Config, error) {
	cfg := &probe.Config{
		EveryEvents: o.EveryEvents,
		Interval:    o.Interval,
		MaxSamples:  o.MaxSamples,
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("spec: observe: %w", err)
	}
	return cfg, nil
}

// TraceSpec is the JSON shape of trace.Config: the event cap of the
// causal trace recorder.
type TraceSpec struct {
	// MaxEvents caps the stored events; 0 means trace.DefaultMaxEvents.
	// Events past the cap are counted, not stored; the terminal decision
	// event is cap-exempt.
	MaxEvents int `json:"max_events,omitempty"`
}

// Build constructs the trace configuration the spec describes.
func (t *TraceSpec) Build() (*trace.Config, error) {
	cfg := &trace.Config{MaxEvents: t.MaxEvents}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("spec: trace: %w", err)
	}
	return cfg, nil
}

// SweepSpec sweeps the spec's protocol over ring sizes through
// harness.Sweep.RunProtocol: x positions are network sizes, repetitions are
// seeded deterministically from (spec hash, Env.Seed), and results are
// bit-identical for any worker count.
type SweepSpec struct {
	// Xs are the network sizes to sweep (each an integer ≥ 2).
	Xs []float64 `json:"xs"`
	// Repetitions is the number of seeded runs per size; 0 means 100.
	Repetitions int `json:"repetitions,omitempty"`
	// Workers bounds sweep parallelism; 0 means GOMAXPROCS. Excluded from
	// Hash(): parallelism never changes results.
	Workers int `json:"workers,omitempty"`
	// Metrics, when non-empty, restricts reported metrics to these names.
	Metrics []string `json:"metrics,omitempty"`
}

// ProtocolSpec selects a registered protocol plus decoded options. The
// options JSON keys are the Go field names of the protocol's option struct
// (matched case-insensitively; see runner.Infos for the per-protocol list).
type ProtocolSpec struct {
	// Name is the runner registry key.
	Name string
	// proto is the decoded instance (a pointer to the concrete option
	// struct), nil until decoded or constructed via ForProtocol.
	proto runner.Protocol
}

// ForProtocol wraps a runnable option struct for embedding in a Spec. The
// protocol must be registered (spec files can only name registry entries).
func ForProtocol(p runner.Protocol) (ProtocolSpec, error) {
	if p == nil {
		return ProtocolSpec{}, errors.New("spec: nil protocol")
	}
	name := p.Name()
	if _, ok := runner.ProtocolByName(name); !ok {
		return ProtocolSpec{}, fmt.Errorf("spec: protocol %q is not registered (have %v)", name, runner.Protocols())
	}
	return ProtocolSpec{Name: name, proto: p}, nil
}

// Protocol returns the decoded runnable protocol instance.
func (p ProtocolSpec) Protocol() runner.Protocol { return p.proto }

// protocolJSON is the wire shape of ProtocolSpec.
type protocolJSON struct {
	Name    string          `json:"name"`
	Options json.RawMessage `json:"options,omitempty"`
}

// UnmarshalJSON implements json.Unmarshaler with strict option decoding:
// the protocol must be registered and every option key must name a field of
// its option struct.
func (p *ProtocolSpec) UnmarshalJSON(data []byte) error {
	var pj protocolJSON
	if err := strictUnmarshal(data, &pj); err != nil {
		return fmt.Errorf("spec: protocol: %w", err)
	}
	if pj.Name == "" {
		return errors.New(`spec: protocol needs a "name"`)
	}
	inst, ok := runner.NewInstance(pj.Name)
	if !ok {
		return fmt.Errorf("spec: unknown protocol %q (have %v)", pj.Name, runner.Protocols())
	}
	if len(pj.Options) > 0 {
		if err := strictUnmarshal(pj.Options, inst); err != nil {
			return fmt.Errorf("spec: protocol %q options: %w", pj.Name, err)
		}
	}
	p.Name = pj.Name
	p.proto = inst
	return nil
}

// MarshalJSON implements json.Marshaler. The options object is always
// present and complete (every field of the option struct), so the canonical
// encoding is independent of which fields the source JSON spelled out.
func (p ProtocolSpec) MarshalJSON() ([]byte, error) {
	if p.proto == nil {
		return nil, errors.New("spec: marshalling an unresolved protocol (use ForProtocol or decode a spec)")
	}
	opts, err := json.Marshal(p.proto)
	if err != nil {
		return nil, fmt.Errorf("spec: protocol %q options: %w", p.Name, err)
	}
	return json.Marshal(protocolJSON{Name: p.Name, Options: opts})
}

// strictUnmarshal decodes JSON rejecting unknown fields and trailing data.
// Nested types with their own UnmarshalJSON re-establish strictness
// themselves, so the whole spec tree is strict.
func strictUnmarshal(data []byte, into any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// Decode reads and validates one spec from r.
func Decode(r io.Reader) (*Spec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return DecodeBytes(data)
}

// DecodeBytes parses one spec from JSON, strictly, and validates it (both
// the structure and the semantic checks of Validate, runner.Env.Validate
// included): a decoded spec is always runnable.
func DecodeBytes(data []byte) (*Spec, error) {
	var s Spec
	if err := strictUnmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if s.Version != Version {
		return nil, fmt.Errorf("spec: unsupported version %d (this build speaks version %d)", s.Version, Version)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// DecodeFile parses and validates the spec file at path.
func DecodeFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	s, err := DecodeBytes(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Canonical returns the deterministic compact encoding of the spec: typed
// structs in declaration order, complete option/parameter objects, no
// dependence on the source JSON's field order or whitespace.
func (s *Spec) Canonical() ([]byte, error) {
	c := *s
	c.Version = Version
	return json.Marshal(&c)
}

// Clone returns a deep copy of the spec via the canonical encode→decode
// round trip: every nested pointer and slice (topology and dist params,
// the sweep block, the fault plan and its scripted events, the protocol
// option struct) is rebuilt from the canonical bytes, so mutating the
// receiver afterwards can never reach the copy. The serving layer clones
// before enqueueing for exactly that reason.
func (s *Spec) Clone() (*Spec, error) {
	b, err := s.Canonical()
	if err != nil {
		return nil, err
	}
	c, err := DecodeBytes(b)
	if err != nil {
		return nil, fmt.Errorf("spec: clone round-trip: %w", err)
	}
	return c, nil
}

// Hash returns the scenario identity: the hex sha256 of the canonical
// encoding with Env.Seed and Sweep.Workers zeroed. Two specs with equal
// hashes describe the same scenario; (hash, seed) identifies a run's
// results exactly (the serving layer's cache key). The view-only
// Sweep.Metrics filter stays in the hash — it changes the reported
// payload, so cached results must not be shared across filters — but it
// does NOT reach the simulation seeds (see ExecutionHash).
func (s *Spec) Hash() (string, error) {
	c := *s
	c.Env.Seed = 0
	// The scheduler is a performance knob with pinned byte-identical
	// results across implementations, so it never splits the scenario
	// identity (and its omitempty field keeps pre-existing hashes stable).
	c.Env.Scheduler = ""
	// The observe block is measurement configuration, not scenario: an
	// observed run's Report is byte-identical to an unobserved one (minus
	// the series), so observation must not split the scenario identity.
	// Serving layers that cache per-run payloads including the series key
	// on (hash, seed, observe fingerprint) — see service.observeKey.
	c.Env.Observe = nil
	// The trace block is excluded for the same reason: a traced run's
	// Report (minus the trace) is byte-identical to an untraced one, and
	// the cache key carries the trace fingerprint (service.traceKey).
	c.Env.Trace = nil
	if c.Sweep != nil {
		sw := *c.Sweep
		sw.Workers = 0
		c.Sweep = &sw
	}
	b, err := c.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// ExecutionHash is Hash with the view-only Sweep.Metrics filter zeroed as
// well: the identity of the *simulated* scenario. RunSweep derives the
// per-repetition seeds from it, so toggling or reordering display columns
// can never change a single simulated number.
func (s *Spec) ExecutionHash() (string, error) {
	if s.Sweep == nil || len(s.Sweep.Metrics) == 0 {
		return s.Hash()
	}
	c := *s
	sw := *c.Sweep
	sw.Metrics = nil
	c.Sweep = &sw
	return c.Hash()
}
