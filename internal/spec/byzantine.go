// The adversary-plan codec: byzantine.Plan as declarative JSON, with
// behaviours named by the same strings byzantine.Behavior prints.
package spec

import (
	"fmt"
	"sort"

	"abenet/internal/byzantine"
)

// ByzantineSpec is the JSON shape of byzantine.Plan.
type ByzantineSpec struct {
	// Roles lists the adversarial nodes; at most one role per node.
	Roles []ByzantineRoleSpec `json:"roles"`
}

// ByzantineRoleSpec is the JSON shape of one byzantine.Role. Behavior is
// one of equivocate, mute, corrupt, stall.
type ByzantineRoleSpec struct {
	// Node is the role holder.
	Node int `json:"node"`
	// Behavior names the attack.
	Behavior string `json:"behavior"`
	// Prob is the per-message activation probability; 0 means 1.
	Prob float64 `json:"prob,omitempty"`
	// StallDelay is the hold-back distribution for stall roles; nil means
	// exponential(1).
	StallDelay *DistSpec `json:"stall_delay,omitempty"`
}

// behaviorKinds maps the JSON behaviour names onto byzantine.Behavior —
// the same strings byzantine.Behavior.String() prints, so specs and
// telemetry agree.
var behaviorKinds = map[string]byzantine.Behavior{
	byzantine.Equivocate.String(): byzantine.Equivocate,
	byzantine.Mute.String():       byzantine.Mute,
	byzantine.Corrupt.String():    byzantine.Corrupt,
	byzantine.Stall.String():      byzantine.Stall,
}

// behaviorNames returns the accepted behaviour names, sorted.
func behaviorNames() []string {
	names := make([]string, 0, len(behaviorKinds))
	for name := range behaviorKinds {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Build converts the adversary spec into a byzantine.Plan (semantic
// validation — node ranges, probability bounds — happens in
// runner.Env.Validate, which calls byzantine.Plan.Validate against the
// concrete network size).
func (b *ByzantineSpec) Build() (*byzantine.Plan, error) {
	if b == nil {
		return nil, nil
	}
	plan := &byzantine.Plan{}
	for i, r := range b.Roles {
		behavior, ok := behaviorKinds[r.Behavior]
		if !ok {
			return nil, fmt.Errorf("spec: byzantine role %d: unknown behavior %q (have %v)", i, r.Behavior, behaviorNames())
		}
		role := byzantine.Role{Node: r.Node, Behavior: behavior, Prob: r.Prob}
		if r.StallDelay != nil {
			d, err := r.StallDelay.Build()
			if err != nil {
				return nil, fmt.Errorf("spec: byzantine role %d: %w", i, err)
			}
			role.StallDelay = d
		}
		plan.Roles = append(plan.Roles, role)
	}
	return plan, nil
}
