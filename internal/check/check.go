// Package check exhaustively model-checks the paper's election algorithm
// on small rings.
//
// Monte-Carlo runs sample executions; they cannot prove safety. This
// checker enumerates every reachable global state of the protocol on an
// anonymous unidirectional ring of size n — under a fully nondeterministic
// scheduler (any idle node may activate at any moment, any in-flight
// message may be delivered next, in any order), which is exactly the
// support of the ABE probability space — and verifies:
//
//	V1  at most one node is ever a leader;
//	V2  every in-flight hop counter is in {1..n} and every d(A) ≤ n;
//	V3  the nodes are never all passive (no knockout deadlock);
//	V4  when a leader exists, every other node is passive;
//	V5  no reachable state other than budget-cut artifacts is stuck
//	    without a leader.
//
// The state space is made finite by bounding the number of activations per
// node; within that bound the exploration is exhaustive. The transition
// relation here is written directly from the paper's Section 3 text,
// independently of internal/core's simulator implementation, so agreement
// between the two is evidence against transcription bugs in either.
package check

import (
	"fmt"
	"sort"
)

// Node states, deliberately re-declared rather than imported from core so
// the checker stays an independent encoding of the paper.
const (
	idle byte = iota + 1
	active
	passive
	leader
)

// Options configures an exhaustive exploration.
type Options struct {
	// N is the ring size (2..6 is practical).
	N int
	// MaxActivationsPerNode bounds how often each node may wake up;
	// 0 means 2. Larger bounds explore deeper reactivation behaviour at
	// exponential cost.
	MaxActivationsPerNode int
	// MaxStates aborts the exploration if exceeded; 0 means 5e6.
	MaxStates int
}

// Violation is one invariant breach, with a human-readable witness trace.
type Violation struct {
	// Kind identifies the invariant (V1..V5).
	Kind string
	// Detail describes the breach.
	Detail string
	// Trace is the action sequence from the initial state.
	Trace []string
}

// Report summarises an exploration.
type Report struct {
	// StatesExplored counts distinct reachable states visited.
	StatesExplored int
	// Truncated reports whether MaxStates cut the exploration short.
	Truncated bool
	// LeaderStates counts states in which a leader exists.
	LeaderStates int
	// CutStates counts stuck states that exist only because of the
	// activation budget (all non-passive nodes idle with spent budgets,
	// no messages) — artifacts, not protocol deadlocks.
	CutStates int
	// Violations lists every invariant breach found (empty = verified
	// within the bound).
	Violations []Violation
}

// OK reports whether the exploration finished without violations.
func (r Report) OK() bool { return len(r.Violations) == 0 && !r.Truncated }

// state is one global protocol configuration.
type state struct {
	nodes []nodeState
}

type nodeState struct {
	st    byte
	d     int
	used  int   // activations consumed
	inbox []int // multiset of in-flight hop counters addressed to this node, sorted
}

// key canonically encodes a state for the visited set.
func (s *state) key() string {
	buf := make([]byte, 0, len(s.nodes)*6)
	for i := range s.nodes {
		ns := &s.nodes[i]
		buf = append(buf, ns.st, byte(ns.d), byte(ns.used), byte(len(ns.inbox)))
		for _, h := range ns.inbox {
			buf = append(buf, byte(h))
		}
		buf = append(buf, 0xff)
	}
	return string(buf)
}

// clone deep-copies a state.
func (s *state) clone() *state {
	out := &state{nodes: make([]nodeState, len(s.nodes))}
	for i := range s.nodes {
		out.nodes[i] = s.nodes[i]
		out.nodes[i].inbox = append([]int(nil), s.nodes[i].inbox...)
	}
	return out
}

// addMsg inserts hop into node i's inbox keeping it sorted.
func (s *state) addMsg(i, hop int) {
	inbox := s.nodes[i].inbox
	pos := sort.SearchInts(inbox, hop)
	inbox = append(inbox, 0)
	copy(inbox[pos+1:], inbox[pos:])
	inbox[pos] = hop
	s.nodes[i].inbox = inbox
}

// removeMsg removes one instance of hop from node i's inbox.
func (s *state) removeMsg(i, hop int) {
	inbox := s.nodes[i].inbox
	pos := sort.SearchInts(inbox, hop)
	s.nodes[i].inbox = append(inbox[:pos], inbox[pos+1:]...)
}

// CheckElection exhaustively explores the election protocol on a ring of
// size opts.N and reports every invariant violation reachable within the
// activation budget.
func CheckElection(opts Options) (Report, error) {
	if opts.N < 2 {
		return Report{}, fmt.Errorf("check: ring size %d must be at least 2", opts.N)
	}
	budget := opts.MaxActivationsPerNode
	if budget == 0 {
		budget = 2
	}
	maxStates := opts.MaxStates
	if maxStates == 0 {
		maxStates = 5_000_000
	}
	n := opts.N

	initial := &state{nodes: make([]nodeState, n)}
	for i := range initial.nodes {
		initial.nodes[i] = nodeState{st: idle, d: 1}
	}

	type entry struct {
		s      *state
		parent string // key of predecessor
		action string
	}
	visited := map[string]entry{}
	queue := []*state{initial}
	visited[initial.key()] = entry{s: initial}

	var report Report

	traceOf := func(k string) []string {
		var rev []string
		for k != "" {
			e := visited[k]
			if e.action == "" {
				break
			}
			rev = append(rev, e.action)
			k = e.parent
		}
		trace := make([]string, 0, len(rev))
		for i := len(rev) - 1; i >= 0; i-- {
			trace = append(trace, rev[i])
		}
		return trace
	}

	violate := func(k, kind, detail string) {
		report.Violations = append(report.Violations, Violation{
			Kind:   kind,
			Detail: detail,
			Trace:  traceOf(k),
		})
	}

	// checkInvariants validates a state; returns false on violation so the
	// exploration can skip expanding broken states.
	checkInvariants := func(s *state, k string) bool {
		ok := true
		leaders, passives := 0, 0
		for i := range s.nodes {
			ns := &s.nodes[i]
			if ns.st == leader {
				leaders++
			}
			if ns.st == passive {
				passives++
			}
			if ns.d < 1 || ns.d > n {
				violate(k, "V2", fmt.Sprintf("node %d has d=%d", i, ns.d))
				ok = false
			}
			for _, h := range ns.inbox {
				if h < 1 || h > n {
					violate(k, "V2", fmt.Sprintf("message to node %d carries hop %d", i, h))
					ok = false
				}
			}
		}
		if leaders > 1 {
			violate(k, "V1", fmt.Sprintf("%d leaders", leaders))
			ok = false
		}
		if passives == n {
			violate(k, "V3", "all nodes passive")
			ok = false
		}
		if leaders == 1 && passives != n-1 {
			violate(k, "V4", fmt.Sprintf("leader coexists with %d non-passive nodes", n-1-passives))
			ok = false
		}
		return ok
	}

	push := func(next *state, parentKey, action string) {
		k := next.key()
		if _, seen := visited[k]; seen {
			return
		}
		visited[k] = entry{s: next, parent: parentKey, action: action}
		queue = append(queue, next)
	}

	for len(queue) > 0 {
		if report.StatesExplored >= maxStates {
			report.Truncated = true
			break
		}
		s := queue[0]
		queue = queue[1:]
		k := s.key()
		report.StatesExplored++

		if !checkInvariants(s, k) {
			continue
		}

		hasLeader := false
		for i := range s.nodes {
			if s.nodes[i].st == leader {
				hasLeader = true
			}
		}
		if hasLeader {
			report.LeaderStates++
		}

		transitions := 0

		// Activation transitions: the support of the probabilistic
		// wake-up rule is "any idle node may activate at any tick".
		for i := range s.nodes {
			ns := &s.nodes[i]
			if ns.st != idle || ns.used >= budget {
				continue
			}
			next := s.clone()
			next.nodes[i].st = active
			next.nodes[i].used++
			next.addMsg((i+1)%n, 1)
			push(next, k, fmt.Sprintf("activate(%d)", i))
			transitions++
		}

		// Delivery transitions: any in-flight message, in any order.
		for i := range s.nodes {
			seen := map[int]bool{}
			for _, h := range s.nodes[i].inbox {
				if seen[h] {
					continue // same (target, hop) pairs are interchangeable
				}
				seen[h] = true
				next := s.clone()
				next.removeMsg(i, h)
				deliver(next, i, h, n)
				push(next, k, fmt.Sprintf("deliver(hop=%d -> node %d)", h, i))
				transitions++
			}
		}

		if transitions == 0 && !hasLeader {
			// Stuck without a leader: either a budget-cut artifact (all
			// remaining non-passive nodes are idle with spent budgets and
			// nothing is in flight) or a genuine deadlock.
			artifact := true
			for i := range s.nodes {
				ns := &s.nodes[i]
				if len(ns.inbox) > 0 || ns.st == active {
					artifact = false
					break
				}
			}
			if artifact {
				report.CutStates++
			} else {
				violate(k, "V5", "stuck state with no leader")
			}
		}
	}
	return report, nil
}

// deliver applies the paper's receive rules to node i of st consuming a
// message with the given hop. Written directly from the Section 3 text.
func deliver(st *state, i, hop, n int) {
	ns := &st.nodes[i]
	if hop > ns.d {
		ns.d = hop
	}
	switch ns.st {
	case idle:
		ns.st = passive
		st.addMsg((i+1)%n, ns.d+1)
	case passive:
		st.addMsg((i+1)%n, ns.d+1)
	case active:
		if hop == n {
			ns.st = leader
		} else {
			ns.st = idle
		}
		// Message purged in both cases.
	case leader:
		// Residual traffic is absorbed by the leader.
	}
}
