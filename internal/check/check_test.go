package check

import (
	"strings"
	"testing"
)

func TestElectionSafeOnSmallRings(t *testing.T) {
	// Exhaustive verification of V1..V5 for n = 2, 3, 4 with two
	// activations per node. This is the strongest correctness evidence in
	// the repository: every schedule and every message interleaving within
	// the bound is covered.
	for _, n := range []int{2, 3, 4} {
		report, err := CheckElection(Options{N: n})
		if err != nil {
			t.Fatal(err)
		}
		if report.Truncated {
			t.Fatalf("n=%d: exploration truncated at %d states", n, report.StatesExplored)
		}
		for _, v := range report.Violations {
			t.Errorf("n=%d: %s (%s)\n  trace: %s", n, v.Kind, v.Detail, strings.Join(v.Trace, " ; "))
		}
		if report.StatesExplored == 0 {
			t.Fatalf("n=%d: no states explored", n)
		}
		if report.LeaderStates == 0 {
			t.Fatalf("n=%d: no leader state reachable — protocol cannot elect", n)
		}
		t.Logf("n=%d: %d states, %d with a leader, %d budget cuts",
			n, report.StatesExplored, report.LeaderStates, report.CutStates)
	}
}

func TestElectionSafeWithDeeperBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("deep exploration is slow")
	}
	report, err := CheckElection(Options{N: 3, MaxActivationsPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("n=3 budget=4: %+v", report.Violations)
	}
}

func TestRingOfFive(t *testing.T) {
	if testing.Short() {
		t.Skip("n=5 exploration is slow")
	}
	report, err := CheckElection(Options{N: 5, MaxActivationsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		for _, v := range report.Violations {
			t.Errorf("%s (%s)\n  trace: %s", v.Kind, v.Detail, strings.Join(v.Trace, " ; "))
		}
	}
}

func TestLeaderReachableWithSingleActivation(t *testing.T) {
	// Even with a budget of one activation per node, the schedule where
	// one node wakes alone must elect it.
	report, err := CheckElection(Options{N: 3, MaxActivationsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	if report.LeaderStates == 0 {
		t.Fatal("no leader reachable with budget 1")
	}
	if !report.OK() {
		t.Fatalf("violations: %+v", report.Violations)
	}
}

func TestTruncationReported(t *testing.T) {
	report, err := CheckElection(Options{N: 4, MaxStates: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Truncated {
		t.Fatal("tiny MaxStates did not truncate")
	}
	if report.OK() {
		t.Fatal("truncated exploration must not claim OK")
	}
}

func TestValidation(t *testing.T) {
	if _, err := CheckElection(Options{N: 1}); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestBrokenVariantIsCaught(t *testing.T) {
	// Sanity-check the checker itself: deliberately corrupt the delivery
	// rule (forward without updating d) in a local copy of the semantics
	// and verify the invariants flag it. We simulate the corruption by
	// injecting an impossible initial message.
	s := &state{nodes: make([]nodeState, 3)}
	for i := range s.nodes {
		s.nodes[i] = nodeState{st: idle, d: 1}
	}
	// A forged hop-5 message on a ring of 3 must trip V2 on delivery.
	s.addMsg(0, 5)
	s.removeMsg(0, 5) // the explorer consumes before delivering
	deliver(s, 0, 5, 3)
	if s.nodes[0].d != 5 {
		t.Fatal("delivery did not record the forged hop")
	}
	// The invariant scan inside CheckElection would flag d > n; here we
	// assert the low-level state helpers behaved, which the exploration
	// relies on.
	if len(s.nodes[0].inbox) != 0 {
		t.Fatal("message not consumed")
	}
	if len(s.nodes[1].inbox) != 1 || s.nodes[1].inbox[0] != 6 {
		t.Fatal("idle node did not forward d+1")
	}
	if s.nodes[0].st != passive {
		t.Fatal("idle node did not turn passive")
	}
}

func TestStateKeyDistinguishesStates(t *testing.T) {
	a := &state{nodes: []nodeState{{st: idle, d: 1}, {st: idle, d: 1}}}
	b := a.clone()
	if a.key() != b.key() {
		t.Fatal("identical states have different keys")
	}
	b.nodes[1].d = 2
	if a.key() == b.key() {
		t.Fatal("different d values share a key")
	}
	c := a.clone()
	c.addMsg(0, 1)
	if a.key() == c.key() {
		t.Fatal("message multiset not part of the key")
	}
}

func TestMsgMultisetOperations(t *testing.T) {
	s := &state{nodes: make([]nodeState, 2)}
	s.nodes[0] = nodeState{st: idle, d: 1}
	s.nodes[1] = nodeState{st: idle, d: 1}
	s.addMsg(0, 3)
	s.addMsg(0, 1)
	s.addMsg(0, 2)
	s.addMsg(0, 1)
	want := []int{1, 1, 2, 3}
	for i, h := range s.nodes[0].inbox {
		if h != want[i] {
			t.Fatalf("inbox = %v", s.nodes[0].inbox)
		}
	}
	s.removeMsg(0, 1)
	if len(s.nodes[0].inbox) != 3 || s.nodes[0].inbox[0] != 1 {
		t.Fatalf("after remove: %v", s.nodes[0].inbox)
	}
}

func BenchmarkCheckRing3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := CheckElection(Options{N: 3}); err != nil {
			b.Fatal(err)
		}
	}
}
