// Package byzantine describes adversarial node behaviour for simulated
// network runs.
//
// internal/faults models an honest-but-unlucky world: messages are lost,
// nodes crash, links partition. This package models *malice*: a Plan
// assigns per-node Byzantine roles — equivocation (telling different
// neighbours different things), silent omission, payload corruption and
// delay-stalling — and the network layer intercepts every send of a role
// holder at the send path (the adversary sits where channel.ImpairedFactory
// sits for link faults, but one layer up, so it can coordinate what a node
// tells each of its neighbours).
//
// Everything is sampled from the run's splittable RNG: a run remains a pure
// function of (environment, plan, seed), and a nil *Plan disables the
// subsystem entirely — the run is byte-identical to an adversary-free build.
//
// The roles are chosen to probe the two papers behind ROADMAP item 3:
// Danezis et al. ("Byzantine Consensus in the Random Asynchronous Model")
// on how probabilistic delivery changes tolerance bounds, and Khan & Vaidya
// ("Asynchronous Byzantine Consensus under the Local Broadcast Model"),
// whose local-broadcast medium makes equivocation physically impossible —
// under a local-broadcast network an Equivocate role degrades to consistent
// corruption, which is exactly the mechanism lifting the f < n/3 barrier.
package byzantine

import (
	"fmt"
	"math"

	"abenet/internal/dist"
	"abenet/internal/rng"
)

// Behavior selects what a Byzantine node does to its outgoing messages.
type Behavior int

// The adversarial behaviours.
const (
	// Equivocate substitutes an independently corrupted payload per
	// receiver: two neighbours of the same broadcast see different values.
	// On a local-broadcast network the medium makes per-receiver divergence
	// impossible, so the substitution happens once per transmission and is
	// delivered identically to all neighbours (counted as a corruption, not
	// an equivocation — the medium defeated the attack).
	Equivocate Behavior = iota + 1
	// Mute silently drops the node's outgoing messages: the protocol
	// instance believes it sent, nothing ever reaches the wire.
	Mute
	// Corrupt substitutes a corrupted payload, the same value to every
	// receiver of one logical send.
	Corrupt
	// Stall holds every outgoing message back by a random extra delay
	// before it reaches the link — an adversary exploiting asynchrony
	// without breaking it.
	Stall
)

// String implements fmt.Stringer; the names are the spec-codec vocabulary.
func (b Behavior) String() string {
	switch b {
	case Equivocate:
		return "equivocate"
	case Mute:
		return "mute"
	case Corrupt:
		return "corrupt"
	case Stall:
		return "stall"
	default:
		return fmt.Sprintf("behavior(%d)", int(b))
	}
}

// Role assigns one behaviour to one node. Build roles directly or through
// the Equivocators helper; the zero value is invalid (no behaviour).
type Role struct {
	// Node is the role holder.
	Node int
	// Behavior selects the attack.
	Behavior Behavior
	// Prob is the per-message activation probability; messages that miss
	// the draw pass through honestly. 0 selects the balanced default 1
	// (always active).
	Prob float64
	// StallDelay is the hold-back distribution for Stall roles; nil means
	// Exponential(1). Setting it on any other behaviour is rejected by
	// Validate.
	StallDelay dist.Dist
}

// Plan assigns Byzantine roles for one run. The zero value assigns no roles
// (useful to keep telemetry keys present across a sweep whose first point
// has no adversaries); a nil *Plan disables the subsystem entirely and
// keeps the run byte-identical to an adversary-free build.
type Plan struct {
	// Roles lists the adversarial nodes. At most one role per node.
	Roles []Role
}

// Equivocators returns a plan making nodes 0..k-1 equivocate on every
// message — the canonical adversary for the local-broadcast separation.
func Equivocators(k int) *Plan {
	roles := make([]Role, k)
	for i := range roles {
		roles[i] = Role{Node: i, Behavior: Equivocate}
	}
	return &Plan{Roles: roles}
}

// Count returns the number of adversarial nodes.
func (p *Plan) Count() int {
	if p == nil {
		return 0
	}
	return len(p.Roles)
}

// IsAdversary reports whether the plan assigns node i a role.
func (p *Plan) IsAdversary(i int) bool {
	if p == nil {
		return false
	}
	for _, r := range p.Roles {
		if r.Node == i {
			return true
		}
	}
	return false
}

// Validate checks the plan against a network of n nodes. It returns an
// error describing the first violated constraint, or nil.
func (p *Plan) Validate(n int) error {
	if p == nil {
		return nil
	}
	if len(p.Roles) >= n && n > 0 {
		return fmt.Errorf("byzantine: %d roles on %d nodes leaves no honest node", len(p.Roles), n)
	}
	seen := make(map[int]bool, len(p.Roles))
	for i, r := range p.Roles {
		if r.Node < 0 || r.Node >= n {
			return fmt.Errorf("byzantine: role %d: node %d outside [0, %d)", i, r.Node, n)
		}
		if seen[r.Node] {
			return fmt.Errorf("byzantine: node %d holds two roles", r.Node)
		}
		seen[r.Node] = true
		switch r.Behavior {
		case Equivocate, Mute, Corrupt, Stall:
		default:
			return fmt.Errorf("byzantine: role %d (node %d): unknown behavior %d", i, r.Node, int(r.Behavior))
		}
		if math.IsNaN(r.Prob) || r.Prob < 0 || r.Prob > 1 {
			return fmt.Errorf("byzantine: role %d (node %d): probability %g outside [0, 1]", i, r.Node, r.Prob)
		}
		if r.StallDelay != nil {
			if r.Behavior != Stall {
				return fmt.Errorf("byzantine: role %d (node %d): StallDelay is only meaningful for stall roles, not %s", i, r.Node, r.Behavior)
			}
			if !(r.StallDelay.Mean() > 0) {
				return fmt.Errorf("byzantine: role %d (node %d): StallDelay mean %g must be positive", i, r.Node, r.StallDelay.Mean())
			}
		}
	}
	return nil
}

// Corruptible is implemented by payload types the adversary knows how to
// forge. Corrupt returns a plausible-but-wrong variant of the payload using
// only the provided stream for randomness; it must not mutate the receiver.
// Payloads that do not implement Corruptible pass through Equivocate and
// Corrupt roles unchanged — the adversary cannot forge what it cannot
// parse.
type Corruptible interface {
	Corrupt(r *rng.Source) any
}

// Telemetry counts what the adversary actually did during one run. It is
// filled by the network layer and surfaced through faults.Telemetry on
// runner.Report. All counters are deterministic given (environment, plan,
// seed).
type Telemetry struct {
	// Equivocations counts per-receiver payload substitutions by
	// Equivocate roles on point-to-point networks.
	Equivocations uint64
	// Corruptions counts consistent payload substitutions: Corrupt roles,
	// plus Equivocate roles defeated by a local-broadcast medium.
	Corruptions uint64
	// Omissions counts messages silently dropped by Mute roles.
	Omissions uint64
	// Stalls counts messages held back by Stall roles.
	Stalls uint64
}

// Total returns the number of adversarial interventions — a single
// headline number for tables.
func (t *Telemetry) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.Equivocations + t.Corruptions + t.Omissions + t.Stalls
}

// MetricsInto contributes the telemetry's named measurements to a metric
// map (used by runner.Report.Metrics for sweep aggregation).
func (t *Telemetry) MetricsInto(m map[string]float64) {
	if t == nil {
		return
	}
	m["byz_equivocations"] = float64(t.Equivocations)
	m["byz_corruptions"] = float64(t.Corruptions)
	m["byz_omissions"] = float64(t.Omissions)
	m["byz_stalls"] = float64(t.Stalls)
}
