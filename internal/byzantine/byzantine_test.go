package byzantine

import (
	"strings"
	"testing"

	"abenet/internal/dist"
)

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name    string
		plan    *Plan
		n       int
		wantErr string // "" = valid
	}{
		{"nil plan", nil, 4, ""},
		{"empty plan", &Plan{}, 4, ""},
		{"equivocators helper", Equivocators(2), 8, ""},
		{"stall with delay", &Plan{Roles: []Role{{Node: 1, Behavior: Stall, StallDelay: dist.NewExponential(2)}}}, 4, ""},
		{"explicit prob", &Plan{Roles: []Role{{Node: 0, Behavior: Mute, Prob: 0.5}}}, 4, ""},
		{"node out of range", &Plan{Roles: []Role{{Node: 4, Behavior: Mute}}}, 4, "outside [0, 4)"},
		{"negative node", &Plan{Roles: []Role{{Node: -1, Behavior: Mute}}}, 4, "outside"},
		{"duplicate node", &Plan{Roles: []Role{{Node: 1, Behavior: Mute}, {Node: 1, Behavior: Corrupt}}}, 4, "two roles"},
		{"zero behavior", &Plan{Roles: []Role{{Node: 0}}}, 4, "unknown behavior"},
		{"bad prob", &Plan{Roles: []Role{{Node: 0, Behavior: Corrupt, Prob: 1.5}}}, 4, "outside [0, 1]"},
		{"stall delay on mute", &Plan{Roles: []Role{{Node: 0, Behavior: Mute, StallDelay: dist.NewExponential(1)}}}, 4, "only meaningful for stall"},
		{"zero-mean stall delay", &Plan{Roles: []Role{{Node: 0, Behavior: Stall, StallDelay: dist.NewDeterministic(0)}}}, 4, "must be positive"},
		{"no honest node left", Equivocators(4), 4, "no honest node"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate(tc.n)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestPlanQueries(t *testing.T) {
	p := Equivocators(3)
	if p.Count() != 3 {
		t.Fatalf("Count = %d, want 3", p.Count())
	}
	if !p.IsAdversary(2) || p.IsAdversary(3) {
		t.Fatalf("IsAdversary wrong: 2=%v 3=%v", p.IsAdversary(2), p.IsAdversary(3))
	}
	var nilPlan *Plan
	if nilPlan.Count() != 0 || nilPlan.IsAdversary(0) {
		t.Fatal("nil plan should report no adversaries")
	}
}

func TestBehaviorString(t *testing.T) {
	want := map[Behavior]string{
		Equivocate:  "equivocate",
		Mute:        "mute",
		Corrupt:     "corrupt",
		Stall:       "stall",
		Behavior(9): "behavior(9)",
	}
	for b, s := range want {
		if b.String() != s {
			t.Fatalf("Behavior(%d).String() = %q, want %q", int(b), b.String(), s)
		}
	}
}

func TestTelemetry(t *testing.T) {
	tel := &Telemetry{Equivocations: 3, Corruptions: 2, Omissions: 1, Stalls: 4}
	if tel.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tel.Total())
	}
	m := map[string]float64{}
	tel.MetricsInto(m)
	want := map[string]float64{
		"byz_equivocations": 3, "byz_corruptions": 2, "byz_omissions": 1, "byz_stalls": 4,
	}
	for k, v := range want {
		if m[k] != v {
			t.Fatalf("metric %s = %g, want %g", k, m[k], v)
		}
	}
	var nilTel *Telemetry
	if nilTel.Total() != 0 {
		t.Fatal("nil telemetry Total should be 0")
	}
	nilTel.MetricsInto(m) // must not panic
}
