package harness

import (
	"testing"

	"abenet/internal/core"
	"abenet/internal/runner"
)

// TestRunEnvMatchesHandRolledAdapter proves the Env-aware runner is a
// drop-in for the historical func(x, seed) adapters: identical sweep
// names derive identical seeds, so the aggregated means must agree
// exactly.
func TestRunEnvMatchesHandRolledAdapter(t *testing.T) {
	xs := []float64{6, 10}
	sweep := Sweep{Name: "envsweep", Repetitions: 10, Seed: 21}

	byHand, err := sweep.Run(xs, func(x float64, seed uint64) (Metrics, error) {
		n := int(x)
		res, err := core.RunElection(core.ElectionConfig{N: n, A0: core.DefaultA0(n), Seed: seed})
		if err != nil {
			return nil, err
		}
		return Metrics{"messages": float64(res.Messages), "time": res.Time}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	byEnv, err := sweep.RunEnv(xs, func(x float64) (runner.Env, runner.Protocol, error) {
		return runner.Env{N: int(x)}, runner.Election{A0: core.DefaultA0(int(x))}, nil
	}, runner.RequireElected)
	if err != nil {
		t.Fatal(err)
	}

	for i := range xs {
		for _, metric := range []string{"messages", "time"} {
			if a, b := byHand[i].Mean(metric), byEnv[i].Mean(metric); a != b {
				t.Fatalf("x=%g %s: hand-rolled %v vs env-aware %v", xs[i], metric, a, b)
			}
		}
	}
}

// TestRunProtocolByName is the acceptance check for the registry path:
// a protocol runs by name with no adapter at all.
func TestRunProtocolByName(t *testing.T) {
	sweep := Sweep{Name: "byname", Repetitions: 5, Seed: 3}
	points, err := sweep.RunProtocol("chang-roberts", runner.Env{}, []float64{6, 8}, runner.RequireElected)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	for _, p := range points {
		if p.Mean("messages") <= 0 {
			t.Fatalf("x=%g: no messages", p.X)
		}
		if p.Mean("leaders") != 1 {
			t.Fatalf("x=%g: leaders mean %v", p.X, p.Mean("leaders"))
		}
	}

	if _, err := sweep.RunProtocol("no-such", runner.Env{}, []float64{6}, nil); err == nil {
		t.Fatal("unknown protocol must error")
	}
	if _, err := sweep.RunProtocol("election", runner.Env{N: 9}, []float64{6}, nil); err == nil {
		t.Fatal("base env with N set must error")
	}
}
