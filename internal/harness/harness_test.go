package harness

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"abenet/internal/rng"
	"abenet/internal/sim"
	"abenet/internal/simtime"
)

// TestSweepPreservesLivelockIdentity: the sweep's error wrapping keeps the
// kernel's typed livelock error errors.Is-able, so callers (the service, the
// CLIs) can tell an exhausted event budget from any other run failure even
// when it surfaced deep inside a parallel sweep.
func TestSweepPreservesLivelockIdentity(t *testing.T) {
	s := Sweep{Name: "livelock", Repetitions: 3, Seed: 1}
	_, err := s.Run([]float64{1}, func(x float64, seed uint64) (Metrics, error) {
		k := sim.New()
		var spin func()
		spin = func() { k.AfterFunc(1, spin) }
		spin()
		return nil, k.Run(simtime.Forever, 10)
	})
	if !errors.Is(err, sim.ErrMaxEvents) {
		t.Fatalf("sweep error = %v, want errors.Is(_, sim.ErrMaxEvents)", err)
	}
}

func TestSweepAggregates(t *testing.T) {
	s := Sweep{Name: "test", Repetitions: 50, Seed: 1}
	points, err := s.Run([]float64{1, 2, 3}, func(x float64, seed uint64) (Metrics, error) {
		r := rng.New(seed)
		return Metrics{"y": 2*x + r.Float64()*0.01}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for i, want := range []float64{2, 4, 6} {
		got := points[i].Mean("y")
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("point %d mean = %v, want about %v", i, got, want)
		}
		if points[i].Samples["y"].N() != 50 {
			t.Fatalf("point %d n = %d", i, points[i].Samples["y"].N())
		}
	}
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []Point {
		s := Sweep{Name: "det", Repetitions: 40, Workers: workers, Seed: 7}
		points, err := s.Run([]float64{1, 2}, func(x float64, seed uint64) (Metrics, error) {
			r := rng.New(seed)
			return Metrics{"v": r.Float64() * x}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return points
	}
	a, b := run(1), run(4)
	for i := range a {
		if a[i].Mean("v") != b[i].Mean("v") {
			t.Fatalf("point %d differs across worker counts: %v vs %v", i, a[i].Mean("v"), b[i].Mean("v"))
		}
	}
}

func TestSweepSeedsDistinct(t *testing.T) {
	var mu sync.Mutex
	seeds := map[uint64]bool{}
	s := Sweep{Name: "seeds", Repetitions: 30, Seed: 3}
	_, err := s.Run([]float64{1, 2}, func(x float64, seed uint64) (Metrics, error) {
		mu.Lock()
		seeds[seed] = true
		mu.Unlock()
		return Metrics{"k": 1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 60 {
		t.Fatalf("distinct seeds = %d, want 60", len(seeds))
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	s := Sweep{Name: "err", Repetitions: 5, Seed: 1}
	wantErr := errors.New("boom")
	_, err := s.Run([]float64{1}, func(float64, uint64) (Metrics, error) {
		return nil, wantErr
	})
	if err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
}

func TestSweepValidation(t *testing.T) {
	s := Sweep{Name: "v"}
	if _, err := s.Run(nil, func(float64, uint64) (Metrics, error) { return nil, nil }); err == nil {
		t.Fatal("empty sweep accepted")
	}
	if _, err := s.Run([]float64{1}, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
}

func TestGrowthExponentOnPoints(t *testing.T) {
	s := Sweep{Name: "growth", Repetitions: 10, Seed: 2}
	points, err := s.Run([]float64{8, 16, 32, 64}, func(x float64, seed uint64) (Metrics, error) {
		return Metrics{"messages": 3 * x}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fit, err := GrowthExponent(points, "messages")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-1) > 1e-9 {
		t.Fatalf("exponent = %v", fit.Slope)
	}
}

func TestMetricNamesSorted(t *testing.T) {
	s := Sweep{Name: "names", Repetitions: 2, Seed: 1}
	pts, err := s.Run([]float64{1}, func(float64, uint64) (Metrics, error) {
		return Metrics{"zeta": 1, "alpha": 2}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	names := MetricNames(pts)
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("names = %v", names)
	}
}

func TestTableRender(t *testing.T) {
	table := NewTable("demo", "n", "messages")
	table.AddRow("8", "24.1 ± 1.2")
	table.AddRow("16", "48.9 ± 2.0")
	var b strings.Builder
	if err := table.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "## demo") || !strings.Contains(out, "messages") {
		t.Fatalf("render:\n%s", out)
	}
	// Title + header + divider + two data rows.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	table := NewTable("", "a", "b")
	table.AddRow("1", "x,y")
	table.AddRow("2", `say "hi"`)
	var b strings.Builder
	if err := table.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n2,\"say \"\"hi\"\"\"\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestTableShortRowsPadded(t *testing.T) {
	table := NewTable("", "a", "b", "c")
	table.AddRow("1")
	if len(table.Rows[0]) != 3 {
		t.Fatalf("row = %v", table.Rows[0])
	}
}

func TestPointsTable(t *testing.T) {
	s := Sweep{Name: "pt", Repetitions: 20, Seed: 5}
	pts, err := s.Run([]float64{4, 8}, func(x float64, seed uint64) (Metrics, error) {
		return Metrics{"m": x * 10}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	table := PointsTable("exp", "n", pts)
	var b strings.Builder
	if err := table.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "40") || !strings.Contains(b.String(), "80") {
		t.Fatalf("table:\n%s", b.String())
	}
}
