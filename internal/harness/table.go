package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned-text table with optional CSV output — the
// format in which every experiment reports the rows the paper's claims
// are checked against.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowf appends one row of formatted values.
func (t *Table) AddRowf(format string, args ...any) {
	t.AddRow(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		return strings.TrimRight(b.String(), " ")
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "## %s\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, line(t.Headers)); err != nil {
		return err
	}
	total := 0
	for _, width := range widths {
		total += width + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the table in RFC-4180-ish CSV (quotes only when needed).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// PointsTable renders sweep points as a table: one row per X, one column
// per metric formatted as "mean ± ci95".
func PointsTable(title, xHeader string, points []Point) *Table {
	names := MetricNames(points)
	headers := append([]string{xHeader}, names...)
	table := NewTable(title, headers...)
	for _, p := range points {
		row := make([]string, 0, len(headers))
		row = append(row, fmt.Sprintf("%g", p.X))
		for _, name := range names {
			s := p.Samples[name]
			if s == nil || s.N() == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.4g ± %.2g", s.Mean(), s.CI95()))
		}
		table.AddRow(row...)
	}
	return table
}
