package harness

import (
	"strings"
	"testing"

	"abenet/internal/faults"
	"abenet/internal/runner"
	"abenet/internal/simtime"
)

// TestRunFaultsLossAxis sweeps the election across a loss axis and checks
// the aggregated points carry both outcome and fault-telemetry metrics.
func TestRunFaultsLossAxis(t *testing.T) {
	sweep := Sweep{Name: "faultsweep", Repetitions: 20, Seed: 9}
	base := runner.Env{N: 8, Horizon: simtime.Time(3000)}
	losses := []float64{0, 0.1}
	points, err := sweep.RunFaults("election", base, losses, func(x float64) *faults.Plan {
		return &faults.Plan{Loss: x}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	if rate := points[0].Mean("elected"); rate != 1 {
		t.Fatalf("loss-free termination rate = %g, want 1", rate)
	}
	if points[0].Mean("fault_dropped") != 0 {
		t.Fatal("loss-free position dropped messages")
	}
	if points[1].Mean("fault_dropped") == 0 {
		t.Fatal("lossy position dropped nothing")
	}
	// The telemetry keys exist at both positions (constant key set per
	// sweep), because both positions carried a plan.
	for _, p := range points {
		if _, ok := p.Samples["fault_crashes"]; !ok {
			t.Fatalf("x=%g missing fault telemetry keys: %v", p.X, MetricNames(points))
		}
	}
}

func TestRunFaultsGuards(t *testing.T) {
	sweep := Sweep{Name: "guards", Repetitions: 2, Seed: 1}
	base := runner.Env{N: 4}
	lossy := func(x float64) *faults.Plan { return &faults.Plan{Loss: 0.5} }

	if _, err := sweep.RunFaults("no-such", base, []float64{0}, lossy, nil); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := sweep.RunFaults("election", base, []float64{0}, nil, nil); err == nil {
		t.Fatal("nil plan function accepted")
	}
	if _, err := sweep.RunFaults("election", base, []float64{0}, lossy, nil); err == nil ||
		!strings.Contains(err.Error(), "Horizon") {
		t.Fatalf("lossy plan without horizon accepted: %v", err)
	}
	base.Faults = &faults.Plan{Loss: 0.1}
	if _, err := sweep.RunFaults("election", base, []float64{0}, lossy, nil); err == nil {
		t.Fatal("pre-set base.Faults accepted")
	}
}
