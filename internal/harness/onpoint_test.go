package harness

import (
	"errors"
	"sync"
	"testing"

	"abenet/internal/rng"
)

// TestOnPointStreamsEveryPosition: the streaming hook fires exactly once
// per position, and the streamed values are bit-identical to the final
// result — the aggregation folds repetitions in canonical order on both
// paths, whatever the worker count.
func TestOnPointStreamsEveryPosition(t *testing.T) {
	var mu sync.Mutex
	streamed := map[int]Point{}
	s := Sweep{
		Name: "stream", Repetitions: 25, Workers: 4, Seed: 3,
		OnPoint: func(xIdx int, p Point) {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := streamed[xIdx]; dup {
				t.Errorf("position %d streamed twice", xIdx)
			}
			streamed[xIdx] = p
		},
	}
	xs := []float64{1, 2, 3, 4}
	points, err := s.Run(xs, func(x float64, seed uint64) (Metrics, error) {
		r := rng.New(seed)
		return Metrics{"v": r.Float64() * x, "w": x}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(xs) {
		t.Fatalf("streamed %d positions, want %d", len(streamed), len(xs))
	}
	for i, final := range points {
		got, ok := streamed[i]
		if !ok {
			t.Fatalf("position %d never streamed", i)
		}
		if got.X != final.X {
			t.Fatalf("position %d streamed X=%g, final X=%g", i, got.X, final.X)
		}
		for name, sample := range final.Samples {
			gs, ok := got.Samples[name]
			if !ok {
				t.Fatalf("position %d streamed without metric %q", i, name)
			}
			// Bit-identical, not approximately equal: both paths fold the
			// same slots in the same order.
			if gs.Mean() != sample.Mean() || gs.StdDev() != sample.StdDev() || gs.N() != sample.N() {
				t.Fatalf("position %d metric %q: streamed %v/%v/%d, final %v/%v/%d",
					i, name, gs.Mean(), gs.StdDev(), gs.N(), sample.Mean(), sample.StdDev(), sample.N())
			}
		}
	}
}

// TestOnPointSkipsFailedPositions: a position with a failed repetition is
// never streamed; healthy positions still are, and Run reports the error.
func TestOnPointSkipsFailedPositions(t *testing.T) {
	var mu sync.Mutex
	var streamed []int
	s := Sweep{
		Name: "failing", Repetitions: 10, Workers: 2, Seed: 1,
		OnPoint: func(xIdx int, p Point) {
			mu.Lock()
			streamed = append(streamed, xIdx)
			mu.Unlock()
		},
	}
	boom := errors.New("boom")
	_, err := s.Run([]float64{1, 2}, func(x float64, seed uint64) (Metrics, error) {
		if x == 2 {
			return nil, boom
		}
		return Metrics{"v": x}, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want the repetition failure", err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, idx := range streamed {
		if idx == 1 {
			t.Fatal("failed position was streamed")
		}
	}
	if len(streamed) != 1 {
		t.Fatalf("streamed positions = %v, want just the healthy one", streamed)
	}
}
