// Package harness runs experiment sweeps: repeated seeded simulations over
// a parameter range, aggregated into samples, rendered as the tables the
// paper's claims are checked against (and as CSV for plotting).
package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"abenet/internal/rng"
	"abenet/internal/stats"
)

// Metrics is one run's named measurements.
type Metrics map[string]float64

// RunFunc executes one simulation at sweep position x with the given seed.
type RunFunc func(x float64, seed uint64) (Metrics, error)

// Point aggregates all repetitions at one sweep position.
type Point struct {
	// X is the sweep variable's value (e.g. the ring size).
	X float64
	// Samples holds one aggregated sample per metric name.
	Samples map[string]*stats.Sample
}

// Mean returns the mean of a metric at this point (0 if absent).
func (p Point) Mean(metric string) float64 {
	s, ok := p.Samples[metric]
	if !ok {
		return 0
	}
	return s.Mean()
}

// DefaultRepetitions is the repetition count behind Sweep.Repetitions = 0,
// exported so tools and validators account for the same number of runs the
// sweep actually executes.
const DefaultRepetitions = 100

// Sweep describes a parameter sweep.
type Sweep struct {
	// Name labels the experiment (used in errors and tables).
	Name string
	// Repetitions is the number of seeded runs per sweep position;
	// 0 means DefaultRepetitions.
	Repetitions int
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int
	// Seed is the base seed; per-run seeds are derived deterministically
	// from it, so results are independent of worker scheduling.
	Seed uint64
	// OnPoint, when non-nil, is called once per sweep position as soon as
	// that position's last repetition completes — the streaming-progress
	// hook behind served sweeps. The point carries the same aggregated
	// values the final result will (repetitions fold in canonical order
	// either way); only the *arrival order across positions* depends on
	// scheduling. Calls are serialized (never concurrent) but may come
	// from worker goroutines, so the callback must not block for long and
	// must not call back into the sweep. Positions with a failed
	// repetition are skipped; Run reports the error at the end as usual.
	OnPoint func(xIdx int, p Point)
}

// Run executes fn at every position in xs, Repetitions times each, in
// parallel, and returns one aggregated Point per position (in xs order).
// The first error aborts the sweep.
func (s Sweep) Run(xs []float64, fn RunFunc) ([]Point, error) {
	if len(xs) == 0 {
		return nil, errors.New("harness: empty sweep")
	}
	if fn == nil {
		return nil, errors.New("harness: nil run function")
	}
	reps := s.Repetitions
	if reps == 0 {
		reps = DefaultRepetitions
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type task struct {
		xIdx, rep int
	}

	tasks := make(chan task)
	var wg sync.WaitGroup

	root := rng.New(s.Seed)
	seedOf := func(xIdx, rep int) uint64 {
		// Derivation is pure: identical regardless of scheduling.
		return root.DeriveIndexed(fmt.Sprintf("%s/x%d", s.Name, xIdx), rep).Uint64()
	}

	// Workers write each run's metrics into its own slot; aggregation
	// happens afterwards in canonical (xIdx, rep) order, so the floating-
	// point folds — and therefore the results — are bit-identical for any
	// worker count.
	results := make([][]Metrics, len(xs))
	errs := make([][]error, len(xs))
	for i := range xs {
		results[i] = make([]Metrics, reps)
		errs[i] = make([]error, reps)
	}

	// remaining counts each position's unfinished repetitions so the
	// OnPoint streaming hook can fire the moment a position completes.
	var remaining []int64
	var onPointMu sync.Mutex
	if s.OnPoint != nil {
		remaining = make([]int64, len(xs))
		for i := range remaining {
			remaining[i] = int64(reps)
		}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tasks {
				m, err := fn(xs[t.xIdx], seedOf(t.xIdx, t.rep))
				results[t.xIdx][t.rep] = m
				errs[t.xIdx][t.rep] = err
				if remaining != nil && atomic.AddInt64(&remaining[t.xIdx], -1) == 0 {
					// This position is done; aggregate its slots in
					// canonical repetition order (identical folds to the
					// final pass) and stream it out.
					if p, perr := aggregatePoint(xs[t.xIdx], results[t.xIdx], errs[t.xIdx]); perr == nil {
						onPointMu.Lock()
						s.OnPoint(t.xIdx, p)
						onPointMu.Unlock()
					}
				}
			}
		}()
	}
	for xIdx := range xs {
		for rep := 0; rep < reps; rep++ {
			tasks <- task{xIdx: xIdx, rep: rep}
		}
	}
	close(tasks)
	wg.Wait()

	points := make([]Point, len(xs))
	for xIdx, x := range xs {
		p, err := aggregatePoint(x, results[xIdx], errs[xIdx])
		if err != nil {
			return nil, fmt.Errorf("harness: %s at x=%g: %w", s.Name, x, err)
		}
		points[xIdx] = p
	}
	return points, nil
}

// aggregatePoint folds one position's repetition slots, in canonical
// repetition order, into an aggregated Point. The fold order is fixed, so
// the floating-point results are bit-identical for any worker count — and
// identical between the streaming OnPoint hook and the final pass.
func aggregatePoint(x float64, results []Metrics, errs []error) (Point, error) {
	p := Point{X: x, Samples: make(map[string]*stats.Sample)}
	for rep := range results {
		if err := errs[rep]; err != nil {
			return Point{}, err
		}
		for name, v := range results[rep] {
			sample, ok := p.Samples[name]
			if !ok {
				sample = &stats.Sample{}
				p.Samples[name] = sample
			}
			sample.Add(v)
		}
	}
	return p, nil
}

// GrowthExponent fits metric ~ C·x^k over the sweep's points and returns
// the fitted exponent k (see stats.GrowthExponent).
func GrowthExponent(points []Point, metric string) (stats.LinearFit, error) {
	xs := make([]float64, 0, len(points))
	ys := make([]float64, 0, len(points))
	for _, p := range points {
		xs = append(xs, p.X)
		ys = append(ys, p.Mean(metric))
	}
	return stats.GrowthExponent(xs, ys)
}

// MetricNames returns the sorted union of metric names across points.
func MetricNames(points []Point) []string {
	set := map[string]bool{}
	for _, p := range points {
		for name := range p.Samples {
			set[name] = true
		}
	}
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
