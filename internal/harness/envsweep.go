package harness

import (
	"errors"
	"fmt"

	"abenet/internal/runner"
)

// EnvBuildFunc returns the (environment, protocol) pair to run at sweep
// position x. The harness injects the per-repetition seed into the
// returned Env, so builders leave Env.Seed at zero.
type EnvBuildFunc func(x float64) (runner.Env, runner.Protocol, error)

// RunEnv sweeps a (protocol × environment) family through the unified
// runner.Run entry point: at every position in xs it asks build for the
// pair, runs it Repetitions times with deterministically derived seeds,
// and aggregates runner.Report.Metrics() into one Point per position.
//
// check, when non-nil, validates every repetition's report (use
// runner.RequireElected for election workloads); its error aborts the
// sweep. This replaces the hand-written func(x, seed) adapters the
// experiments used to roll per protocol.
func (s Sweep) RunEnv(xs []float64, build EnvBuildFunc, check func(runner.Report) error) ([]Point, error) {
	if build == nil {
		return nil, errors.New("harness: nil env build function")
	}
	return s.Run(xs, func(x float64, seed uint64) (Metrics, error) {
		env, proto, err := build(x)
		if err != nil {
			return nil, err
		}
		env.Seed = seed
		rep, err := runner.Run(env, proto)
		if err != nil {
			return nil, err
		}
		if check != nil {
			if err := check(rep); err != nil {
				return nil, err
			}
		}
		return Metrics(rep.Metrics()), nil
	})
}

// RunProtocol sweeps a registry protocol by name over network sizes: x is
// interpreted as the size N of base (whose N and Graph must be unset).
// This is the zero-adapter path — any (registered protocol × environment)
// pair runs with one call:
//
//	points, err := harness.Sweep{Name: "demo"}.RunProtocol(
//	    "chang-roberts", runner.Env{}, []float64{8, 16, 32}, nil)
func (s Sweep) RunProtocol(name string, base runner.Env, xs []float64, check func(runner.Report) error) ([]Point, error) {
	proto, ok := runner.ProtocolByName(name)
	if !ok {
		return nil, fmt.Errorf("harness: unknown protocol %q (have %v)", name, runner.Protocols())
	}
	if base.Graph != nil || base.N != 0 {
		return nil, errors.New("harness: RunProtocol sweeps the network size; leave base.N and base.Graph unset")
	}
	return s.RunEnv(xs, func(x float64) (runner.Env, runner.Protocol, error) {
		env := base
		env.N = int(x)
		if float64(env.N) != x {
			return runner.Env{}, nil, fmt.Errorf("harness: sweep position %g is not a network size", x)
		}
		return env, proto, nil
	}, check)
}
