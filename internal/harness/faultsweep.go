package harness

import (
	"errors"
	"fmt"

	"abenet/internal/faults"
	"abenet/internal/runner"
)

// PlanFunc builds the fault plan to inject at sweep position x (e.g. x is
// a loss probability, a crash rate, or an outage length). Returning nil at
// a position runs that position fault-free — the natural baseline for the
// x = 0 end of a severity axis.
type PlanFunc func(x float64) *faults.Plan

// RunFaults sweeps a fault-severity axis: at every position in xs it runs
// the named registry protocol on base with plan(x) injected, Repetitions
// times with derived seeds, and aggregates runner.Report.Metrics() — which
// under a plan includes the fault telemetry ("fault_dropped",
// "fault_crashes", ...) next to the outcome ("elected", "time") — into one
// Point per position.
//
// base carries the environment shared across positions (N or Graph, Delay
// or Links, Horizon). Plans with message loss can deadlock a protocol, so
// base.Horizon must be finite whenever any position's plan injects loss;
// RunFaults enforces that eagerly rather than letting a sweep burn its
// event budget first.
//
// check, when non-nil, validates every repetition (note runner.
// RequireElected is usually wrong here: non-termination under faults is a
// measurement, not an error — read the "elected" metric instead).
func (s Sweep) RunFaults(protocol string, base runner.Env, xs []float64, plan PlanFunc, check func(runner.Report) error) ([]Point, error) {
	proto, ok := runner.ProtocolByName(protocol)
	if !ok {
		return nil, fmt.Errorf("harness: unknown protocol %q (have %v)", protocol, runner.Protocols())
	}
	if plan == nil {
		return nil, errors.New("harness: nil plan function (use RunProtocol for fault-free sweeps)")
	}
	if base.Faults != nil {
		return nil, errors.New("harness: base.Faults must be unset; RunFaults injects plan(x) per position")
	}
	for _, x := range xs {
		if p := plan(x); p != nil && p.Loss > 0 && base.Horizon == 0 {
			return nil, fmt.Errorf("harness: plan at x=%g injects loss but base.Horizon is unbounded; lossy runs can deadlock", x)
		}
	}
	return s.RunEnv(xs, func(x float64) (runner.Env, runner.Protocol, error) {
		env := base
		env.Faults = plan(x)
		return env, proto, nil
	}, check)
}
