// Package store is the pluggable, content-addressed result store behind
// the serving layer (internal/service, cmd/abe-serve). Keys are the
// service's "(ExecutionHash, seed)" identities; values are whatever the
// caller wants to remember under them. Caching whole results under such a
// key is sound because ABE runs are pure functions of (environment, seed)
// under bounded expected delay (Bakhshi et al., PODC 2010): a stored byte
// is exactly the byte a fresh computation would produce, however old it is.
//
// Two implementations ship today: Memory, a bounded LRU (the serving
// layer's first tier), and Disk, a sharded one-JSON-file-per-key directory
// with atomic writes (the persistent second tier). Both are safe for
// concurrent use.
package store

// Store is a keyed result store. Implementations are safe for concurrent
// use by multiple goroutines.
type Store[V any] interface {
	// Get returns the value stored under key, if any.
	Get(key string) (V, bool)
	// Put stores v under key, replacing any previous value.
	Put(key string, v V) error
	// Len returns the number of stored entries.
	Len() int
	// Close releases the store's resources. The store must not be used
	// afterwards.
	Close() error
}
