package store

import (
	"container/list"
	"sync"
)

// Memory is a bounded in-memory LRU store: Put beyond the capacity evicts
// the least recently used entry, and Get marks its entry most recently
// used. It is the serving layer's first cache tier.
type Memory[V any] struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	byKey map[string]*list.Element
}

// memEntry is one LRU slot.
type memEntry[V any] struct {
	key string
	val V
}

// NewMemory returns an LRU store bounded to max entries (min 1).
func NewMemory[V any](max int) *Memory[V] {
	if max < 1 {
		max = 1
	}
	return &Memory[V]{max: max, order: list.New(), byKey: map[string]*list.Element{}}
}

// Get returns the value under key, marking it most recently used.
func (m *Memory[V]) Get(key string) (V, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.byKey[key]
	if !ok {
		var zero V
		return zero, false
	}
	m.order.MoveToFront(el)
	return el.Value.(*memEntry[V]).val, true
}

// Put stores v under key. An existing key is refreshed in place (and marked
// most recently used); a new key beyond the capacity evicts from the LRU
// tail. Put never fails.
func (m *Memory[V]) Put(key string, v V) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.byKey[key]; ok {
		el.Value.(*memEntry[V]).val = v
		m.order.MoveToFront(el)
		return nil
	}
	m.byKey[key] = m.order.PushFront(&memEntry[V]{key: key, val: v})
	for m.order.Len() > m.max {
		back := m.order.Back()
		m.order.Remove(back)
		delete(m.byKey, back.Value.(*memEntry[V]).key)
	}
	return nil
}

// Len returns the entry count.
func (m *Memory[V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}

// Close empties the store.
func (m *Memory[V]) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.order.Init()
	m.byKey = map[string]*list.Element{}
	return nil
}
