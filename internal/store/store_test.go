package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// payload is a stand-in for the service's result documents.
type payload struct {
	Name  string    `json:"name"`
	Score float64   `json:"score"`
	Xs    []float64 `json:"xs,omitempty"`
}

// TestMemoryLRUOrder pins the eviction order: least recently *used*, not
// least recently inserted.
func TestMemoryLRUOrder(t *testing.T) {
	m := NewMemory[int](3)
	for i, k := range []string{"a", "b", "c"} {
		if err := m.Put(k, i); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a: order (MRU→LRU) becomes a, c, b.
	if _, ok := m.Get("a"); !ok {
		t.Fatal("a missing")
	}
	m.Put("d", 3) // evicts b
	if _, ok := m.Get("b"); ok {
		t.Fatal("b survived past capacity (wrong eviction order)")
	}
	for _, k := range []string{"c", "a", "d"} {
		if _, ok := m.Get(k); !ok {
			t.Fatalf("%s evicted, want b evicted", k)
		}
	}
	// One more insert evicts in LRU order: c (a and d were read after it).
	m.Put("e", 4)
	if _, ok := m.Get("c"); ok {
		t.Fatal("c survived, want c evicted after a/d were touched")
	}
	if got := m.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
}

// TestMemoryPutRefresh: re-putting an existing key replaces the value in
// place, keeps the entry count, and marks it most recently used.
func TestMemoryPutRefresh(t *testing.T) {
	m := NewMemory[string](2)
	m.Put("a", "old")
	m.Put("b", "x")
	m.Put("a", "new") // refresh, not insert
	if got := m.Len(); got != 2 {
		t.Fatalf("Len after refresh = %d, want 2", got)
	}
	if v, _ := m.Get("a"); v != "new" {
		t.Fatalf("refreshed value = %q, want new", v)
	}
	m.Put("c", "y") // evicts b: the refresh moved a to the front
	if _, ok := m.Get("b"); ok {
		t.Fatal("refresh did not move the entry to the front")
	}
	if _, ok := m.Get("a"); !ok {
		t.Fatal("refreshed entry evicted")
	}
}

// TestMemoryClose: Close empties the store.
func TestMemoryClose(t *testing.T) {
	m := NewMemory[int](4)
	m.Put("a", 1)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatal("Close left entries behind")
	}
}

// TestDiskRoundTripAndRestart is the durability loop: entries written by
// one Disk instance are served, byte-equal, by a fresh instance over the
// same directory — the property the serving layer's restart story rests on.
func TestDiskRoundTripAndRestart(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk[*payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{
		"aa00ff@1", "aa00ff@2", // same shard, different seed
		"bb11ee@1", // different shard
		"k",        // short key: fallback shard
	}
	for i, k := range keys {
		if err := d.Put(k, &payload{Name: k, Score: float64(i), Xs: []float64{1, 2}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Len(); got != len(keys) {
		t.Fatalf("Len = %d, want %d", got, len(keys))
	}
	// Overwrite is a refresh, not a new entry.
	if err := d.Put("aa00ff@1", &payload{Name: "aa00ff@1", Score: 99}); err != nil {
		t.Fatal(err)
	}
	if got := d.Len(); got != len(keys) {
		t.Fatalf("Len after overwrite = %d, want %d", got, len(keys))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh instance over the same directory serves everything.
	d2, err := OpenDisk[*payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Len(); got != len(keys) {
		t.Fatalf("reopened Len = %d, want %d", got, len(keys))
	}
	v, ok := d2.Get("aa00ff@1")
	if !ok || v.Score != 99 {
		t.Fatalf("reopened Get = %+v %v, want the overwritten entry", v, ok)
	}
	if v, ok := d2.Get("bb11ee@1"); !ok || v.Name != "bb11ee@1" || len(v.Xs) != 2 {
		t.Fatalf("reopened Get(bb11ee@1) = %+v %v", v, ok)
	}
	if _, ok := d2.Get("absent@0"); ok {
		t.Fatal("missing key reported present")
	}
}

// TestDiskCorruptEntryIsAMiss: a torn or hand-mangled entry degrades to a
// cache miss and is removed, so the slot heals on the next Put.
func TestDiskCorruptEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk[*payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("aa@1", &payload{Name: "good"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "aa", "aa@1.json")
	if err := os.WriteFile(path, []byte(`{"name": "torn`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("aa@1"); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry not removed: %v", err)
	}
	if got := d.Len(); got != 0 {
		t.Fatalf("Len after corrupt removal = %d, want 0", got)
	}
	// The slot heals.
	if err := d.Put("aa@1", &payload{Name: "fresh"}); err != nil {
		t.Fatal(err)
	}
	if v, ok := d.Get("aa@1"); !ok || v.Name != "fresh" {
		t.Fatalf("healed slot = %+v %v", v, ok)
	}
}

// TestDiskAtomicWriteLeavesNoTemp: the temp file never survives a Put.
func TestDiskAtomicWriteLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk[*payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("aa@1", &payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	var leftovers []string
	_ = filepath.WalkDir(dir, func(path string, de os.DirEntry, err error) error {
		if err == nil && !de.IsDir() && strings.HasSuffix(path, ".tmp") {
			leftovers = append(leftovers, path)
		}
		return nil
	})
	if len(leftovers) > 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
	// A reopened store ignores stray non-entry files entirely.
	if err := os.WriteFile(filepath.Join(dir, "aa", "stray.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk[*payload](dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Len(); got != 1 {
		t.Fatalf("reopened Len with stray temp = %d, want 1", got)
	}
}

// TestDiskRejectsBadKeys: keys that could escape the shard tree fail.
func TestDiskRejectsBadKeys(t *testing.T) {
	d, err := OpenDisk[*payload](t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"", "a/b", `a\b`, "..", "."} {
		if err := d.Put(k, &payload{}); err == nil {
			t.Fatalf("Put(%q) accepted", k)
		}
		if _, ok := d.Get(k); ok {
			t.Fatalf("Get(%q) hit", k)
		}
	}
}

// TestOpenDiskErrors: an unusable root is reported at open time.
func TestOpenDiskErrors(t *testing.T) {
	if _, err := OpenDisk[*payload](""); err == nil {
		t.Fatal("empty directory accepted")
	}
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk[*payload](file); err == nil {
		t.Fatal("file root accepted")
	}
}

// TestStoreInterfaceCompliance: both implementations satisfy Store.
func TestStoreInterfaceCompliance(t *testing.T) {
	var _ Store[*payload] = NewMemory[*payload](1)
	d, err := OpenDisk[*payload](t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var _ Store[*payload] = d
}
