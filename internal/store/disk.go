package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Disk is a persistent store: one JSON file per key under a directory
// sharded on the key's first two characters (content-addressed keys spread
// uniformly, so no shard outgrows the others). Writes are atomic — the
// entry is written to a temporary file, synced, and renamed into place —
// so a crash mid-write can never leave a torn entry visible, and a
// reopened store serves exactly the set of completed Puts. Entries that do
// not parse (truncated by an unclean shutdown, hand-edited, ...) are
// treated as absent and removed: a corrupt entry must degrade to a cache
// miss, never to a serving failure.
type Disk[V any] struct {
	mu  sync.Mutex
	dir string
	n   int
}

// OpenDisk opens (creating if needed) the sharded store rooted at dir and
// counts its existing entries.
func OpenDisk[V any](dir string) (*Disk[V], error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	d := &Disk[V]{dir: dir}
	shards, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, sh.Name()))
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		for _, f := range files {
			if !f.IsDir() && strings.HasSuffix(f.Name(), ".json") {
				d.n++
			}
		}
	}
	return d, nil
}

// Dir returns the store's root directory.
func (d *Disk[V]) Dir() string { return d.dir }

// path maps a key onto its entry file. Keys are service identities
// (hex hash + "@" + decimal seed); anything that could escape the shard
// directory is rejected by the callers via checkKey.
func (d *Disk[V]) path(key string) string {
	shard := "_"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(d.dir, shard, key+".json")
}

// checkKey rejects keys that cannot be entry file names.
func checkKey(key string) error {
	if key == "" {
		return errors.New("store: empty key")
	}
	if strings.ContainsAny(key, "/\\") || key == "." || key == ".." {
		return fmt.Errorf("store: key %q is not a valid entry name", key)
	}
	return nil
}

// Get returns the value stored under key. A missing file is a miss; a
// file that fails to parse is removed and reported as a miss.
func (d *Disk[V]) Get(key string) (V, bool) {
	var zero V
	if checkKey(key) != nil {
		return zero, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	path := d.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return zero, false
	}
	var v V
	if err := json.Unmarshal(data, &v); err != nil {
		// Corrupt entry: drop it so the slot heals on the next Put.
		if os.Remove(path) == nil {
			d.n--
		}
		return zero, false
	}
	return v, true
}

// Put stores v under key atomically (temp file + fsync + rename).
func (d *Disk[V]) Put(key string, v V) error {
	if err := checkKey(key); err != nil {
		return err
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: encoding %q: %w", key, err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	path := d.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: writing %q: %w", key, werr)
	}
	_, existed := d.stat(path)
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if !existed {
		d.n++
	}
	return nil
}

// stat reports whether the entry file exists.
func (d *Disk[V]) stat(path string) (os.FileInfo, bool) {
	fi, err := os.Stat(path)
	return fi, err == nil
}

// Len returns the number of persisted entries.
func (d *Disk[V]) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// Close releases the store. Every completed Put is already durable on
// disk, so Close has nothing to flush.
func (d *Disk[V]) Close() error { return nil }
