package syncnet

import (
	"testing"

	"abenet/internal/topology"
)

// hopper forwards a counter once per round until it reaches a limit.
type hopper struct {
	start bool
	got   []int
}

func (h *hopper) Round(ctx NodeContext, round int, inbox []Message) {
	if round == 0 && h.start {
		ctx.Send(0, 1)
		return
	}
	for _, m := range inbox {
		v, ok := m.Payload.(int)
		if !ok {
			panic("bad payload")
		}
		h.got = append(h.got, v)
		if v >= 10 {
			ctx.StopNetwork("limit reached")
			return
		}
		ctx.Send(0, v+1)
	}
}

func TestTokenAdvancesOneHopPerRound(t *testing.T) {
	r, err := New(Config{Graph: topology.Ring(4), Seed: 1}, func(i int) Node {
		return &hopper{start: i == 0}
	})
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := r.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	// Token values 1..10 take 10 deliveries; one round each plus the
	// initial send round.
	if rounds != 11 {
		t.Fatalf("rounds = %d, want 11", rounds)
	}
	if r.Messages() != 10 {
		t.Fatalf("messages = %d, want 10", r.Messages())
	}
	if r.StopCause() != "limit reached" {
		t.Fatalf("cause = %q", r.StopCause())
	}
	// Node 1 receives the token at rounds 1, 5, 9 with values 1, 5, 9.
	node, ok := r.NodeAt(1).(*hopper)
	if !ok {
		t.Fatal("unexpected node type")
	}
	want := []int{1, 5, 9}
	if len(node.got) != len(want) {
		t.Fatalf("node 1 saw %v, want %v", node.got, want)
	}
	for i := range want {
		if node.got[i] != want[i] {
			t.Fatalf("node 1 saw %v, want %v", node.got, want)
		}
	}
}

func TestRunBudgetErrors(t *testing.T) {
	r, err := New(Config{Graph: topology.Ring(3), Seed: 1}, func(i int) Node {
		return &hopper{start: i == 0}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(3); err == nil {
		t.Fatal("expected round-budget error")
	}
	if _, err := r.Run(0); err == nil {
		t.Fatal("maxRounds=0 accepted")
	}
}

type syncIDReader struct{ saw int }

func (s *syncIDReader) Round(ctx NodeContext, round int, _ []Message) {
	s.saw = ctx.ID()
	ctx.StopNetwork("done")
}

func TestSyncAnonymityEnforced(t *testing.T) {
	r, err := New(Config{Graph: topology.Ring(2), Seed: 1, Anonymous: true}, func(int) Node {
		return &syncIDReader{}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("anonymous ID read did not panic")
		}
	}()
	r.Step()
}

func TestSyncConfigValidation(t *testing.T) {
	if _, err := New(Config{}, func(int) Node { return &hopper{} }); err == nil {
		t.Fatal("missing graph accepted")
	}
	if _, err := New(Config{Graph: topology.Ring(2)}, nil); err == nil {
		t.Fatal("nil constructor accepted")
	}
	if _, err := New(Config{Graph: topology.Ring(2)}, func(int) Node { return nil }); err == nil {
		t.Fatal("nil node accepted")
	}
}

func TestRandStreamsIndependent(t *testing.T) {
	var draws [2]uint64
	r, err := New(Config{Graph: topology.Ring(2), Seed: 5}, func(i int) Node {
		return &funcSyncNode{fn: func(ctx NodeContext, round int, _ []Message) {
			draws[i] = ctx.Rand().Uint64()
			ctx.StopNetwork("done")
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Step()
	if draws[0] == draws[1] {
		t.Fatal("two nodes drew identical random values")
	}
}

type funcSyncNode struct {
	fn func(NodeContext, int, []Message)
}

func (f *funcSyncNode) Round(ctx NodeContext, round int, inbox []Message) {
	f.fn(ctx, round, inbox)
}

func TestStepAfterStopIsNoop(t *testing.T) {
	r, err := New(Config{Graph: topology.Ring(2), Seed: 1}, func(int) Node {
		return &funcSyncNode{fn: func(ctx NodeContext, _ int, _ []Message) {
			ctx.StopNetwork("immediately")
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Step() {
		t.Fatal("Step should report stopped after the first round")
	}
	if r.Step() {
		t.Fatal("Step after stop should be a no-op")
	}
	if r.Rounds() != 1 {
		t.Fatalf("rounds = %d, want 1", r.Rounds())
	}
}

func TestSendOnBadPortPanics(t *testing.T) {
	r, err := New(Config{Graph: topology.Ring(2), Seed: 1}, func(int) Node {
		return &funcSyncNode{fn: func(ctx NodeContext, _ int, _ []Message) {
			defer func() {
				if recover() == nil {
					t.Error("bad port did not panic")
				}
			}()
			ctx.Send(3, "x")
			ctx.StopNetwork("done")
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Step()
}

func TestInPortNumbering(t *testing.T) {
	// On a bidirectional ring of 3, every node has 2 in-ports; messages
	// from distinct neighbours must arrive on distinct ports.
	ports := make(map[int]map[int]bool)
	r, err := New(Config{Graph: topology.BiRing(3), Seed: 2}, func(i int) Node {
		ports[i] = make(map[int]bool)
		return &funcSyncNode{fn: func(ctx NodeContext, round int, inbox []Message) {
			if round == 0 {
				for p := 0; p < ctx.OutDegree(); p++ {
					ctx.Send(p, "hi")
				}
				return
			}
			for _, m := range inbox {
				ports[i][m.InPort] = true
			}
			ctx.StopNetwork("done")
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Step()
	r.Step()
	for i := 0; i < 3; i++ {
		if len(ports[i]) != 2 {
			t.Fatalf("node %d saw ports %v, want 2 distinct", i, ports[i])
		}
	}
}
