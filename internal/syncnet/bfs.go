package syncnet

import "fmt"

// bfsAnnounce is the BFS protocol's only message: the sender's distance
// from the root.
type bfsAnnounce struct {
	Dist int
}

// BFSNode is synchronous breadth-first spanning-tree construction: the
// root announces distance 0 in round 0; every node adopts the first
// announced distance + 1 it hears and re-announces once. In a synchronous
// network this computes exact BFS distances in diameter+1 rounds with one
// message per edge overall in each direction.
//
// It is deliberately simple: the experiments use it (and its exactness) to
// show the synchronizers preserve synchronous semantics for protocols
// other than elections, and to measure what a latency-sensitive protocol
// pays under each synchronizer.
type BFSNode struct {
	root bool

	// Dist is the computed distance from the root; -1 until known.
	Dist int
	// DecidedRound is the round in which Dist was fixed; -1 until known.
	DecidedRound int
}

var _ Node = (*BFSNode)(nil)

// NewBFSNode returns a protocol instance; exactly one node must be the
// root.
func NewBFSNode(root bool) *BFSNode {
	return &BFSNode{root: root, Dist: -1, DecidedRound: -1}
}

// Round implements Node.
func (p *BFSNode) Round(ctx NodeContext, round int, inbox []Message) {
	if round == 0 && p.root {
		p.Dist = 0
		p.DecidedRound = 0
		p.announce(ctx)
		return
	}
	if p.Dist >= 0 {
		return // already decided; BFS announcements are one-shot
	}
	for _, m := range inbox {
		a, ok := m.Payload.(bfsAnnounce)
		if !ok {
			panic(fmt.Sprintf("syncnet: foreign payload %T in BFS", m.Payload))
		}
		if p.Dist == -1 || a.Dist+1 < p.Dist {
			p.Dist = a.Dist + 1
		}
	}
	if p.Dist >= 0 {
		p.DecidedRound = round
		p.announce(ctx)
	}
}

func (p *BFSNode) announce(ctx NodeContext) {
	for port := 0; port < ctx.OutDegree(); port++ {
		ctx.Send(port, bfsAnnounce{Dist: p.Dist})
	}
}
