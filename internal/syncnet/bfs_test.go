package syncnet

import (
	"testing"

	"abenet/internal/rng"
	"abenet/internal/topology"
)

// runBFS executes the BFS protocol natively and returns per-node
// distances.
func runBFS(t *testing.T, g *topology.Graph, root int, maxRounds int) []int {
	t.Helper()
	nodes := make([]*BFSNode, g.N())
	r, err := New(Config{Graph: g, Seed: 1}, func(i int) Node {
		nodes[i] = NewBFSNode(i == root)
		return nodes[i]
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxRounds && r.Step(); i++ {
	}
	dists := make([]int, g.N())
	for i, node := range nodes {
		dists[i] = node.Dist
	}
	return dists
}

func TestBFSComputesExactDistances(t *testing.T) {
	graphs := map[string]*topology.Graph{
		"line":      topology.Line(7),
		"biring":    topology.BiRing(9),
		"star":      topology.Star(6),
		"complete":  topology.Complete(5),
		"hypercube": topology.Hypercube(4),
		"torus":     topology.Torus(3, 4),
	}
	for name, g := range graphs {
		got := runBFS(t, g, 0, g.N()+2)
		_, want := g.BFSTree(0)
		for v := range want {
			if got[v] != want[v] {
				t.Errorf("%s: node %d distance %d, want %d", name, v, got[v], want[v])
			}
		}
	}
}

func TestBFSOnRandomGraphs(t *testing.T) {
	root := rng.New(11)
	for trial := 0; trial < 10; trial++ {
		n := 3 + root.Intn(20)
		g := topology.RandomConnected(n, 0.15, root.Derive("g"))
		got := runBFS(t, g, 0, n+2)
		_, want := g.BFSTree(0)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("trial %d: node %d distance %d, want %d", trial, v, got[v], want[v])
			}
		}
	}
}

func TestBFSDecidesInDistanceRounds(t *testing.T) {
	g := topology.Line(6)
	nodes := make([]*BFSNode, g.N())
	r, err := New(Config{Graph: g, Seed: 1}, func(i int) Node {
		nodes[i] = NewBFSNode(i == 0)
		return nodes[i]
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10 && r.Step(); i++ {
	}
	for v, node := range nodes {
		if node.DecidedRound != v {
			t.Fatalf("node %d decided in round %d, want %d", v, node.DecidedRound, v)
		}
	}
}
