// Package syncnet is a synchronous round-based network engine.
//
// In the synchronous model all nodes proceed in global rounds: messages
// sent in round r arrive at the start of round r+1. The paper positions ABE
// networks between this model and full asynchrony; the experiments use
// syncnet for two purposes:
//
//   - running the Itai–Rodeh style election natively, as the "most optimal
//     leader election known for anonymous synchronous rings" the paper
//     compares against (E7), and
//   - defining the reference behaviour that synchronisers must reproduce
//     on ABE networks (E8/E9).
package syncnet

import (
	"errors"
	"fmt"

	"abenet/internal/rng"
	"abenet/internal/topology"
)

// Message is one message delivered at a round boundary.
type Message struct {
	// InPort is the receiver's local port the message arrived on.
	InPort int
	// Payload is the protocol content.
	Payload any
}

// NodeContext is the local view a synchronous protocol gets each round.
// It is an interface so the same protocol code can run natively on the
// round engine or on an asynchronous ABE network through a synchronizer.
type NodeContext interface {
	// N returns the network size (known-n assumption).
	N() int
	// ID returns the node identity; panics on anonymous networks.
	ID() int
	// OutDegree returns the number of out-ports.
	OutDegree() int
	// Send queues payload for delivery on outPort at the next round.
	Send(outPort int, payload any)
	// Rand returns the node's private random stream.
	Rand() *rng.Source
	// StopNetwork ends the run after the current round.
	StopNetwork(cause string)
}

// Node is a synchronous protocol instance. Round is called once per round
// with all messages sent to the node in the previous round.
type Node interface {
	Round(ctx NodeContext, round int, inbox []Message)
}

var _ NodeContext = (*Context)(nil)

// Runner drives a synchronous network.
type Runner struct {
	graph     *topology.Graph
	nodes     []Node
	ctxs      []*Context
	inboxes   [][]Message
	outboxes  [][]Message
	anonymous bool

	messages  uint64
	rounds    int
	stopped   bool
	stopCause string
}

// Config describes a synchronous network.
type Config struct {
	// Graph is the topology. Required.
	Graph *topology.Graph
	// Seed drives all node randomness.
	Seed uint64
	// Anonymous forbids reading node identities.
	Anonymous bool
}

// New builds a synchronous network running makeNode(i) on each node.
func New(cfg Config, makeNode func(i int) Node) (*Runner, error) {
	if cfg.Graph == nil {
		return nil, errors.New("syncnet: config needs a graph")
	}
	if makeNode == nil {
		return nil, errors.New("syncnet: nil node constructor")
	}
	if err := cfg.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("syncnet: %w", err)
	}
	n := cfg.Graph.N()
	root := rng.New(cfg.Seed)
	r := &Runner{
		graph:     cfg.Graph,
		nodes:     make([]Node, n),
		ctxs:      make([]*Context, n),
		inboxes:   make([][]Message, n),
		outboxes:  make([][]Message, n),
		anonymous: cfg.Anonymous,
	}
	// Precompute in-port numbering, as in the asynchronous runtime.
	inPort := make(map[[2]int]int, cfg.Graph.EdgeCount())
	for v := 0; v < n; v++ {
		for idx, u := range cfg.Graph.In(v) {
			inPort[[2]int{u, v}] = idx
		}
	}
	for i := 0; i < n; i++ {
		r.ctxs[i] = &Context{
			runner: r,
			id:     i,
			rand:   root.DeriveIndexed("node", i),
			inPort: inPort,
		}
		r.nodes[i] = makeNode(i)
		if r.nodes[i] == nil {
			return nil, fmt.Errorf("syncnet: makeNode(%d) returned nil", i)
		}
	}
	return r, nil
}

// Step executes one synchronous round. It returns false once the network
// has stopped.
func (r *Runner) Step() bool {
	if r.stopped {
		return false
	}
	round := r.rounds
	// Deliver this round's messages and collect next round's.
	for i, node := range r.nodes {
		node.Round(r.ctxs[i], round, r.inboxes[i])
	}
	r.inboxes, r.outboxes = r.outboxes, r.inboxes
	for i := range r.outboxes {
		r.outboxes[i] = r.outboxes[i][:0]
	}
	r.rounds++
	return !r.stopped
}

// Run executes rounds until the protocol stops the network or maxRounds
// rounds have run. It returns the number of rounds executed and an error
// if the bound was hit without a stop.
func (r *Runner) Run(maxRounds int) (int, error) {
	if maxRounds <= 0 {
		return 0, fmt.Errorf("syncnet: maxRounds %d must be positive", maxRounds)
	}
	start := r.rounds
	for r.Step() {
		if r.rounds-start >= maxRounds {
			if r.stopped {
				break
			}
			return r.rounds - start, fmt.Errorf("syncnet: no termination within %d rounds", maxRounds)
		}
	}
	return r.rounds - start, nil
}

// Rounds returns the number of rounds executed so far.
func (r *Runner) Rounds() int { return r.rounds }

// Messages returns the total number of messages sent so far.
func (r *Runner) Messages() uint64 { return r.messages }

// Stopped reports whether the protocol stopped the network.
func (r *Runner) Stopped() bool { return r.stopped }

// StopCause returns the protocol's stop cause, or "".
func (r *Runner) StopCause() string { return r.stopCause }

// NodeAt returns the protocol instance at index i for post-run inspection.
func (r *Runner) NodeAt(i int) Node { return r.nodes[i] }

// N returns the network size.
func (r *Runner) N() int { return len(r.nodes) }

// Context is a synchronous node's local view.
type Context struct {
	runner *Runner
	id     int
	rand   *rng.Source
	inPort map[[2]int]int
}

// N returns the network size (known-n assumption).
func (c *Context) N() int { return c.runner.N() }

// ID returns the node identity; panics on anonymous networks.
func (c *Context) ID() int {
	if c.runner.anonymous {
		panic("syncnet: protocol read node identity on an anonymous network")
	}
	return c.id
}

// OutDegree returns the number of out-ports.
func (c *Context) OutDegree() int { return c.runner.graph.OutDegree(c.id) }

// Send queues payload for delivery on the given out-port at the start of
// the next round.
func (c *Context) Send(outPort int, payload any) {
	out := c.runner.graph.Out(c.id)
	if outPort < 0 || outPort >= len(out) {
		panic(fmt.Sprintf("syncnet: node has %d out-ports, sent on %d", len(out), outPort))
	}
	dest := out[outPort]
	port := c.inPort[[2]int{c.id, dest}]
	c.runner.messages++
	c.runner.outboxes[dest] = append(c.runner.outboxes[dest], Message{InPort: port, Payload: payload})
}

// Rand returns the node's private random stream.
func (c *Context) Rand() *rng.Source { return c.rand }

// StopNetwork ends the run after the current round completes.
func (c *Context) StopNetwork(cause string) {
	c.runner.stopped = true
	c.runner.stopCause = cause
}
