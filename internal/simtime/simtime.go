// Package simtime defines the virtual time base used throughout the
// simulator.
//
// Simulated time is a float64 number of abstract "time units". The ABE model
// is unit-agnostic: the paper's δ (expected message delay), γ (expected
// processing time) and clock speeds are all expressed relative to one
// another, so a dimensionless time base is the faithful representation.
// Distinct types for instants (Time) and intervals (Duration) keep the two
// from being mixed up, in the spirit of the standard library's time package.
package simtime

import (
	"fmt"
	"math"
)

// Time is an instant in virtual time, measured in time units from the start
// of the simulation.
type Time float64

// Duration is a span of virtual time in time units. Durations are always
// non-negative in this simulator; scheduling into the past is a programming
// error caught by the kernel.
type Duration float64

// Zero is the start of every simulation.
const Zero Time = 0

// Forever is an effectively infinite horizon, usable as a "run until the
// protocol terminates" bound.
const Forever Time = Time(math.MaxFloat64)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t. The result is negative if t
// precedes u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// IsFinite reports whether t is a usable instant (not NaN or ±Inf, and below
// the Forever horizon).
func (t Time) IsFinite() bool {
	f := float64(t)
	return !math.IsNaN(f) && !math.IsInf(f, 0) && t < Forever
}

// String formats the instant with enough precision for traces.
func (t Time) String() string { return fmt.Sprintf("t=%.6g", float64(t)) }

// Seconds returns the duration as a raw float64 for arithmetic.
func (d Duration) Seconds() float64 { return float64(d) }

// Valid reports whether d is a usable duration: finite and non-negative.
func (d Duration) Valid() bool {
	f := float64(d)
	return !math.IsNaN(f) && !math.IsInf(f, 0) && f >= 0
}

// String formats the duration.
func (d Duration) String() string { return fmt.Sprintf("%.6g units", float64(d)) }
