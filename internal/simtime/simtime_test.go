package simtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddSub(t *testing.T) {
	a := Time(1.5)
	b := a.Add(2.5)
	if b != Time(4.0) {
		t.Fatalf("Add = %v", b)
	}
	if d := b.Sub(a); d != Duration(2.5) {
		t.Fatalf("Sub = %v", d)
	}
}

func TestBeforeAfter(t *testing.T) {
	if !Time(1).Before(Time(2)) {
		t.Fatal("1 should be before 2")
	}
	if Time(2).Before(Time(1)) {
		t.Fatal("2 should not be before 1")
	}
	if !Time(2).After(Time(1)) {
		t.Fatal("2 should be after 1")
	}
	if Time(1).Before(Time(1)) || Time(1).After(Time(1)) {
		t.Fatal("equal instants must be neither before nor after")
	}
}

func TestIsFinite(t *testing.T) {
	if !Zero.IsFinite() {
		t.Fatal("Zero must be finite")
	}
	if Forever.IsFinite() {
		t.Fatal("Forever must not be finite")
	}
	if Time(math.NaN()).IsFinite() {
		t.Fatal("NaN must not be finite")
	}
	if Time(math.Inf(1)).IsFinite() {
		t.Fatal("+Inf must not be finite")
	}
}

func TestDurationValid(t *testing.T) {
	if !Duration(0).Valid() {
		t.Fatal("zero duration must be valid")
	}
	if !Duration(1.5).Valid() {
		t.Fatal("positive duration must be valid")
	}
	if Duration(-1).Valid() {
		t.Fatal("negative duration must be invalid")
	}
	if Duration(math.NaN()).Valid() {
		t.Fatal("NaN duration must be invalid")
	}
}

func TestAddSubRoundTripProperty(t *testing.T) {
	f := func(base float64, delta float64) bool {
		if math.IsNaN(base) || math.IsNaN(delta) ||
			math.Abs(base) > 1e100 || math.Abs(delta) > 1e100 {
			return true // only moderate finite inputs are in the domain
		}
		d := Duration(math.Abs(delta))
		a := Time(base)
		return a.Add(d).Sub(a) == d || math.Abs(float64(a.Add(d).Sub(a)-d)) <= 1e-9*math.Abs(float64(d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStrings(t *testing.T) {
	if Time(1.25).String() == "" || Duration(2).String() == "" {
		t.Fatal("String must be non-empty")
	}
}
