// Package live executes the ABE election on real goroutines and channels
// rather than on the discrete-event kernel.
//
// The simulator (internal/network) gives deterministic, seeded executions —
// that is what the experiments measure on. This package is the complement:
// every node is a goroutine, every link delay is a real time.Sleep sampled
// from the configured distribution, and message reordering comes from the
// Go scheduler itself. It demonstrates that the protocol's correctness does
// not depend on simulator artifacts, and it doubles as a reference for
// embedding the algorithm in a real networked system.
//
// Executions here are intentionally nondeterministic; tests assert safety
// (exactly one leader) and sanity bands, never exact values.
package live

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"abenet/internal/dist"
	"abenet/internal/rng"
)

// ElectionConfig configures a live election run.
type ElectionConfig struct {
	// N is the ring size (>= 2).
	N int
	// A0 is the base activation parameter in (0, 1); 0 means the
	// balanced default 1/n² (see core.A0ForRing).
	A0 float64
	// MeanDelay is the expected link delay; each message sleeps an
	// exponentially distributed duration with this mean. 0 means 200µs.
	MeanDelay time.Duration
	// TickEvery is the local clock tick period. 0 means MeanDelay.
	TickEvery time.Duration
	// Timeout aborts the run; 0 means 30s.
	Timeout time.Duration
	// Seed drives all sampling (the scheduler still adds real
	// nondeterminism).
	Seed uint64
}

// ElectionResult reports a live run.
type ElectionResult struct {
	// LeaderIndex is the winning node.
	LeaderIndex int
	// Leaders counts nodes that believed they won (must be 1).
	Leaders int
	// Messages counts sends.
	Messages uint64
	// Elapsed is the wall-clock duration until the leader emerged.
	Elapsed time.Duration
}

// message is the protocol's hop-counter token.
type message struct {
	hop int
}

// nodeState mirrors the paper's four states.
type nodeState int

const (
	stIdle nodeState = iota + 1
	stActive
	stPassive
	stLeader
)

// RunElection executes the paper's election algorithm on N goroutines
// connected in a unidirectional ring by delay-simulating channels.
func RunElection(cfg ElectionConfig) (ElectionResult, error) {
	if cfg.N < 2 {
		return ElectionResult{}, fmt.Errorf("live: ring size %d must be at least 2", cfg.N)
	}
	a0 := cfg.A0
	if a0 == 0 {
		a0 = 1 / (float64(cfg.N) * float64(cfg.N))
	}
	if !(a0 > 0 && a0 < 1) {
		return ElectionResult{}, fmt.Errorf("live: A0 = %g outside (0, 1)", a0)
	}
	meanDelay := cfg.MeanDelay
	if meanDelay == 0 {
		meanDelay = 200 * time.Microsecond
	}
	tickEvery := cfg.TickEvery
	if tickEvery == 0 {
		tickEvery = meanDelay
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}

	n := cfg.N
	root := rng.New(cfg.Seed)
	delayDist := dist.NewExponential(float64(meanDelay))

	inboxes := make([]chan message, n)
	for i := range inboxes {
		inboxes[i] = make(chan message, 1)
	}

	var (
		messages  atomic.Uint64
		leaderIdx atomic.Int64
		leaders   atomic.Int64
		stop      = make(chan struct{}) // closed to tell everyone to quit
		elected   = make(chan struct{}) // closed once by the winner
		electOnce sync.Once
		senders   sync.WaitGroup // in-flight delay goroutines
		nodeWG    sync.WaitGroup
	)
	leaderIdx.Store(-1)

	// send models one link transmission: sleep a sampled delay, then
	// deliver (unless the run is over). Each message gets an independent
	// goroutine, so later messages can overtake earlier ones — the
	// paper's arbitrary per-pair ordering.
	send := func(from int, m message, r *rng.Source, delayNs float64) {
		messages.Add(1)
		senders.Add(1)
		go func() {
			defer senders.Done()
			timer := time.NewTimer(time.Duration(delayNs))
			defer timer.Stop()
			select {
			case <-timer.C:
			case <-stop:
				return
			}
			select {
			case inboxes[(from+1)%n] <- m:
			case <-stop:
			}
		}()
	}

	runNode := func(i int, r *rng.Source) {
		defer nodeWG.Done()
		state := stIdle
		d := 1
		ticker := time.NewTicker(tickEvery)
		defer ticker.Stop()
		// Pre-sample delays on the node's own stream to avoid sharing r
		// with the sender goroutines.
		nextDelay := func() float64 { return delayDist.Sample(r) }

		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if state != stIdle {
					continue
				}
				p := 1 - pow1m(a0, d)
				if r.Float64() < p {
					state = stActive
					send(i, message{hop: 1}, r, nextDelay())
				}
			case m := <-inboxes[i]:
				if m.hop > d {
					d = m.hop
				}
				switch state {
				case stIdle:
					state = stPassive
					send(i, message{hop: d + 1}, r, nextDelay())
				case stPassive:
					send(i, message{hop: d + 1}, r, nextDelay())
				case stActive:
					if m.hop == n {
						state = stLeader
						leaders.Add(1)
						leaderIdx.Store(int64(i))
						electOnce.Do(func() { close(elected) })
					} else {
						state = stIdle
					}
				case stLeader:
					// Residual traffic; purge.
				}
			}
		}
	}

	start := time.Now()
	nodeWG.Add(n)
	for i := 0; i < n; i++ {
		go runNode(i, root.DeriveIndexed("live-node", i))
	}

	var err error
	select {
	case <-elected:
	case <-time.After(timeout):
		err = errors.New("live: election timed out")
	}
	elapsed := time.Since(start)
	close(stop)
	nodeWG.Wait()
	senders.Wait()

	if err != nil {
		return ElectionResult{}, err
	}
	return ElectionResult{
		LeaderIndex: int(leaderIdx.Load()),
		Leaders:     int(leaders.Load()),
		Messages:    messages.Load(),
		Elapsed:     elapsed,
	}, nil
}

// pow1m computes (1-a0)^d without math.Pow for small integer d.
func pow1m(a0 float64, d int) float64 {
	out := 1.0
	base := 1 - a0
	for ; d > 0; d-- {
		out *= base
	}
	return out
}
