package live

import (
	"math"
	"testing"
	"time"
)

func TestLiveElectionElectsExactlyOneLeader(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		res, err := RunElection(ElectionConfig{
			N:         5,
			MeanDelay: 100 * time.Microsecond,
			Seed:      seed,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Leaders != 1 {
			t.Fatalf("seed %d: %d leaders under real concurrency", seed, res.Leaders)
		}
		if res.LeaderIndex < 0 || res.LeaderIndex >= 5 {
			t.Fatalf("seed %d: leader index %d", seed, res.LeaderIndex)
		}
		if res.Messages < 5 {
			t.Fatalf("seed %d: only %d messages — the winning loop alone needs n", seed, res.Messages)
		}
	}
}

func TestLiveElectionHighContention(t *testing.T) {
	// A large A0 forces many simultaneous activations and knockouts; the
	// safety property must survive real scheduler interleavings.
	for seed := uint64(0); seed < 5; seed++ {
		res, err := RunElection(ElectionConfig{
			N:         6,
			A0:        0.3,
			MeanDelay: 50 * time.Microsecond,
			Seed:      seed,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Leaders != 1 {
			t.Fatalf("seed %d: %d leaders", seed, res.Leaders)
		}
	}
}

func TestLiveElectionLargerRing(t *testing.T) {
	res, err := RunElection(ElectionConfig{
		N:         16,
		A0:        0.02,
		MeanDelay: 50 * time.Microsecond,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Leaders != 1 {
		t.Fatalf("%d leaders", res.Leaders)
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not measured")
	}
}

func TestLiveValidation(t *testing.T) {
	if _, err := RunElection(ElectionConfig{N: 1}); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := RunElection(ElectionConfig{N: 4, A0: 1.5}); err == nil {
		t.Fatal("A0=1.5 accepted")
	}
}

func TestLiveTimeout(t *testing.T) {
	// An absurdly small A0 with a tiny timeout must abort cleanly (and
	// not leak goroutines — the race detector and -count runs would show
	// leaks as flakiness).
	_, err := RunElection(ElectionConfig{
		N:         4,
		A0:        1e-12,
		MeanDelay: time.Millisecond,
		Timeout:   30 * time.Millisecond,
		Seed:      1,
	})
	if err == nil {
		t.Fatal("expected timeout")
	}
}

func TestPow1m(t *testing.T) {
	for _, d := range []int{1, 2, 5, 10} {
		want := math.Pow(0.7, float64(d))
		if got := pow1m(0.3, d); math.Abs(got-want) > 1e-12 {
			t.Fatalf("pow1m(0.3, %d) = %v, want %v", d, got, want)
		}
	}
	if pow1m(0.3, 0) != 1 {
		t.Fatal("pow1m(_, 0) must be 1")
	}
}
