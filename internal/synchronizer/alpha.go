package synchronizer

import (
	"fmt"

	"abenet/internal/network"
	"abenet/internal/syncnet"
	"abenet/internal/topology"
)

// alphaAck acknowledges one round-r envelope back to its sender.
type alphaAck struct {
	Round int
}

// alphaSafe announces that all of the sender's round-r envelopes have been
// acknowledged — i.e. delivered.
type alphaSafe struct {
	Round int
}

// alphaNode wraps a synchronous protocol with Awerbuch's α-synchronizer on
// a bidirectional graph:
//
//	round r: send an envelope on every edge; ack every received envelope;
//	when all own envelopes are acked, broadcast safe(r); when safe(r) has
//	arrived from every neighbour, start round r+1.
//
// Cost: 3 messages per directed edge per round (envelope, ack, safe) —
// Θ(|E|) per round, the classic synchronizer trade-off the paper contrasts
// with native ABE algorithms.
type alphaNode struct {
	proto syncnet.Node

	round     int
	completed int
	inDegree  int
	outDegree int

	// reversePort[p] is the out-port that reaches the neighbour whose
	// envelopes arrive on in-port p.
	reversePort []int

	inbox     map[int][]syncnet.Message
	ackCount  map[int]int
	safeCount map[int]int
	safeSent  map[int]bool

	outbox    [][]any
	payloads  uint64
	maxRounds int
}

var _ network.Node = (*alphaNode)(nil)
var _ roundReporter = (*alphaNode)(nil)

// newAlphaNode wraps proto for node i of the bidirectional graph g.
func newAlphaNode(i int, proto syncnet.Node, g *topology.Graph) (network.Node, roundReporter) {
	if proto == nil {
		panic(fmt.Sprintf("synchronizer: nil protocol for node %d", i))
	}
	in := g.In(i)
	out := g.Out(i)
	outPortOf := make(map[int]int, len(out))
	for port, v := range out {
		outPortOf[v] = port
	}
	reverse := make([]int, len(in))
	for p, u := range in {
		port, ok := outPortOf[u]
		if !ok {
			panic(fmt.Sprintf("synchronizer: alpha graph not bidirectional at %d<-%d", i, u))
		}
		reverse[p] = port
	}
	n := &alphaNode{
		proto:       proto,
		inDegree:    len(in),
		outDegree:   len(out),
		reversePort: reverse,
		inbox:       make(map[int][]syncnet.Message),
		ackCount:    make(map[int]int),
		safeCount:   make(map[int]int),
		safeSent:    make(map[int]bool),
		outbox:      make([][]any, len(out)),
	}
	return n, n
}

func (n *alphaNode) completedRounds() int { return n.completed }
func (n *alphaNode) payloadCount() uint64 { return n.payloads }
func (n *alphaNode) setMaxRounds(r int)   { n.maxRounds = r }

// Init implements network.Node.
func (n *alphaNode) Init(ctx *network.Context) {
	n.executeRound(ctx)
}

// OnTimer implements network.Node; α is message-driven.
func (n *alphaNode) OnTimer(*network.Context, int) {}

// OnMessage implements network.Node.
func (n *alphaNode) OnMessage(ctx *network.Context, inPort int, payload any) {
	switch m := payload.(type) {
	case envelope:
		for _, p := range m.Payloads {
			n.inbox[m.Round+1] = append(n.inbox[m.Round+1], syncnet.Message{InPort: inPort, Payload: p})
		}
		ctx.Send(n.reversePort[inPort], alphaAck{Round: m.Round})
	case alphaAck:
		n.ackCount[m.Round]++
		if n.ackCount[m.Round] == n.outDegree && !n.safeSent[m.Round] {
			n.safeSent[m.Round] = true
			delete(n.ackCount, m.Round)
			for port := 0; port < n.outDegree; port++ {
				ctx.Send(port, alphaSafe{Round: m.Round})
			}
		}
	case alphaSafe:
		n.safeCount[m.Round]++
		for n.safeCount[n.round-1] == n.inDegree {
			delete(n.safeCount, n.round-1)
			delete(n.safeSent, n.round-1)
			if !n.executeRound(ctx) {
				return
			}
		}
	default:
		panic(fmt.Sprintf("synchronizer: foreign payload %T", payload))
	}
}

// executeRound runs the protocol round and sends the round's envelopes. It
// reports whether the round actually ran.
func (n *alphaNode) executeRound(ctx *network.Context) bool {
	if n.maxRounds > 0 && n.round >= n.maxRounds {
		ctx.StopNetwork(budgetStopCause)
		return false
	}
	inbox := n.inbox[n.round]
	delete(n.inbox, n.round)
	sortInbox(inbox)

	pctx := &protoContext{net: ctx, sendFunc: func(outPort int, payload any) {
		if outPort < 0 || outPort >= len(n.outbox) {
			panic(fmt.Sprintf("synchronizer: send on out-port %d of %d", outPort, len(n.outbox)))
		}
		n.outbox[outPort] = append(n.outbox[outPort], payload)
		n.payloads++
	}}
	n.proto.Round(pctx, n.round, inbox)

	for port := range n.outbox {
		ctx.Send(port, envelope{Round: n.round, Payloads: n.outbox[port]})
		n.outbox[port] = nil
	}
	n.round++
	n.completed++
	return true
}
