package synchronizer

import (
	"testing"

	"abenet/internal/channel"
	"abenet/internal/dist"
	"abenet/internal/syncnet"
	"abenet/internal/topology"
)

func TestBetaPreservesSynchronousSemantics(t *testing.T) {
	res, protos := runCounter(t, KindBeta, topology.BiRing(5), 10, 1)
	if !res.Stopped {
		t.Fatalf("run did not stop: %+v", res)
	}
	for i, p := range protos {
		// β releases rounds globally, so all nodes stay within one round
		// of each other.
		if len(p.inboxes) < 9 {
			t.Fatalf("node %d ran only %d rounds", i, len(p.inboxes))
		}
		for r := 1; r < len(p.inboxes); r++ {
			inbox := p.inboxes[r]
			if len(inbox) != 2 {
				t.Fatalf("node %d round %d inbox size %d, want 2", i, r, len(inbox))
			}
			for _, m := range inbox {
				v, ok := m.Payload.(int)
				if !ok || v != r-1 {
					t.Fatalf("node %d round %d payload %v, want %d", i, r, m.Payload, r-1)
				}
			}
		}
	}
}

func TestBetaOnVariousTopologies(t *testing.T) {
	graphs := map[string]*topology.Graph{
		"biring8":    topology.BiRing(8),
		"complete6":  topology.Complete(6),
		"hypercube3": topology.Hypercube(3),
		"star8":      topology.Star(8),
		"line6":      topology.Line(6),
	}
	for name, g := range graphs {
		res, _ := runCounter(t, KindBeta, g, 12, 2)
		if !res.Stopped {
			t.Fatalf("%s: did not stop: %+v", name, res)
		}
		if res.MessagesPerRound < float64(g.N())-1e-9 {
			t.Errorf("%s: %.2f msgs/round < n = %d — Theorem 1 bound broken",
				name, res.MessagesPerRound, g.N())
		}
	}
}

func TestBetaCheaperThanAlphaOnDenseGraphs(t *testing.T) {
	g := topology.Complete(10) // |E| = 90 directed edges
	alphaRes, _ := runCounter(t, KindAlpha, g, 20, 3)
	betaRes, _ := runCounter(t, KindBeta, g, 20, 3)
	if betaRes.MessagesPerRound >= alphaRes.MessagesPerRound {
		t.Fatalf("beta (%.1f/round) should beat alpha (%.1f/round) on dense graphs",
			betaRes.MessagesPerRound, alphaRes.MessagesPerRound)
	}
}

func TestBetaCostFormula(t *testing.T) {
	// Heartbeat workload on biring(6): per round 12 payload envelopes +
	// 12 acks + 2*(6-1) tree messages = 34.
	g := topology.BiRing(6)
	res, _ := runCounter(t, KindBeta, g, 30, 4)
	want := 34.0
	if res.MessagesPerRound < want*0.9 || res.MessagesPerRound > want*1.15 {
		t.Fatalf("beta msgs/round = %.2f, want about %v", res.MessagesPerRound, want)
	}
}

func TestBetaRejectsUnidirectionalGraphs(t *testing.T) {
	_, err := Run(Config{Kind: KindBeta, Graph: topology.Ring(4)},
		func(int) syncnet.Node { return &counterProto{limit: 2} })
	if err == nil {
		t.Fatal("beta on a unidirectional ring accepted")
	}
}

func TestBetaWithHeavyTailedDelays(t *testing.T) {
	protos := make([]*counterProto, 6)
	res, err := Run(Config{
		Kind:  KindBeta,
		Graph: topology.BiRing(6),
		Links: channel.RandomDelayFactory(dist.ParetoWithMean(1, 1.5)),
		Seed:  5,
	}, func(i int) syncnet.Node {
		protos[i] = &counterProto{limit: 10}
		return protos[i]
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatalf("heavy tails broke beta: %+v", res)
	}
}

func TestBetaSparseProtocolSendsNoEmptyEnvelopes(t *testing.T) {
	// A silent protocol generates zero payloads; β's cost per round must
	// then be exactly the 2(n−1) tree messages, unlike round/α which pay
	// per edge regardless.
	g := topology.Complete(8)
	protos := make([]*silentProto, 8)
	res, err := Run(Config{Kind: KindBeta, Graph: g, Seed: 6}, func(i int) syncnet.Node {
		protos[i] = &silentProto{limit: 20}
		return protos[i]
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 * (8 - 1)
	if res.MessagesPerRound < want*0.9 || res.MessagesPerRound > want*1.2 {
		t.Fatalf("silent-beta msgs/round = %.2f, want about %v", res.MessagesPerRound, want)
	}
}

// silentProto never sends; it just counts rounds.
type silentProto struct{ limit, rounds int }

func (p *silentProto) Round(ctx syncnet.NodeContext, round int, _ []syncnet.Message) {
	p.rounds++
	if round >= p.limit {
		ctx.StopNetwork("done")
	}
}
