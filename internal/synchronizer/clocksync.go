package synchronizer

import (
	"errors"
	"fmt"
	"math"

	"abenet/internal/channel"
	"abenet/internal/clock"
	"abenet/internal/dist"
	"abenet/internal/network"
	"abenet/internal/simtime"
	"abenet/internal/topology"
)

// ClockSyncConfig configures a run of the clock-driven ABD synchronizer
// (Tel–Korach–Zaks style): every node starts round r at local time r·Period
// and sends one round-stamped message per out-edge, trusting that Period
// exceeds the worst-case message delay. On a genuine ABD network the trust
// is justified and the synchronizer needs no control messages at all; on
// an ABE network no finite Period is safe — Theorem 1's context — and the
// violation rate below quantifies exactly how unsafe a given Period is.
type ClockSyncConfig struct {
	// Graph is the topology.
	Graph *topology.Graph
	// Delay is the link delay distribution; nil means Exponential(1).
	// Use a bounded distribution (e.g. Uniform) to model an ABD network.
	Delay dist.Dist
	// Links optionally overrides Delay with a full link factory.
	Links channel.Factory
	// Period is the local time between round starts; must be positive.
	Period float64
	// Rounds is how many rounds each node runs; must be positive.
	Rounds int
	// Clocks is the clock model; nil means perfect clocks (the classic
	// ABD synchronizer setting).
	Clocks clock.Model
	// Seed drives the run.
	Seed uint64
	// Scheduler selects the kernel's event-queue implementation ("heap",
	// "calendar"); empty means the default heap. Byte-identical either way.
	Scheduler string
}

// ClockSyncResult reports the outcome of a clock-synchronized execution.
type ClockSyncResult struct {
	// Messages is the total number of (payload) messages: with a clock
	// synchronizer there is no control traffic at all.
	Messages uint64
	// Violations counts messages that arrived after their receiver had
	// already advanced past the sender's round — synchrony broken. On an
	// ABD network with Period above the hard delay bound this is 0; on an
	// ABE network it is positive with probability approaching 1 as the
	// run grows.
	Violations uint64
	// MaxLateness is the worst observed (receiver round − message round)
	// among violations.
	MaxLateness int
	// Time is the virtual completion time.
	Time float64
}

// ViolationRate returns Violations/Messages (0 for an empty run).
func (r ClockSyncResult) ViolationRate() float64 {
	if r.Messages == 0 {
		return 0
	}
	return float64(r.Violations) / float64(r.Messages)
}

// clockSyncNode emits one stamped heartbeat per out-edge per round and
// verifies the round discipline of everything it receives.
type clockSyncNode struct {
	period float64
	rounds int
	round  int

	violations  *uint64
	maxLateness *int
}

// heartbeat is the stamped per-round message.
type heartbeat struct {
	Round int
}

var _ network.Node = (*clockSyncNode)(nil)

// Init implements network.Node: schedule the first round start.
func (n *clockSyncNode) Init(ctx *network.Context) {
	ctx.SetLocalTimerFunc(n.period, 0)
}

// OnTimer implements network.Node: a round boundary on the local clock.
func (n *clockSyncNode) OnTimer(ctx *network.Context, _ int) {
	if n.round >= n.rounds {
		return // done; let in-flight traffic drain
	}
	for port := 0; port < ctx.OutDegree(); port++ {
		ctx.Send(port, heartbeat{Round: n.round})
	}
	n.round++
	if n.round < n.rounds {
		ctx.SetLocalTimerFunc(n.period, 0)
	}
}

// OnMessage implements network.Node: check the round discipline.
func (n *clockSyncNode) OnMessage(ctx *network.Context, _ int, payload any) {
	m, ok := payload.(heartbeat)
	if !ok {
		panic(fmt.Sprintf("synchronizer: foreign payload %T", payload))
	}
	// For round-m.Round data to be usable, it must arrive before this
	// node starts round m.Round+1 — i.e. while n.round <= m.Round+1
	// (n.round is the count of started rounds).
	if lateness := n.round - (m.Round + 1); lateness > 0 {
		*n.violations++
		if lateness > *n.maxLateness {
			*n.maxLateness = lateness
		}
	}
}

// RunClockSync executes the clock-driven synchronizer workload and reports
// its violation statistics.
func RunClockSync(cfg ClockSyncConfig) (ClockSyncResult, error) {
	if cfg.Graph == nil {
		return ClockSyncResult{}, errors.New("synchronizer: config needs a graph")
	}
	if !(cfg.Period > 0) || math.IsInf(cfg.Period, 0) || math.IsNaN(cfg.Period) {
		return ClockSyncResult{}, fmt.Errorf("synchronizer: period %g must be positive and finite", cfg.Period)
	}
	if cfg.Rounds < 1 {
		return ClockSyncResult{}, fmt.Errorf("synchronizer: rounds %d must be positive", cfg.Rounds)
	}
	links := cfg.Links
	if links == nil {
		delay := cfg.Delay
		if delay == nil {
			delay = dist.NewExponential(1)
		}
		links = channel.RandomDelayFactory(delay)
	}

	var violations uint64
	var maxLateness int
	net, err := network.New(network.Config{
		Graph:     cfg.Graph,
		Links:     links,
		Clocks:    cfg.Clocks,
		Seed:      cfg.Seed,
		Scheduler: cfg.Scheduler,
	}, func(int) network.Node {
		return &clockSyncNode{
			period:      cfg.Period,
			rounds:      cfg.Rounds,
			violations:  &violations,
			maxLateness: &maxLateness,
		}
	})
	if err != nil {
		return ClockSyncResult{}, err
	}
	if err := net.Run(simtime.Forever, 0); err != nil {
		return ClockSyncResult{}, err
	}
	return ClockSyncResult{
		Messages:    net.Metrics().MessagesSent,
		Violations:  violations,
		MaxLateness: maxLateness,
		Time:        float64(net.Now()),
	}, nil
}
