package synchronizer

import (
	"testing"

	"abenet/internal/channel"
	"abenet/internal/dist"
	"abenet/internal/syncnet"
	"abenet/internal/topology"
)

// TestBFSOverSynchronizers runs the synchronous BFS protocol over each
// message-driven synchronizer on an ABE network and checks the distances
// match the graph's true BFS — synchronous semantics preserved for a
// protocol that is not an election.
func TestBFSOverSynchronizers(t *testing.T) {
	g := topology.Hypercube(4)
	_, want := g.BFSTree(0)
	for _, kind := range []Kind{KindRound, KindAlpha, KindBeta, KindGamma} {
		nodes := make([]*syncnet.BFSNode, g.N())
		_, err := Run(Config{
			Kind:      kind,
			Graph:     g,
			Links:     channel.RandomDelayFactory(dist.NewExponential(1)),
			Seed:      3,
			MaxRounds: 64,
		}, func(i int) syncnet.Node {
			nodes[i] = syncnet.NewBFSNode(i == 0)
			return nodes[i]
		})
		// The BFS protocol never stops the network itself; hitting the
		// round budget is the expected exit.
		if err == nil {
			t.Fatalf("%v: expected round-budget exit for non-terminating protocol", kind)
		}
		for v, node := range nodes {
			if node.Dist != want[v] {
				t.Fatalf("%v: node %d distance %d, want %d", kind, v, node.Dist, want[v])
			}
		}
	}
}

// TestBFSDecisionLatencyByKind compares how many rounds each synchronizer
// needed — all identical (the round structure is what synchronizers
// preserve), while their message costs differ.
func TestBFSDecisionLatencyByKind(t *testing.T) {
	g := topology.BiRing(10)
	costs := map[Kind]float64{}
	for _, kind := range []Kind{KindRound, KindAlpha, KindBeta} {
		nodes := make([]*syncnet.BFSNode, g.N())
		res, err := Run(Config{
			Kind:      kind,
			Graph:     g,
			Seed:      4,
			MaxRounds: 20,
		}, func(i int) syncnet.Node {
			nodes[i] = syncnet.NewBFSNode(i == 0)
			return nodes[i]
		})
		if err == nil {
			t.Fatalf("%v: expected budget exit", kind)
		}
		for v, node := range nodes {
			wantRound := node.Dist
			if node.DecidedRound != wantRound {
				t.Fatalf("%v: node %d decided at round %d, want %d", kind, v, node.DecidedRound, wantRound)
			}
		}
		costs[kind] = res.MessagesPerRound
	}
	if !(costs[KindRound] < costs[KindBeta] && costs[KindBeta] < costs[KindAlpha]) {
		// On a sparse bidirectional ring: round = |E| = 2n = 20/round;
		// beta = payload+ack+tree <= ~2·payload + 2(n-1); alpha = 3|E|.
		t.Logf("per-round costs: %v (ordering depends on payload density)", costs)
	}
	for kind, c := range costs {
		if c < float64(g.N()) {
			t.Fatalf("%v: %.1f msgs/round below Theorem 1 bound %d", kind, c, g.N())
		}
	}
}
