package synchronizer

import (
	"math"
	"testing"

	"abenet/internal/channel"
	"abenet/internal/clock"
	"abenet/internal/dist"
	"abenet/internal/syncnet"
	"abenet/internal/topology"
)

// counterProto counts rounds and records its inbox history; it stops the
// network after Limit rounds.
type counterProto struct {
	limit   int
	inboxes [][]syncnet.Message
}

func (p *counterProto) Round(ctx syncnet.NodeContext, round int, inbox []syncnet.Message) {
	copied := make([]syncnet.Message, len(inbox))
	copy(copied, inbox)
	p.inboxes = append(p.inboxes, copied)
	if round >= p.limit {
		ctx.StopNetwork("rounds done")
		return
	}
	// Send the round number to every neighbour.
	for port := 0; port < ctx.OutDegree(); port++ {
		ctx.Send(port, round)
	}
}

func runCounter(t *testing.T, kind Kind, g *topology.Graph, limit int, seed uint64) (Result, []*counterProto) {
	t.Helper()
	protos := make([]*counterProto, g.N())
	res, err := Run(Config{Kind: kind, Graph: g, Seed: seed}, func(i int) syncnet.Node {
		protos[i] = &counterProto{limit: limit}
		return protos[i]
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, protos
}

func TestRoundSynchronizerPreservesSynchronousSemantics(t *testing.T) {
	// Every node must see, in round r+1, exactly the messages sent to it
	// in round r — here: one message per in-neighbour carrying r.
	res, protos := runCounter(t, KindRound, topology.Ring(5), 10, 1)
	if !res.Stopped {
		t.Fatalf("run did not stop: %+v", res)
	}
	for i, p := range protos {
		// On a unidirectional ring the synchronizer pipelines: there is
		// no back-pressure, so the round wavefront can spread up to n−1
		// rounds across the ring when the stopper halts it. Verify every
		// round that actually ran.
		if len(p.inboxes) < 10-4 {
			t.Fatalf("node %d ran %d rounds", i, len(p.inboxes))
		}
		if len(p.inboxes[0]) != 0 {
			t.Fatalf("node %d round 0 inbox %v", i, p.inboxes[0])
		}
		for r := 1; r < len(p.inboxes); r++ {
			inbox := p.inboxes[r]
			if len(inbox) != 1 {
				t.Fatalf("node %d round %d inbox size %d, want 1", i, r, len(inbox))
			}
			v, ok := inbox[0].Payload.(int)
			if !ok || v != r-1 {
				t.Fatalf("node %d round %d payload %v, want %d", i, r, inbox[0].Payload, r-1)
			}
		}
	}
}

func TestAlphaSynchronizerPreservesSynchronousSemantics(t *testing.T) {
	res, protos := runCounter(t, KindAlpha, topology.BiRing(4), 8, 2)
	if !res.Stopped {
		t.Fatalf("run did not stop: %+v", res)
	}
	for i, p := range protos {
		// The stopper halts the network mid-round; other nodes may have
		// executed one round fewer. Check every round that actually ran.
		if len(p.inboxes) < 7 {
			t.Fatalf("node %d ran only %d rounds", i, len(p.inboxes))
		}
		for r := 1; r < len(p.inboxes); r++ {
			inbox := p.inboxes[r]
			if len(inbox) != 2 {
				t.Fatalf("node %d round %d inbox size %d, want 2", i, r, len(inbox))
			}
			for _, m := range inbox {
				v, ok := m.Payload.(int)
				if !ok || v != r-1 {
					t.Fatalf("node %d round %d payload %v, want %d", i, r, m.Payload, r-1)
				}
			}
		}
	}
}

func TestTheorem1MessagesPerRoundAtLeastN(t *testing.T) {
	// Theorem 1: no synchronizer can use fewer than n messages per round.
	// Both our synchronizers must respect (and the round synchronizer
	// exactly meet, on rings) that bound.
	graphs := map[string]*topology.Graph{
		"ring8":      topology.Ring(8),
		"biring8":    topology.BiRing(8),
		"complete6":  topology.Complete(6),
		"hypercube3": topology.Hypercube(3),
	}
	for name, g := range graphs {
		res, _ := runCounter(t, KindRound, g, 20, 3)
		if res.MessagesPerRound < float64(g.N())-1e-9 {
			t.Errorf("%s/round: %.2f messages/round < n=%d — violates Theorem 1's bound", name, res.MessagesPerRound, g.N())
		}
	}
	for _, name := range []string{"biring8", "complete6", "hypercube3"} {
		g := graphs[name]
		res, _ := runCounter(t, KindAlpha, g, 20, 4)
		if res.MessagesPerRound < float64(g.N())-1e-9 {
			t.Errorf("%s/alpha: %.2f messages/round < n=%d", name, res.MessagesPerRound, g.N())
		}
	}
}

func TestRoundSynchronizerIsMessageOptimalOnRings(t *testing.T) {
	// On a unidirectional ring |E| = n, so the round synchronizer should
	// achieve Theorem 1's bound with equality (modulo the final partial
	// round when the protocol stops).
	g := topology.Ring(8)
	res, _ := runCounter(t, KindRound, g, 50, 5)
	if res.MessagesPerRound < 8-1e-9 || res.MessagesPerRound > 8*1.1 {
		t.Fatalf("messages/round = %.3f, want about n = 8", res.MessagesPerRound)
	}
}

func TestAlphaCostsThreePerEdgePerRound(t *testing.T) {
	g := topology.BiRing(6) // 12 directed edges
	res, _ := runCounter(t, KindAlpha, g, 30, 6)
	perRound := res.MessagesPerRound
	if perRound < 0.9*3*12 || perRound > 1.1*3*12 {
		t.Fatalf("alpha messages/round = %.2f, want about 36", perRound)
	}
}

func TestSynchronizersIndifferentToDelayShape(t *testing.T) {
	for _, d := range []dist.Dist{dist.NewDeterministic(1), dist.NewExponential(1), dist.ParetoWithMean(1, 2)} {
		protos := make([]*counterProto, 4)
		res, err := Run(Config{
			Kind:  KindRound,
			Graph: topology.Ring(4),
			Links: channel.RandomDelayFactory(d),
			Seed:  7,
		}, func(i int) syncnet.Node {
			protos[i] = &counterProto{limit: 12}
			return protos[i]
		})
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if !res.Stopped || res.Rounds < 12 {
			t.Fatalf("%s: %+v", d.Name(), res)
		}
	}
}

func TestSynchronizerIndifferentToClockDrift(t *testing.T) {
	protos := make([]*counterProto, 4)
	res, err := Run(Config{
		Kind:   KindRound,
		Graph:  topology.Ring(4),
		Clocks: clock.NewWanderingModel(0.25, 4, 1),
		Seed:   8,
	}, func(i int) syncnet.Node {
		protos[i] = &counterProto{limit: 12}
		return protos[i]
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatalf("drifting clocks broke the message-driven synchronizer: %+v", res)
	}
}

func TestRoundBudgetAborts(t *testing.T) {
	// A protocol that never stops must trip the budget error.
	_, err := Run(Config{
		Kind:      KindRound,
		Graph:     topology.Ring(3),
		MaxRounds: 25,
		Seed:      9,
	}, func(int) syncnet.Node {
		return &counterProto{limit: 1 << 30}
	})
	if err == nil {
		t.Fatal("runaway protocol did not trip the round budget")
	}
}

func TestRunValidation(t *testing.T) {
	mk := func(int) syncnet.Node { return &counterProto{limit: 1} }
	if _, err := Run(Config{Kind: KindRound}, mk); err == nil {
		t.Fatal("missing graph accepted")
	}
	if _, err := Run(Config{Kind: KindRound, Graph: topology.Ring(3)}, nil); err == nil {
		t.Fatal("nil constructor accepted")
	}
	if _, err := Run(Config{Kind: 99, Graph: topology.Ring(3)}, mk); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Run(Config{Kind: KindAlpha, Graph: topology.Ring(3)}, mk); err == nil {
		t.Fatal("alpha on unidirectional ring accepted")
	}
	disconnected := topology.New(3)
	disconnected.AddEdge(0, 1)
	disconnected.AddEdge(1, 0)
	if _, err := Run(Config{Kind: KindRound, Graph: disconnected}, mk); err == nil {
		t.Fatal("non-strongly-connected graph accepted")
	}
}

func TestClockSyncPerfectOnABDNetwork(t *testing.T) {
	// Bounded delays (uniform in [0, 1]) and Period > 1: the ABD
	// assumption holds, so there must be zero violations.
	res, err := RunClockSync(ClockSyncConfig{
		Graph:  topology.Ring(8),
		Delay:  dist.NewUniform(0, 1),
		Period: 1.05,
		Rounds: 200,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("ABD network produced %d violations", res.Violations)
	}
	if res.Messages != 8*200 {
		t.Fatalf("messages = %d, want 1600", res.Messages)
	}
}

func TestClockSyncFailsOnABENetwork(t *testing.T) {
	// Same expected delay (0.5) but exponential: P(delay > 1.05) ≈ 12%,
	// so violations must appear — the E9/Theorem 1 demonstration.
	res, err := RunClockSync(ClockSyncConfig{
		Graph:  topology.Ring(8),
		Delay:  dist.NewExponential(0.5),
		Period: 1.05,
		Rounds: 200,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 {
		t.Fatal("ABE network produced no violations — unbounded delays must break a clock synchronizer")
	}
	rate := res.ViolationRate()
	if rate < 0.01 || rate > 0.5 {
		t.Fatalf("violation rate %v implausible for exp(0.5) vs period 1.05", rate)
	}
}

func TestClockSyncViolationRateDropsWithPeriod(t *testing.T) {
	rate := func(period float64) float64 {
		res, err := RunClockSync(ClockSyncConfig{
			Graph:  topology.Ring(8),
			Delay:  dist.NewExponential(1),
			Period: period,
			Rounds: 300,
			Seed:   2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ViolationRate()
	}
	r2, r6 := rate(2), rate(6)
	if r6 >= r2 {
		t.Fatalf("longer period did not reduce violations: %v vs %v", r2, r6)
	}
	if r6 == 0 {
		// For exponential delays the violation probability never reaches
		// zero; with 2400 messages and P ≈ e^-5 ≈ 0.7% we expect hits.
		t.Log("note: no violations at period 6 in this sample (possible but unlikely)")
	}
}

func TestClockSyncExponentialTailMatchesTheory(t *testing.T) {
	// For exp(1) delays and period P the per-message violation probability
	// is roughly e^{-P} (arrival after the receiver's next tick). Check
	// the measured rate is the right order of magnitude.
	const period = 3.0
	res, err := RunClockSync(ClockSyncConfig{
		Graph:  topology.Ring(16),
		Delay:  dist.NewExponential(1),
		Period: period,
		Rounds: 400,
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-period)
	got := res.ViolationRate()
	if got < want/4 || got > want*4 {
		t.Fatalf("violation rate %v, want within 4x of e^-P = %v", got, want)
	}
}

func TestClockSyncValidation(t *testing.T) {
	if _, err := RunClockSync(ClockSyncConfig{Period: 1, Rounds: 1}); err == nil {
		t.Fatal("missing graph accepted")
	}
	if _, err := RunClockSync(ClockSyncConfig{Graph: topology.Ring(3), Period: 0, Rounds: 1}); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := RunClockSync(ClockSyncConfig{Graph: topology.Ring(3), Period: 1, Rounds: 0}); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

func TestKindString(t *testing.T) {
	if KindRound.String() != "round" || KindAlpha.String() != "alpha" {
		t.Fatal("kind strings wrong")
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind string empty")
	}
}
