package synchronizer

import (
	"fmt"
	"sort"

	"abenet/internal/network"
	"abenet/internal/syncnet"
	"abenet/internal/topology"
)

// envelope is the round synchronizer's only message: everything node u has
// for node v in round Round, possibly nothing.
type envelope struct {
	Round    int
	Payloads []any
}

// roundNode wraps a synchronous protocol with the minimal round-message
// synchronizer: one envelope per out-edge per round; advance to round r+1
// after receiving the round-r envelope from every in-neighbour.
//
// This costs exactly |E| messages per round — for strongly connected
// graphs |E| >= n, matching Awerbuch's (and the paper's Theorem 1) lower
// bound, so this synchronizer is message-optimal.
type roundNode struct {
	proto syncnet.Node

	round     int // round currently being assembled (protocol executed rounds < round)
	completed int // rounds fully executed
	inDegree  int

	// received[r] counts round-r envelopes; early envelopes buffer here.
	received map[int]int
	inbox    map[int][]syncnet.Message

	// outbox accumulates the protocol's sends during a round execution,
	// keyed by out-port.
	outbox [][]any

	payloads  uint64
	maxRounds int
}

var _ network.Node = (*roundNode)(nil)
var _ roundReporter = (*roundNode)(nil)

// newRoundNode wraps proto for node i of graph g.
func newRoundNode(i int, proto syncnet.Node, g *topology.Graph) (network.Node, roundReporter) {
	if proto == nil {
		panic(fmt.Sprintf("synchronizer: nil protocol for node %d", i))
	}
	n := &roundNode{
		proto:    proto,
		inDegree: len(g.In(i)),
		received: make(map[int]int),
		inbox:    make(map[int][]syncnet.Message),
		outbox:   make([][]any, g.OutDegree(i)),
	}
	return n, n
}

func (n *roundNode) completedRounds() int { return n.completed }
func (n *roundNode) payloadCount() uint64 { return n.payloads }
func (n *roundNode) setMaxRounds(r int)   { n.maxRounds = r }

// Init implements network.Node: execute round 0 (which has an empty inbox
// by definition) and flush its envelopes.
func (n *roundNode) Init(ctx *network.Context) {
	n.executeRound(ctx)
}

// OnTimer implements network.Node; the round synchronizer is message-driven.
func (n *roundNode) OnTimer(*network.Context, int) {}

// OnMessage implements network.Node.
func (n *roundNode) OnMessage(ctx *network.Context, inPort int, payload any) {
	env, ok := payload.(envelope)
	if !ok {
		panic(fmt.Sprintf("synchronizer: foreign payload %T", payload))
	}
	if env.Round < n.round-1 {
		// An envelope for a round we already finished assembling would
		// mean the synchronizer's invariant broke.
		panic(fmt.Sprintf("synchronizer: stale envelope for round %d at round %d", env.Round, n.round))
	}
	for _, p := range env.Payloads {
		n.inbox[env.Round+1] = append(n.inbox[env.Round+1], syncnet.Message{InPort: inPort, Payload: p})
	}
	n.received[env.Round]++
	// Drain as many rounds as are fully assembled. (Neighbours can be at
	// most one round ahead, but their envelopes may arrive reordered.)
	for n.received[n.round-1] == n.inDegree {
		delete(n.received, n.round-1)
		if !n.executeRound(ctx) {
			return
		}
	}
}

// executeRound runs the protocol for n.round and flushes one envelope per
// out-port. It reports whether the round actually ran (false once the
// round budget is exhausted).
func (n *roundNode) executeRound(ctx *network.Context) bool {
	if n.maxRounds > 0 && n.round >= n.maxRounds {
		ctx.StopNetwork(budgetStopCause)
		return false
	}
	inbox := n.inbox[n.round]
	delete(n.inbox, n.round)
	sortInbox(inbox)

	pctx := &protoContext{net: ctx, sendFunc: func(outPort int, payload any) {
		if outPort < 0 || outPort >= len(n.outbox) {
			panic(fmt.Sprintf("synchronizer: send on out-port %d of %d", outPort, len(n.outbox)))
		}
		n.outbox[outPort] = append(n.outbox[outPort], payload)
		n.payloads++
	}}
	n.proto.Round(pctx, n.round, inbox)

	for port := range n.outbox {
		ctx.Send(port, envelope{Round: n.round, Payloads: n.outbox[port]})
		n.outbox[port] = nil
	}
	n.round++
	n.completed++
	return true
}

// sortInbox gives the protocol a deterministic inbox order (by in-port,
// stable in arrival order) regardless of network arrival interleaving.
func sortInbox(inbox []syncnet.Message) {
	sort.SliceStable(inbox, func(i, j int) bool { return inbox[i].InPort < inbox[j].InPort })
}
