package synchronizer

import (
	"fmt"

	"abenet/internal/network"
	"abenet/internal/syncnet"
	"abenet/internal/topology"
)

// Message types of the γ-synchronizer. Within a cluster they mirror β
// (tree convergecast/broadcast); between clusters they mirror α over one
// designated "preferred" edge per adjacent cluster pair.
type (
	// gammaTreeSafe flows up a cluster tree: the sender's subtree is safe.
	gammaTreeSafe struct{ Round int }
	// gammaClusterDown flows down a cluster tree: the whole cluster is
	// safe; endpoints of preferred edges announce it to neighbours.
	gammaClusterDown struct{ Round int }
	// gammaNeighborSafe crosses a preferred edge: the sending cluster is
	// safe for the round.
	gammaNeighborSafe struct{ Round int }
	// gammaExtSafe relays a received neighbour-safety announcement up the
	// cluster tree to the root.
	gammaExtSafe struct{ Round int }
	// gammaGo flows down a cluster tree: release the next round.
	gammaGo struct{ Round int }
)

// gammaNode wraps a synchronous protocol with Awerbuch's γ-synchronizer:
// the graph is partitioned into BFS clusters of bounded radius; safety is
// detected per cluster with a β-style tree convergecast, exchanged between
// adjacent clusters α-style over one preferred edge per pair, and the
// round is released per cluster once the cluster and all its neighbour
// clusters are safe.
//
// Per round the cost is: payload acks + O(cluster tree edges) + one
// message each way per adjacent cluster pair (plus the tree relays of
// those announcements) — between β's 2(n−1) (one cluster) and α's 3|E|
// (every node its own cluster), tunable by the cluster radius.
type gammaNode struct {
	proto syncnet.Node

	round     int
	completed int

	reversePort []int

	// Cluster tree geometry.
	parentPort int // -1 at the cluster root
	childPorts []int
	// preferredPorts are out-ports of preferred inter-cluster edges
	// incident to this node.
	preferredPorts []int
	// adjacentClusters is set at the root: how many neighbour clusters
	// must report safe each round.
	adjacentClusters int
	// clusterHasPreferred reports whether any node of this cluster is an
	// endpoint of a preferred edge; if not, the cluster-safe broadcast is
	// pointless and skipped (making single-cluster γ cost exactly β).
	clusterHasPreferred bool

	inbox        map[int][]syncnet.Message
	sent         map[int]int
	acked        map[int]int
	childSafe    map[int]int
	treeSafeSent map[int]bool
	extSafe      map[int]int
	pendingGo    map[int]bool

	outbox    [][]any
	payloads  uint64
	maxRounds int
}

var _ network.Node = (*gammaNode)(nil)
var _ roundReporter = (*gammaNode)(nil)

// gammaGeometry is the per-node precomputed clustering data.
type gammaGeometry struct {
	parentPort          []int
	childPorts          [][]int
	preferredPorts      [][]int
	adjacentClusters    []int
	clusterHasPreferred []bool
}

// buildGammaGeometry partitions g into BFS clusters of the given radius
// and derives per-node tree and preferred-edge ports.
func buildGammaGeometry(g *topology.Graph, radius int) gammaGeometry {
	n := g.N()
	cluster := make([]int, n)
	parent := make([]int, n)
	for i := range cluster {
		cluster[i] = -1
		parent[i] = -1
	}
	clusters := 0
	for start := 0; start < n; start++ {
		if cluster[start] != -1 {
			continue
		}
		id := clusters
		clusters++
		cluster[start] = id
		depth := map[int]int{start: 0}
		queue := []int{start}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			if depth[u] == radius {
				continue
			}
			g.ForEachOut(u, func(v int) {
				if cluster[v] == -1 {
					cluster[v] = id
					parent[v] = u
					depth[v] = depth[u] + 1
					queue = append(queue, v)
				}
			})
		}
	}

	outPortOf := make([]map[int]int, n)
	for u := 0; u < n; u++ {
		out := g.Out(u)
		outPortOf[u] = make(map[int]int, len(out))
		for port, v := range out {
			outPortOf[u][v] = port
		}
	}

	geo := gammaGeometry{
		parentPort:          make([]int, n),
		childPorts:          make([][]int, n),
		preferredPorts:      make([][]int, n),
		adjacentClusters:    make([]int, n),
		clusterHasPreferred: make([]bool, n),
	}
	for u := 0; u < n; u++ {
		geo.parentPort[u] = -1
		if parent[u] != -1 {
			port, ok := outPortOf[u][parent[u]]
			if !ok {
				panic(fmt.Sprintf("synchronizer: gamma graph not bidirectional at %d->%d", u, parent[u]))
			}
			geo.parentPort[u] = port
		}
	}
	for v := 0; v < n; v++ {
		if parent[v] != -1 {
			u := parent[v]
			geo.childPorts[u] = append(geo.childPorts[u], outPortOf[u][v])
		}
	}

	// One preferred (undirected) edge per adjacent cluster pair: the
	// lexicographically smallest crossing edge.
	type pair struct{ a, b int }
	preferred := map[pair][2]int{}
	for u := 0; u < n; u++ {
		g.ForEachOut(u, func(v int) {
			cu, cv := cluster[u], cluster[v]
			if cu == cv {
				return
			}
			p := pair{a: cu, b: cv}
			if p.a > p.b {
				p.a, p.b = p.b, p.a
			}
			lo, hi := u, v
			if lo > hi {
				lo, hi = hi, lo
			}
			if cur, ok := preferred[p]; !ok || lo < cur[0] || (lo == cur[0] && hi < cur[1]) {
				preferred[p] = [2]int{lo, hi}
			}
		})
	}
	// Find each cluster's root (the node with no parent in its cluster).
	rootOf := make([]int, clusters)
	for u := 0; u < n; u++ {
		if parent[u] == -1 {
			rootOf[cluster[u]] = u
		}
	}
	clusterPreferred := make([]bool, clusters)
	for p, edge := range preferred {
		u, v := edge[0], edge[1]
		geo.preferredPorts[u] = append(geo.preferredPorts[u], outPortOf[u][v])
		geo.preferredPorts[v] = append(geo.preferredPorts[v], outPortOf[v][u])
		geo.adjacentClusters[rootOf[p.a]]++
		geo.adjacentClusters[rootOf[p.b]]++
		clusterPreferred[p.a] = true
		clusterPreferred[p.b] = true
	}
	for u := 0; u < n; u++ {
		geo.clusterHasPreferred[u] = clusterPreferred[cluster[u]]
	}
	return geo
}

// makeGammaWrap precomputes the clustering and returns the per-node
// wrapper factory.
func makeGammaWrap(g *topology.Graph, radius int) func(i int, proto syncnet.Node, _ *topology.Graph) (network.Node, roundReporter) {
	if radius < 1 {
		radius = 2
	}
	geo := buildGammaGeometry(g, radius)
	return func(i int, proto syncnet.Node, _ *topology.Graph) (network.Node, roundReporter) {
		if proto == nil {
			panic(fmt.Sprintf("synchronizer: nil protocol for node %d", i))
		}
		out := g.Out(i)
		outPortOf := make(map[int]int, len(out))
		for port, v := range out {
			outPortOf[v] = port
		}
		in := g.In(i)
		reverse := make([]int, len(in))
		for p, u := range in {
			port, ok := outPortOf[u]
			if !ok {
				panic(fmt.Sprintf("synchronizer: gamma graph not bidirectional at %d<-%d", i, u))
			}
			reverse[p] = port
		}
		n := &gammaNode{
			proto:               proto,
			reversePort:         reverse,
			parentPort:          geo.parentPort[i],
			childPorts:          geo.childPorts[i],
			preferredPorts:      geo.preferredPorts[i],
			adjacentClusters:    geo.adjacentClusters[i],
			clusterHasPreferred: geo.clusterHasPreferred[i],
			inbox:               make(map[int][]syncnet.Message),
			sent:                make(map[int]int),
			acked:               make(map[int]int),
			childSafe:           make(map[int]int),
			treeSafeSent:        make(map[int]bool),
			extSafe:             make(map[int]int),
			pendingGo:           make(map[int]bool),
			outbox:              make([][]any, len(out)),
		}
		return n, n
	}
}

func (n *gammaNode) completedRounds() int { return n.completed }
func (n *gammaNode) payloadCount() uint64 { return n.payloads }
func (n *gammaNode) setMaxRounds(r int)   { n.maxRounds = r }

// Init implements network.Node.
func (n *gammaNode) Init(ctx *network.Context) {
	if n.executeRound(ctx) {
		n.tryTreeSafe(ctx, 0)
	}
}

// OnTimer implements network.Node; γ is message-driven.
func (n *gammaNode) OnTimer(*network.Context, int) {}

// OnMessage implements network.Node.
func (n *gammaNode) OnMessage(ctx *network.Context, inPort int, payload any) {
	switch m := payload.(type) {
	case envelope:
		for _, p := range m.Payloads {
			n.inbox[m.Round+1] = append(n.inbox[m.Round+1], syncnet.Message{InPort: inPort, Payload: p})
		}
		ctx.Send(n.reversePort[inPort], alphaAck{Round: m.Round})
	case alphaAck:
		n.acked[m.Round]++
		n.tryTreeSafe(ctx, m.Round)
	case gammaTreeSafe:
		n.childSafe[m.Round]++
		n.tryTreeSafe(ctx, m.Round)
	case gammaClusterDown:
		n.onClusterSafe(ctx, m.Round)
	case gammaNeighborSafe:
		// A neighbouring cluster is safe; deliver the fact to our root.
		if n.parentPort < 0 {
			n.extSafe[m.Round]++
			n.tryGo(ctx, m.Round)
		} else {
			ctx.Send(n.parentPort, gammaExtSafe{Round: m.Round})
		}
	case gammaExtSafe:
		if n.parentPort < 0 {
			n.extSafe[m.Round]++
			n.tryGo(ctx, m.Round)
		} else {
			ctx.Send(n.parentPort, gammaExtSafe{Round: m.Round})
		}
	case gammaGo:
		n.pendingGo[m.Round] = true
		for n.pendingGo[n.round-1] {
			r := n.round - 1
			delete(n.pendingGo, r)
			for _, port := range n.childPorts {
				ctx.Send(port, gammaGo{Round: r})
			}
			if !n.executeRound(ctx) {
				return
			}
			n.tryTreeSafe(ctx, n.round-1)
		}
	default:
		panic(fmt.Sprintf("synchronizer: foreign payload %T", payload))
	}
}

// tryTreeSafe reports subtree safety up the cluster tree once complete;
// at the root it marks the whole cluster safe.
func (n *gammaNode) tryTreeSafe(ctx *network.Context, r int) {
	if n.treeSafeSent[r] || r != n.round-1 {
		return
	}
	if n.acked[r] != n.sent[r] || n.childSafe[r] != len(n.childPorts) {
		return
	}
	n.treeSafeSent[r] = true
	delete(n.acked, r)
	delete(n.sent, r)
	delete(n.childSafe, r)
	if n.parentPort >= 0 {
		ctx.Send(n.parentPort, gammaTreeSafe{Round: r})
		return
	}
	// Root: the cluster is safe.
	n.onClusterSafe(ctx, r)
	n.tryGo(ctx, r)
}

// onClusterSafe propagates cluster safety down the tree and announces it
// over this node's preferred edges. Clusters without preferred edges
// (single-cluster partitions) skip the broadcast entirely — γ then costs
// exactly β.
func (n *gammaNode) onClusterSafe(ctx *network.Context, r int) {
	if !n.clusterHasPreferred {
		return
	}
	for _, port := range n.childPorts {
		ctx.Send(port, gammaClusterDown{Round: r})
	}
	for _, port := range n.preferredPorts {
		ctx.Send(port, gammaNeighborSafe{Round: r})
	}
}

// tryGo releases round r+1 cluster-wide once the cluster and all adjacent
// clusters are safe for r. Only the cluster root calls this.
func (n *gammaNode) tryGo(ctx *network.Context, r int) {
	if r != n.round-1 || !n.treeSafeSent[r] {
		return
	}
	if n.extSafe[r] != n.adjacentClusters {
		return
	}
	delete(n.extSafe, r)
	delete(n.treeSafeSent, r)
	for _, port := range n.childPorts {
		ctx.Send(port, gammaGo{Round: r})
	}
	if n.executeRound(ctx) {
		n.tryTreeSafe(ctx, n.round-1)
	}
}

// executeRound runs the protocol round; like β, only envelopes that carry
// payloads are sent.
func (n *gammaNode) executeRound(ctx *network.Context) bool {
	if n.maxRounds > 0 && n.round >= n.maxRounds {
		ctx.StopNetwork(budgetStopCause)
		return false
	}
	inbox := n.inbox[n.round]
	delete(n.inbox, n.round)
	sortInbox(inbox)

	pctx := &protoContext{net: ctx, sendFunc: func(outPort int, payload any) {
		if outPort < 0 || outPort >= len(n.outbox) {
			panic(fmt.Sprintf("synchronizer: send on out-port %d of %d", outPort, len(n.outbox)))
		}
		n.outbox[outPort] = append(n.outbox[outPort], payload)
		n.payloads++
	}}
	n.proto.Round(pctx, n.round, inbox)

	count := 0
	for port := range n.outbox {
		if len(n.outbox[port]) == 0 {
			continue
		}
		ctx.Send(port, envelope{Round: n.round, Payloads: n.outbox[port]})
		n.outbox[port] = nil
		count++
	}
	n.sent[n.round] = count
	n.round++
	n.completed++
	return true
}
