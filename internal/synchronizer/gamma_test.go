package synchronizer

import (
	"testing"

	"abenet/internal/rng"
	"abenet/internal/syncnet"
	"abenet/internal/topology"
)

func runGamma(t *testing.T, g *topology.Graph, radius, limit int, seed uint64) (Result, []*counterProto) {
	t.Helper()
	protos := make([]*counterProto, g.N())
	res, err := Run(Config{
		Kind: KindGamma, Graph: g, ClusterRadius: radius, Seed: seed,
	}, func(i int) syncnet.Node {
		protos[i] = &counterProto{limit: limit}
		return protos[i]
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, protos
}

func TestGammaPreservesSynchronousSemantics(t *testing.T) {
	for _, radius := range []int{1, 2, 4} {
		res, protos := runGamma(t, topology.BiRing(9), radius, 8, 1)
		if !res.Stopped {
			t.Fatalf("radius %d: run did not stop: %+v", radius, res)
		}
		for i, p := range protos {
			if len(p.inboxes) < 6 {
				t.Fatalf("radius %d: node %d ran only %d rounds", radius, i, len(p.inboxes))
			}
			for r := 1; r < len(p.inboxes); r++ {
				inbox := p.inboxes[r]
				if len(inbox) != 2 {
					t.Fatalf("radius %d: node %d round %d inbox size %d, want 2", radius, i, r, len(inbox))
				}
				for _, m := range inbox {
					v, ok := m.Payload.(int)
					if !ok || v != r-1 {
						t.Fatalf("radius %d: node %d round %d payload %v, want %d", radius, i, r, m.Payload, r-1)
					}
				}
			}
		}
	}
}

func TestGammaOnVariousTopologies(t *testing.T) {
	graphs := map[string]*topology.Graph{
		"biring12":   topology.BiRing(12),
		"complete7":  topology.Complete(7),
		"hypercube4": topology.Hypercube(4),
		"torus3x4":   topology.Torus(3, 4),
		"star9":      topology.Star(9),
	}
	for name, g := range graphs {
		res, _ := runGamma(t, g, 2, 10, 2)
		if !res.Stopped {
			t.Fatalf("%s: did not stop: %+v", name, res)
		}
		if res.MessagesPerRound < float64(g.N())-1e-9 {
			t.Errorf("%s: %.2f msgs/round < n = %d — Theorem 1 bound broken",
				name, res.MessagesPerRound, g.N())
		}
	}
}

func TestGammaOnRandomGraphs(t *testing.T) {
	root := rng.New(17)
	for trial := 0; trial < 8; trial++ {
		n := 4 + root.Intn(20)
		g := topology.RandomConnected(n, 0.2, root.Derive("g"))
		res, _ := runGamma(t, g, 1+root.Intn(3), 8, uint64(trial))
		if !res.Stopped {
			t.Fatalf("trial %d (n=%d): did not stop: %+v", trial, n, res)
		}
	}
}

func TestGammaLargeRadiusReducesToBeta(t *testing.T) {
	// With radius >= diameter there is a single cluster: γ's cost should
	// equal β's exactly for the same workload.
	g := topology.BiRing(8)
	gammaRes, _ := runGamma(t, g, 10, 20, 3)
	betaRes, _ := runCounter(t, KindBeta, g, 20, 3)
	if gammaRes.MessagesPerRound != betaRes.MessagesPerRound {
		t.Fatalf("single-cluster γ (%.2f/round) differs from β (%.2f/round)",
			gammaRes.MessagesPerRound, betaRes.MessagesPerRound)
	}
}

func TestGammaInterpolatesBetweenAlphaAndBeta(t *testing.T) {
	// γ pays per tree edge and per adjacent cluster pair instead of α's
	// per-edge safe broadcast, so it wins where the graph is dense. Build
	// two 8-cliques joined by a bridge: radius-1 clustering yields two
	// clusters, and γ must land between β (single global tree) and α
	// (3 messages per edge).
	g := topology.New(16)
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			g.AddBiEdge(a, b)
			g.AddBiEdge(a+8, b+8)
		}
	}
	g.AddBiEdge(0, 8)
	alphaRes, _ := runCounter(t, KindAlpha, g, 12, 4)
	betaRes, _ := runCounter(t, KindBeta, g, 12, 4)
	gammaRes, _ := runGamma(t, g, 1, 12, 4)
	if gammaRes.MessagesPerRound >= alphaRes.MessagesPerRound {
		t.Fatalf("γ (%.1f/round) should beat α (%.1f/round) on dense graphs",
			gammaRes.MessagesPerRound, alphaRes.MessagesPerRound)
	}
	if gammaRes.MessagesPerRound < betaRes.MessagesPerRound*0.95 {
		t.Fatalf("γ (%.1f/round) implausibly below β (%.1f/round)",
			gammaRes.MessagesPerRound, betaRes.MessagesPerRound)
	}
}

func TestGammaRejectsUnidirectionalGraphs(t *testing.T) {
	_, err := Run(Config{Kind: KindGamma, Graph: topology.Ring(4)},
		func(int) syncnet.Node { return &counterProto{limit: 2} })
	if err == nil {
		t.Fatal("gamma on a unidirectional ring accepted")
	}
}

func TestGammaBFSOverIt(t *testing.T) {
	g := topology.Hypercube(3)
	_, want := g.BFSTree(0)
	nodes := make([]*syncnet.BFSNode, g.N())
	_, err := Run(Config{
		Kind:      KindGamma,
		Graph:     g,
		Seed:      5,
		MaxRounds: 32,
	}, func(i int) syncnet.Node {
		nodes[i] = syncnet.NewBFSNode(i == 0)
		return nodes[i]
	})
	if err == nil {
		t.Fatal("expected round-budget exit for non-terminating protocol")
	}
	for v, node := range nodes {
		if node.Dist != want[v] {
			t.Fatalf("node %d distance %d, want %d", v, node.Dist, want[v])
		}
	}
}
