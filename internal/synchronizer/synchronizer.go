// Package synchronizer implements synchronizers: algorithms that simulate a
// synchronous network on an asynchronous (here: ABE) one.
//
// The paper's Theorem 1 states that ABE networks of size n cannot be
// synchronised with fewer than n messages per round — Awerbuch's lower
// bound for asynchronous networks carries over because every asynchronous
// execution is also an ABE execution. This package provides the machinery
// to observe that cost, and its consequence ("we cannot run synchronous
// algorithms in ABE networks without losing the message complexity"):
//
//   - Round: the message-driven round synchronizer. Every node sends one
//     envelope per out-edge per round (payload or empty) and advances when
//     it has heard round r from all in-neighbours. Exactly |E| ≥ n
//     messages per round — it meets Awerbuch's bound, demonstrating the
//     bound is tight.
//   - Alpha: Awerbuch's α-synchronizer (payload + ack + safe per edge per
//     round) for bidirectional graphs — 3|E| messages per round, the
//     classic general-purpose synchronizer.
//   - Clock (clocksync.go): the Tel–Korach–Zaks style ABD synchronizer
//     that uses *zero* extra messages by trusting a hard delay bound —
//     and therefore cannot be correct on ABE networks, where no hard
//     bound exists (experiment E9 measures its round violations).
package synchronizer

import (
	"errors"
	"fmt"

	"abenet/internal/channel"
	"abenet/internal/clock"
	"abenet/internal/dist"
	"abenet/internal/network"
	"abenet/internal/rng"
	"abenet/internal/simtime"
	"abenet/internal/syncnet"
	"abenet/internal/topology"
)

// Kind selects a synchronizer construction.
type Kind int

// The message-driven synchronizers.
const (
	// KindRound is the minimal round-message synchronizer (|E|/round).
	KindRound Kind = iota + 1
	// KindAlpha is Awerbuch's α-synchronizer (3|E|/round), bidirectional
	// topologies only.
	KindAlpha
	// KindBeta is Awerbuch's β-synchronizer (payload acks + 2(n−1) tree
	// messages per round), bidirectional topologies only. Cheapest on
	// dense graphs, at the price of Ω(tree depth) round latency.
	KindBeta
	// KindGamma is Awerbuch's γ-synchronizer: β within BFS clusters of
	// bounded radius (Config.ClusterRadius), α-style safety exchange
	// between adjacent clusters over one preferred edge per pair. It
	// interpolates between α (radius 0-ish) and β (radius ≥ diameter),
	// trading messages against round latency. Bidirectional only.
	KindGamma
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRound:
		return "round"
	case KindAlpha:
		return "alpha"
	case KindBeta:
		return "beta"
	case KindGamma:
		return "gamma"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Config describes a synchronous protocol execution over an asynchronous
// network via a synchronizer.
type Config struct {
	// Kind selects the synchronizer; required.
	Kind Kind
	// Graph is the topology. Alpha requires a bidirectional graph.
	Graph *topology.Graph
	// Links is the asynchronous delay model; nil means Exponential(1).
	Links channel.Factory
	// Clocks is the local clock model; nil means perfect clocks. The
	// message-driven synchronizers never read clocks; the parameter
	// exists so experiments can show their indifference to drift.
	Clocks clock.Model
	// ClusterRadius is the γ-synchronizer's BFS cluster radius; 0 means 2.
	// Ignored by the other kinds.
	ClusterRadius int
	// MaxRounds aborts the run if the protocol has not stopped by then;
	// 0 means 10000.
	MaxRounds int
	// MaxEvents guards the kernel; 0 means 50e6.
	MaxEvents uint64
	// Seed drives all randomness.
	Seed uint64
	// Scheduler selects the kernel's event-queue implementation ("heap",
	// "calendar"); empty means the default heap. Byte-identical either way.
	Scheduler string
	// Anonymous forbids protocol identity reads.
	Anonymous bool
}

// Result summarises a synchronized execution.
type Result struct {
	// Rounds is the highest round any node completed.
	Rounds int
	// MinRounds is the number of rounds completed by every node.
	MinRounds int
	// Messages counts every network message, including synchronizer
	// control traffic.
	Messages uint64
	// PayloadMessages counts protocol payloads carried.
	PayloadMessages uint64
	// MessagesPerRound is Messages/MinRounds — the sustained per-round
	// message cost Theorem 1 lower bounds by n. MinRounds is the honest
	// denominator: when the protocol stops mid-round some nodes have not
	// executed the final round, and dividing by the maximum would
	// understate the sustained cost.
	MessagesPerRound float64
	// Time is the virtual completion time.
	Time float64
	// Stopped reports whether the protocol stopped the run (vs hitting
	// MaxRounds).
	Stopped bool
	// StopCause is the protocol's stop cause, if any.
	StopCause string
}

// Run executes makeNode-constructed synchronous protocol instances over the
// configured asynchronous network.
func Run(cfg Config, makeNode func(i int) syncnet.Node) (Result, error) {
	if cfg.Graph == nil {
		return Result{}, errors.New("synchronizer: config needs a graph")
	}
	if makeNode == nil {
		return Result{}, errors.New("synchronizer: nil node constructor")
	}
	if !cfg.Graph.IsStronglyConnected() {
		return Result{}, errors.New("synchronizer: graph must be strongly connected")
	}
	links := cfg.Links
	if links == nil {
		links = channel.RandomDelayFactory(dist.NewExponential(1))
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 10000
	}
	maxEvents := cfg.MaxEvents
	if maxEvents == 0 {
		maxEvents = 50_000_000
	}

	var wrap func(i int, proto syncnet.Node, g *topology.Graph) (network.Node, roundReporter)
	switch cfg.Kind {
	case KindRound:
		wrap = newRoundNode
	case KindAlpha:
		if err := requireBidirectional(cfg.Graph); err != nil {
			return Result{}, err
		}
		wrap = newAlphaNode
	case KindBeta:
		if err := requireBidirectional(cfg.Graph); err != nil {
			return Result{}, err
		}
		wrap = makeBetaWrap(cfg.Graph)
	case KindGamma:
		if err := requireBidirectional(cfg.Graph); err != nil {
			return Result{}, err
		}
		wrap = makeGammaWrap(cfg.Graph, cfg.ClusterRadius)
	default:
		return Result{}, fmt.Errorf("synchronizer: unknown kind %v", cfg.Kind)
	}

	reporters := make([]roundReporter, cfg.Graph.N())
	net, err := network.New(network.Config{
		Graph:     cfg.Graph,
		Links:     links,
		Clocks:    cfg.Clocks,
		Seed:      cfg.Seed,
		Scheduler: cfg.Scheduler,
		Anonymous: cfg.Anonymous,
	}, func(i int) network.Node {
		node, reporter := wrap(i, makeNode(i), cfg.Graph)
		reporters[i] = reporter
		return node
	})
	if err != nil {
		return Result{}, err
	}

	// Install the round budget: a watchdog node cannot exist, so each
	// wrapped node checks the budget as it advances.
	for _, r := range reporters {
		r.setMaxRounds(maxRounds)
	}

	if err := net.Run(simtime.Forever, maxEvents); err != nil {
		return Result{}, err
	}

	res := Result{
		Time:      float64(net.Now()),
		StopCause: net.StopCause(),
		Stopped:   net.StopCause() != "" && net.StopCause() != budgetStopCause,
	}
	for i, r := range reporters {
		c := r.completedRounds()
		if c > res.Rounds {
			res.Rounds = c
		}
		if i == 0 || c < res.MinRounds {
			res.MinRounds = c
		}
		res.PayloadMessages += r.payloadCount()
	}
	res.Messages = net.Metrics().MessagesSent
	if res.MinRounds > 0 {
		res.MessagesPerRound = float64(res.Messages) / float64(res.MinRounds)
	}
	if !res.Stopped && res.Rounds >= maxRounds {
		return res, fmt.Errorf("synchronizer: protocol did not stop within %d rounds", maxRounds)
	}
	return res, nil
}

// budgetStopCause marks a round-budget abort rather than a protocol stop.
const budgetStopCause = "synchronizer: round budget exhausted"

// roundReporter lets Run read progress out of wrapped nodes.
type roundReporter interface {
	completedRounds() int
	payloadCount() uint64
	setMaxRounds(r int)
}

func requireBidirectional(g *topology.Graph) error {
	for _, e := range g.Edges() {
		if !g.HasEdge(e.To, e.From) {
			return fmt.Errorf("synchronizer: alpha needs a bidirectional graph, missing %d->%d", e.To, e.From)
		}
	}
	return nil
}

// protoContext adapts the asynchronous network context plus synchronizer
// state into the syncnet.NodeContext the protocol sees.
type protoContext struct {
	net      *network.Context
	sendFunc func(outPort int, payload any)
}

var _ syncnet.NodeContext = (*protoContext)(nil)

func (c *protoContext) N() int                   { return c.net.N() }
func (c *protoContext) ID() int                  { return c.net.ID() }
func (c *protoContext) OutDegree() int           { return c.net.OutDegree() }
func (c *protoContext) Rand() *rng.Source        { return c.net.Rand() }
func (c *protoContext) StopNetwork(cause string) { c.net.StopNetwork(cause) }

func (c *protoContext) Send(outPort int, payload any) { c.sendFunc(outPort, payload) }
