package synchronizer

import (
	"fmt"

	"abenet/internal/network"
	"abenet/internal/syncnet"
	"abenet/internal/topology"
)

// betaSafe flows up the spanning tree: the sender's subtree is entirely
// safe for the round.
type betaSafe struct {
	Round int
}

// betaGo flows down the spanning tree: every node is safe, start the next
// round.
type betaGo struct {
	Round int
}

// betaNode wraps a synchronous protocol with Awerbuch's β-synchronizer on
// a bidirectional graph: payloads are acknowledged as in α, but instead of
// per-neighbour safe broadcasts, safety is convergecast up a global BFS
// spanning tree to the root, which then broadcasts the round release down
// the tree.
//
// Cost per round: one ack per payload plus exactly 2(n−1) tree messages —
// cheaper than α's 3|E| on dense graphs and still ≥ n, as Theorem 1
// demands. The price is latency: each round takes Ω(tree depth) time.
type betaNode struct {
	proto syncnet.Node

	round     int
	completed int

	// Tree geometry: parentPort is the out-port toward the parent
	// (-1 at the root); childPorts are out-ports toward children.
	parentPort  int
	childPorts  []int
	reversePort []int // in-port -> out-port toward that neighbour

	inbox     map[int][]syncnet.Message
	sent      map[int]int // envelopes sent per round
	acked     map[int]int
	childSafe map[int]int
	safeSent  map[int]bool
	pendingGo map[int]bool // go(r) that arrived before go(r-1) (non-FIFO links)

	outbox    [][]any
	payloads  uint64
	maxRounds int
}

var _ network.Node = (*betaNode)(nil)
var _ roundReporter = (*betaNode)(nil)

// makeBetaWrap precomputes the BFS spanning tree rooted at node 0 and
// returns the per-node wrapper factory.
func makeBetaWrap(g *topology.Graph) func(i int, proto syncnet.Node, _ *topology.Graph) (network.Node, roundReporter) {
	parent, _ := g.BFSTree(0)
	return func(i int, proto syncnet.Node, _ *topology.Graph) (network.Node, roundReporter) {
		if proto == nil {
			panic(fmt.Sprintf("synchronizer: nil protocol for node %d", i))
		}
		out := g.Out(i)
		outPortOf := make(map[int]int, len(out))
		for port, v := range out {
			outPortOf[v] = port
		}
		in := g.In(i)
		reverse := make([]int, len(in))
		for p, u := range in {
			port, ok := outPortOf[u]
			if !ok {
				panic(fmt.Sprintf("synchronizer: beta graph not bidirectional at %d<-%d", i, u))
			}
			reverse[p] = port
		}
		parentPort := -1
		if parent[i] != -1 {
			port, ok := outPortOf[parent[i]]
			if !ok {
				panic(fmt.Sprintf("synchronizer: no edge to BFS parent %d->%d", i, parent[i]))
			}
			parentPort = port
		}
		var childPorts []int
		for v := 0; v < g.N(); v++ {
			if parent[v] == i {
				port, ok := outPortOf[v]
				if !ok {
					panic(fmt.Sprintf("synchronizer: no edge to BFS child %d->%d", i, v))
				}
				childPorts = append(childPorts, port)
			}
		}
		n := &betaNode{
			proto:       proto,
			parentPort:  parentPort,
			childPorts:  childPorts,
			reversePort: reverse,
			inbox:       make(map[int][]syncnet.Message),
			sent:        make(map[int]int),
			acked:       make(map[int]int),
			childSafe:   make(map[int]int),
			safeSent:    make(map[int]bool),
			pendingGo:   make(map[int]bool),
			outbox:      make([][]any, len(out)),
		}
		return n, n
	}
}

func (n *betaNode) completedRounds() int { return n.completed }
func (n *betaNode) payloadCount() uint64 { return n.payloads }
func (n *betaNode) setMaxRounds(r int)   { n.maxRounds = r }

// Init implements network.Node.
func (n *betaNode) Init(ctx *network.Context) {
	if n.executeRound(ctx) {
		n.maybeSafe(ctx, 0)
	}
}

// OnTimer implements network.Node; β is message-driven.
func (n *betaNode) OnTimer(*network.Context, int) {}

// OnMessage implements network.Node.
func (n *betaNode) OnMessage(ctx *network.Context, inPort int, payload any) {
	switch m := payload.(type) {
	case envelope:
		for _, p := range m.Payloads {
			n.inbox[m.Round+1] = append(n.inbox[m.Round+1], syncnet.Message{InPort: inPort, Payload: p})
		}
		ctx.Send(n.reversePort[inPort], alphaAck{Round: m.Round})
	case alphaAck:
		n.acked[m.Round]++
		n.maybeSafe(ctx, m.Round)
	case betaSafe:
		n.childSafe[m.Round]++
		n.maybeSafe(ctx, m.Round)
	case betaGo:
		// Everyone is safe for m.Round: release the next round. Non-FIFO
		// links can deliver go(r) before go(r-1), so buffer and drain in
		// order.
		n.pendingGo[m.Round] = true
		for n.pendingGo[n.round-1] {
			r := n.round - 1
			delete(n.pendingGo, r)
			for _, port := range n.childPorts {
				ctx.Send(port, betaGo{Round: r})
			}
			if !n.executeRound(ctx) {
				return
			}
			n.maybeSafe(ctx, n.round-1)
		}
	default:
		panic(fmt.Sprintf("synchronizer: foreign payload %T", payload))
	}
}

// maybeSafe checks whether node's subtree is now entirely safe for round r
// and, if so, reports upward (or releases the round, at the root). Safety
// requires: the node has executed round r, all its round-r envelopes are
// acked, and every child subtree reported safe.
func (n *betaNode) maybeSafe(ctx *network.Context, r int) {
	if n.safeSent[r] || r != n.round-1 {
		return // not yet executed, or already reported
	}
	if n.acked[r] != n.sent[r] || n.childSafe[r] != len(n.childPorts) {
		return
	}
	n.safeSent[r] = true
	delete(n.acked, r)
	delete(n.sent, r)
	delete(n.childSafe, r)
	if n.parentPort >= 0 {
		ctx.Send(n.parentPort, betaSafe{Round: r})
		return
	}
	// Root: the whole network is safe for round r. Release r+1.
	for _, port := range n.childPorts {
		ctx.Send(port, betaGo{Round: r})
	}
	if n.executeRound(ctx) {
		n.maybeSafe(ctx, n.round-1)
	}
}

// executeRound runs the protocol round and sends only the envelopes that
// carry payloads (β needs no empty envelopes). It reports whether the
// round ran.
func (n *betaNode) executeRound(ctx *network.Context) bool {
	if n.maxRounds > 0 && n.round >= n.maxRounds {
		ctx.StopNetwork(budgetStopCause)
		return false
	}
	inbox := n.inbox[n.round]
	delete(n.inbox, n.round)
	sortInbox(inbox)

	pctx := &protoContext{net: ctx, sendFunc: func(outPort int, payload any) {
		if outPort < 0 || outPort >= len(n.outbox) {
			panic(fmt.Sprintf("synchronizer: send on out-port %d of %d", outPort, len(n.outbox)))
		}
		n.outbox[outPort] = append(n.outbox[outPort], payload)
		n.payloads++
	}}
	n.proto.Round(pctx, n.round, inbox)

	count := 0
	for port := range n.outbox {
		if len(n.outbox[port]) == 0 {
			continue
		}
		ctx.Send(port, envelope{Round: n.round, Payloads: n.outbox[port]})
		n.outbox[port] = nil
		count++
	}
	n.sent[n.round] = count
	n.round++
	n.completed++
	return true
}
