package sim

import "abenet/internal/simtime"

// heapScheduler is the default Scheduler: an intrusive 4-ary min-heap
// ordered by (at, seq) and stored in a single value slice — the slice
// doubles as the event pool, so steady-state scheduling allocates nothing.
// There is no container/heap and no interface boxing on the hot path.
//
// Cancellation marks the heap entry dead in place; dead entries are skipped
// on pop and compacted away wholesale once they outnumber the live ones, so
// cancel-heavy workloads (ARQ retransmit timers) cannot bloat the heap.
type heapScheduler struct {
	heap []event // 4-ary min-heap by (at, seq); the slice is the event pool
	live int     // scheduled, not cancelled — Pending() in O(1)
	dead int     // cancelled entries still occupying heap slots
}

func newHeapScheduler() *heapScheduler { return &heapScheduler{} }

func (h *heapScheduler) Name() string { return SchedulerHeap }

func (h *heapScheduler) Pending() int { return h.live }

func (h *heapScheduler) Len() int { return len(h.heap) }

func (h *heapScheduler) Schedule(ev event) {
	h.live++
	h.heap = append(h.heap, ev)
	h.siftUp(len(h.heap) - 1)
}

func (h *heapScheduler) PeekTime() (simtime.Time, bool) {
	h.dropDead()
	if len(h.heap) == 0 {
		return 0, false
	}
	return h.heap[0].at, true
}

func (h *heapScheduler) Pop() (event, bool) {
	h.dropDead()
	if len(h.heap) == 0 {
		return event{}, false
	}
	ev := h.popRoot()
	h.live--
	// Popping live events shrinks the live population too, so the dead
	// fraction can cross the compaction threshold here just as it can on
	// Cancel — without this, a cancel-then-run workload would carry its
	// dead entries until virtual time reached them.
	h.maybeCompact()
	return ev, true
}

func (h *heapScheduler) Cancel(t *Ticket) {
	ev := &h.heap[t.idx]
	ev.dead = true
	ev.fn = nil // release captured state promptly
	ev.afn = nil
	ev.ticket = nil
	h.live--
	h.dead++
	h.maybeCompact()
}

// dropDead discards cancelled events sitting at the heap root so the root
// is either live or the heap is empty.
func (h *heapScheduler) dropDead() {
	for len(h.heap) > 0 && h.heap[0].dead {
		h.popRoot()
		h.dead--
	}
}

// popRoot removes and returns the root event, maintaining the heap
// property and ticket back-pointers. The vacated slot is zeroed so the
// handler's captures are released.
func (h *heapScheduler) popRoot() event {
	ev := h.heap[0]
	n := len(h.heap) - 1
	if n > 0 {
		h.heap[0] = h.heap[n]
	}
	h.heap[n] = event{}
	h.heap = h.heap[:n]
	if n > 0 {
		h.siftDown(0) // also refreshes the moved entry's ticket index
	}
	return ev
}

// siftUp restores the heap property for the entry at index i by moving it
// towards the root, updating ticket back-pointers of displaced entries. It
// returns the entry's final index.
func (h *heapScheduler) siftUp(i int) int {
	ev := h.heap[i]
	for i > 0 {
		p := (i - 1) / 4
		if !less(&ev, &h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		if t := h.heap[i].ticket; t != nil {
			t.idx = i
		}
		i = p
	}
	h.heap[i] = ev
	if ev.ticket != nil {
		ev.ticket.idx = i
	}
	return i
}

// siftDown restores the heap property for the entry at index i by moving it
// towards the leaves, updating ticket back-pointers of displaced entries.
func (h *heapScheduler) siftDown(i int) {
	n := len(h.heap)
	ev := h.heap[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(&h.heap[j], &h.heap[m]) {
				m = j
			}
		}
		if !less(&h.heap[m], &ev) {
			break
		}
		h.heap[i] = h.heap[m]
		if t := h.heap[i].ticket; t != nil {
			t.idx = i
		}
		i = m
	}
	h.heap[i] = ev
	if ev.ticket != nil {
		ev.ticket.idx = i
	}
}

// maybeCompact sweeps cancelled entries out of the heap once they outnumber
// the live ones (and the heap is big enough for the sweep to pay off). The
// trigger depends only on counters, so compaction — like everything else
// here — is a deterministic function of the schedule.
func (h *heapScheduler) maybeCompact() {
	if len(h.heap) >= compactMinLen && h.dead > len(h.heap)/2 {
		h.compact()
	}
}

// compact removes every dead entry in one pass and re-establishes the heap
// property and ticket back-pointers. Pop order is unaffected: (at, seq)
// is a total order, so any heap over the same live set pops identically.
func (h *heapScheduler) compact() {
	liveEvents := h.heap[:0]
	for i := range h.heap {
		if !h.heap[i].dead {
			liveEvents = append(liveEvents, h.heap[i])
		}
	}
	for i := len(liveEvents); i < len(h.heap); i++ {
		h.heap[i] = event{} // release the vacated tail
	}
	h.heap = liveEvents
	h.dead = 0
	if n := len(h.heap); n > 1 {
		for i := (n - 2) / 4; i >= 0; i-- {
			h.siftDown(i)
		}
	}
	for i := range h.heap {
		if t := h.heap[i].ticket; t != nil {
			t.idx = i
		}
	}
}
