package sim

import (
	"testing"

	"abenet/internal/simtime"
)

// TestObserverFiresAfterEveryEvent pins the hook contract: the observer
// runs once per executed event, after the handler (so it sees the
// handler's effects, the advanced clock and the incremented counter), and
// setting nil detaches it.
func TestObserverFiresAfterEveryEvent(t *testing.T) {
	k := New()
	var seen []uint64
	var times []simtime.Time
	handlerRan := false
	k.SetObserver(func() {
		seen = append(seen, k.Executed())
		times = append(times, k.Now())
		if !handlerRan {
			t.Error("observer fired before the event handler")
		}
	})
	for i := 1; i <= 3; i++ {
		at := simtime.Time(float64(i))
		k.At(at, func() { handlerRan = true })
	}
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != 1 || seen[2] != 3 {
		t.Fatalf("observer saw executed counts %v, want [1 2 3]", seen)
	}
	if times[1] != 2 {
		t.Fatalf("observer saw time %v at event 2, want the event's instant", times[1])
	}

	k2 := New()
	fired := 0
	k2.SetObserver(func() { fired++ })
	k2.SetObserver(nil)
	k2.At(1, func() {})
	if err := k2.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("detached observer fired %d times", fired)
	}
}

// TestObserverSeesCancellations: cancelled events never execute, so the
// observer never fires for them.
func TestObserverSeesCancellations(t *testing.T) {
	k := New()
	fired := 0
	k.SetObserver(func() { fired++ })
	ev := k.At(2, func() { t.Error("cancelled event ran") })
	k.At(1, func() { ev.Cancel() })
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("observer fired %d times, want 1 (only the cancelling event ran)", fired)
	}
}
