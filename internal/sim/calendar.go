package sim

import (
	"sort"

	"abenet/internal/simtime"
)

// calendarScheduler is a calendar queue (Brown 1988; the same family as
// ns-3's calendar scheduler): a wheel of buckets, each covering one
// contiguous time window of width `width`, plus an unsorted overflow area
// for events beyond the wheel's horizon. Enqueue and dequeue are amortized
// O(1) — at million-node populations that beats the heap's O(log n)
// reshuffle per event, which is the point of having it.
//
// # Exact (at, seq) order
//
// Buckets partition [wheelStart, wheelEnd) into windows that are monotone
// in time, each bucket keeps its entries sorted by (at, seq), and events
// with equal instants always land in the same bucket (the bucket index is a
// function of the instant alone). Overflow entries all lie at or beyond
// wheelEnd, i.e. after every wheel entry. The earliest live event is
// therefore the front of the first non-empty bucket at or after the cursor
// — the pop sequence is exactly the (at, seq) total order, byte-identical
// to the heap's. The differential tests in this package pin that.
//
// Keeping buckets sorted also keeps same-instant bursts cheap: seq is
// monotone, so a burst of equal-instant schedules (a million synchronized
// tick timers, say) appends at the bucket tail in O(1) each and pops from
// the bucket head in O(1) each. An unsorted bucket would pay a full scan
// per pop — quadratic in the burst size.
//
// # Invariants
//
//   - overflow entries have at >= wheelEnd;
//   - no live wheel entry sits in a bucket before cursor (pops advance the
//     cursor to the popped bucket, and nothing can be scheduled before the
//     kernel's current instant, which lies in the cursor's window);
//   - bucket entries evs[head:] are sorted by (at, seq); evs[:head] are
//     consumed slots awaiting reuse;
//   - slots (Len) stays ≤ 2·live+compactMinLen via the same
//     dead-outnumbers-live sweep trigger the heap uses.
//
// Resizes (grow when the wheel overfills, shrink when it drains, promote
// the overflow when the wheel empties) rebuild the wheel from the sorted
// live set; the triggers depend only on counters, so the rebuild schedule —
// like everything else here — is a deterministic function of the workload.
type calendarScheduler struct {
	buckets    []calBucket
	width      float64 // time width of one bucket window
	wheelStart float64 // inclusive lower edge of bucket 0's window
	wheelEnd   float64 // exclusive upper edge of the last bucket's window
	cursor     int     // no live wheel entries in buckets before this one
	wheelLive  int     // live entries in the wheel
	overLive   int     // live entries in the overflow area
	dead       int     // cancelled entries still occupying slots
	slots      int     // occupied storage slots incl. dead (Len)

	overflow []event // unsorted; every entry has at >= wheelEnd
	scratch  []event // rebuild staging buffer, retained across rebuilds

	cacheValid  bool // PeekTime caches its bucket search for the next Pop
	cacheBucket int
}

// calBucket is one time window of the wheel. evs[head:] are the entries
// still queued (dead ones included until reclaimed), sorted by (at, seq);
// evs[:head] are already-consumed slots, zeroed and reused once the bucket
// drains.
type calBucket struct {
	evs  []event
	head int
}

const (
	// overflowIdx is the Ticket.idx sentinel for entries parked in the
	// overflow area (Ticket.slot is the position there). Distinct from
	// doneIdx so Cancel can tell the areas apart.
	overflowIdx = -2

	// calMinBuckets/calMaxBuckets bound the wheel size: grown and shrunk in
	// powers of two so resize costs amortize against the schedules/pops
	// that triggered them.
	calMinBuckets = 64
	calMaxBuckets = 1 << 20
)

func newCalendarScheduler() *calendarScheduler {
	return &calendarScheduler{
		buckets:    make([]calBucket, calMinBuckets),
		width:      1,
		wheelStart: 0,
		wheelEnd:   float64(calMinBuckets),
	}
}

func (c *calendarScheduler) Name() string { return SchedulerCalendar }

func (c *calendarScheduler) Pending() int { return c.wheelLive + c.overLive }

func (c *calendarScheduler) Len() int { return c.slots }

// bucketIndex maps an instant within [wheelStart, wheelEnd) to its bucket.
// Clamping keeps the result in range under floating-point rounding (and
// files instants before wheelStart — possible after a rebuild whose
// earliest event lay ahead of the current instant — under bucket 0, which
// then simply covers a wider window). The map is monotone non-decreasing in
// at, which is all cross-bucket ordering needs.
func (c *calendarScheduler) bucketIndex(at float64) int {
	i := int((at - c.wheelStart) / c.width)
	if i < 0 {
		i = 0
	}
	if i >= len(c.buckets) {
		i = len(c.buckets) - 1
	}
	return i
}

func (c *calendarScheduler) Schedule(ev event) {
	c.cacheValid = false
	at := float64(ev.at)
	c.place(ev, at)
	c.slots++
	if c.wheelLive > 2*len(c.buckets) && len(c.buckets) < calMaxBuckets {
		c.rebuild()
	}
}

// place files ev under the current wheel geometry: into its time-window
// bucket, or into the overflow area when it lies beyond the wheel horizon.
// Counter updates are limited to the live counts — the caller owns slots.
func (c *calendarScheduler) place(ev event, at float64) {
	if at >= c.wheelEnd {
		if ev.ticket != nil {
			ev.ticket.idx = overflowIdx
			ev.ticket.slot = len(c.overflow)
		}
		c.overflow = append(c.overflow, ev)
		c.overLive++
	} else {
		c.insert(c.bucketIndex(at), ev)
		c.wheelLive++
	}
}

// insert places ev into bucket b, keeping evs[head:] sorted by (at, seq).
// The fast path is an O(1) append: seq is monotone, so new entries sort
// after every existing entry unless they are strictly earlier in time.
func (c *calendarScheduler) insert(b int, ev event) {
	bk := &c.buckets[b]
	if n := len(bk.evs); n == bk.head || !less(&ev, &bk.evs[n-1]) {
		if ev.ticket != nil {
			ev.ticket.idx = b
			ev.ticket.slot = n
		}
		bk.evs = append(bk.evs, ev)
		return
	}
	// Slow path: binary-search the insertion point and shift the tail,
	// re-pointing tickets of the shifted entries.
	lo, hi := bk.head, len(bk.evs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(&bk.evs[mid], &ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	bk.evs = append(bk.evs, event{})
	copy(bk.evs[lo+1:], bk.evs[lo:])
	bk.evs[lo] = ev
	for i := lo; i < len(bk.evs); i++ {
		if t := bk.evs[i].ticket; t != nil {
			t.idx = b
			t.slot = i
		}
	}
}

// findMin locates the bucket holding the earliest live event, reclaiming
// dead entries it walks over. It must only be called when live events
// exist somewhere; it promotes the overflow into a fresh wheel if the
// wheel itself is empty.
func (c *calendarScheduler) findMin() int {
	if c.wheelLive == 0 {
		c.rebuild() // promote the overflow into a fresh wheel
	}
	for b := c.cursor; b < len(c.buckets); b++ {
		bk := &c.buckets[b]
		for bk.head < len(bk.evs) && bk.evs[bk.head].dead {
			bk.evs[bk.head] = event{}
			bk.head++
			c.dead--
			c.slots--
		}
		if bk.head < len(bk.evs) {
			return b
		}
		if bk.head > 0 {
			bk.evs = bk.evs[:0]
			bk.head = 0
		}
	}
	panic("sim: calendar queue lost a live event")
}

func (c *calendarScheduler) PeekTime() (simtime.Time, bool) {
	if c.wheelLive+c.overLive == 0 {
		return 0, false
	}
	if !c.cacheValid {
		c.cacheBucket = c.findMin()
		c.cacheValid = true
	}
	bk := &c.buckets[c.cacheBucket]
	return bk.evs[bk.head].at, true
}

func (c *calendarScheduler) Pop() (event, bool) {
	if c.wheelLive+c.overLive == 0 {
		return event{}, false
	}
	b := c.cacheBucket
	if !c.cacheValid {
		b = c.findMin()
	}
	c.cacheValid = false
	bk := &c.buckets[b]
	ev := bk.evs[bk.head]
	bk.evs[bk.head] = event{} // release the handler's captures
	bk.head++
	if bk.head == len(bk.evs) {
		bk.evs = bk.evs[:0]
		bk.head = 0
	}
	c.cursor = b
	c.wheelLive--
	c.slots--
	c.maybeCompact()
	if len(c.buckets) > calMinBuckets && c.wheelLive+c.overLive < len(c.buckets)/8 {
		c.rebuild()
	}
	return ev, true
}

func (c *calendarScheduler) Cancel(t *Ticket) {
	c.cacheValid = false
	var ev *event
	if t.idx == overflowIdx {
		ev = &c.overflow[t.slot]
		c.overLive--
	} else {
		ev = &c.buckets[t.idx].evs[t.slot]
		c.wheelLive--
	}
	ev.dead = true
	ev.fn = nil // release captured state promptly
	ev.afn = nil
	ev.ticket = nil
	c.dead++
	c.maybeCompact()
}

// maybeCompact applies the same trigger rule as the heap: sweep once dead
// entries outnumber live ones and the queue is big enough for the sweep to
// pay off. This is what keeps Len ≤ 2·Pending+compactMinLen.
func (c *calendarScheduler) maybeCompact() {
	if c.slots >= compactMinLen && c.dead > c.slots/2 {
		c.compact()
	}
}

// compact removes every dead entry in one pass, preserving each bucket's
// sorted order and re-pointing tickets. Pop order is unaffected.
func (c *calendarScheduler) compact() {
	for b := range c.buckets {
		bk := &c.buckets[b]
		kept := bk.evs[:0]
		for i := bk.head; i < len(bk.evs); i++ {
			if !bk.evs[i].dead {
				kept = append(kept, bk.evs[i])
			}
		}
		for i := len(kept); i < len(bk.evs); i++ {
			bk.evs[i] = event{}
		}
		bk.evs = kept
		bk.head = 0
		for i := range bk.evs {
			if t := bk.evs[i].ticket; t != nil {
				t.idx = b
				t.slot = i
			}
		}
	}
	kept := c.overflow[:0]
	for i := range c.overflow {
		if !c.overflow[i].dead {
			kept = append(kept, c.overflow[i])
		}
	}
	for i := len(kept); i < len(c.overflow); i++ {
		c.overflow[i] = event{}
	}
	c.overflow = kept
	for i := range c.overflow {
		if t := c.overflow[i].ticket; t != nil {
			t.idx = overflowIdx
			t.slot = i
		}
	}
	c.dead = 0
	c.slots = len(c.overflow)
	for b := range c.buckets {
		c.slots += len(c.buckets[b].evs) - c.buckets[b].head
	}
	c.cacheValid = false
}

// setHorizon derives wheelEnd from the current geometry. At extreme
// magnitudes (wheelStart near float64's upper range) the nominal horizon
// wheelStart + nb·width can round back to wheelStart, which would strand
// every event — the earliest included — in the overflow area and deadlock
// the promote-on-empty rebuild. Doubling the width until the horizon
// registers keeps the wheel non-degenerate at any representable instant.
func (c *calendarScheduler) setHorizon() {
	c.wheelEnd = c.wheelStart + float64(len(c.buckets))*c.width
	for c.wheelEnd <= c.wheelStart {
		c.width *= 2
		c.wheelEnd = c.wheelStart + float64(len(c.buckets))*c.width
	}
}

// rebuild re-seeds the wheel from the live set, dropping dead entries for
// free along the way. Large populations get a full resize — bucket count
// sized to the population, width chosen from the interquartile spread of
// event instants (robust against far-future outliers, which go back to the
// overflow), wheelStart at the earliest event. Small populations (at most
// one event per bucket of a minimum wheel) keep the current geometry and
// just re-anchor wheelStart — that path allocates nothing, which matters
// because a lone self-rescheduling timer marching past the wheel horizon
// triggers a rebuild per event.
func (c *calendarScheduler) rebuild() {
	c.cacheValid = false
	all := c.scratch[:0]
	for b := range c.buckets {
		bk := &c.buckets[b]
		for i := bk.head; i < len(bk.evs); i++ {
			if !bk.evs[i].dead {
				all = append(all, bk.evs[i])
			}
			bk.evs[i] = event{} // release refs in the vacated slot
		}
		bk.evs = bk.evs[:0]
		bk.head = 0
	}
	for i := range c.overflow {
		if !c.overflow[i].dead {
			all = append(all, c.overflow[i])
		}
		c.overflow[i] = event{}
	}
	c.overflow = c.overflow[:0]
	c.scratch = all[:0] // retain staging capacity for the next rebuild
	c.dead = 0
	c.slots = len(all)
	c.cursor = 0
	c.wheelLive, c.overLive = 0, 0
	if len(all) == 0 {
		return // keep the current geometry; an empty wheel is fine
	}

	if len(all) <= calMinBuckets {
		// Re-anchor only. With so few events any width works (a bucket
		// holds a short sorted run), so keep it and avoid the sort.
		if len(c.buckets) != calMinBuckets {
			c.buckets = make([]calBucket, calMinBuckets) // shrink a grown wheel
		}
		minAt := all[0].at
		for i := 1; i < len(all); i++ {
			if all[i].at < minAt {
				minAt = all[i].at
			}
		}
		if !(c.width > 0) {
			c.width = 1
		}
		c.wheelStart = float64(minAt)
		c.setHorizon()
		for i := range all {
			c.place(all[i], float64(all[i].at))
		}
		return
	}

	sort.Slice(all, func(i, j int) bool { return less(&all[i], &all[j]) })
	nb := calMinBuckets
	for nb < len(all) && nb < calMaxBuckets {
		nb <<= 1
	}
	// Width from the middle half of the instants: a handful of far-future
	// stragglers must not stretch the windows until everything piles into
	// bucket 0.
	q1 := float64(all[len(all)/4].at)
	q3 := float64(all[3*len(all)/4].at)
	width := (q3 - q1) / float64(len(all)/2+1) * 3
	if !(width > 0) || width != width { // zero spread, or not finite
		width = 1
	}
	if nb != len(c.buckets) {
		c.buckets = make([]calBucket, nb)
	}
	c.width = width
	c.wheelStart = float64(all[0].at)
	c.setHorizon()
	for i := range all {
		// Sorted input, so place's insert always takes its append fast path.
		c.place(all[i], float64(all[i].at))
	}
}
