package sim

import (
	"errors"
	"math"
	"sort"
	"testing"

	"abenet/internal/rng"
	"abenet/internal/simtime"
)

func newCalendarKernel(t *testing.T) *Kernel {
	t.Helper()
	k, err := NewNamed(SchedulerCalendar)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestSchedulerRegistry pins the registry surface: the shipped names
// resolve, the empty name means the default heap, and unknown names fail
// loudly enough to catch a typo in a spec file.
func TestSchedulerRegistry(t *testing.T) {
	for _, name := range SchedulerNames() {
		if !ValidScheduler(name) {
			t.Errorf("ValidScheduler(%q) = false for a registered name", name)
		}
		k, err := NewNamed(name)
		if err != nil {
			t.Fatalf("NewNamed(%q): %v", name, err)
		}
		if k.SchedulerName() != name {
			t.Errorf("NewNamed(%q).SchedulerName() = %q", name, k.SchedulerName())
		}
	}
	if !ValidScheduler("") {
		t.Error("ValidScheduler(\"\") = false, want true (default)")
	}
	if New().SchedulerName() != SchedulerHeap {
		t.Errorf("New() scheduler = %q, want the heap default", New().SchedulerName())
	}
	if k, err := NewNamed(""); err != nil || k.SchedulerName() != SchedulerHeap {
		t.Errorf("NewNamed(\"\") = (%v, %v), want the heap default", k, err)
	}
	if ValidScheduler("ladder") {
		t.Error("ValidScheduler(\"ladder\") = true for an unknown name")
	}
	if _, err := NewNamed("ladder"); err == nil {
		t.Error("NewNamed(\"ladder\") succeeded, want an error")
	}
	if NewWith(nil).SchedulerName() != SchedulerHeap {
		t.Error("NewWith(nil) did not fall back to the heap default")
	}
}

// TestCalendarMatchesHeapPopOrder is the scheduler determinism contract at
// kernel level: a pseudo-random workload of ticketed and ticketless
// schedules, same-instant bursts, cancellations and interleaved partial
// runs must execute in the identical sequence on both schedulers.
func TestCalendarMatchesHeapPopOrder(t *testing.T) {
	type step struct {
		at  simtime.Time
		id  int
		now simtime.Time
	}
	drive := func(name string) []step {
		k, err := NewNamed(name)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(4242)
		var got []step
		id := 0
		var tickets []*Ticket
		scheduleBurst := func(n int) {
			for i := 0; i < n; i++ {
				// A mix of clustered instants (forcing same-bucket,
				// same-instant collisions), spread instants, and far-future
				// outliers (forcing the calendar's overflow area).
				var at simtime.Time
				switch r.Intn(10) {
				case 0:
					at = k.Now() // same-instant burst
				case 1:
					at = k.Now().Add(simtime.Duration(1000 + r.Float64()*1e6)) // far future
				case 2:
					at = k.Now().Add(simtime.Duration(float64(r.Intn(20)))) // integer collisions
				default:
					at = k.Now().Add(simtime.Duration(r.Float64() * 50))
				}
				myID := id
				id++
				record := func() { got = append(got, step{at, myID, k.Now()}) }
				if r.Bool(0.3) {
					tk := k.At(at, record)
					if r.Bool(0.5) {
						tk.Cancel()
					} else {
						tickets = append(tickets, tk)
					}
				} else {
					k.AtFunc(at, record)
				}
			}
		}
		scheduleBurst(500)
		for phase := 0; phase < 20; phase++ {
			// Run a bounded slice of the schedule, then mutate it again —
			// cancellations included — so compaction and rebuilds trigger at
			// varied points.
			for i := 0; i < 100 && k.Step(); i++ {
			}
			for len(tickets) > 3 {
				tk := tickets[r.Intn(len(tickets))]
				tk.Cancel()
				tickets = tickets[:len(tickets)-1]
			}
			scheduleBurst(200)
		}
		if err := k.Run(simtime.Forever, 0); err != nil {
			t.Fatal(err)
		}
		return got
	}

	heapSeq := drive(SchedulerHeap)
	calSeq := drive(SchedulerCalendar)
	if len(heapSeq) != len(calSeq) {
		t.Fatalf("heap ran %d events, calendar %d", len(heapSeq), len(calSeq))
	}
	for i := range heapSeq {
		if heapSeq[i] != calSeq[i] {
			t.Fatalf("execution diverged at event %d: heap %+v, calendar %+v", i, heapSeq[i], calSeq[i])
		}
	}
}

// TestCalendarCancelHeavyStaysBounded mirrors the heap's 100k-cancel test:
// the calendar queue must honour the same compaction bound,
// QueueLen ≤ 2·Pending+compactMinLen.
func TestCalendarCancelHeavyStaysBounded(t *testing.T) {
	k := newCalendarKernel(t)
	const total = 100_000
	live := 0
	tickets := make([]*Ticket, 0, total)
	for i := 0; i < total; i++ {
		at := simtime.Time(1 + i%997)
		tickets = append(tickets, k.At(at, func() {}))
		if i%1000 != 0 {
			tickets[len(tickets)-1].Cancel()
		} else {
			live++
		}
	}
	if got := k.Pending(); got != live {
		t.Fatalf("Pending = %d, want %d", got, live)
	}
	if max := 2*live + compactMinLen; k.QueueLen() > max {
		t.Fatalf("calendar holds %d slots for %d live events (bound %d): cancellations are not compacted", k.QueueLen(), live, max)
	}
	pending := 0
	for _, tk := range tickets {
		if tk.Pending() {
			pending++
		}
	}
	if pending != live {
		t.Fatalf("%d tickets still pending, want %d", pending, live)
	}
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if int(k.Executed()) != live {
		t.Fatalf("executed %d events, want the %d live ones", k.Executed(), live)
	}
	if k.QueueLen() != 0 || k.Pending() != 0 {
		t.Fatalf("queue not drained: len=%d pending=%d", k.QueueLen(), k.Pending())
	}
}

// TestCalendarCompactionPreservesOrder is the calendar twin of the heap's
// compaction-order test: cancel a pseudo-random half of a large schedule
// and check the survivors still run in exact (time, insertion) order.
func TestCalendarCompactionPreservesOrder(t *testing.T) {
	k := newCalendarKernel(t)
	r := rng.New(99)
	type key struct {
		at  simtime.Time
		seq int
	}
	var want []key
	var got []key
	for i := 0; i < 5000; i++ {
		i := i
		at := simtime.Time(r.Float64() * 100)
		tk := k.At(at, func() { got = append(got, key{at, i}) })
		if r.Bool(0.5) {
			tk.Cancel()
		} else {
			want = append(want, key{at, i})
		}
	}
	sort.SliceStable(want, func(a, b int) bool { return want[a].at < want[b].at })
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order diverged at %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestCalendarSimtimeExtremes rotates the wheel across wildly mixed
// magnitudes — sub-width gaps, instants far beyond any sane wheel horizon,
// and the largest finite times float64 can hold — and checks exact
// ordering survives. This is where naive year/bucket arithmetic overflows
// or collapses to NaN.
func TestCalendarSimtimeExtremes(t *testing.T) {
	times := []simtime.Time{
		0, 1e-12, 1e-9, 0.5, 1, 2, 63, 64, 65, 1000,
		1e6, 1e6 + 1e-6, 1e9, 1e15, 1e18, 1e30, 1e100,
		1e300, math.MaxFloat64 / 8, math.MaxFloat64 / 4,
	}
	k := newCalendarKernel(t)
	var got []simtime.Time
	// Schedule in a fixed scrambled order so insertion is non-monotone.
	perm := []int{7, 0, 19, 3, 11, 15, 1, 18, 5, 9, 13, 2, 17, 4, 10, 6, 16, 8, 12, 14}
	for _, i := range perm {
		at := times[i]
		k.AtFunc(at, func() { got = append(got, at) })
	}
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(times) {
		t.Fatalf("ran %d events, want %d", len(got), len(times))
	}
	for i := range times {
		if got[i] != times[i] {
			t.Fatalf("order diverged at %d: got %v, want %v", i, got[i], times[i])
		}
	}
	if k.Now() != math.MaxFloat64/4 {
		t.Fatalf("final time = %v, want MaxFloat64/4", k.Now())
	}
	// The wheel must keep rotating after the far jump: a fresh near-term
	// schedule relative to the new now still works.
	fired := false
	k.AtFunc(k.Now(), func() { fired = true })
	if err := k.Run(simtime.Forever, 0); err != nil || !fired {
		t.Fatalf("post-extreme scheduling broken: err=%v fired=%v", err, fired)
	}
}

// TestCalendarMarchingTimerAllocations pins the small-rebuild path: a lone
// self-rescheduling timer walking far past the wheel horizon (the tick-loop
// shape that dominates large runs) must not allocate per event, even
// though every firing exhausts the wheel and forces a re-anchor.
func TestCalendarMarchingTimerAllocations(t *testing.T) {
	k := newCalendarKernel(t)
	fn := func() {}
	for i := 0; i < 128; i++ { // warm slices
		k.AfterFunc(1000, fn)
	}
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		k.AfterFunc(1000, fn) // 1000 ≫ width·buckets: always beyond the horizon
		if err := k.Run(simtime.Forever, 0); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("marching AfterFunc+Run allocates %g objects per event, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		k.AtFunc(k.Now(), fn)
		if err := k.Run(simtime.Forever, 0); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("same-instant AtFunc+Run allocates %g objects per event, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		k.At(k.Now().Add(1), fn).Cancel()
	}); avg != 1 {
		t.Errorf("At+Cancel allocates %g objects per event, want exactly the 1 ticket", avg)
	}
}

// TestCalendarSameInstantFIFO pins the sorted-bucket fast path: a large
// burst of events at one instant (synchronized tick timers) must run in
// schedule order, and a second burst scheduled from inside the first must
// run after it, exactly as on the heap.
func TestCalendarSameInstantFIFO(t *testing.T) {
	for _, name := range SchedulerNames() {
		k, err := NewNamed(name)
		if err != nil {
			t.Fatal(err)
		}
		const n = 20_000
		var got []int
		at := simtime.Time(7)
		for i := 0; i < n; i++ {
			i := i
			k.AtFunc(at, func() {
				got = append(got, i)
				if i < 100 {
					k.AtFunc(at, func() { got = append(got, n+i) }) // reentrant same-instant
				}
			})
		}
		if err := k.Run(simtime.Forever, 0); err != nil {
			t.Fatal(err)
		}
		if len(got) != n+100 {
			t.Fatalf("%s: ran %d events, want %d", name, len(got), n+100)
		}
		for i := 0; i < n; i++ {
			if got[i] != i {
				t.Fatalf("%s: position %d ran event %d, want FIFO order", name, i, got[i])
			}
		}
		for i := 0; i < 100; i++ {
			if got[n+i] != n+i {
				t.Fatalf("%s: reentrant event order broken at %d: got %d", name, i, got[n+i])
			}
		}
	}
}

// TestCalendarPendingQueueLenInvariants walks a mixed workload and checks
// the counting surface after every operation: Pending counts live events
// exactly, QueueLen ≥ Pending, and the compaction bound holds throughout.
func TestCalendarPendingQueueLenInvariants(t *testing.T) {
	k := newCalendarKernel(t)
	r := rng.New(7)
	live := make(map[*Ticket]bool)
	liveFns := 0
	check := func(ctx string) {
		t.Helper()
		want := len(live) + liveFns
		if got := k.Pending(); got != want {
			t.Fatalf("%s: Pending = %d, want %d", ctx, got, want)
		}
		if k.QueueLen() < k.Pending() {
			t.Fatalf("%s: QueueLen %d < Pending %d", ctx, k.QueueLen(), k.Pending())
		}
		if max := 2*k.Pending() + compactMinLen; k.QueueLen() > max {
			t.Fatalf("%s: QueueLen %d exceeds compaction bound %d", ctx, k.QueueLen(), max)
		}
	}
	for i := 0; i < 3000; i++ {
		switch {
		case r.Bool(0.45):
			at := k.Now().Add(simtime.Duration(r.Float64() * 300))
			if r.Bool(0.6) {
				tk := k.At(at, func() {})
				live[tk] = true
			} else {
				liveFns++
				k.AtFunc(at, func() { liveFns-- })
			}
		case r.Bool(0.5) && len(live) > 0:
			for tk := range live {
				tk.Cancel()
				delete(live, tk)
				break
			}
		default:
			before := k.Pending()
			if k.Step() && before > 0 {
				for tk := range live {
					if !tk.Pending() {
						delete(live, tk)
					}
				}
			}
		}
		check("op")
	}
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	live = map[*Ticket]bool{}
	check("drained")
	if k.QueueLen() != 0 {
		t.Fatalf("drained QueueLen = %d, want 0", k.QueueLen())
	}
}

// TestErrMaxEventsTyped pins the livelock guard's error identity on both
// schedulers: the wrapped error matches ErrMaxEvents via errors.Is, carries
// the budget in its text, and is distinct from ErrStopped.
func TestErrMaxEventsTyped(t *testing.T) {
	for _, name := range SchedulerNames() {
		k, err := NewNamed(name)
		if err != nil {
			t.Fatal(err)
		}
		var tick func()
		tick = func() { k.AtFunc(k.Now(), tick) } // classic livelock: no time progress
		k.AtFunc(0, tick)
		err = k.Run(simtime.Forever, 100)
		if !errors.Is(err, ErrMaxEvents) {
			t.Fatalf("%s: Run = %v, want errors.Is(_, ErrMaxEvents)", name, err)
		}
		if errors.Is(err, ErrStopped) {
			t.Fatalf("%s: livelock error also matches ErrStopped", name)
		}
		if k.Executed() != 100 {
			t.Fatalf("%s: executed %d events before tripping, want exactly the budget", name, k.Executed())
		}
	}
}
