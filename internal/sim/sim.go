// Package sim is a deterministic discrete-event simulation kernel.
//
// All network executions in this repository — ABE, ABD, fully asynchronous
// and synchronous — run on this kernel. Events are closures scheduled at
// virtual instants; the kernel executes them in time order with a
// deterministic tie-break (insertion sequence), so a run is a pure function
// of the initial schedule and the random seed. That determinism is what
// makes the paper's expected-complexity claims measurable: every data point
// is reproducible from (parameters, seed).
package sim

import (
	"container/heap"
	"errors"
	"fmt"

	"abenet/internal/simtime"
)

// ErrStopped is returned by Run when the simulation was halted by Stop
// before reaching its horizon or draining its schedule.
var ErrStopped = errors.New("sim: stopped")

// Handler is a scheduled piece of work. It runs at its scheduled virtual
// instant and may schedule further events.
type Handler func()

// event is one entry in the pending-event set.
type event struct {
	at     simtime.Time
	seq    uint64 // tie-break: events at equal instants run in schedule order
	fn     Handler
	index  int // heap index, maintained by eventQueue
	dead   bool
	ticket *Ticket
}

// eventQueue is a binary min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		panic("sim: eventQueue.Push received a non-event")
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Ticket identifies a scheduled event so it can be cancelled. The zero value
// is not a valid ticket; tickets come from Kernel.At and Kernel.After.
type Ticket struct {
	ev *event
}

// Cancel removes the event from the schedule if it has not run yet. Cancel
// is idempotent and reports whether the event was actually cancelled (false
// if it already ran or was already cancelled).
func (t *Ticket) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.dead {
		return false
	}
	t.ev.dead = true
	t.ev.fn = nil // release captured state promptly
	return true
}

// Pending reports whether the event is still scheduled.
func (t *Ticket) Pending() bool { return t != nil && t.ev != nil && !t.ev.dead }

// Kernel is a discrete-event scheduler. The zero value is not usable; create
// one with New. Kernel is not safe for concurrent use: simulations are
// single-threaded by design, and cross-run parallelism is achieved by
// running independent Kernels on separate goroutines.
type Kernel struct {
	now       simtime.Time
	queue     eventQueue
	seq       uint64
	executed  uint64
	stopped   bool
	running   bool
	stopCause string
}

// New returns an empty kernel at virtual time zero.
func New() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time.
func (k *Kernel) Now() simtime.Time { return k.now }

// Executed returns the number of events that have run so far. It is a cheap
// progress measure and a guard against runaway protocols in tests.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending returns the number of scheduled (not yet executed, not cancelled)
// events. Cancelled events still occupying the heap are not counted.
func (k *Kernel) Pending() int {
	n := 0
	for _, ev := range k.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}

// At schedules fn to run at instant at. Scheduling strictly in the past is a
// programming error and panics; scheduling at the current instant is allowed
// and runs after all previously scheduled events for that instant.
func (k *Kernel) At(at simtime.Time, fn Handler) *Ticket {
	if fn == nil {
		panic("sim: At called with nil handler")
	}
	if !at.IsFinite() {
		panic(fmt.Sprintf("sim: At called with non-finite time %v", at))
	}
	if at.Before(k.now) {
		panic(fmt.Sprintf("sim: scheduling into the past: now %v, requested %v", k.now, at))
	}
	ev := &event{at: at, seq: k.seq, fn: fn}
	k.seq++
	ticket := &Ticket{ev: ev}
	ev.ticket = ticket
	heap.Push(&k.queue, ev)
	return ticket
}

// After schedules fn to run d time units from now. It panics if d is
// negative or non-finite.
func (k *Kernel) After(d simtime.Duration, fn Handler) *Ticket {
	if !d.Valid() {
		panic(fmt.Sprintf("sim: After called with invalid duration %v", d))
	}
	return k.At(k.now.Add(d), fn)
}

// Stop halts the simulation after the currently executing event completes.
// The cause is reported by StopCause. Calling Stop outside Run simply marks
// the kernel so the next Run returns immediately.
func (k *Kernel) Stop(cause string) {
	k.stopped = true
	k.stopCause = cause
}

// StopCause returns the cause passed to the most recent Stop, or "".
func (k *Kernel) StopCause() string { return k.stopCause }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// Run executes events in virtual-time order until one of:
//   - the schedule drains (returns nil),
//   - virtual time would exceed horizon (returns nil; the event at a time
//     past the horizon remains scheduled and time stops at the horizon),
//   - Stop is called (returns ErrStopped),
//   - more than maxEvents events execute, if maxEvents > 0 (returns an
//     error; this guards against non-terminating protocols in tests).
func (k *Kernel) Run(horizon simtime.Time, maxEvents uint64) error {
	if k.running {
		return errors.New("sim: Run called reentrantly")
	}
	k.running = true
	defer func() { k.running = false }()

	start := k.executed
	for {
		if k.stopped {
			return ErrStopped
		}
		ev := k.next()
		if ev == nil {
			return nil // drained
		}
		if ev.at.After(horizon) {
			// Leave the event scheduled; put it back and halt at horizon.
			heap.Push(&k.queue, ev)
			k.now = horizon
			return nil
		}
		if maxEvents > 0 && k.executed-start >= maxEvents {
			heap.Push(&k.queue, ev)
			return fmt.Errorf("sim: exceeded %d events at %v (possible livelock)", maxEvents, k.now)
		}
		k.now = ev.at
		fn := ev.fn
		ev.fn = nil
		ev.dead = true
		k.executed++
		fn()
	}
}

// next pops the earliest live event, skipping cancelled ones.
func (k *Kernel) next() *event {
	for k.queue.Len() > 0 {
		ev, ok := heap.Pop(&k.queue).(*event)
		if !ok {
			panic("sim: heap contained a non-event")
		}
		if ev.dead {
			continue
		}
		return ev
	}
	return nil
}

// Step executes exactly one pending event (the earliest) and returns true,
// or returns false if the schedule is empty. Useful for fine-grained tests
// and the bounded model checker's scheduler.
func (k *Kernel) Step() bool {
	ev := k.next()
	if ev == nil {
		return false
	}
	k.now = ev.at
	fn := ev.fn
	ev.fn = nil
	ev.dead = true
	k.executed++
	fn()
	return true
}
