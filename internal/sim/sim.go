// Package sim is a deterministic discrete-event simulation kernel.
//
// All network executions in this repository — ABE, ABD, fully asynchronous
// and synchronous — run on this kernel. Events are closures scheduled at
// virtual instants; the kernel executes them in time order with a
// deterministic tie-break (insertion sequence), so a run is a pure function
// of the initial schedule and the random seed. That determinism is what
// makes the paper's expected-complexity claims measurable: every data point
// is reproducible from (parameters, seed).
//
// # Scheduling internals
//
// The pending-event set lives behind the Scheduler interface. Two
// implementations ship with the package, selectable per run:
//
//   - "heap" (default) — an intrusive 4-ary min-heap ordered by
//     (instant, insertion sequence) and stored in a single value slice; the
//     slice doubles as the event pool, so steady-state scheduling allocates
//     nothing.
//   - "calendar" — a calendar queue (Brown 1988, as in ns-3): a wheel of
//     time-windowed buckets with amortized O(1) enqueue/dequeue, which wins
//     at very large pending-event populations (million-node runs) where the
//     heap's O(log n) reshuffle per event starts to bite.
//
// Both pop events in exactly (instant, sequence) order, so executions are
// byte-identical across schedulers — the differential suite pins that.
//
// Two API tiers sit on top of the scheduler:
//
//   - AtFunc / AfterFunc / AtArg — the ticketless fast path. No per-event
//     allocation at all; use these whenever the caller never cancels
//     (message deliveries, self-rescheduling tick loops, fault timelines).
//   - At / After — allocate one *Ticket so the event can be cancelled
//     later. Cancellation marks the entry dead in place; dead entries are
//     skipped on pop and compacted away wholesale once they outnumber the
//     live ones, so cancel-heavy workloads (ARQ retransmit timers) cannot
//     bloat the schedule.
//
// Pending() is O(1): the scheduler tracks the live-event count directly.
package sim

import (
	"errors"
	"fmt"

	"abenet/internal/simtime"
)

// ErrStopped is returned by Run when the simulation was halted by Stop
// before reaching its horizon or draining its schedule.
var ErrStopped = errors.New("sim: stopped")

// ErrMaxEvents is returned (wrapped, with the budget and the virtual time
// it was hit at) by Run when more than maxEvents events execute. It is the
// kernel's livelock guard; match it with errors.Is to distinguish a
// runaway protocol from other run failures.
var ErrMaxEvents = errors.New("sim: event budget exceeded (possible livelock)")

// Handler is a scheduled piece of work. It runs at its scheduled virtual
// instant and may schedule further events.
type Handler func()

// ArgHandler is a scheduled piece of work that receives a small argument at
// execution time. It exists so hot paths can reuse one long-lived func value
// (typically a method value) across many events instead of allocating a
// fresh closure per event — see Kernel.AtArg.
type ArgHandler func(arg uint32)

// event is one entry in the pending-event set. Events are stored by value
// inside the scheduler's slices; they are never heap-allocated
// individually.
type event struct {
	at     simtime.Time
	seq    uint64 // tie-break: events at equal instants run in schedule order
	fn     Handler
	afn    ArgHandler // alternative to fn: runs as afn(arg); see AtArg
	arg    uint32
	ticket *Ticket // non-nil only for ticketed (cancellable) events
	dead   bool    // cancelled; skipped on pop, removed by compaction
}

// less orders events by (at, seq). seq is unique per kernel, so the order
// is total and every correct scheduler pops the exact same sequence — the
// golden-seed pins depend on that.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// doneIdx marks a ticket whose event already ran or was cancelled. It is
// deliberately distinct from the schedulers' internal location encodings
// (the calendar queue uses another negative sentinel for its overflow
// area), so only -1 ever means "gone".
const doneIdx = -1

// Ticket identifies a scheduled event so it can be cancelled. The zero value
// is not a valid ticket; tickets come from Kernel.At and Kernel.After.
// The idx/slot pair is the scheduler-maintained location of the entry:
// the heap uses idx alone (heap index), the calendar queue uses
// (bucket, position-in-bucket).
type Ticket struct {
	k    *Kernel
	idx  int // scheduler location; doneIdx once it ran or was cancelled
	slot int // secondary location coordinate (calendar queue only)
}

// Cancel removes the event from the schedule if it has not run yet. Cancel
// is idempotent and reports whether the event was actually cancelled (false
// if it already ran or was already cancelled). The captured handler is
// released immediately; the storage slot itself is reclaimed lazily (on pop
// or at the next compaction).
func (t *Ticket) Cancel() bool {
	if t == nil || t.k == nil || t.idx == doneIdx {
		return false
	}
	t.k.sched.Cancel(t)
	t.idx = doneIdx
	return true
}

// Pending reports whether the event is still scheduled.
func (t *Ticket) Pending() bool { return t != nil && t.k != nil && t.idx != doneIdx }

// compactMinLen is the queue length below which compaction is never
// worthwhile: popping the few dead entries lazily is cheaper than a sweep.
const compactMinLen = 64

// Kernel is a discrete-event scheduler. The zero value is not usable; create
// one with New, NewWith or NewNamed. Kernel is not safe for concurrent use:
// simulations are single-threaded by design, and cross-run parallelism is
// achieved by running independent Kernels on separate goroutines.
type Kernel struct {
	now       simtime.Time
	sched     Scheduler
	seq       uint64
	executed  uint64
	stopped   bool
	running   bool
	stopCause string
	observer  func() // post-event hook; see SetObserver
}

// New returns an empty kernel at virtual time zero, backed by the default
// 4-ary heap scheduler.
func New() *Kernel {
	return &Kernel{sched: newHeapScheduler()}
}

// NewWith returns an empty kernel backed by the given scheduler. A nil
// scheduler selects the default heap.
func NewWith(s Scheduler) *Kernel {
	if s == nil {
		s = newHeapScheduler()
	}
	return &Kernel{sched: s}
}

// NewNamed returns an empty kernel backed by the named scheduler (see
// NewScheduler). The empty name selects the default heap.
func NewNamed(name string) (*Kernel, error) {
	s, err := NewScheduler(name)
	if err != nil {
		return nil, err
	}
	return &Kernel{sched: s}, nil
}

// SchedulerName returns the registry name of the scheduler backing this
// kernel.
func (k *Kernel) SchedulerName() string { return k.sched.Name() }

// Now returns the current virtual time.
func (k *Kernel) Now() simtime.Time { return k.now }

// Executed returns the number of events that have run so far. It is a cheap
// progress measure and a guard against runaway protocols in tests.
func (k *Kernel) Executed() uint64 { return k.executed }

// ScheduleSeq returns the insertion sequence number the next scheduled
// event will be assigned. Together with an instant it lets hot paths detect
// "nothing has been scheduled since": the channel layer uses it to merge
// same-instant deliveries into one batched event without perturbing the
// (at, seq) execution order.
func (k *Kernel) ScheduleSeq() uint64 { return k.seq }

// Pending returns the number of scheduled (not yet executed, not cancelled)
// events in O(1). Cancelled events still occupying storage slots are not
// counted.
func (k *Kernel) Pending() int { return k.sched.Pending() }

// QueueLen returns the number of storage slots currently in use, including
// cancelled entries that have not been compacted away yet. It exists for
// capacity accounting and tests: QueueLen−Pending is the dead backlog,
// and compaction (triggered when dead entries outnumber live ones) keeps
// QueueLen at most 2·Pending+compactMinLen.
func (k *Kernel) QueueLen() int { return k.sched.Len() }

// schedule validates and enqueues one event.
func (k *Kernel) schedule(at simtime.Time, fn Handler, afn ArgHandler, arg uint32, ticket *Ticket) {
	if fn == nil && afn == nil {
		panic("sim: scheduling a nil handler")
	}
	if !at.IsFinite() {
		panic(fmt.Sprintf("sim: scheduling at non-finite time %v", at))
	}
	if at.Before(k.now) {
		panic(fmt.Sprintf("sim: scheduling into the past: now %v, requested %v", k.now, at))
	}
	k.sched.Schedule(event{at: at, seq: k.seq, fn: fn, afn: afn, arg: arg, ticket: ticket})
	k.seq++
}

// At schedules fn to run at instant at and returns a cancellation ticket.
// Scheduling strictly in the past is a programming error and panics;
// scheduling at the current instant is allowed and runs after all
// previously scheduled events for that instant. Callers that never cancel
// should prefer AtFunc, which skips the ticket allocation.
func (k *Kernel) At(at simtime.Time, fn Handler) *Ticket {
	t := &Ticket{k: k}
	k.schedule(at, fn, nil, 0, t)
	return t
}

// AtFunc schedules fn to run at instant at, with the same validation as At
// but no cancellation handle — and therefore no per-event allocation. This
// is the hot path for the overwhelming share of events (message
// deliveries, tick loops, fault timelines), which are never cancelled.
func (k *Kernel) AtFunc(at simtime.Time, fn Handler) {
	k.schedule(at, fn, nil, 0, nil)
}

// AtArg schedules fn(arg) to run at instant at, ticketless. Unlike AtFunc,
// the handler is parameterised, so one long-lived func value (typically a
// method value) serves arbitrarily many events — no closure allocation per
// event even when each event needs distinct state. The channel layer's
// pooled delivery path is the intended caller: arg indexes into its
// struct-of-arrays payload pool.
func (k *Kernel) AtArg(at simtime.Time, fn ArgHandler, arg uint32) {
	k.schedule(at, nil, fn, arg, nil)
}

// After schedules fn to run d time units from now and returns a
// cancellation ticket. It panics if d is negative or non-finite.
func (k *Kernel) After(d simtime.Duration, fn Handler) *Ticket {
	if !d.Valid() {
		panic(fmt.Sprintf("sim: After called with invalid duration %v", d))
	}
	return k.At(k.now.Add(d), fn)
}

// AfterFunc schedules fn to run d time units from now without a ticket —
// the allocation-free counterpart of After.
func (k *Kernel) AfterFunc(d simtime.Duration, fn Handler) {
	if !d.Valid() {
		panic(fmt.Sprintf("sim: AfterFunc called with invalid duration %v", d))
	}
	k.AtFunc(k.now.Add(d), fn)
}

// Stop halts the simulation after the currently executing event completes.
// The cause is reported by StopCause. Calling Stop outside Run simply marks
// the kernel so the next Run returns immediately.
func (k *Kernel) Stop(cause string) {
	k.stopped = true
	k.stopCause = cause
}

// SetObserver installs fn to run immediately after every executed event's
// handler returns, with the kernel's time and counters already advanced.
// Observers exist for measurement (time-series probes): they must only
// read state — scheduling, cancelling, or stopping from an observer would
// make an observed run diverge from an unobserved one, defeating the
// byte-identity guarantee the probes depend on. A nil fn removes the hook.
func (k *Kernel) SetObserver(fn func()) { k.observer = fn }

// StopCause returns the cause passed to the most recent Stop, or "".
func (k *Kernel) StopCause() string { return k.stopCause }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// Run executes events in virtual-time order until one of:
//   - the schedule drains (returns nil),
//   - virtual time would exceed horizon (returns nil; the event at a time
//     past the horizon remains scheduled and time stops at the horizon),
//   - Stop is called (returns ErrStopped),
//   - more than maxEvents events execute, if maxEvents > 0 (returns an
//     error matching ErrMaxEvents; this guards against non-terminating
//     protocols in tests).
func (k *Kernel) Run(horizon simtime.Time, maxEvents uint64) error {
	if k.running {
		return errors.New("sim: Run called reentrantly")
	}
	k.running = true
	defer func() { k.running = false }()

	start := k.executed
	for {
		if k.stopped {
			return ErrStopped
		}
		at, ok := k.sched.PeekTime()
		if !ok {
			return nil // drained
		}
		if at.After(horizon) {
			// Leave the event scheduled and halt at the horizon. The clock
			// only ever moves forward: a horizon already in the past (a
			// resumed kernel driven with a smaller bound) must not rewind.
			if horizon.After(k.now) {
				k.now = horizon
			}
			return nil
		}
		if maxEvents > 0 && k.executed-start >= maxEvents {
			return fmt.Errorf("%w: exceeded %d events at %v", ErrMaxEvents, maxEvents, k.now)
		}
		k.execute()
	}
}

// Step executes exactly one pending event (the earliest) and returns true,
// or returns false if the schedule is empty or the kernel has been stopped
// — Step honours Stop exactly like Run does (a stopped kernel makes no
// progress until the stop is observed by the driver). Step ignores any
// horizon; use StepWithin to bound it. Useful for fine-grained tests and
// bounded model-checking drivers.
func (k *Kernel) Step() bool {
	return k.StepWithin(simtime.Forever)
}

// StepWithin is Step with a horizon guard, mirroring Run: if the earliest
// pending event lies strictly beyond horizon, no event runs, virtual time
// advances to the horizon, and StepWithin returns false with the event
// still scheduled.
func (k *Kernel) StepWithin(horizon simtime.Time) bool {
	if k.stopped {
		return false
	}
	at, ok := k.sched.PeekTime()
	if !ok {
		return false
	}
	if at.After(horizon) {
		if horizon.After(k.now) {
			k.now = horizon
		}
		return false
	}
	k.execute()
	return true
}

// execute pops the earliest live event (which must exist) and runs it.
func (k *Kernel) execute() {
	ev, ok := k.sched.Pop()
	if !ok {
		panic("sim: execute with an empty schedule")
	}
	if ev.ticket != nil {
		ev.ticket.idx = doneIdx
	}
	k.now = ev.at
	k.executed++
	if ev.afn != nil {
		ev.afn(ev.arg)
	} else {
		ev.fn()
	}
	if k.observer != nil {
		k.observer()
	}
}
