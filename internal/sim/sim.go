// Package sim is a deterministic discrete-event simulation kernel.
//
// All network executions in this repository — ABE, ABD, fully asynchronous
// and synchronous — run on this kernel. Events are closures scheduled at
// virtual instants; the kernel executes them in time order with a
// deterministic tie-break (insertion sequence), so a run is a pure function
// of the initial schedule and the random seed. That determinism is what
// makes the paper's expected-complexity claims measurable: every data point
// is reproducible from (parameters, seed).
//
// # Scheduling internals
//
// The pending-event set is an intrusive 4-ary min-heap ordered by
// (instant, insertion sequence) and stored in a single value slice — the
// slice doubles as the event pool, so steady-state scheduling allocates
// nothing. There is no container/heap and no interface boxing on the hot
// path. Two API tiers sit on top of it:
//
//   - AtFunc / AfterFunc — the ticketless fast path. No per-event
//     allocation at all; use these whenever the caller never cancels
//     (message deliveries, self-rescheduling tick loops, fault timelines).
//   - At / After — allocate one *Ticket so the event can be cancelled
//     later. Cancellation marks the heap entry dead in place; dead entries
//     are skipped on pop and compacted away wholesale once they outnumber
//     the live ones, so cancel-heavy workloads (ARQ retransmit timers)
//     cannot bloat the heap.
//
// Pending() is O(1): the kernel tracks the live-event count directly.
package sim

import (
	"errors"
	"fmt"

	"abenet/internal/simtime"
)

// ErrStopped is returned by Run when the simulation was halted by Stop
// before reaching its horizon or draining its schedule.
var ErrStopped = errors.New("sim: stopped")

// Handler is a scheduled piece of work. It runs at its scheduled virtual
// instant and may schedule further events.
type Handler func()

// event is one entry in the pending-event set. Events are stored by value
// inside the kernel's heap slice; they are never heap-allocated
// individually.
type event struct {
	at     simtime.Time
	seq    uint64 // tie-break: events at equal instants run in schedule order
	fn     Handler
	ticket *Ticket // non-nil only for ticketed (cancellable) events
	dead   bool    // cancelled; skipped on pop, removed by compaction
}

// less orders events by (at, seq). seq is unique per kernel, so the order
// is total and every correct heap pops the exact same sequence — the
// golden-seed pins depend on that.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Ticket identifies a scheduled event so it can be cancelled. The zero value
// is not a valid ticket; tickets come from Kernel.At and Kernel.After.
type Ticket struct {
	k   *Kernel
	idx int // heap index of the event; -1 once it ran or was cancelled
}

// Cancel removes the event from the schedule if it has not run yet. Cancel
// is idempotent and reports whether the event was actually cancelled (false
// if it already ran or was already cancelled). The captured handler is
// released immediately; the heap slot itself is reclaimed lazily (on pop or
// at the next compaction).
func (t *Ticket) Cancel() bool {
	if t == nil || t.k == nil || t.idx < 0 {
		return false
	}
	k := t.k
	ev := &k.heap[t.idx]
	ev.dead = true
	ev.fn = nil // release captured state promptly
	ev.ticket = nil
	t.idx = -1
	k.live--
	k.dead++
	k.maybeCompact()
	return true
}

// Pending reports whether the event is still scheduled.
func (t *Ticket) Pending() bool { return t != nil && t.idx >= 0 }

// compactMinLen is the heap length below which compaction is never
// worthwhile: popping the few dead entries lazily is cheaper than a sweep.
const compactMinLen = 64

// Kernel is a discrete-event scheduler. The zero value is not usable; create
// one with New. Kernel is not safe for concurrent use: simulations are
// single-threaded by design, and cross-run parallelism is achieved by
// running independent Kernels on separate goroutines.
type Kernel struct {
	now       simtime.Time
	heap      []event // 4-ary min-heap by (at, seq); the slice is the event pool
	seq       uint64
	live      int // scheduled, not cancelled — Pending() in O(1)
	dead      int // cancelled entries still occupying heap slots
	executed  uint64
	stopped   bool
	running   bool
	stopCause string
	observer  func() // post-event hook; see SetObserver
}

// New returns an empty kernel at virtual time zero.
func New() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time.
func (k *Kernel) Now() simtime.Time { return k.now }

// Executed returns the number of events that have run so far. It is a cheap
// progress measure and a guard against runaway protocols in tests.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending returns the number of scheduled (not yet executed, not cancelled)
// events in O(1). Cancelled events still occupying heap slots are not
// counted.
func (k *Kernel) Pending() int { return k.live }

// QueueLen returns the number of heap slots currently in use, including
// cancelled entries that have not been compacted away yet. It exists for
// capacity accounting and tests: QueueLen−Pending is the dead backlog,
// and compaction (triggered when dead entries outnumber live ones) keeps
// QueueLen at most 2·Pending+compactMinLen.
func (k *Kernel) QueueLen() int { return len(k.heap) }

// schedule validates and enqueues one event, returning its heap index.
func (k *Kernel) schedule(at simtime.Time, fn Handler, ticket *Ticket) int {
	if fn == nil {
		panic("sim: scheduling a nil handler")
	}
	if !at.IsFinite() {
		panic(fmt.Sprintf("sim: scheduling at non-finite time %v", at))
	}
	if at.Before(k.now) {
		panic(fmt.Sprintf("sim: scheduling into the past: now %v, requested %v", k.now, at))
	}
	ev := event{at: at, seq: k.seq, fn: fn, ticket: ticket}
	k.seq++
	k.live++
	k.heap = append(k.heap, ev)
	return k.siftUp(len(k.heap) - 1)
}

// At schedules fn to run at instant at and returns a cancellation ticket.
// Scheduling strictly in the past is a programming error and panics;
// scheduling at the current instant is allowed and runs after all
// previously scheduled events for that instant. Callers that never cancel
// should prefer AtFunc, which skips the ticket allocation.
func (k *Kernel) At(at simtime.Time, fn Handler) *Ticket {
	t := &Ticket{k: k}
	t.idx = k.schedule(at, fn, t)
	return t
}

// AtFunc schedules fn to run at instant at, with the same validation as At
// but no cancellation handle — and therefore no per-event allocation. This
// is the hot path for the overwhelming share of events (message
// deliveries, tick loops, fault timelines), which are never cancelled.
func (k *Kernel) AtFunc(at simtime.Time, fn Handler) {
	k.schedule(at, fn, nil)
}

// After schedules fn to run d time units from now and returns a
// cancellation ticket. It panics if d is negative or non-finite.
func (k *Kernel) After(d simtime.Duration, fn Handler) *Ticket {
	if !d.Valid() {
		panic(fmt.Sprintf("sim: After called with invalid duration %v", d))
	}
	return k.At(k.now.Add(d), fn)
}

// AfterFunc schedules fn to run d time units from now without a ticket —
// the allocation-free counterpart of After.
func (k *Kernel) AfterFunc(d simtime.Duration, fn Handler) {
	if !d.Valid() {
		panic(fmt.Sprintf("sim: AfterFunc called with invalid duration %v", d))
	}
	k.AtFunc(k.now.Add(d), fn)
}

// Stop halts the simulation after the currently executing event completes.
// The cause is reported by StopCause. Calling Stop outside Run simply marks
// the kernel so the next Run returns immediately.
func (k *Kernel) Stop(cause string) {
	k.stopped = true
	k.stopCause = cause
}

// SetObserver installs fn to run immediately after every executed event's
// handler returns, with the kernel's time and counters already advanced.
// Observers exist for measurement (time-series probes): they must only
// read state — scheduling, cancelling, or stopping from an observer would
// make an observed run diverge from an unobserved one, defeating the
// byte-identity guarantee the probes depend on. A nil fn removes the hook.
func (k *Kernel) SetObserver(fn func()) { k.observer = fn }

// StopCause returns the cause passed to the most recent Stop, or "".
func (k *Kernel) StopCause() string { return k.stopCause }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// Run executes events in virtual-time order until one of:
//   - the schedule drains (returns nil),
//   - virtual time would exceed horizon (returns nil; the event at a time
//     past the horizon remains scheduled and time stops at the horizon),
//   - Stop is called (returns ErrStopped),
//   - more than maxEvents events execute, if maxEvents > 0 (returns an
//     error; this guards against non-terminating protocols in tests).
func (k *Kernel) Run(horizon simtime.Time, maxEvents uint64) error {
	if k.running {
		return errors.New("sim: Run called reentrantly")
	}
	k.running = true
	defer func() { k.running = false }()

	start := k.executed
	for {
		if k.stopped {
			return ErrStopped
		}
		k.dropDead()
		if len(k.heap) == 0 {
			return nil // drained
		}
		if k.heap[0].at.After(horizon) {
			// Leave the event scheduled and halt at the horizon. The clock
			// only ever moves forward: a horizon already in the past (a
			// resumed kernel driven with a smaller bound) must not rewind.
			if horizon.After(k.now) {
				k.now = horizon
			}
			return nil
		}
		if maxEvents > 0 && k.executed-start >= maxEvents {
			return fmt.Errorf("sim: exceeded %d events at %v (possible livelock)", maxEvents, k.now)
		}
		k.execute()
	}
}

// Step executes exactly one pending event (the earliest) and returns true,
// or returns false if the schedule is empty or the kernel has been stopped
// — Step honours Stop exactly like Run does (a stopped kernel makes no
// progress until the stop is observed by the driver). Step ignores any
// horizon; use StepWithin to bound it. Useful for fine-grained tests and
// bounded model-checking drivers.
func (k *Kernel) Step() bool {
	return k.StepWithin(simtime.Forever)
}

// StepWithin is Step with a horizon guard, mirroring Run: if the earliest
// pending event lies strictly beyond horizon, no event runs, virtual time
// advances to the horizon, and StepWithin returns false with the event
// still scheduled.
func (k *Kernel) StepWithin(horizon simtime.Time) bool {
	if k.stopped {
		return false
	}
	k.dropDead()
	if len(k.heap) == 0 {
		return false
	}
	if k.heap[0].at.After(horizon) {
		if horizon.After(k.now) {
			k.now = horizon
		}
		return false
	}
	k.execute()
	return true
}

// execute pops the root event (which must exist and be live) and runs it.
func (k *Kernel) execute() {
	ev := k.popRoot()
	if ev.ticket != nil {
		ev.ticket.idx = -1
	}
	k.live--
	// Executing live events shrinks the live population too, so the dead
	// fraction can cross the compaction threshold here just as it can on
	// Cancel — without this, a cancel-then-run workload would carry its
	// dead entries until virtual time reached them.
	k.maybeCompact()
	k.now = ev.at
	k.executed++
	ev.fn()
	if k.observer != nil {
		k.observer()
	}
}

// dropDead discards cancelled events sitting at the heap root so the root
// is either live or the heap is empty.
func (k *Kernel) dropDead() {
	for len(k.heap) > 0 && k.heap[0].dead {
		k.popRoot()
		k.dead--
	}
}

// popRoot removes and returns the root event, maintaining the heap
// property and ticket back-pointers. The vacated slot is zeroed so the
// handler's captures are released.
func (k *Kernel) popRoot() event {
	ev := k.heap[0]
	n := len(k.heap) - 1
	if n > 0 {
		k.heap[0] = k.heap[n]
	}
	k.heap[n] = event{}
	k.heap = k.heap[:n]
	if n > 0 {
		k.siftDown(0) // also refreshes the moved entry's ticket index
	}
	return ev
}

// siftUp restores the heap property for the entry at index i by moving it
// towards the root, updating ticket back-pointers of displaced entries. It
// returns the entry's final index.
func (k *Kernel) siftUp(i int) int {
	ev := k.heap[i]
	for i > 0 {
		p := (i - 1) / 4
		if !less(&ev, &k.heap[p]) {
			break
		}
		k.heap[i] = k.heap[p]
		if t := k.heap[i].ticket; t != nil {
			t.idx = i
		}
		i = p
	}
	k.heap[i] = ev
	if ev.ticket != nil {
		ev.ticket.idx = i
	}
	return i
}

// siftDown restores the heap property for the entry at index i by moving it
// towards the leaves, updating ticket back-pointers of displaced entries.
func (k *Kernel) siftDown(i int) {
	n := len(k.heap)
	ev := k.heap[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(&k.heap[j], &k.heap[m]) {
				m = j
			}
		}
		if !less(&k.heap[m], &ev) {
			break
		}
		k.heap[i] = k.heap[m]
		if t := k.heap[i].ticket; t != nil {
			t.idx = i
		}
		i = m
	}
	k.heap[i] = ev
	if ev.ticket != nil {
		ev.ticket.idx = i
	}
}

// maybeCompact sweeps cancelled entries out of the heap once they outnumber
// the live ones (and the heap is big enough for the sweep to pay off). The
// trigger depends only on counters, so compaction — like everything else
// here — is a deterministic function of the schedule.
func (k *Kernel) maybeCompact() {
	if len(k.heap) >= compactMinLen && k.dead > len(k.heap)/2 {
		k.compact()
	}
}

// compact removes every dead entry in one pass and re-establishes the heap
// property and ticket back-pointers. Pop order is unaffected: (at, seq)
// is a total order, so any heap over the same live set pops identically.
func (k *Kernel) compact() {
	liveEvents := k.heap[:0]
	for i := range k.heap {
		if !k.heap[i].dead {
			liveEvents = append(liveEvents, k.heap[i])
		}
	}
	for i := len(liveEvents); i < len(k.heap); i++ {
		k.heap[i] = event{} // release the vacated tail
	}
	k.heap = liveEvents
	k.dead = 0
	if n := len(k.heap); n > 1 {
		for i := (n - 2) / 4; i >= 0; i-- {
			k.siftDown(i)
		}
	}
	for i := range k.heap {
		if t := k.heap[i].ticket; t != nil {
			t.idx = i
		}
	}
}
