package sim

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"

	"abenet/internal/rng"
	"abenet/internal/simtime"
)

func TestRunsInTimeOrder(t *testing.T) {
	k := New()
	var order []simtime.Time
	times := []simtime.Time{5, 1, 3, 2, 4}
	for _, at := range times {
		at := at
		k.At(at, func() { order = append(order, at) })
	}
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("events ran out of order: %v", order)
	}
	if len(order) != len(times) {
		t.Fatalf("ran %d events, want %d", len(order), len(times))
	}
	if k.Now() != 5 {
		t.Fatalf("final time %v, want 5", k.Now())
	}
}

func TestTieBreakIsScheduleOrder(t *testing.T) {
	k := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(1, func() { order = append(order, i) })
	}
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated: %v", order)
		}
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	k := New()
	var hits []simtime.Time
	k.At(1, func() {
		hits = append(hits, k.Now())
		k.After(2, func() { hits = append(hits, k.Now()) })
	})
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Fatalf("hits = %v, want [1 3]", hits)
	}
}

func TestSameInstantSchedulingRunsAfterCurrent(t *testing.T) {
	k := New()
	var order []string
	k.At(1, func() {
		order = append(order, "a")
		k.After(0, func() { order = append(order, "c") })
	})
	k.At(1, func() { order = append(order, "b") })
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestHorizonStopsTime(t *testing.T) {
	k := New()
	ran := false
	k.At(10, func() { ran = true })
	if err := k.Run(5, 0); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("event past horizon ran")
	}
	if k.Now() != 5 {
		t.Fatalf("time = %v, want horizon 5", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	// A later Run can pick the event up.
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("event did not run after extending horizon")
	}
}

func TestStopInsideEvent(t *testing.T) {
	k := New()
	ran2 := false
	k.At(1, func() { k.Stop("test cause") })
	k.At(2, func() { ran2 = true })
	err := k.Run(simtime.Forever, 0)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if ran2 {
		t.Fatal("event after Stop ran")
	}
	if k.StopCause() != "test cause" {
		t.Fatalf("cause = %q", k.StopCause())
	}
	if !k.Stopped() {
		t.Fatal("Stopped() = false")
	}
}

func TestMaxEventsGuard(t *testing.T) {
	k := New()
	var tick func()
	tick = func() { k.After(1, tick) } // immortal self-rescheduling event
	k.At(0, tick)
	err := k.Run(simtime.Forever, 100)
	if err == nil || errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want livelock guard error", err)
	}
	if k.Executed() != 100 {
		t.Fatalf("executed = %d, want 100", k.Executed())
	}
}

func TestCancel(t *testing.T) {
	k := New()
	ran := false
	ticket := k.At(1, func() { ran = true })
	if !ticket.Pending() {
		t.Fatal("ticket should be pending")
	}
	if !ticket.Cancel() {
		t.Fatal("first Cancel should succeed")
	}
	if ticket.Cancel() {
		t.Fatal("second Cancel should be a no-op")
	}
	if ticket.Pending() {
		t.Fatal("cancelled ticket still pending")
	}
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestCancelAfterRunIsNoop(t *testing.T) {
	k := New()
	ticket := k.At(1, func() {})
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if ticket.Cancel() {
		t.Fatal("Cancel after execution should return false")
	}
}

func TestNilTicketCancelSafe(t *testing.T) {
	var ticket *Ticket
	if ticket.Cancel() {
		t.Fatal("nil ticket Cancel should be false")
	}
	if ticket.Pending() {
		t.Fatal("nil ticket should not be pending")
	}
}

func TestPendingCountSkipsCancelled(t *testing.T) {
	k := New()
	t1 := k.At(1, func() {})
	k.At(2, func() {})
	t1.Cancel()
	if got := k.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
}

func TestPanicsOnPastScheduling(t *testing.T) {
	k := New()
	k.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		k.At(1, func() {})
	})
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnNilHandler(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	New().At(1, nil)
}

func TestPanicsOnInvalidDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	New().After(-1, func() {})
}

func TestStep(t *testing.T) {
	k := New()
	count := 0
	k.At(1, func() { count++ })
	k.At(2, func() { count++ })
	if !k.Step() {
		t.Fatal("Step should run the first event")
	}
	if count != 1 || k.Now() != 1 {
		t.Fatalf("after one step: count=%d now=%v", count, k.Now())
	}
	if !k.Step() {
		t.Fatal("Step should run the second event")
	}
	if k.Step() {
		t.Fatal("Step on empty schedule should return false")
	}
	if count != 2 {
		t.Fatalf("count = %d", count)
	}
}

func TestReentrantRunRejected(t *testing.T) {
	k := New()
	var innerErr error
	k.At(1, func() {
		innerErr = k.Run(simtime.Forever, 0)
	})
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if innerErr == nil {
		t.Fatal("reentrant Run should error")
	}
}

func TestManyRandomEventsStayOrdered(t *testing.T) {
	// Property: for arbitrary seeds, execution order is non-decreasing in
	// time even with events scheduled from within events.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		k := New()
		var last simtime.Time
		ok := true
		var spawn func(depth int)
		spawn = func(depth int) {
			if k.Now() < last {
				ok = false
			}
			last = k.Now()
			if depth <= 0 {
				return
			}
			n := r.Intn(3)
			for i := 0; i < n; i++ {
				d := simtime.Duration(r.Float64() * 10)
				k.After(d, func() { spawn(depth - 1) })
			}
		}
		for i := 0; i < 10; i++ {
			at := simtime.Time(r.Float64() * 10)
			k.At(at, func() { spawn(3) })
		}
		if err := k.Run(simtime.Forever, 100000); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed uint64) []simtime.Time {
		r := rng.New(seed)
		k := New()
		var log []simtime.Time
		var tick func()
		remaining := 200
		tick = func() {
			log = append(log, k.Now())
			remaining--
			if remaining > 0 {
				k.After(simtime.Duration(r.ExpFloat64()), tick)
			}
		}
		k.At(0, tick)
		if err := k.Run(simtime.Forever, 0); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(77), run(77)
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := New()
		r := rng.New(uint64(i))
		var tick func()
		remaining := 1000
		tick = func() {
			remaining--
			if remaining > 0 {
				k.After(simtime.Duration(r.ExpFloat64()), tick)
			}
		}
		k.At(0, tick)
		if err := k.Run(simtime.Forever, 0); err != nil {
			b.Fatal(err)
		}
	}
}
