package sim

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"

	"abenet/internal/rng"
	"abenet/internal/simtime"
)

func TestRunsInTimeOrder(t *testing.T) {
	k := New()
	var order []simtime.Time
	times := []simtime.Time{5, 1, 3, 2, 4}
	for _, at := range times {
		at := at
		k.At(at, func() { order = append(order, at) })
	}
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("events ran out of order: %v", order)
	}
	if len(order) != len(times) {
		t.Fatalf("ran %d events, want %d", len(order), len(times))
	}
	if k.Now() != 5 {
		t.Fatalf("final time %v, want 5", k.Now())
	}
}

func TestTieBreakIsScheduleOrder(t *testing.T) {
	k := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(1, func() { order = append(order, i) })
	}
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated: %v", order)
		}
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	k := New()
	var hits []simtime.Time
	k.At(1, func() {
		hits = append(hits, k.Now())
		k.After(2, func() { hits = append(hits, k.Now()) })
	})
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Fatalf("hits = %v, want [1 3]", hits)
	}
}

func TestSameInstantSchedulingRunsAfterCurrent(t *testing.T) {
	k := New()
	var order []string
	k.At(1, func() {
		order = append(order, "a")
		k.After(0, func() { order = append(order, "c") })
	})
	k.At(1, func() { order = append(order, "b") })
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestHorizonStopsTime(t *testing.T) {
	k := New()
	ran := false
	k.At(10, func() { ran = true })
	if err := k.Run(5, 0); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("event past horizon ran")
	}
	if k.Now() != 5 {
		t.Fatalf("time = %v, want horizon 5", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	// A later Run can pick the event up.
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("event did not run after extending horizon")
	}
}

func TestStopInsideEvent(t *testing.T) {
	k := New()
	ran2 := false
	k.At(1, func() { k.Stop("test cause") })
	k.At(2, func() { ran2 = true })
	err := k.Run(simtime.Forever, 0)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if ran2 {
		t.Fatal("event after Stop ran")
	}
	if k.StopCause() != "test cause" {
		t.Fatalf("cause = %q", k.StopCause())
	}
	if !k.Stopped() {
		t.Fatal("Stopped() = false")
	}
}

func TestMaxEventsGuard(t *testing.T) {
	k := New()
	var tick func()
	tick = func() { k.After(1, tick) } // immortal self-rescheduling event
	k.At(0, tick)
	err := k.Run(simtime.Forever, 100)
	if err == nil || errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want livelock guard error", err)
	}
	if k.Executed() != 100 {
		t.Fatalf("executed = %d, want 100", k.Executed())
	}
}

func TestCancel(t *testing.T) {
	k := New()
	ran := false
	ticket := k.At(1, func() { ran = true })
	if !ticket.Pending() {
		t.Fatal("ticket should be pending")
	}
	if !ticket.Cancel() {
		t.Fatal("first Cancel should succeed")
	}
	if ticket.Cancel() {
		t.Fatal("second Cancel should be a no-op")
	}
	if ticket.Pending() {
		t.Fatal("cancelled ticket still pending")
	}
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestCancelAfterRunIsNoop(t *testing.T) {
	k := New()
	ticket := k.At(1, func() {})
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if ticket.Cancel() {
		t.Fatal("Cancel after execution should return false")
	}
}

func TestNilTicketCancelSafe(t *testing.T) {
	var ticket *Ticket
	if ticket.Cancel() {
		t.Fatal("nil ticket Cancel should be false")
	}
	if ticket.Pending() {
		t.Fatal("nil ticket should not be pending")
	}
}

func TestPendingCountSkipsCancelled(t *testing.T) {
	k := New()
	t1 := k.At(1, func() {})
	k.At(2, func() {})
	t1.Cancel()
	if got := k.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
}

func TestPanicsOnPastScheduling(t *testing.T) {
	k := New()
	k.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		k.At(1, func() {})
	})
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnNilHandler(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	New().At(1, nil)
}

func TestPanicsOnInvalidDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	New().After(-1, func() {})
}

func TestStep(t *testing.T) {
	k := New()
	count := 0
	k.At(1, func() { count++ })
	k.At(2, func() { count++ })
	if !k.Step() {
		t.Fatal("Step should run the first event")
	}
	if count != 1 || k.Now() != 1 {
		t.Fatalf("after one step: count=%d now=%v", count, k.Now())
	}
	if !k.Step() {
		t.Fatal("Step should run the second event")
	}
	if k.Step() {
		t.Fatal("Step on empty schedule should return false")
	}
	if count != 2 {
		t.Fatalf("count = %d", count)
	}
}

func TestReentrantRunRejected(t *testing.T) {
	k := New()
	var innerErr error
	k.At(1, func() {
		innerErr = k.Run(simtime.Forever, 0)
	})
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if innerErr == nil {
		t.Fatal("reentrant Run should error")
	}
}

func TestManyRandomEventsStayOrdered(t *testing.T) {
	// Property: for arbitrary seeds, execution order is non-decreasing in
	// time even with events scheduled from within events.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		k := New()
		var last simtime.Time
		ok := true
		var spawn func(depth int)
		spawn = func(depth int) {
			if k.Now() < last {
				ok = false
			}
			last = k.Now()
			if depth <= 0 {
				return
			}
			n := r.Intn(3)
			for i := 0; i < n; i++ {
				d := simtime.Duration(r.Float64() * 10)
				k.After(d, func() { spawn(depth - 1) })
			}
		}
		for i := 0; i < 10; i++ {
			at := simtime.Time(r.Float64() * 10)
			k.At(at, func() { spawn(3) })
		}
		if err := k.Run(simtime.Forever, 100000); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed uint64) []simtime.Time {
		r := rng.New(seed)
		k := New()
		var log []simtime.Time
		var tick func()
		remaining := 200
		tick = func() {
			log = append(log, k.Now())
			remaining--
			if remaining > 0 {
				k.After(simtime.Duration(r.ExpFloat64()), tick)
			}
		}
		k.At(0, tick)
		if err := k.Run(simtime.Forever, 0); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(77), run(77)
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := New()
		r := rng.New(uint64(i))
		var tick func()
		remaining := 1000
		tick = func() {
			remaining--
			if remaining > 0 {
				k.After(simtime.Duration(r.ExpFloat64()), tick)
			}
		}
		k.At(0, tick)
		if err := k.Run(simtime.Forever, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStepRespectsStop(t *testing.T) {
	// Regression: Step used to execute events even after Stop, unlike Run.
	k := New()
	ran := false
	k.At(1, func() { ran = true })
	k.Stop("halt")
	if k.Step() {
		t.Fatal("Step made progress on a stopped kernel")
	}
	if ran {
		t.Fatal("Step executed an event on a stopped kernel")
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want the event still scheduled", k.Pending())
	}
}

func TestStepWithinHorizon(t *testing.T) {
	k := New()
	count := 0
	k.At(1, func() { count++ })
	k.At(10, func() { count++ })
	if !k.StepWithin(5) {
		t.Fatal("StepWithin should run the event at t=1")
	}
	if k.StepWithin(5) {
		t.Fatal("StepWithin ran an event past the horizon")
	}
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if k.Now() != 5 {
		t.Fatalf("time = %v, want the horizon 5 (mirroring Run)", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want the t=10 event still scheduled", k.Pending())
	}
	// A later step with a wider horizon picks the event up.
	if !k.StepWithin(simtime.Forever) {
		t.Fatal("StepWithin(Forever) should run the remaining event")
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestTicketlessSchedulingRunsIdentically(t *testing.T) {
	// AtFunc/AfterFunc must consume the same sequence numbers and produce
	// the same execution order as their ticketed counterparts.
	trace := func(ticketless bool) []int {
		k := New()
		var order []int
		add := func(at simtime.Time, i int) {
			if ticketless {
				k.AtFunc(at, func() { order = append(order, i) })
			} else {
				k.At(at, func() { order = append(order, i) })
			}
		}
		for i, at := range []simtime.Time{5, 1, 5, 3, 1} {
			add(at, i)
		}
		if err := k.Run(simtime.Forever, 0); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := trace(true), trace(false)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ticketless order %v diverges from ticketed %v", a, b)
		}
	}
}

// TestCancelHeavyHeapStaysBounded is the regression for cancelled events
// being invisible to capacity accounting: schedule and cancel 100k timers
// and require (a) O(1) Pending via the live counter, and (b) a heap that
// sheds dead entries instead of retaining all 100k until pop.
func TestCancelHeavyHeapStaysBounded(t *testing.T) {
	k := New()
	const total = 100_000
	live := 0
	tickets := make([]*Ticket, 0, total)
	for i := 0; i < total; i++ {
		at := simtime.Time(1 + i%997)
		tickets = append(tickets, k.At(at, func() {}))
		// Cancel all but every 1000th timer, the ARQ-retransmit pattern:
		// nearly every timer is cancelled long before it would fire.
		if i%1000 != 0 {
			tickets[len(tickets)-1].Cancel()
		} else {
			live++
		}
	}
	if got := k.Pending(); got != live {
		t.Fatalf("Pending = %d, want %d", got, live)
	}
	// Compaction keeps dead entries a minority: the heap may hold at most
	// 2·live+compactMinLen slots, not the ~100k cancelled ones.
	if max := 2*live + compactMinLen; k.QueueLen() > max {
		t.Fatalf("heap holds %d slots for %d live events (bound %d): cancellations are not compacted", k.QueueLen(), live, max)
	}
	pending := 0
	for _, tk := range tickets {
		if tk.Pending() {
			pending++
		}
	}
	if pending != live {
		t.Fatalf("%d tickets still pending, want %d", pending, live)
	}
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if int(k.Executed()) != live {
		t.Fatalf("executed %d events, want the %d live ones", k.Executed(), live)
	}
	if k.QueueLen() != 0 || k.Pending() != 0 {
		t.Fatalf("queue not drained: len=%d pending=%d", k.QueueLen(), k.Pending())
	}
}

// TestCompactionPreservesOrder cancels a pseudo-random half of a large
// schedule (forcing compactions) and checks the survivors still run in
// exact (time, insertion) order.
func TestCompactionPreservesOrder(t *testing.T) {
	k := New()
	r := rng.New(99)
	type key struct {
		at  simtime.Time
		seq int
	}
	var want []key
	var got []key
	for i := 0; i < 5000; i++ {
		i := i
		at := simtime.Time(r.Float64() * 100)
		tk := k.At(at, func() { got = append(got, key{at, i}) })
		if r.Bool(0.5) {
			tk.Cancel()
		} else {
			want = append(want, key{at, i})
		}
	}
	sort.SliceStable(want, func(a, b int) bool { return want[a].at < want[b].at })
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order diverged at %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestSchedulingAllocations pins the allocation contract of the two API
// tiers: the ticketless fast path allocates nothing once the heap slice is
// warm; the ticketed path allocates exactly its one *Ticket.
func TestSchedulingAllocations(t *testing.T) {
	k := New()
	fn := func() {}
	// Warm the heap slice so append never grows inside the measurement.
	for i := 0; i < 128; i++ {
		k.AtFunc(0, fn)
	}
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}

	if avg := testing.AllocsPerRun(1000, func() {
		k.AtFunc(k.Now(), fn)
		if err := k.Run(simtime.Forever, 0); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("AtFunc+Run allocates %g objects per event, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		k.AfterFunc(1, fn)
		if err := k.Run(simtime.Forever, 0); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("AfterFunc+Run allocates %g objects per event, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		k.At(k.Now(), fn)
		if err := k.Run(simtime.Forever, 0); err != nil {
			t.Fatal(err)
		}
	}); avg != 1 {
		t.Errorf("At+Run allocates %g objects per event, want exactly the 1 ticket", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		k.At(k.Now().Add(1), fn).Cancel()
	}); avg != 1 {
		t.Errorf("At+Cancel allocates %g objects per event, want exactly the 1 ticket", avg)
	}
}

func TestStepWithinPastHorizonDoesNotRewind(t *testing.T) {
	// Regression (review finding): a horizon earlier than the current
	// virtual time must not move the clock backwards.
	k := New()
	k.At(10, func() {})
	k.At(12, func() {})
	if !k.StepWithin(simtime.Forever) {
		t.Fatal("first step should run the t=10 event")
	}
	if k.StepWithin(5) {
		t.Fatal("no event lies within the past horizon")
	}
	if k.Now() != 10 {
		t.Fatalf("clock rewound to %v, want it held at 10", k.Now())
	}
	// Run must hold the same invariant.
	if err := k.Run(5, 0); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 10 {
		t.Fatalf("Run rewound the clock to %v, want 10", k.Now())
	}
}

// TestCompactionTriggersDuringRun is the regression for compaction being
// reachable only from Cancel: cancel a dead minority (no sweep fires),
// then execute live events until the dead entries dominate — the kernel
// must shed them mid-run instead of carrying them to their instants.
func TestCompactionTriggersDuringRun(t *testing.T) {
	k := New()
	fn := func() {}
	tickets := make([]*Ticket, 0, 10000)
	for i := 1; i <= 10000; i++ {
		tickets = append(tickets, k.At(simtime.Time(i), fn))
	}
	for i := 5001; i <= 9000; i++ {
		tickets[i-1].Cancel() // dead = 4000 < len/2: no sweep yet
	}
	if err := k.Run(5000, 0); err != nil {
		t.Fatal(err)
	}
	if got := k.Pending(); got != 1000 {
		t.Fatalf("Pending = %d, want 1000", got)
	}
	if max := 2*k.Pending() + compactMinLen; k.QueueLen() > max {
		t.Fatalf("heap holds %d slots for %d live events (bound %d): execution never re-checks the compaction threshold",
			k.QueueLen(), k.Pending(), max)
	}
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if k.Executed() != 6000 {
		t.Fatalf("executed %d events, want 6000", k.Executed())
	}
}
