package sim

import (
	"testing"

	"abenet/internal/rng"
	"abenet/internal/simtime"
)

// The kernel's microbenchmark suite: schedule/run/cancel mixes over the
// two API tiers. Run with -benchmem — the allocation columns are the
// numbers the ticketless redesign exists for (see the alloc pins in
// TestSchedulingAllocations for the hard contract).

// BenchmarkScheduleRunTicketless is BenchmarkScheduleAndRun on the
// fast path: a self-rescheduling tick chain via AfterFunc, the shape of
// every tick loop and message delivery in the repository.
func BenchmarkScheduleRunTicketless(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := New()
		r := rng.New(uint64(i))
		var tick func()
		remaining := 1000
		tick = func() {
			remaining--
			if remaining > 0 {
				k.AfterFunc(simtime.Duration(r.ExpFloat64()), tick)
			}
		}
		k.AtFunc(0, tick)
		if err := k.Run(simtime.Forever, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleBurstDrain schedules 1000 events up front (the network
// wiring / fault-timeline shape) and drains them.
func BenchmarkScheduleBurstDrain(b *testing.B) {
	fn := func() {}
	for i := 0; i < b.N; i++ {
		k := New()
		r := rng.New(uint64(i))
		for j := 0; j < 1000; j++ {
			k.AtFunc(simtime.Time(r.Float64()*1000), fn)
		}
		if err := k.Run(simtime.Forever, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCancelHeavy is the ARQ-retransmit pattern: almost every timer
// is ticketed and cancelled before it fires. It exercises Cancel and the
// compaction sweep.
func BenchmarkCancelHeavy(b *testing.B) {
	fn := func() {}
	for i := 0; i < b.N; i++ {
		k := New()
		r := rng.New(uint64(i))
		for j := 0; j < 1000; j++ {
			t := k.At(simtime.Time(1+r.Float64()*1000), fn)
			if j%10 != 0 {
				t.Cancel()
			}
		}
		if err := k.Run(simtime.Forever, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPending measures the O(1) pending counter against a large
// part-cancelled schedule.
func BenchmarkPending(b *testing.B) {
	k := New()
	fn := func() {}
	for j := 0; j < 10000; j++ {
		t := k.At(simtime.Time(1+j), fn)
		if j%2 == 0 {
			t.Cancel()
		}
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		n += k.Pending()
	}
	if n == 0 {
		b.Fatal("pending count vanished")
	}
}
