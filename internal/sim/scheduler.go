package sim

import (
	"fmt"

	"abenet/internal/simtime"
)

// Scheduler is the pending-event set behind a Kernel: everything between
// "schedule this closure at that instant" and "hand me the earliest live
// event". Two implementations ship with the package — the intrusive 4-ary
// heap (SchedulerHeap, the default) and a calendar queue (SchedulerCalendar)
// — selectable per run via NewNamed or the runner's Env.Scheduler field.
//
// Every implementation MUST pop events in exactly (at, seq) order: at is the
// virtual instant, seq the kernel-assigned insertion sequence, and the pair
// is a total order. The golden-seed pins and the cross-scheduler
// differential suite depend on every scheduler producing byte-identical
// executions, so an implementation that reorders equal-instant events —
// however plausibly — is wrong, not merely different.
//
// The interface traffics in the package-private event type, so it is sealed:
// outside packages select implementations by name but cannot add their own.
// That is deliberate — the determinism contract above is enforced by this
// package's differential tests, which can only cover schedulers they know
// about.
type Scheduler interface {
	// Name returns the registry name ("heap", "calendar").
	Name() string
	// Schedule inserts ev. If ev.ticket is non-nil the implementation must
	// keep the ticket's location fields current whenever it moves the entry.
	Schedule(ev event)
	// PeekTime returns the instant of the earliest live event, or ok=false
	// when no live events remain.
	PeekTime() (simtime.Time, bool)
	// Pop removes and returns the earliest live event, or ok=false when no
	// live events remain. Dead (cancelled) entries are skipped and reclaimed
	// at the implementation's leisure.
	Pop() (event, bool)
	// Cancel marks the entry referenced by t dead and releases its captured
	// state. The caller (Ticket.Cancel) guarantees t currently references a
	// live entry owned by this scheduler.
	Cancel(t *Ticket)
	// Pending returns the number of live (scheduled, not cancelled) events.
	Pending() int
	// Len returns the number of storage slots in use, including dead
	// entries not yet compacted away. Implementations must keep
	// Len ≤ 2·Pending+compactMinLen by sweeping dead entries once they
	// outnumber live ones — the same bound the heap has always enforced.
	Len() int
}

// Registry names for the shipped schedulers. The empty string selects the
// default (heap) everywhere a name is accepted.
const (
	SchedulerHeap     = "heap"
	SchedulerCalendar = "calendar"
)

// SchedulerNames lists the valid scheduler names in presentation order.
func SchedulerNames() []string {
	return []string{SchedulerHeap, SchedulerCalendar}
}

// ValidScheduler reports whether name selects a known scheduler. The empty
// string is valid and means the default.
func ValidScheduler(name string) bool {
	switch name {
	case "", SchedulerHeap, SchedulerCalendar:
		return true
	}
	return false
}

// NewScheduler constructs the named scheduler. The empty string selects the
// default 4-ary heap.
func NewScheduler(name string) (Scheduler, error) {
	switch name {
	case "", SchedulerHeap:
		return newHeapScheduler(), nil
	case SchedulerCalendar:
		return newCalendarScheduler(), nil
	}
	return nil, fmt.Errorf("sim: unknown scheduler %q (valid: %v)", name, SchedulerNames())
}
