package sim

import (
	"testing"

	"abenet/internal/rng"
	"abenet/internal/simtime"
)

// The observer-overhead pair: the same self-rescheduling tick chain as
// BenchmarkScheduleRunTicketless, run with the post-event hook detached
// and attached. CI compares the two ns/op numbers and fails the build if
// the attached run costs more than a few percent — the hook is one nil
// check per event when detached and one indirect call plus a handful of
// counter reads when attached, so any real gap is a regression in the
// kernel hot path.

// observeWorkload is the shared workload; the observer (nil to detach)
// mimics a probe read: it touches the kernel's public counters and stores
// into a preallocated buffer, like probe.Collector's gauge sweep.
func observeWorkload(b *testing.B, attach bool) {
	var sink [4]float64
	for i := 0; i < b.N; i++ {
		k := New()
		if attach {
			k.SetObserver(func() {
				sink[0] = float64(k.Executed())
				sink[1] = float64(k.Now())
				sink[2] = float64(k.Pending())
				sink[3]++
			})
		}
		r := rng.New(uint64(i))
		var tick func()
		remaining := 1000
		tick = func() {
			remaining--
			if remaining > 0 {
				k.AfterFunc(simtime.Duration(r.ExpFloat64()), tick)
			}
		}
		k.AtFunc(0, tick)
		if err := k.Run(simtime.Forever, 0); err != nil {
			b.Fatal(err)
		}
	}
	if attach && sink[3] == 0 {
		b.Fatal("observer never fired")
	}
}

// BenchmarkObserverDetached is the baseline leg of the pair.
func BenchmarkObserverDetached(b *testing.B) { observeWorkload(b, false) }

// BenchmarkObserverAttached is the observed leg of the pair.
func BenchmarkObserverAttached(b *testing.B) { observeWorkload(b, true) }
