package stats

import (
	"math"
	"testing"
	"testing/quick"

	"abenet/internal/rng"
)

func TestSampleMoments(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("mean = %v", got)
	}
	// Unbiased variance of this classic dataset is 32/7.
	if got, want := s.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("variance = %v, want %v", got, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 || s.CI95() != 0 {
		t.Fatal("empty sample must report zeros")
	}
}

func TestSampleSingle(t *testing.T) {
	var s Sample
	s.Add(3)
	if s.Mean() != 3 || s.Variance() != 0 {
		t.Fatalf("single-value sample: mean %v var %v", s.Mean(), s.Variance())
	}
}

func TestSampleMergeMatchesSequential(t *testing.T) {
	r := rng.New(1)
	var whole, a, b Sample
	for i := 0; i < 1000; i++ {
		v := r.NormFloat64()*3 + 7
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-9 {
		t.Fatalf("merged mean %v vs %v", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Variance()-whole.Variance()) > 1e-9 {
		t.Fatalf("merged variance %v vs %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatal("merged min/max differ")
	}
}

func TestSampleMergeEmptyCases(t *testing.T) {
	var empty, full Sample
	full.Add(1)
	full.Add(2)
	cp := full
	cp.Merge(&empty)
	if cp.N() != 2 || cp.Mean() != 1.5 {
		t.Fatal("merging empty changed sample")
	}
	var dst Sample
	dst.Merge(&full)
	if dst.N() != 2 || dst.Mean() != 1.5 {
		t.Fatal("merging into empty failed")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	r := rng.New(2)
	var small, large Sample
	for i := 0; i < 100; i++ {
		small.Add(r.NormFloat64())
	}
	for i := 0; i < 10000; i++ {
		large.Add(r.NormFloat64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI95 did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-3) > 1e-12 {
		t.Fatalf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLineNoisy(t *testing.T) {
	r := rng.New(3)
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 1.5*x+10+r.NormFloat64()*5)
	}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-1.5) > 0.05 {
		t.Fatalf("slope = %v, want about 1.5", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FitLine([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Fatal("vertical data accepted")
	}
}

func TestGrowthExponentLinearData(t *testing.T) {
	var xs, ys []float64
	for _, n := range []float64{8, 16, 32, 64, 128} {
		xs = append(xs, n)
		ys = append(ys, 3.7*n)
	}
	fit, err := GrowthExponent(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-1) > 1e-9 {
		t.Fatalf("exponent = %v, want 1", fit.Slope)
	}
}

func TestGrowthExponentQuadraticData(t *testing.T) {
	var xs, ys []float64
	for _, n := range []float64{8, 16, 32, 64, 128} {
		xs = append(xs, n)
		ys = append(ys, 0.5*n*n)
	}
	fit, err := GrowthExponent(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-9 {
		t.Fatalf("exponent = %v, want 2", fit.Slope)
	}
}

func TestGrowthExponentNLogNDistinguishable(t *testing.T) {
	// n log n data over a decade should land visibly above exponent 1.
	var xs, ys []float64
	for _, n := range []float64{16, 32, 64, 128, 256, 512} {
		xs = append(xs, n)
		ys = append(ys, n*math.Log(n))
	}
	fit, err := GrowthExponent(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope < 1.1 || fit.Slope > 1.5 {
		t.Fatalf("n log n exponent = %v, expected in (1.1, 1.5)", fit.Slope)
	}
}

func TestGrowthExponentRejectsNonPositive(t *testing.T) {
	if _, err := GrowthExponent([]float64{1, 0}, []float64{1, 2}); err == nil {
		t.Fatal("zero x accepted")
	}
	if _, err := GrowthExponent([]float64{1, 2}, []float64{1, -2}); err == nil {
		t.Fatal("negative y accepted")
	}
}

func TestQuantile(t *testing.T) {
	values := []float64{5, 1, 3, 2, 4}
	for q, want := range map[float64]float64{0: 1, 0.25: 2, 0.5: 3, 0.75: 4, 1: 5} {
		got, err := Quantile(values, q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	// Input must be untouched.
	if values[0] != 5 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	got, err := Quantile([]float64{0, 10}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("interpolated quantile = %v, want 2.5", got)
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("empty data accepted")
	}
	if _, err := Quantile([]float64{1}, 1.5); err == nil {
		t.Fatal("q > 1 accepted")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.5, 1, 3, 5, 7, 9, 9.99} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[4] != 2 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("bin 0 centre = %v", got)
	}
	if got := h.Fraction(0); math.Abs(got-2.0/7.0) > 1e-12 {
		t.Fatalf("fraction = %v", got)
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	h, err := NewHistogram(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(-100)
	h.Add(100)
	if h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
	if _, err := NewHistogram(1, 1, 3); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestSampleMeanMatchesDirectComputationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(200)
		var s Sample
		sum := 0.0
		for i := 0; i < n; i++ {
			v := r.Float64()*100 - 50
			s.Add(v)
			sum += v
		}
		return math.Abs(s.Mean()-sum/float64(n)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
