// Package stats provides the statistics used to turn seeded simulation
// runs into the paper's expected-complexity claims: sample moments,
// normal-approximation confidence intervals, least-squares fits (for
// "messages grow linearly in n" style statements) and histograms.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations online (Welford's algorithm), so large
// experiment sweeps never hold raw values unless quantiles are needed.
type Sample struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (s *Sample) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 { return s.max }

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval for the mean. Experiments use enough repetitions (>= 30) that
// the normal approximation is appropriate.
func (s *Sample) CI95() float64 { return 1.96 * s.StdErr() }

// String formats mean ± CI95.
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.CI95(), s.n)
}

// Merge combines another sample into s (parallel workers each keep a
// Sample, merged at the end).
func (s *Sample) Merge(o *Sample) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	total := float64(s.n + o.n)
	delta := o.mean - s.mean
	mean := s.mean + delta*float64(o.n)/total
	m2 := s.m2 + o.m2 + delta*delta*float64(s.n)*float64(o.n)/total
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n += o.n
	s.mean = mean
	s.m2 = m2
}

// LinearFit is an ordinary-least-squares line y = Slope·x + Intercept with
// its coefficient of determination.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLine fits y = a·x + b by least squares. It requires at least two
// points with distinct x values.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: %d xs vs %d ys", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, errors.New("stats: need at least two points")
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: all x values identical")
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1 // a perfectly flat, perfectly fitted line
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// GrowthExponent fits y ~ C·x^k on log-log axes and returns k with the fit
// quality. A growth exponent near 1 over a wide range of x is the
// operational meaning of "linear complexity" in the experiments; n·log n
// data shows up as k ≈ 1.15–1.3 over the measured ranges, and quadratic
// data as k ≈ 2. All xs and ys must be positive.
func GrowthExponent(xs, ys []float64) (LinearFit, error) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: %d xs vs %d ys", len(xs), len(ys))
	}
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return LinearFit{}, fmt.Errorf("stats: log-log fit needs positive data, got (%g, %g)", xs[i], ys[i])
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	return FitLine(lx, ly)
}

// Quantile returns the q-quantile (0 <= q <= 1) of values using linear
// interpolation between order statistics. The input is copied, not mutated.
func Quantile(values []float64, q float64) (float64, error) {
	if len(values) == 0 {
		return 0, errors.New("stats: quantile of empty data")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %g outside [0, 1]", q)
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Histogram counts observations into equal-width bins over [Low, High).
// Values outside the range are clamped into the edge bins so totals are
// preserved.
type Histogram struct {
	Low, High float64
	Counts    []uint64
	total     uint64
}

// NewHistogram creates a histogram with the given range and bin count.
func NewHistogram(low, high float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: histogram needs >= 1 bin, got %d", bins)
	}
	if !(high > low) {
		return nil, fmt.Errorf("stats: histogram range [%g, %g) is empty", low, high)
	}
	return &Histogram{Low: low, High: high, Counts: make([]uint64, bins)}, nil
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	idx := int(float64(bins) * (x - h.Low) / (h.High - h.Low))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Fraction returns the share of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.High - h.Low) / float64(len(h.Counts))
	return h.Low + width*(float64(i)+0.5)
}
