package stats

import (
	"math"
	"testing"

	"abenet/internal/rng"
)

func TestReservoirKeepsAllWhenUnderCapacity(t *testing.T) {
	s := NewReservoir(10, rng.New(1))
	for i := 0; i < 5; i++ {
		s.Add(float64(i))
	}
	if s.Len() != 5 || s.Seen() != 5 {
		t.Fatalf("len=%d seen=%d", s.Len(), s.Seen())
	}
	q, err := s.Quantile(1)
	if err != nil {
		t.Fatal(err)
	}
	if q != 4 {
		t.Fatalf("max = %v", q)
	}
}

func TestReservoirBoundsMemory(t *testing.T) {
	s := NewReservoir(100, rng.New(2))
	for i := 0; i < 100000; i++ {
		s.Add(float64(i))
	}
	if s.Len() != 100 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Seen() != 100000 {
		t.Fatalf("seen = %d", s.Seen())
	}
}

func TestReservoirIsUniformish(t *testing.T) {
	// Feed 0..9999 and check the retained sample's mean is near 5000.
	s := NewReservoir(500, rng.New(3))
	for i := 0; i < 10000; i++ {
		s.Add(float64(i))
	}
	sum := 0.0
	for _, v := range s.Values() {
		sum += v
	}
	mean := sum / float64(s.Len())
	if math.Abs(mean-5000) > 500 {
		t.Fatalf("reservoir mean %v far from 5000 — sampling biased", mean)
	}
}

func TestReservoirQuantileOfExponentialStream(t *testing.T) {
	r := rng.New(4)
	s := NewReservoir(2000, rng.New(5))
	for i := 0; i < 100000; i++ {
		s.Add(r.ExpFloat64())
	}
	// Exponential(1): median = ln 2 ≈ 0.693, p95 = ln 20 ≈ 3.0.
	med, err := s.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(med-math.Ln2) > 0.1 {
		t.Fatalf("median %v, want about %v", med, math.Ln2)
	}
	p95, err := s.Quantile(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p95-math.Log(20)) > 0.4 {
		t.Fatalf("p95 %v, want about %v", p95, math.Log(20))
	}
}

func TestReservoirValuesCopied(t *testing.T) {
	s := NewReservoir(4, rng.New(6))
	s.Add(1)
	values := s.Values()
	values[0] = 99
	if s.Values()[0] == 99 {
		t.Fatal("Values exposed internal slice")
	}
}

func TestReservoirValidation(t *testing.T) {
	mustPanic(t, func() { NewReservoir(0, rng.New(1)) })
	mustPanic(t, func() { NewReservoir(4, nil) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
