package stats

import (
	"fmt"

	"abenet/internal/rng"
)

// Reservoir keeps a bounded uniform sample of a stream (Vitter's
// algorithm R), enabling quantile estimates over arbitrarily long
// experiment streams with fixed memory. ABE delays are unbounded, so tail
// quantiles (p95/p99 election time) are part of what the experiments
// report alongside means.
type Reservoir struct {
	values []float64
	seen   uint64
	cap    int
	r      *rng.Source
}

// NewReservoir returns a reservoir keeping at most capacity values,
// sampled uniformly from everything offered. It panics if capacity < 1 or
// r is nil.
func NewReservoir(capacity int, r *rng.Source) *Reservoir {
	if capacity < 1 {
		panic(fmt.Sprintf("stats: reservoir capacity %d must be positive", capacity))
	}
	if r == nil {
		panic("stats: reservoir needs a random source")
	}
	return &Reservoir{values: make([]float64, 0, capacity), cap: capacity, r: r}
}

// Add offers one observation to the reservoir.
func (s *Reservoir) Add(x float64) {
	s.seen++
	if len(s.values) < s.cap {
		s.values = append(s.values, x)
		return
	}
	// Replace a random element with probability cap/seen.
	idx := s.r.Uint64n(s.seen)
	if idx < uint64(s.cap) {
		s.values[idx] = x
	}
}

// Seen returns the number of observations offered.
func (s *Reservoir) Seen() uint64 { return s.seen }

// Len returns the number of retained observations.
func (s *Reservoir) Len() int { return len(s.values) }

// Quantile estimates the q-quantile from the retained sample.
func (s *Reservoir) Quantile(q float64) (float64, error) {
	return Quantile(s.values, q)
}

// Values returns a copy of the retained sample.
func (s *Reservoir) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}
