package topology

import (
	"strings"
	"sync"
	"testing"

	"abenet/internal/rng"
)

// TestHamiltonianCycleFailurePaths pins the graphs ring protocols must
// reject: stars and trees have no directed Hamiltonian cycle, and the
// error must say so clearly rather than leaking a search detail.
func TestHamiltonianCycleFailurePaths(t *testing.T) {
	// A random tree: every spanning-tree skeleton from RandomConnected
	// with no extra edges is a tree, and no tree with n >= 3 has a cycle
	// through all nodes (any leaf has degree 1).
	tree := RandomConnected(9, 0, rng.New(4))

	cases := map[string]*Graph{
		"star":  Star(6),
		"line":  Line(5),
		"tree":  tree,
		"star3": Star(3),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			if order, ok := g.HamiltonianCycle(); ok {
				t.Fatalf("found a cycle %v in a graph that has none", order)
			}
			_, err := g.RingEmbedding()
			if err == nil {
				t.Fatal("RingEmbedding accepted an acyclic topology")
			}
			msg := err.Error()
			if !strings.Contains(msg, "embeds no directed Hamiltonian cycle") ||
				!strings.Contains(msg, "ring protocols") {
				t.Fatalf("error %q does not explain the failure", msg)
			}
		})
	}
}

// TestRingEmbeddingErrorIsCachedPerGraph pins the cache contract on the
// failure path: repeated lookups on the same graph return the same error
// without rerunning the search, and one graph's failure must not poison
// lookups on other graphs.
func TestRingEmbeddingErrorIsCachedPerGraph(t *testing.T) {
	star := Star(6)
	_, err1 := star.RingEmbedding()
	_, err2 := star.RingEmbedding()
	if err1 == nil || err2 == nil {
		t.Fatal("star must fail")
	}
	if err1 != err2 { // the identical cached error object, not a rerun
		t.Fatalf("cache rebuilt the error: %v vs %v", err1, err2)
	}

	// Other graphs — including ones probed after the failure — are
	// unaffected: the cache is per graph, not package-global.
	ring := Ring(6)
	ports, err := ring.RingEmbedding()
	if err != nil {
		t.Fatalf("ring lookup poisoned by star failure: %v", err)
	}
	for i, p := range ports {
		if p != 0 {
			t.Fatalf("ring port[%d] = %d, want 0", i, p)
		}
	}
	if _, err := star.RingEmbedding(); err == nil {
		t.Fatal("star's cached failure lost after another graph's success")
	}
}

// TestRingEmbeddingCacheInvalidatedByAddEdge pins that a failed lookup is
// not sticky once the graph gains the missing edges: AddEdge invalidates
// the cache, and the next lookup recomputes.
func TestRingEmbeddingCacheInvalidatedByAddEdge(t *testing.T) {
	g := Star(4) // 0↔1, 0↔2, 0↔3: no cycle
	if _, err := g.RingEmbedding(); err == nil {
		t.Fatal("star must fail before the extra edges")
	}
	// Complete the directed cycle 0→1→2→3→0: 0→1 and 3→0 already exist.
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	ports, err := g.RingEmbedding()
	if err != nil {
		t.Fatalf("cache not invalidated by AddEdge: %v", err)
	}
	// Follow the embedded cycle from 0; it must visit all 4 nodes.
	seen := map[int]bool{}
	u := 0
	for i := 0; i < 4; i++ {
		if seen[u] {
			t.Fatalf("cycle revisits %d after %v", u, seen)
		}
		seen[u] = true
		u = g.Out(u)[ports[u]]
	}
	if u != 0 {
		t.Fatalf("cycle ends at %d, want 0", u)
	}
}

// TestRingEmbeddingFailureCacheConcurrent exercises the failure path from
// concurrent sweep-like callers under the race detector.
func TestRingEmbeddingFailureCacheConcurrent(t *testing.T) {
	star := Star(8)
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = star.RingEmbedding()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("goroutine %d saw no error", i)
		}
		if err != errs[0] {
			t.Fatalf("goroutine %d saw a different error object", i)
		}
	}
}
