// Package topology builds the directed communication graphs that networks
// run on.
//
// The paper's election algorithm needs anonymous unidirectional rings; the
// synchroniser experiments need trees, complete graphs and arbitrary
// connected graphs. Nodes are identified by dense indices 0..n-1 — these are
// simulator-level identities only and are never visible to protocols that
// declare themselves anonymous (the network layer enforces that anonymity).
package topology

import (
	"fmt"
	"sort"
	"sync"

	"abenet/internal/rng"
)

// Edge is one directed communication link.
type Edge struct {
	From, To int
}

// Graph is a directed graph over nodes 0..n-1. The zero value is an empty
// graph with no nodes; use New.
type Graph struct {
	n   int
	out [][]int
	in  [][]int

	// RingEmbedding cache: graphs are frozen after construction, and
	// sweeps run thousands of seeded repetitions against one shared
	// Graph, so the (possibly backtracking) cycle search must not be
	// redone per run. Guarded by ringMu; invalidated by AddEdge.
	ringMu    sync.Mutex
	ringDone  bool
	ringPorts []int
	ringErr   error
}

// New returns a graph with n nodes and no edges. It panics if n < 1.
func New(n int) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("topology: graph needs at least one node, got %d", n))
	}
	return &Graph{
		n:   n,
		out: make([][]int, n),
		in:  make([][]int, n),
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// AddEdge adds the directed edge u->v. Self-loops and duplicate edges are
// rejected with a panic: neither occurs in any topology the experiments use,
// and both usually indicate a construction bug.
func (g *Graph) AddEdge(u, v int) {
	g.checkNode(u)
	g.checkNode(v)
	if u == v {
		panic(fmt.Sprintf("topology: self-loop at node %d", u))
	}
	for _, w := range g.out[u] {
		if w == v {
			panic(fmt.Sprintf("topology: duplicate edge %d->%d", u, v))
		}
	}
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	g.ringMu.Lock()
	g.ringDone = false
	g.ringMu.Unlock()
}

// AddBiEdge adds both u->v and v->u.
func (g *Graph) AddBiEdge(u, v int) {
	g.AddEdge(u, v)
	g.AddEdge(v, u)
}

// HasEdge reports whether the directed edge u->v exists.
func (g *Graph) HasEdge(u, v int) bool {
	g.checkNode(u)
	g.checkNode(v)
	for _, w := range g.out[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Out returns a copy of u's out-neighbours, in insertion order.
func (g *Graph) Out(u int) []int {
	g.checkNode(u)
	out := make([]int, len(g.out[u]))
	copy(out, g.out[u])
	return out
}

// In returns a copy of u's in-neighbours, in insertion order.
func (g *Graph) In(u int) []int {
	g.checkNode(u)
	in := make([]int, len(g.in[u]))
	copy(in, g.in[u])
	return in
}

// OutDegree returns the number of out-neighbours of u.
func (g *Graph) OutDegree(u int) int {
	g.checkNode(u)
	return len(g.out[u])
}

// ForEachOut calls fn for each out-neighbour of u without allocating.
func (g *Graph) ForEachOut(u int, fn func(v int)) {
	g.checkNode(u)
	for _, v := range g.out[u] {
		fn(v)
	}
}

// Edges returns all directed edges, ordered by (From, insertion order).
func (g *Graph) Edges() []Edge {
	var edges []Edge
	for u := 0; u < g.n; u++ {
		for _, v := range g.out[u] {
			edges = append(edges, Edge{From: u, To: v})
		}
	}
	return edges
}

// EdgeCount returns the number of directed edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for u := 0; u < g.n; u++ {
		total += len(g.out[u])
	}
	return total
}

func (g *Graph) checkNode(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("topology: node %d outside [0, %d)", u, g.n))
	}
}

// Ring returns the anonymous unidirectional ring used by the paper's
// election algorithm: node i sends only to (i+1) mod n. It panics for n < 2
// (a ring needs at least two nodes to have an edge that is not a self-loop).
func Ring(n int) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("topology: unidirectional ring needs n >= 2, got %d", n))
	}
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// BiRing returns the bidirectional ring on n >= 2 nodes.
func BiRing(n int) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("topology: bidirectional ring needs n >= 2, got %d", n))
	}
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddBiEdge(i, (i+1)%n)
	}
	return g
}

// Line returns the bidirectional path 0-1-...-(n-1).
func Line(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddBiEdge(i, i+1)
	}
	return g
}

// Star returns the bidirectional star with centre 0 and n-1 leaves.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddBiEdge(0, i)
	}
	return g
}

// Complete returns the complete bidirectional graph on n nodes.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddBiEdge(u, v)
		}
	}
	return g
}

// Torus returns the rows x cols bidirectional torus grid. Both dimensions
// must be at least 3 so that wrap-around edges do not duplicate grid edges.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("topology: torus needs both dimensions >= 3, got %dx%d", rows, cols))
	}
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddBiEdge(id(r, c), id(r, (c+1)%cols))
			g.AddBiEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return g
}

// Hypercube returns the bidirectional hypercube of the given dimension
// (2^dim nodes). Dimension 0 is a single node with no edges.
func Hypercube(dim int) *Graph {
	if dim < 0 || dim > 20 {
		panic(fmt.Sprintf("topology: hypercube dimension %d outside [0, 20]", dim))
	}
	n := 1 << uint(dim)
	g := New(n)
	for u := 0; u < n; u++ {
		for b := 0; b < dim; b++ {
			v := u ^ (1 << uint(b))
			if u < v {
				g.AddBiEdge(u, v)
			}
		}
	}
	return g
}

// HamiltonianCycle returns an ordering of all n nodes, starting at node 0,
// such that the graph has a directed edge from each node in the order to
// the next (wrapping around), or false when no such cycle was found.
//
// Ring-based protocols (the paper's election, the Itai–Rodeh and
// Chang–Roberts baselines) run on any topology that embeds such a cycle:
// messages travel along the cycle and the remaining edges carry no
// traffic. The natural ring 0→1→…→n−1→0 is recognised in O(n); otherwise
// a backtracking search runs with a bounded step budget, so the call is
// safe on adversarial graphs — it gives up (returning false) rather than
// taking exponential time. The standard families (BiRing, Complete,
// Hypercube, Torus) are all found well within the budget.
func (g *Graph) HamiltonianCycle() ([]int, bool) {
	n := g.n
	if n < 2 {
		return nil, false
	}
	// Fast path: the identity order is a cycle (Ring, BiRing, Complete).
	natural := true
	for u := 0; u < n; u++ {
		if !g.HasEdge(u, (u+1)%n) {
			natural = false
			break
		}
	}
	if natural {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return order, true
	}
	// Constructive fast path: hypercube-labelled graphs (every edge flips
	// exactly one bit) carry the binary-reflected Gray code as a
	// Hamiltonian cycle, at any dimension — no search needed.
	if order, ok := g.grayCodeCycle(); ok {
		return order, true
	}
	// Bounded backtracking from node 0 with Warnsdorff's rule: always try
	// the unvisited neighbour with the fewest onward options first. On
	// regular graphs (hypercubes, tori) this finds a cycle with little or
	// no backtracking where plain adjacency order blows the budget.
	const stepBudget = 1 << 20
	steps := 0
	order := make([]int, 0, n)
	visited := make([]bool, n)
	onward := func(v int) int {
		count := 0
		for _, w := range g.out[v] {
			if !visited[w] {
				count++
			}
		}
		return count
	}
	var extend func(u int) bool
	extend = func(u int) bool {
		if steps++; steps > stepBudget {
			return false
		}
		order = append(order, u)
		visited[u] = true
		if len(order) == n {
			if g.HasEdge(u, 0) {
				return true
			}
		} else {
			type cand struct{ v, onward int }
			cands := make([]cand, 0, len(g.out[u]))
			for _, v := range g.out[u] {
				if !visited[v] {
					cands = append(cands, cand{v, onward(v)})
				}
			}
			sort.Slice(cands, func(i, j int) bool {
				if cands[i].onward != cands[j].onward {
					return cands[i].onward < cands[j].onward
				}
				return cands[i].v < cands[j].v // deterministic tie-break
			})
			last := len(order) == n-1
			for _, c := range cands {
				// A candidate with no onward moves is a dead end unless
				// it completes the cycle.
				if c.onward == 0 && !last {
					continue
				}
				if extend(c.v) {
					return true
				}
			}
		}
		order = order[:len(order)-1]
		visited[u] = false
		return false
	}
	if !extend(0) {
		return nil, false
	}
	return order, true
}

// grayCodeCycle returns the binary-reflected Gray code order when the
// graph is a hypercube under the standard labelling: n a power of two
// (>= 4) and the edge set exactly {u ↔ u^(1<<b)}.
func (g *Graph) grayCodeCycle() ([]int, bool) {
	n := g.n
	if n < 4 || n&(n-1) != 0 {
		return nil, false
	}
	dim := 0
	for 1<<(dim+1) <= n {
		dim++
	}
	for u := 0; u < n; u++ {
		out := g.out[u]
		if len(out) != dim {
			return nil, false
		}
		for _, v := range out {
			x := u ^ v
			if x == 0 || x&(x-1) != 0 {
				return nil, false // not a single bit flip
			}
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i ^ (i >> 1) // Gray code: consecutive entries differ in one bit
	}
	return order, true
}

// RingEmbedding returns, for every node, the out-port index of the edge
// leading to the node's successor on a directed Hamiltonian cycle of the
// graph. On the unidirectional ring every entry is 0 — the embedding is
// the identity — so engines can apply it unconditionally. An error is
// returned when the graph embeds no Hamiltonian cycle (within the search
// budget of HamiltonianCycle). The result is computed once and cached
// (callers must not mutate the returned slice); the cache is safe for the
// concurrent seeded repetitions of a sweep.
func (g *Graph) RingEmbedding() ([]int, error) {
	g.ringMu.Lock()
	defer g.ringMu.Unlock()
	if g.ringDone {
		return g.ringPorts, g.ringErr
	}
	g.ringPorts, g.ringErr = g.ringEmbedding()
	g.ringDone = true
	return g.ringPorts, g.ringErr
}

// ringEmbedding computes the uncached embedding.
func (g *Graph) ringEmbedding() ([]int, error) {
	order, ok := g.HamiltonianCycle()
	if !ok {
		return nil, fmt.Errorf("topology: graph on %d nodes embeds no directed Hamiltonian cycle (ring protocols cannot run on it)", g.n)
	}
	ports := make([]int, g.n)
	for i, u := range order {
		v := order[(i+1)%g.n]
		port := -1
		for p, w := range g.out[u] {
			if w == v {
				port = p
				break
			}
		}
		if port < 0 {
			// HamiltonianCycle only returns existing edges.
			panic(fmt.Sprintf("topology: cycle edge %d->%d not in graph", u, v))
		}
		ports[u] = port
	}
	return ports, nil
}

// RandomConnected returns a random connected bidirectional graph: a uniform
// random spanning tree skeleton (random attachment) plus each remaining pair
// connected with probability extraEdgeProb. Randomness comes from r only.
func RandomConnected(n int, extraEdgeProb float64, r *rng.Source) *Graph {
	if r == nil {
		panic("topology: RandomConnected needs a random source")
	}
	if extraEdgeProb < 0 || extraEdgeProb > 1 {
		panic(fmt.Sprintf("topology: extra edge probability %g outside [0,1]", extraEdgeProb))
	}
	g := New(n)
	// Random attachment tree guarantees connectivity.
	order := r.Perm(n)
	for i := 1; i < n; i++ {
		u := order[i]
		v := order[r.Intn(i)]
		g.AddBiEdge(u, v)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) && r.Bool(extraEdgeProb) {
				g.AddBiEdge(u, v)
			}
		}
	}
	return g
}

// BFSTree computes a breadth-first spanning tree of the graph from root,
// following directed edges. It returns parent (parent[root] = -1, parent[v]
// = -1 also for unreachable v) and depth (depth[v] = -1 for unreachable v).
func (g *Graph) BFSTree(root int) (parent, depth []int) {
	g.checkNode(root)
	parent = make([]int, g.n)
	depth = make([]int, g.n)
	for i := range parent {
		parent[i] = -1
		depth[i] = -1
	}
	depth[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.out[u] {
			if depth[v] == -1 {
				depth[v] = depth[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return parent, depth
}

// IsStronglyConnected reports whether every node can reach every other node
// following directed edges.
func (g *Graph) IsStronglyConnected() bool {
	if !g.allReachableFrom(0, g.out) {
		return false
	}
	return g.allReachableFrom(0, g.in)
}

func (g *Graph) allReachableFrom(root int, adj [][]int) bool {
	seen := make([]bool, g.n)
	seen[root] = true
	stack := []int{root}
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == g.n
}

// Diameter returns the longest shortest-path length over all ordered node
// pairs, following directed edges. It returns -1 if the graph is not
// strongly connected.
func (g *Graph) Diameter() int {
	max := 0
	for root := 0; root < g.n; root++ {
		_, depth := g.BFSTree(root)
		for _, d := range depth {
			if d == -1 {
				return -1
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// Validate checks structural invariants (consistent in/out adjacency). It
// returns an error describing the first violation, or nil. All constructors
// in this package maintain these invariants; Validate exists for graphs
// assembled by hand.
func (g *Graph) Validate() error {
	if g.n < 1 {
		return fmt.Errorf("topology: graph has %d nodes", g.n)
	}
	counted := 0
	for u := 0; u < g.n; u++ {
		for _, v := range g.out[u] {
			if v < 0 || v >= g.n {
				return fmt.Errorf("topology: edge %d->%d leaves node range", u, v)
			}
			found := false
			for _, w := range g.in[v] {
				if w == u {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("topology: edge %d->%d missing from in-adjacency", u, v)
			}
			counted++
		}
	}
	inCount := 0
	for v := 0; v < g.n; v++ {
		inCount += len(g.in[v])
	}
	if counted != inCount {
		return fmt.Errorf("topology: %d out-edges vs %d in-edges", counted, inCount)
	}
	return nil
}
