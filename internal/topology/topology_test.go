package topology

import (
	"testing"
	"testing/quick"

	"abenet/internal/rng"
)

func TestRingStructure(t *testing.T) {
	g := Ring(5)
	if g.N() != 5 {
		t.Fatalf("N = %d", g.N())
	}
	if g.EdgeCount() != 5 {
		t.Fatalf("edges = %d, want 5", g.EdgeCount())
	}
	for i := 0; i < 5; i++ {
		out := g.Out(i)
		if len(out) != 1 || out[0] != (i+1)%5 {
			t.Fatalf("Out(%d) = %v", i, out)
		}
		in := g.In(i)
		if len(in) != 1 || in[0] != (i+4)%5 {
			t.Fatalf("In(%d) = %v", i, in)
		}
	}
	if !g.IsStronglyConnected() {
		t.Fatal("ring must be strongly connected")
	}
	if d := g.Diameter(); d != 4 {
		t.Fatalf("ring diameter = %d, want 4", d)
	}
}

func TestRingMinSize(t *testing.T) {
	mustPanic(t, func() { Ring(1) })
	g := Ring(2)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("2-ring must have both directed edges")
	}
}

func TestBiRing(t *testing.T) {
	g := BiRing(4)
	if g.EdgeCount() != 8 {
		t.Fatalf("edges = %d, want 8", g.EdgeCount())
	}
	if d := g.Diameter(); d != 2 {
		t.Fatalf("biring(4) diameter = %d, want 2", d)
	}
}

func TestLine(t *testing.T) {
	g := Line(4)
	if g.EdgeCount() != 6 {
		t.Fatalf("edges = %d, want 6", g.EdgeCount())
	}
	if d := g.Diameter(); d != 3 {
		t.Fatalf("line(4) diameter = %d, want 3", d)
	}
	single := Line(1)
	if single.EdgeCount() != 0 {
		t.Fatal("line(1) must have no edges")
	}
}

func TestStar(t *testing.T) {
	g := Star(6)
	if g.OutDegree(0) != 5 {
		t.Fatalf("centre degree = %d", g.OutDegree(0))
	}
	for i := 1; i < 6; i++ {
		if g.OutDegree(i) != 1 {
			t.Fatalf("leaf %d degree = %d", i, g.OutDegree(i))
		}
	}
	if d := g.Diameter(); d != 2 {
		t.Fatalf("star diameter = %d, want 2", d)
	}
}

func TestComplete(t *testing.T) {
	g := Complete(5)
	if g.EdgeCount() != 20 {
		t.Fatalf("edges = %d, want 20", g.EdgeCount())
	}
	if d := g.Diameter(); d != 1 {
		t.Fatalf("complete diameter = %d, want 1", d)
	}
}

func TestTorus(t *testing.T) {
	g := Torus(3, 4)
	if g.N() != 12 {
		t.Fatalf("N = %d", g.N())
	}
	// Every torus node has degree 4.
	for u := 0; u < g.N(); u++ {
		if g.OutDegree(u) != 4 {
			t.Fatalf("torus node %d degree = %d, want 4", u, g.OutDegree(u))
		}
	}
	if !g.IsStronglyConnected() {
		t.Fatal("torus must be connected")
	}
	mustPanic(t, func() { Torus(2, 5) })
}

func TestHypercube(t *testing.T) {
	g := Hypercube(3)
	if g.N() != 8 {
		t.Fatalf("N = %d", g.N())
	}
	for u := 0; u < 8; u++ {
		if g.OutDegree(u) != 3 {
			t.Fatalf("node %d degree %d, want 3", u, g.OutDegree(u))
		}
	}
	if d := g.Diameter(); d != 3 {
		t.Fatalf("hypercube(3) diameter = %d, want 3", d)
	}
	if Hypercube(0).N() != 1 {
		t.Fatal("hypercube(0) must be a single node")
	}
}

func TestRandomConnectedIsConnected(t *testing.T) {
	root := rng.New(42)
	for trial := 0; trial < 20; trial++ {
		n := 2 + root.Intn(40)
		g := RandomConnected(n, 0.1, root.Derive("graph"))
		if !g.IsStronglyConnected() {
			t.Fatalf("trial %d: random graph on %d nodes not connected", trial, n)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRandomConnectedDeterministic(t *testing.T) {
	a := RandomConnected(20, 0.2, rng.New(7))
	b := RandomConnected(20, 0.2, rng.New(7))
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestRandomConnectedProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, pRaw uint8) bool {
		n := 2 + int(nRaw)%30
		p := float64(pRaw%100) / 100
		g := RandomConnected(n, p, rng.New(seed))
		return g.IsStronglyConnected() && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSTree(t *testing.T) {
	g := Line(5)
	parent, depth := g.BFSTree(0)
	wantDepth := []int{0, 1, 2, 3, 4}
	for i := range wantDepth {
		if depth[i] != wantDepth[i] {
			t.Fatalf("depth = %v", depth)
		}
	}
	if parent[0] != -1 {
		t.Fatalf("root parent = %d", parent[0])
	}
	for i := 1; i < 5; i++ {
		if parent[i] != i-1 {
			t.Fatalf("parent = %v", parent)
		}
	}
}

func TestBFSTreeUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1) // 2 is unreachable
	_, depth := g.BFSTree(0)
	if depth[2] != -1 {
		t.Fatalf("unreachable node depth = %d", depth[2])
	}
	if g.IsStronglyConnected() {
		t.Fatal("graph with unreachable node reported connected")
	}
	if g.Diameter() != -1 {
		t.Fatal("diameter of disconnected graph must be -1")
	}
}

func TestUnidirectionalRingNotSymmetric(t *testing.T) {
	g := Ring(4)
	if g.HasEdge(1, 0) {
		t.Fatal("unidirectional ring must not have reverse edges")
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("missing forward edge")
	}
}

func TestAddEdgeRejections(t *testing.T) {
	g := New(3)
	mustPanic(t, func() { g.AddEdge(0, 0) }) // self-loop
	g.AddEdge(0, 1)
	mustPanic(t, func() { g.AddEdge(0, 1) }) // duplicate
	mustPanic(t, func() { g.AddEdge(0, 3) }) // out of range
	mustPanic(t, func() { g.AddEdge(-1, 0) })
}

func TestOutReturnsCopy(t *testing.T) {
	g := Ring(3)
	out := g.Out(0)
	out[0] = 99
	if g.Out(0)[0] == 99 {
		t.Fatal("Out exposed internal adjacency")
	}
}

func TestForEachOutMatchesOut(t *testing.T) {
	g := Complete(5)
	for u := 0; u < 5; u++ {
		var got []int
		g.ForEachOut(u, func(v int) { got = append(got, v) })
		want := g.Out(u)
		if len(got) != len(want) {
			t.Fatalf("ForEachOut length mismatch at %d", u)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("ForEachOut order mismatch at %d", u)
			}
		}
	}
}

func TestEdgesOrderStable(t *testing.T) {
	g := Ring(4)
	edges := g.Edges()
	for i, e := range edges {
		if e.From != i || e.To != (i+1)%4 {
			t.Fatalf("Edges() = %v", edges)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := Ring(3)
	// Corrupt the in-adjacency directly.
	g.in[1] = nil
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed corrupted in-adjacency")
	}
}

func TestAllFamiliesConnected(t *testing.T) {
	graphs := map[string]*Graph{
		"ring":      Ring(6),
		"biring":    BiRing(6),
		"line":      Line(6),
		"star":      Star(6),
		"complete":  Complete(6),
		"torus":     Torus(3, 3),
		"hypercube": Hypercube(4),
	}
	for name, g := range graphs {
		if !g.IsStronglyConnected() {
			t.Errorf("%s not strongly connected", name)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestHamiltonianCycle(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"ring", Ring(8), true},
		{"biring", BiRing(8), true},
		{"complete", Complete(7), true},
		{"hypercube", Hypercube(4), true},
		{"torus", Torus(3, 4), true},
		{"line", Line(6), false},
		{"star", Star(6), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			order, ok := c.g.HamiltonianCycle()
			if ok != c.want {
				t.Fatalf("HamiltonianCycle ok = %v, want %v", ok, c.want)
			}
			if !ok {
				return
			}
			n := c.g.N()
			if len(order) != n || order[0] != 0 {
				t.Fatalf("order %v must visit all %d nodes starting at 0", order, n)
			}
			seen := make([]bool, n)
			for i, u := range order {
				if seen[u] {
					t.Fatalf("node %d visited twice", u)
				}
				seen[u] = true
				if v := order[(i+1)%n]; !c.g.HasEdge(u, v) {
					t.Fatalf("cycle uses missing edge %d->%d", u, v)
				}
			}
		})
	}
}

func TestRingEmbedding(t *testing.T) {
	// On the unidirectional ring the embedding is the identity: port 0
	// everywhere. This is what keeps ring-protocol trajectories on plain
	// rings byte-identical to the pre-embedding code.
	ports, err := Ring(9).RingEmbedding()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ports {
		if p != 0 {
			t.Fatalf("ring node %d successor port = %d, want 0", i, p)
		}
	}
	// On richer graphs every port must point at the cycle successor.
	for name, g := range map[string]*Graph{
		"biring": BiRing(8), "complete": Complete(6), "hypercube": Hypercube(3),
	} {
		ports, err := g.RingEmbedding()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		order, _ := g.HamiltonianCycle()
		succ := make([]int, g.N())
		for i, u := range order {
			succ[u] = order[(i+1)%g.N()]
		}
		for u, p := range ports {
			if got := g.Out(u)[p]; got != succ[u] {
				t.Fatalf("%s: node %d port %d leads to %d, want %d", name, u, p, got, succ[u])
			}
		}
	}
	if _, err := Line(5).RingEmbedding(); err == nil {
		t.Fatal("Line must not embed a ring")
	}
}
