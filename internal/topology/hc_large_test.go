package topology

import "testing"

// TestHamiltonianCycleLargeFamilies pins that the cycle finder scales to
// the sizes the sweeps use: Gray-code hypercubes at any dimension,
// Warnsdorff backtracking on tori, fast-path complete graphs.
func TestHamiltonianCycleLargeFamilies(t *testing.T) {
	for _, g := range []*Graph{Hypercube(6), Hypercube(8), Hypercube(10), Torus(8, 8), Complete(200)} {
		order, ok := g.HamiltonianCycle()
		if !ok {
			t.Fatalf("no cycle found on %d nodes", g.N())
		}
		n := g.N()
		seen := make([]bool, n)
		for i, u := range order {
			if seen[u] {
				t.Fatalf("n=%d: node %d visited twice", n, u)
			}
			seen[u] = true
			if v := order[(i+1)%n]; !g.HasEdge(u, v) {
				t.Fatalf("n=%d: cycle uses missing edge %d->%d", n, u, v)
			}
		}
	}
}
