// Package clock models the local hardware clocks of network nodes.
//
// Condition 2 of the ABE model (Bakhshi et al., PODC 2010, Definition 1)
// assumes known bounds 0 < s_low <= s_high on the speed of local clocks:
// for every node A and real instants t1 <= t2,
//
//	s_low·(t2−t1) <= C_A(t2) − C_A(t1) <= s_high·(t2−t1).
//
// Nodes act on local clock ticks (the election algorithm wakes idle nodes
// once per tick), so clock speed couples directly into time complexity.
// This package provides perfect clocks, constant-drift clocks, and
// wandering-drift clocks whose rate is resampled over time while always
// staying inside [s_low, s_high].
package clock

import (
	"fmt"
	"math"
	"sort"

	"abenet/internal/rng"
	"abenet/internal/simtime"
)

// Clock maps real (simulation) time to a node's local time. Implementations
// must be monotone and respect fixed rate bounds for all intervals.
type Clock interface {
	// LocalAt returns the local clock reading at real instant t. Clocks
	// read 0 at real time 0.
	LocalAt(t simtime.Time) float64

	// RealAfterLocal returns the real instant at which the local clock
	// will have advanced by localDelta (> 0) beyond its reading at real
	// instant now. This is what nodes use to schedule their next tick.
	RealAfterLocal(now simtime.Time, localDelta float64) simtime.Time

	// RateBounds returns constants (low, high) such that the clock's
	// instantaneous rate always lies in [low, high].
	RateBounds() (low, high float64)
}

// Fixed is a clock running at a constant Rate (local units per real unit).
// Rate 1 is a perfect clock.
type Fixed struct {
	Rate float64
}

var _ Clock = Fixed{}

// NewFixed returns a constant-rate clock. It panics unless rate > 0 and
// finite.
func NewFixed(rate float64) Fixed {
	if !(rate > 0) || math.IsInf(rate, 0) || math.IsNaN(rate) {
		panic(fmt.Sprintf("clock: fixed rate %g must be positive and finite", rate))
	}
	return Fixed{Rate: rate}
}

// LocalAt implements Clock.
func (c Fixed) LocalAt(t simtime.Time) float64 { return c.Rate * float64(t) }

// RealAfterLocal implements Clock.
func (c Fixed) RealAfterLocal(now simtime.Time, localDelta float64) simtime.Time {
	return now.Add(simtime.Duration(localDelta / c.Rate))
}

// RateBounds implements Clock.
func (c Fixed) RateBounds() (low, high float64) { return c.Rate, c.Rate }

// Wandering is a piecewise-constant-rate clock: the rate is redrawn
// uniformly from [Low, High] at random segment boundaries (segment lengths
// are exponential with mean SegmentMean real units). Segments are generated
// lazily and deterministically from the clock's private random stream.
type Wandering struct {
	low, high   float64
	segmentMean float64
	r           *rng.Source

	// starts[i] is the real start of segment i; locals[i] the local reading
	// there; rates[i] its rate. Invariant: starts[0] == 0, locals[0] == 0.
	starts []float64
	locals []float64
	rates  []float64
}

var _ Clock = (*Wandering)(nil)

// NewWandering returns a wandering clock with rates in [low, high] and mean
// segment length segmentMean, driven by stream r. It panics unless
// 0 < low <= high, both finite, and segmentMean > 0.
func NewWandering(low, high, segmentMean float64, r *rng.Source) *Wandering {
	if !(low > 0) || !(high >= low) || math.IsInf(high, 0) || math.IsNaN(low) || math.IsNaN(high) {
		panic(fmt.Sprintf("clock: invalid rate bounds [%g, %g]", low, high))
	}
	if !(segmentMean > 0) || math.IsInf(segmentMean, 0) {
		panic(fmt.Sprintf("clock: segment mean %g must be positive and finite", segmentMean))
	}
	if r == nil {
		panic("clock: wandering clock needs a random source")
	}
	w := &Wandering{low: low, high: high, segmentMean: segmentMean, r: r}
	w.starts = append(w.starts, 0)
	w.locals = append(w.locals, 0)
	w.rates = append(w.rates, w.drawRate())
	return w
}

func (w *Wandering) drawRate() float64 {
	return w.low + (w.high-w.low)*w.r.Float64()
}

// extendOne draws one more segment boundary. Rates are strictly positive,
// so both starts and locals stay strictly increasing.
func (w *Wandering) extendOne() {
	lastIdx := len(w.starts) - 1
	segLen := w.segmentMean * w.r.ExpFloat64()
	if segLen <= 0 {
		segLen = w.segmentMean * 1e-9 // guard against a zero draw
	}
	w.starts = append(w.starts, w.starts[lastIdx]+segLen)
	w.locals = append(w.locals, w.locals[lastIdx]+w.rates[lastIdx]*segLen)
	w.rates = append(w.rates, w.drawRate())
}

// segmentFor returns the index i of the segment containing real time t,
// i.e. starts[i] <= t < starts[i+1]; it extends the boundary list as
// needed so that i+1 always exists.
func (w *Wandering) segmentFor(t float64) int {
	for w.starts[len(w.starts)-1] <= t {
		w.extendOne()
	}
	// First index with starts[i] >= t.
	i := sort.SearchFloat64s(w.starts, t)
	if i == len(w.starts) || w.starts[i] > t {
		i--
	}
	return i
}

// LocalAt implements Clock.
func (w *Wandering) LocalAt(t simtime.Time) float64 {
	rt := float64(t)
	if rt < 0 {
		panic(fmt.Sprintf("clock: LocalAt before time zero: %v", t))
	}
	i := w.segmentFor(rt)
	return w.locals[i] + w.rates[i]*(rt-w.starts[i])
}

// RealAfterLocal implements Clock.
func (w *Wandering) RealAfterLocal(now simtime.Time, localDelta float64) simtime.Time {
	if localDelta <= 0 {
		panic(fmt.Sprintf("clock: RealAfterLocal needs positive local delta, got %g", localDelta))
	}
	targetLocal := w.LocalAt(now) + localDelta
	for w.locals[len(w.locals)-1] <= targetLocal {
		w.extendOne()
	}
	// First index with locals[i] >= targetLocal.
	i := sort.SearchFloat64s(w.locals, targetLocal)
	if i == len(w.locals) || w.locals[i] > targetLocal {
		i--
	}
	within := (targetLocal - w.locals[i]) / w.rates[i]
	return simtime.Time(w.starts[i] + within)
}

// RateBounds implements Clock.
func (w *Wandering) RateBounds() (low, high float64) { return w.low, w.high }

// Model creates the per-node clocks of a network. Implementations draw any
// randomness from the provided per-node stream so that clock assignment is
// reproducible and independent of other random consumers.
type Model interface {
	// NewClock returns the clock for one node, using r for randomness.
	NewClock(r *rng.Source) Clock
	// Bounds returns the (s_low, s_high) the model guarantees.
	Bounds() (low, high float64)
}

// PerfectModel gives every node a rate-1 clock (synchronised speeds, not
// synchronised readings — there is still no global time visible to nodes).
type PerfectModel struct{}

var _ Model = PerfectModel{}

// NewClock implements Model.
func (PerfectModel) NewClock(*rng.Source) Clock { return NewFixed(1) }

// Bounds implements Model.
func (PerfectModel) Bounds() (low, high float64) { return 1, 1 }

// UniformFixedModel draws each node's constant rate uniformly from
// [Low, High].
type UniformFixedModel struct {
	Low, High float64
}

var _ Model = UniformFixedModel{}

// NewUniformFixedModel validates the bounds and returns the model.
func NewUniformFixedModel(low, high float64) UniformFixedModel {
	if !(low > 0) || !(high >= low) || math.IsInf(high, 0) || math.IsNaN(low) || math.IsNaN(high) {
		panic(fmt.Sprintf("clock: invalid rate bounds [%g, %g]", low, high))
	}
	return UniformFixedModel{Low: low, High: high}
}

// NewClock implements Model.
func (m UniformFixedModel) NewClock(r *rng.Source) Clock {
	if r == nil {
		panic("clock: UniformFixedModel needs a random source")
	}
	return NewFixed(m.Low + (m.High-m.Low)*r.Float64())
}

// Bounds implements Model.
func (m UniformFixedModel) Bounds() (low, high float64) { return m.Low, m.High }

// WanderingModel gives each node a wandering clock with rates in
// [Low, High] and mean segment length SegmentMean.
type WanderingModel struct {
	Low, High   float64
	SegmentMean float64
}

var _ Model = WanderingModel{}

// NewWanderingModel validates parameters and returns the model.
func NewWanderingModel(low, high, segmentMean float64) WanderingModel {
	if !(low > 0) || !(high >= low) || math.IsInf(high, 0) || math.IsNaN(low) || math.IsNaN(high) {
		panic(fmt.Sprintf("clock: invalid rate bounds [%g, %g]", low, high))
	}
	if !(segmentMean > 0) || math.IsInf(segmentMean, 0) {
		panic(fmt.Sprintf("clock: invalid segment mean %g", segmentMean))
	}
	return WanderingModel{Low: low, High: high, SegmentMean: segmentMean}
}

// NewClock implements Model.
func (m WanderingModel) NewClock(r *rng.Source) Clock {
	return NewWandering(m.Low, m.High, m.SegmentMean, r)
}

// Bounds implements Model.
func (m WanderingModel) Bounds() (low, high float64) { return m.Low, m.High }
