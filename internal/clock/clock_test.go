package clock

import (
	"math"
	"testing"
	"testing/quick"

	"abenet/internal/rng"
	"abenet/internal/simtime"
)

func TestFixedLocalAt(t *testing.T) {
	c := NewFixed(2)
	if got := c.LocalAt(3); got != 6 {
		t.Fatalf("LocalAt(3) = %v, want 6", got)
	}
	if got := c.LocalAt(0); got != 0 {
		t.Fatalf("LocalAt(0) = %v, want 0", got)
	}
}

func TestFixedRealAfterLocal(t *testing.T) {
	c := NewFixed(0.5)
	// At rate 0.5, one local unit takes two real units.
	if got := c.RealAfterLocal(10, 1); got != 12 {
		t.Fatalf("RealAfterLocal = %v, want 12", got)
	}
}

func TestFixedRoundTrip(t *testing.T) {
	c := NewFixed(1.7)
	now := simtime.Time(5)
	after := c.RealAfterLocal(now, 3)
	if got := c.LocalAt(after) - c.LocalAt(now); math.Abs(got-3) > 1e-9 {
		t.Fatalf("local advance = %v, want 3", got)
	}
}

func TestFixedBounds(t *testing.T) {
	low, high := NewFixed(1.5).RateBounds()
	if low != 1.5 || high != 1.5 {
		t.Fatalf("bounds = %v, %v", low, high)
	}
}

func TestFixedRejectsBadRate(t *testing.T) {
	for _, rate := range []float64{0, -1, math.Inf(1), math.NaN()} {
		rate := rate
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rate %v did not panic", rate)
				}
			}()
			NewFixed(rate)
		}()
	}
}

func TestWanderingMonotone(t *testing.T) {
	w := NewWandering(0.5, 2, 1, rng.New(1))
	prev := -1.0
	for i := 0; i <= 1000; i++ {
		tt := simtime.Time(float64(i) * 0.037)
		v := w.LocalAt(tt)
		if v < prev {
			t.Fatalf("clock went backwards at %v: %v < %v", tt, v, prev)
		}
		prev = v
	}
}

func TestWanderingRespectsRateBounds(t *testing.T) {
	// Definition 1.2: every interval's average rate must be within bounds.
	const low, high = 0.5, 2.0
	w := NewWandering(low, high, 0.7, rng.New(2))
	times := make([]float64, 0, 200)
	locals := make([]float64, 0, 200)
	for i := 0; i < 200; i++ {
		rt := float64(i) * 0.113
		times = append(times, rt)
		locals = append(locals, w.LocalAt(simtime.Time(rt)))
	}
	for i := 0; i < len(times); i++ {
		for j := i + 1; j < len(times); j++ {
			dt := times[j] - times[i]
			dl := locals[j] - locals[i]
			if dl < low*dt-1e-9 || dl > high*dt+1e-9 {
				t.Fatalf("interval [%v,%v]: local advance %v outside [%v, %v]",
					times[i], times[j], dl, low*dt, high*dt)
			}
		}
	}
}

func TestWanderingRealAfterLocalRoundTrip(t *testing.T) {
	w := NewWandering(0.5, 2, 0.4, rng.New(3))
	now := simtime.Time(0)
	for i := 0; i < 200; i++ {
		after := w.RealAfterLocal(now, 1)
		if !after.After(now) {
			t.Fatalf("tick %d: RealAfterLocal did not advance (%v -> %v)", i, now, after)
		}
		advance := w.LocalAt(after) - w.LocalAt(now)
		if math.Abs(advance-1) > 1e-6 {
			t.Fatalf("tick %d: local advance %v, want 1", i, advance)
		}
		now = after
	}
}

func TestWanderingTickSpacingWithinBounds(t *testing.T) {
	const low, high = 0.25, 4.0
	w := NewWandering(low, high, 1, rng.New(4))
	now := simtime.Time(0)
	for i := 0; i < 500; i++ {
		next := w.RealAfterLocal(now, 1)
		gap := float64(next.Sub(now))
		// One local unit must take between 1/high and 1/low real units.
		if gap < 1/high-1e-9 || gap > 1/low+1e-9 {
			t.Fatalf("tick gap %v outside [%v, %v]", gap, 1/high, 1/low)
		}
		now = next
	}
}

func TestWanderingDeterministic(t *testing.T) {
	a := NewWandering(0.5, 2, 1, rng.New(5))
	b := NewWandering(0.5, 2, 1, rng.New(5))
	for i := 0; i < 300; i++ {
		tt := simtime.Time(float64(i) * 0.19)
		if a.LocalAt(tt) != b.LocalAt(tt) {
			t.Fatalf("wandering clocks with same seed diverged at %v", tt)
		}
	}
}

func TestWanderingNonMonotoneQueries(t *testing.T) {
	// Queries may go back in time (e.g. for reporting); results must agree
	// with earlier answers.
	w := NewWandering(0.5, 2, 0.5, rng.New(6))
	forward := make([]float64, 100)
	for i := range forward {
		forward[i] = w.LocalAt(simtime.Time(float64(i) * 0.21))
	}
	for i := len(forward) - 1; i >= 0; i-- {
		if got := w.LocalAt(simtime.Time(float64(i) * 0.21)); got != forward[i] {
			t.Fatalf("re-query at index %d differs: %v vs %v", i, got, forward[i])
		}
	}
}

func TestWanderingDegenerateBoundsActLikeFixed(t *testing.T) {
	w := NewWandering(1, 1, 0.5, rng.New(7))
	for i := 0; i < 100; i++ {
		tt := simtime.Time(float64(i) * 0.3)
		if got := w.LocalAt(tt); math.Abs(got-float64(tt)) > 1e-9 {
			t.Fatalf("unit wandering clock drifted: LocalAt(%v) = %v", tt, got)
		}
	}
}

func TestWanderingPanicsOnBadInput(t *testing.T) {
	mustPanic(t, func() { NewWandering(0, 1, 1, rng.New(1)) })
	mustPanic(t, func() { NewWandering(2, 1, 1, rng.New(1)) })
	mustPanic(t, func() { NewWandering(1, 2, 0, rng.New(1)) })
	mustPanic(t, func() { NewWandering(1, 2, 1, nil) })
	w := NewWandering(1, 2, 1, rng.New(1))
	mustPanic(t, func() { w.RealAfterLocal(0, 0) })
	mustPanic(t, func() { w.LocalAt(simtime.Time(-1)) })
}

func TestPerfectModel(t *testing.T) {
	m := PerfectModel{}
	c := m.NewClock(nil)
	if got := c.LocalAt(7); got != 7 {
		t.Fatalf("perfect clock LocalAt(7) = %v", got)
	}
	low, high := m.Bounds()
	if low != 1 || high != 1 {
		t.Fatalf("bounds = %v, %v", low, high)
	}
}

func TestUniformFixedModelWithinBounds(t *testing.T) {
	m := NewUniformFixedModel(0.5, 2)
	root := rng.New(8)
	for i := 0; i < 100; i++ {
		c := m.NewClock(root.DeriveIndexed("clock", i))
		low, high := c.RateBounds()
		if low != high {
			t.Fatal("uniform fixed model must produce constant-rate clocks")
		}
		if low < 0.5 || low > 2 {
			t.Fatalf("rate %v outside model bounds", low)
		}
	}
}

func TestUniformFixedModelRejectsNilSource(t *testing.T) {
	mustPanic(t, func() { NewUniformFixedModel(0.5, 2).NewClock(nil) })
}

func TestModelsReportBounds(t *testing.T) {
	models := []Model{
		PerfectModel{},
		NewUniformFixedModel(0.5, 2),
		NewWanderingModel(0.25, 4, 1),
	}
	for _, m := range models {
		low, high := m.Bounds()
		if !(low > 0) || high < low {
			t.Fatalf("%T: invalid bounds (%v, %v)", m, low, high)
		}
	}
}

func TestWanderingModelClocksIndependent(t *testing.T) {
	m := NewWanderingModel(0.5, 2, 1)
	root := rng.New(9)
	a := m.NewClock(root.DeriveIndexed("clock", 0))
	b := m.NewClock(root.DeriveIndexed("clock", 1))
	same := 0
	for i := 1; i <= 50; i++ {
		tt := simtime.Time(float64(i) * 0.37)
		if a.LocalAt(tt) == b.LocalAt(tt) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("two nodes' clocks agree on %d/50 readings; streams not independent", same)
	}
}

func TestWanderingBoundsProperty(t *testing.T) {
	// Property: for arbitrary seeds, the average rate over [0, T] is within
	// the configured bounds.
	f := func(seed uint64) bool {
		w := NewWandering(0.5, 1.5, 0.8, rng.New(seed))
		const T = 25.0
		local := w.LocalAt(simtime.Time(T))
		return local >= 0.5*T-1e-9 && local <= 1.5*T+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
