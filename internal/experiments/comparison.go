package experiments

import (
	"fmt"

	"abenet/internal/dist"
	"abenet/internal/harness"
	"abenet/internal/runner"
	"abenet/internal/synchronizer"
	"abenet/internal/syncnet"
	"abenet/internal/topology"
)

// E7Comparison regenerates the paper's efficiency positioning: the ABE
// election's average complexity is comparable to the best election for
// anonymous synchronous rings (Itai–Rodeh style, linear), while the
// classic asynchronous baselines (Itai–Rodeh async, Chang–Roberts) sit in
// the Θ(n log n) class — consistent with the Ω(n log n) lower bound for
// asynchronous rings the paper cites.
func E7Comparison(opt Options) (Result, error) {
	res := Result{
		ID:    "E7",
		Claim: "ABE election ≈ best synchronous anonymous election (linear); async baselines are Θ(n log n)",
	}
	ns := opt.sizes([]float64{8, 16, 32, 64, 128, 256})
	reps := opt.reps(60)

	abe, err := electionSweep(opt, "e7-abe", ns, reps, nil)
	if err != nil {
		return res, err
	}

	// The baselines run straight off the registry: sweeping a protocol by
	// name needs no per-protocol adapter any more.
	baseline := func(sweepName, protocol string) ([]harness.Point, error) {
		sweep := harness.Sweep{Name: sweepName, Repetitions: reps, Workers: opt.Workers, Seed: opt.Seed}
		return sweep.RunProtocol(protocol, runner.Env{}, ns, runner.RequireElected)
	}
	irSyncPts, err := baseline("e7-irsync", "itai-rodeh-sync")
	if err != nil {
		return res, err
	}
	irAsyncPts, err := baseline("e7-irasync", "itai-rodeh-async")
	if err != nil {
		return res, err
	}
	crPts, err := baseline("e7-cr", "chang-roberts")
	if err != nil {
		return res, err
	}
	petPts, err := baseline("e7-peterson", "peterson")
	if err != nil {
		return res, err
	}

	table := harness.NewTable(
		"E7: mean messages by algorithm and ring size",
		"n", "ABE election", "Itai-Rodeh sync", "Itai-Rodeh async (FIFO)", "Chang-Roberts (IDs)", "Peterson (IDs, FIFO)")
	for i := range ns {
		table.AddRow(fmt.Sprintf("%g", ns[i]),
			fmt.Sprintf("%.1f", abe[i].Mean("messages")),
			fmt.Sprintf("%.1f", irSyncPts[i].Mean("messages")),
			fmt.Sprintf("%.1f", irAsyncPts[i].Mean("messages")),
			fmt.Sprintf("%.1f", crPts[i].Mean("messages")),
			fmt.Sprintf("%.1f", petPts[i].Mean("messages")))
	}
	fits := map[string]float64{}
	for name, pts := range map[string][]harness.Point{
		"abe": abe, "ir_sync": irSyncPts, "ir_async": irAsyncPts, "cr": crPts, "peterson": petPts,
	} {
		fit, err := harness.GrowthExponent(pts, "messages")
		if err != nil {
			return res, err
		}
		fits[name+"_exponent"] = fit.Slope
	}
	table.AddRow("fit exp.",
		fmt.Sprintf("%.2f", fits["abe_exponent"]),
		fmt.Sprintf("%.2f", fits["ir_sync_exponent"]),
		fmt.Sprintf("%.2f", fits["ir_async_exponent"]),
		fmt.Sprintf("%.2f", fits["cr_exponent"]),
		fmt.Sprintf("%.2f", fits["peterson_exponent"]))
	res.Table = table
	res.Findings = fits
	last := len(ns) - 1
	fits["ir_async_over_abe_at_largest_n"] = irAsyncPts[last].Mean("messages") / abe[last].Mean("messages")
	fits["cr_over_abe_at_largest_n"] = crPts[last].Mean("messages") / abe[last].Mean("messages")
	// The claim has two parts. (1) ABE election is in the linear class,
	// like the synchronous-ring optimum: growth exponents ≈ 1, clearly
	// below quadratic. (2) The asynchronous baselines pay more on the same
	// rings: over short n ranges an n log n exponent is hard to separate
	// from 1.1, so the robust signal is the constant-factor gap at the
	// largest size plus Chang-Roberts' clearly super-linear fit.
	res.Pass = fits["abe_exponent"] < 1.25 &&
		fits["ir_sync_exponent"] < 1.25 &&
		fits["ir_async_over_abe_at_largest_n"] > 1.5 &&
		fits["cr_exponent"] > 1.15
	return res, nil
}

// heartbeatProto is the E8(a) workload: one payload per edge per round.
type heartbeatProto struct {
	limit int
}

func (p *heartbeatProto) Round(ctx syncnet.NodeContext, round int, _ []syncnet.Message) {
	if round >= p.limit {
		ctx.StopNetwork("rounds complete")
		return
	}
	for port := 0; port < ctx.OutDegree(); port++ {
		ctx.Send(port, round)
	}
}

// E8Synchronizer regenerates Theorem 1 and its consequence. Part (a)
// measures messages per round for the round and α synchronizers across
// topologies — all ≥ n, meeting Awerbuch's bound. Part (b) runs the
// synchronous Itai–Rodeh election over the round synchronizer on an ABE
// ring and compares its total message cost against the native ABE
// election: synchronisation multiplies the cost by Θ(rounds), which is the
// paper's "we cannot run synchronous algorithms in ABE networks without
// losing the message complexity".
func E8Synchronizer(opt Options) (Result, error) {
	res := Result{
		ID:    "E8",
		Claim: "synchronising an ABE network costs ≥ n messages/round; synchronous algorithms lose their message complexity",
	}
	table := harness.NewTable(
		"E8a: synchronizer cost (messages per round, Theorem 1 bound is n)",
		"topology", "n", "|E|", "synchronizer", "msgs/round", ">= n")

	rounds := 40
	if opt.Quick {
		rounds = 15
	}
	type cfg struct {
		name  string
		graph *topology.Graph
		kind  synchronizer.Kind
	}
	cases := []cfg{
		{"ring(16)", topology.Ring(16), synchronizer.KindRound},
		{"biring(16)", topology.BiRing(16), synchronizer.KindRound},
		{"complete(8)", topology.Complete(8), synchronizer.KindRound},
		{"hypercube(4)", topology.Hypercube(4), synchronizer.KindRound},
		{"biring(16)", topology.BiRing(16), synchronizer.KindAlpha},
		{"complete(8)", topology.Complete(8), synchronizer.KindAlpha},
		{"hypercube(4)", topology.Hypercube(4), synchronizer.KindAlpha},
		{"biring(16)", topology.BiRing(16), synchronizer.KindBeta},
		{"complete(8)", topology.Complete(8), synchronizer.KindBeta},
		{"hypercube(4)", topology.Hypercube(4), synchronizer.KindBeta},
		{"biring(16)", topology.BiRing(16), synchronizer.KindGamma},
		{"hypercube(4)", topology.Hypercube(4), synchronizer.KindGamma},
	}
	minOK := true
	for _, c := range cases {
		rep, err := runner.Run(
			runner.Env{Graph: c.graph, Seed: opt.Seed},
			runner.Synchronized{
				Kind:     c.kind,
				MakeNode: func(int) syncnet.Node { return &heartbeatProto{limit: rounds} },
			},
		)
		if err != nil {
			return res, err
		}
		perRound := rep.Extra.(runner.SyncExtra).MessagesPerRound
		ok := perRound >= float64(c.graph.N())
		if !ok {
			minOK = false
		}
		table.AddRow(c.name, fmt.Sprint(c.graph.N()), fmt.Sprint(c.graph.EdgeCount()),
			c.kind.String(), fmt.Sprintf("%.1f", perRound), fmt.Sprintf("%v", ok))
	}

	// Part (b): native ABE election vs synchronous IR over a synchronizer.
	tableB := harness.NewTable(
		"E8b: native ABE election vs Itai-Rodeh-sync over the round synchronizer (same ABE ring)",
		"n", "native msgs", "synchronized msgs", "overhead", "sync rounds")
	ns := opt.sizes([]float64{8, 16, 32, 64})
	reps := opt.reps(40)
	native, err := electionSweep(opt, "e8b-native", ns, reps, nil)
	if err != nil {
		return res, err
	}
	syncSweep := harness.Sweep{Name: "e8b-sync", Repetitions: reps, Workers: opt.Workers, Seed: opt.Seed}
	synced, err := syncSweep.RunEnv(ns, func(x float64) (runner.Env, runner.Protocol, error) {
		return runner.Env{N: int(x), MaxRounds: 100_000}, runner.SynchronizedElection{}, nil
	}, runner.RequireElected)
	if err != nil {
		return res, err
	}
	overheads := make([]float64, len(ns))
	for i := range ns {
		nm := native[i].Mean("messages")
		sm := synced[i].Mean("messages")
		overheads[i] = sm / nm
		tableB.AddRow(fmt.Sprintf("%g", ns[i]),
			fmt.Sprintf("%.1f", nm),
			fmt.Sprintf("%.1f", sm),
			fmt.Sprintf("%.1fx", overheads[i]),
			fmt.Sprintf("%.1f", synced[i].Mean("rounds")))
	}

	// Merge both tables into one rendering unit.
	combined := harness.NewTable(table.Title, table.Headers...)
	combined.Rows = table.Rows
	res.Table = combined
	res.ExtraTables = []*harness.Table{tableB}
	res.Findings = Findings{
		"min_messages_per_round_ok": boolTo01(minOK),
		"overhead_at_largest_n":     overheads[len(overheads)-1],
	}
	// Overhead must grow with n (the synchronized cost is superlinear).
	res.Pass = minOK && overheads[len(overheads)-1] > overheads[0]
	return res, nil
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// E9ABDOnABE regenerates the Section 2 argument for why ABE networks need
// message-driven synchronizers: the zero-overhead clock-driven ABD
// synchronizer keeps perfect rounds when delays are truly bounded, but on
// an ABE network (same mean delay, unbounded support) every period choice
// leaves a positive violation rate that only decays with the period.
func E9ABDOnABE(opt Options) (Result, error) {
	res := Result{
		ID:    "E9",
		Claim: "clock-driven ABD synchronizers fail on ABE networks: positive round-violation rate for every period",
	}
	table := harness.NewTable(
		"E9: TKZ clock synchronizer, ABD (uniform[0,1]) vs ABE (exp(0.5)) delays, mean 0.5 both",
		"period", "ABD violations", "ABD rate", "ABE violations", "ABE rate")
	rounds := 400
	if opt.Quick {
		rounds = 100
	}
	var abeRates []float64
	abdAlwaysZero := true
	for _, period := range []float64{1.5, 2, 3, 4, 6} {
		clockSyncOn := func(delay dist.Dist) (runner.ClockSyncExtra, error) {
			rep, err := runner.Run(
				runner.Env{N: 16, Delay: delay, Seed: opt.Seed},
				runner.ClockSync{Period: period, Rounds: rounds},
			)
			if err != nil {
				return runner.ClockSyncExtra{}, err
			}
			return rep.Extra.(runner.ClockSyncExtra), nil
		}
		abd, err := clockSyncOn(dist.NewUniform(0, 1))
		if err != nil {
			return res, err
		}
		abe, err := clockSyncOn(dist.NewExponential(0.5))
		if err != nil {
			return res, err
		}
		if abd.RoundViolations != 0 {
			abdAlwaysZero = false
		}
		abeRates = append(abeRates, abe.ViolationRate)
		table.AddRow(fmt.Sprintf("%g", period),
			fmt.Sprint(abd.RoundViolations), fmt.Sprintf("%.4f", abd.ViolationRate),
			fmt.Sprint(abe.RoundViolations), fmt.Sprintf("%.4f", abe.ViolationRate))
	}
	res.Table = table
	res.Findings = Findings{
		"abd_always_zero":   boolTo01(abdAlwaysZero),
		"abe_rate_period_2": abeRates[1],
	}
	// ABD must be perfect; ABE must violate at small periods and decay.
	res.Pass = abdAlwaysZero && abeRates[0] > 0 && abeRates[len(abeRates)-1] < abeRates[0]
	return res, nil
}
