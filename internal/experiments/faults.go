package experiments

import (
	"fmt"

	"abenet/internal/channel"
	"abenet/internal/faults"
	"abenet/internal/harness"
	"abenet/internal/runner"
	"abenet/internal/simtime"
	"abenet/internal/topology"
)

// lossLevels is the E13 loss-probability axis (acceptance range 0–20%).
var lossLevels = []float64{0, 0.05, 0.10, 0.20}

// e13Horizon bounds each run: under raw loss the election can (correctly)
// deadlock once every token is destroyed, so termination within the
// horizon is the measured quantity, not a given.
const e13Horizon = simtime.Time(2000)

// E13LossResilience regenerates the paper's Section 1 case (iii) argument
// as a fault experiment: on lossy channels, *raw* loss breaks guaranteed
// termination of the election (tokens vanish; the termination rate within
// a fixed horizon decays with the loss probability), while stop-and-wait
// ARQ over the same physical loss restores certain termination at the
// price of delay — mean slot/p, i.e. expected-time inflation 1/p — which
// is exactly the regime the ABE model was built to capture. Swept on ring
// and hypercube topologies through the generic faults axis of the harness.
func E13LossResilience(opt Options) (Result, error) {
	res := Result{
		ID:    "E13",
		Claim: "raw message loss degrades election termination; ARQ links restore it at a 1/p delay cost (case (iii))",
	}
	table := harness.NewTable(
		fmt.Sprintf("E13: election under loss 0–20%% (horizon %v, plain vs ARQ links)", e13Horizon),
		"topology", "loss", "plain: terminated", "plain: time", "plain: dropped", "arq: terminated", "arq: time", "arq: retries")

	reps := opt.reps(60)
	topologies := []struct {
		name  string
		graph *topology.Graph // nil = unidirectional ring via Env.N
		n     int
	}{
		{"ring", nil, 8},
		{"hypercube", topology.Hypercube(3), 8},
	}

	findings := Findings{}
	pass := true
	for _, topo := range topologies {
		base := runner.Env{Graph: topo.graph, Horizon: e13Horizon}
		if topo.graph == nil {
			base.N = topo.n
		}

		// Plain arm: messages are destroyed outright with probability x.
		sweep := harness.Sweep{Name: "e13/plain/" + topo.name, Repetitions: reps, Workers: opt.Workers, Seed: opt.Seed}
		plain, err := sweep.RunFaults("election", base, lossLevels, func(x float64) *faults.Plan {
			return &faults.Plan{Loss: x}
		}, nil)
		if err != nil {
			return res, err
		}

		// ARQ arm: the same per-transmission loss rate handled by
		// stop-and-wait retransmission — no message is ever lost, each
		// just takes Geometric(1-x) slots. Delta declares the inflated δ
		// so the election's balanced A0 adapts to the slower network.
		arqSweep := harness.Sweep{Name: "e13/arq/" + topo.name, Repetitions: reps, Workers: opt.Workers, Seed: opt.Seed}
		arq, err := arqSweep.RunEnv(lossLevels, func(x float64) (runner.Env, runner.Protocol, error) {
			env := base
			env.Links = channel.ARQFactory(1-x, 1)
			env.Delta = 1 / (1 - x)
			return env, runner.Election{}, nil
		}, runner.RequireElected)
		if err != nil {
			return res, err
		}

		for i, loss := range lossLevels {
			pTerm := plain[i].Mean("elected")
			aTerm := arq[i].Mean("elected")
			table.AddRow(topo.name, fmt.Sprintf("%.0f%%", loss*100),
				fmt.Sprintf("%.0f%%", pTerm*100),
				fmt.Sprintf("%.1f", plain[i].Mean("time")),
				fmt.Sprintf("%.1f", plain[i].Mean("fault_dropped")),
				fmt.Sprintf("%.0f%%", aTerm*100),
				fmt.Sprintf("%.1f", arq[i].Mean("time")),
				fmt.Sprintf("%.2f", arq[i].Mean("transmissions")/arq[i].Mean("messages")))
			if aTerm != 1 {
				pass = false // ARQ must never lose a message
			}
		}
		// Loss-free plain runs must always elect; the lossiest plain runs
		// must not beat them (termination is monotone enough to compare
		// the endpoints without flaking on middle positions).
		if plain[0].Mean("elected") != 1 ||
			plain[len(lossLevels)-1].Mean("elected") > plain[0].Mean("elected") {
			pass = false
		}
		findings["plain_term_rate_at_20_"+topo.name] = plain[len(lossLevels)-1].Mean("elected")
		findings["arq_time_inflation_at_20_"+topo.name] =
			arq[len(lossLevels)-1].Mean("time") / arq[0].Mean("time")
	}

	res.Table = table
	res.Findings = findings
	res.Pass = pass
	return res, nil
}
