// Package experiments defines the full reproduction suite E1..E15 derived
// from every quantitative claim in the paper (see DESIGN.md §5 for the
// claim-to-experiment mapping). Each experiment returns a rendered table —
// the "rows the paper reports" — plus headline findings used by the
// benchmarks and EXPERIMENTS.md.
//
// The brief announcement itself contains no numbered tables or figures;
// the suite regenerates the numbers stated in its prose (k_avg = 1/p,
// linear average time and message complexity, Theorem 1's n-messages-per-
// round bound, the Itai–Rodeh comparison) and the robustness claims implied
// by Definition 1.
package experiments

import (
	"fmt"

	"abenet/internal/channel"
	"abenet/internal/harness"
	"abenet/internal/rng"
	"abenet/internal/sim"
)

// Options tunes an experiment run.
type Options struct {
	// Quick shrinks sweeps and repetition counts for use in benchmarks
	// and smoke tests.
	Quick bool
	// Seed is the base seed for all repetitions.
	Seed uint64
	// Workers bounds sweep parallelism (0 = GOMAXPROCS).
	Workers int
}

// Findings are an experiment's headline numbers (growth exponents, error
// bounds, ratios) keyed by name.
type Findings map[string]float64

// Result bundles one experiment's outputs.
type Result struct {
	// ID is the experiment identifier (E1..E15).
	ID string
	// Claim is the paper statement under test.
	Claim string
	// Table is the regenerated rows.
	Table *harness.Table
	// ExtraTables holds additional parts (e.g. E8's part b).
	ExtraTables []*harness.Table
	// Findings are the headline numbers.
	Findings Findings
	// Pass reports whether the measured shape matches the claim.
	Pass bool
}

// Tables returns the main table followed by any extra parts.
func (r Result) Tables() []*harness.Table {
	out := make([]*harness.Table, 0, 1+len(r.ExtraTables))
	if r.Table != nil {
		out = append(out, r.Table)
	}
	return append(out, r.ExtraTables...)
}

// Experiment is a named, runnable experiment.
type Experiment struct {
	ID   string
	Name string
	Run  func(Options) (Result, error)
}

// All returns the complete suite in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "retransmission delay (k_avg = 1/p)", E1Retransmission},
		{"E2", "election correctness", E2Correctness},
		{"E3", "message complexity vs n", E3Messages},
		{"E4", "time complexity vs n", E4Time},
		{"E5", "adaptive-activation ablation", E5Ablation},
		{"E6", "A0 trade-off sweep", E6A0Sweep},
		{"E7", "baseline comparison", E7Comparison},
		{"E8", "synchronizer cost (Theorem 1)", E8Synchronizer},
		{"E9", "ABD synchronizer on ABE delays", E9ABDOnABE},
		{"E10", "delay-shape robustness", E10DelayShapes},
		{"E11", "clock-drift robustness", E11ClockDrift},
		{"E12", "processing-time robustness", E12Processing},
		{"E13", "election under loss (plain vs ARQ)", E13LossResilience},
		{"E14", "byzantine consensus: point-to-point vs local broadcast", E14ByzantineBroadcast},
		{"E15", "causal relay depth vs the d+1 bound", E15CausalDepth},
		{"E16", "million-node scaling ladder (schedulers × sizes)", E16Scale},
	}
}

// reps picks a repetition count given the options and a full-run default.
func (o Options) reps(full int) int {
	if o.Quick {
		quick := full / 10
		if quick < 5 {
			quick = 5
		}
		return quick
	}
	return full
}

// sizes picks a sweep range.
func (o Options) sizes(full []float64) []float64 {
	if o.Quick && len(full) > 4 {
		return full[:4]
	}
	return full
}

// E1Retransmission regenerates the paper's Section 1(iii) analysis: on a
// lossy channel with per-attempt success probability p, the average number
// of transmissions is k_avg = Σ (k+1)(1−p)^k·p = 1/p, and with unit slots
// the average delay is 1/p as well.
func E1Retransmission(opt Options) (Result, error) {
	res := Result{
		ID:    "E1",
		Claim: "lossy channel with success probability p: k_avg = 1/p transmissions, expected delay 1/p",
	}
	table := harness.NewTable(
		"E1: stop-and-wait ARQ on a lossy channel (unit slot time)",
		"p", "analytic 1/p", "measured k_avg", "measured mean delay", "rel. error")
	messages := 200_000
	if opt.Quick {
		messages = 20_000
	}
	maxErr := 0.0
	root := rng.New(opt.Seed)
	for _, p := range []float64{0.1, 0.2, 0.3, 0.5, 0.7, 0.9} {
		kernel := sim.New()
		link := channel.NewARQ(kernel, p, 1, root.Derive(fmt.Sprintf("e1/p=%g", p)), func(any) {})
		for i := 0; i < messages; i++ {
			link.Send(i)
		}
		if err := kernel.Run(1<<62, 0); err != nil {
			return res, err
		}
		st := link.Stats()
		kAvg := float64(st.Transmissions) / float64(st.Sent)
		relErr := abs(kAvg-1/p) / (1 / p)
		if relErr > maxErr {
			maxErr = relErr
		}
		table.AddRow(
			fmt.Sprintf("%.1f", p),
			fmt.Sprintf("%.3f", 1/p),
			fmt.Sprintf("%.3f", kAvg),
			fmt.Sprintf("%.3f", st.MeanDelay()),
			fmt.Sprintf("%.2f%%", 100*relErr),
		)
	}
	res.Table = table
	res.Findings = Findings{"max_rel_error": maxErr}
	res.Pass = maxErr < 0.02
	return res, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
