package experiments

import (
	"strings"
	"testing"
)

// quickOpts runs every experiment in its reduced configuration; the full
// configurations are exercised by cmd/abe-bench and the benchmarks.
func quickOpts() Options {
	return Options{Quick: true, Seed: 1}
}

func TestAllExperimentsPassQuick(t *testing.T) {
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			res, err := exp.Run(quickOpts())
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if res.ID != exp.ID {
				t.Fatalf("result ID %q for experiment %q", res.ID, exp.ID)
			}
			if res.Claim == "" {
				t.Fatal("empty claim")
			}
			if len(res.Tables()) == 0 {
				t.Fatal("no tables")
			}
			for _, table := range res.Tables() {
				if len(table.Rows) == 0 {
					t.Fatalf("empty table %q", table.Title)
				}
			}
			if !res.Pass {
				var b strings.Builder
				for _, table := range res.Tables() {
					if err := table.Render(&b); err != nil {
						t.Fatal(err)
					}
				}
				t.Fatalf("%s did not reproduce its claim.\nfindings: %v\n%s", exp.ID, res.Findings, b.String())
			}
		})
	}
}

func TestSuiteCoversAllTwelve(t *testing.T) {
	ids := map[string]bool{}
	for _, exp := range All() {
		ids[exp.ID] = true
	}
	for i := 1; i <= 14; i++ {
		id := "E" + itoa(i)
		if !ids[id] {
			t.Errorf("suite missing %s", id)
		}
	}
}

func itoa(i int) string {
	if i >= 10 {
		return string(rune('0'+i/10)) + string(rune('0'+i%10))
	}
	return string(rune('0' + i))
}

func TestOptionsScaling(t *testing.T) {
	full := Options{}
	quick := Options{Quick: true}
	if full.reps(100) != 100 || quick.reps(100) != 10 {
		t.Fatal("reps scaling wrong")
	}
	if quick.reps(20) != 5 {
		t.Fatalf("quick floor = %d, want 5", quick.reps(20))
	}
	sizes := []float64{1, 2, 3, 4, 5, 6}
	if len(quick.sizes(sizes)) != 4 || len(full.sizes(sizes)) != 6 {
		t.Fatal("sizes scaling wrong")
	}
}
