package experiments

import (
	"fmt"

	"abenet/internal/byzantine"
	"abenet/internal/dist"
	"abenet/internal/harness"
	"abenet/internal/runner"
	"abenet/internal/topology"
)

// e14MaxRounds caps each Ben-Or run: a configuration that cannot decide
// (point-to-point quorums polluted past the decide threshold) halts there,
// so "termination rate" is measured against a fixed round budget instead
// of a wall-clock horizon.
const e14MaxRounds = 60

// E14ByzantineBroadcast measures the Khan & Vaidya local-broadcast
// separation on the ABE kernel: Ben-Or consensus provisioned at the f < n/3
// edge, swept over the number of equivocating adversaries e, once on
// point-to-point links and once on the atomic local-broadcast medium.
//
// Under point-to-point links an equivocator tells every neighbour a
// different value, so the polluted quorums stop reaching the unanimous
// decide threshold while safety (agreement, validity over honest nodes)
// still holds — the runs stay safe but lose termination. Under local
// broadcast the medium delivers one transmission identically to all
// neighbours, equivocation degrades to consistent corruption, and the same
// adversary budget keeps terminating: strictly more equivocators are
// tolerated. A second table checks the ABE premise itself: termination
// needs only a bound on the *expected* delay, so heavy-tailed Pareto
// delays behave like deterministic ones.
func E14ByzantineBroadcast(opt Options) (Result, error) {
	res := Result{
		ID:    "E14",
		Claim: "local broadcast tolerates strictly more equivocators than point-to-point at equal f; expected-delay bounds suffice for termination",
	}
	table := harness.NewTable(
		fmt.Sprintf("E14: Ben-Or under e equivocators, point-to-point vs local broadcast (common coin, split start, %d-round budget)", e14MaxRounds),
		"topology", "e", "p2p: safe", "p2p: terminated", "p2p: rounds", "bcast: safe", "bcast: terminated", "bcast: rounds", "bcast: corruptions")

	reps := opt.reps(30)
	topologies := []struct {
		name string
		n    int
	}{
		{"complete-8", 8},
		{"complete-11", 11},
	}
	if opt.Quick {
		topologies = topologies[:1]
	}

	findings := Findings{}
	pass := true
	for _, topo := range topologies {
		f := (topo.n - 1) / 3
		levels := make([]float64, f+1)
		for e := range levels {
			levels[e] = float64(e)
		}
		arm := func(bcast bool) ([]harness.Point, error) {
			medium := "p2p"
			if bcast {
				medium = "bcast"
			}
			sweep := harness.Sweep{
				Name:        "e14/" + medium + "/" + topo.name,
				Repetitions: reps,
				Workers:     opt.Workers,
				Seed:        opt.Seed,
			}
			return sweep.RunEnv(levels, func(x float64) (runner.Env, runner.Protocol, error) {
				env := runner.Env{
					Graph:          topology.Complete(topo.n),
					MaxRounds:      e14MaxRounds,
					Byzantine:      byzantine.Equivocators(int(x)),
					LocalBroadcast: bcast,
				}
				return env, runner.BenOr{F: f, Init: "half", Coin: "common"}, nil
			}, nil)
		}
		p2p, err := arm(false)
		if err != nil {
			return res, err
		}
		bc, err := arm(true)
		if err != nil {
			return res, err
		}

		// tolerated(arm) is the largest e such that every level up to e
		// kept agreement, validity AND termination in every repetition.
		tolerated := func(points []harness.Point) int {
			max := -1
			for i := range points {
				if points[i].Mean("agreement") != 1 || points[i].Mean("validity") != 1 ||
					points[i].Mean("termination") != 1 {
					break
				}
				max = i
			}
			return max
		}
		safe := func(p harness.Point) bool {
			return p.Mean("agreement") == 1 && p.Mean("validity") == 1
		}
		for i := range levels {
			table.AddRow(topo.name, fmt.Sprintf("%d", i),
				fmt.Sprintf("%v", safe(p2p[i])),
				fmt.Sprintf("%.0f%%", 100*p2p[i].Mean("termination")),
				fmt.Sprintf("%.1f", p2p[i].Mean("rounds")),
				fmt.Sprintf("%v", safe(bc[i])),
				fmt.Sprintf("%.0f%%", 100*bc[i].Mean("termination")),
				fmt.Sprintf("%.1f", bc[i].Mean("rounds")),
				fmt.Sprintf("%.1f", bc[i].Mean("byz_corruptions")))
			// Safety must hold on BOTH media at every e < n/3: the medium
			// changes what terminates, never what is decided.
			if !safe(p2p[i]) || !safe(bc[i]) {
				pass = false
			}
			// The broadcast medium leaves no equivocations standing.
			if bc[i].Mean("byz_equivocations") != 0 {
				pass = false
			}
		}
		tolP2P, tolBC := tolerated(p2p), tolerated(bc)
		findings["tolerated_p2p_"+topo.name] = float64(tolP2P)
		findings["tolerated_bcast_"+topo.name] = float64(tolBC)
		// The separation itself: at equal provisioning, the broadcast
		// medium must tolerate strictly more equivocators on this topology.
		if tolBC <= tolP2P {
			pass = false
		}
	}

	// Part b: the ABE premise. Termination survives any delay family with
	// a bounded mean — the heavy-tailed Pareto included — because a round
	// completes at the (n−f)'th arrival, whose expectation is finite.
	delays := harness.NewTable(
		"E14b: honest Ben-Or (n=8, f=2) across delay families with mean 1",
		"delay family", "terminated", "mean time", "mean decision round", "messages")
	families := []struct {
		name string
		key  string
		d    dist.Dist
	}{
		{"deterministic(1)", "deterministic", dist.NewDeterministic(1)},
		{"uniform(0.5,1.5)", "uniform", dist.NewUniform(0.5, 1.5)},
		{"exponential(1)", "exponential", dist.NewExponential(1)},
		{"pareto(mean 1, α=1.5)", "pareto", dist.ParetoWithMean(1, 1.5)},
	}
	for i, fam := range families {
		sweep := harness.Sweep{
			Name:        "e14b/" + fam.name,
			Repetitions: reps,
			Workers:     opt.Workers,
			Seed:        opt.Seed,
		}
		d := fam.d
		points, err := sweep.RunEnv([]float64{float64(i)}, func(float64) (runner.Env, runner.Protocol, error) {
			env := runner.Env{
				Graph:     topology.Complete(8),
				Delay:     d,
				MaxRounds: e14MaxRounds,
			}
			return env, runner.BenOr{F: 2, Init: "half", Coin: "common"}, nil
		}, nil)
		if err != nil {
			return res, err
		}
		p := points[0]
		delays.AddRow(fam.name,
			fmt.Sprintf("%.0f%%", 100*p.Mean("termination")),
			fmt.Sprintf("%.1f", p.Mean("time")),
			fmt.Sprintf("%.1f", p.Mean("decision_round")),
			fmt.Sprintf("%.0f", p.Mean("messages")))
		if p.Mean("termination") != 1 || p.Mean("agreement") != 1 {
			pass = false
		}
		findings["time_"+fam.key] = p.Mean("time")
	}

	res.Table = table
	res.ExtraTables = []*harness.Table{delays}
	res.Findings = findings
	res.Pass = pass
	return res, nil
}
