package experiments

import (
	"fmt"
	"time"

	"abenet/internal/core"
	"abenet/internal/harness"
	"abenet/internal/sim"
)

// scaleSizes is the E16 ladder. The full ladder tops out at one million
// nodes — the headline the pluggable schedulers and the pooled delivery
// path exist for; Quick stops at 10⁴ so the suite stays benchmark-friendly.
var scaleSizes = []int{1_000, 10_000, 100_000, 1_000_000}

// scaleConfig parameterises one ladder rung. The per-node activation
// probability A0 = 1/n with tick interval n keeps the total event count
// O(n): in each tick round (n virtual time units, n tick events) about one
// node self-activates, so only O(1) candidate tokens circulate while the
// election resolves. The paper's default A0 = c/n² with unit ticks has the
// same message complexity but takes Θ(n²) tick events to get there —
// quadratic kernel work that would make the 10⁶ rung unreachable whatever
// the scheduler.
func scaleConfig(n int, scheduler string, seed uint64) core.ElectionConfig {
	return core.ElectionConfig{
		N:            n,
		A0:           1 / float64(n),
		TickInterval: float64(n),
		Seed:         seed,
		Scheduler:    scheduler,
		MaxEvents:    2_000_000_000,
	}
}

// E16Scale measures event throughput of the ring election ladder
// n = 10³..10⁶ under each kernel scheduler. Both schedulers implement the
// identical (time, seq) order, so the runs must agree on every result
// field — the experiment fails if they diverge, making it a determinism
// check at sizes the golden-seed suite cannot afford. The finding
// max_n_elected is the largest ring that completed with exactly one
// leader.
func E16Scale(opt Options) (Result, error) {
	res := Result{
		ID:    "E16",
		Claim: "a single ring election at n = 10⁶ completes in memory on one machine; schedulers agree byte-for-byte",
	}
	table := harness.NewTable(
		"E16: election scaling ladder (A0 = 1/n, tick = n), events/sec per scheduler",
		"n", "scheduler", "events", "messages", "elected", "wall s", "events/sec")

	sizes := scaleSizes
	if opt.Quick {
		sizes = sizes[:2]
	}
	// scaleDigest is the comparable cross-scheduler fingerprint of a run
	// (ElectionResult itself holds slices, so it cannot be compared with ==).
	type scaleDigest struct {
		events, messages uint64
		leaders, leader  int
		time             float64
		activations      int
	}
	digest := func(r core.ElectionResult) scaleDigest {
		return scaleDigest{r.Events, r.Messages, r.Leaders, r.LeaderIndex, r.Time, r.Activations}
	}

	res.Pass = true
	maxElected := 0.0
	for _, n := range sizes {
		var ref scaleDigest
		for i, sched := range sim.SchedulerNames() {
			start := time.Now()
			r, err := core.RunElection(scaleConfig(n, sched, opt.Seed))
			if err != nil {
				return res, fmt.Errorf("E16: n=%d scheduler=%s: %w", n, sched, err)
			}
			wall := time.Since(start).Seconds()
			if i == 0 {
				ref = digest(r)
			} else if digest(r) != ref {
				res.Pass = false
			}
			if r.Leaders != 1 {
				res.Pass = false
			}
			eps := float64(r.Events) / wall
			table.AddRow(
				fmt.Sprintf("%d", n),
				sched,
				fmt.Sprintf("%d", r.Events),
				fmt.Sprintf("%d", r.Messages),
				fmt.Sprintf("%v", r.Elected),
				fmt.Sprintf("%.2f", wall),
				fmt.Sprintf("%.3g", eps),
			)
			if r.Leaders == 1 && float64(n) > maxElected {
				maxElected = float64(n)
			}
		}
	}
	res.Table = table
	res.Findings = Findings{"max_n_elected": maxElected}
	return res, nil
}
