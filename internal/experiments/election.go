package experiments

import (
	"fmt"

	"abenet/internal/check"
	"abenet/internal/clock"
	"abenet/internal/core"
	"abenet/internal/dist"
	"abenet/internal/harness"
	"abenet/internal/rng"
	"abenet/internal/runner"
	"abenet/internal/stats"
)

// clockModelForRatio builds the E11 clock model with rates in [1, r].
func clockModelForRatio(r float64) clock.Model {
	if r == 1 {
		return clock.PerfectModel{}
	}
	return clock.NewWanderingModel(1, r, 1)
}

// electionSweep runs the ABE election across ring sizes through the
// unified Env/Protocol runner; points carry the full Report metrics
// ("messages", "time", "activations", ...).
func electionSweep(opt Options, name string, ns []float64, reps int, mutate func(n int, env *runner.Env, p *runner.Election)) ([]harness.Point, error) {
	sweep := harness.Sweep{Name: name, Repetitions: reps, Workers: opt.Workers, Seed: opt.Seed}
	return sweep.RunEnv(ns, func(x float64) (runner.Env, runner.Protocol, error) {
		n := int(x)
		env := runner.Env{N: n}
		p := runner.Election{A0: core.DefaultA0(n)}
		if mutate != nil {
			mutate(n, &env, &p)
		}
		return env, p, nil
	}, runner.RequireElected)
}

// E2Correctness regenerates the correctness claim: the algorithm elects
// exactly one leader on anonymous unidirectional ABE rings — checked by
// sampled runs at many sizes plus exhaustive model checking at small sizes.
func E2Correctness(opt Options) (Result, error) {
	res := Result{
		ID:    "E2",
		Claim: "the election algorithm elects exactly one leader on anonymous unidirectional ABE rings",
	}
	table := harness.NewTable(
		"E2: election correctness (sampled runs + exhaustive model checking)",
		"check", "n", "coverage", "leaders=1", "violations")

	reps := opt.reps(200)
	for _, n := range []int{2, 3, 8, 32, 64} {
		ok := 0
		for seed := 0; seed < reps; seed++ {
			r, err := runner.Run(
				runner.Env{N: n, Seed: opt.Seed + uint64(seed)*7919},
				runner.Election{A0: core.DefaultA0(n)},
			)
			if err != nil {
				return res, err
			}
			if r.Leaders == 1 && len(r.Violations) == 0 {
				ok++
			}
		}
		table.AddRow("monte-carlo", fmt.Sprint(n), fmt.Sprintf("%d seeds", reps),
			fmt.Sprintf("%d/%d", ok, reps), "0")
		if ok != reps {
			res.Pass = false
			res.Table = table
			return res, nil
		}
	}

	checkSizes := []int{2, 3, 4}
	if opt.Quick {
		checkSizes = []int{2, 3}
	}
	for _, n := range checkSizes {
		report, err := check.CheckElection(check.Options{N: n})
		if err != nil {
			return res, err
		}
		status := "0"
		if len(report.Violations) > 0 {
			status = fmt.Sprintf("%d!", len(report.Violations))
		}
		table.AddRow("exhaustive", fmt.Sprint(n),
			fmt.Sprintf("%d states", report.StatesExplored),
			"all schedules", status)
		if !report.OK() {
			res.Pass = false
			res.Table = table
			return res, nil
		}
	}
	res.Table = table
	res.Findings = Findings{"all_ok": 1}
	res.Pass = true
	return res, nil
}

// scalingSizes is the E3/E4 ring-size range.
var scalingSizes = []float64{8, 16, 32, 64, 128, 256}

// E3Messages regenerates the headline message-complexity claim: average
// messages grow linearly in n (growth exponent ≈ 1, against the Ω(n log n)
// bound for asynchronous rings).
func E3Messages(opt Options) (Result, error) {
	res := Result{
		ID:    "E3",
		Claim: "average message complexity of the ABE election is linear in n",
	}
	points, err := electionSweep(opt, "e3", opt.sizes(scalingSizes), opt.reps(100), nil)
	if err != nil {
		return res, err
	}
	table := harness.NewTable("E3: messages vs ring size (A0 = 1/n², δ = 1)",
		"n", "messages (mean ± ci95)", "messages / n")
	for _, p := range points {
		s := p.Samples["messages"]
		table.AddRow(fmt.Sprintf("%g", p.X),
			fmt.Sprintf("%.1f ± %.1f", s.Mean(), s.CI95()),
			fmt.Sprintf("%.2f", s.Mean()/p.X))
	}
	fit, err := harness.GrowthExponent(points, "messages")
	if err != nil {
		return res, err
	}
	table.AddRow("fit", fmt.Sprintf("exponent %.3f", fit.Slope), fmt.Sprintf("R²=%.4f", fit.R2))
	res.Table = table
	res.Findings = Findings{"growth_exponent": fit.Slope, "r2": fit.R2}
	res.Pass = fit.Slope < 1.25 // linear, clearly below the n log n band
	return res, nil
}

// E4Time regenerates the time-complexity claim: average election time is
// linear in n.
func E4Time(opt Options) (Result, error) {
	res := Result{
		ID:    "E4",
		Claim: "average time complexity of the ABE election is linear in n",
	}
	points, err := electionSweep(opt, "e4", opt.sizes(scalingSizes), opt.reps(100), nil)
	if err != nil {
		return res, err
	}
	table := harness.NewTable("E4: election time vs ring size (A0 = 1/n², δ = 1)",
		"n", "time (mean ± ci95)", "time / n")
	for _, p := range points {
		s := p.Samples["time"]
		table.AddRow(fmt.Sprintf("%g", p.X),
			fmt.Sprintf("%.1f ± %.1f", s.Mean(), s.CI95()),
			fmt.Sprintf("%.2f", s.Mean()/p.X))
	}
	fit, err := harness.GrowthExponent(points, "time")
	if err != nil {
		return res, err
	}
	table.AddRow("fit", fmt.Sprintf("exponent %.3f", fit.Slope), fmt.Sprintf("R²=%.4f", fit.R2))
	res.Table = table

	// Part b: the delay tail. ABE delays are unbounded, so the election
	// time has a tail too — but a well-behaved (exponentially decaying)
	// one, since the algorithm retries geometrically. Report quantiles.
	tail, err := e4Tail(opt)
	if err != nil {
		return res, err
	}
	res.ExtraTables = []*harness.Table{tail}

	res.Findings = Findings{"growth_exponent": fit.Slope, "r2": fit.R2}
	res.Pass = fit.Slope < 1.25
	return res, nil
}

// e4Tail measures the election-time distribution at n = 64.
func e4Tail(opt Options) (*harness.Table, error) {
	const n = 64
	runs := opt.reps(300)
	reservoir := stats.NewReservoir(runs, rng.New(opt.Seed^0xE47A11))
	var mean stats.Sample
	for seed := 0; seed < runs; seed++ {
		r, err := runner.Run(
			runner.Env{N: n, Seed: opt.Seed + uint64(seed)*31337},
			runner.Election{A0: core.DefaultA0(n)},
		)
		if err != nil {
			return nil, err
		}
		reservoir.Add(r.Time)
		mean.Add(r.Time)
	}
	table := harness.NewTable(
		fmt.Sprintf("E4b: election-time distribution at n = %d (%d runs)", n, runs),
		"statistic", "time")
	table.AddRow("mean", fmt.Sprintf("%.1f ± %.1f", mean.Mean(), mean.CI95()))
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		v, err := reservoir.Quantile(q)
		if err != nil {
			return nil, err
		}
		table.AddRow(fmt.Sprintf("p%02.0f", q*100), fmt.Sprintf("%.1f", v))
	}
	table.AddRow("max", fmt.Sprintf("%.1f", mean.Max()))
	return table, nil
}

// E5Ablation regenerates the claim behind the activation rule: using
// 1−(1−A0)^d keeps the overall wake-up rate constant; replacing it with a
// constant per-node probability stalls the endgame and the average time
// degrades to superlinear.
func E5Ablation(opt Options) (Result, error) {
	res := Result{
		ID:    "E5",
		Claim: "the d-adaptive wake-up rule is necessary: constant activation degrades time to superlinear",
	}
	ns := opt.sizes([]float64{8, 16, 32, 64, 96})
	reps := opt.reps(60)
	adaptive, err := electionSweep(opt, "e5-adaptive", ns, reps, nil)
	if err != nil {
		return res, err
	}
	constant, err := electionSweep(opt, "e5-constant", ns, reps, func(n int, env *runner.Env, p *runner.Election) {
		p.ConstantActivation = true
	})
	if err != nil {
		return res, err
	}
	table := harness.NewTable("E5: adaptive 1−(1−A0)^d vs constant A0 activation (A0 = 1/n²)",
		"n", "adaptive time", "constant time", "slowdown", "adaptive msgs", "constant msgs")
	for i := range adaptive {
		at := adaptive[i].Mean("time")
		ct := constant[i].Mean("time")
		table.AddRow(fmt.Sprintf("%g", adaptive[i].X),
			fmt.Sprintf("%.1f", at), fmt.Sprintf("%.1f", ct),
			fmt.Sprintf("%.1fx", ct/at),
			fmt.Sprintf("%.1f", adaptive[i].Mean("messages")),
			fmt.Sprintf("%.1f", constant[i].Mean("messages")))
	}
	fitA, err := harness.GrowthExponent(adaptive, "time")
	if err != nil {
		return res, err
	}
	fitC, err := harness.GrowthExponent(constant, "time")
	if err != nil {
		return res, err
	}
	table.AddRow("fit", fmt.Sprintf("exp %.2f", fitA.Slope), fmt.Sprintf("exp %.2f", fitC.Slope))
	res.Table = table
	res.Findings = Findings{
		"adaptive_time_exponent": fitA.Slope,
		"constant_time_exponent": fitC.Slope,
	}
	res.Pass = fitC.Slope > fitA.Slope+0.4 // clearly separated growth orders
	return res, nil
}

// E6A0Sweep regenerates the parameterisation trade-off: the algorithm is
// parameterised by A0; sweeping the aggressiveness c in A0 = c/n² trades
// waiting time (small c) against knockout collisions (large c).
func E6A0Sweep(opt Options) (Result, error) {
	res := Result{
		ID:    "E6",
		Claim: "A0 trades time (small A0: long waits) against messages (large A0: more collisions)",
	}
	const n = 64
	cs := []float64{0.25, 0.5, 1, 2, 4, 8}
	sweep := harness.Sweep{Name: "e6", Repetitions: opt.reps(100), Workers: opt.Workers, Seed: opt.Seed}
	points, err := sweep.RunEnv(cs, func(c float64) (runner.Env, runner.Protocol, error) {
		return runner.Env{N: n}, runner.Election{A0: core.A0ForRing(n, 1, 1, c)}, nil
	}, nil)
	if err != nil {
		return res, err
	}
	table := harness.NewTable("E6: aggressiveness sweep at n = 64 (A0 = c/n²)",
		"c", "A0", "messages", "time", "activations")
	for _, p := range points {
		table.AddRow(fmt.Sprintf("%g", p.X),
			fmt.Sprintf("%.2e", core.A0ForRing(n, 1, 1, p.X)),
			fmt.Sprintf("%.1f", p.Mean("messages")),
			fmt.Sprintf("%.1f", p.Mean("time")),
			fmt.Sprintf("%.2f", p.Mean("activations")))
	}
	res.Table = table
	first, last := points[0], points[len(points)-1]
	res.Findings = Findings{
		"time_ratio_smallest_over_largest_c": first.Mean("time") / last.Mean("time"),
		"msg_ratio_largest_over_smallest_c":  last.Mean("messages") / first.Mean("messages"),
	}
	// The trade-off claim: time falls with c, messages rise with c.
	res.Pass = first.Mean("time") > last.Mean("time") && last.Mean("messages") > first.Mean("messages")
	return res, nil
}

// E10DelayShapes regenerates the model-robustness claim: only the delay's
// expectation matters for the ABE guarantees; shape changes constants, not
// correctness or the complexity class.
func E10DelayShapes(opt Options) (Result, error) {
	res := Result{
		ID:    "E10",
		Claim: "ABE behaviour depends on the delay's mean, not its shape (Definition 1 uses only E[delay])",
	}
	const n = 64
	shapes := []dist.Dist{
		dist.NewDeterministic(1),
		dist.NewUniform(0, 2),
		dist.NewExponential(1),
		dist.ParetoWithMean(1, 1.5),
		dist.ParetoWithMean(1, 3),
		dist.NewRetransmission(0.5, 0.5),
		dist.NewErlang(4, 1),
		dist.NewBimodal(dist.NewDeterministic(0.5), dist.NewDeterministic(5.5), 0.1),
	}
	table := harness.NewTable("E10: delay-distribution robustness at n = 64 (all means = 1)",
		"distribution", "messages", "time", "leaders=1")
	reps := opt.reps(100)
	var minMsg, maxMsg float64
	for i, d := range shapes {
		d := d
		sweep := harness.Sweep{Name: "e10/" + d.Name(), Repetitions: reps, Workers: opt.Workers, Seed: opt.Seed}
		points, err := sweep.RunEnv([]float64{float64(n)}, func(float64) (runner.Env, runner.Protocol, error) {
			return runner.Env{N: n, Delay: d}, runner.Election{A0: core.DefaultA0(n)}, nil
		}, runner.RequireElected)
		if err != nil {
			return res, err
		}
		m := points[0].Mean("messages")
		if i == 0 || m < minMsg {
			minMsg = m
		}
		if i == 0 || m > maxMsg {
			maxMsg = m
		}
		table.AddRow(d.Name(),
			fmt.Sprintf("%.1f", m),
			fmt.Sprintf("%.1f", points[0].Mean("time")),
			fmt.Sprintf("%d/%d", reps, reps))
	}
	res.Table = table
	spread := maxMsg / minMsg
	res.Findings = Findings{"message_spread_across_shapes": spread}
	res.Pass = spread < 2.5 // constants move, the class does not
	return res, nil
}

// E11ClockDrift regenerates Definition 1 condition 2: clock-speed bounds
// affect constants only.
func E11ClockDrift(opt Options) (Result, error) {
	res := Result{
		ID:    "E11",
		Claim: "clock drift within [s_low, s_high] changes constants, not correctness or linearity",
	}
	const n = 64
	ratios := []float64{1, 2, 4, 8}
	table := harness.NewTable("E11: clock-speed bound ratio at n = 64 (rates in [1, r], wandering)",
		"s_high/s_low", "messages", "time", "leaders=1")
	reps := opt.reps(80)
	var times []float64
	for _, r := range ratios {
		model := clockModelForRatio(r)
		sweep := harness.Sweep{Name: fmt.Sprintf("e11/r=%g", r), Repetitions: reps, Workers: opt.Workers, Seed: opt.Seed}
		points, err := sweep.RunEnv([]float64{r}, func(float64) (runner.Env, runner.Protocol, error) {
			return runner.Env{N: n, Clocks: model}, runner.Election{A0: core.DefaultA0(n)}, nil
		}, runner.RequireElected)
		if err != nil {
			return res, err
		}
		times = append(times, points[0].Mean("time"))
		table.AddRow(fmt.Sprintf("%g", r),
			fmt.Sprintf("%.1f", points[0].Mean("messages")),
			fmt.Sprintf("%.1f", points[0].Mean("time")),
			fmt.Sprintf("%d/%d", reps, reps))
	}
	res.Table = table
	res.Findings = Findings{"time_ratio_r8_over_r1": times[len(times)-1] / times[0]}
	// Faster clocks tick more often, so time in real units shrinks — but
	// by a bounded constant, not a complexity change.
	res.Pass = times[len(times)-1] > times[0]/16 && times[len(times)-1] < times[0]*16
	return res, nil
}

// E12Processing regenerates Definition 1 condition 3: a bound γ on the
// expected processing time shifts the constants additively.
func E12Processing(opt Options) (Result, error) {
	res := Result{
		ID:    "E12",
		Claim: "expected processing time γ adds a bounded constant factor",
	}
	const n = 64
	gammas := []float64{0, 0.1, 0.5, 1}
	table := harness.NewTable("E12: processing-time bound γ at n = 64 (exponential processing)",
		"γ", "messages", "time", "leaders=1")
	reps := opt.reps(80)
	var times []float64
	for _, g := range gammas {
		var proc dist.Dist
		if g > 0 {
			proc = dist.NewExponential(g)
		}
		sweep := harness.Sweep{Name: fmt.Sprintf("e12/g=%g", g), Repetitions: reps, Workers: opt.Workers, Seed: opt.Seed}
		points, err := sweep.RunEnv([]float64{g}, func(float64) (runner.Env, runner.Protocol, error) {
			return runner.Env{N: n, Processing: proc}, runner.Election{A0: core.DefaultA0(n)}, nil
		}, runner.RequireElected)
		if err != nil {
			return res, err
		}
		times = append(times, points[0].Mean("time"))
		table.AddRow(fmt.Sprintf("%g", g),
			fmt.Sprintf("%.1f", points[0].Mean("messages")),
			fmt.Sprintf("%.1f", points[0].Mean("time")),
			fmt.Sprintf("%d/%d", reps, reps))
	}
	res.Table = table
	res.Findings = Findings{"time_ratio_g1_over_g0": times[len(times)-1] / times[0]}
	res.Pass = times[len(times)-1] > times[0] && times[len(times)-1] < times[0]*4
	return res, nil
}
