package experiments

import (
	"fmt"

	"abenet/internal/core"
	"abenet/internal/dist"
	"abenet/internal/harness"
	"abenet/internal/runner"
	"abenet/internal/topology"
	"abenet/internal/trace"
	"abenet/internal/trace/causal"
)

// E15CausalDepth validates the paper's relay bound on the causal trace
// itself: Section 2's protocol forwards a token at most d+1 times (d the
// diameter of the election ring), so in the happens-before forest no
// deliver→send→deliver relay chain may grow deeper than d+1 — and each
// message's own hop counter must never undercount the chain that produced
// it. The election runs along the embedded Hamiltonian cycle of every
// topology, so the bound is the cycle length n = d+1 regardless of the
// host graph.
//
// Each cell traces full runs (Env.Trace), feeds the exported forest to
// causal.Analyze, and checks CheckHopBound(n) — the invariant as code. The
// critical-path split (message delay vs local queueing along the longest
// chain to the decision) rides along per cell: under heavy-tail Pareto
// delays the message share of the path grows while the bound still holds,
// which is exactly the ABE premise (only E[delay] is bounded, yet the
// causal structure stays finite).
func E15CausalDepth(opt Options) (Result, error) {
	res := Result{
		ID:    "E15",
		Claim: "causal relay depth never exceeds d+1 = n on the election ring, for every topology and delay shape (incl. heavy-tail Pareto)",
	}

	topologies := []struct {
		name  string
		graph *topology.Graph
		n     int
	}{
		{"ring-16", nil, 16},
		{"hypercube-16", topology.Hypercube(4), 16},
		{"complete-12", topology.Complete(12), 12},
	}
	delays := []dist.Dist{
		dist.NewExponential(1),
		dist.NewUniform(0, 2),
		dist.ParetoWithMean(1, 2), // heavy tail: infinite variance, mean 1
	}

	table := harness.NewTable(
		"E15: measured causal relay depth vs the d+1 bound (traced elections)",
		"topology", "delay", "bound d+1", "max depth", "mean depth", "path hops", "msg-time share", "violations")

	reps := opt.reps(30)
	findings := Findings{}
	violations := 0
	worstSlack := 1.0 // min over cells of bound/maxDepth; >= 1 iff the bound held everywhere
	for ti, topo := range topologies {
		bound := topo.n // d = n-1 on the embedded cycle
		for di, d := range delays {
			var maxDepth, sumDepth, pathHops, cellViolations int
			var msgShare float64
			for rep := 0; rep < reps; rep++ {
				env := runner.Env{
					N:     topo.n,
					Graph: topo.graph,
					Delay: d,
					Seed:  opt.Seed + uint64(ti*len(delays)+di)*104729 + uint64(rep)*7919,
					Trace: &trace.Config{},
				}
				if topo.graph != nil {
					env.N = 0
				}
				r, err := runner.Run(env, runner.Election{A0: core.DefaultA0(topo.n)})
				if err != nil {
					return res, err
				}
				if err := runner.RequireElected(r); err != nil {
					return res, fmt.Errorf("e15 %s/%s rep %d: %w", topo.name, d.Name(), rep, err)
				}
				a := causal.Analyze(r.Trace)
				cellViolations += len(a.CheckHopBound(bound))
				depth := a.MaxHopDepth()
				sumDepth += depth
				if depth > maxDepth {
					maxDepth = depth
				}
				if p := a.CriticalPath(); p != nil {
					pathHops += p.Hops
					if p.Total > 0 {
						msgShare += p.MessageTime / p.Total
					}
				}
			}
			violations += cellViolations
			if slack := float64(bound) / float64(maxDepth); slack < worstSlack {
				worstSlack = slack
			}
			table.AddRow(topo.name, d.Name(),
				fmt.Sprintf("%d", bound),
				fmt.Sprintf("%d", maxDepth),
				fmt.Sprintf("%.2f", float64(sumDepth)/float64(reps)),
				fmt.Sprintf("%.1f", float64(pathHops)/float64(reps)),
				fmt.Sprintf("%.0f%%", 100*msgShare/float64(reps)),
				fmt.Sprintf("%d", cellViolations),
			)
		}
	}

	findings["violations"] = float64(violations)
	findings["worst_bound_slack"] = worstSlack
	res.Table = table
	res.Findings = findings
	res.Pass = violations == 0 && worstSlack >= 1
	return res, nil
}
