package channel

import (
	"math"
	"testing"

	"abenet/internal/dist"
	"abenet/internal/rng"
	"abenet/internal/sim"
	"abenet/internal/simtime"
)

func TestRandomDelayDelivers(t *testing.T) {
	k := sim.New()
	var got []any
	l := NewRandomDelay(k, dist.NewDeterministic(2), rng.New(1), func(p any) {
		got = append(got, p)
	})
	l.Send("hello")
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("got %v", got)
	}
	if k.Now() != 2 {
		t.Fatalf("delivery time %v, want 2", k.Now())
	}
	s := l.Stats()
	if s.Sent != 1 || s.Delivered != 1 || s.Transmissions != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MeanDelay() != 2 {
		t.Fatalf("mean delay = %v", s.MeanDelay())
	}
}

func TestRandomDelayCanReorder(t *testing.T) {
	// With highly variable delays, some pair of messages must be reordered.
	k := sim.New()
	var order []int
	l := NewRandomDelay(k, dist.NewUniform(0, 10), rng.New(2), func(p any) {
		v, ok := p.(int)
		if !ok {
			t.Fatal("payload type lost")
		}
		order = append(order, v)
	})
	for i := 0; i < 50; i++ {
		l.Send(i)
	}
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 50 {
		t.Fatalf("delivered %d", len(order))
	}
	reordered := false
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			reordered = true
			break
		}
	}
	if !reordered {
		t.Fatal("random-delay link never reordered 50 simultaneous messages")
	}
}

func TestFIFOPreservesOrder(t *testing.T) {
	k := sim.New()
	var order []int
	l := NewFIFO(k, dist.NewUniform(0, 10), rng.New(3), func(p any) {
		order = append(order, p.(int))
	})
	for i := 0; i < 50; i++ {
		l.Send(i)
	}
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO reordered: %v", order)
		}
	}
}

func TestFIFODelayNeverShrinksDeliveryTime(t *testing.T) {
	k := sim.New()
	var times []simtime.Time
	l := NewFIFO(k, dist.NewUniform(0, 5), rng.New(4), func(any) {
		times = append(times, k.Now())
	})
	// Send at staggered times so head-of-line blocking actually engages.
	for i := 0; i < 20; i++ {
		i := i
		k.At(simtime.Time(i), func() { l.Send(i) })
	}
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(times); i++ {
		if times[i].Before(times[i-1]) {
			t.Fatalf("FIFO delivery times decreased: %v", times)
		}
	}
}

func TestARQMeanDelayIsSlotOverP(t *testing.T) {
	// Experiment E1's core at link level: empirical mean delay ~ slot/p and
	// empirical transmissions per message ~ 1/p.
	for _, p := range []float64{0.2, 0.5, 0.9} {
		k := sim.New()
		delivered := 0
		l := NewARQ(k, p, 1, rng.New(5), func(any) { delivered++ })
		const messages = 20000
		for i := 0; i < messages; i++ {
			l.Send(i)
		}
		if err := k.Run(simtime.Forever, 0); err != nil {
			t.Fatal(err)
		}
		if delivered != messages {
			t.Fatalf("p=%v: delivered %d of %d", p, delivered, messages)
		}
		s := l.Stats()
		wantDelay := 1 / p
		if rel := math.Abs(s.MeanDelay()-wantDelay) / wantDelay; rel > 0.05 {
			t.Fatalf("p=%v: mean delay %v, want ~%v", p, s.MeanDelay(), wantDelay)
		}
		perMsg := float64(s.Transmissions) / float64(s.Sent)
		if rel := math.Abs(perMsg-1/p) / (1 / p); rel > 0.05 {
			t.Fatalf("p=%v: %v transmissions/message, want ~%v", p, perMsg, 1/p)
		}
		if got := l.MeanDelay(); math.Abs(got-wantDelay) > 1e-12 {
			t.Fatalf("declared mean %v, want %v", got, wantDelay)
		}
	}
}

func TestARQAllMessagesEventuallyDelivered(t *testing.T) {
	// Even at p = 0.05 every message arrives (eventual delivery, the
	// asynchronous-network guarantee the ABE model keeps).
	k := sim.New()
	delivered := 0
	l := NewARQ(k, 0.05, 1, rng.New(6), func(any) { delivered++ })
	for i := 0; i < 1000; i++ {
		l.Send(i)
	}
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if delivered != 1000 {
		t.Fatalf("delivered %d of 1000", delivered)
	}
}

func TestLinkDelaysIndependentAcrossLinks(t *testing.T) {
	// Two links built from different streams must not produce identical
	// delay sequences (Definition 1's independence, at link granularity).
	k := sim.New()
	root := rng.New(7)
	mk := func(i int) *RandomDelay {
		return NewRandomDelay(k, dist.NewExponential(1), root.DeriveIndexed("edge", i), func(any) {})
	}
	a, b := mk(0), mk(1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Send(i) == b.Send(i) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("links share %d/100 delays; streams not independent", same)
	}
}

func TestFactories(t *testing.T) {
	k := sim.New()
	root := rng.New(8)
	delivered := 0
	deliver := func(any) { delivered++ }

	links := []Link{
		RandomDelayFactory(dist.NewExponential(1))(k, root.Derive("a"), deliver),
		FIFOFactory(dist.NewExponential(1))(k, root.Derive("b"), deliver),
		ARQFactory(0.5, 1)(k, root.Derive("c"), deliver),
	}
	for _, l := range links {
		l.Send("x")
	}
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if delivered != len(links) {
		t.Fatalf("delivered %d of %d", delivered, len(links))
	}
}

func TestHeterogeneousFactoryPicksPerEdge(t *testing.T) {
	k := sim.New()
	root := rng.New(9)
	means := []float64{1, 2, 3}
	f := HeterogeneousFactory(func(i int) dist.Dist {
		return dist.NewDeterministic(means[i%len(means)])
	})
	for i, want := range means {
		l := f(k, root.DeriveIndexed("e", i), func(any) {})
		if got := l.MeanDelay(); got != want {
			t.Fatalf("edge %d mean = %v, want %v", i, got, want)
		}
	}
}

func TestNilArgumentPanics(t *testing.T) {
	k := sim.New()
	r := rng.New(1)
	d := dist.NewDeterministic(1)
	deliver := func(any) {}
	mustPanic(t, func() { NewRandomDelay(nil, d, r, deliver) })
	mustPanic(t, func() { NewRandomDelay(k, nil, r, deliver) })
	mustPanic(t, func() { NewRandomDelay(k, d, nil, deliver) })
	mustPanic(t, func() { NewRandomDelay(k, d, r, nil) })
	mustPanic(t, func() { NewARQ(nil, 0.5, 1, r, deliver) })
	mustPanic(t, func() { NewARQ(k, 0, 1, r, deliver) })
	mustPanic(t, func() { RandomDelayFactory(nil) })
	mustPanic(t, func() { FIFOFactory(nil) })
	mustPanic(t, func() { ARQFactory(2, 1) })
	mustPanic(t, func() { HeterogeneousFactory(nil) })
}

func TestStatsMeanDelayEmptySafe(t *testing.T) {
	var s Stats
	if s.MeanDelay() != 0 {
		t.Fatal("empty stats mean delay must be 0")
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

// TestSendAllocations pins the hot delivery path's allocation budget: one
// Send on a plain random-delay link must allocate only its delivery
// closure — no kernel event, no ticket. The pin is an upper bound of 2
// (closure + its capture block, which Go may or may not merge), so a
// regression back to per-event kernel allocations (formerly +2) fails.
func TestSendAllocations(t *testing.T) {
	k := sim.New()
	r := rng.New(1)
	delivered := 0
	l := NewRandomDelay(k, dist.NewDeterministic(1), r, func(any) { delivered++ })
	var payload any = 7
	// Warm the kernel's heap slice.
	for i := 0; i < 64; i++ {
		l.Send(payload)
	}
	if err := k.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(1000, func() {
		l.Send(payload)
		if err := k.Run(simtime.Forever, 0); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 2 {
		t.Errorf("Send+deliver allocates %g objects per message, want at most the 2 for the delivery closure", avg)
	}
	if delivered == 0 {
		t.Fatal("nothing was delivered")
	}
}
