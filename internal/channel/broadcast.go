package channel

import (
	"abenet/internal/dist"
	"abenet/internal/rng"
	"abenet/internal/sim"
	"abenet/internal/simtime"
)

// LocalBroadcast is a per-node radio medium implementing Khan & Vaidya's
// local-broadcast model ("Asynchronous Byzantine Consensus under the Local
// Broadcast Model"): one Send is one physical transmission whose payload
// reaches every neighbour *identically and at the same instant*. The
// atomicity is the point — a sender physically cannot tell two neighbours
// different things, which is what lifts the f < n/3 equivocation barrier.
//
// The link samples a single delay per transmission (the medium's access +
// propagation time); the network layer fans the delivery out to each
// in-range receiver. Fanout is the number of receivers, fixed at wiring
// time, so Stats can account per-receiver receptions while Transmissions
// counts radio slots.
type LocalBroadcast struct {
	kernel  *sim.Kernel
	delay   dist.Dist
	r       *rng.Source
	deliver DeliverFunc // the network's fan-out: one call per transmission
	fanout  int
	stats   Stats
}

var _ Link = (*LocalBroadcast)(nil)

// NewLocalBroadcast returns a radio link for one sender with the given
// number of in-range receivers. All arguments must be non-nil and fanout
// non-negative.
func NewLocalBroadcast(k *sim.Kernel, delay dist.Dist, r *rng.Source, deliver DeliverFunc, fanout int) *LocalBroadcast {
	mustLinkArgs(k, delay, r, deliver)
	if fanout < 0 {
		panic("channel: negative broadcast fanout")
	}
	return &LocalBroadcast{kernel: k, delay: delay, r: r, deliver: deliver, fanout: fanout}
}

// Send implements Link: one transmission, one delay sample, one atomic
// delivery instant shared by all receivers.
func (l *LocalBroadcast) Send(payload any) simtime.Duration {
	d := simtime.Duration(l.delay.Sample(l.r))
	l.stats.Sent++
	l.stats.Transmissions++
	l.kernel.AfterFunc(d, func() {
		// Per-receiver accounting: fanout receptions, each after delay d.
		l.stats.Delivered += uint64(l.fanout)
		l.stats.TotalDelay += d.Seconds() * float64(l.fanout)
		l.deliver(payload)
	})
	return d
}

// Stats implements Link. Delivered counts receptions (transmissions ×
// fanout for a loss-free medium).
func (l *LocalBroadcast) Stats() Stats { return l.stats }

// MeanDelay implements Link.
func (l *LocalBroadcast) MeanDelay() float64 { return l.delay.Mean() }
