// Package channel implements point-to-point message links with stochastic
// delays.
//
// Condition 1 of the ABE model (Bakhshi et al., PODC 2010, Definition 1)
// assumes a known bound δ on the *expected* message delay, with delays of
// different messages stochastically independent. Links here sample each
// message's delay independently from a configured distribution whose exact
// mean is known, so a network can verify its configuration against a
// declared δ.
//
// Three link families are provided:
//
//   - Random-delay links (the default): independent per-message delays, so
//     messages may overtake each other — matching the paper's "the order of
//     messages is arbitrary between any pair of nodes".
//   - FIFO links: same delays, but delivery order is forced to match send
//     order (for protocols and ablations that need it).
//   - ARQ links: an explicit model of the paper's Section 1 case (iii) — a
//     lossy physical channel with per-transmission success probability p
//     and stop-and-wait retransmission. The delay is (number of attempts) ×
//     slot time: unbounded support, expectation slot/p.
package channel

import (
	"abenet/internal/dist"
	"abenet/internal/rng"
	"abenet/internal/sim"
	"abenet/internal/simtime"
)

// DeliverFunc receives a payload at its delivery instant.
type DeliverFunc func(payload any)

// Stats aggregates what happened on one link.
type Stats struct {
	Sent          uint64  // messages handed to the link
	Delivered     uint64  // messages delivered so far
	Transmissions uint64  // physical transmission attempts (= Sent except for ARQ links)
	TotalDelay    float64 // sum of per-message delays (send to delivery)
}

// MeanDelay returns the average delivered-message delay, or 0 if nothing
// was delivered yet.
func (s Stats) MeanDelay() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return s.TotalDelay / float64(s.Delivered)
}

// Link is a unidirectional message channel.
type Link interface {
	// Send accepts a payload for delivery and returns the sampled delay.
	Send(payload any) simtime.Duration
	// Stats returns a snapshot of the link's counters.
	Stats() Stats
	// MeanDelay returns the exact expectation of the link's delay
	// distribution (the per-link δ).
	MeanDelay() float64
}

// RandomDelay is a link whose per-message delays are independent samples of
// a delay distribution. Because samples are independent, messages can
// overtake: the link is not FIFO.
type RandomDelay struct {
	kernel  *sim.Kernel
	delay   dist.Dist
	r       *rng.Source
	deliver DeliverFunc
	stats   Stats
	pool    deliveryPool
}

var _ Link = (*RandomDelay)(nil)

// NewRandomDelay returns a non-FIFO random-delay link. All arguments must
// be non-nil.
func NewRandomDelay(k *sim.Kernel, delay dist.Dist, r *rng.Source, deliver DeliverFunc) *RandomDelay {
	mustLinkArgs(k, delay, r, deliver)
	l := &RandomDelay{kernel: k, delay: delay, r: r, deliver: deliver}
	l.pool.init(k, l.deliverOne)
	return l
}

// Send implements Link.
func (l *RandomDelay) Send(payload any) simtime.Duration {
	d := simtime.Duration(l.delay.Sample(l.r))
	l.stats.Sent++
	l.stats.Transmissions++
	l.pool.send(l.kernel.Now().Add(d), payload, d)
	return d
}

func (l *RandomDelay) deliverOne(payload any, d simtime.Duration) {
	l.stats.Delivered++
	l.stats.TotalDelay += d.Seconds()
	l.deliver(payload)
}

// Stats implements Link.
func (l *RandomDelay) Stats() Stats { return l.stats }

// MeanDelay implements Link.
func (l *RandomDelay) MeanDelay() float64 { return l.delay.Mean() }

// FIFO is a link with random per-message delays whose deliveries are
// nevertheless forced into send order: a message's delivery time is the
// maximum of its own sampled arrival and the previous delivery time.
type FIFO struct {
	kernel       *sim.Kernel
	delay        dist.Dist
	r            *rng.Source
	deliver      DeliverFunc
	stats        Stats
	lastDelivery simtime.Time
	pool         deliveryPool
}

var _ Link = (*FIFO)(nil)

// NewFIFO returns an order-preserving random-delay link.
func NewFIFO(k *sim.Kernel, delay dist.Dist, r *rng.Source, deliver DeliverFunc) *FIFO {
	mustLinkArgs(k, delay, r, deliver)
	l := &FIFO{kernel: k, delay: delay, r: r, deliver: deliver}
	l.pool.init(k, l.deliverOne)
	return l
}

// Send implements Link.
func (l *FIFO) Send(payload any) simtime.Duration {
	sent := l.kernel.Now()
	arrival := sent.Add(simtime.Duration(l.delay.Sample(l.r)))
	if arrival.Before(l.lastDelivery) {
		arrival = l.lastDelivery
	}
	l.lastDelivery = arrival
	effective := arrival.Sub(sent)
	l.stats.Sent++
	l.stats.Transmissions++
	l.pool.send(arrival, payload, effective)
	return effective
}

func (l *FIFO) deliverOne(payload any, effective simtime.Duration) {
	l.stats.Delivered++
	l.stats.TotalDelay += effective.Seconds()
	l.deliver(payload)
}

// Stats implements Link.
func (l *FIFO) Stats() Stats { return l.stats }

// MeanDelay returns the mean of the underlying distribution. Note the
// effective FIFO delay stochastically dominates it (head-of-line blocking),
// so this is a lower bound on the expected effective delay; for the ABE
// bound use a distribution whose mean already accounts for queueing, or use
// RandomDelay links as the paper's model does.
func (l *FIFO) MeanDelay() float64 { return l.delay.Mean() }

// ARQ is the paper's case (iii) link: each physical transmission attempt
// takes Slot time units and succeeds independently with probability P; the
// sender retransmits until success. Delay = attempts × slot, so the delay
// is unbounded but E[delay] = slot/p exactly (k_avg = 1/p in the paper).
type ARQ struct {
	kernel  *sim.Kernel
	model   dist.Retransmission
	r       *rng.Source
	deliver DeliverFunc
	stats   Stats
	pool    deliveryPool
}

var _ Link = (*ARQ)(nil)

// NewARQ returns a lossy stop-and-wait ARQ link with per-attempt success
// probability p and per-attempt duration slot.
func NewARQ(k *sim.Kernel, p, slot float64, r *rng.Source, deliver DeliverFunc) *ARQ {
	model := dist.NewRetransmission(p, slot) // validates p and slot
	if k == nil || r == nil || deliver == nil {
		panic("channel: ARQ link requires kernel, rng and deliver")
	}
	l := &ARQ{kernel: k, model: model, r: r, deliver: deliver}
	l.pool.init(k, l.deliverOne)
	return l
}

// Send implements Link. It simulates the individual transmission attempts
// so the physical transmission count is observable (experiment E1).
func (l *ARQ) Send(payload any) simtime.Duration {
	attempts := l.model.Attempts(l.r)
	d := simtime.Duration(float64(attempts) * l.model.SlotTime)
	l.stats.Sent++
	l.stats.Transmissions += uint64(attempts)
	l.pool.send(l.kernel.Now().Add(d), payload, d)
	return d
}

func (l *ARQ) deliverOne(payload any, d simtime.Duration) {
	l.stats.Delivered++
	l.stats.TotalDelay += d.Seconds()
	l.deliver(payload)
}

// Stats implements Link.
func (l *ARQ) Stats() Stats { return l.stats }

// MeanDelay implements Link: exactly slot/p.
func (l *ARQ) MeanDelay() float64 { return l.model.Mean() }

// Factory builds one link per directed edge; the network layer calls it
// while wiring a topology. Implementations must use only the provided
// per-edge random stream for randomness.
type Factory func(k *sim.Kernel, edgeRNG *rng.Source, deliver DeliverFunc) Link

// RandomDelayFactory returns a Factory producing non-FIFO links with the
// given delay distribution (shared shape, independent samples per link).
func RandomDelayFactory(delay dist.Dist) Factory {
	if delay == nil {
		panic("channel: nil delay distribution")
	}
	return func(k *sim.Kernel, edgeRNG *rng.Source, deliver DeliverFunc) Link {
		return NewRandomDelay(k, delay, edgeRNG, deliver)
	}
}

// FIFOFactory returns a Factory producing FIFO links.
func FIFOFactory(delay dist.Dist) Factory {
	if delay == nil {
		panic("channel: nil delay distribution")
	}
	return func(k *sim.Kernel, edgeRNG *rng.Source, deliver DeliverFunc) Link {
		return NewFIFO(k, delay, edgeRNG, deliver)
	}
}

// ARQFactory returns a Factory producing lossy ARQ links with success
// probability p and slot duration slot.
func ARQFactory(p, slot float64) Factory {
	dist.NewRetransmission(p, slot) // validate eagerly
	return func(k *sim.Kernel, edgeRNG *rng.Source, deliver DeliverFunc) Link {
		return NewARQ(k, p, slot, edgeRNG, deliver)
	}
}

// HeterogeneousFactory builds each link with pick(from, to), allowing
// per-edge delay models (non-homogeneous links, as the paper's motivation
// for using a *bound* on expected delay discusses). The network-wide δ is
// then the maximum per-link mean.
func HeterogeneousFactory(pick func(edgeIndex int) dist.Dist) Factory {
	if pick == nil {
		panic("channel: nil pick function")
	}
	next := 0
	return func(k *sim.Kernel, edgeRNG *rng.Source, deliver DeliverFunc) Link {
		d := pick(next)
		next++
		return NewRandomDelay(k, d, edgeRNG, deliver)
	}
}

func mustLinkArgs(k *sim.Kernel, delay dist.Dist, r *rng.Source, deliver DeliverFunc) {
	if k == nil {
		panic("channel: nil kernel")
	}
	if delay == nil {
		panic("channel: nil delay distribution")
	}
	if r == nil {
		panic("channel: nil random source")
	}
	if deliver == nil {
		panic("channel: nil deliver callback")
	}
}
