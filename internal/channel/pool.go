package channel

import (
	"abenet/internal/sim"
	"abenet/internal/simtime"
)

// deliveryPool is the struct-of-arrays in-flight message store shared by
// the link implementations. It replaces the old per-message pattern — one
// heap-allocated closure plus one kernel event per Send — with pooled value
// slices (a slot holds the payload and its sampled delay) and, where the
// kernel's execution order provably cannot tell the difference, one kernel
// event for a whole batch of same-instant deliveries.
//
// # Batching without changing the execution order
//
// A Send may join the currently open batch only if (a) its delivery instant
// equals the batch's and (b) nothing at all has been scheduled on the
// kernel since the batch's event (checked via Kernel.ScheduleSeq). Under
// (a)+(b) the merged deliveries would have held consecutive (at, seq)
// positions, so executing them back-to-back inside one event is exactly
// the order the unbatched kernel would have produced — runs stay
// byte-identical, only Kernel.Executed() and the per-event observer
// cadence see fewer events. The batch also closes the moment it starts
// firing: a delivery handler that sends again at the same instant gets a
// fresh kernel event, which is precisely where the unbatched ordering
// would have put it (after everything already in flight). And because the
// old code's one-event-per-delivery let Kernel.Stop cut off the remaining
// same-instant deliveries, the batch walk re-checks Stopped before each
// entry and abandons the rest — identical semantics, closure for closure.
type deliveryPool struct {
	kernel  *sim.Kernel
	deliver func(payload any, d simtime.Duration) // owning link's per-message sink

	// Struct-of-arrays slot store. next chains a batch's entries in send
	// order; -1 terminates. free lists vacated slots for reuse, so
	// steady-state sends allocate nothing.
	payloads []any
	delays   []simtime.Duration
	next     []int32
	free     []int32

	fire sim.ArgHandler // bound once to fireBatch; reused by every event

	open    bool // an open batch exists that a Send may still join
	openAt  simtime.Time
	openSeq uint64 // kernel ScheduleSeq right after the batch event: unchanged ⇔ joinable
	tail    int32  // last entry of the open batch
}

// init wires the pool to its kernel and per-message sink. Called once from
// each link constructor; deliver is typically a method value on the link.
func (p *deliveryPool) init(k *sim.Kernel, deliver func(any, simtime.Duration)) {
	p.kernel = k
	p.deliver = deliver
	p.fire = p.fireBatch
}

// send files one payload for delivery at instant at, joining the open
// batch when that is provably order-preserving and scheduling a fresh
// kernel event otherwise.
func (p *deliveryPool) send(at simtime.Time, payload any, d simtime.Duration) {
	var slot int32
	if n := len(p.free); n > 0 {
		slot = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		slot = int32(len(p.payloads))
		p.payloads = append(p.payloads, nil)
		p.delays = append(p.delays, 0)
		p.next = append(p.next, -1)
	}
	p.payloads[slot] = payload
	p.delays[slot] = d
	p.next[slot] = -1
	if p.open && at == p.openAt && p.kernel.ScheduleSeq() == p.openSeq {
		p.next[p.tail] = slot
		p.tail = slot
		return
	}
	p.kernel.AtArg(at, p.fire, uint32(slot))
	p.open = true
	p.openAt = at
	p.openSeq = p.kernel.ScheduleSeq()
	p.tail = slot
}

// fireBatch delivers a batch chain head-to-tail. Slots are released before
// each delivery callback so reentrant sends can reuse them; the chain link
// is read out first, so reuse cannot corrupt the walk.
func (p *deliveryPool) fireBatch(head uint32) {
	p.open = false // reentrant same-instant sends must open a fresh event
	i := int32(head)
	for i >= 0 {
		if p.kernel.Stopped() {
			// Mirror the unbatched kernel: a Stop between two same-instant
			// deliveries abandons the rest. Release their slots undelivered.
			for i >= 0 {
				nx := p.next[i]
				p.payloads[i] = nil
				p.free = append(p.free, i)
				i = nx
			}
			return
		}
		payload := p.payloads[i]
		d := p.delays[i]
		nx := p.next[i]
		p.payloads[i] = nil
		p.free = append(p.free, i)
		p.deliver(payload, d)
		i = nx
	}
}

// inFlight returns the number of occupied slots (diagnostics and tests).
func (p *deliveryPool) inFlight() int { return len(p.payloads) - len(p.free) }
