package channel

import (
	"testing"

	"abenet/internal/dist"
	"abenet/internal/rng"
	"abenet/internal/sim"
)

// drain runs the kernel until the schedule empties.
func drain(t *testing.T, k *sim.Kernel) {
	t.Helper()
	if err := k.Run(1<<62, 0); err != nil {
		t.Fatal(err)
	}
}

func TestImpairedDropRate(t *testing.T) {
	k := sim.New()
	delivered := 0
	inner := NewRandomDelay(k, dist.NewDeterministic(1), rng.New(1), func(any) { delivered++ })
	l := NewImpaired(k, inner, Impairment{Drop: 0.25}, rng.New(2))
	const n = 20000
	for i := 0; i < n; i++ {
		l.Send(i)
	}
	drain(t, k)
	st := l.ImpairmentStats()
	if st.Dropped == 0 || st.Duplicated != 0 || st.Delayed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	rate := float64(st.Dropped) / n
	if rate < 0.23 || rate > 0.27 {
		t.Fatalf("drop rate %.4f far from 0.25", rate)
	}
	if got := uint64(delivered) + st.Dropped; got != n {
		t.Fatalf("delivered %d + dropped %d != sent %d", delivered, st.Dropped, n)
	}
	// The physical link never saw the dropped messages.
	if l.Stats().Sent != uint64(delivered) {
		t.Fatalf("inner Sent = %d, want %d", l.Stats().Sent, delivered)
	}
}

func TestImpairedDuplicateAndDelay(t *testing.T) {
	k := sim.New()
	delivered := 0
	inner := NewRandomDelay(k, dist.NewExponential(1), rng.New(3), func(any) { delivered++ })
	l := NewImpaired(k, inner, Impairment{Duplicate: 0.5, Delay: 0.5, ExtraDelay: dist.NewDeterministic(10)}, rng.New(4))
	const n = 10000
	for i := 0; i < n; i++ {
		l.Send(i)
	}
	drain(t, k)
	st := l.ImpairmentStats()
	if st.Duplicated == 0 || st.Delayed == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if got, want := uint64(delivered), n+st.Duplicated; got != want {
		t.Fatalf("delivered %d, want %d (n + duplicates)", got, want)
	}
	dupRate := float64(st.Duplicated) / n
	if dupRate < 0.46 || dupRate > 0.54 {
		t.Fatalf("duplicate rate %.4f far from 0.5", dupRate)
	}
}

// TestImpairedComposesWithARQ pins the tentpole composition: loss
// injection wraps a lossy ARQ link, and the ARQ's own retransmission
// accounting keeps working underneath.
func TestImpairedComposesWithARQ(t *testing.T) {
	k := sim.New()
	delivered := 0
	factory := ImpairedFactory(ARQFactory(0.5, 1), Impairment{Drop: 0.2})
	l := factory(k, rng.New(7), func(any) { delivered++ })
	imp, ok := l.(*Impaired)
	if !ok {
		t.Fatalf("factory built %T, want *Impaired", l)
	}
	if _, ok := imp.Inner().(*ARQ); !ok {
		t.Fatalf("inner is %T, want *ARQ", imp.Inner())
	}
	const n = 5000
	for i := 0; i < n; i++ {
		l.Send(i)
	}
	drain(t, k)
	st := l.Stats()
	if st.Transmissions <= st.Sent {
		t.Fatalf("ARQ under impairment lost its retries: %+v", st)
	}
	if uint64(delivered)+imp.ImpairmentStats().Dropped != n {
		t.Fatalf("delivered %d + dropped %d != %d", delivered, imp.ImpairmentStats().Dropped, n)
	}
	if l.MeanDelay() != 2 { // slot/p = 1/0.5
		t.Fatalf("MeanDelay = %g, want the inner ARQ mean 2", l.MeanDelay())
	}
}

// TestZeroImpairmentIsTransparent pins the determinism contract the
// Faults == nil equivalence relies on: wrapping with a zero impairment
// consumes no randomness and changes no delivery.
func TestZeroImpairmentIsTransparent(t *testing.T) {
	run := func(wrap bool) []float64 {
		k := sim.New()
		var times []float64
		factory := RandomDelayFactory(dist.NewExponential(1))
		if wrap {
			factory = ImpairedFactory(factory, Impairment{})
		}
		l := factory(k, rng.New(11), func(any) { times = append(times, float64(k.Now())) })
		for i := 0; i < 200; i++ {
			l.Send(i)
		}
		drain(t, k)
		return times
	}
	plain, wrapped := run(false), run(true)
	if len(plain) != len(wrapped) {
		t.Fatalf("delivery counts diverged: %d vs %d", len(plain), len(wrapped))
	}
	for i := range plain {
		if plain[i] != wrapped[i] {
			t.Fatalf("delivery %d at %g plain vs %g wrapped", i, plain[i], wrapped[i])
		}
	}
}

func TestImpairedRejectsBadArguments(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range probability must panic")
		}
	}()
	ImpairedFactory(RandomDelayFactory(dist.NewExponential(1)), Impairment{Drop: 1.5})
}
