package channel

import (
	"testing"

	"abenet/internal/dist"
	"abenet/internal/rng"
	"abenet/internal/sim"
	"abenet/internal/simtime"
)

// TestLocalBroadcastAtomicDelivery pins the model's defining property: one
// Send is one transmission with a single delivery instant, and the network
// fan-out sees exactly one callback per transmission.
func TestLocalBroadcastAtomicDelivery(t *testing.T) {
	k := sim.New()
	var got []any
	var at []simtime.Time
	lb := NewLocalBroadcast(k, dist.NewDeterministic(2), rng.New(1), func(p any) {
		got = append(got, p)
		at = append(at, k.Now())
	}, 3)

	d := lb.Send("hello")
	if d != simtime.Duration(2) {
		t.Fatalf("Send returned delay %v, want 2", d)
	}
	lb.Send("world")
	if err := k.Run(simtime.Time(10), 0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "hello" || got[1] != "world" {
		t.Fatalf("fan-out callbacks = %v, want [hello world]", got)
	}
	if at[0] != simtime.Time(2) || at[1] != simtime.Time(2) {
		t.Fatalf("delivery instants = %v, want both at t=2", at)
	}

	st := lb.Stats()
	if st.Sent != 2 || st.Transmissions != 2 {
		t.Fatalf("Sent/Transmissions = %d/%d, want 2/2", st.Sent, st.Transmissions)
	}
	if st.Delivered != 6 {
		t.Fatalf("Delivered = %d, want 6 (2 transmissions x fanout 3)", st.Delivered)
	}
	if st.MeanDelay() != 2 {
		t.Fatalf("MeanDelay = %g, want 2", st.MeanDelay())
	}
	if lb.MeanDelay() != 2 {
		t.Fatalf("link MeanDelay = %g, want 2", lb.MeanDelay())
	}
}

func TestLocalBroadcastRejectsBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative fanout did not panic")
		}
	}()
	NewLocalBroadcast(sim.New(), dist.NewDeterministic(1), rng.New(1), func(any) {}, -1)
}
