package channel

import (
	"fmt"
	"math"

	"abenet/internal/dist"
	"abenet/internal/rng"
	"abenet/internal/sim"
	"abenet/internal/simtime"
)

// Impairment is the stochastic per-message fault model an Impaired link
// injects in front of any inner link — including ARQ links, where a drop
// models loss the retransmission scheme cannot see (e.g. the sender dying
// mid-transfer). Probabilities are independent per message.
type Impairment struct {
	// Drop destroys the message before it reaches the inner link.
	Drop float64
	// Duplicate hands the message to the inner link twice; the copy
	// samples its own delay, so duplicates can also overtake.
	Duplicate float64
	// Delay holds the message back for an ExtraDelay sample before the
	// inner link sees it — forcing reorderings even on FIFO links.
	Delay float64
	// ExtraDelay is the hold-back distribution; nil means Exponential(1).
	ExtraDelay dist.Dist
}

// validate panics on out-of-range probabilities: impairments are built
// from validated fault plans, so a bad value here is a programming error.
func (imp Impairment) validate() {
	for _, p := range []struct {
		name string
		v    float64
	}{{"Drop", imp.Drop}, {"Duplicate", imp.Duplicate}, {"Delay", imp.Delay}} {
		if math.IsNaN(p.v) || p.v < 0 || p.v > 1 {
			panic(fmt.Sprintf("channel: impairment %s probability %g outside [0, 1]", p.name, p.v))
		}
	}
}

// ImpairmentStats counts what one impaired link injected.
type ImpairmentStats struct {
	Dropped    uint64 // messages destroyed
	Duplicated uint64 // extra copies created
	Delayed    uint64 // hold-backs injected
}

// ImpairmentReporter is implemented by links that can report injected
// faults; the network layer aggregates these into the run's telemetry.
type ImpairmentReporter interface {
	ImpairmentStats() ImpairmentStats
}

// Impaired wraps an inner Link with an Impairment. The wrapper draws its
// randomness from a stream derived off the edge stream, so the inner
// link's delay sequence for the messages that do get through is unchanged
// by the wrapping — and a zero Impairment consumes no randomness at all.
type Impaired struct {
	kernel *sim.Kernel
	inner  Link
	imp    Impairment
	extra  dist.Dist
	r      *rng.Source
	stats  ImpairmentStats
}

var (
	_ Link               = (*Impaired)(nil)
	_ ImpairmentReporter = (*Impaired)(nil)
)

// NewImpaired wraps inner with the given impairment. All arguments must be
// non-nil.
func NewImpaired(k *sim.Kernel, inner Link, imp Impairment, r *rng.Source) *Impaired {
	if k == nil || inner == nil || r == nil {
		panic("channel: impaired link requires kernel, inner link and rng")
	}
	imp.validate()
	extra := imp.ExtraDelay
	if extra == nil {
		extra = dist.NewExponential(1)
	}
	return &Impaired{kernel: k, inner: inner, imp: imp, extra: extra, r: r}
}

// Send implements Link. A dropped message reports a zero delay; a held
// message reports only the hold-back — its inner delay is sampled later,
// at the hand-off instant, so it cannot be known here.
func (l *Impaired) Send(payload any) simtime.Duration {
	// rng.Bool does not consume randomness for p = 0, so disabled fault
	// axes leave the stream untouched (replay stability across plans).
	if l.r.Bool(l.imp.Drop) {
		l.stats.Dropped++
		return 0
	}
	copies := 1
	if l.r.Bool(l.imp.Duplicate) {
		l.stats.Duplicated++
		copies = 2
	}
	if l.r.Bool(l.imp.Delay) {
		l.stats.Delayed++
		hold := simtime.Duration(l.extra.Sample(l.r))
		l.kernel.AfterFunc(hold, func() {
			for i := 0; i < copies; i++ {
				l.inner.Send(payload)
			}
		})
		return hold
	}
	d := l.inner.Send(payload)
	for i := 1; i < copies; i++ {
		l.inner.Send(payload)
	}
	return d
}

// Stats implements Link by delegating to the inner link: Sent/Delivered/
// Transmissions count what the physical link actually carried (dropped
// messages never reach it). Injected-fault counts are in ImpairmentStats.
func (l *Impaired) Stats() Stats { return l.inner.Stats() }

// MeanDelay implements Link: the inner link's mean, i.e. the expected
// delay of the messages that are neither dropped nor held back. With
// Drop > 0 the ABE condition 1 only holds conditionally on delivery — the
// point of the fault model is to leave Definition 1's comfort zone.
func (l *Impaired) MeanDelay() float64 { return l.inner.MeanDelay() }

// ImpairmentStats implements ImpairmentReporter.
func (l *Impaired) ImpairmentStats() ImpairmentStats { return l.stats }

// Inner exposes the wrapped link (tests and telemetry).
func (l *Impaired) Inner() Link { return l.inner }

// ImpairedFactory wraps any link factory with per-message impairments.
// Each produced link derives the interceptor's random stream from the edge
// stream via Derive (which does not advance the parent), so the inner
// factory sees exactly the stream it would see unwrapped.
func ImpairedFactory(inner Factory, imp Impairment) Factory {
	if inner == nil {
		panic("channel: ImpairedFactory needs an inner factory")
	}
	imp.validate()
	return func(k *sim.Kernel, edgeRNG *rng.Source, deliver DeliverFunc) Link {
		faultRNG := edgeRNG.Derive("impair")
		return NewImpaired(k, inner(k, edgeRNG, deliver), imp, faultRNG)
	}
}
