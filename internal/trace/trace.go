// Package trace records network events for debugging, examples and the
// CLI's --trace mode.
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"abenet/internal/simtime"
)

// EventKind classifies a recorded event.
type EventKind int

// The recordable event kinds.
const (
	KindSend EventKind = iota + 1
	KindDeliver
	KindTimer
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindDeliver:
		return "deliver"
	case KindTimer:
		return "timer"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one recorded network event.
type Event struct {
	At      simtime.Time
	Kind    EventKind
	From    int // sender (send/deliver) or the node (timer)
	To      int // receiver (send/deliver) or the timer kind (timer)
	Payload any
}

// String renders an event as one trace line.
func (e Event) String() string {
	switch e.Kind {
	case KindTimer:
		return fmt.Sprintf("%10.4f  timer    node %-3d kind %d", float64(e.At), e.From, e.To)
	default:
		return fmt.Sprintf("%10.4f  %-8s %3d -> %-3d %v", float64(e.At), e.Kind, e.From, e.To, e.Payload)
	}
}

// Recorder implements network.Tracer, collecting events up to a cap.
// It is safe for concurrent use so live (goroutine) engines can share it.
type Recorder struct {
	mu      sync.Mutex
	events  []Event
	cap     int
	dropped uint64
}

// NewRecorder returns a recorder keeping at most capacity events
// (0 means 100000).
func NewRecorder(capacity int) *Recorder {
	if capacity == 0 {
		capacity = 100_000
	}
	return &Recorder{cap: capacity}
}

// MessageSent implements network.Tracer.
func (r *Recorder) MessageSent(at simtime.Time, from, to int, payload any) {
	r.add(Event{At: at, Kind: KindSend, From: from, To: to, Payload: payload})
}

// MessageDelivered implements network.Tracer.
func (r *Recorder) MessageDelivered(at simtime.Time, from, to int, payload any) {
	r.add(Event{At: at, Kind: KindDeliver, From: from, To: to, Payload: payload})
}

// TimerFired implements network.Tracer.
func (r *Recorder) TimerFired(at simtime.Time, node, kind int) {
	r.add(Event{At: at, Kind: KindTimer, From: node, To: kind})
}

func (r *Recorder) add(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.events) >= r.cap {
		r.dropped++
		return
	}
	r.events = append(r.events, e)
}

// Events returns a copy of the recorded events in order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Dropped returns how many events exceeded the cap.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// WriteTo dumps the trace as text. It implements io.WriterTo.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, e := range r.Events() {
		n, err := fmt.Fprintln(w, e.String())
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	if d := r.Dropped(); d > 0 {
		n, err := fmt.Fprintf(w, "... %d events dropped (cap reached)\n", d)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Filter returns the events of one kind.
func (r *Recorder) Filter(kind EventKind) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Summary returns a one-line description of the trace.
func (r *Recorder) Summary() string {
	var sends, delivers, timers int
	for _, e := range r.Events() {
		switch e.Kind {
		case KindSend:
			sends++
		case KindDeliver:
			delivers++
		case KindTimer:
			timers++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d events (%d sends, %d deliveries, %d timers)", r.Len(), sends, delivers, timers)
	if d := r.Dropped(); d > 0 {
		fmt.Fprintf(&b, ", %d dropped", d)
	}
	return b.String()
}
