// Package trace records a causal event trace of a simulation run.
//
// A Recorder implements network.Tracer: every send, delivery, timer firing
// and terminal decision becomes an Event carrying a stable ID, a Lamport
// clock, and a parent edge — the exact happens-before cause handed in by
// the network's current-cause threading (a delivery's parent is the send
// that produced it; a send's or timer's parent is the delivery or timer
// the node was processing when it emitted it). Since every event has at
// most one parent, the trace forms a forest of causal trees rooted at the
// Init-time sends, and the chain that produced the decision event is the
// run's critical path (see the causal subpackage).
//
// Recording is bounded: events past the cap are counted in Dropped, not
// stored, and keep consuming IDs so an event's ID never depends on the
// cap. The decision event is cap-exempt — a truncated trace still ends
// with the event the analysis walks back from, mirroring the probe
// package's cap-exempt closing sample.
//
// The Recorder only appends to its own storage — it never schedules,
// cancels, or mutates simulation state — so a traced run is byte-identical
// to an untraced one at the same (Env, seed). The golden pins in the
// runner tests enforce that.
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"abenet/internal/network"
	"abenet/internal/simtime"
)

// EventID is the stable identity of a recorded event (see network.EventID).
type EventID = network.EventID

// DefaultMaxEvents bounds a Recorder when the configured cap is zero.
const DefaultMaxEvents = 100_000

// Config asks a run to record a causal trace (runner.Env.Trace).
type Config struct {
	// MaxEvents caps the stored events; 0 means DefaultMaxEvents. Events
	// past the cap are counted in the export's Dropped, not stored; the
	// terminal decision event is exempt from the cap.
	MaxEvents int `json:"max_events,omitempty"`
}

// Validate checks the trace configuration.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	if c.MaxEvents < 0 {
		return fmt.Errorf("trace: max_events %d must be non-negative", c.MaxEvents)
	}
	return nil
}

// EventKind classifies a recorded event.
type EventKind int

// The recordable event kinds.
const (
	KindSend EventKind = iota + 1
	KindDeliver
	KindTimer
	// KindDecision is the protocol's terminal event: a node stopped the
	// network (e.g. "leader elected"). At most one per run; cap-exempt.
	KindDecision
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindDeliver:
		return "deliver"
	case KindTimer:
		return "timer"
	case KindDecision:
		return "decision"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind is the inverse of EventKind.String; it returns 0 for an
// unknown name.
func ParseKind(s string) EventKind {
	switch s {
	case "send":
		return KindSend
	case "deliver":
		return KindDeliver
	case "timer":
		return KindTimer
	case "decision":
		return KindDecision
	default:
		return 0
	}
}

// Event is one recorded network event with its causal identity.
type Event struct {
	// ID is the stable per-run identity: 1, 2, 3, … in recording order,
	// counting events dropped past the cap, so an event keeps the same ID
	// at any cap setting.
	ID EventID
	// Parent is the ID of this event's happens-before cause: for a
	// delivery, the send that produced it; for a send or timer, the
	// delivery or timer being processed when it was emitted; for the
	// decision, the event being processed when the protocol stopped the
	// network. 0 marks a causal root (emitted from Node.Init).
	Parent EventID
	// Lamport is the event's Lamport clock: one counter per node,
	// incremented at every local event and merged to max(local, sender)+1
	// on delivery.
	Lamport uint64
	// At is the virtual time of the event.
	At simtime.Time
	// Kind classifies the event.
	Kind EventKind
	// From is the sending node for sends and deliveries, and the owning
	// node for timers and decisions.
	From int
	// To is the receiving node for sends (-1 for a radio broadcast) and
	// deliveries, and the timer kind for timers; 0 for decisions.
	To int
	// Payload is the message payload (sends, deliveries) or the stop
	// cause string (decisions); nil for timers.
	Payload any
}

// Node returns the node at which the event occurred: the receiver for
// deliveries, the emitting/owning node otherwise.
func (e Event) Node() int {
	if e.Kind == KindDeliver {
		return e.To
	}
	return e.From
}

// String implements fmt.Stringer.
func (e Event) String() string {
	switch e.Kind {
	case KindTimer:
		return fmt.Sprintf("#%-6d %10.4f  timer    node %-3d kind %-3d L%-5d <#%d",
			e.ID, float64(e.At), e.From, e.To, e.Lamport, e.Parent)
	case KindDecision:
		return fmt.Sprintf("#%-6d %10.4f  decision node %-3d %v L%-5d <#%d",
			e.ID, float64(e.At), e.From, e.Payload, e.Lamport, e.Parent)
	default:
		return fmt.Sprintf("#%-6d %10.4f  %-8s %3d -> %-3d %v L%-5d <#%d",
			e.ID, float64(e.At), e.Kind, e.From, e.To, e.Payload, e.Lamport, e.Parent)
	}
}

// HopCarrier is implemented by message payloads that carry the protocol's
// relay-hop counter (the election algorithm's d+1 bound counter). Exports
// preserve the value so the causal analysis can check the per-chain
// invariant — a chain of k relays must carry a counter ≥ k — after the
// live payloads are gone.
type HopCarrier interface {
	HopCount() int
}

// Recorder collects events in order. It implements network.Tracer and is
// safe for concurrent use (the service layer snapshots recorders from
// HTTP handlers while a run may still be streaming events in).
type Recorder struct {
	mu       sync.Mutex
	events   []Event
	max      int
	dropped  uint64
	nextID   EventID
	lamport  []uint64 // per-node Lamport counters, grown on demand
	decision EventID
}

// NewRecorder returns a Recorder storing at most maxEvents events
// (0 means DefaultMaxEvents). Further events are counted, not stored; the
// decision event is exempt from the cap.
func NewRecorder(maxEvents int) *Recorder {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	// Seed the backing array with a real capacity: recording is the hot
	// path of a traced run, and growing from nil would copy the whole
	// trace log²(n) times.
	cap := maxEvents
	if cap > 4096 {
		cap = 4096
	}
	return &Recorder{max: maxEvents, events: make([]Event, 0, cap)}
}

// tick advances node's Lamport clock for a purely local event. Callers
// hold r.mu.
func (r *Recorder) tick(node int) uint64 {
	for len(r.lamport) <= node {
		r.lamport = append(r.lamport, 0)
	}
	r.lamport[node]++
	return r.lamport[node]
}

// merge advances node's Lamport clock past an incoming clock value
// (delivery rule: max(local, sender)+1). Callers hold r.mu.
func (r *Recorder) merge(node int, incoming uint64) uint64 {
	for len(r.lamport) <= node {
		r.lamport = append(r.lamport, 0)
	}
	l := r.lamport[node]
	if incoming > l {
		l = incoming
	}
	l++
	r.lamport[node] = l
	return l
}

// add assigns the next ID and stores the event (or, past the cap, counts
// it — unless it is the cap-exempt decision event). Callers hold r.mu.
func (r *Recorder) add(e Event, exempt bool) network.TraceRef {
	r.nextID++
	e.ID = r.nextID
	if len(r.events) >= r.max && !exempt {
		r.dropped++
	} else {
		r.events = append(r.events, e)
	}
	return network.TraceRef{ID: e.ID, Lamport: e.Lamport}
}

// MessageSent implements network.Tracer.
func (r *Recorder) MessageSent(at simtime.Time, from, to int, payload any, cause network.TraceRef) network.TraceRef {
	r.mu.Lock()
	defer r.mu.Unlock()
	l := r.tick(from)
	return r.add(Event{Parent: cause.ID, Lamport: l, At: at, Kind: KindSend, From: from, To: to, Payload: payload}, false)
}

// MessageDelivered implements network.Tracer.
func (r *Recorder) MessageDelivered(at simtime.Time, from, to int, payload any, send network.TraceRef) network.TraceRef {
	r.mu.Lock()
	defer r.mu.Unlock()
	l := r.merge(to, send.Lamport)
	return r.add(Event{Parent: send.ID, Lamport: l, At: at, Kind: KindDeliver, From: from, To: to, Payload: payload}, false)
}

// TimerFired implements network.Tracer.
func (r *Recorder) TimerFired(at simtime.Time, node, kind int, cause network.TraceRef) network.TraceRef {
	r.mu.Lock()
	defer r.mu.Unlock()
	l := r.tick(node)
	return r.add(Event{Parent: cause.ID, Lamport: l, At: at, Kind: KindTimer, From: node, To: kind}, false)
}

// Decision implements network.Tracer. The decision event is cap-exempt: a
// truncated trace still records the terminus its analysis walks back from.
func (r *Recorder) Decision(at simtime.Time, node int, reason string, cause network.TraceRef) network.TraceRef {
	r.mu.Lock()
	defer r.mu.Unlock()
	l := r.tick(node)
	ref := r.add(Event{Parent: cause.ID, Lamport: l, At: at, Kind: KindDecision, From: node, Payload: reason}, true)
	r.decision = ref.ID
	return ref
}

// Events returns a defensive copy of the recorded events, in order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of stored events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Dropped returns how many events were dropped after the cap was reached.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// DecisionID returns the ID of the recorded decision event, or 0 if the
// run never stopped the network (it ran to quiescence or a horizon).
func (r *Recorder) DecisionID() EventID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.decision
}

// Filter returns the stored events of one kind, in order. One lock, one
// pass — no intermediate copy of the full trace.
func (r *Recorder) Filter(kind EventKind) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// WriteTo writes the trace as text, one event per line. It implements
// io.WriterTo.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	events := make([]Event, len(r.events))
	copy(events, r.events)
	dropped := r.dropped
	r.mu.Unlock()

	var total int64
	for _, e := range events {
		n, err := fmt.Fprintln(w, e.String())
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	if dropped > 0 {
		n, err := fmt.Fprintf(w, "... %d events dropped (cap reached)\n", dropped)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Summary returns a one-line description of the recorded trace. It takes
// the lock once and makes one pass over the events.
func (r *Recorder) Summary() string {
	r.mu.Lock()
	var sends, delivers, timers, decisions int
	for _, e := range r.events {
		switch e.Kind {
		case KindSend:
			sends++
		case KindDeliver:
			delivers++
		case KindTimer:
			timers++
		case KindDecision:
			decisions++
		}
	}
	n := len(r.events)
	dropped := r.dropped
	r.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "%d events (%d sends, %d deliveries, %d timers", n, sends, delivers, timers)
	if decisions > 0 {
		fmt.Fprintf(&b, ", %d decision", decisions)
	}
	b.WriteString(")")
	if dropped > 0 {
		fmt.Fprintf(&b, ", %d dropped", dropped)
	}
	return b.String()
}
