package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Export is the serialisable form of a recorded trace: what a Report
// carries, the service stores, and the exporters below render. Payloads
// are stringified (deterministically, via %+v) so an Export survives a
// JSON round trip; the hop counter of a HopCarrier payload is preserved
// numerically so the causal analysis keeps working on decoded traces.
type Export struct {
	// Events are the stored events in recording order.
	Events []ExportEvent `json:"events"`
	// Dropped counts events past the cap: recorded (they consumed IDs and
	// advanced Lamport clocks) but not stored.
	Dropped uint64 `json:"dropped,omitempty"`
	// Decision is the ID of the terminal decision event, 0 if the run
	// never stopped the network.
	Decision EventID `json:"decision,omitempty"`
}

// ExportEvent is one event of an Export. See Event for field semantics.
type ExportEvent struct {
	ID      EventID `json:"id"`
	Parent  EventID `json:"parent,omitempty"`
	Lamport uint64  `json:"lamport"`
	At      float64 `json:"at"`
	Kind    string  `json:"kind"`
	From    int     `json:"from"`
	To      int     `json:"to"`
	Payload string  `json:"payload,omitempty"`
	// Hop is the payload's relay-hop counter when it implements
	// HopCarrier; 0 otherwise.
	Hop int `json:"hop,omitempty"`
}

// Node returns the node at which the event occurred (receiver for
// deliveries, emitting/owning node otherwise).
func (e ExportEvent) Node() int {
	if ParseKind(e.Kind) == KindDeliver {
		return e.To
	}
	return e.From
}

// Export snapshots the recorded trace in its serialisable form.
func (r *Recorder) Export() *Export {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := &Export{Events: make([]ExportEvent, len(r.events)), Dropped: r.dropped, Decision: r.decision}
	for i, e := range r.events {
		ee := ExportEvent{
			ID:      e.ID,
			Parent:  e.Parent,
			Lamport: e.Lamport,
			At:      float64(e.At),
			Kind:    e.Kind.String(),
			From:    e.From,
			To:      e.To,
		}
		if e.Payload != nil {
			ee.Payload = fmt.Sprintf("%+v", e.Payload)
		}
		if h, ok := e.Payload.(HopCarrier); ok {
			ee.Hop = h.HopCount()
		}
		out.Events[i] = ee
	}
	return out
}

// WriteText renders the export as human-readable text, one event per line.
func WriteText(w io.Writer, exp *Export) error {
	bw := bufio.NewWriter(w)
	for _, e := range exp.Events {
		var err error
		switch ParseKind(e.Kind) {
		case KindTimer:
			_, err = fmt.Fprintf(bw, "#%-6d %10.4f  timer    node %-3d kind %-3d L%-5d <#%d\n",
				e.ID, e.At, e.From, e.To, e.Lamport, e.Parent)
		case KindDecision:
			_, err = fmt.Fprintf(bw, "#%-6d %10.4f  decision node %-3d %s L%-5d <#%d\n",
				e.ID, e.At, e.From, e.Payload, e.Lamport, e.Parent)
		default:
			_, err = fmt.Fprintf(bw, "#%-6d %10.4f  %-8s %3d -> %-3d %s L%-5d <#%d\n",
				e.ID, e.At, e.Kind, e.From, e.To, e.Payload, e.Lamport, e.Parent)
		}
		if err != nil {
			return err
		}
	}
	if exp.Dropped > 0 {
		if _, err := fmt.Fprintf(bw, "... %d events dropped (cap reached)\n", exp.Dropped); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// jsonlTrailer is the final line of a JSONL export: an integrity footer a
// reader can use to detect truncated files and locate the decision event
// without scanning. It has no "id" field, which distinguishes it from
// event lines.
type jsonlTrailer struct {
	Events   int     `json:"events"`
	Dropped  uint64  `json:"dropped"`
	Decision EventID `json:"decision"`
}

// WriteJSONL renders the export as compact JSONL: one JSON object per
// event line, then one trailer line with the event count, the dropped
// count, and the decision event ID.
func WriteJSONL(w io.Writer, exp *Export) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range exp.Events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	if err := enc.Encode(jsonlTrailer{Events: len(exp.Events), Dropped: exp.Dropped, Decision: exp.Decision}); err != nil {
		return err
	}
	return bw.Flush()
}

// chromeEvent is one entry of a Chrome trace-event JSON file
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// the format chrome://tracing and Perfetto load.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`  // instant-event scope
	BP   string         `json:"bp,omitempty"` // flow binding point
	ID   int64          `json:"id,omitempty"` // flow-event ID
	Args map[string]any `json:"args,omitempty"`
}

// chromeTimeScale converts virtual time to the format's microsecond
// timestamps: one virtual time unit renders as one millisecond, which
// keeps typical runs (tens of time units) comfortably zoomable.
const chromeTimeScale = 1e3

// WriteChrome renders the export as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) and chrome://tracing. Every node gets its own
// track (pid 0, tid = node; radio broadcasts' tid -1 renders as its own
// track); each event is a thread-scoped instant on the track of the node
// it occurred at, and every send→deliver edge whose two endpoints both
// survived the cap becomes a flow arrow between the tracks. Flow IDs are
// the delivery's event ID, so duplicated deliveries (lossy-link replay,
// radio fan-out) each get their own arrow from the shared send.
func WriteChrome(w io.Writer, exp *Export) error {
	byID := make(map[EventID]*ExportEvent, len(exp.Events))
	nodes := make(map[int]bool)
	for i := range exp.Events {
		e := &exp.Events[i]
		byID[e.ID] = e
		nodes[e.Node()] = true
	}
	maxNode := 0
	for n := range nodes {
		if n > maxNode {
			maxNode = n
		}
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		buf, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = bw.Write(buf)
		return err
	}

	if err := emit(chromeEvent{Name: "process_name", Ph: "M", Pid: 0, Args: map[string]any{"name": "abenet run"}}); err != nil {
		return err
	}
	// Deterministic metadata order: ascending node index (radio track -1
	// first when present).
	for n := -1; n <= maxNode; n++ {
		if !nodes[n] {
			continue
		}
		name := fmt.Sprintf("node %d", n)
		if n == -1 {
			name = "radio"
		}
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: 0, Tid: n, Args: map[string]any{"name": name}}); err != nil {
			return err
		}
	}

	for i := range exp.Events {
		e := &exp.Events[i]
		args := map[string]any{"id": int64(e.ID), "lamport": e.Lamport}
		if e.Parent != 0 {
			args["parent"] = int64(e.Parent)
		}
		if e.Payload != "" {
			args["payload"] = e.Payload
		}
		if e.Hop != 0 {
			args["hop"] = e.Hop
		}
		if err := emit(chromeEvent{
			Name: e.Kind, Ph: "i", S: "t",
			Ts: e.At * chromeTimeScale, Pid: 0, Tid: e.Node(),
			Args: args,
		}); err != nil {
			return err
		}
		// A delivery whose parent send survived the cap gets a flow arrow
		// from the send's track to its own; deliveries of dropped sends
		// stay arrow-less so every flow edge references existing events.
		if ParseKind(e.Kind) == KindDeliver {
			if s, ok := byID[e.Parent]; ok && ParseKind(s.Kind) == KindSend {
				if err := emit(chromeEvent{
					Name: "msg", Ph: "s", Ts: s.At * chromeTimeScale,
					Pid: 0, Tid: s.Node(), ID: int64(e.ID),
				}); err != nil {
					return err
				}
				if err := emit(chromeEvent{
					Name: "msg", Ph: "f", BP: "e", Ts: e.At * chromeTimeScale,
					Pid: 0, Tid: e.Node(), ID: int64(e.ID),
				}); err != nil {
					return err
				}
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
