// Package causal analyses the happens-before structure of an exported
// trace (trace.Export).
//
// Every traced event has at most one parent, so the trace is a forest of
// causal trees and each event has a unique ancestor chain back to a root
// (an Init-time send). That makes three analyses cheap and exact:
//
//   - Relay chains: a delivery whose parent send was itself emitted while
//     processing a delivery extends a hop chain. The source paper's
//     complexity argument rests on such chains being short — a message is
//     relayed over at most d+1 hops — and CheckHopBound validates exactly
//     that, both against a caller-supplied bound and against the hop
//     counter the payload itself carries (trace.HopCarrier).
//
//   - Critical path: the ancestor chain of the decision event (or of the
//     causally deepest event when the run never decided) is the longest
//     dependency chain that produced the outcome. Each edge is classified
//     as message time (send→deliver: link delay sampling, ARQ retries,
//     queueing in flight) or local time (everything else: processing
//     delay, timer waits), so the path decomposes the run's virtual time
//     into "waiting on the network" vs "waiting on nodes".
//
//   - Spans: per-(node, kind) counts and time aggregates over the whole
//     trace, a coarse per-track profile of where events happened.
package causal

import (
	"fmt"
	"sort"

	"abenet/internal/trace"
)

// EdgeKind classifies one parent→child edge of the causal forest.
type EdgeKind int

const (
	// EdgeNone marks a root event (no parent in the trace).
	EdgeNone EdgeKind = iota
	// EdgeMessage is a send→deliver edge: the elapsed time is link delay —
	// sampling, ARQ retransmissions, in-flight queueing.
	EdgeMessage
	// EdgeLocal is any same-node edge (deliver→send, deliver/timer→timer,
	// →decision): the elapsed time is processing and timer waiting at one
	// node.
	EdgeLocal
)

// String implements fmt.Stringer.
func (k EdgeKind) String() string {
	switch k {
	case EdgeMessage:
		return "message"
	case EdgeLocal:
		return "local"
	default:
		return "root"
	}
}

// Analysis holds the decoded causal structure of one exported trace.
// Build one with Analyze.
type Analysis struct {
	exp    *trace.Export
	index  map[trace.EventID]int // event ID → position in exp.Events
	parent []int                 // position of parent, -1 if absent/dropped
	depth  []int                 // ancestor-chain length in edges
	hops   []int                 // relay-chain length ending at a delivery
}

// Analyze builds the causal structure of an export. Parents that were
// dropped past the recorder's cap (or predate it) are treated as absent:
// their children become roots of their own subtrees.
func Analyze(exp *trace.Export) *Analysis {
	a := &Analysis{
		exp:    exp,
		index:  make(map[trace.EventID]int, len(exp.Events)),
		parent: make([]int, len(exp.Events)),
		depth:  make([]int, len(exp.Events)),
		hops:   make([]int, len(exp.Events)),
	}
	for i := range exp.Events {
		a.index[exp.Events[i].ID] = i
	}
	for i := range exp.Events {
		e := &exp.Events[i]
		a.parent[i] = -1
		if e.Parent != 0 {
			// A cause always has a smaller ID than its effect, so when the
			// parent is stored it has already been processed.
			if p, ok := a.index[e.Parent]; ok && p < i {
				a.parent[i] = p
			}
		}
		if p := a.parent[i]; p >= 0 {
			a.depth[i] = a.depth[p] + 1
		}
		// A relay chain counts consecutive deliveries linked by
		// deliver →(processing)→ send →(link)→ deliver edges.
		if trace.ParseKind(e.Kind) == trace.KindDeliver {
			a.hops[i] = 1
			if s := a.parent[i]; s >= 0 && trace.ParseKind(exp.Events[s].Kind) == trace.KindSend {
				if d := a.parent[s]; d >= 0 && trace.ParseKind(exp.Events[d].Kind) == trace.KindDeliver {
					a.hops[i] = a.hops[d] + 1
				}
			}
		}
	}
	return a
}

// Events returns the analysed events (the export's, shared not copied).
func (a *Analysis) Events() []trace.ExportEvent { return a.exp.Events }

// MaxHopDepth returns the longest relay chain in the trace, in message
// hops: the maximum number of consecutive deliveries connected by
// relay-processing edges. 0 for a trace with no deliveries.
func (a *Analysis) MaxHopDepth() int {
	max := 0
	for _, h := range a.hops {
		if h > max {
			max = h
		}
	}
	return max
}

// CheckHopBound validates the paper's relay bound on every message chain
// in the trace and returns one message per violation (nil when the bound
// holds). Two invariants are checked per delivery:
//
//   - its relay chain is at most bound hops long (bound = d+1: on the
//     election's embedded ring of n nodes, d = n−1, so bound = n);
//   - when the payload carries a hop counter (trace.HopCarrier preserved
//     in ExportEvent.Hop), the chain is no longer than the counter — each
//     relay increments the counter by at least one from 1, so a chain of
//     k relays must arrive with a counter ≥ k.
func (a *Analysis) CheckHopBound(bound int) []string {
	var violations []string
	for i := range a.exp.Events {
		e := &a.exp.Events[i]
		if trace.ParseKind(e.Kind) != trace.KindDeliver {
			continue
		}
		if a.hops[i] > bound {
			violations = append(violations,
				fmt.Sprintf("event #%d: relay chain of %d hops exceeds the d+1 bound %d", e.ID, a.hops[i], bound))
		}
		if e.Hop > 0 && a.hops[i] > e.Hop {
			violations = append(violations,
				fmt.Sprintf("event #%d: relay chain of %d hops but the payload hop counter is only %d", e.ID, a.hops[i], e.Hop))
		}
	}
	return violations
}

// Step is one event on a critical path, with the edge that reached it.
type Step struct {
	// Event is the event at this step.
	Event trace.ExportEvent
	// Edge classifies the edge from the previous step (EdgeNone for the
	// first).
	Edge EdgeKind
	// Elapsed is the virtual time spent on that edge (0 for the first).
	Elapsed float64
}

// Path is a critical path: the unique ancestor chain from a causal root to
// the target event, with its virtual time decomposed by edge kind.
type Path struct {
	// Steps lists the chain root-first; the last step is the target.
	Steps []Step
	// Target is the target event's ID (the decision event when present).
	Target trace.EventID
	// Hops counts the message (send→deliver) edges on the path.
	Hops int
	// Total is the virtual time from the root to the target.
	Total float64
	// MessageTime is the share of Total spent on message edges: link
	// delay sampling, retransmissions, in-flight queueing.
	MessageTime float64
	// LocalTime is the share of Total spent on local edges: node
	// processing and timer waits.
	LocalTime float64
}

// Len returns the path length in edges.
func (p *Path) Len() int { return len(p.Steps) - 1 }

// CriticalPath returns the ancestor chain of the run's terminal event: the
// decision event when the trace has one, otherwise the causally deepest
// event (ties broken toward the earliest recorded). It returns nil for an
// empty trace.
func (a *Analysis) CriticalPath() *Path {
	target := -1
	if a.exp.Decision != 0 {
		if i, ok := a.index[a.exp.Decision]; ok {
			target = i
		}
	}
	if target < 0 {
		for i := range a.exp.Events {
			if target < 0 || a.depth[i] > a.depth[target] {
				target = i
			}
		}
	}
	if target < 0 {
		return nil
	}

	var chain []int
	for i := target; i >= 0; i = a.parent[i] {
		chain = append(chain, i)
	}
	p := &Path{Steps: make([]Step, len(chain)), Target: a.exp.Events[target].ID}
	for s := range p.Steps {
		i := chain[len(chain)-1-s]
		step := Step{Event: a.exp.Events[i]}
		if s > 0 {
			prev := p.Steps[s-1].Event
			step.Elapsed = step.Event.At - prev.At
			if trace.ParseKind(step.Event.Kind) == trace.KindDeliver &&
				trace.ParseKind(prev.Kind) == trace.KindSend {
				step.Edge = EdgeMessage
				p.Hops++
				p.MessageTime += step.Elapsed
			} else {
				step.Edge = EdgeLocal
				p.LocalTime += step.Elapsed
			}
			p.Total += step.Elapsed
		}
		p.Steps[s] = step
	}
	return p
}

// Span aggregates the events of one (node, kind) pair.
type Span struct {
	// Node is the node the events occurred at.
	Node int `json:"node"`
	// Kind is the event kind.
	Kind string `json:"kind"`
	// Count is the number of events.
	Count int `json:"count"`
	// Time is the summed elapsed time of the events' causal edges (time
	// between each event and its recorded parent).
	Time float64 `json:"time"`
	// MaxElapsed is the largest single edge time.
	MaxElapsed float64 `json:"max_elapsed"`
}

// Spans aggregates the trace per (node, kind), sorted by node then kind.
// Each event contributes the virtual time of its incoming causal edge, so
// a node's deliver span totals the link delays of everything it received
// on the recorded chains, and its send/timer spans total its local
// processing and waiting time.
func (a *Analysis) Spans() []Span {
	type key struct {
		node int
		kind trace.EventKind
	}
	agg := make(map[key]*Span)
	var order []key
	for i := range a.exp.Events {
		e := &a.exp.Events[i]
		k := key{e.Node(), trace.ParseKind(e.Kind)}
		s := agg[k]
		if s == nil {
			s = &Span{Node: k.node, Kind: e.Kind}
			agg[k] = s
			order = append(order, k)
		}
		s.Count++
		if p := a.parent[i]; p >= 0 {
			el := e.At - a.exp.Events[p].At
			s.Time += el
			if el > s.MaxElapsed {
				s.MaxElapsed = el
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].node != order[j].node {
			return order[i].node < order[j].node
		}
		return order[i].kind < order[j].kind
	})
	out := make([]Span, len(order))
	for i, k := range order {
		out[i] = *agg[k]
	}
	return out
}

// Summary is the compact JSON-facing digest of a path the CLIs report.
type Summary struct {
	// Events is the number of stored trace events.
	Events int `json:"events"`
	// Dropped counts events lost to the recorder cap.
	Dropped uint64 `json:"dropped,omitempty"`
	// Decision is the terminal event ID (0 when the run never decided).
	Decision trace.EventID `json:"decision,omitempty"`
	// PathLen is the critical path length in edges.
	PathLen int `json:"path_len"`
	// Hops is the critical path's message-hop count.
	Hops int `json:"hops"`
	// Time is the critical path's total virtual time.
	Time float64 `json:"time"`
	// MessageTime is the share spent on message edges.
	MessageTime float64 `json:"message_time"`
	// LocalTime is the share spent on local edges.
	LocalTime float64 `json:"local_time"`
	// MaxHopDepth is the longest relay chain anywhere in the trace.
	MaxHopDepth int `json:"max_hop_depth"`
}

// Summarize analyses an export and digests its critical path. Returns the
// zero Summary for a nil or empty export.
func Summarize(exp *trace.Export) Summary {
	if exp == nil || len(exp.Events) == 0 {
		return Summary{}
	}
	a := Analyze(exp)
	s := Summary{
		Events:      len(exp.Events),
		Dropped:     exp.Dropped,
		Decision:    exp.Decision,
		MaxHopDepth: a.MaxHopDepth(),
	}
	if p := a.CriticalPath(); p != nil {
		s.PathLen = p.Len()
		s.Hops = p.Hops
		s.Time = p.Total
		s.MessageTime = p.MessageTime
		s.LocalTime = p.LocalTime
	}
	return s
}
