package causal

import (
	"math"
	"reflect"
	"testing"

	"abenet/internal/trace"
)

// chainExport hand-builds the canonical relay pattern the election
// produces: Init send at node 0, then deliver → send → deliver … across
// nodes 0→1→2, ending in a decision at node 2.
//
//	#1 send 0→1 @0   (root)
//	#2 deliver  @1.0 parent #1   hop counter 1
//	#3 send 1→2 @1.5 parent #2
//	#4 deliver  @3.0 parent #3   hop counter 2
//	#5 decision @3.0 parent #4
func chainExport() *trace.Export {
	return &trace.Export{
		Decision: 5,
		Events: []trace.ExportEvent{
			{ID: 1, Lamport: 1, At: 0, Kind: "send", From: 0, To: 1, Payload: "{Hop:1}", Hop: 1},
			{ID: 2, Parent: 1, Lamport: 2, At: 1, Kind: "deliver", From: 0, To: 1, Payload: "{Hop:1}", Hop: 1},
			{ID: 3, Parent: 2, Lamport: 3, At: 1.5, Kind: "send", From: 1, To: 2, Payload: "{Hop:2}", Hop: 2},
			{ID: 4, Parent: 3, Lamport: 4, At: 3, Kind: "deliver", From: 1, To: 2, Payload: "{Hop:2}", Hop: 2},
			{ID: 5, Parent: 4, Lamport: 5, At: 3, Kind: "decision", From: 2, Payload: "leader elected"},
		},
	}
}

func TestCriticalPath(t *testing.T) {
	p := Analyze(chainExport()).CriticalPath()
	if p == nil {
		t.Fatal("no critical path")
	}
	if p.Target != 5 {
		t.Fatalf("target = #%d, want the decision #5", p.Target)
	}
	if p.Len() != 4 {
		t.Fatalf("path length = %d edges, want 4", p.Len())
	}
	if p.Hops != 2 {
		t.Fatalf("hops = %d, want 2 message edges", p.Hops)
	}
	if p.Total != 3 {
		t.Fatalf("total = %g, want 3", p.Total)
	}
	// Message edges: #1→#2 (1.0) and #3→#4 (1.5). Local: #2→#3 (0.5),
	// #4→#5 (0).
	if p.MessageTime != 2.5 {
		t.Fatalf("message time = %g, want 2.5", p.MessageTime)
	}
	if p.LocalTime != 0.5 {
		t.Fatalf("local time = %g, want 0.5", p.LocalTime)
	}
	wantEdges := []EdgeKind{EdgeNone, EdgeMessage, EdgeLocal, EdgeMessage, EdgeLocal}
	for i, s := range p.Steps {
		if s.Edge != wantEdges[i] {
			t.Errorf("step %d edge = %v, want %v", i, s.Edge, wantEdges[i])
		}
	}
	if p.Steps[0].Event.ID != 1 || p.Steps[len(p.Steps)-1].Event.ID != 5 {
		t.Fatalf("path runs #%d..#%d, want root #1 to target #5",
			p.Steps[0].Event.ID, p.Steps[len(p.Steps)-1].Event.ID)
	}
}

func TestHopDepthAndBound(t *testing.T) {
	a := Analyze(chainExport())
	if d := a.MaxHopDepth(); d != 2 {
		t.Fatalf("MaxHopDepth = %d, want 2", d)
	}
	if v := a.CheckHopBound(2); len(v) != 0 {
		t.Fatalf("bound 2 violated: %v", v)
	}
	// Tightening the bound below the measured depth must trip it.
	if v := a.CheckHopBound(1); len(v) != 1 {
		t.Fatalf("bound 1: got %d violations, want 1: %v", len(v), v)
	}
}

func TestHopCounterInvariant(t *testing.T) {
	exp := chainExport()
	// Corrupt the second delivery's hop counter below its chain depth of
	// 2: a chain longer than its own counter is exactly what the paper's
	// relay argument forbids.
	exp.Events[3].Hop = 1
	if v := Analyze(exp).CheckHopBound(10); len(v) != 1 {
		t.Fatalf("got %d violations, want the counter violation: %v", len(v), v)
	}
}

func TestDroppedParentStartsNewRoot(t *testing.T) {
	exp := chainExport()
	// Drop the first two events, as a capped recorder would: the stored
	// suffix references #2 as a parent that no longer exists.
	exp.Events = exp.Events[2:]
	a := Analyze(exp)
	p := a.CriticalPath()
	if p == nil || p.Target != 5 {
		t.Fatalf("path = %+v, want a path to #5", p)
	}
	if p.Steps[0].Event.ID != 3 {
		t.Fatalf("root = #%d, want the orphaned #3", p.Steps[0].Event.ID)
	}
	// The relay chain restarts at the orphan: depth 1, not 2.
	if d := a.MaxHopDepth(); d != 1 {
		t.Fatalf("MaxHopDepth = %d, want 1 after the chain head was dropped", d)
	}
}

func TestDeepestEventFallback(t *testing.T) {
	exp := chainExport()
	// A run that never decided (e.g. ben-or draining to quiescence).
	exp.Decision = 0
	exp.Events = exp.Events[:4]
	p := Analyze(exp).CriticalPath()
	if p == nil || p.Target != 4 {
		t.Fatalf("path = %+v, want fallback to the deepest event #4", p)
	}
}

func TestSpans(t *testing.T) {
	spans := Analyze(chainExport()).Spans()
	want := []Span{
		{Node: 0, Kind: "send", Count: 1},
		{Node: 1, Kind: "send", Count: 1, Time: 0.5, MaxElapsed: 0.5},
		{Node: 1, Kind: "deliver", Count: 1, Time: 1, MaxElapsed: 1},
		{Node: 2, Kind: "deliver", Count: 1, Time: 1.5, MaxElapsed: 1.5},
		{Node: 2, Kind: "decision", Count: 1},
	}
	if !reflect.DeepEqual(spans, want) {
		t.Fatalf("spans:\n got %+v\nwant %+v", spans, want)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(chainExport())
	if s.Events != 5 || s.Decision != 5 || s.PathLen != 4 || s.Hops != 2 || s.MaxHopDepth != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Time-3) > 1e-12 || math.Abs(s.MessageTime-2.5) > 1e-12 {
		t.Fatalf("summary times = %+v", s)
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Fatalf("Summarize(nil) = %+v, want zero", z)
	}
}

func TestEmptyExport(t *testing.T) {
	a := Analyze(&trace.Export{})
	if p := a.CriticalPath(); p != nil {
		t.Fatalf("empty export has a critical path: %+v", p)
	}
	if d := a.MaxHopDepth(); d != 0 {
		t.Fatalf("empty export MaxHopDepth = %d", d)
	}
	if v := a.CheckHopBound(1); v != nil {
		t.Fatalf("empty export violations: %v", v)
	}
}
