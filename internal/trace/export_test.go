package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"abenet/internal/network"
)

// exportFixture records a small run shape: a relay chain with a timer and
// a decision, plus one delivery whose parent send is dropped by the cap.
func exportFixture(t *testing.T) *Export {
	t.Helper()
	r := NewRecorder(6)
	s1 := r.MessageSent(0, 0, 1, "a", network.TraceRef{})
	d1 := r.MessageDelivered(1, 0, 1, "a", s1)
	r.TimerFired(1.5, 1, 2, d1)
	s2 := r.MessageSent(1.5, 1, 2, "b", d1)
	r.MessageDelivered(3, 1, 2, "b", s2)
	s3 := r.MessageSent(3, 2, 0, "c", network.TraceRef{}) // fills the cap
	d3 := r.MessageDelivered(4, 2, 0, "c", s3)            // dropped: over cap
	r.Decision(4, 0, "done", d3)                          // cap-exempt
	return r.Export()
}

func TestExportRoundTripsJSON(t *testing.T) {
	exp := exportFixture(t)
	if exp.Dropped != 1 || exp.Decision == 0 {
		t.Fatalf("fixture shape: %+v", exp)
	}
	buf, err := json.Marshal(exp)
	if err != nil {
		t.Fatal(err)
	}
	var back Export
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(exp.Events) || back.Dropped != exp.Dropped || back.Decision != exp.Decision {
		t.Fatalf("round trip changed the export:\n %+v\n %+v", exp, &back)
	}
	if back.Events[0].Payload != "a" || back.Events[0].Kind != "send" {
		t.Fatalf("first event corrupted: %+v", back.Events[0])
	}
}

func TestWriteJSONLShape(t *testing.T) {
	exp := exportFixture(t)
	var b bytes.Buffer
	if err := WriteJSONL(&b, exp); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != len(exp.Events)+1 {
		t.Fatalf("%d lines, want %d events + 1 trailer", len(lines), len(exp.Events))
	}
	for i, line := range lines[:len(lines)-1] {
		var e ExportEvent
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if e.ID != exp.Events[i].ID {
			t.Fatalf("line %d ID = %d, want %d", i, e.ID, exp.Events[i].ID)
		}
	}
	var trailer struct {
		Events   int     `json:"events"`
		Dropped  uint64  `json:"dropped"`
		Decision EventID `json:"decision"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
		t.Fatal(err)
	}
	if trailer.Events != len(exp.Events) || trailer.Dropped != exp.Dropped || trailer.Decision != exp.Decision {
		t.Fatalf("trailer = %+v, want %d/%d/%d", trailer, len(exp.Events), exp.Dropped, exp.Decision)
	}
}

func TestWriteTextShape(t *testing.T) {
	exp := exportFixture(t)
	var b bytes.Buffer
	if err := WriteText(&b, exp); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"send", "deliver", "timer", "decision", "dropped"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text export missing %q:\n%s", want, out)
		}
	}
}

// chromeFile mirrors the trace-event JSON structure for validation.
type chromeFile struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		ID   int64          `json:"id"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestWriteChromeStructure is the structural Perfetto-loadability pin:
// well-formed JSON, one metadata-named track per node, monotone per-track
// instant timestamps, and every flow edge referencing instants that exist
// in the file.
func TestWriteChromeStructure(t *testing.T) {
	exp := exportFixture(t)
	var b bytes.Buffer
	if err := WriteChrome(&b, exp); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal(b.Bytes(), &f); err != nil {
		t.Fatalf("chrome export is not well-formed JSON: %v\n%s", err, b.String())
	}

	instants := 0
	lastTs := map[int]float64{}    // per-track monotonicity
	instantIDs := map[int64]bool{} // args.id of every instant
	flows := map[int64][2]int{}    // flow id → {starts, finishes}
	namedTracks := map[int]bool{}  // tid → has thread_name metadata
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				namedTracks[ev.Tid] = true
			}
		case "i":
			instants++
			if prev, ok := lastTs[ev.Tid]; ok && ev.Ts < prev {
				t.Fatalf("track %d timestamps not monotone: %g after %g", ev.Tid, ev.Ts, prev)
			}
			lastTs[ev.Tid] = ev.Ts
			id, ok := ev.Args["id"].(float64)
			if !ok {
				t.Fatalf("instant without an args.id: %+v", ev)
			}
			instantIDs[int64(id)] = true
		case "s":
			c := flows[ev.ID]
			c[0]++
			flows[ev.ID] = c
		case "f":
			c := flows[ev.ID]
			c[1]++
			flows[ev.ID] = c
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if instants != len(exp.Events) {
		t.Fatalf("%d instants, want one per stored event (%d)", instants, len(exp.Events))
	}
	for tid := range lastTs {
		if !namedTracks[tid] {
			t.Fatalf("track %d has events but no thread_name metadata", tid)
		}
	}
	// Every flow edge must reference existing events: the flow ID is the
	// delivery's event ID, and both endpoints must be present exactly once.
	if len(flows) == 0 {
		t.Fatal("no flow edges for a trace with deliveries")
	}
	for id, c := range flows {
		if c[0] != 1 || c[1] != 1 {
			t.Fatalf("flow %d has %d starts and %d finishes, want 1/1", id, c[0], c[1])
		}
		if !instantIDs[id] {
			t.Fatalf("flow %d references no stored event", id)
		}
	}
	// The delivery whose parent send was dropped must NOT have grown a
	// dangling flow edge.
	for _, e := range exp.Events {
		if ParseKind(e.Kind) != KindDeliver {
			continue
		}
		_, parentStored := flows[int64(e.ID)]
		wantStored := false
		for _, p := range exp.Events {
			if p.ID == e.Parent && ParseKind(p.Kind) == KindSend {
				wantStored = true
			}
		}
		if parentStored != wantStored {
			t.Fatalf("delivery #%d: flow edge present=%v, want %v", e.ID, parentStored, wantStored)
		}
	}
}

func TestExportPreservesHopCounter(t *testing.T) {
	r := NewRecorder(0)
	s := r.MessageSent(0, 0, 1, hopPayload{hops: 3}, network.TraceRef{})
	r.MessageDelivered(1, 0, 1, hopPayload{hops: 3}, s)
	exp := r.Export()
	for _, e := range exp.Events {
		if e.Hop != 3 {
			t.Fatalf("event %+v lost the hop counter", e)
		}
	}
}

type hopPayload struct{ hops int }

func (p hopPayload) HopCount() int { return p.hops }
