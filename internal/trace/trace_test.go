package trace

import (
	"strings"
	"testing"

	"abenet/internal/channel"
	"abenet/internal/dist"
	"abenet/internal/network"
	"abenet/internal/simtime"
	"abenet/internal/topology"
)

func TestRecorderCollectsInOrder(t *testing.T) {
	r := NewRecorder(0)
	r.MessageSent(1, 0, 1, "a")
	r.MessageDelivered(2, 0, 1, "a")
	r.TimerFired(3, 1, 7)
	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Kind != KindSend || events[1].Kind != KindDeliver || events[2].Kind != KindTimer {
		t.Fatalf("kinds = %v %v %v", events[0].Kind, events[1].Kind, events[2].Kind)
	}
	if events[2].From != 1 || events[2].To != 7 {
		t.Fatalf("timer event = %+v", events[2])
	}
}

func TestRecorderCap(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.MessageSent(simtime.Time(i), 0, 1, i)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	if r.Dropped() != 3 {
		t.Fatalf("dropped = %d", r.Dropped())
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	r := NewRecorder(0)
	r.MessageSent(1, 0, 1, "a")
	events := r.Events()
	events[0].From = 99
	if r.Events()[0].From == 99 {
		t.Fatal("Events exposed internal slice")
	}
}

func TestWriteToAndSummary(t *testing.T) {
	r := NewRecorder(2)
	r.MessageSent(1, 0, 1, "x")
	r.MessageDelivered(2, 0, 1, "x")
	r.TimerFired(3, 0, 1)
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "send") || !strings.Contains(out, "dropped") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(r.Summary(), "2 events") {
		t.Fatalf("summary: %s", r.Summary())
	}
}

func TestFilter(t *testing.T) {
	r := NewRecorder(0)
	r.MessageSent(1, 0, 1, "a")
	r.TimerFired(2, 0, 1)
	r.MessageSent(3, 1, 0, "b")
	sends := r.Filter(KindSend)
	if len(sends) != 2 {
		t.Fatalf("sends = %d", len(sends))
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[EventKind]string{KindSend: "send", KindDeliver: "deliver", KindTimer: "timer"} {
		if k.String() != want {
			t.Fatalf("%d -> %q", k, k.String())
		}
	}
	if EventKind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

// echoNode bounces one message to exercise the Tracer integration.
type echoNode struct{ start bool }

func (e *echoNode) Init(ctx *network.Context) {
	if e.start {
		ctx.Send(0, "ping")
	}
}
func (e *echoNode) OnMessage(ctx *network.Context, _ int, _ any) {
	ctx.StopNetwork("done")
}
func (e *echoNode) OnTimer(*network.Context, int) {}

func TestRecorderAsNetworkTracer(t *testing.T) {
	rec := NewRecorder(0)
	net, err := network.New(network.Config{
		Graph:  topology.Ring(2),
		Links:  channel.RandomDelayFactory(dist.NewDeterministic(1)),
		Seed:   1,
		Tracer: rec,
	}, func(i int) network.Node { return &echoNode{start: i == 0} })
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Run(simtime.Forever, 0); err != nil {
		t.Fatal(err)
	}
	if len(rec.Filter(KindSend)) != 1 || len(rec.Filter(KindDeliver)) != 1 {
		t.Fatalf("trace: %s", rec.Summary())
	}
	events := rec.Events()
	if events[0].At != 0 || events[1].At != 1 {
		t.Fatalf("timestamps: %v, %v", events[0].At, events[1].At)
	}
}
