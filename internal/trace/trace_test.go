package trace

import (
	"strings"
	"testing"

	"abenet/internal/channel"
	"abenet/internal/dist"
	"abenet/internal/network"
	"abenet/internal/simtime"
	"abenet/internal/topology"
)

func TestRecorderCollectsInOrder(t *testing.T) {
	r := NewRecorder(0)
	s := r.MessageSent(1, 0, 1, "a", network.TraceRef{})
	d := r.MessageDelivered(2, 0, 1, "a", s)
	r.TimerFired(3, 1, 7, d)

	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	wantKinds := []EventKind{KindSend, KindDeliver, KindTimer}
	for i, e := range events {
		if e.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %v, want %v", i, e.Kind, wantKinds[i])
		}
		if e.ID != EventID(i+1) {
			t.Errorf("event %d ID = %d, want %d", i, e.ID, i+1)
		}
	}
	// Parent edges: the delivery is parented to the send, the timer to the
	// delivery whose handler set it.
	if events[1].Parent != events[0].ID {
		t.Errorf("delivery parent = #%d, want the send #%d", events[1].Parent, events[0].ID)
	}
	if events[2].Parent != events[1].ID {
		t.Errorf("timer parent = #%d, want the delivery #%d", events[2].Parent, events[1].ID)
	}
}

func TestRecorderLamportClocks(t *testing.T) {
	r := NewRecorder(0)
	// Node 0 does two local events, then sends; node 1 is fresh, so the
	// delivery must jump its clock to the sender's + 1.
	r.TimerFired(0.5, 0, 1, network.TraceRef{})
	r.TimerFired(0.6, 0, 1, network.TraceRef{})
	s := r.MessageSent(1, 0, 1, "x", network.TraceRef{})
	if s.Lamport != 3 {
		t.Fatalf("send lamport = %d, want 3", s.Lamport)
	}
	d := r.MessageDelivered(2, 0, 1, "x", s)
	if d.Lamport != 4 {
		t.Fatalf("delivery lamport = %d, want max(0,3)+1 = 4", d.Lamport)
	}
	// A delivery with a zero ref (untraced cause) just ticks locally.
	d2 := r.MessageDelivered(3, 0, 1, "y", network.TraceRef{})
	if d2.Lamport != 5 {
		t.Fatalf("zero-ref delivery lamport = %d, want 5", d2.Lamport)
	}
}

func TestRecorderCapAndStableIDs(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.MessageSent(simtime.Time(i), 0, 1, i, network.TraceRef{})
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if r.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", r.Dropped())
	}
	// IDs keep counting past the cap, so a later (cap-exempt) event gets
	// the ID it would have had uncapped.
	dec := r.Decision(9, 0, "done", network.TraceRef{})
	if dec.ID != 6 {
		t.Fatalf("decision ID = %d, want 6 (IDs count dropped events)", dec.ID)
	}
}

func TestDecisionIsCapExempt(t *testing.T) {
	r := NewRecorder(1)
	r.MessageSent(0, 0, 1, "a", network.TraceRef{})
	r.MessageSent(1, 0, 1, "b", network.TraceRef{}) // dropped
	d := r.MessageDelivered(2, 0, 1, "a", network.TraceRef{})
	r.Decision(3, 1, "leader elected", d)

	events := r.Events()
	if len(events) != 2 {
		t.Fatalf("stored %d events, want 2 (1 capped + the exempt decision)", len(events))
	}
	last := events[len(events)-1]
	if last.Kind != KindDecision {
		t.Fatalf("last stored event is %v, want the decision", last.Kind)
	}
	if last.Parent != d.ID {
		t.Fatalf("decision parent = #%d, want #%d", last.Parent, d.ID)
	}
	if r.DecisionID() != last.ID {
		t.Fatalf("DecisionID = %d, want %d", r.DecisionID(), last.ID)
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2 (the capped send and the delivery)", r.Dropped())
	}
}

// TestEventsReturnsCopy is the regression pin for the single-lock snapshot
// rework: mutating the returned slice must not corrupt the recorder.
func TestEventsReturnsCopy(t *testing.T) {
	r := NewRecorder(0)
	r.MessageSent(1, 0, 1, "a", network.TraceRef{})
	events := r.Events()
	events[0].Payload = "tampered"
	if got := r.Events()[0].Payload; got != "a" {
		t.Fatalf("recorder storage mutated through Events(): payload = %v", got)
	}
}

func TestWriteToAndSummary(t *testing.T) {
	r := NewRecorder(2)
	s := r.MessageSent(1, 0, 1, "a", network.TraceRef{})
	r.MessageDelivered(2, 0, 1, "a", s)
	r.TimerFired(3, 1, 7, network.TraceRef{}) // dropped: over cap

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"send", "deliver", "dropped"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteTo output missing %q:\n%s", want, out)
		}
	}
	sum := r.Summary()
	for _, want := range []string{"2 events", "1 sends", "1 deliveries", "0 timers", "1 dropped"} {
		if !strings.Contains(sum, want) {
			t.Errorf("Summary %q missing %q", sum, want)
		}
	}
}

func TestFilter(t *testing.T) {
	r := NewRecorder(0)
	s := r.MessageSent(1, 0, 1, "a", network.TraceRef{})
	r.MessageDelivered(2, 0, 1, "a", s)
	r.MessageSent(3, 1, 0, "b", network.TraceRef{})
	sends := r.Filter(KindSend)
	if len(sends) != 2 {
		t.Fatalf("Filter(KindSend) = %d events, want 2", len(sends))
	}
	for _, e := range sends {
		if e.Kind != KindSend {
			t.Fatalf("filtered event has kind %v", e.Kind)
		}
	}
	if len(r.Filter(KindTimer)) != 0 {
		t.Fatal("Filter(KindTimer) found phantom events")
	}
}

func TestKindStrings(t *testing.T) {
	cases := map[EventKind]string{
		KindSend:     "send",
		KindDeliver:  "deliver",
		KindTimer:    "timer",
		KindDecision: "decision",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
		if ParseKind(want) != k {
			t.Errorf("ParseKind(%q) = %v, want %v", want, ParseKind(want), k)
		}
	}
	if ParseKind("bogus") != 0 {
		t.Error("ParseKind accepted an unknown kind")
	}
}

func TestConfigValidate(t *testing.T) {
	var nilCfg *Config
	if err := nilCfg.Validate(); err != nil {
		t.Fatalf("nil config: %v", err)
	}
	if err := (&Config{MaxEvents: -1}).Validate(); err == nil {
		t.Fatal("negative cap accepted")
	}
	if err := (&Config{MaxEvents: 10}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// echoNode sends one message from node 0 and stops when it arrives.
type echoNode struct {
	id int
}

func (n *echoNode) Init(ctx *network.Context) {
	if n.id == 0 {
		ctx.Send(0, "ping")
	}
}

func (n *echoNode) OnMessage(ctx *network.Context, _ int, _ any) {
	ctx.StopNetwork("echo received")
}

func (n *echoNode) OnTimer(*network.Context, int) {}

// TestRecorderAsNetworkTracer drives a Recorder through a real network run
// and checks the causal chain end to end: Init send (root) → delivery
// (parented to the send, payload unwrapped) → decision (parented to the
// delivery).
func TestRecorderAsNetworkTracer(t *testing.T) {
	rec := NewRecorder(0)
	net, err := network.New(network.Config{
		Graph:  topology.Ring(2),
		Links:  channel.RandomDelayFactory(dist.NewDeterministic(1)),
		Seed:   3,
		Tracer: rec,
	}, func(i int) network.Node { return &echoNode{id: i} })
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Run(100, 0); err != nil {
		t.Fatal(err)
	}

	events := rec.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events, want send+deliver+decision:\n%v", len(events), events)
	}
	send, deliver, decision := events[0], events[1], events[2]
	if send.Kind != KindSend || send.Parent != 0 {
		t.Fatalf("first event = %+v, want a root send", send)
	}
	if deliver.Kind != KindDeliver || deliver.Parent != send.ID {
		t.Fatalf("second event = %+v, want a delivery parented to #%d", deliver, send.ID)
	}
	if deliver.Payload != "ping" {
		t.Fatalf("delivery payload = %v, want the unwrapped \"ping\"", deliver.Payload)
	}
	if decision.Kind != KindDecision || decision.Parent != deliver.ID {
		t.Fatalf("third event = %+v, want a decision parented to #%d", decision, deliver.ID)
	}
	if decision.Payload != "echo received" {
		t.Fatalf("decision payload = %v", decision.Payload)
	}
	if send.Lamport != 1 || deliver.Lamport != 2 || decision.Lamport != 3 {
		t.Fatalf("lamport chain = %d,%d,%d, want 1,2,3",
			send.Lamport, deliver.Lamport, decision.Lamport)
	}
	if rec.DecisionID() != decision.ID {
		t.Fatalf("DecisionID = %d, want %d", rec.DecisionID(), decision.ID)
	}
}
