package election

import (
	"fmt"

	"abenet/internal/network"
	"abenet/internal/probe"
)

// ringProbe exposes the protocol-level gauges shared by the ring election
// baselines: the number of active candidates and the elected flag. The
// predicates read the live node slice, so churn restarts are reflected.
type ringProbe struct {
	n        int
	isActive func(i int) bool
	isLeader func(i int) bool
}

// ProbeGauges implements probe.Observable.
func (p ringProbe) ProbeGauges() []probe.Gauge {
	return []probe.Gauge{
		{Name: "candidates", Read: func() float64 {
			c := 0
			for i := 0; i < p.n; i++ {
				if p.isActive(i) {
					c++
				}
			}
			return float64(c)
		}},
		{Name: "elected", Read: func() float64 {
			for i := 0; i < p.n; i++ {
				if p.isLeader(i) {
					return 1
				}
			}
			return 0
		}},
	}
}

// installProbe builds a collector over the network and protocol gauges and
// attaches it to the kernel's post-event hook. A nil cfg is a no-op.
func installProbe(net *network.Network, cfg *probe.Config, proto probe.Observable) (*probe.Collector, error) {
	if cfg == nil {
		return nil, nil
	}
	c, err := probe.NewCollector(*cfg, net, proto)
	if err != nil {
		return nil, fmt.Errorf("election: %w", err)
	}
	net.InstallProbe(c)
	return c, nil
}

// finishProbe takes the end-of-run sample and returns the series, or nil
// when the run was unobserved.
func finishProbe(net *network.Network, c *probe.Collector) *probe.Series {
	if c == nil {
		return nil
	}
	c.Final(net.Now(), net.Kernel().Executed())
	return c.Series()
}
