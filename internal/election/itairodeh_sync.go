// Package election implements the comparator election algorithms the
// paper's evaluation needs:
//
//   - ItaiRodehSync: a phase-based probabilistic election for anonymous
//     *synchronous* unidirectional rings of known size, in the style of
//     Itai–Rodeh [4] — the "most optimal leader election algorithms known
//     for anonymous, synchronous rings" the paper compares its ABE
//     algorithm against. Expected linear time and messages.
//   - ItaiRodehAsync: the classic Itai–Rodeh election for anonymous
//     *asynchronous* unidirectional rings with FIFO channels — expected
//     Θ(n log n) messages, the standard anonymous-ring baseline.
//   - ChangRoberts: election with unique identities on asynchronous
//     unidirectional rings — average Θ(n log n), worst case Θ(n²);
//     quantifies what identities buy relative to the anonymous setting.
package election

import (
	"fmt"

	"abenet/internal/syncnet"
	"abenet/internal/topology"
)

// irsRole is the state of a node in the synchronous phase election.
type irsRole int

const (
	irsIdle irsRole = iota + 1
	irsCandidate
	irsLeader
)

// irsToken is the circulating token: Hop counts the edges travelled.
type irsToken struct {
	Hop int
}

// ItaiRodehSyncNode elects a leader on an anonymous synchronous
// unidirectional ring of known size n.
//
// Time is divided into phases of n+1 rounds. At a phase start every idle
// node becomes a candidate with probability Q and emits a token ⟨1⟩.
// Tokens advance one hop per round; non-candidates forward them, a
// candidate hit by a foreign token (hop < n) purges it and records the
// collision, and a candidate whose own token returns (hop = n) — possible
// only when it was the phase's unique candidate — becomes leader. All
// surviving candidates revert to idle at the phase end and retry. With
// Q ≈ c/n a phase has Θ(1) expected candidates, so the election costs
// Θ(1) expected phases of ≤ n messages each: expected linear time and
// message complexity, the synchronous-ring optimum the paper cites.
type ItaiRodehSyncNode struct {
	ringSize int
	q        float64
	sendPort int

	role      irsRole
	collision bool

	// Phases counts the phases this node initiated as a candidate.
	Phases int
}

var _ syncnet.Node = (*ItaiRodehSyncNode)(nil)

// NewItaiRodehSyncNode returns a node for rings of size n with per-phase
// candidacy probability q.
func NewItaiRodehSyncNode(n int, q float64) (*ItaiRodehSyncNode, error) {
	if n < 2 {
		return nil, fmt.Errorf("election: ring size %d must be at least 2", n)
	}
	if !(q > 0 && q <= 1) {
		return nil, fmt.Errorf("election: candidacy probability %g outside (0, 1]", q)
	}
	return &ItaiRodehSyncNode{ringSize: n, q: q, role: irsIdle}, nil
}

// Role-reporting helpers for tests and experiment harnesses.

// IsLeader reports whether this node won the election.
func (p *ItaiRodehSyncNode) IsLeader() bool { return p.role == irsLeader }

// SetSendPort sets the out-port leading to the node's ring successor (0 on
// the natural ring). Callers embedding the node in a non-ring topology —
// e.g. over a synchronizer — must set the port from the graph's
// RingEmbedding before the run starts.
func (p *ItaiRodehSyncNode) SetSendPort(port int) { p.sendPort = port }

// Round implements syncnet.Node.
func (p *ItaiRodehSyncNode) Round(ctx syncnet.NodeContext, round int, inbox []syncnet.Message) {
	phaseLen := p.ringSize + 1

	// 1. Handle arriving tokens.
	for _, m := range inbox {
		token, ok := m.Payload.(irsToken)
		if !ok {
			panic(fmt.Sprintf("election: foreign payload %T on Itai-Rodeh ring", m.Payload))
		}
		switch {
		case p.role == irsCandidate && token.Hop == p.ringSize:
			// Our own token made it all the way around: we were the
			// phase's unique candidate.
			p.role = irsLeader
			ctx.StopNetwork("leader elected")
		case p.role == irsCandidate:
			// Foreign token: at least two candidates this phase.
			p.collision = true // token purged
		default:
			ctx.Send(p.sendPort, irsToken{Hop: token.Hop + 1})
		}
	}

	// 2. Phase boundary bookkeeping.
	if round%phaseLen == 0 {
		if p.role == irsCandidate {
			// Our token died at another candidate (and theirs possibly at
			// us); the phase failed.
			p.role = irsIdle
			p.collision = false
		}
		if p.role == irsIdle && ctx.Rand().Bool(p.q) {
			p.role = irsCandidate
			p.Phases++
			ctx.Send(p.sendPort, irsToken{Hop: 1})
		}
	}
}

// ItaiRodehSyncResult summarises a synchronous election run.
type ItaiRodehSyncResult struct {
	Elected     bool
	LeaderIndex int
	Leaders     int
	Messages    uint64
	Rounds      int
}

// ItaiRodehSyncConfig configures a synchronous Itai–Rodeh style election
// in the option-struct style shared by every other entry point.
type ItaiRodehSyncConfig struct {
	// N is the ring size (>= 2). When Graph is set, N must be 0 or equal
	// to the graph's size.
	N int
	// Graph optionally replaces the unidirectional ring with any topology
	// embedding a directed Hamiltonian cycle. Nil means topology.Ring(N).
	Graph *topology.Graph
	// Q is the per-phase candidacy probability; 0 means the balanced
	// default 1/n.
	Q float64
	// Seed drives all node randomness.
	Seed uint64
	// MaxRounds bounds the run; 0 means 1000·n.
	MaxRounds int
}

// RunItaiRodehSync elects a leader on an anonymous synchronous ring of
// size n with candidacy probability q (0 means the balanced default 1/n),
// bounding the run to maxRounds (0 means 1000·n).
//
// Deprecated: use RunItaiRodehSyncConfig, which takes the same parameters
// as an option struct and additionally supports non-ring topologies.
func RunItaiRodehSync(n int, q float64, seed uint64, maxRounds int) (ItaiRodehSyncResult, error) {
	return RunItaiRodehSyncConfig(ItaiRodehSyncConfig{N: n, Q: q, Seed: seed, MaxRounds: maxRounds})
}

// RunItaiRodehSyncConfig elects a leader on an anonymous synchronous ring
// (or ring-embeddable topology) per cfg.
func RunItaiRodehSyncConfig(cfg ItaiRodehSyncConfig) (ItaiRodehSyncResult, error) {
	graph, n, ports, err := AsyncRingConfig{N: cfg.N, Graph: cfg.Graph}.resolve()
	if err != nil {
		return ItaiRodehSyncResult{}, err
	}
	q := cfg.Q
	if q == 0 {
		q = 1 / float64(n)
	}
	var buildErr error
	runner, err := syncnet.New(syncnet.Config{
		Graph:     graph,
		Seed:      cfg.Seed,
		Anonymous: true,
	}, func(i int) syncnet.Node {
		node, err := NewItaiRodehSyncNode(n, q)
		if err != nil {
			buildErr = err
			return brokenSyncNode{}
		}
		node.sendPort = sendPortAt(ports, i)
		return node
	})
	if buildErr != nil {
		return ItaiRodehSyncResult{}, buildErr
	}
	if err != nil {
		return ItaiRodehSyncResult{}, err
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 1000 * n
	}
	rounds, err := runner.Run(maxRounds)
	if err != nil {
		return ItaiRodehSyncResult{}, err
	}
	res := ItaiRodehSyncResult{
		LeaderIndex: -1,
		Messages:    runner.Messages(),
		Rounds:      rounds,
	}
	for i := 0; i < runner.N(); i++ {
		node, ok := runner.NodeAt(i).(*ItaiRodehSyncNode)
		if !ok {
			return ItaiRodehSyncResult{}, fmt.Errorf("election: unexpected node type %T", runner.NodeAt(i))
		}
		if node.IsLeader() {
			res.Leaders++
			res.LeaderIndex = i
		}
	}
	res.Elected = res.Leaders > 0
	return res, nil
}

// brokenSyncNode is a placeholder while aborting construction.
type brokenSyncNode struct{}

func (brokenSyncNode) Round(syncnet.NodeContext, int, []syncnet.Message) {}
