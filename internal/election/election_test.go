package election

import (
	"testing"
	"testing/quick"

	"abenet/internal/dist"
	"abenet/internal/faults"
)

func TestItaiRodehSyncElectsOneLeader(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 16, 64} {
		for seed := uint64(0); seed < 10; seed++ {
			res, err := RunItaiRodehSync(n, 0, seed, 0)
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			if !res.Elected || res.Leaders != 1 {
				t.Fatalf("n=%d seed=%d: leaders=%d", n, seed, res.Leaders)
			}
		}
	}
}

func TestItaiRodehSyncLinearMessages(t *testing.T) {
	mean := func(n int) float64 {
		const runs = 40
		total := 0.0
		for seed := uint64(0); seed < runs; seed++ {
			res, err := RunItaiRodehSync(n, 0, seed, 0)
			if err != nil {
				t.Fatal(err)
			}
			total += float64(res.Messages)
		}
		return total / runs
	}
	m16, m128 := mean(16), mean(128)
	if ratio := m128 / m16; ratio > 16 {
		t.Fatalf("sync Itai-Rodeh messages grew %.1fx over 8x size (m16=%.1f, m128=%.1f)", ratio, m16, m128)
	}
}

func TestItaiRodehSyncDeterministic(t *testing.T) {
	a, err := RunItaiRodehSync(16, 0, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunItaiRodehSync(16, 0, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
}

func TestItaiRodehSyncValidation(t *testing.T) {
	if _, err := NewItaiRodehSyncNode(1, 0.5); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := NewItaiRodehSyncNode(4, 0); err == nil {
		t.Fatal("q=0 accepted")
	}
	if _, err := NewItaiRodehSyncNode(4, 1.5); err == nil {
		t.Fatal("q>1 accepted")
	}
	if _, err := RunItaiRodehSync(1, 0, 1, 0); err == nil {
		t.Fatal("run with n=1 accepted")
	}
}

func TestItaiRodehSyncHighQStillTerminates(t *testing.T) {
	// q=1 means every node is a candidate every phase; termination then
	// requires n... it never succeeds for n >= 2 within the round budget.
	_, err := RunItaiRodehSync(4, 1, 1, 200)
	if err == nil {
		t.Fatal("expected round-budget error at q=1 (permanent collisions)")
	}
}

func TestItaiRodehAsyncElectsOneLeader(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 16, 32} {
		for seed := uint64(0); seed < 10; seed++ {
			res, err := RunItaiRodehAsync(AsyncRingConfig{N: n, Seed: seed})
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			if !res.Elected || res.Leaders != 1 {
				t.Fatalf("n=%d seed=%d: leaders=%d", n, seed, res.Leaders)
			}
		}
	}
}

func TestItaiRodehAsyncProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 2 + int(nRaw)%14
		res, err := RunItaiRodehAsync(AsyncRingConfig{N: n, Seed: seed})
		return err == nil && res.Elected && res.Leaders == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestItaiRodehAsyncSuperlinearVsRingSize(t *testing.T) {
	// The classic algorithm is Θ(n log n): growth over 8x size should land
	// clearly above 8x but far below quadratic's 64x.
	mean := func(n int) float64 {
		const runs = 30
		total := 0.0
		for seed := uint64(0); seed < runs; seed++ {
			res, err := RunItaiRodehAsync(AsyncRingConfig{N: n, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			total += float64(res.Messages)
		}
		return total / runs
	}
	m16, m128 := mean(16), mean(128)
	ratio := m128 / m16
	if ratio < 7 || ratio > 40 {
		t.Fatalf("async Itai-Rodeh growth ratio %.1f outside n log n band (m16=%.1f m128=%.1f)", ratio, m16, m128)
	}
}

func TestChangRobertsElectsMaxID(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		res, err := RunChangRoberts(ChangRobertsConfig{N: 16, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Elected || res.Leaders != 1 {
			t.Fatalf("seed=%d: leaders=%d", seed, res.Leaders)
		}
	}
}

func TestChangRobertsArrangementsBracketCost(t *testing.T) {
	// Deterministic unit delays give lockstep token movement, so the
	// classic closed-form counts are exact (random delays perturb them:
	// early stop cuts in-flight tails, overtaking adds passive forwards).
	const n = 64
	runCost := func(a ChangRobertsArrangement) float64 {
		res, err := RunChangRoberts(ChangRobertsConfig{
			N: n, Arrangement: a, Delay: dist.NewDeterministic(1), Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Leaders != 1 {
			t.Fatalf("arrangement %d: leaders=%d", a, res.Leaders)
		}
		return float64(res.Messages)
	}
	best := runCost(ArrangementAscending)
	avg := runCost(ArrangementRandom)
	worst := runCost(ArrangementDescending)
	// Best case: n-1 purged first-hop tokens + the winner's n-long loop.
	if best != 2*n-1 {
		t.Fatalf("best-case messages = %v, want %v", best, 2*n-1)
	}
	// Worst case: sum 1..n = n(n+1)/2.
	if worst != n*(n+1)/2 {
		t.Fatalf("worst-case messages = %v, want %v", worst, n*(n+1)/2)
	}
	if !(best <= avg && avg <= worst) {
		t.Fatalf("cost ordering violated: best %v, avg %v, worst %v", best, avg, worst)
	}
}

func TestChangRobertsWorstCaseQuadratic(t *testing.T) {
	cost := func(n int) float64 {
		res, err := RunChangRoberts(ChangRobertsConfig{N: n, Arrangement: ArrangementDescending, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Messages)
	}
	c16, c64 := cost(16), cost(64)
	// Quadratic: 4x size => ~16x messages.
	if ratio := c64 / c16; ratio < 12 {
		t.Fatalf("worst-case growth ratio %.1f not quadratic", ratio)
	}
}

func TestChangRobertsRobustToDelayShape(t *testing.T) {
	// Correctness must hold for any delay shape; the best-case message
	// count 2n−1 is exact under deterministic delays and a lower bound in
	// general (reordering can only add passive forwards).
	for _, d := range []dist.Dist{dist.NewDeterministic(1), dist.NewExponential(1), dist.ParetoWithMean(1, 2)} {
		res, err := RunChangRoberts(ChangRobertsConfig{N: 32, Arrangement: ArrangementAscending, Delay: d, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Leaders != 1 {
			t.Fatalf("%s: leaders = %d", d.Name(), res.Leaders)
		}
		if res.Messages < 2*32-1 {
			t.Fatalf("%s: messages = %d below the 2n−1 floor", d.Name(), res.Messages)
		}
	}
}

func TestChangRobertsValidation(t *testing.T) {
	if _, err := RunChangRoberts(ChangRobertsConfig{N: 1}); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := RunChangRoberts(ChangRobertsConfig{N: 4, Arrangement: 99}); err == nil {
		t.Fatal("unknown arrangement accepted")
	}
}

func TestIdentityArrangements(t *testing.T) {
	asc, err := identityArrangement(5, ArrangementAscending, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range asc {
		if id != i+1 {
			t.Fatalf("ascending = %v", asc)
		}
	}
	desc, err := identityArrangement(5, ArrangementDescending, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range desc {
		if id != 5-i {
			t.Fatalf("descending = %v", desc)
		}
	}
	rnd, err := identityArrangement(50, ArrangementRandom, 9)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool, 50)
	for _, id := range rnd {
		if id < 1 || id > 50 || seen[id] {
			t.Fatalf("random arrangement invalid: %v", rnd)
		}
		seen[id] = true
	}
}

// TestRunPetersonRejectsFaultPlans pins the engine-level guard: Peterson's
// reliable-FIFO step protocol refuses fault plans even when called below
// the runner layer.
func TestRunPetersonRejectsFaultPlans(t *testing.T) {
	_, err := RunPeterson(ChangRobertsConfig{N: 6, Seed: 1, Faults: &faults.Plan{Loss: 0.1}})
	if err == nil {
		t.Fatal("RunPeterson accepted a fault plan")
	}
}
