package election

import (
	"math"
	"testing"
	"testing/quick"

	"abenet/internal/dist"
)

func TestPetersonElectsOneLeader(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 16, 64} {
		for seed := uint64(0); seed < 10; seed++ {
			res, err := RunPeterson(ChangRobertsConfig{N: n, Seed: seed})
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			if !res.Elected || res.Leaders != 1 {
				t.Fatalf("n=%d seed=%d: leaders=%d", n, seed, res.Leaders)
			}
		}
	}
}

func TestPetersonProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 2 + int(nRaw)%30
		res, err := RunPeterson(ChangRobertsConfig{N: n, Seed: seed})
		return err == nil && res.Leaders == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPetersonWorstCaseNLogN(t *testing.T) {
	// Unlike Chang-Roberts, Peterson's worst case is O(n log n): even on
	// the descending arrangement the cost must stay near 2n·log2(n), far
	// below CR's quadratic n(n+1)/2.
	for _, n := range []int{32, 128} {
		res, err := RunPeterson(ChangRobertsConfig{
			N: n, Arrangement: ArrangementDescending, Delay: dist.NewDeterministic(1), Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		bound := 2 * float64(n) * (math.Log2(float64(n)) + 2)
		if float64(res.Messages) > bound {
			t.Fatalf("n=%d: %d messages exceed the 2n(log n + 2) bound %.0f", n, res.Messages, bound)
		}
		quadratic := float64(n) * float64(n) / 4
		if float64(res.Messages) > quadratic {
			t.Fatalf("n=%d: %d messages is quadratic-ish", n, res.Messages)
		}
	}
}

func TestPetersonBeatsChangRobertsWorstCase(t *testing.T) {
	const n = 64
	peterson, err := RunPeterson(ChangRobertsConfig{
		N: n, Arrangement: ArrangementDescending, Delay: dist.NewDeterministic(1), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := RunChangRoberts(ChangRobertsConfig{
		N: n, Arrangement: ArrangementDescending, Delay: dist.NewDeterministic(1), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if peterson.Messages*2 >= cr.Messages {
		t.Fatalf("Peterson (%d) should be far below CR's worst case (%d)", peterson.Messages, cr.Messages)
	}
}

func TestPetersonLeaderHoldsMaxTID(t *testing.T) {
	// Determinstic delays, ascending ids: the winner must be unique and
	// stable across repeated runs (the algorithm is deterministic).
	a, err := RunPeterson(ChangRobertsConfig{N: 16, Arrangement: ArrangementAscending, Delay: dist.NewDeterministic(1), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPeterson(ChangRobertsConfig{N: 16, Arrangement: ArrangementAscending, Delay: dist.NewDeterministic(1), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.LeaderIndex != b.LeaderIndex {
		t.Fatalf("deterministic Peterson elected different nodes: %d vs %d", a.LeaderIndex, b.LeaderIndex)
	}
}

func TestPetersonValidation(t *testing.T) {
	if _, err := RunPeterson(ChangRobertsConfig{N: 1}); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := RunPeterson(ChangRobertsConfig{N: 4, Arrangement: 99}); err == nil {
		t.Fatal("bad arrangement accepted")
	}
}

func TestPetersonRandomDelaysStillSafe(t *testing.T) {
	// FIFO links with random delays: reordering between rings segments is
	// still possible in global time, but per-link FIFO is what the
	// algorithm needs.
	for seed := uint64(0); seed < 10; seed++ {
		res, err := RunPeterson(ChangRobertsConfig{N: 24, Delay: dist.NewExponential(1), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Leaders != 1 {
			t.Fatalf("seed %d: leaders=%d", seed, res.Leaders)
		}
	}
}
