package election

import (
	"fmt"

	"abenet/internal/channel"
	"abenet/internal/clock"
	"abenet/internal/dist"
	"abenet/internal/faults"
	"abenet/internal/network"
	"abenet/internal/probe"
	"abenet/internal/rng"
	"abenet/internal/simtime"
	"abenet/internal/topology"
)

// crMessage carries a candidate identity around the ring.
type crMessage struct {
	ID int
}

// ChangRobertsNode is the Chang–Roberts election for asynchronous
// unidirectional rings with unique identities: every node starts as a
// candidate and circulates its identity; identities smaller than the
// receiver's are purged, larger ones turn the receiver passive and are
// forwarded, and a node receiving its own identity wins.
//
// Average message complexity over random identity arrangements is
// Θ(n log n); the worst case (identities increasing around the ring) is
// Θ(n²). It contrasts the paper's anonymous Θ(n) algorithm with what
// unique identities alone achieve on the same asynchronous ring.
type ChangRobertsNode struct {
	id       int
	sendPort int
	active   bool
	leader   bool
}

var _ network.Node = (*ChangRobertsNode)(nil)

// NewChangRobertsNode returns a candidate node with the given unique
// identity.
func NewChangRobertsNode(id int) *ChangRobertsNode {
	return &ChangRobertsNode{id: id, active: true}
}

// IsLeader reports whether this node won.
func (p *ChangRobertsNode) IsLeader() bool { return p.leader }

// Init implements network.Node: announce candidacy.
func (p *ChangRobertsNode) Init(ctx *network.Context) {
	ctx.Send(p.sendPort, crMessage{ID: p.id})
}

// OnTimer implements network.Node; the algorithm is purely message-driven.
func (p *ChangRobertsNode) OnTimer(*network.Context, int) {}

// OnMessage implements network.Node.
func (p *ChangRobertsNode) OnMessage(ctx *network.Context, _ int, payload any) {
	m, ok := payload.(crMessage)
	if !ok {
		panic(fmt.Sprintf("election: foreign payload %T on Chang-Roberts ring", payload))
	}
	switch {
	case !p.active:
		ctx.Send(p.sendPort, m)
	case m.ID > p.id:
		p.active = false
		ctx.Send(p.sendPort, m)
	case m.ID == p.id:
		p.leader = true
		ctx.StopNetwork("leader elected")
	default:
		// Purge smaller identities.
	}
}

// ChangRobertsArrangement selects how identities are laid out on the ring.
type ChangRobertsArrangement int

// Identity arrangements: random permutations give the Θ(n log n) average
// case. Ascending identities (in the direction of travel) are the Θ(n)
// best case — every token dies at its first hop. Descending identities are
// the Θ(n²) worst case — the token with identity k survives all the way to
// the maximum.
const (
	ArrangementRandom ChangRobertsArrangement = iota + 1
	ArrangementAscending
	ArrangementDescending
)

// ChangRobertsConfig configures a Chang–Roberts (or Peterson) run.
type ChangRobertsConfig struct {
	N           int                     // ring size; with Graph set it must be 0 or the graph's size
	Graph       *topology.Graph         // optional non-ring topology (Hamiltonian embedding); nil = Ring(N)
	Arrangement ChangRobertsArrangement // 0 means ArrangementRandom
	Delay       dist.Dist               // nil means Exponential(1)
	Links       channel.Factory         // optional override of Delay (FIFO discipline is the caller's concern)
	Clocks      clock.Model             // nil means perfect clocks
	Processing  dist.Dist               // nil means instantaneous
	Seed        uint64
	Scheduler   string         // kernel event-queue implementation ("heap", "calendar"); "" = heap, byte-identical either way
	Horizon     simtime.Time   // virtual-time bound; 0 means unbounded (fault plans should set it)
	MaxEvents   uint64         // 0 means 50e6
	Tracer      network.Tracer // optional run observer
	Faults      *faults.Plan   // optional fault injection; nil changes nothing
	Observe     *probe.Config  // optional time-series sampling; never perturbs the schedule
}

// asyncRing converts to the shared resolution config.
func (cfg ChangRobertsConfig) asyncRing() AsyncRingConfig {
	return AsyncRingConfig{N: cfg.N, Graph: cfg.Graph}
}

// RunChangRoberts runs the Chang–Roberts election on a unidirectional ring
// with unique identities.
func RunChangRoberts(cfg ChangRobertsConfig) (AsyncRingResult, error) {
	graph, n, ports, err := cfg.asyncRing().resolve()
	if err != nil {
		return AsyncRingResult{}, err
	}
	links := cfg.Links
	if links == nil {
		delay := cfg.Delay
		if delay == nil {
			delay = dist.NewExponential(1)
		}
		links = channel.RandomDelayFactory(delay)
	}
	maxEvents := cfg.MaxEvents
	if maxEvents == 0 {
		maxEvents = 50_000_000
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = simtime.Forever
	}
	ids, err := identityArrangement(n, cfg.Arrangement, cfg.Seed)
	if err != nil {
		return AsyncRingResult{}, err
	}

	nodes := make([]*ChangRobertsNode, n)
	net, err := network.New(network.Config{
		Graph:      graph,
		Links:      links,
		Clocks:     cfg.Clocks,
		Processing: cfg.Processing,
		Seed:       cfg.Seed,
		Scheduler:  cfg.Scheduler,
		Tracer:     cfg.Tracer,
		Faults:     cfg.Faults,
	}, func(i int) network.Node {
		nodes[i] = NewChangRobertsNode(ids[i])
		nodes[i].sendPort = sendPortAt(ports, i)
		return nodes[i]
	})
	if err != nil {
		return AsyncRingResult{}, err
	}
	collector, err := installProbe(net, cfg.Observe, ringProbe{
		n:        n,
		isActive: func(i int) bool { return nodes[i].active },
		isLeader: func(i int) bool { return nodes[i].leader },
	})
	if err != nil {
		return AsyncRingResult{}, err
	}
	if err := net.Run(horizon, maxEvents); err != nil {
		return AsyncRingResult{}, err
	}
	res := AsyncRingResult{LeaderIndex: -1}
	for i, node := range nodes {
		if node.IsLeader() {
			res.Leaders++
			res.LeaderIndex = i
		}
	}
	res.Elected = res.Leaders > 0
	res.Messages = net.Metrics().MessagesSent
	res.Time = float64(net.Now())
	res.Events = net.Kernel().Executed()
	res.Faults = net.FaultTelemetry()
	res.Series = finishProbe(net, collector)
	return res, nil
}

func identityArrangement(n int, a ChangRobertsArrangement, seed uint64) ([]int, error) {
	ids := make([]int, n)
	switch a {
	case ArrangementRandom, 0:
		perm := rng.New(seed).Derive("cr-ids").Perm(n)
		for i, p := range perm {
			ids[i] = p + 1
		}
	case ArrangementAscending:
		for i := range ids {
			ids[i] = i + 1
		}
	case ArrangementDescending:
		for i := range ids {
			ids[i] = n - i
		}
	default:
		return nil, fmt.Errorf("election: unknown arrangement %d", a)
	}
	return ids, nil
}
