package election

import (
	"fmt"

	"abenet/internal/channel"
	"abenet/internal/dist"
	"abenet/internal/network"
	"abenet/internal/simtime"
)

// petersonMessage carries a temporary identity around the ring. Step
// distinguishes the phase's first relay (the nearest active predecessor's
// identity) from the second (the second-nearest's).
type petersonMessage struct {
	Step int // 1 or 2
	TID  int
}

// PetersonNode is Peterson's unidirectional election (1982): a
// deterministic O(n log n) worst-case algorithm for asynchronous
// unidirectional rings with unique identities and FIFO channels.
//
// Every node starts active with its identity as temporary identity t. In
// each phase an active node sends ⟨1, t⟩, learns the nearest active
// predecessor's identity t1 (relayed by passive nodes), forwards it as
// ⟨2, t1⟩, and learns the second-nearest's identity t2. If t1 is a local
// maximum (t1 > t and t1 > t2) the node stays active adopting t1;
// otherwise it turns passive and relays from then on. A node that receives
// its own temporary identity as t1 is the unique remaining active node and
// wins. Each phase at least halves the actives and costs at most 2n
// messages, giving the 2n·log n worst-case bound — the deterministic
// counterpart to Chang–Roberts' average case in experiment E7.
type PetersonNode struct {
	id       int
	sendPort int
	active   bool
	leader   bool

	tid    int
	gotOne bool
	t1     int
	// Phases counts how many phases this node remained active.
	Phases int
}

var _ network.Node = (*PetersonNode)(nil)

// NewPetersonNode returns an active node with the given unique identity.
func NewPetersonNode(id int) *PetersonNode {
	return &PetersonNode{id: id, active: true, tid: id}
}

// IsLeader reports whether this node won.
func (p *PetersonNode) IsLeader() bool { return p.leader }

// Init implements network.Node: open phase one.
func (p *PetersonNode) Init(ctx *network.Context) {
	p.Phases = 1
	ctx.Send(p.sendPort, petersonMessage{Step: 1, TID: p.tid})
}

// OnTimer implements network.Node; Peterson is message-driven.
func (p *PetersonNode) OnTimer(*network.Context, int) {}

// OnMessage implements network.Node.
func (p *PetersonNode) OnMessage(ctx *network.Context, _ int, payload any) {
	m, ok := payload.(petersonMessage)
	if !ok {
		panic(fmt.Sprintf("election: foreign payload %T on Peterson ring", payload))
	}
	if !p.active {
		ctx.Send(p.sendPort, m)
		return
	}
	switch m.Step {
	case 1:
		if m.TID == p.tid {
			// Our own temporary identity travelled the whole ring: we are
			// the last active node.
			p.leader = true
			ctx.StopNetwork("leader elected")
			return
		}
		p.t1 = m.TID
		p.gotOne = true
		ctx.Send(p.sendPort, petersonMessage{Step: 2, TID: m.TID})
	case 2:
		if !p.gotOne {
			// FIFO channels and in-order relaying make step-2 before
			// step-1 impossible; seeing it means the channel assumption
			// was violated.
			panic("election: Peterson received step 2 before step 1 (non-FIFO channel?)")
		}
		p.gotOne = false
		if p.t1 > p.tid && p.t1 > m.TID {
			p.tid = p.t1
			p.Phases++
			ctx.Send(p.sendPort, petersonMessage{Step: 1, TID: p.tid})
		} else {
			p.active = false
		}
	default:
		panic(fmt.Sprintf("election: Peterson message step %d", m.Step))
	}
}

// RunPeterson runs Peterson's election on a unidirectional ring with
// unique identities and FIFO links. Fault plans are rejected at this
// layer too (not just in the runner): the step protocol hard-fails on the
// gaps and overtakes every fault axis produces, so running one would
// report a crash as a measurement.
func RunPeterson(cfg ChangRobertsConfig) (AsyncRingResult, error) {
	if cfg.Faults != nil {
		return AsyncRingResult{}, fmt.Errorf("election: Peterson requires reliable FIFO channels and supports no fault injection")
	}
	graph, n, ports, err := cfg.asyncRing().resolve()
	if err != nil {
		return AsyncRingResult{}, err
	}
	links := cfg.Links
	if links == nil {
		delay := cfg.Delay
		if delay == nil {
			delay = dist.NewExponential(1)
		}
		links = channel.FIFOFactory(delay) // Peterson requires FIFO
	}
	maxEvents := cfg.MaxEvents
	if maxEvents == 0 {
		maxEvents = 50_000_000
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = simtime.Forever
	}
	ids, err := identityArrangement(n, cfg.Arrangement, cfg.Seed)
	if err != nil {
		return AsyncRingResult{}, err
	}

	nodes := make([]*PetersonNode, n)
	net, err := network.New(network.Config{
		Graph:      graph,
		Links:      links,
		Clocks:     cfg.Clocks,
		Processing: cfg.Processing,
		Seed:       cfg.Seed,
		Scheduler:  cfg.Scheduler,
		Tracer:     cfg.Tracer,
		Faults:     cfg.Faults,
	}, func(i int) network.Node {
		nodes[i] = NewPetersonNode(ids[i])
		nodes[i].sendPort = sendPortAt(ports, i)
		return nodes[i]
	})
	if err != nil {
		return AsyncRingResult{}, err
	}
	collector, err := installProbe(net, cfg.Observe, ringProbe{
		n:        n,
		isActive: func(i int) bool { return nodes[i].active },
		isLeader: func(i int) bool { return nodes[i].leader },
	})
	if err != nil {
		return AsyncRingResult{}, err
	}
	if err := net.Run(horizon, maxEvents); err != nil {
		return AsyncRingResult{}, err
	}
	res := AsyncRingResult{LeaderIndex: -1}
	for i, node := range nodes {
		if node.IsLeader() {
			res.Leaders++
			res.LeaderIndex = i
		}
	}
	res.Elected = res.Leaders > 0
	res.Messages = net.Metrics().MessagesSent
	res.Time = float64(net.Now())
	res.Events = net.Kernel().Executed()
	res.Faults = net.FaultTelemetry()
	res.Series = finishProbe(net, collector)
	return res, nil
}
