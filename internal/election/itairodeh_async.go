package election

import (
	"fmt"

	"abenet/internal/channel"
	"abenet/internal/clock"
	"abenet/internal/dist"
	"abenet/internal/faults"
	"abenet/internal/network"
	"abenet/internal/probe"
	"abenet/internal/simtime"
	"abenet/internal/topology"
)

// iraMessage is the Itai–Rodeh token: a random identity, a hop counter, the
// election round it belongs to, and a dirty bit marking an identity clash.
type iraMessage struct {
	ID    int
	Hop   int
	Round int
	Dirty bool
}

// HopCount exposes the hop counter to the causal tracer (trace.HopCarrier).
func (m iraMessage) HopCount() int { return m.Hop }

// ItaiRodehAsyncNode is the classic Itai–Rodeh election for anonymous
// asynchronous unidirectional rings of known size n with FIFO channels.
//
// Every node starts active in round 1 with a random identity from {1..n}
// and sends ⟨id, 1, round, clean⟩. An active node purges tokens smaller
// than its own (by round, then id), turns passive on larger ones, marks
// tokens carrying its own identity dirty, and when its own token returns
// (hop = n) either wins (clean) or draws a fresh identity and starts the
// next round (dirty). Expected message complexity is Θ(n log n) — the
// anonymous asynchronous baseline the ABE algorithm's Θ(n) is measured
// against. FIFO links are required for correctness.
type ItaiRodehAsyncNode struct {
	ringSize int
	sendPort int

	active bool
	leader bool
	id     int
	round  int

	// RoundsStarted counts identity draws, for the experiment harness.
	RoundsStarted int
}

var _ network.Node = (*ItaiRodehAsyncNode)(nil)

// NewItaiRodehAsyncNode returns a node for rings of known size n.
func NewItaiRodehAsyncNode(n int) (*ItaiRodehAsyncNode, error) {
	if n < 2 {
		return nil, fmt.Errorf("election: ring size %d must be at least 2", n)
	}
	return &ItaiRodehAsyncNode{ringSize: n, active: true}, nil
}

// IsLeader reports whether this node won.
func (p *ItaiRodehAsyncNode) IsLeader() bool { return p.leader }

// Init implements network.Node: start round 1 with a fresh identity.
func (p *ItaiRodehAsyncNode) Init(ctx *network.Context) {
	p.startRound(ctx)
}

func (p *ItaiRodehAsyncNode) startRound(ctx *network.Context) {
	p.round++
	p.RoundsStarted++
	p.id = 1 + ctx.Rand().Intn(p.ringSize)
	ctx.Send(p.sendPort, iraMessage{ID: p.id, Hop: 1, Round: p.round, Dirty: false})
}

// OnTimer implements network.Node; the algorithm is purely message-driven.
func (p *ItaiRodehAsyncNode) OnTimer(*network.Context, int) {}

// OnMessage implements network.Node.
func (p *ItaiRodehAsyncNode) OnMessage(ctx *network.Context, _ int, payload any) {
	m, ok := payload.(iraMessage)
	if !ok {
		panic(fmt.Sprintf("election: foreign payload %T on Itai-Rodeh ring", payload))
	}
	if !p.active {
		ctx.Send(p.sendPort, iraMessage{ID: m.ID, Hop: m.Hop + 1, Round: m.Round, Dirty: m.Dirty})
		return
	}
	// Active: compare (round, id) lexicographically.
	switch {
	case m.Round > p.round || (m.Round == p.round && m.ID > p.id):
		p.active = false
		ctx.Send(p.sendPort, iraMessage{ID: m.ID, Hop: m.Hop + 1, Round: m.Round, Dirty: m.Dirty})
	case m.Round < p.round || (m.Round == p.round && m.ID < p.id):
		// Purge: our token dominates this one.
	case m.Hop == p.ringSize:
		// Our own token came home.
		if m.Dirty {
			p.startRound(ctx)
		} else {
			p.leader = true
			ctx.StopNetwork("leader elected")
		}
	default:
		// Same round and identity but not ours (hop < n): an identity
		// clash; mark it dirty and pass it on.
		ctx.Send(p.sendPort, iraMessage{ID: m.ID, Hop: m.Hop + 1, Round: m.Round, Dirty: true})
	}
}

// AsyncRingConfig configures an asynchronous ring election baseline run.
type AsyncRingConfig struct {
	// N is the ring size. When Graph is set, N must be 0 or equal to the
	// graph's size.
	N int
	// Graph optionally replaces the unidirectional ring with any topology
	// embedding a directed Hamiltonian cycle; the election runs along the
	// cycle. Nil means topology.Ring(N).
	Graph *topology.Graph
	// Delay is the link delay distribution; nil means Exponential(1),
	// matching the ABE experiments.
	Delay dist.Dist
	// Links optionally overrides Delay with a full link factory. The
	// algorithm's channel discipline (FIFO for Itai–Rodeh async and
	// Peterson) is then the caller's responsibility.
	Links channel.Factory
	// Clocks is the local clock model; nil means perfect clocks.
	Clocks clock.Model
	// Processing is the event-processing time model (γ); nil means
	// instantaneous.
	Processing dist.Dist
	// Seed drives the run.
	Seed uint64
	// Scheduler selects the kernel's event-queue implementation ("heap",
	// "calendar"); empty means the default heap. Byte-identical either way.
	Scheduler string
	// Horizon bounds virtual time; 0 means unbounded. Fault-injected runs
	// can deadlock (every token lost), so they should set it.
	Horizon simtime.Time
	// MaxEvents guards against livelock; 0 means 50e6.
	MaxEvents uint64
	// Tracer optionally observes the run; nil disables tracing.
	Tracer network.Tracer
	// Faults optionally injects message faults, node churn and link
	// outages; nil keeps the run byte-identical to a fault-free build.
	Faults *faults.Plan
	// Observe optionally samples a time series during the run (see
	// internal/probe); sampling never perturbs the schedule. Nil disables
	// collection.
	Observe *probe.Config
}

// resolve normalises the config into a concrete graph, ring size and
// per-node successor ports (nil on the natural ring).
func (cfg AsyncRingConfig) resolve() (*topology.Graph, int, []int, error) {
	if cfg.Graph == nil {
		if cfg.N < 2 {
			return nil, 0, nil, fmt.Errorf("election: ring size %d must be at least 2", cfg.N)
		}
		return topology.Ring(cfg.N), cfg.N, nil, nil
	}
	n := cfg.Graph.N()
	if cfg.N != 0 && cfg.N != n {
		return nil, 0, nil, fmt.Errorf("election: N = %d disagrees with graph size %d", cfg.N, n)
	}
	if n < 2 {
		return nil, 0, nil, fmt.Errorf("election: ring size %d must be at least 2", n)
	}
	ports, err := cfg.Graph.RingEmbedding()
	if err != nil {
		return nil, 0, nil, fmt.Errorf("election: %w", err)
	}
	return cfg.Graph, n, ports, nil
}

// sendPortAt returns the successor port for node i (0 on natural rings).
func sendPortAt(ports []int, i int) int {
	if ports == nil {
		return 0
	}
	return ports[i]
}

// AsyncRingResult summarises an asynchronous baseline run.
type AsyncRingResult struct {
	Elected     bool
	LeaderIndex int
	Leaders     int
	Messages    uint64
	Time        float64
	// Events is the number of kernel events the run executed (a batch of
	// same-instant deliveries counts as one event).
	Events uint64
	// Faults is the fault-injection telemetry, nil without a fault plan.
	Faults *faults.Telemetry
	// Series is the sampled time series, nil without an observe config.
	Series *probe.Series
}

// RunItaiRodehAsync runs the asynchronous Itai–Rodeh election on an
// anonymous unidirectional ring with FIFO links (the algorithm's channel
// assumption).
func RunItaiRodehAsync(cfg AsyncRingConfig) (AsyncRingResult, error) {
	graph, n, ports, err := cfg.resolve()
	if err != nil {
		return AsyncRingResult{}, err
	}
	links := cfg.Links
	if links == nil {
		delay := cfg.Delay
		if delay == nil {
			delay = dist.NewExponential(1)
		}
		links = channel.FIFOFactory(delay)
	}
	maxEvents := cfg.MaxEvents
	if maxEvents == 0 {
		maxEvents = 50_000_000
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = simtime.Forever
	}
	nodes := make([]*ItaiRodehAsyncNode, n)
	var buildErr error
	net, err := network.New(network.Config{
		Graph:      graph,
		Links:      links,
		Clocks:     cfg.Clocks,
		Processing: cfg.Processing,
		Seed:       cfg.Seed,
		Scheduler:  cfg.Scheduler,
		Anonymous:  true,
		Tracer:     cfg.Tracer,
		Faults:     cfg.Faults,
	}, func(i int) network.Node {
		node, err := NewItaiRodehAsyncNode(n)
		if err != nil {
			buildErr = err
			return brokenAsyncNode{}
		}
		node.sendPort = sendPortAt(ports, i)
		nodes[i] = node
		return node
	})
	if buildErr != nil {
		return AsyncRingResult{}, buildErr
	}
	if err != nil {
		return AsyncRingResult{}, err
	}
	collector, err := installProbe(net, cfg.Observe, ringProbe{
		n:        n,
		isActive: func(i int) bool { return nodes[i].active },
		isLeader: func(i int) bool { return nodes[i].leader },
	})
	if err != nil {
		return AsyncRingResult{}, err
	}
	if err := net.Run(horizon, maxEvents); err != nil {
		return AsyncRingResult{}, err
	}
	res := AsyncRingResult{LeaderIndex: -1}
	for i, node := range nodes {
		if node.IsLeader() {
			res.Leaders++
			res.LeaderIndex = i
		}
	}
	res.Elected = res.Leaders > 0
	res.Messages = net.Metrics().MessagesSent
	res.Time = float64(net.Now())
	res.Events = net.Kernel().Executed()
	res.Faults = net.FaultTelemetry()
	res.Series = finishProbe(net, collector)
	return res, nil
}

// brokenAsyncNode is a placeholder while aborting construction.
type brokenAsyncNode struct{}

func (brokenAsyncNode) Init(*network.Context)                {}
func (brokenAsyncNode) OnMessage(*network.Context, int, any) {}
func (brokenAsyncNode) OnTimer(*network.Context, int)        {}
