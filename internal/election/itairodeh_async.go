package election

import (
	"fmt"

	"abenet/internal/channel"
	"abenet/internal/dist"
	"abenet/internal/network"
	"abenet/internal/simtime"
	"abenet/internal/topology"
)

// iraMessage is the Itai–Rodeh token: a random identity, a hop counter, the
// election round it belongs to, and a dirty bit marking an identity clash.
type iraMessage struct {
	ID    int
	Hop   int
	Round int
	Dirty bool
}

// ItaiRodehAsyncNode is the classic Itai–Rodeh election for anonymous
// asynchronous unidirectional rings of known size n with FIFO channels.
//
// Every node starts active in round 1 with a random identity from {1..n}
// and sends ⟨id, 1, round, clean⟩. An active node purges tokens smaller
// than its own (by round, then id), turns passive on larger ones, marks
// tokens carrying its own identity dirty, and when its own token returns
// (hop = n) either wins (clean) or draws a fresh identity and starts the
// next round (dirty). Expected message complexity is Θ(n log n) — the
// anonymous asynchronous baseline the ABE algorithm's Θ(n) is measured
// against. FIFO links are required for correctness.
type ItaiRodehAsyncNode struct {
	ringSize int

	active bool
	leader bool
	id     int
	round  int

	// RoundsStarted counts identity draws, for the experiment harness.
	RoundsStarted int
}

var _ network.Node = (*ItaiRodehAsyncNode)(nil)

// NewItaiRodehAsyncNode returns a node for rings of known size n.
func NewItaiRodehAsyncNode(n int) (*ItaiRodehAsyncNode, error) {
	if n < 2 {
		return nil, fmt.Errorf("election: ring size %d must be at least 2", n)
	}
	return &ItaiRodehAsyncNode{ringSize: n, active: true}, nil
}

// IsLeader reports whether this node won.
func (p *ItaiRodehAsyncNode) IsLeader() bool { return p.leader }

// Init implements network.Node: start round 1 with a fresh identity.
func (p *ItaiRodehAsyncNode) Init(ctx *network.Context) {
	p.startRound(ctx)
}

func (p *ItaiRodehAsyncNode) startRound(ctx *network.Context) {
	p.round++
	p.RoundsStarted++
	p.id = 1 + ctx.Rand().Intn(p.ringSize)
	ctx.Send(0, iraMessage{ID: p.id, Hop: 1, Round: p.round, Dirty: false})
}

// OnTimer implements network.Node; the algorithm is purely message-driven.
func (p *ItaiRodehAsyncNode) OnTimer(*network.Context, int) {}

// OnMessage implements network.Node.
func (p *ItaiRodehAsyncNode) OnMessage(ctx *network.Context, _ int, payload any) {
	m, ok := payload.(iraMessage)
	if !ok {
		panic(fmt.Sprintf("election: foreign payload %T on Itai-Rodeh ring", payload))
	}
	if !p.active {
		ctx.Send(0, iraMessage{ID: m.ID, Hop: m.Hop + 1, Round: m.Round, Dirty: m.Dirty})
		return
	}
	// Active: compare (round, id) lexicographically.
	switch {
	case m.Round > p.round || (m.Round == p.round && m.ID > p.id):
		p.active = false
		ctx.Send(0, iraMessage{ID: m.ID, Hop: m.Hop + 1, Round: m.Round, Dirty: m.Dirty})
	case m.Round < p.round || (m.Round == p.round && m.ID < p.id):
		// Purge: our token dominates this one.
	case m.Hop == p.ringSize:
		// Our own token came home.
		if m.Dirty {
			p.startRound(ctx)
		} else {
			p.leader = true
			ctx.StopNetwork("leader elected")
		}
	default:
		// Same round and identity but not ours (hop < n): an identity
		// clash; mark it dirty and pass it on.
		ctx.Send(0, iraMessage{ID: m.ID, Hop: m.Hop + 1, Round: m.Round, Dirty: true})
	}
}

// AsyncRingConfig configures an asynchronous ring election baseline run.
type AsyncRingConfig struct {
	// N is the ring size.
	N int
	// Delay is the link delay distribution; nil means Exponential(1),
	// matching the ABE experiments.
	Delay dist.Dist
	// Seed drives the run.
	Seed uint64
	// MaxEvents guards against livelock; 0 means 50e6.
	MaxEvents uint64
}

// AsyncRingResult summarises an asynchronous baseline run.
type AsyncRingResult struct {
	Elected     bool
	LeaderIndex int
	Leaders     int
	Messages    uint64
	Time        float64
}

// RunItaiRodehAsync runs the asynchronous Itai–Rodeh election on an
// anonymous unidirectional ring with FIFO links (the algorithm's channel
// assumption).
func RunItaiRodehAsync(cfg AsyncRingConfig) (AsyncRingResult, error) {
	if cfg.N < 2 {
		return AsyncRingResult{}, fmt.Errorf("election: ring size %d must be at least 2", cfg.N)
	}
	delay := cfg.Delay
	if delay == nil {
		delay = dist.NewExponential(1)
	}
	maxEvents := cfg.MaxEvents
	if maxEvents == 0 {
		maxEvents = 50_000_000
	}
	nodes := make([]*ItaiRodehAsyncNode, cfg.N)
	var buildErr error
	net, err := network.New(network.Config{
		Graph:     topology.Ring(cfg.N),
		Links:     channel.FIFOFactory(delay),
		Seed:      cfg.Seed,
		Anonymous: true,
	}, func(i int) network.Node {
		node, err := NewItaiRodehAsyncNode(cfg.N)
		if err != nil {
			buildErr = err
			return brokenAsyncNode{}
		}
		nodes[i] = node
		return node
	})
	if buildErr != nil {
		return AsyncRingResult{}, buildErr
	}
	if err != nil {
		return AsyncRingResult{}, err
	}
	if err := net.Run(simtime.Forever, maxEvents); err != nil {
		return AsyncRingResult{}, err
	}
	res := AsyncRingResult{LeaderIndex: -1}
	for i, node := range nodes {
		if node.IsLeader() {
			res.Leaders++
			res.LeaderIndex = i
		}
	}
	res.Elected = res.Leaders > 0
	res.Messages = net.Metrics().MessagesSent
	res.Time = float64(net.Now())
	return res, nil
}

// brokenAsyncNode is a placeholder while aborting construction.
type brokenAsyncNode struct{}

func (brokenAsyncNode) Init(*network.Context)                {}
func (brokenAsyncNode) OnMessage(*network.Context, int, any) {}
func (brokenAsyncNode) OnTimer(*network.Context, int)        {}
