// Package faults describes deterministic fault and churn injection for
// simulated network runs.
//
// The ABE model (Definition 1) bounds the *expectation* of delays but the
// motivating scenarios — lossy radio links, congested routers, ad-hoc
// networks — also lose messages, crash nodes and partition segments. A
// Plan states such faults once, declaratively, and the network layer
// injects them during the run:
//
//   - stochastic link faults: per-message loss, duplication and extra-delay
//     (reorder) probabilities, applied by an interceptor wrapped around the
//     run's link factory (channel.ImpairedFactory);
//   - stochastic node churn: exponential crash and recovery rates — with a
//     recovery rate the model is crash-recovery (the node restarts with
//     fresh protocol state, i.e. churn); without one it is crash-stop;
//   - scripted events: crash node 3 at t = 40, take a link down during
//     [t1, t2], partition {0..3} | {4..7} and heal it later.
//
// Everything is sampled from the run's splittable RNG, so a run remains a
// pure function of (environment, plan, seed): two runs with the same triple
// produce byte-identical reports, fault telemetry included.
package faults

import (
	"fmt"
	"math"
	"sort"

	"abenet/internal/byzantine"
	"abenet/internal/dist"
)

// EventKind identifies a scripted fault event.
type EventKind int

// The scripted event kinds.
const (
	// KindCrash takes a node down at Event.At. Its timers and deliveries
	// are suppressed while down.
	KindCrash EventKind = iota + 1
	// KindRecover brings a crashed node back as a *fresh* protocol
	// instance (churn: the restarted process has no memory).
	KindRecover
	// KindLinkDown takes the directed edge From→To down: messages sent on
	// it while down are dropped (messages already in flight still arrive).
	KindLinkDown
	// KindLinkUp restores the directed edge From→To.
	KindLinkUp
	// KindPartition cuts every edge between Group and its complement.
	KindPartition
	// KindHeal restores every edge between Group and its complement.
	KindHeal
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindRecover:
		return "recover"
	case KindLinkDown:
		return "link-down"
	case KindLinkUp:
		return "link-up"
	case KindPartition:
		return "partition"
	case KindHeal:
		return "heal"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one scripted fault at a virtual instant. Build events with the
// constructors (CrashAt, LinkDownAt, PartitionDuring, ...); the zero value
// is invalid.
type Event struct {
	// At is the virtual time of the event (>= 0).
	At float64
	// Kind selects what happens.
	Kind EventKind
	// Node is the target of KindCrash / KindRecover.
	Node int
	// From, To name the directed edge of KindLinkDown / KindLinkUp.
	From, To int
	// Group is one side of the cut for KindPartition / KindHeal.
	Group []int
}

// CrashAt scripts a crash of node at time t.
func CrashAt(t float64, node int) Event { return Event{At: t, Kind: KindCrash, Node: node} }

// RecoverAt scripts a recovery (fresh restart) of node at time t.
func RecoverAt(t float64, node int) Event { return Event{At: t, Kind: KindRecover, Node: node} }

// LinkDownAt scripts the directed edge from→to going down at time t.
func LinkDownAt(t float64, from, to int) Event {
	return Event{At: t, Kind: KindLinkDown, From: from, To: to}
}

// LinkUpAt scripts the directed edge from→to coming back at time t.
func LinkUpAt(t float64, from, to int) Event {
	return Event{At: t, Kind: KindLinkUp, From: from, To: to}
}

// PartitionDuring scripts a partition separating group from the rest of
// the network during [start, end): both the cut and the heal. It panics
// unless start < end — swapped arguments would silently script a
// permanent partition (the heal would fire first, as a no-op).
func PartitionDuring(start, end float64, group ...int) []Event {
	if !(start < end) {
		panic(fmt.Sprintf("faults: partition window [%g, %g) is empty or inverted", start, end))
	}
	return []Event{
		{At: start, Kind: KindPartition, Group: group},
		{At: end, Kind: KindHeal, Group: group},
	}
}

// Plan is a complete fault-injection schedule for one run. The zero value
// injects nothing; a nil *Plan disables the subsystem entirely (runs are
// byte-identical to a plan-less build).
type Plan struct {
	// Loss is the per-message drop probability on every link, applied
	// before the link's own delivery discipline — so a lost message is
	// lost even on an ARQ link (e.g. the sender died mid-transmission).
	Loss float64
	// Duplicate is the per-message duplication probability: the copy takes
	// an independently sampled delay, so duplicates also reorder.
	Duplicate float64
	// Reorder is the per-message probability of an extra hold-back delay
	// drawn from ReorderDelay, forcing overtakes even on FIFO links.
	Reorder float64
	// ReorderDelay is the hold-back distribution; nil means Exponential(1).
	ReorderDelay dist.Dist

	// CrashRate is each node's exponential crash rate (expected time to
	// crash = 1/CrashRate while up). 0 disables stochastic crashes.
	CrashRate float64
	// RecoverRate is a stochastically crashed node's exponential recovery
	// rate. 0 means crash-stop: stochastically crashed nodes never
	// return. With a positive rate the model is crash-recovery churn —
	// the node restarts as a fresh protocol instance. The rate applies
	// only to outages the stochastic process caused; scripted crashes
	// recover only via a scripted RecoverAt, so scripted outage windows
	// are always exactly as written.
	RecoverRate float64

	// Events is the scripted fault timeline. Order does not matter; ties
	// at the same instant apply in slice order.
	Events []Event
}

// HasLinkFaults reports whether the plan injects per-message link faults
// (the part implemented by channel.ImpairedFactory).
func (p *Plan) HasLinkFaults() bool {
	return p != nil && (p.Loss > 0 || p.Duplicate > 0 || p.Reorder > 0)
}

// HasNodeFaults reports whether the plan can take nodes down (scripted or
// stochastic).
func (p *Plan) HasNodeFaults() bool {
	if p == nil {
		return false
	}
	if p.CrashRate > 0 {
		return true
	}
	for _, ev := range p.Events {
		if ev.Kind == KindCrash || ev.Kind == KindRecover {
			return true
		}
	}
	return false
}

// SortedEvents returns the scripted events ordered by (At, original
// position) without mutating the plan.
func (p *Plan) SortedEvents() []Event {
	if p == nil || len(p.Events) == 0 {
		return nil
	}
	out := make([]Event, len(p.Events))
	copy(out, p.Events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Validate checks the plan against a network of n nodes. It returns an
// error describing the first violated constraint, or nil.
func (p *Plan) Validate(n int) error {
	if p == nil {
		return nil
	}
	for _, pr := range []struct {
		name string
		v    float64
	}{{"Loss", p.Loss}, {"Duplicate", p.Duplicate}, {"Reorder", p.Reorder}} {
		if math.IsNaN(pr.v) || pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("faults: %s probability %g outside [0, 1]", pr.name, pr.v)
		}
	}
	if p.Loss == 1 {
		return fmt.Errorf("faults: Loss = 1 drops every message; no protocol can run")
	}
	for _, r := range []struct {
		name string
		v    float64
	}{{"CrashRate", p.CrashRate}, {"RecoverRate", p.RecoverRate}} {
		if math.IsNaN(r.v) || math.IsInf(r.v, 0) || r.v < 0 {
			return fmt.Errorf("faults: %s %g must be finite and non-negative", r.name, r.v)
		}
	}
	if p.RecoverRate > 0 && p.CrashRate == 0 {
		return fmt.Errorf("faults: RecoverRate %g without CrashRate recovers nothing (scripted crashes recover only via RecoverAt)", p.RecoverRate)
	}
	if p.Reorder > 0 && p.ReorderDelay != nil && !(p.ReorderDelay.Mean() > 0) {
		return fmt.Errorf("faults: ReorderDelay mean %g must be positive", p.ReorderDelay.Mean())
	}
	for i, ev := range p.Events {
		if err := ev.validate(n); err != nil {
			return fmt.Errorf("faults: event %d (%s at t=%g): %w", i, ev.Kind, ev.At, err)
		}
	}
	return nil
}

func (ev Event) validate(n int) error {
	if math.IsNaN(ev.At) || math.IsInf(ev.At, 0) || ev.At < 0 {
		return fmt.Errorf("time %g must be finite and non-negative", ev.At)
	}
	checkNode := func(v int) error {
		if v < 0 || v >= n {
			return fmt.Errorf("node %d outside [0, %d)", v, n)
		}
		return nil
	}
	switch ev.Kind {
	case KindCrash, KindRecover:
		return checkNode(ev.Node)
	case KindLinkDown, KindLinkUp:
		if err := checkNode(ev.From); err != nil {
			return err
		}
		if err := checkNode(ev.To); err != nil {
			return err
		}
		if ev.From == ev.To {
			return fmt.Errorf("link %d->%d is a self-loop", ev.From, ev.To)
		}
		return nil
	case KindPartition, KindHeal:
		if len(ev.Group) == 0 || len(ev.Group) >= n {
			return fmt.Errorf("partition group size %d must be in [1, %d)", len(ev.Group), n)
		}
		seen := make(map[int]bool, len(ev.Group))
		for _, v := range ev.Group {
			if err := checkNode(v); err != nil {
				return err
			}
			if seen[v] {
				return fmt.Errorf("node %d listed twice in partition group", v)
			}
			seen[v] = true
		}
		return nil
	default:
		return fmt.Errorf("unknown event kind %d", int(ev.Kind))
	}
}

// CrashInterval records one node's downtime. End is -1 while the node is
// still down when the run stops (crash-stop, or churn caught mid-outage).
type CrashInterval struct {
	Node       int
	Start, End float64
}

// Telemetry aggregates what the fault injection actually did during one
// run. It is filled by the network layer and surfaced on runner.Report, so
// every experiment sees the injected fault load next to the protocol's
// outcome. All counters are deterministic given (environment, plan, seed).
type Telemetry struct {
	// MessagesDropped counts messages destroyed by stochastic loss.
	MessagesDropped uint64
	// MessagesDuplicated counts extra copies injected.
	MessagesDuplicated uint64
	// MessagesDelayed counts reorder hold-backs injected.
	MessagesDelayed uint64
	// LinkDrops counts sends attempted on a scripted-down link or
	// partition cut.
	LinkDrops uint64
	// DeadLetters counts deliveries suppressed because the receiving node
	// was down (or had restarted since the processing was queued).
	DeadLetters uint64
	// TimersSuppressed counts timer fires suppressed at down or restarted
	// nodes.
	TimersSuppressed uint64
	// Crashes and Recoveries count node lifecycle transitions (scripted
	// and stochastic).
	Crashes    int
	Recoveries int
	// CrashIntervals records each outage as [Start, End) in virtual time,
	// in order of crash; End = -1 means still down at the end of the run.
	CrashIntervals []CrashInterval
	// Byzantine counts adversarial interventions when the run carried a
	// byzantine.Plan (equivocations, corruptions, omissions, stalls); nil
	// when no adversary subsystem was active.
	Byzantine *byzantine.Telemetry
}

// TotalFaults returns the number of injected fault occurrences — a single
// headline number for tables.
func (t *Telemetry) TotalFaults() uint64 {
	if t == nil {
		return 0
	}
	return t.MessagesDropped + t.MessagesDuplicated + t.MessagesDelayed +
		t.LinkDrops + t.DeadLetters + uint64(t.Crashes) + t.Byzantine.Total()
}

// MetricsInto contributes the telemetry's named measurements to a metric
// map (used by runner.Report.Metrics for sweep aggregation).
func (t *Telemetry) MetricsInto(m map[string]float64) {
	if t == nil {
		return
	}
	m["fault_dropped"] = float64(t.MessagesDropped + t.LinkDrops)
	m["fault_duplicated"] = float64(t.MessagesDuplicated)
	m["fault_delayed"] = float64(t.MessagesDelayed)
	m["fault_dead_letters"] = float64(t.DeadLetters)
	m["fault_crashes"] = float64(t.Crashes)
	t.Byzantine.MetricsInto(m)
}
