package faults

import (
	"strings"
	"testing"

	"abenet/internal/dist"
)

func TestValidateAcceptsReasonablePlans(t *testing.T) {
	plans := []*Plan{
		nil,
		{},
		{Loss: 0.2, Duplicate: 0.1, Reorder: 0.3},
		{Loss: 0.05, ReorderDelay: dist.NewExponential(2), Reorder: 0.5},
		{CrashRate: 0.01},
		{CrashRate: 0.01, RecoverRate: 0.1},
		{Events: []Event{CrashAt(40, 3), RecoverAt(80, 3)}},
		{Events: PartitionDuring(10, 20, 0, 1, 2, 3)},
		{Events: []Event{LinkDownAt(5, 0, 1), LinkUpAt(9, 0, 1)}},
	}
	for i, p := range plans {
		if err := p.Validate(8); err != nil {
			t.Errorf("plan %d rejected: %v", i, err)
		}
	}
}

func TestValidateRejectsBrokenPlans(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
		want string
	}{
		{"loss>1", &Plan{Loss: 1.2}, "outside [0, 1]"},
		{"loss=1", &Plan{Loss: 1}, "drops every message"},
		{"negative dup", &Plan{Duplicate: -0.1}, "outside [0, 1]"},
		{"negative crash rate", &Plan{CrashRate: -1}, "finite and non-negative"},
		{"recover without crash", &Plan{RecoverRate: 1}, "recovers nothing"},
		{"recover with only scripted crashes", &Plan{RecoverRate: 1, Events: []Event{CrashAt(1, 2)}}, "recovers nothing"},
		{"zero-mean reorder", &Plan{Reorder: 0.5, ReorderDelay: dist.NewDeterministic(0)}, "must be positive"},
		{"crash out of range", &Plan{Events: []Event{CrashAt(1, 8)}}, "outside [0, 8)"},
		{"negative event time", &Plan{Events: []Event{CrashAt(-1, 2)}}, "non-negative"},
		{"self-loop link", &Plan{Events: []Event{LinkDownAt(1, 3, 3)}}, "self-loop"},
		{"empty partition", &Plan{Events: []Event{{At: 1, Kind: KindPartition}}}, "group size 0"},
		{"full partition", &Plan{Events: []Event{{At: 1, Kind: KindPartition, Group: []int{0, 1, 2, 3, 4, 5, 6, 7}}}}, "group size 8"},
		{"duplicate group node", &Plan{Events: []Event{{At: 1, Kind: KindPartition, Group: []int{1, 1}}}}, "listed twice"},
		{"unknown kind", &Plan{Events: []Event{{At: 1}}}, "unknown event kind"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.plan.Validate(8)
			if err == nil {
				t.Fatalf("plan %+v accepted", c.plan)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestSortedEventsIsStableAndNonMutating(t *testing.T) {
	p := &Plan{Events: []Event{
		CrashAt(30, 1),
		LinkDownAt(10, 0, 1),
		RecoverAt(30, 2), // same instant as the crash: slice order must win
		LinkUpAt(20, 0, 1),
	}}
	sorted := p.SortedEvents()
	wantTimes := []float64{10, 20, 30, 30}
	for i, ev := range sorted {
		if ev.At != wantTimes[i] {
			t.Fatalf("sorted[%d].At = %g, want %g", i, ev.At, wantTimes[i])
		}
	}
	if sorted[2].Kind != KindCrash || sorted[3].Kind != KindRecover {
		t.Fatalf("tie at t=30 not stable: %v then %v", sorted[2].Kind, sorted[3].Kind)
	}
	if p.Events[0].At != 30 {
		t.Fatal("SortedEvents mutated the plan")
	}
}

func TestCapabilityProbes(t *testing.T) {
	if (&Plan{}).HasLinkFaults() || (&Plan{}).HasNodeFaults() {
		t.Fatal("empty plan claims faults")
	}
	var nilPlan *Plan
	if nilPlan.HasLinkFaults() || nilPlan.HasNodeFaults() {
		t.Fatal("nil plan claims faults")
	}
	if !(&Plan{Loss: 0.1}).HasLinkFaults() {
		t.Fatal("loss not detected")
	}
	if !(&Plan{CrashRate: 0.1}).HasNodeFaults() {
		t.Fatal("crash rate not detected")
	}
	if !(&Plan{Events: []Event{CrashAt(1, 0)}}).HasNodeFaults() {
		t.Fatal("scripted crash not detected")
	}
	if (&Plan{Events: []Event{LinkDownAt(1, 0, 1)}}).HasNodeFaults() {
		t.Fatal("link event misreported as node fault")
	}
}

func TestTelemetryAggregation(t *testing.T) {
	tel := &Telemetry{
		MessagesDropped:    3,
		MessagesDuplicated: 2,
		MessagesDelayed:    5,
		LinkDrops:          1,
		DeadLetters:        4,
		Crashes:            2,
		Recoveries:         1,
	}
	if got := tel.TotalFaults(); got != 17 {
		t.Fatalf("TotalFaults = %d, want 17", got)
	}
	m := map[string]float64{}
	tel.MetricsInto(m)
	if m["fault_dropped"] != 4 || m["fault_crashes"] != 2 {
		t.Fatalf("metrics = %v", m)
	}
	var nilTel *Telemetry
	if nilTel.TotalFaults() != 0 {
		t.Fatal("nil telemetry total != 0")
	}
	nilTel.MetricsInto(m) // must not panic
}
