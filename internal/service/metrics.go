// The /metrics endpoint: the service counters in the Prometheus text
// exposition format (version 0.0.4), rendered by hand — the format is a
// dozen lines of spec and a client dependency would be the only one in the
// module.
package service

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// promMetric is one rendered metric family: help text, type, and the
// samples (label string → value). Families render in slice order so the
// output is stable for tests and diff-friendly for humans.
type promMetric struct {
	name    string
	help    string
	typ     string // "counter" or "gauge"
	samples []promSample
}

type promSample struct {
	labels string // rendered label set, e.g. `{tier="memory"}`, or ""
	value  float64
}

// WriteMetrics renders the service counters in the Prometheus text format.
func (s *Service) WriteMetrics(w io.Writer) error {
	st := s.Stats()
	families := []promMetric{
		{"abe_uptime_seconds", "Wall-clock age of the service process.", "gauge",
			[]promSample{{"", st.UptimeSeconds}}},
		{"abe_workers", "Configured worker-pool size.", "gauge",
			[]promSample{{"", float64(st.Workers)}}},
		{"abe_queue_capacity", "Configured submit-queue bound.", "gauge",
			[]promSample{{"", float64(st.QueueDepth)}}},
		{"abe_jobs", "Jobs currently held by state.", "gauge", []promSample{
			{`{state="queued"}`, float64(st.Queued)},
			{`{state="running"}`, float64(st.Running)},
		}},
		{"abe_submissions_total", "Validated submissions, including cache hits and deduplicated riders.", "counter",
			[]promSample{{"", float64(st.Submissions)}}},
		{"abe_jobs_finished_total", "Terminal job transitions by outcome.", "counter", []promSample{
			{`{status="done"}`, float64(st.Done)},
			{`{status="failed"}`, float64(st.Failed)},
			{`{status="cancelled"}`, float64(st.Cancelled)},
		}},
		{"abe_submissions_rejected_total", "Refused submissions by reason.", "counter", []promSample{
			{`{reason="queue_full"}`, float64(st.RejectedQueueFull)},
			{`{reason="overloaded"}`, float64(st.RejectedOverload)},
		}},
		{"abe_cache_entries", "Result-cache entries by tier.", "gauge", []promSample{
			{`{tier="memory"}`, float64(st.CacheEntries)},
			{`{tier="store"}`, float64(st.StoreEntries)},
		}},
		{"abe_cache_hits_total", "Result-cache hits by tier; a hit means no simulation ran.", "counter", []promSample{
			{`{tier="memory"}`, float64(st.MemoryHits)},
			{`{tier="store"}`, float64(st.StoreHits)},
		}},
		{"abe_store_errors_total", "Persistent-store read/write errors.", "counter",
			[]promSample{{"", float64(st.StoreErrors)}}},
		{"abe_stream_events_dropped_total", "Progress events discarded past per-job stream caps.", "counter",
			[]promSample{{"", float64(st.EventsDropped)}}},
	}
	for _, fam := range families {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", fam.name, fam.help, fam.name, fam.typ); err != nil {
			return err
		}
		for _, sm := range fam.samples {
			// strconv with 'g' prints integers without an exponent and
			// never emits a locale-dependent separator.
			if _, err := fmt.Fprintf(w, "%s%s %s\n", fam.name, sm.labels, strconv.FormatFloat(sm.value, 'g', -1, 64)); err != nil {
				return err
			}
		}
	}
	return nil
}

// metricsHandler serves GET /metrics.
func metricsHandler(svc *Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = svc.WriteMetrics(w)
	}
}
