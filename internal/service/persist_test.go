package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"abenet/internal/store"
)

// openDisk opens the persistent tier over dir, failing the test on error.
func openDisk(t *testing.T, dir string) *store.Disk[*Result] {
	t.Helper()
	d, err := store.OpenDisk[*Result](dir)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestPersistentStoreSurvivesRestart is the PR's acceptance loop: a result
// computed by one service process is served by a *fresh* process over the
// same -store directory with no simulation executed — proven by the
// per-tier hit counter and a worker-side execution counter.
func TestPersistentStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	sp := loadFixture(t, "election_ring.json")

	// Process 1: compute and persist.
	svc1 := New(Options{Workers: 1, Persist: openDisk(t, dir)})
	v, err := svc1.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	v = await(t, svc1, v.ID)
	if v.Status != StatusDone {
		t.Fatalf("job ended %s (%s)", v.Status, v.Error)
	}
	want, _ := json.Marshal(v.Result.Metrics)
	if got := svc1.Stats().StoreEntries; got != 1 {
		t.Fatalf("store entries after compute = %d, want 1", got)
	}
	svc1.Close()

	// Process 2: same directory, fresh memory. The resubmission must be
	// served from the disk tier without running a single simulation.
	var executed atomic.Int64
	svc2 := New(Options{
		Workers:   1,
		Persist:   openDisk(t, dir),
		BeforeJob: func() { executed.Add(1) },
	})
	defer svc2.Close()

	v2, err := svc2.Submit(loadFixture(t, "election_ring.json"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Status != StatusDone {
		t.Fatalf("restart resubmission is %s, want done straight from the store", v2.Status)
	}
	if v2.CacheHits != 1 {
		t.Fatalf("restart resubmission cache hits = %d, want 1", v2.CacheHits)
	}
	got, _ := json.Marshal(v2.Result.Metrics)
	if !bytes.Equal(got, want) {
		t.Fatalf("persisted result diverged:\nstored:   %s\ncomputed: %s", got, want)
	}
	st := svc2.Stats()
	if st.StoreHits != 1 || st.MemoryHits != 0 {
		t.Fatalf("per-tier hits after restart = mem %d / store %d, want 0 / 1", st.MemoryHits, st.StoreHits)
	}
	if n := executed.Load(); n != 0 {
		t.Fatalf("restart resubmission executed %d simulations, want 0", n)
	}

	// The promoted entry now serves from memory.
	v3, err := svc2.Submit(loadFixture(t, "election_ring.json"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v3.CacheHits != 2 {
		t.Fatalf("promoted resubmission cache hits = %d, want 2", v3.CacheHits)
	}
	st = svc2.Stats()
	if st.MemoryHits != 1 || st.StoreHits != 1 {
		t.Fatalf("per-tier hits after promotion = mem %d / store %d, want 1 / 1", st.MemoryHits, st.StoreHits)
	}
	if n := executed.Load(); n != 0 {
		t.Fatalf("promoted resubmission executed %d simulations, want 0", n)
	}
}

// TestPersistentTierBackfillsMemoryEviction: when the memory LRU evicts a
// key, the persistent tier still serves it (and promotes it back) in the
// same process — the two-tier read path, not just the restart story.
func TestPersistentTierBackfillsMemoryEviction(t *testing.T) {
	svc := New(Options{Workers: 1, CacheEntries: 1, Persist: openDisk(t, t.TempDir())})
	defer svc.Close()

	a := loadFixture(t, "election_ring.json")
	b := loadFixture(t, "chang_roberts_pareto.json")
	va, err := svc.Submit(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	await(t, svc, va.ID)
	vb, err := svc.Submit(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	await(t, svc, vb.ID) // memory tier (capacity 1) now holds only b

	v, err := svc.Submit(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusDone || v.CacheHits != 1 {
		t.Fatalf("evicted key: status %s hits %d, want done/1 from the store tier", v.Status, v.CacheHits)
	}
	st := svc.Stats()
	if st.StoreHits != 1 {
		t.Fatalf("store hits = %d, want 1", st.StoreHits)
	}
	if st.StoreEntries != 2 {
		t.Fatalf("store entries = %d, want 2", st.StoreEntries)
	}
}

// TestSeedsAreDistinctStoreEntries: (hash, seed) is the store key — two
// seeds of one scenario persist as two entries and never cross-serve.
func TestSeedsAreDistinctStoreEntries(t *testing.T) {
	svc := New(Options{Workers: 1, Persist: openDisk(t, t.TempDir())})
	defer svc.Close()

	sp := loadFixture(t, "election_ring.json")
	s1, s2 := uint64(1), uint64(2)
	v1, err := svc.Submit(sp, &s1)
	if err != nil {
		t.Fatal(err)
	}
	v1 = await(t, svc, v1.ID)
	v2, err := svc.Submit(sp, &s2)
	if err != nil {
		t.Fatal(err)
	}
	v2 = await(t, svc, v2.ID)
	if v2.CacheHits != 0 {
		t.Fatal("different seed served from the store")
	}
	if got := svc.Stats().StoreEntries; got != 2 {
		t.Fatalf("store entries = %d, want 2", got)
	}
	m1, _ := json.Marshal(v1.Result.Metrics)
	m2, _ := json.Marshal(v2.Result.Metrics)
	if bytes.Equal(m1, m2) {
		t.Fatal("distinct seeds produced identical metrics (suspicious fixture)")
	}
}

// TestAdmissionControl: fresh submissions beyond the token bucket fail
// with ErrOverloaded + a retry hint, refill admits again, and cache hits
// are never charged — overload degrades to backpressure while repeats
// keep being served.
func TestAdmissionControl(t *testing.T) {
	clock := time.Unix(1000, 0)
	svc := New(Options{
		Workers:     2,
		SubmitRate:  1,
		SubmitBurst: 2,
		now:         func() time.Time { return clock },
	})
	defer svc.Close()

	sp := loadFixture(t, "election_ring.json")
	seeds := []uint64{10, 11, 12}

	// Burst of 2 admitted, third fresh submission rejected.
	v1, err := svc.Submit(sp, &seeds[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(sp, &seeds[1]); err != nil {
		t.Fatal(err)
	}
	_, err = svc.Submit(sp, &seeds[2])
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third fresh submission: %v, want ErrOverloaded", err)
	}
	if secs := RetryAfter(err); secs < 1 {
		t.Fatalf("RetryAfter = %d, want >= 1", secs)
	}

	// A cache hit is never charged: the first job's result keeps serving
	// even with an empty bucket.
	await(t, svc, v1.ID)
	hit, err := svc.Submit(sp, &seeds[0])
	if err != nil {
		t.Fatalf("cache hit rejected under overload: %v", err)
	}
	if hit.CacheHits != 1 {
		t.Fatalf("cache hit under overload reports %d hits, want 1", hit.CacheHits)
	}

	// Refill: one second buys one token.
	clock = clock.Add(time.Second)
	v3, err := svc.Submit(sp, &seeds[2])
	if err != nil {
		t.Fatalf("post-refill submission rejected: %v", err)
	}
	await(t, svc, v3.ID)
}

// TestAdmissionNeverChargesDedup: a submission that coalesces onto an
// in-flight job rides for free.
func TestAdmissionNeverChargesDedup(t *testing.T) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	clock := time.Unix(2000, 0)
	svc := New(Options{
		Workers:     1,
		SubmitRate:  1,
		SubmitBurst: 1,
		now:         func() time.Time { return clock },
		BeforeJob: func() {
			entered <- struct{}{}
			<-release
		},
	})
	defer svc.Close()

	sp := loadFixture(t, "election_ring.json")
	v1, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-entered // the only token is spent; the job is held running
	dup, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatalf("dedup rider rejected by admission control: %v", err)
	}
	if dup.ID != v1.ID || dup.Deduplicated != 1 {
		t.Fatalf("expected a dedup onto %s, got %s (dedups %d)", v1.ID, dup.ID, dup.Deduplicated)
	}
	close(release)
	await(t, svc, v1.ID)
}
