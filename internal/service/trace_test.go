package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// getTrace fetches a job's trace with the given query string and returns
// the status code and body.
func getTrace(t *testing.T, ts *httptest.Server, id, query string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/trace" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b.String()
}

// TestHTTPTraceEndpoint covers the trace door end to end: a traced spec
// submitted over HTTP yields a causal export in all three formats, and the
// error paths (unknown job, untraced run, bad format) answer with the
// right codes.
func TestHTTPTraceEndpoint(t *testing.T) {
	svc := New(Options{Workers: 2})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc, HandlerOptions{}))
	defer ts.Close()

	raw, err := os.ReadFile(filepath.Join(fixtureDir, "election_ring_traced.json"))
	if err != nil {
		t.Fatal(err)
	}
	v := postRun(t, ts, map[string]any{"spec": json.RawMessage(raw), "wait": true}, http.StatusOK)
	if v.Status != StatusDone {
		t.Fatalf("job ended %s (%s)", v.Status, v.Error)
	}
	if v.Result == nil || v.Result.Trace == nil || len(v.Result.Trace.Events) == 0 {
		t.Fatal("traced run result carries no trace")
	}
	if v.Result.Report == nil || v.Result.Report.Trace != nil {
		t.Fatal("trace should live on the result, not nested inside the report")
	}

	// Default format is chrome: well-formed trace-event JSON.
	code, body := getTrace(t, ts, v.ID, "")
	if code != http.StatusOK {
		t.Fatalf("GET trace = %d: %s", code, body)
	}
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &chrome); err != nil {
		t.Fatalf("chrome export not JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome export has no trace events")
	}

	// jsonl: one JSON value per line, trailer included.
	code, body = getTrace(t, ts, v.ID, "?format=jsonl")
	if code != http.StatusOK {
		t.Fatalf("GET trace jsonl = %d", code)
	}
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if len(lines) != len(v.Result.Trace.Events)+1 {
		t.Fatalf("jsonl: %d lines, want %d events + trailer", len(lines), len(v.Result.Trace.Events))
	}

	// text: human-readable dump mentioning the decision.
	code, body = getTrace(t, ts, v.ID, "?format=text")
	if code != http.StatusOK || !strings.Contains(body, "decision") {
		t.Fatalf("GET trace text = %d:\n%s", code, body)
	}

	// Error paths.
	if code, _ := getTrace(t, ts, v.ID, "?format=svg"); code != http.StatusBadRequest {
		t.Fatalf("bad format = %d, want 400", code)
	}
	if code, _ := getTrace(t, ts, "run-999999-nope", ""); code != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", code)
	}

	// An untraced run of the same scenario 404s with a hint.
	plain, err := os.ReadFile(filepath.Join(fixtureDir, "election_ring.json"))
	if err != nil {
		t.Fatal(err)
	}
	u := postRun(t, ts, map[string]any{"spec": json.RawMessage(plain), "wait": true}, http.StatusOK)
	code, body = getTrace(t, ts, u.ID, "")
	if code != http.StatusNotFound || !strings.Contains(body, "not traced") {
		t.Fatalf("untraced run trace = %d: %s", code, body)
	}
}

// TestHTTPTraceUnfinishedConflicts: asking for the trace of a job that has
// not finished is a 409, not an empty export.
func TestHTTPTraceUnfinishedConflicts(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	svc := New(Options{Workers: 1, BeforeJob: func() {
		entered <- struct{}{}
		<-release
	}})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc, HandlerOptions{}))
	defer ts.Close()

	v, err := svc.Submit(loadFixture(t, "election_ring_traced.json"), nil)
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	if code, _ := getTrace(t, ts, v.ID, ""); code != http.StatusConflict {
		t.Fatalf("running job trace = %d, want 409", code)
	}
	close(release)
	await(t, svc, v.ID)
}

// TestTraceCacheKeySeparation pins the cache-soundness consequence of
// excluding the trace block from the spec hash: a traced and an untraced
// submission of the same scenario must not share a cache entry, while
// resubmitting each shape hits its own.
func TestTraceCacheKeySeparation(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()

	traced := loadFixture(t, "election_ring_traced.json")
	plain := loadFixture(t, "election_ring.json")

	h1, _ := traced.Hash()
	h2, _ := plain.Hash()
	if h1 != h2 {
		t.Fatalf("fixtures differ beyond the trace block: %s vs %s", h1, h2)
	}

	vp, err := svc.Submit(plain, nil)
	if err != nil {
		t.Fatal(err)
	}
	vp = await(t, svc, vp.ID)
	if vp.CacheHits != 0 || vp.Result.Trace != nil {
		t.Fatalf("untraced run: hits=%d trace=%v", vp.CacheHits, vp.Result.Trace != nil)
	}

	// Same scenario, traced: must be a fresh computation, not the cached
	// untraced payload.
	vt, err := svc.Submit(traced, nil)
	if err != nil {
		t.Fatal(err)
	}
	vt = await(t, svc, vt.ID)
	if vt.CacheHits != 0 {
		t.Fatal("traced submission hit the untraced cache entry")
	}
	if vt.Result.Trace == nil || len(vt.Result.Trace.Events) == 0 {
		t.Fatal("traced run carries no trace")
	}

	// Resubmissions hit their own entries, trace intact.
	vt2, err := svc.Submit(traced, nil)
	if err != nil {
		t.Fatal(err)
	}
	vt2 = await(t, svc, vt2.ID)
	if vt2.CacheHits != 1 || vt2.Result.Trace == nil {
		t.Fatalf("traced resubmission: hits=%d trace=%v", vt2.CacheHits, vt2.Result.Trace != nil)
	}
	vp2, err := svc.Submit(plain, nil)
	if err != nil {
		t.Fatal(err)
	}
	vp2 = await(t, svc, vp2.ID)
	if vp2.CacheHits != 1 || vp2.Result.Trace != nil {
		t.Fatalf("untraced resubmission: hits=%d trace=%v", vp2.CacheHits, vp2.Result.Trace != nil)
	}

	// And the cached results stay byte-identical where they overlap.
	mt, _ := json.Marshal(vt.Result.Metrics)
	mp, _ := json.Marshal(vp.Result.Metrics)
	if !bytes.Equal(mt, mp) {
		t.Fatalf("tracing changed the metrics:\ntraced:   %s\nuntraced: %s", mt, mp)
	}
}
