// Package service is the experiment job service behind cmd/abe-serve: a
// bounded worker pool running scenario specs (single runs and sweeps), a
// two-tier content-addressed result cache keyed on (spec hash, seed) — an
// in-memory LRU in front of an optional persistent store (internal/store),
// with per-tier hit counters — singleflight-style de-duplication of
// identical in-flight jobs, token-bucket admission control under overload,
// and a submit/status/result/cancel job lifecycle.
//
// Caching is sound because runs are pure functions of (scenario, seed): the
// spec hash identifies the scenario (internal/spec pins the canonical
// encoding) and the harness derives every per-repetition seed from
// (hash, seed) in canonical order, so a cached result is byte-identical to
// a fresh one. The one exception — the live goroutine runtime, which races
// wall clocks by design — is declared nondeterministic by the runner
// registry and is executed but never cached.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"abenet/internal/runner"
	"abenet/internal/sim"
	"abenet/internal/spec"
	"abenet/internal/store"
	"abenet/internal/trace"
)

// The lifecycle errors.
var (
	// ErrNotFound: no job with that id.
	ErrNotFound = errors.New("service: no such job")
	// ErrQueueFull: the submit queue is at capacity; retry later.
	ErrQueueFull = errors.New("service: job queue is full")
	// ErrFinished: the job already finished; it cannot be cancelled.
	ErrFinished = errors.New("service: job already finished")
	// ErrShared: other submissions were deduplicated onto the job, so one
	// client cancelling would discard a result every rider is waiting on.
	ErrShared = errors.New("service: job is shared by other submissions; cancel refused")
	// ErrClosed: the service is shutting down.
	ErrClosed = errors.New("service: closed")
)

// Status is a job's lifecycle state.
type Status string

// The job lifecycle states.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Options configures a Service.
type Options struct {
	// Workers is the number of concurrent job executors; 0 means 2.
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// 0 means 64. Submits beyond it fail with ErrQueueFull.
	QueueDepth int
	// CacheEntries bounds the result cache (LRU eviction); 0 means 1024.
	CacheEntries int
	// JobHistory bounds how many finished (done/failed/cancelled) jobs
	// stay queryable by id; 0 means 4096. Beyond it the oldest finished
	// jobs are forgotten (GET returns not-found) — without a bound a
	// long-serving process would grow one job record per submission
	// forever. Queued and running jobs are never evicted.
	JobHistory int
	// SweepWorkers caps each sweep job's internal parallelism; 0 leaves
	// the spec's own setting (or GOMAXPROCS) in charge.
	SweepWorkers int
	// Persist, when non-nil, is the second cache tier: finished cacheable
	// results are written through to it and served back from it after the
	// memory tier evicts them — or after a process restart, when it is a
	// durable store (store.OpenDisk). The service owns it from New on and
	// closes it in Close.
	Persist store.Store[*Result]
	// SubmitRate, when positive, admission-controls *fresh* submissions
	// (jobs that will actually simulate) to this sustained rate per
	// second. Beyond the burst, Submit fails with ErrOverloaded and a
	// retry hint instead of letting the queue starve every client at
	// once. Cache hits and deduplicated submissions are never charged:
	// they cost no simulation, and serving them under overload is the
	// point of the cache. 0 disables admission control.
	SubmitRate float64
	// SubmitBurst is the admission token-bucket depth; 0 means
	// max(1, ceil(2×SubmitRate)).
	SubmitBurst int
	// BeforeJob, when non-nil, runs in the worker goroutine before each
	// job executes. It exists so tests can hold workers deterministically;
	// production code leaves it nil.
	BeforeJob func()

	// now overrides the admission clock; tests only.
	now func() time.Time
}

// Result is one finished job's payload: a single run's report + flattened
// metrics, or a sweep's aggregated points.
type Result struct {
	// Report is the single run's full report (nil for sweeps).
	Report *runner.Report `json:"report,omitempty"`
	// Metrics is the single run's flattened metric map (nil for sweeps).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Points are the sweep's aggregated positions (nil for single runs).
	Points []spec.PointView `json:"points,omitempty"`
	// Trace is the causal event trace of a traced single run (nil
	// otherwise). It is lifted off Report so the stored payload encodes it
	// once, and so GET /v1/runs/{id}/trace can render it without reparsing
	// the report.
	Trace *trace.Export `json:"trace,omitempty"`
}

// View is a JSON-ready snapshot of one job.
type View struct {
	// ID is the job id (stable across its lifecycle).
	ID string `json:"id"`
	// Status is the lifecycle state at snapshot time.
	Status Status `json:"status"`
	// Protocol is the scenario's registry protocol name.
	Protocol string `json:"protocol"`
	// Kind is "run" or "sweep".
	Kind string `json:"kind"`
	// SpecHash identifies the scenario (seed and sweep workers excluded).
	SpecHash string `json:"spec_hash"`
	// Seed is the run's base seed.
	Seed uint64 `json:"seed"`
	// CacheHits counts how many submissions this cached result has served;
	// 0 on a fresh computation. The acceptance check for "served from
	// cache" reads this.
	CacheHits int `json:"cache_hits"`
	// Deduplicated counts submissions coalesced onto this in-flight job.
	Deduplicated int `json:"deduplicated"`
	// Result is the payload once Status is done.
	Result *Result `json:"result,omitempty"`
	// Error is the failure message once Status is failed.
	Error string `json:"error,omitempty"`
	// Failure classifies a failed job: "livelock" when the run exhausted
	// its event budget without finishing (the kernel's typed
	// sim.ErrMaxEvents — raise env.max_events or fix the scenario), "error"
	// for everything else. Empty unless Status is failed.
	Failure string `json:"failure,omitempty"`
}

// job is the service-internal state of one submission.
type job struct {
	id        string
	spec      *spec.Spec
	key       string
	hash      string
	status    Status
	cacheable bool
	result    *Result
	err       string
	failure   string
	cacheHits int
	dedups    int
	done      chan struct{}
	events    *eventLog
}

// view snapshots the job. Callers hold the service mutex.
func (j *job) view() View {
	kind := "run"
	if j.spec.Sweep != nil {
		kind = "sweep"
	}
	v := View{
		ID:           j.id,
		Status:       j.status,
		Protocol:     j.spec.Protocol.Name,
		Kind:         kind,
		SpecHash:     j.hash,
		Seed:         j.spec.Env.Seed,
		CacheHits:    j.cacheHits,
		Deduplicated: j.dedups,
		Error:        j.err,
		Failure:      j.failure,
	}
	if j.status == StatusDone {
		v.Result = j.result
	}
	return v
}

// Service runs scenario jobs on a bounded worker pool.
type Service struct {
	opts  Options
	queue chan *job
	wg    sync.WaitGroup
	start time.Time

	// eventsDropped counts progress events discarded past per-job log caps,
	// service-wide (atomic — event sinks run outside s.mu).
	eventsDropped int64

	mu       sync.Mutex
	closed   bool
	seq      int
	jobs     map[string]*job
	inflight map[string]*job // cache key → queued/running job (singleflight)
	history  []string        // finished job ids, oldest first (FIFO retirement)
	cache    *tieredCache
	bucket   *tokenBucket // nil = no admission control

	// The monotonic service counters behind Stats and /metrics.
	submissions       int            // every Submit that passed validation
	finished          map[Status]int // terminal transitions, by state
	rejectedQueueFull int
	rejectedOverload  int
}

// retireLocked records a job as finished and evicts the oldest finished
// jobs beyond the history bound. Callers hold s.mu and have just moved j
// into a terminal state.
func (s *Service) retireLocked(j *job) {
	s.finished[j.status]++
	s.history = append(s.history, j.id)
	for len(s.history) > s.opts.JobHistory {
		delete(s.jobs, s.history[0])
		s.history = s.history[1:]
	}
}

// New starts a service with opts.
func New(opts Options) *Service {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.CacheEntries <= 0 {
		opts.CacheEntries = 1024
	}
	if opts.JobHistory <= 0 {
		opts.JobHistory = 4096
	}
	s := &Service{
		opts:     opts,
		queue:    make(chan *job, opts.QueueDepth),
		start:    time.Now(),
		jobs:     map[string]*job{},
		inflight: map[string]*job{},
		finished: map[Status]int{},
		cache:    newTieredCache(opts.CacheEntries, opts.Persist),
	}
	if opts.SubmitRate > 0 {
		s.bucket = newTokenBucket(opts.SubmitRate, opts.SubmitBurst, opts.now)
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit validates and enqueues a scenario. seedOverride, when non-nil,
// replaces the spec's Env.Seed (the spec file states the scenario; the
// caller may pick the run). The returned view is one of:
//
//   - a done job served straight from the result cache (CacheHits > 0),
//   - the identical in-flight job (Deduplicated > 0, same id), or
//   - a fresh queued job.
func (s *Service) Submit(sp *spec.Spec, seedOverride *uint64) (View, error) {
	view, _, err := s.submit(sp, seedOverride)
	return view, err
}

// SubmitAndWait submits and blocks until the job finishes (or ctx ends),
// then snapshots it. The snapshot comes from the job handle submit
// returned — never a second id lookup — so history retirement while the
// caller waits cannot turn a finished run into not-found. When ctx ends
// first the snapshot is still returned — alongside ctx.Err(), so callers
// can tell "finished" from "gave up waiting on a still-running job".
func (s *Service) SubmitAndWait(ctx context.Context, sp *spec.Spec, seedOverride *uint64) (View, error) {
	view, j, err := s.submit(sp, seedOverride)
	if err != nil {
		return view, err
	}
	return s.awaitJob(ctx, j)
}

// submit is the shared submission path, returning the job handle alongside
// the snapshot.
func (s *Service) submit(sp *spec.Spec, seedOverride *uint64) (View, *job, error) {
	if sp == nil {
		return View{}, nil, errors.New("service: nil spec")
	}
	run := *sp
	if seedOverride != nil {
		run.Env.Seed = *seedOverride
	}
	if err := run.Validate(); err != nil {
		return View{}, nil, err
	}
	hash, err := run.Hash()
	if err != nil {
		return View{}, nil, err
	}
	key := fmt.Sprintf("%s@%d%s%s", hash, run.Env.Seed, observeKey(run.Env.Observe), traceKey(run.Env.Trace))
	info, _ := runner.ProtocolInfo(run.Protocol.Name)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return View{}, nil, ErrClosed
	}
	s.submissions++
	if ent := s.cache.get(key); ent != nil {
		// Served from cache: a done job materialises instantly, and the
		// hit counter proves no simulation ran.
		ent.hits++
		j := s.newJobLocked(&run, hash, key)
		j.status = StatusDone
		j.result = ent.result
		j.cacheHits = ent.hits
		j.events.finish(StatusDone, "")
		close(j.done)
		s.jobs[j.id] = j
		s.retireLocked(j)
		return j.view(), j, nil
	}
	// Dedup and caching share the same soundness argument — identical
	// (scenario, seed) means identical results — so a nondeterministic
	// protocol opts out of both: every live-election submission gets its
	// own wall-clock run.
	if info.Deterministic {
		if running := s.inflight[key]; running != nil {
			running.dedups++
			return running.view(), running, nil
		}
	}
	// Only submissions that will actually simulate reach admission
	// control: cache hits and dedup riders above cost nothing, and
	// serving them under overload is the point of the cache.
	if s.bucket != nil {
		if ok, wait := s.bucket.take(); !ok {
			s.rejectedOverload++
			return View{}, nil, &overloadError{retryAfter: wait}
		}
	}
	// Deep-copy before enqueueing: `run` shares nested pointers (sweep
	// block, fault plan, scripted events, protocol options) with the
	// caller's spec, and the worker must run the scenario as submitted,
	// not as later mutated. The canonical codec round trip is the one
	// copy that provably covers every field the hash covers.
	enq, err := run.Clone()
	if err != nil {
		return View{}, nil, err
	}
	j := s.newJobLocked(enq, hash, key)
	j.cacheable = info.Deterministic
	select {
	case s.queue <- j:
	default:
		s.rejectedQueueFull++
		return View{}, nil, ErrQueueFull
	}
	s.jobs[j.id] = j
	if info.Deterministic {
		s.inflight[key] = j
	}
	return j.view(), j, nil
}

// newJobLocked allocates a job with the next id. Callers hold s.mu and
// register the job in s.jobs themselves (queue-full submits are discarded).
func (s *Service) newJobLocked(sp *spec.Spec, hash, key string) *job {
	s.seq++
	j := &job{
		id:     fmt.Sprintf("run-%06d-%s", s.seq, hash[:12]),
		spec:   sp,
		hash:   hash,
		key:    key,
		status: StatusQueued,
		done:   make(chan struct{}),
		events: newEventLog(0, &s.eventsDropped),
	}
	j.events.append(Event{Type: EventStatus, Status: StatusQueued}, false)
	return j
}

// observeKey is the cache-key suffix for observed submissions. Hash()
// deliberately excludes the observe block — observation never changes a
// run's results — but the cached Result payload carries the sampled series,
// so two submissions differing only in cadence must not share an entry.
func observeKey(o *spec.ObserveSpec) string {
	if o == nil {
		return ""
	}
	return fmt.Sprintf("+obs:%d:%g:%d", o.EveryEvents, o.Interval, o.MaxSamples)
}

// traceKey is the cache-key suffix for traced submissions, for the same
// reason as observeKey: Hash() excludes the trace block (tracing never
// changes a run's results), but the cached payload carries the exported
// events, so a traced and an untraced submission of the same scenario must
// not share an entry — nor two traced ones differing in cap.
func traceKey(t *spec.TraceSpec) string {
	if t == nil {
		return ""
	}
	return fmt.Sprintf("+tr:%d", t.MaxEvents)
}

// Get snapshots a job by id.
func (s *Service) Get(id string) (View, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return View{}, ErrNotFound
	}
	return j.view(), nil
}

// Wait blocks until the job finishes (done, failed or cancelled) or ctx
// ends, then snapshots it either way. The snapshot comes from the held job
// pointer, not a second id lookup: history retirement may evict the job
// from the index while a long waiter sleeps, and a run that finished must
// never be reported as not-found to the client that submitted it. When
// ctx ends before the job, the (non-terminal) snapshot is returned with
// ctx.Err() — a nil error always means the snapshot is final.
func (s *Service) Wait(ctx context.Context, id string) (View, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return View{}, ErrNotFound
	}
	return s.awaitJob(ctx, j)
}

// awaitJob blocks on the job handle and snapshots it, pairing the snapshot
// with ctx.Err() when the context — not the job — ended the wait. A job
// that finished in the same instant counts as finished: the caller asked
// for the result and it exists.
func (s *Service) awaitJob(ctx context.Context, j *job) (View, error) {
	var werr error
	select {
	case <-j.done:
	case <-ctx.Done():
		select {
		case <-j.done: // finished while ctx raced: deliver the result
		default:
			werr = ctx.Err()
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.view(), werr
}

// Cancel stops a job: a queued job is cancelled immediately; a running
// job's result is discarded when its execution returns (the simulation
// itself is not preemptible). Finished jobs return ErrFinished. A job
// that other submissions were deduplicated onto returns ErrShared: the
// coalesced submitters are waiting on this one run, and one client's
// cancel must not discard everyone else's result.
func (s *Service) Cancel(id string) (View, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return View{}, ErrNotFound
	}
	if j.dedups > 0 && (j.status == StatusQueued || j.status == StatusRunning) {
		return j.view(), ErrShared
	}
	switch j.status {
	case StatusQueued:
		j.status = StatusCancelled
		if s.inflight[j.key] == j {
			delete(s.inflight, j.key)
		}
		j.events.finish(StatusCancelled, "")
		close(j.done)
		s.retireLocked(j)
	case StatusRunning:
		j.status = StatusCancelled
		if s.inflight[j.key] == j {
			delete(s.inflight, j.key)
		}
		// The worker observes the state when the run returns and discards
		// the result; j.done closes there. The event stream seals now —
		// subscribers should not sit through a run whose result is already
		// discarded (finish also stops the run's late sample events).
		j.events.finish(StatusCancelled, "")
	default:
		return j.view(), ErrFinished
	}
	return j.view(), nil
}

// Stats summarises the service for health endpoints. The cache counters
// are split per tier: CacheEntries/MemoryHits describe the in-memory LRU,
// StoreEntries/StoreHits the persistent tier (zero when -store is off).
// A hit on either tier means no simulation ran for that submission.
type Stats struct {
	Workers      int `json:"workers"`
	QueueDepth   int `json:"queue_depth"`
	Jobs         int `json:"jobs"`
	Queued       int `json:"queued"`
	Running      int `json:"running"`
	CacheEntries int `json:"cache_entries"`
	MemoryHits   int `json:"memory_hits"`
	StoreEntries int `json:"store_entries"`
	StoreHits    int `json:"store_hits"`
	StoreErrors  int `json:"store_errors"`
	// Submissions counts every validated submission (including cache hits
	// and dedup riders).
	Submissions int `json:"submissions"`
	// Done/Failed/Cancelled count terminal job transitions since start.
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	// RejectedQueueFull/RejectedOverload count refused submissions, by
	// reason (queue at capacity vs admission control).
	RejectedQueueFull int `json:"rejected_queue_full"`
	RejectedOverload  int `json:"rejected_overload"`
	// EventsDropped counts progress events discarded past per-job stream
	// caps, service-wide.
	EventsDropped int64 `json:"events_dropped"`
	// UptimeSeconds is the wall-clock age of the service process.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	dropped := atomic.LoadInt64(&s.eventsDropped)
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Workers:           s.opts.Workers,
		QueueDepth:        s.opts.QueueDepth,
		Jobs:              len(s.jobs),
		CacheEntries:      s.cache.len(),
		MemoryHits:        s.cache.memHits,
		StoreEntries:      s.cache.persistLen(),
		StoreHits:         s.cache.persistHits,
		StoreErrors:       s.cache.persistErrs,
		Submissions:       s.submissions,
		Done:              s.finished[StatusDone],
		Failed:            s.finished[StatusFailed],
		Cancelled:         s.finished[StatusCancelled],
		RejectedQueueFull: s.rejectedQueueFull,
		RejectedOverload:  s.rejectedOverload,
		EventsDropped:     dropped,
		UptimeSeconds:     time.Since(s.start).Seconds(),
	}
	for _, j := range s.jobs {
		switch j.status {
		case StatusQueued:
			st.Queued++
		case StatusRunning:
			st.Running++
		}
	}
	return st
}

// Close stops accepting submissions, waits for in-flight jobs to drain,
// and closes the cache tiers (including the persistent store, whose
// completed writes are already durable).
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
	s.cache.close()
}

// worker drains the queue.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		if s.opts.BeforeJob != nil {
			s.opts.BeforeJob()
		}
		s.mu.Lock()
		if j.status != StatusQueued { // cancelled while queued
			s.mu.Unlock()
			continue
		}
		j.status = StatusRunning
		s.mu.Unlock()
		j.events.append(Event{Type: EventStatus, Status: StatusRunning}, false)

		res, err := execute(j, s.opts.SweepWorkers)

		s.mu.Lock()
		if s.inflight[j.key] == j {
			delete(s.inflight, j.key)
		}
		switch {
		case j.status == StatusCancelled:
			// Result discarded; Cancel already removed the inflight entry
			// and sealed the event stream.
		case err != nil:
			j.status = StatusFailed
			j.err = err.Error()
			j.failure = classifyFailure(err)
			j.events.finish(StatusFailed, j.err)
		default:
			j.status = StatusDone
			j.result = res
			if j.cacheable {
				s.cache.put(j.key, res)
			}
			j.events.finish(StatusDone, "")
		}
		close(j.done)
		s.retireLocked(j)
		s.mu.Unlock()
	}
}

// classifyFailure buckets a failed run for operators. The kernel's typed
// livelock error survives every wrapping layer (runner, harness sweeps wrap
// with %w), so errors.Is sees through a sweep whose worst repetition ran out
// of budget just as well as a single run's.
func classifyFailure(err error) string {
	if errors.Is(err, sim.ErrMaxEvents) {
		return "livelock"
	}
	return "error"
}

// execute runs one scenario (guarding against engine panics: a served
// platform must report a bad run, not die with it), streaming progress into
// the job's event log: sweep positions as they complete, probe samples as
// they are taken. Both hooks only append to the log, so the simulation
// itself stays byte-identical to an unstreamed run.
func execute(j *job, sweepWorkers int) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("service: run panicked: %v", r)
		}
	}()
	sp := j.spec
	if sp.Sweep != nil {
		points, err := sp.RunSweepStream(sweepWorkers, j.pointSink())
		if err != nil {
			return nil, err
		}
		return &Result{Points: spec.SweepView(points, sp.Sweep.Metrics)}, nil
	}
	env, proto, err := sp.Build()
	if err != nil {
		return nil, err
	}
	if env.Observe != nil {
		// BuildEnv constructed this probe config fresh from the spec, so
		// attaching the live sink mutates nothing the caller shares.
		env.Observe.Sink = j.sampleSink()
	}
	rep, err := runner.Run(env, proto)
	if err != nil {
		return nil, err
	}
	res = &Result{Report: &rep, Metrics: rep.Metrics(), Trace: rep.Trace}
	// The trace lives on the Result, not inside the report: one encoding in
	// the stored payload, and the trace endpoint reads it directly.
	rep.Trace = nil
	return res, nil
}
