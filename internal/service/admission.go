package service

import (
	"errors"
	"fmt"
	"time"
)

// ErrOverloaded: admission control rejected the submission; the error
// carries a retry hint (see RetryAfter). The HTTP layer maps it to
// 503 + Retry-After so overload degrades to polite backpressure instead
// of queue starvation.
var ErrOverloaded = errors.New("service: submission rate limit exceeded")

// overloadError wraps ErrOverloaded with the token bucket's estimate of
// when the next submission will be admitted.
type overloadError struct {
	retryAfter time.Duration
}

func (e *overloadError) Error() string {
	return fmt.Sprintf("service: submission rate limit exceeded (retry in %s)", e.retryAfter.Round(time.Millisecond))
}

// Is makes errors.Is(err, ErrOverloaded) true for callers that only care
// about the category.
func (e *overloadError) Is(target error) bool { return target == ErrOverloaded }

// RetryAfter extracts the retry hint from an ErrOverloaded error, rounded
// up to whole seconds (minimum 1) — the shape the Retry-After header wants.
func RetryAfter(err error) int {
	var oe *overloadError
	if !errors.As(err, &oe) {
		return 1
	}
	secs := int((oe.retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// tokenBucket admits fresh submissions at a sustained rate with a bounded
// burst. It is called under the service mutex; time comes through an
// injectable clock so tests are deterministic.
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    func() time.Time
}

// newTokenBucket returns a full bucket. rate must be positive; burst <= 0
// defaults to max(1, ceil(2*rate)) — enough headroom that a client at the
// sustained rate never sees a spurious rejection.
func newTokenBucket(rate float64, burst int, now func() time.Time) *tokenBucket {
	if now == nil {
		now = time.Now
	}
	b := float64(burst)
	if burst <= 0 {
		b = 2 * rate
		if b < 1 {
			b = 1
		}
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b, last: now(), now: now}
}

// take consumes one token if available. Otherwise it reports how long
// until the bucket refills one.
func (b *tokenBucket) take() (bool, time.Duration) {
	t := b.now()
	if dt := t.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = t
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	return false, wait
}
