package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"abenet/internal/runner"
	"abenet/internal/spec"
	"abenet/internal/trace"
)

// RunRequest is the body of POST /v1/runs.
type RunRequest struct {
	// Spec is the scenario (the internal/spec JSON schema, strict).
	Spec json.RawMessage `json:"spec"`
	// Seed, when set, overrides the spec's env seed for this run.
	Seed *uint64 `json:"seed,omitempty"`
	// Wait, when true, blocks the request until the job finishes (or the
	// client disconnects) and returns the final snapshot.
	Wait bool `json:"wait,omitempty"`
}

// errorBody is every non-2xx response's JSON shape.
type errorBody struct {
	Error string `json:"error"`
}

// HandlerOptions tunes the HTTP layer.
type HandlerOptions struct {
	// MaxBodyBytes caps POST /v1/runs request bodies; beyond it the
	// request fails with 413 instead of buffering an unbounded body into
	// memory. 0 means 1 MiB — generous for any real scenario spec.
	MaxBodyBytes int64
	// Version is the build/version string reported by the full /healthz
	// response; empty means "dev".
	Version string
}

// DefaultMaxBodyBytes is the POST body cap when HandlerOptions leaves
// MaxBodyBytes at 0.
const DefaultMaxBodyBytes = 1 << 20

// NewHandler returns the service's HTTP API:
//
//	POST /v1/runs             submit a scenario ({"spec": ..., "seed", "wait"})
//	GET  /v1/runs/{id}        job status / result
//	GET  /v1/runs/{id}/events job progress stream (Server-Sent Events)
//	GET  /v1/runs/{id}/trace  causal trace export (?format=chrome|jsonl|text)
//	DELETE /v1/runs/{id}      cancel a job
//	GET  /v1/protocols        registry metadata (names, options, capabilities)
//	GET  /healthz             liveness + service counters (?quick=1: status only)
//	GET  /metrics             service counters, Prometheus text format
func NewHandler(svc *Service, hopts HandlerOptions) http.Handler {
	maxBody := hopts.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	version := hopts.Version
	if version == "" {
		version = "dev"
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		var req RunRequest
		r.Body = http.MaxBytesReader(w, r.Body, maxBody)
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
				return
			}
			writeError(w, http.StatusBadRequest, fmt.Errorf("request body: %w", err))
			return
		}
		if dec.More() {
			writeError(w, http.StatusBadRequest, errors.New("request body: trailing data after JSON value"))
			return
		}
		if len(bytes.TrimSpace(req.Spec)) == 0 {
			writeError(w, http.StatusBadRequest, errors.New(`request needs a "spec"`))
			return
		}
		sp, err := spec.DecodeBytes(req.Spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// The wait path submits and waits on the job handle in one service
		// call: a by-id re-lookup could race history retirement and report
		// a finished run as not-found.
		var view View
		if req.Wait {
			view, err = svc.SubmitAndWait(r.Context(), sp, req.Seed)
		} else {
			view, err = svc.Submit(sp, req.Seed)
		}
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case errors.Is(err, ErrOverloaded):
			w.Header().Set("Retry-After", strconv.Itoa(RetryAfter(err)))
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// The wait ended (client gone, server deadline) before the job:
			// report the still-in-flight snapshot as accepted-not-finished.
			writeJSON(w, http.StatusAccepted, view)
			return
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, statusCode(view), view)
	})

	mux.HandleFunc("GET /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		view, err := svc.Get(r.PathValue("id"))
		if errors.Is(err, ErrNotFound) {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, view)
	})

	mux.HandleFunc("DELETE /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		view, err := svc.Cancel(r.PathValue("id"))
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, err)
			return
		case errors.Is(err, ErrFinished), errors.Is(err, ErrShared):
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, view)
	})

	mux.HandleFunc("GET /v1/protocols", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"protocols": runner.Infos()})
	})

	mux.HandleFunc("GET /v1/runs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(svc, w, r)
	})

	mux.HandleFunc("GET /v1/runs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		serveTrace(svc, w, r)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// quick=1 is the load-balancer probe shape: status only, no lock
		// acquisition, no counter marshalling.
		if r.URL.Query().Get("quick") == "1" {
			writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
			return
		}
		stats := svc.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"status":         "ok",
			"version":        version,
			"uptime_seconds": stats.UptimeSeconds,
			"stats":          stats,
		})
	})

	mux.HandleFunc("GET /metrics", metricsHandler(svc))

	return mux
}

// serveEvents streams a job's progress log as Server-Sent Events: a full
// replay from sequence 0 (or the Last-Event-ID header, for reconnecting
// clients), then the live tail. Each event is
//
//	id: <seq>
//	event: <status|point|sample>
//	data: <the Event, JSON>
//
// The stream ends after the terminal status event — clients need no
// sentinel beyond it — or when the client disconnects; the pulse-channel
// subscription model registers nothing per subscriber, so a vanished
// client leaks nothing and never blocks a worker.
func serveEvents(svc *Service, w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("response writer does not support streaming"))
		return
	}
	seq := 0
	if last := r.Header.Get("Last-Event-ID"); last != "" {
		if n, err := strconv.Atoi(last); err == nil && n >= 0 {
			seq = n + 1
		}
	}
	id := r.PathValue("id")
	// Resolve the job before committing to the event-stream content type so
	// an unknown id is still a JSON 404.
	if _, _, _, err := svc.EventsSince(id, seq); errors.Is(err, ErrNotFound) {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	for {
		evs, pulse, done, err := svc.EventsSince(id, seq)
		if err != nil {
			// History retirement evicted the job mid-stream; nothing more
			// will ever arrive.
			return
		}
		for _, ev := range evs {
			data, merr := json.Marshal(ev)
			if merr != nil {
				return
			}
			if _, werr := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); werr != nil {
				return
			}
			seq = ev.Seq + 1
		}
		flusher.Flush()
		if done {
			return
		}
		select {
		case <-pulse:
		case <-r.Context().Done():
			return
		}
	}
}

// serveTrace renders a finished traced run's causal export in the requested
// format: chrome (trace-event JSON, Perfetto-loadable, the default), jsonl
// (one event per line plus a trailer), or text. An unknown job or a run that
// was not traced is 404; a job that has not finished successfully yet is 409
// (the export only exists on done jobs); an unknown format is 400.
func serveTrace(svc *Service, w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "chrome"
	}
	switch format {
	case "chrome", "jsonl", "text":
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown trace format %q (chrome, jsonl or text)", format))
		return
	}
	view, err := svc.Get(r.PathValue("id"))
	if errors.Is(err, ErrNotFound) {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if view.Status != StatusDone {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job is %s; the trace exists once it is done", view.Status))
		return
	}
	if view.Result == nil || view.Result.Trace == nil {
		writeError(w, http.StatusNotFound,
			errors.New(`run was not traced (submit with an env "trace" block)`))
		return
	}
	exp := view.Result.Trace
	switch format {
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = trace.WriteChrome(w, exp)
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		_ = trace.WriteJSONL(w, exp)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = trace.WriteText(w, exp)
	}
}

// statusCode maps a submission snapshot onto its HTTP code: 200 when the
// response already carries the outcome, 202 while the job is still going.
func statusCode(v View) int {
	switch v.Status {
	case StatusQueued, StatusRunning:
		return http.StatusAccepted
	default:
		return http.StatusOK
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}
