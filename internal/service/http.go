package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"abenet/internal/runner"
	"abenet/internal/spec"
)

// RunRequest is the body of POST /v1/runs.
type RunRequest struct {
	// Spec is the scenario (the internal/spec JSON schema, strict).
	Spec json.RawMessage `json:"spec"`
	// Seed, when set, overrides the spec's env seed for this run.
	Seed *uint64 `json:"seed,omitempty"`
	// Wait, when true, blocks the request until the job finishes (or the
	// client disconnects) and returns the final snapshot.
	Wait bool `json:"wait,omitempty"`
}

// errorBody is every non-2xx response's JSON shape.
type errorBody struct {
	Error string `json:"error"`
}

// HandlerOptions tunes the HTTP layer.
type HandlerOptions struct {
	// MaxBodyBytes caps POST /v1/runs request bodies; beyond it the
	// request fails with 413 instead of buffering an unbounded body into
	// memory. 0 means 1 MiB — generous for any real scenario spec.
	MaxBodyBytes int64
}

// DefaultMaxBodyBytes is the POST body cap when HandlerOptions leaves
// MaxBodyBytes at 0.
const DefaultMaxBodyBytes = 1 << 20

// NewHandler returns the service's HTTP API:
//
//	POST /v1/runs          submit a scenario ({"spec": ..., "seed", "wait"})
//	GET  /v1/runs/{id}     job status / result
//	DELETE /v1/runs/{id}   cancel a job
//	GET  /v1/protocols     registry metadata (names, options, capabilities)
//	GET  /healthz          liveness + service counters
func NewHandler(svc *Service, hopts HandlerOptions) http.Handler {
	maxBody := hopts.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		var req RunRequest
		r.Body = http.MaxBytesReader(w, r.Body, maxBody)
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
				return
			}
			writeError(w, http.StatusBadRequest, fmt.Errorf("request body: %w", err))
			return
		}
		if dec.More() {
			writeError(w, http.StatusBadRequest, errors.New("request body: trailing data after JSON value"))
			return
		}
		if len(bytes.TrimSpace(req.Spec)) == 0 {
			writeError(w, http.StatusBadRequest, errors.New(`request needs a "spec"`))
			return
		}
		sp, err := spec.DecodeBytes(req.Spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// The wait path submits and waits on the job handle in one service
		// call: a by-id re-lookup could race history retirement and report
		// a finished run as not-found.
		var view View
		if req.Wait {
			view, err = svc.SubmitAndWait(r.Context(), sp, req.Seed)
		} else {
			view, err = svc.Submit(sp, req.Seed)
		}
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case errors.Is(err, ErrOverloaded):
			w.Header().Set("Retry-After", strconv.Itoa(RetryAfter(err)))
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// The wait ended (client gone, server deadline) before the job:
			// report the still-in-flight snapshot as accepted-not-finished.
			writeJSON(w, http.StatusAccepted, view)
			return
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, statusCode(view), view)
	})

	mux.HandleFunc("GET /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		view, err := svc.Get(r.PathValue("id"))
		if errors.Is(err, ErrNotFound) {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, view)
	})

	mux.HandleFunc("DELETE /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		view, err := svc.Cancel(r.PathValue("id"))
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, err)
			return
		case errors.Is(err, ErrFinished), errors.Is(err, ErrShared):
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, view)
	})

	mux.HandleFunc("GET /v1/protocols", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"protocols": runner.Infos()})
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "stats": svc.Stats()})
	})

	return mux
}

// statusCode maps a submission snapshot onto its HTTP code: 200 when the
// response already carries the outcome, 202 while the job is still going.
func statusCode(v View) int {
	switch v.Status {
	case StatusQueued, StatusRunning:
		return http.StatusAccepted
	default:
		return http.StatusOK
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}
