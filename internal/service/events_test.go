package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"abenet/internal/spec"
)

// observedFixture loads a fixture and attaches an observe block.
func observedFixture(t *testing.T, name string, every uint64) *spec.Spec {
	t.Helper()
	s := loadFixture(t, name)
	s.Env.Observe = &spec.ObserveSpec{EveryEvents: every}
	return s
}

// TestEventStreamLifecycle: a job's event log replays the whole story —
// queued, running, the samples of an observed run (first one carrying the
// gauge names), and the terminal status — with dense sequence numbers.
func TestEventStreamLifecycle(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()

	v, err := svc.Submit(observedFixture(t, "election_ring.json", 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	await(t, svc, v.ID)

	evs, _, done, err := svc.EventsSince(v.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("finished job's stream not sealed")
	}
	if len(evs) < 4 {
		t.Fatalf("only %d events; want queued + running + samples + done", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d; sequence not dense", i, ev.Seq)
		}
	}
	if evs[0].Type != EventStatus || evs[0].Status != StatusQueued {
		t.Fatalf("first event = %+v, want status queued", evs[0])
	}
	if evs[1].Type != EventStatus || evs[1].Status != StatusRunning {
		t.Fatalf("second event = %+v, want status running", evs[1])
	}
	last := evs[len(evs)-1]
	if last.Type != EventStatus || last.Status != StatusDone {
		t.Fatalf("last event = %+v, want status done", last)
	}
	var samples int
	for i, ev := range evs {
		if ev.Type != EventSample {
			continue
		}
		if samples == 0 {
			if len(ev.Sample.Names) == 0 {
				t.Fatal("first sample event carries no gauge names")
			}
			if i != 2 {
				t.Fatalf("first sample at index %d, want right after running", i)
			}
		} else if len(ev.Sample.Names) != 0 {
			t.Fatalf("sample %d repeats the gauge names", samples)
		}
		samples++
	}
	final, err := svc.Get(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	series := final.Result.Report.Series
	if series == nil {
		t.Fatal("observed job result carries no series")
	}
	if samples != len(series.Samples) {
		t.Fatalf("streamed %d samples, result stored %d", samples, len(series.Samples))
	}
	// Mid-log resume: replay from an offset returns exactly the suffix.
	tail, _, done, err := svc.EventsSince(v.ID, last.Seq)
	if err != nil || !done || len(tail) != 1 || tail[0].Seq != last.Seq {
		t.Fatalf("suffix replay = %v (done %v, err %v)", tail, done, err)
	}
}

// TestSweepPointStreaming: a sweep job streams one point event per
// position, and the streamed aggregates are identical to the final result.
func TestSweepPointStreaming(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()

	sp := loadFixture(t, "itai_rodeh_sweep.json")
	v, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	final := await(t, svc, v.ID)
	if final.Status != StatusDone {
		t.Fatalf("sweep ended %s (%s)", final.Status, final.Error)
	}

	evs, _, _, err := svc.EventsSince(v.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	points := map[int]*spec.PointView{}
	for _, ev := range evs {
		if ev.Type == EventPoint {
			points[ev.XIdx] = ev.Point
		}
	}
	if len(points) != len(final.Result.Points) {
		t.Fatalf("streamed %d points, result has %d", len(points), len(final.Result.Points))
	}
	for i, want := range final.Result.Points {
		got := points[i]
		if got == nil {
			t.Fatalf("position %d never streamed", i)
		}
		a, _ := json.Marshal(got)
		b, _ := json.Marshal(want)
		if string(a) != string(b) {
			t.Fatalf("position %d: streamed point differs from final result:\n%s\n%s", i, a, b)
		}
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id    string
	event string
	data  Event
}

// readSSE consumes an SSE body until EOF (the server closes the stream
// after the terminal event).
func readSSE(t *testing.T, body *bufio.Scanner) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	for body.Scan() {
		line := body.Text()
		switch {
		case line == "":
			if cur.event != "" {
				out = append(out, cur)
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatalf("unparsable SSE data line %q: %v", line, err)
			}
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	return out
}

// TestSSEReplayAndTermination: the events endpoint replays a finished
// job's whole log as well-formed SSE frames and then closes the stream;
// Last-Event-ID resumes mid-log; an unknown id is a JSON 404.
func TestSSEReplayAndTermination(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc, HandlerOptions{}))
	defer ts.Close()

	v, err := svc.Submit(observedFixture(t, "election_ring.json", 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	await(t, svc, v.ID)

	resp, err := http.Get(ts.URL + "/v1/runs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	frames := readSSE(t, bufio.NewScanner(resp.Body))
	if len(frames) < 4 {
		t.Fatalf("replayed %d frames", len(frames))
	}
	for i, f := range frames {
		if f.id != fmt.Sprint(i) || f.data.Seq != i {
			t.Fatalf("frame %d: id %q seq %d; stream not ordered", i, f.id, f.data.Seq)
		}
		if f.event != f.data.Type {
			t.Fatalf("frame %d: event name %q vs payload type %q", i, f.event, f.data.Type)
		}
	}
	lastFrame := frames[len(frames)-1]
	if lastFrame.event != EventStatus || lastFrame.data.Status != StatusDone {
		t.Fatalf("stream did not terminate on the done event: %+v", lastFrame)
	}

	// Reconnect with Last-Event-ID: only the suffix is replayed.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/runs/"+v.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", fmt.Sprint(len(frames)-2))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	tail := readSSE(t, bufio.NewScanner(resp2.Body))
	if len(tail) != 1 || tail[0].data.Seq != len(frames)-1 {
		t.Fatalf("Last-Event-ID resume replayed %d frames: %+v", len(tail), tail)
	}

	// Unknown id: JSON 404, not an event stream.
	resp3, err := http.Get(ts.URL + "/v1/runs/run-does-not-exist/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id = %d, want 404", resp3.StatusCode)
	}
}

// TestSSELiveFollowAndDisconnect: a subscriber attached before the job
// runs sees the live tail through to termination; a subscriber that
// disconnects mid-stream blocks nothing — the job still completes and the
// service still shuts down cleanly (the pulse-channel design registers no
// per-subscriber state to leak).
func TestSSELiveFollowAndDisconnect(t *testing.T) {
	gate := make(chan struct{})
	svc := New(Options{Workers: 1, BeforeJob: func() { <-gate }})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc, HandlerOptions{}))
	defer ts.Close()

	v, err := svc.Submit(observedFixture(t, "election_ring.json", 1), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Subscriber A: attaches while the job is still queued, follows live.
	respA, err := http.Get(ts.URL + "/v1/runs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer respA.Body.Close()

	// Subscriber B: attaches, reads the queued event, then disconnects.
	ctxB, cancelB := context.WithCancel(context.Background())
	reqB, _ := http.NewRequestWithContext(ctxB, "GET", ts.URL+"/v1/runs/"+v.ID+"/events", nil)
	respB, err := http.DefaultClient.Do(reqB)
	if err != nil {
		t.Fatal(err)
	}
	scB := bufio.NewScanner(respB.Body)
	if !scB.Scan() {
		t.Fatal("subscriber B read nothing")
	}
	cancelB()
	respB.Body.Close()

	// Release the worker; the vanished subscriber must not block the run.
	close(gate)
	frames := readSSE(t, bufio.NewScanner(respA.Body))
	last := frames[len(frames)-1]
	if last.data.Type != EventStatus || last.data.Status != StatusDone {
		t.Fatalf("live follow ended on %+v, want status done", last.data)
	}
	var sawRunning bool
	for _, f := range frames {
		if f.data.Type == EventStatus && f.data.Status == StatusRunning {
			sawRunning = true
		}
	}
	if !sawRunning {
		t.Fatal("live subscriber missed the running transition")
	}

	done := make(chan struct{})
	go func() { svc.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("service shutdown hung after a client disconnect")
	}
}

// TestObserveCacheKeying: observation is excluded from the scenario hash,
// so the cache must key the observe fingerprint separately — an observed
// submission never serves a plain cached result (which has no series), and
// vice versa; identical observed submissions do share.
func TestObserveCacheKeying(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()

	plain, err := svc.Submit(loadFixture(t, "election_ring.json"), nil)
	if err != nil {
		t.Fatal(err)
	}
	await(t, svc, plain.ID)

	observed, err := svc.Submit(observedFixture(t, "election_ring.json", 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if observed.CacheHits != 0 {
		t.Fatal("observed submission served from the unobserved cache entry")
	}
	final := await(t, svc, observed.ID)
	if final.Result.Report.Series == nil {
		t.Fatal("observed run lost its series")
	}

	again, err := svc.Submit(observedFixture(t, "election_ring.json", 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheHits != 1 {
		t.Fatalf("identical observed resubmission cache_hits = %d, want 1", again.CacheHits)
	}
	if again.Result.Report.Series == nil {
		t.Fatal("cached observed result lost its series")
	}
	// A different cadence is a different payload: no hit.
	other, err := svc.Submit(observedFixture(t, "election_ring.json", 7), nil)
	if err != nil {
		t.Fatal(err)
	}
	if other.CacheHits != 0 {
		t.Fatal("different cadence served the wrong cached series")
	}
}

// promLine matches one Prometheus text-format sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9.eE+-]+$`)

// TestMetricsEndpoint: /metrics parses under a Prometheus text-format
// check — every sample line well-formed, every family preceded by HELP and
// TYPE — and the counters agree with the service's own Stats.
func TestMetricsEndpoint(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc, HandlerOptions{}))
	defer ts.Close()

	v, err := svc.Submit(loadFixture(t, "election_ring.json"), nil)
	if err != nil {
		t.Fatal(err)
	}
	await(t, svc, v.ID)
	if _, err := svc.Submit(loadFixture(t, "election_ring.json"), nil); err != nil {
		t.Fatal(err) // cache hit, bumps the hit counter
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	typed := map[string]bool{}
	values := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 || (parts[3] != "counter" && parts[3] != "gauge") {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line %q", line)
		}
		if !promLine.MatchString(line) {
			t.Fatalf("sample line %q fails the text-format check", line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		if !typed[name] {
			t.Fatalf("sample %q has no preceding # TYPE", line)
		}
		i := strings.LastIndexByte(line, ' ')
		var val float64
		fmt.Sscanf(line[i+1:], "%g", &val)
		values[line[:i]] = val
	}

	st := svc.Stats()
	checks := map[string]float64{
		"abe_submissions_total":                  float64(st.Submissions),
		`abe_jobs_finished_total{status="done"}`: float64(st.Done),
		`abe_cache_hits_total{tier="memory"}`:    float64(st.MemoryHits),
		"abe_workers":                            float64(st.Workers),
	}
	for series, want := range checks {
		got, ok := values[series]
		if !ok {
			t.Errorf("missing series %s", series)
		} else if got != want {
			t.Errorf("%s = %g, want %g (Stats)", series, got, want)
		}
	}
	if values["abe_submissions_total"] < 2 || values[`abe_cache_hits_total{tier="memory"}`] < 1 {
		t.Fatalf("counters did not move: %v", values)
	}
}

// TestHealthzQuick: the quick probe returns status only; the full response
// carries the version and uptime satellites.
func TestHealthzQuick(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc, HandlerOptions{Version: "test-1.2.3"}))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz?quick=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var quick map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&quick); err != nil {
		t.Fatal(err)
	}
	if string(quick["status"]) != `"ok"` || len(quick) != 1 {
		t.Fatalf("quick healthz = %v, want status only", quick)
	}

	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var full struct {
		Status        string  `json:"status"`
		Version       string  `json:"version"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		Stats         *Stats  `json:"stats"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&full); err != nil {
		t.Fatal(err)
	}
	if full.Status != "ok" || full.Version != "test-1.2.3" || full.Stats == nil {
		t.Fatalf("full healthz = %+v", full)
	}
	if full.UptimeSeconds <= 0 {
		t.Fatalf("uptime_seconds = %g", full.UptimeSeconds)
	}
}

// TestEventLogCap: progress events past the cap are dropped (not stored),
// the drop count lands on the terminal status event, and status events
// always land regardless.
func TestEventLogCap(t *testing.T) {
	var dropped int64
	l := newEventLog(3, &dropped)
	l.append(Event{Type: EventStatus, Status: StatusQueued}, false)
	l.append(Event{Type: EventStatus, Status: StatusRunning}, false)
	for i := 0; i < 5; i++ {
		l.append(Event{Type: EventSample, Sample: &SampleView{Event: uint64(i)}}, true)
	}
	l.finish(StatusDone, "")
	evs, _, done := l.since(0)
	if !done {
		t.Fatal("log not sealed")
	}
	// 2 status + 1 sample (cap 3) + terminal status.
	if len(evs) != 4 {
		t.Fatalf("stored %d events, want 4", len(evs))
	}
	last := evs[len(evs)-1]
	if last.Status != StatusDone || last.Dropped != 4 {
		t.Fatalf("terminal event = %+v, want done with 4 dropped", last)
	}
	if dropped != 4 {
		t.Fatalf("service-wide drop counter = %d", dropped)
	}
	// Appends after sealing are discarded silently.
	l.append(Event{Type: EventSample}, true)
	if evs2, _, _ := l.since(0); len(evs2) != 4 {
		t.Fatal("sealed log accepted an append")
	}
}
