package service

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRequestLoggerLines: each request becomes one structured line with
// method, path, status and latency, plus the job id on job routes.
func TestRequestLoggerLines(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	ts := httptest.NewServer(RequestLogger(logger, NewHandler(svc, HandlerOptions{})))
	defer ts.Close()

	v, err := svc.Submit(loadFixture(t, "election_ring.json"), nil)
	if err != nil {
		t.Fatal(err)
	}
	await(t, svc, v.ID)

	for _, path := range []string{"/healthz?quick=1", "/v1/runs/" + v.ID, "/v1/runs/missing"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d log lines, want 3:\n%s", len(lines), buf.String())
	}
	for _, want := range []string{"method=GET", "path=/healthz", "status=200", "latency="} {
		if !strings.Contains(lines[0], want) {
			t.Fatalf("healthz line missing %s: %s", want, lines[0])
		}
	}
	if !strings.Contains(lines[1], "job="+v.ID) {
		t.Fatalf("job route line missing the job id: %s", lines[1])
	}
	if !strings.Contains(lines[2], "status=404") {
		t.Fatalf("missing-job line should log the 404: %s", lines[2])
	}
}

// TestRequestLoggerNilIsIdentity: a nil logger must return the handler
// unchanged — the quiet default for tests and embedders.
func TestRequestLoggerNilIsIdentity(t *testing.T) {
	h := http.NewServeMux()
	if got := RequestLogger(nil, h); got != http.Handler(h) {
		t.Fatal("nil logger wrapped the handler anyway")
	}
}

// TestRequestLoggerPreservesSSE: the logging wrapper must keep exposing
// http.Flusher, or the progress stream would 500 behind it.
func TestRequestLoggerPreservesSSE(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	ts := httptest.NewServer(RequestLogger(logger, NewHandler(svc, HandlerOptions{})))
	defer ts.Close()

	v, err := svc.Submit(loadFixture(t, "election_ring.json"), nil)
	if err != nil {
		t.Fatal(err)
	}
	await(t, svc, v.ID)

	resp, err := http.Get(ts.URL + "/v1/runs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE through the logger = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q — the Flusher was lost in the wrapper", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.String(), "event: status") {
		t.Fatalf("no status events in the stream:\n%s", body.String())
	}
	if !strings.Contains(buf.String(), "path=/v1/runs/"+v.ID+"/events") {
		t.Fatalf("stream request not logged:\n%s", buf.String())
	}
}
