// Per-job progress streams: every job owns an append-only event log that
// records its lifecycle transitions and, while it runs, its streamed
// progress — sweep positions as they complete (spec.RunSweepStream) and
// probe samples as they are taken (probe.Config.Sink). Subscribers replay
// the log from any sequence number and then follow the live tail via a
// pulse channel, so a late subscriber sees exactly what an early one did.
package service

import (
	"sync"
	"sync/atomic"

	"abenet/internal/probe"
	"abenet/internal/spec"
)

// The event types in a job's progress stream.
const (
	// EventStatus marks a lifecycle transition (queued, running, done,
	// failed, cancelled). The terminal status event carries the job error
	// (failed) and the count of progress events the log cap dropped.
	EventStatus = "status"
	// EventPoint is one completed sweep position (sweep jobs only). Points
	// arrive in completion order, not position order; XIdx says which
	// position finished. Values are identical to the final result's.
	EventPoint = "point"
	// EventSample is one probe sample (observed single runs only). The
	// first sample event carries the series' gauge names; later ones only
	// the values, in the same order.
	EventSample = "sample"
)

// Event is one entry in a job's progress stream.
type Event struct {
	// Seq is the event's position in the log, dense from 0; subscribers
	// resume from the next sequence number after the last one they saw.
	Seq int `json:"seq"`
	// Type is one of EventStatus, EventPoint, EventSample.
	Type string `json:"type"`
	// Status is the new lifecycle state (status events).
	Status Status `json:"status,omitempty"`
	// Error is the failure message (terminal status event of a failed job).
	Error string `json:"error,omitempty"`
	// Dropped counts progress events discarded past the log cap (terminal
	// status event). A non-zero value means the stream is a prefix.
	Dropped int `json:"dropped,omitempty"`
	// XIdx is the completed sweep position's index into Xs (point events).
	XIdx int `json:"x_idx,omitempty"`
	// Point is the completed position's aggregated view (point events).
	Point *spec.PointView `json:"point,omitempty"`
	// Sample is the probe reading (sample events).
	Sample *SampleView `json:"sample,omitempty"`
}

// SampleView is one streamed probe sample.
type SampleView struct {
	// Names are the series' gauge names; set on the first sample event of a
	// job and omitted afterwards (the column order never changes mid-run).
	Names []string `json:"names,omitempty"`
	// Time is the virtual time of the sample.
	Time float64 `json:"time"`
	// Event is the kernel's executed-event count at the sample.
	Event uint64 `json:"event"`
	// Values holds one reading per gauge, in Names order.
	Values []float64 `json:"values"`
}

// defaultEventCap bounds each job's progress events (points and samples);
// status events always land. Past the cap, progress events are counted in
// the terminal status event's Dropped field instead of stored — without a
// bound, a fine-grained probe cadence could hold the whole series in the
// job record a second time.
const defaultEventCap = 8192

// eventLog is one job's append-only progress stream. Appends assign dense
// sequence numbers and wake subscribers by closing (and replacing) the
// pulse channel; subscribers replay with since and block on the returned
// channel for the live tail. There is no per-subscriber registration, so a
// subscriber that vanishes leaks nothing.
type eventLog struct {
	mu      sync.Mutex
	cap     int
	events  []Event
	dropped int
	pulse   chan struct{}
	done    bool

	// droppedTotal, when non-nil, is the service-wide drop counter
	// (atomic), fed alongside the per-job count for /metrics.
	droppedTotal *int64
}

func newEventLog(cap int, droppedTotal *int64) *eventLog {
	if cap <= 0 {
		cap = defaultEventCap
	}
	return &eventLog{cap: cap, pulse: make(chan struct{}), droppedTotal: droppedTotal}
}

// append adds one event to the log and wakes subscribers. Progress events
// (capped=true) past the cap are counted as dropped instead of stored;
// appends after the terminal event are discarded (a cancelled job's run may
// still be emitting samples when the cancel lands).
func (l *eventLog) append(ev Event, capped bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	if capped && len(l.events) >= l.cap {
		l.dropped++
		if l.droppedTotal != nil {
			atomic.AddInt64(l.droppedTotal, 1)
		}
		return
	}
	l.appendLocked(ev)
}

// finish appends the terminal status event (carrying the drop count) and
// seals the log. Idempotent: a cancel racing the worker's completion keeps
// the first terminal event.
func (l *eventLog) finish(status Status, errMsg string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	l.appendLocked(Event{Type: EventStatus, Status: status, Error: errMsg, Dropped: l.dropped})
	l.done = true
}

// appendLocked assigns the sequence number, stores the event and pulses.
// Callers hold l.mu.
func (l *eventLog) appendLocked(ev Event) {
	ev.Seq = len(l.events)
	l.events = append(l.events, ev)
	close(l.pulse)
	l.pulse = make(chan struct{})
}

// since returns a copy of the events at sequence seq and later, the pulse
// channel that will close on the next append, and whether the log is sealed
// (terminal event recorded). A subscriber loops: drain, then — unless
// sealed — block on the pulse (or its own context) and drain again.
func (l *eventLog) since(seq int) ([]Event, <-chan struct{}, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var evs []Event
	if seq < 0 {
		seq = 0
	}
	if seq < len(l.events) {
		evs = append([]Event(nil), l.events[seq:]...)
	}
	return evs, l.pulse, l.done
}

// EventsSince returns the job's progress events at sequence seq and later,
// a channel that closes when the log next grows, and whether the stream is
// complete (the terminal status event is included). It is the polling/
// blocking primitive behind the SSE endpoint; clients replay from 0 and
// then follow the pulse channel for the live tail.
func (s *Service) EventsSince(id string, seq int) ([]Event, <-chan struct{}, bool, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, nil, false, ErrNotFound
	}
	evs, pulse, done := j.events.since(seq)
	return evs, pulse, done, nil
}

// pointSink returns the RunSweepStream hook feeding a job's event log.
func (j *job) pointSink() func(xIdx int, pv spec.PointView) {
	return func(xIdx int, pv spec.PointView) {
		j.events.append(Event{Type: EventPoint, XIdx: xIdx, Point: &pv}, true)
	}
}

// sampleSink returns the probe.Config.Sink feeding a job's event log. The
// first sample carries the gauge names; values are copied because the
// probe's buffer is only valid for the duration of the callback.
func (j *job) sampleSink() func(names []string, smp probe.Sample) {
	first := true
	return func(names []string, smp probe.Sample) {
		sv := &SampleView{
			Time:   smp.Time,
			Event:  smp.Event,
			Values: append([]float64(nil), smp.Values...),
		}
		if first {
			sv.Names = names
			first = false
		}
		j.events.append(Event{Type: EventSample, Sample: sv}, true)
	}
}
