package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// postRun submits a run request and decodes the response view.
func postRun(t *testing.T, ts *httptest.Server, body any, wantCode int) View {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var e errorBody
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST /v1/runs = %d (%s), want %d", resp.StatusCode, e.Error, wantCode)
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestHTTPEndToEnd covers the acceptance criterion across the third door:
// the same committed spec file produces byte-identical metrics via a direct
// run and via POST /v1/runs, and resubmission is a visible cache hit.
func TestHTTPEndToEnd(t *testing.T) {
	svc := New(Options{Workers: 2})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc, HandlerOptions{}))
	defer ts.Close()

	raw, err := os.ReadFile(filepath.Join(fixtureDir, "election_ring.json"))
	if err != nil {
		t.Fatal(err)
	}

	// Door 1: the direct in-process run of the committed fixture.
	direct := loadFixture(t, "election_ring.json")
	rep, err := direct.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(rep.Metrics())

	// Door 2: the HTTP server, same spec bytes, synchronous submit.
	v := postRun(t, ts, map[string]any{"spec": json.RawMessage(raw), "wait": true}, http.StatusOK)
	if v.Status != StatusDone {
		t.Fatalf("job ended %s (%s)", v.Status, v.Error)
	}
	got, _ := json.Marshal(v.Result.Metrics)
	if !bytes.Equal(got, want) {
		t.Fatalf("HTTP metrics diverged from direct run:\nhttp:   %s\ndirect: %s", got, want)
	}

	// Resubmission: served from the result cache, hit counter visible.
	v2 := postRun(t, ts, map[string]any{"spec": json.RawMessage(raw), "wait": true}, http.StatusOK)
	if v2.CacheHits != 1 {
		t.Fatalf("resubmission cache_hits = %d, want 1", v2.CacheHits)
	}
	got2, _ := json.Marshal(v2.Result.Metrics)
	if !bytes.Equal(got2, want) {
		t.Fatal("cached HTTP result diverged")
	}

	// A seed override is a different run (fresh computation).
	v3 := postRun(t, ts, map[string]any{"spec": json.RawMessage(raw), "seed": 123, "wait": true}, http.StatusOK)
	if v3.CacheHits != 0 || v3.Seed != 123 {
		t.Fatalf("seed override run: hits=%d seed=%d", v3.CacheHits, v3.Seed)
	}

	// GET the finished job by id.
	resp, err := http.Get(ts.URL + "/v1/runs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	var fetched View
	if err := json.NewDecoder(resp.Body).Decode(&fetched); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || fetched.ID != v.ID || fetched.Status != StatusDone {
		t.Fatalf("GET /v1/runs/%s = %d %+v", v.ID, resp.StatusCode, fetched)
	}
}

// TestHTTPErrorsAndMetadata covers the non-happy paths and the metadata
// endpoints.
func TestHTTPErrorsAndMetadata(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc, HandlerOptions{}))
	defer ts.Close()

	// Unknown job.
	resp, err := http.Get(ts.URL + "/v1/runs/run-000000-missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown job = %d, want 404", resp.StatusCode)
	}

	// Invalid spec: strictness reaches through the HTTP layer.
	bad := map[string]any{"spec": json.RawMessage(`{"version":1,"env":{"n":4,"bogus":1},"protocol":{"name":"election"}}`)}
	postRunExpectError(t, ts, bad, http.StatusBadRequest)

	// Unknown request fields are rejected too.
	resp2, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader([]byte(`{"speck":{}}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST with unknown field = %d, want 400", resp2.StatusCode)
	}

	// Protocol metadata lists the registry with capabilities.
	resp3, err := http.Get(ts.URL + "/v1/protocols")
	if err != nil {
		t.Fatal(err)
	}
	var meta struct {
		Protocols []struct {
			Name              string `json:"name"`
			SupportsFaults    bool   `json:"supports_faults"`
			SupportsByzantine bool   `json:"supports_byzantine"`
			SupportsBroadcast bool   `json:"supports_broadcast"`
			Deterministic     bool   `json:"deterministic"`
			Options           []struct {
				Name string `json:"name"`
				Type string `json:"type"`
			} `json:"options"`
		} `json:"protocols"`
	}
	if err := json.NewDecoder(resp3.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if len(meta.Protocols) == 0 {
		t.Fatal("no protocols listed")
	}
	seen := map[string]bool{}
	for _, p := range meta.Protocols {
		seen[p.Name] = true
		if p.Name == "election" && !p.SupportsFaults {
			t.Fatal("election metadata lost fault support")
		}
		// The capability table must separate the three fault tiers:
		// plain (peterson), fault-capable (election), Byzantine-capable
		// with local broadcast (ben-or alone).
		if p.Name == "ben-or" && !(p.SupportsFaults && p.SupportsByzantine && p.SupportsBroadcast) {
			t.Fatalf("ben-or metadata lost adversary capability: %+v", p)
		}
		if p.Name != "ben-or" && (p.SupportsByzantine || p.SupportsBroadcast) {
			t.Fatalf("%s claims adversary capability its engine rejects", p.Name)
		}
		if p.Name == "peterson" && p.SupportsFaults {
			t.Fatal("peterson metadata gained fault support")
		}
	}
	if !seen["election"] || !seen["chang-roberts"] || !seen["ben-or"] {
		t.Fatalf("registry protocols missing from /v1/protocols: %v", seen)
	}

	// Liveness.
	resp4, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Stats  Stats  `json:"stats"`
	}
	if err := json.NewDecoder(resp4.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if health.Status != "ok" || health.Stats.Workers != 1 {
		t.Fatalf("healthz = %+v", health)
	}

	// Cancelling a finished job conflicts.
	fixture, err := os.ReadFile(filepath.Join(fixtureDir, "election_ring.json"))
	if err != nil {
		t.Fatal(err)
	}
	v := postRun(t, ts, map[string]any{"spec": json.RawMessage(fixture), "wait": true}, http.StatusOK)
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/runs/%s", ts.URL, v.ID), nil)
	resp5, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp5.Body.Close()
	if resp5.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE finished job = %d, want 409", resp5.StatusCode)
	}
}

// TestHTTPBodyLimit: POST bodies beyond the cap are refused with 413 and
// the standard error shape — a multi-GB POST must not OOM the server.
func TestHTTPBodyLimit(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc, HandlerOptions{MaxBodyBytes: 2048}))
	defer ts.Close()

	// Oversized but syntactically plausible: the decoder has to keep
	// reading the giant string, and the byte limit trips first.
	big := append(append([]byte(`{"spec": "`), bytes.Repeat([]byte("x"), 4096)...), `"}`...)
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized POST = %d, want 413", resp.StatusCode)
	}
	var e errorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("413 error body missing: %v %q", err, e.Error)
	}

	// A normal-sized spec still goes through the same handler.
	raw, err := os.ReadFile(filepath.Join(fixtureDir, "election_ring.json"))
	if err != nil {
		t.Fatal(err)
	}
	v := postRun(t, ts, map[string]any{"spec": json.RawMessage(raw), "wait": true}, http.StatusOK)
	if v.Status != StatusDone {
		t.Fatalf("in-limit POST ended %s (%s)", v.Status, v.Error)
	}
}

// TestHTTPCancelSharedJobConflicts: DELETE on a job other submissions are
// riding returns 409, and both submissions still get the result.
func TestHTTPCancelSharedJobConflicts(t *testing.T) {
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	svc := New(Options{
		Workers:    1,
		QueueDepth: 4,
		BeforeJob: func() {
			entered <- struct{}{}
			<-release
		},
	})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc, HandlerOptions{}))
	defer ts.Close()

	blocker, err := svc.Submit(loadFixture(t, "election_ring.json"), nil)
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	raw, err := os.ReadFile(filepath.Join(fixtureDir, "chang_roberts_pareto.json"))
	if err != nil {
		t.Fatal(err)
	}
	first := postRun(t, ts, map[string]any{"spec": json.RawMessage(raw)}, http.StatusAccepted)
	rider := postRun(t, ts, map[string]any{"spec": json.RawMessage(raw)}, http.StatusAccepted)
	if rider.ID != first.ID || rider.Deduplicated != 1 {
		t.Fatalf("second POST did not coalesce: %+v", rider)
	}

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/runs/%s", ts.URL, first.ID), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE shared job = %d, want 409", resp.StatusCode)
	}

	close(release)
	await(t, svc, blocker.ID)
	if v := await(t, svc, first.ID); v.Status != StatusDone {
		t.Fatalf("shared job ended %s after refused cancel, want done", v.Status)
	}
}

// TestHTTPOverloadRetryAfter: admission-control rejections surface as 503
// with a Retry-After hint.
func TestHTTPOverloadRetryAfter(t *testing.T) {
	svc := New(Options{Workers: 1, SubmitRate: 0.5, SubmitBurst: 1})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc, HandlerOptions{}))
	defer ts.Close()

	raw, err := os.ReadFile(filepath.Join(fixtureDir, "election_ring.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Distinct seeds are distinct fresh jobs: the single token admits one.
	postRun(t, ts, map[string]any{"spec": json.RawMessage(raw), "seed": 1, "wait": true}, http.StatusOK)
	payload, _ := json.Marshal(map[string]any{"spec": json.RawMessage(raw), "seed": 2})
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-rate POST = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive hint", ra)
	}
	// The already-computed seed keeps serving from cache meanwhile.
	v := postRun(t, ts, map[string]any{"spec": json.RawMessage(raw), "seed": 1, "wait": true}, http.StatusOK)
	if v.CacheHits != 1 {
		t.Fatalf("cache hit under overload: %d hits, want 1", v.CacheHits)
	}
}

func postRunExpectError(t *testing.T, ts *httptest.Server, body any, wantCode int) {
	t.Helper()
	payload, _ := json.Marshal(body)
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("POST = %d, want %d", resp.StatusCode, wantCode)
	}
	var e errorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("error body missing: %v %q", err, e.Error)
	}
}
