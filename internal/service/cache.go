package service

import "container/list"

// resultCache is a content-addressed LRU of finished results keyed on
// (spec hash, seed). All methods are called under the service mutex.
type resultCache struct {
	max   int
	order *list.List // front = most recently used
	byKey map[string]*list.Element
}

// cacheEntry is one cached result plus its hit counter (how many
// submissions it has served).
type cacheEntry struct {
	key    string
	result *Result
	hits   int
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, order: list.New(), byKey: map[string]*list.Element{}}
}

// get returns the entry for key (marking it most recently used), or nil.
func (c *resultCache) get(key string) *cacheEntry {
	el, ok := c.byKey[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry)
}

// put inserts (or refreshes) a result, evicting the least recently used
// entries beyond the capacity.
func (c *resultCache) put(key string, res *Result) {
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).result = res
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, result: res})
	for c.order.Len() > c.max {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.byKey, back.Value.(*cacheEntry).key)
	}
}

// len returns the entry count.
func (c *resultCache) len() int { return c.order.Len() }
