package service

import "abenet/internal/store"

// cacheEntry is one cached result plus its hit counter (how many
// submissions it has served). The counter lives in the memory tier only:
// it counts serves by *this* process, and restarts start it over.
type cacheEntry struct {
	result *Result
	hits   int
}

// tieredCache is the two-tier read path over finished results: a bounded
// in-memory LRU in front of an optional persistent store, both keyed on
// (ExecutionHash, seed). Reads check memory first, then the persistent
// tier, promoting persistent hits into memory; writes go to both. All
// methods are called under the service mutex, which also makes the
// per-tier hit counters consistent snapshots.
type tieredCache struct {
	mem     *store.Memory[*cacheEntry]
	persist store.Store[*Result] // nil = memory-only serving

	memHits     int // submissions served from the memory tier
	persistHits int // submissions served from the persistent tier
	persistErrs int // failed persistent writes (results still served from memory)
}

func newTieredCache(maxMem int, persist store.Store[*Result]) *tieredCache {
	return &tieredCache{mem: store.NewMemory[*cacheEntry](maxMem), persist: persist}
}

// get returns the entry for key, or nil. A memory hit bumps the entry's
// LRU position; a persistent hit promotes the result into the memory tier
// (with a fresh per-entry hit counter). The caller increments ent.hits —
// get only tracks which tier served.
func (c *tieredCache) get(key string) *cacheEntry {
	if ent, ok := c.mem.Get(key); ok {
		c.memHits++
		return ent
	}
	if c.persist == nil {
		return nil
	}
	res, ok := c.persist.Get(key)
	if !ok {
		return nil
	}
	c.persistHits++
	ent := &cacheEntry{result: res}
	_ = c.mem.Put(key, ent) // promote: the next hit is a memory hit
	return ent
}

// put stores a finished result in both tiers. Refreshing an existing
// memory entry keeps its hit counter. A persistent-tier write failure is
// counted, not fatal: the result still serves from memory, and the disk
// slot heals on the next computation of the same key.
func (c *tieredCache) put(key string, res *Result) {
	if ent, ok := c.mem.Get(key); ok {
		ent.result = res
	} else {
		_ = c.mem.Put(key, &cacheEntry{result: res})
	}
	if c.persist != nil {
		if err := c.persist.Put(key, res); err != nil {
			c.persistErrs++
		}
	}
}

// len returns the memory-tier entry count.
func (c *tieredCache) len() int { return c.mem.Len() }

// persistLen returns the persistent-tier entry count (0 when disabled).
func (c *tieredCache) persistLen() int {
	if c.persist == nil {
		return 0
	}
	return c.persist.Len()
}

// close releases both tiers.
func (c *tieredCache) close() {
	_ = c.mem.Close()
	if c.persist != nil {
		_ = c.persist.Close()
	}
}
