package service

import (
	"log/slog"
	"net/http"
	"strings"
	"time"
)

// RequestLogger wraps next so every request emits one structured log line
// after it completes: method, path, status, latency, and the job id when
// the path carries one. A nil logger returns next unchanged, which is how
// tests (and anyone who wants a quiet handler) opt out.
//
// The wrapped ResponseWriter preserves http.Flusher when the underlying
// writer has it — the SSE progress stream flushes per event and must keep
// doing so through the logging layer.
func RequestLogger(logger *slog.Logger, next http.Handler) http.Handler {
	if logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		var wrapped http.ResponseWriter = sw
		if f, ok := w.(http.Flusher); ok {
			wrapped = &flushStatusWriter{statusWriter: sw, flusher: f}
		}
		start := time.Now()
		next.ServeHTTP(wrapped, r)
		attrs := []any{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("latency", time.Since(start)),
		}
		if id := jobIDFromPath(r.URL.Path); id != "" {
			attrs = append(attrs, slog.String("job", id))
		}
		logger.Info("request", attrs...)
	})
}

// statusWriter records the response status for the log line.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// flushStatusWriter is the variant handed out when the underlying writer
// can flush: it keeps the SSE endpoint's per-event flushes working through
// the logging wrapper.
type flushStatusWriter struct {
	*statusWriter
	flusher http.Flusher
}

func (w *flushStatusWriter) Flush() { w.flusher.Flush() }

// jobIDFromPath extracts the job id from /v1/runs/{id}[...] paths. The
// middleware sits outside the mux, so the routed path values are not
// available on its request; the prefix parse is exact for this API's only
// parameterised routes.
func jobIDFromPath(path string) string {
	const prefix = "/v1/runs/"
	if !strings.HasPrefix(path, prefix) {
		return ""
	}
	id := strings.TrimPrefix(path, prefix)
	if i := strings.IndexByte(id, '/'); i >= 0 {
		id = id[:i]
	}
	return id
}
