package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"abenet/internal/runner"
	"abenet/internal/spec"
)

const fixtureDir = "../../examples/specs"

func loadFixture(t *testing.T, name string) *spec.Spec {
	t.Helper()
	s, err := spec.DecodeFile(filepath.Join(fixtureDir, name))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// await runs Wait with a test deadline.
func await(t *testing.T, svc *Service, id string) View {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	v, err := svc.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status == StatusQueued || v.Status == StatusRunning {
		t.Fatalf("job %s still %s after Wait", id, v.Status)
	}
	return v
}

// TestSubmitRunAndCache is the acceptance loop: a submitted spec computes
// the same metrics as a direct runner.Run, and resubmitting the identical
// (scenario, seed) is served from the result cache with a hit counter.
func TestSubmitRunAndCache(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()

	sp := loadFixture(t, "election_ring.json")
	v, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.CacheHits != 0 {
		t.Fatalf("fresh submission reports %d cache hits", v.CacheHits)
	}
	v = await(t, svc, v.ID)
	if v.Status != StatusDone {
		t.Fatalf("job ended %s (%s)", v.Status, v.Error)
	}

	// Byte-identical to running the scenario directly.
	rep, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(rep.Metrics())
	got, _ := json.Marshal(v.Result.Metrics)
	if !bytes.Equal(got, want) {
		t.Fatalf("service metrics diverged from direct run:\nservice: %s\ndirect:  %s", got, want)
	}

	// Resubmission: served from cache, no recomputation, counter visible.
	v2, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Status != StatusDone {
		t.Fatalf("cached submission is %s, want done", v2.Status)
	}
	if v2.CacheHits != 1 {
		t.Fatalf("cached submission reports %d hits, want 1", v2.CacheHits)
	}
	got2, _ := json.Marshal(v2.Result.Metrics)
	if !bytes.Equal(got2, want) {
		t.Fatal("cached result differs from computed result")
	}
	// Third submission bumps the counter again.
	v3, _ := svc.Submit(sp, nil)
	if v3.CacheHits != 2 {
		t.Fatalf("second cached submission reports %d hits, want 2", v3.CacheHits)
	}

	// A different seed is a different run: fresh computation.
	seed := uint64(99)
	v4, err := svc.Submit(sp, &seed)
	if err != nil {
		t.Fatal(err)
	}
	if v4.CacheHits != 0 {
		t.Fatal("different seed was served from cache")
	}
	if v4.Seed != 99 {
		t.Fatalf("seed override not applied: %d", v4.Seed)
	}
	if await(t, svc, v4.ID).Status != StatusDone {
		t.Fatal("seed-override job failed")
	}
}

// TestSingleflightDedupCancelAndQueueFull drives the whole lifecycle
// deterministically by holding the single worker on a barrier.
func TestSingleflightDedupCancelAndQueueFull(t *testing.T) {
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	svc := New(Options{
		Workers:    1,
		QueueDepth: 1,
		BeforeJob: func() {
			entered <- struct{}{}
			<-release
		},
	})
	defer svc.Close()

	spA := loadFixture(t, "election_ring.json")
	spB := loadFixture(t, "chang_roberts_pareto.json")
	spC := loadFixture(t, "peterson_bimodal.json")

	// J1 occupies the worker (popped from the queue, held at the barrier).
	j1, err := svc.Submit(spA, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	// J2 waits in the queue; an identical submission coalesces onto it.
	j2, err := svc.Submit(spB, nil)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Status != StatusQueued {
		t.Fatalf("J2 is %s, want queued", j2.Status)
	}
	dup, err := svc.Submit(spB, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dup.ID != j2.ID {
		t.Fatalf("identical in-flight submission got a new job: %s vs %s", dup.ID, j2.ID)
	}
	if dup.Deduplicated != 1 {
		t.Fatalf("dedup counter = %d, want 1", dup.Deduplicated)
	}

	// The queue (depth 1) is full now.
	if _, err := svc.Submit(spC, nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit into a full queue: %v, want ErrQueueFull", err)
	}

	// J2 has a rider: cancellation is refused, the job stays queued.
	if _, err := svc.Cancel(j2.ID); !errors.Is(err, ErrShared) {
		t.Fatalf("cancel of shared job: %v, want ErrShared", err)
	}
	got, err := svc.Get(j2.ID)
	if err != nil || got.Status != StatusQueued {
		t.Fatalf("shared job after refused cancel is %s (%v), want queued", got.Status, err)
	}

	// Release the worker; J1 completes, then the shared J2 runs for both
	// its submitters.
	close(release)
	if v := await(t, svc, j1.ID); v.Status != StatusDone {
		t.Fatalf("J1 ended %s (%s)", v.Status, v.Error)
	}
	if v := await(t, svc, j2.ID); v.Status != StatusDone {
		t.Fatalf("J2 ended %s, want done", v.Status)
	}

	// Resubmitting the completed scenario is a cache hit, not a rerun.
	j5, err := svc.Submit(spB, nil)
	if err != nil {
		t.Fatal(err)
	}
	if j5.CacheHits != 1 {
		t.Fatalf("resubmission of finished scenario: %d hits, want 1", j5.CacheHits)
	}

	// Cancelling a finished job is refused.
	if _, err := svc.Cancel(j2.ID); !errors.Is(err, ErrFinished) {
		t.Fatalf("cancel of finished job: %v, want ErrFinished", err)
	}
	// Unknown ids are refused.
	if _, err := svc.Get("run-999999-nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get of unknown job: %v, want ErrNotFound", err)
	}
}

// TestCancelQueuedJob: cancelling a queued job with no riders is
// immediate, the worker skips it, and the scenario key is free again — a
// resubmission starts a fresh job instead of attaching to the corpse.
func TestCancelQueuedJob(t *testing.T) {
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	svc := New(Options{
		Workers:    1,
		QueueDepth: 4,
		BeforeJob: func() {
			entered <- struct{}{}
			<-release
		},
	})
	defer svc.Close()

	j1, err := svc.Submit(loadFixture(t, "election_ring.json"), nil)
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	spB := loadFixture(t, "chang_roberts_pareto.json")
	j2, err := svc.Submit(spB, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Cancel(j2.ID); err != nil {
		t.Fatal(err)
	}
	got, err := svc.Get(j2.ID)
	if err != nil || got.Status != StatusCancelled {
		t.Fatalf("cancelled job is %s (%v)", got.Status, err)
	}

	close(release)
	if v := await(t, svc, j1.ID); v.Status != StatusDone {
		t.Fatalf("J1 ended %s (%s)", v.Status, v.Error)
	}
	if v := await(t, svc, j2.ID); v.Status != StatusCancelled {
		t.Fatalf("J2 ended %s, want cancelled", v.Status)
	}

	// The key is free: a fresh submission runs (no cache entry, new id).
	j3, err := svc.Submit(spB, nil)
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID == j2.ID {
		t.Fatal("resubmission attached to the cancelled job")
	}
	if j3.CacheHits != 0 {
		t.Fatal("cancelled scenario served from cache")
	}
	if v := await(t, svc, j3.ID); v.Status != StatusDone {
		t.Fatalf("resubmitted job ended %s (%s)", v.Status, v.Error)
	}
}

// TestSweepJob: a sweep spec runs through the pool and reports filtered,
// aggregated points; resubmission hits the cache.
func TestSweepJob(t *testing.T) {
	svc := New(Options{Workers: 2, SweepWorkers: 2})
	defer svc.Close()

	sp := loadFixture(t, "itai_rodeh_sweep.json")
	v, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	v = await(t, svc, v.ID)
	if v.Status != StatusDone {
		t.Fatalf("sweep ended %s (%s)", v.Status, v.Error)
	}
	if v.Kind != "sweep" {
		t.Fatalf("kind = %q, want sweep", v.Kind)
	}
	if len(v.Result.Points) != len(sp.Sweep.Xs) {
		t.Fatalf("%d points, want %d", len(v.Result.Points), len(sp.Sweep.Xs))
	}
	for _, p := range v.Result.Points {
		if len(p.Metrics) != len(sp.Sweep.Metrics) {
			t.Fatalf("point x=%g has %d metrics, want %d", p.X, len(p.Metrics), len(sp.Sweep.Metrics))
		}
	}
	v2, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2.CacheHits != 1 {
		t.Fatalf("sweep resubmission: %d cache hits, want 1", v2.CacheHits)
	}
}

// TestFailedJobNotCached: a run-time failure is reported and never cached.
func TestFailedJobNotCached(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()

	// KeepRunning without a horizon validates as an environment but fails
	// in the protocol engine.
	ps, err := spec.ForProtocol(runner.Election{KeepRunning: true})
	if err != nil {
		t.Fatal(err)
	}
	sp := &spec.Spec{Version: spec.Version, Env: spec.EnvSpec{N: 4, Seed: 1}, Protocol: ps}
	v, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	v = await(t, svc, v.ID)
	if v.Status != StatusFailed || v.Error == "" {
		t.Fatalf("job ended %s (%q), want failed with a message", v.Status, v.Error)
	}
	if v.Failure != "error" {
		t.Fatalf("failure class = %q, want %q", v.Failure, "error")
	}
	if v.Result != nil {
		t.Fatal("failed job carries a result")
	}
	v2, _ := svc.Submit(sp, nil)
	if v2.CacheHits != 0 {
		t.Fatal("failure was served from cache")
	}
	await(t, svc, v2.ID)
}

// TestLivelockClassified: a run that exhausts its event budget is a
// failure of a distinguishable kind — the kernel's typed sim.ErrMaxEvents
// survives the runner's wrapping, and the view classifies it "livelock"
// (versus "error" for everything else, pinned above).
func TestLivelockClassified(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()

	ps, err := spec.ForProtocol(runner.Election{})
	if err != nil {
		t.Fatal(err)
	}
	// Five events cannot finish a four-node election: the run trips the
	// livelock guard before any leader emerges.
	sp := &spec.Spec{
		Version:  spec.Version,
		Env:      spec.EnvSpec{N: 4, Seed: 1, MaxEvents: 5},
		Protocol: ps,
	}
	v, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	v = await(t, svc, v.ID)
	if v.Status != StatusFailed {
		t.Fatalf("job ended %s (%q), want failed", v.Status, v.Error)
	}
	if v.Failure != "livelock" {
		t.Fatalf("failure class = %q (%q), want %q", v.Failure, v.Error, "livelock")
	}
}

// TestNondeterministicNeverCached: the live runtime executes but its
// results are not content-addressable, so resubmission recomputes.
func TestNondeterministicNeverCached(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()

	ps, err := spec.ForProtocol(runner.LiveElection{})
	if err != nil {
		t.Fatal(err)
	}
	sp := &spec.Spec{Version: spec.Version, Env: spec.EnvSpec{N: 4, Seed: 1}, Protocol: ps}
	v, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v = await(t, svc, v.ID); v.Status != StatusDone {
		t.Fatalf("live job ended %s (%s)", v.Status, v.Error)
	}
	v2, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2.CacheHits != 0 {
		t.Fatal("nondeterministic run was served from cache")
	}
	await(t, svc, v2.ID)
}

// TestNondeterministicNeverDeduplicated: concurrent identical live
// submissions must each get their own run — sharing one wall-clock-racing
// result is exactly what the determinism carve-out forbids.
func TestNondeterministicNeverDeduplicated(t *testing.T) {
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	svc := New(Options{
		Workers:    1,
		QueueDepth: 8,
		BeforeJob: func() {
			entered <- struct{}{}
			<-release
		},
	})
	defer svc.Close()

	ps, err := spec.ForProtocol(runner.LiveElection{})
	if err != nil {
		t.Fatal(err)
	}
	sp := &spec.Spec{Version: spec.Version, Env: spec.EnvSpec{N: 4, Seed: 1}, Protocol: ps}
	a, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-entered // worker holds job a
	b, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.ID == a.ID {
		t.Fatal("identical live submissions were coalesced onto one run")
	}
	close(release)
	await(t, svc, a.ID)
	await(t, svc, b.ID)
}

// TestJobHistoryBound: finished jobs are retired FIFO past the history
// bound, so the job map cannot grow without limit under sustained traffic.
func TestJobHistoryBound(t *testing.T) {
	svc := New(Options{Workers: 1, JobHistory: 2})
	defer svc.Close()

	names := []string{"election_ring.json", "chang_roberts_pareto.json", "peterson_bimodal.json"}
	ids := make([]string, len(names))
	for i, name := range names {
		v, err := svc.Submit(loadFixture(t, name), nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = v.ID
		await(t, svc, v.ID)
	}
	// The oldest finished job fell off the history; the two newest remain.
	if _, err := svc.Get(ids[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oldest finished job still queryable: %v", err)
	}
	for _, id := range ids[1:] {
		if _, err := svc.Get(id); err != nil {
			t.Fatalf("recent job %s evicted too early: %v", id, err)
		}
	}
	if got := svc.Stats().Jobs; got != 2 {
		t.Fatalf("job map holds %d entries, want 2", got)
	}
}

// TestCancelRefusedOnDeduplicatedJob: submit → dedup → cancel must be
// refused (ErrShared), and both waiters must get the computed result — one
// client's DELETE cannot discard a run other submitters are riding.
func TestCancelRefusedOnDeduplicatedJob(t *testing.T) {
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	svc := New(Options{
		Workers:    1,
		QueueDepth: 4,
		BeforeJob: func() {
			entered <- struct{}{}
			<-release
		},
	})
	defer svc.Close()

	// A blocker occupies the single worker so the shared job stays queued.
	blocker, err := svc.Submit(loadFixture(t, "election_ring.json"), nil)
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	sp := loadFixture(t, "chang_roberts_pareto.json")
	first, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	rider, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rider.ID != first.ID || rider.Deduplicated != 1 {
		t.Fatalf("second submission did not coalesce: %+v", rider)
	}

	// Two waiters ride the shared job.
	type waited struct {
		v   View
		err error
	}
	results := make(chan waited, 2)
	for i := 0; i < 2; i++ {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			v, err := svc.Wait(ctx, first.ID)
			results <- waited{v, err}
		}()
	}

	// The cancel is refused while riders are attached.
	if _, err := svc.Cancel(first.ID); !errors.Is(err, ErrShared) {
		t.Fatalf("cancel of deduplicated job: %v, want ErrShared", err)
	}
	got, err := svc.Get(first.ID)
	if err != nil || got.Status != StatusQueued {
		t.Fatalf("shared job after refused cancel: %s (%v), want queued", got.Status, err)
	}

	// Release the worker: the blocker and then the shared job complete,
	// and both waiters observe the result.
	close(release)
	await(t, svc, blocker.ID)
	for i := 0; i < 2; i++ {
		w := <-results
		if w.err != nil {
			t.Fatalf("waiter %d: %v", i, w.err)
		}
		if w.v.Status != StatusDone || w.v.Result == nil {
			t.Fatalf("waiter %d got %s (result %v), want done with a result", i, w.v.Status, w.v.Result != nil)
		}
	}
}

// TestWaitReturnsCtxErrOnSlowJob: when the caller's context ends before a
// slow job, Wait and SubmitAndWait return the non-terminal snapshot
// *alongside* ctx.Err() — a nil error always means the snapshot is final.
func TestWaitReturnsCtxErrOnSlowJob(t *testing.T) {
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	svc := New(Options{
		Workers:    1,
		QueueDepth: 4,
		BeforeJob: func() {
			entered <- struct{}{}
			<-release
		},
	})
	defer svc.Close()

	slow, err := svc.Submit(loadFixture(t, "election_ring.json"), nil)
	if err != nil {
		t.Fatal(err)
	}
	<-entered // the job is held on the worker barrier

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	v, err := svc.Wait(ctx, slow.ID)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait on a slow job: err = %v, want DeadlineExceeded", err)
	}
	if v.ID != slow.ID {
		t.Fatalf("snapshot id = %s, want %s", v.ID, slow.ID)
	}
	if v.Status == StatusDone || v.Status == StatusFailed || v.Status == StatusCancelled {
		t.Fatalf("snapshot is terminal (%s) despite ctx ending first", v.Status)
	}

	// SubmitAndWait: same contract on the submit-and-block path.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	v2, err := svc.SubmitAndWait(ctx2, loadFixture(t, "chang_roberts_pareto.json"), nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SubmitAndWait on a slow job: err = %v, want DeadlineExceeded", err)
	}
	if v2.Status != StatusQueued {
		t.Fatalf("SubmitAndWait snapshot is %s, want queued", v2.Status)
	}

	// A cancelled context is reported as Canceled, not invented deadline.
	ctx3, cancel3 := context.WithCancel(context.Background())
	cancel3()
	if _, err := svc.Wait(ctx3, slow.ID); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait with cancelled ctx: %v, want Canceled", err)
	}

	// Once released, the same calls finish with nil errors.
	close(release)
	if v := await(t, svc, slow.ID); v.Status != StatusDone {
		t.Fatalf("released job ended %s (%s)", v.Status, v.Error)
	}
	if v := await(t, svc, v2.ID); v.Status != StatusDone {
		t.Fatalf("second job ended %s (%s)", v.Status, v.Error)
	}
}

// TestMutateAfterSubmit: the worker must run the scenario as submitted.
// Mutating the caller's spec — including pointer-nested state like the
// fault plan and its scripted events — after Submit returns must not
// change the job's execution (regression: submit used to shallow-copy).
func TestMutateAfterSubmit(t *testing.T) {
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	svc := New(Options{
		Workers:    1,
		QueueDepth: 4,
		BeforeJob: func() {
			entered <- struct{}{}
			<-release
		},
	})
	defer svc.Close()

	blocker, err := svc.Submit(loadFixture(t, "election_ring.json"), nil)
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	// Baseline: the pristine scenario, run directly.
	pristine := loadFixture(t, "election_lossy_partition.json")
	rep, err := pristine.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(rep.Metrics())

	// Submit, then vandalise every pointer-reachable corner of the spec
	// while the job waits in the queue.
	sp := loadFixture(t, "election_lossy_partition.json")
	v, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	sp.Env.Faults.Loss = 0.99
	sp.Env.Faults.Duplicate = 0.5
	for i := range sp.Env.Faults.Events {
		sp.Env.Faults.Events[i].At = 1e9
	}
	sp.Env.Faults.Events = sp.Env.Faults.Events[:0]
	sp.Env.N = 2
	sp.Env.Seed = 424242

	close(release)
	await(t, svc, blocker.ID)
	final := await(t, svc, v.ID)
	if final.Status != StatusDone {
		t.Fatalf("job ended %s (%s)", final.Status, final.Error)
	}
	got, _ := json.Marshal(final.Result.Metrics)
	if !bytes.Equal(got, want) {
		t.Fatalf("post-submit mutation leaked into the run:\ngot:  %s\nwant: %s", got, want)
	}
}

// TestCacheEviction: the memory-tier LRU bound holds.
func TestCacheEviction(t *testing.T) {
	c := newTieredCache(2, nil)
	r := &Result{}
	c.put("a", r)
	c.put("b", r)
	if c.get("a") == nil {
		t.Fatal("a evicted too early")
	}
	c.put("c", r) // evicts b (a was just used)
	if c.get("b") != nil {
		t.Fatal("b survived past capacity")
	}
	if c.get("a") == nil || c.get("c") == nil {
		t.Fatal("wrong entry evicted")
	}
	if c.len() != 2 {
		t.Fatalf("cache len %d, want 2", c.len())
	}
	if c.persistLen() != 0 {
		t.Fatal("memory-only cache reports persistent entries")
	}
}

// TestCacheHitCounterAcrossPutRefresh: re-putting a finished result under
// an existing key (a raced recomputation) refreshes the payload but keeps
// the entry's hit counter — the counter counts serves, not payload writes.
func TestCacheHitCounterAcrossPutRefresh(t *testing.T) {
	c := newTieredCache(4, nil)
	r1, r2 := &Result{}, &Result{}
	c.put("k", r1)
	ent := c.get("k")
	if ent == nil {
		t.Fatal("miss after put")
	}
	ent.hits = 3
	c.put("k", r2) // refresh
	ent2 := c.get("k")
	if ent2 == nil {
		t.Fatal("miss after refresh")
	}
	if ent2.hits != 3 {
		t.Fatalf("hit counter after refresh = %d, want 3", ent2.hits)
	}
	if ent2.result != r2 {
		t.Fatal("refresh did not replace the payload")
	}
	if c.len() != 1 {
		t.Fatalf("cache len after refresh = %d, want 1", c.len())
	}
}

// TestStatsCacheEntriesAfterEviction: Stats.CacheEntries reflects the
// post-eviction memory-tier population, not the number of puts.
func TestStatsCacheEntriesAfterEviction(t *testing.T) {
	svc := New(Options{Workers: 1, CacheEntries: 2})
	defer svc.Close()

	names := []string{"election_ring.json", "chang_roberts_pareto.json", "peterson_bimodal.json"}
	for _, name := range names {
		v, err := svc.Submit(loadFixture(t, name), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := await(t, svc, v.ID); got.Status != StatusDone {
			t.Fatalf("%s ended %s (%s)", name, got.Status, got.Error)
		}
	}
	if got := svc.Stats().CacheEntries; got != 2 {
		t.Fatalf("Stats.CacheEntries after eviction = %d, want 2", got)
	}
	// The evicted (oldest) scenario recomputes; the retained ones hit.
	v, err := svc.Submit(loadFixture(t, names[0]), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.CacheHits != 0 {
		t.Fatal("evicted scenario served from cache")
	}
	await(t, svc, v.ID)
	v2, err := svc.Submit(loadFixture(t, names[2]), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2.CacheHits != 1 {
		t.Fatalf("retained scenario cache hits = %d, want 1", v2.CacheHits)
	}
}
