package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"abenet/internal/runner"
	"abenet/internal/spec"
)

const fixtureDir = "../../examples/specs"

func loadFixture(t *testing.T, name string) *spec.Spec {
	t.Helper()
	s, err := spec.DecodeFile(filepath.Join(fixtureDir, name))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// await runs Wait with a test deadline.
func await(t *testing.T, svc *Service, id string) View {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	v, err := svc.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status == StatusQueued || v.Status == StatusRunning {
		t.Fatalf("job %s still %s after Wait", id, v.Status)
	}
	return v
}

// TestSubmitRunAndCache is the acceptance loop: a submitted spec computes
// the same metrics as a direct runner.Run, and resubmitting the identical
// (scenario, seed) is served from the result cache with a hit counter.
func TestSubmitRunAndCache(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()

	sp := loadFixture(t, "election_ring.json")
	v, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.CacheHits != 0 {
		t.Fatalf("fresh submission reports %d cache hits", v.CacheHits)
	}
	v = await(t, svc, v.ID)
	if v.Status != StatusDone {
		t.Fatalf("job ended %s (%s)", v.Status, v.Error)
	}

	// Byte-identical to running the scenario directly.
	rep, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(rep.Metrics())
	got, _ := json.Marshal(v.Result.Metrics)
	if !bytes.Equal(got, want) {
		t.Fatalf("service metrics diverged from direct run:\nservice: %s\ndirect:  %s", got, want)
	}

	// Resubmission: served from cache, no recomputation, counter visible.
	v2, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Status != StatusDone {
		t.Fatalf("cached submission is %s, want done", v2.Status)
	}
	if v2.CacheHits != 1 {
		t.Fatalf("cached submission reports %d hits, want 1", v2.CacheHits)
	}
	got2, _ := json.Marshal(v2.Result.Metrics)
	if !bytes.Equal(got2, want) {
		t.Fatal("cached result differs from computed result")
	}
	// Third submission bumps the counter again.
	v3, _ := svc.Submit(sp, nil)
	if v3.CacheHits != 2 {
		t.Fatalf("second cached submission reports %d hits, want 2", v3.CacheHits)
	}

	// A different seed is a different run: fresh computation.
	seed := uint64(99)
	v4, err := svc.Submit(sp, &seed)
	if err != nil {
		t.Fatal(err)
	}
	if v4.CacheHits != 0 {
		t.Fatal("different seed was served from cache")
	}
	if v4.Seed != 99 {
		t.Fatalf("seed override not applied: %d", v4.Seed)
	}
	if await(t, svc, v4.ID).Status != StatusDone {
		t.Fatal("seed-override job failed")
	}
}

// TestSingleflightDedupCancelAndQueueFull drives the whole lifecycle
// deterministically by holding the single worker on a barrier.
func TestSingleflightDedupCancelAndQueueFull(t *testing.T) {
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	svc := New(Options{
		Workers:    1,
		QueueDepth: 1,
		BeforeJob: func() {
			entered <- struct{}{}
			<-release
		},
	})
	defer svc.Close()

	spA := loadFixture(t, "election_ring.json")
	spB := loadFixture(t, "chang_roberts_pareto.json")
	spC := loadFixture(t, "peterson_bimodal.json")

	// J1 occupies the worker (popped from the queue, held at the barrier).
	j1, err := svc.Submit(spA, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	// J2 waits in the queue; an identical submission coalesces onto it.
	j2, err := svc.Submit(spB, nil)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Status != StatusQueued {
		t.Fatalf("J2 is %s, want queued", j2.Status)
	}
	dup, err := svc.Submit(spB, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dup.ID != j2.ID {
		t.Fatalf("identical in-flight submission got a new job: %s vs %s", dup.ID, j2.ID)
	}
	if dup.Deduplicated != 1 {
		t.Fatalf("dedup counter = %d, want 1", dup.Deduplicated)
	}

	// The queue (depth 1) is full now.
	if _, err := svc.Submit(spC, nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit into a full queue: %v, want ErrQueueFull", err)
	}

	// Cancel the queued J2: immediate, and the key is free again — a new
	// submission of the same scenario must NOT attach to the cancelled job.
	if _, err := svc.Cancel(j2.ID); err != nil {
		t.Fatal(err)
	}
	got, err := svc.Get(j2.ID)
	if err != nil || got.Status != StatusCancelled {
		t.Fatalf("cancelled job is %s (%v)", got.Status, err)
	}

	// Release the worker; J1 completes, the cancelled J2 is skipped.
	close(release)
	if v := await(t, svc, j1.ID); v.Status != StatusDone {
		t.Fatalf("J1 ended %s (%s)", v.Status, v.Error)
	}
	if v := await(t, svc, j2.ID); v.Status != StatusCancelled {
		t.Fatalf("J2 ended %s, want cancelled", v.Status)
	}

	// Resubmitting the cancelled scenario starts a fresh job that runs.
	j5, err := svc.Submit(spB, nil)
	if err != nil {
		t.Fatal(err)
	}
	if j5.ID == j2.ID {
		t.Fatal("resubmission attached to the cancelled job")
	}
	if v := await(t, svc, j5.ID); v.Status != StatusDone {
		t.Fatalf("resubmitted job ended %s (%s)", v.Status, v.Error)
	}

	// Cancelling a finished job is refused.
	if _, err := svc.Cancel(j5.ID); !errors.Is(err, ErrFinished) {
		t.Fatalf("cancel of finished job: %v, want ErrFinished", err)
	}
	// Unknown ids are refused.
	if _, err := svc.Get("run-999999-nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get of unknown job: %v, want ErrNotFound", err)
	}
}

// TestSweepJob: a sweep spec runs through the pool and reports filtered,
// aggregated points; resubmission hits the cache.
func TestSweepJob(t *testing.T) {
	svc := New(Options{Workers: 2, SweepWorkers: 2})
	defer svc.Close()

	sp := loadFixture(t, "itai_rodeh_sweep.json")
	v, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	v = await(t, svc, v.ID)
	if v.Status != StatusDone {
		t.Fatalf("sweep ended %s (%s)", v.Status, v.Error)
	}
	if v.Kind != "sweep" {
		t.Fatalf("kind = %q, want sweep", v.Kind)
	}
	if len(v.Result.Points) != len(sp.Sweep.Xs) {
		t.Fatalf("%d points, want %d", len(v.Result.Points), len(sp.Sweep.Xs))
	}
	for _, p := range v.Result.Points {
		if len(p.Metrics) != len(sp.Sweep.Metrics) {
			t.Fatalf("point x=%g has %d metrics, want %d", p.X, len(p.Metrics), len(sp.Sweep.Metrics))
		}
	}
	v2, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2.CacheHits != 1 {
		t.Fatalf("sweep resubmission: %d cache hits, want 1", v2.CacheHits)
	}
}

// TestFailedJobNotCached: a run-time failure is reported and never cached.
func TestFailedJobNotCached(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()

	// KeepRunning without a horizon validates as an environment but fails
	// in the protocol engine.
	ps, err := spec.ForProtocol(runner.Election{KeepRunning: true})
	if err != nil {
		t.Fatal(err)
	}
	sp := &spec.Spec{Version: spec.Version, Env: spec.EnvSpec{N: 4, Seed: 1}, Protocol: ps}
	v, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	v = await(t, svc, v.ID)
	if v.Status != StatusFailed || v.Error == "" {
		t.Fatalf("job ended %s (%q), want failed with a message", v.Status, v.Error)
	}
	if v.Result != nil {
		t.Fatal("failed job carries a result")
	}
	v2, _ := svc.Submit(sp, nil)
	if v2.CacheHits != 0 {
		t.Fatal("failure was served from cache")
	}
	await(t, svc, v2.ID)
}

// TestNondeterministicNeverCached: the live runtime executes but its
// results are not content-addressable, so resubmission recomputes.
func TestNondeterministicNeverCached(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()

	ps, err := spec.ForProtocol(runner.LiveElection{})
	if err != nil {
		t.Fatal(err)
	}
	sp := &spec.Spec{Version: spec.Version, Env: spec.EnvSpec{N: 4, Seed: 1}, Protocol: ps}
	v, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v = await(t, svc, v.ID); v.Status != StatusDone {
		t.Fatalf("live job ended %s (%s)", v.Status, v.Error)
	}
	v2, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2.CacheHits != 0 {
		t.Fatal("nondeterministic run was served from cache")
	}
	await(t, svc, v2.ID)
}

// TestNondeterministicNeverDeduplicated: concurrent identical live
// submissions must each get their own run — sharing one wall-clock-racing
// result is exactly what the determinism carve-out forbids.
func TestNondeterministicNeverDeduplicated(t *testing.T) {
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	svc := New(Options{
		Workers:    1,
		QueueDepth: 8,
		BeforeJob: func() {
			entered <- struct{}{}
			<-release
		},
	})
	defer svc.Close()

	ps, err := spec.ForProtocol(runner.LiveElection{})
	if err != nil {
		t.Fatal(err)
	}
	sp := &spec.Spec{Version: spec.Version, Env: spec.EnvSpec{N: 4, Seed: 1}, Protocol: ps}
	a, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-entered // worker holds job a
	b, err := svc.Submit(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.ID == a.ID {
		t.Fatal("identical live submissions were coalesced onto one run")
	}
	close(release)
	await(t, svc, a.ID)
	await(t, svc, b.ID)
}

// TestJobHistoryBound: finished jobs are retired FIFO past the history
// bound, so the job map cannot grow without limit under sustained traffic.
func TestJobHistoryBound(t *testing.T) {
	svc := New(Options{Workers: 1, JobHistory: 2})
	defer svc.Close()

	names := []string{"election_ring.json", "chang_roberts_pareto.json", "peterson_bimodal.json"}
	ids := make([]string, len(names))
	for i, name := range names {
		v, err := svc.Submit(loadFixture(t, name), nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = v.ID
		await(t, svc, v.ID)
	}
	// The oldest finished job fell off the history; the two newest remain.
	if _, err := svc.Get(ids[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oldest finished job still queryable: %v", err)
	}
	for _, id := range ids[1:] {
		if _, err := svc.Get(id); err != nil {
			t.Fatalf("recent job %s evicted too early: %v", id, err)
		}
	}
	if got := svc.Stats().Jobs; got != 2 {
		t.Fatalf("job map holds %d entries, want 2", got)
	}
}

// TestCacheEviction: the LRU bound holds.
func TestCacheEviction(t *testing.T) {
	c := newResultCache(2)
	r := &Result{}
	c.put("a", r)
	c.put("b", r)
	if c.get("a") == nil {
		t.Fatal("a evicted too early")
	}
	c.put("c", r) // evicts b (a was just used)
	if c.get("b") != nil {
		t.Fatal("b survived past capacity")
	}
	if c.get("a") == nil || c.get("c") == nil {
		t.Fatal("wrong entry evicted")
	}
	if c.len() != 2 {
		t.Fatalf("cache len %d, want 2", c.len())
	}
}
