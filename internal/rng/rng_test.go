package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("sequence diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero seed produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestDeriveStable(t *testing.T) {
	root := New(7)
	a1 := root.Derive("node")
	b1 := root.Derive("link")
	// Derivation order must not matter.
	root2 := New(7)
	b2 := root2.Derive("link")
	a2 := root2.Derive("node")
	for i := 0; i < 100; i++ {
		if a1.Uint64() != a2.Uint64() {
			t.Fatal("derive(node) depends on derivation order")
		}
		if b1.Uint64() != b2.Uint64() {
			t.Fatal("derive(link) depends on derivation order")
		}
	}
}

func TestDeriveIndependent(t *testing.T) {
	root := New(7)
	a := root.Derive("a")
	b := root.Derive("b")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams a and b agree on %d/1000 outputs", same)
	}
}

func TestDeriveIndexedDistinct(t *testing.T) {
	root := New(9)
	streams := make([]*Source, 8)
	for i := range streams {
		streams[i] = root.DeriveIndexed("node", i)
	}
	first := make(map[uint64]int)
	for i, s := range streams {
		v := s.Uint64()
		if j, ok := first[v]; ok {
			t.Fatalf("streams %d and %d share first output %d", i, j, v)
		}
		first[v] = i
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want about 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) returned %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(10) badly skewed: counts[%d] = %d", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nSmallRangeUnbiased(t *testing.T) {
	r := New(6)
	counts := make([]int, 3)
	const n = 300000
	for i := 0; i < n; i++ {
		counts[r.Uint64n(3)]++
	}
	for v, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-1.0/3.0) > 0.01 {
			t.Fatalf("Uint64n(3) skewed: P(%d) = %v", v, frac)
		}
	}
}

func TestUint64nWithinBound(t *testing.T) {
	// Property: Uint64n(n) < n for arbitrary positive n.
	r := New(99)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(8)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", frac)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	if r.Bool(-2) {
		t.Fatal("Bool(-2) returned true")
	}
	if !r.Bool(2) {
		t.Fatal("Bool(2) returned false")
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(10)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want about 1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want about 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(12)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformish(t *testing.T) {
	// Each position should hold each value about equally often.
	r := New(13)
	const trials = 30000
	var counts [3][3]int
	for i := 0; i < trials; i++ {
		p := r.Perm(3)
		for pos, v := range p {
			counts[pos][v]++
		}
	}
	for pos := 0; pos < 3; pos++ {
		for v := 0; v < 3; v++ {
			frac := float64(counts[pos][v]) / trials
			if math.Abs(frac-1.0/3.0) > 0.02 {
				t.Fatalf("Perm(3) position %d value %d frequency %v", pos, v, frac)
			}
		}
	}
}

func TestShuffleMatchesPerm(t *testing.T) {
	a := New(14)
	b := New(14)
	p := a.Perm(20)
	s := make([]int, 20)
	for i := range s {
		s[i] = i
	}
	b.Shuffle(20, func(i, j int) { s[i], s[j] = s[j], s[i] })
	for i := range p {
		if p[i] != s[i] {
			t.Fatalf("Shuffle and Perm disagree at %d: %v vs %v", i, p, s)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}

func BenchmarkDerive(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Derive("node")
	}
}
