// Package rng provides a small, deterministic, splittable pseudo-random
// number generator for reproducible network simulations.
//
// The generator is xoshiro256** seeded through SplitMix64, following the
// reference constructions by Blackman and Vigna. It is not cryptographically
// secure; it is fast, has a 2^256-1 period, and passes the statistical test
// batteries relevant for simulation work.
//
// The key feature over math/rand is cheap stream derivation: every node,
// link and experiment repetition can own an independent generator derived
// deterministically from a root seed and a label, so adding a new consumer
// of randomness never perturbs the random sequence seen by existing ones.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic pseudo-random number generator. It is not safe
// for concurrent use; derive one Source per goroutine or simulated entity.
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used for seeding and stream derivation only.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given seed. Two Sources created with
// the same seed produce identical sequences.
func New(seed uint64) *Source {
	var src Source
	src.reseed(seed)
	return &src
}

func (r *Source) reseed(seed uint64) {
	state := seed
	r.s0 = splitMix64(&state)
	r.s1 = splitMix64(&state)
	r.s2 = splitMix64(&state)
	r.s3 = splitMix64(&state)
	// xoshiro256** must not be seeded with the all-zero state.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9

	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)

	return result
}

// Derive returns a new independent Source determined by this source's
// current state and the label. Derive does not advance the parent stream,
// so the derivation tree is stable: deriving "a" then "b" yields the same
// children as deriving "b" then "a".
func (r *Source) Derive(label string) *Source {
	// Mix the label through FNV-1a, then fold in the parent state through
	// SplitMix64 so that distinct parents give distinct children.
	const (
		fnvOffset = 0xcbf29ce484222325
		fnvPrime  = 0x100000001b3
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= fnvPrime
	}
	state := h
	seed := splitMix64(&state) ^ r.s0
	seed = seed ^ rotl(r.s2, 29)
	var child Source
	child.reseed(seed)
	return &child
}

// DeriveIndexed returns a derived Source for (label, index) pairs, e.g. one
// stream per node. Equivalent to Derive(label+"/"+itoa(index)) but without
// string formatting on hot paths.
func (r *Source) DeriveIndexed(label string, index int) *Source {
	child := r.Derive(label)
	// Jump the child by mixing in the index via SplitMix64 reseeding.
	state := child.s0 ^ (uint64(index)+1)*0x9e3779b97f4a7c15
	seed := splitMix64(&state) ^ child.s3
	var out Source
	out.reseed(seed)
	return &out
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high-quality bits into the mantissa.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed uint64 in [0, n) using Lemire's
// nearly-divisionless method. It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with zero n")
	}
	// Lemire (2019): multiply-shift with rejection to remove bias.
	x := r.Uint64()
	hi, lo := bits.Mul64(x, n)
	if lo < n {
		threshold := (-n) % n
		for lo < threshold {
			x = r.Uint64()
			hi, lo = bits.Mul64(x, n)
		}
	}
	return hi
}

// Bool returns true with probability p. Values of p outside [0, 1] are
// clamped (p <= 0 is always false, p >= 1 always true).
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// ExpFloat64 returns an exponentially distributed value with rate 1
// (mean 1), via inverse-CDF sampling.
func (r *Source) ExpFloat64() float64 {
	// 1-Float64() is in (0, 1], so Log never sees zero.
	return -math.Log(1 - r.Float64())
}

// NormFloat64 returns a standard normal value using the Marsaglia polar
// method. Only one value is produced per call; the spare is discarded to
// keep the Source state a pure function of the call count.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n) as a slice, using the
// Fisher-Yates shuffle.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function, as in math/rand.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
