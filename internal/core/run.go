package core

import (
	"fmt"

	"abenet/internal/channel"
	"abenet/internal/clock"
	"abenet/internal/dist"
	"abenet/internal/faults"
	"abenet/internal/network"
	"abenet/internal/probe"
	"abenet/internal/simtime"
	"abenet/internal/topology"
)

// ElectionConfig describes one complete election experiment: the ring, the
// ABE environment, the algorithm parameters and the run bounds.
type ElectionConfig struct {
	// N is the ring size (>= 2). When Graph is set, N must be 0 or equal
	// to the graph's size.
	N int
	// Graph optionally replaces the default unidirectional ring with any
	// topology embedding a directed Hamiltonian cycle (BiRing, Complete,
	// Hypercube, ...). The election runs along the embedded cycle; the
	// remaining edges carry no traffic. Nil means topology.Ring(N).
	Graph *topology.Graph
	// A0 is the base activation parameter, in (0, 1).
	A0 float64
	// Delay is the per-link message delay distribution. Nil means
	// Exponential with mean 1 (δ = 1), the canonical ABE link.
	Delay dist.Dist
	// Links optionally overrides Delay with a full link factory (e.g.
	// ARQ or FIFO links). When set, Delay is ignored.
	Links channel.Factory
	// Clocks is the local clock model. Nil means perfect clocks.
	Clocks clock.Model
	// Processing is the event-processing time model (γ). Nil means
	// instantaneous.
	Processing dist.Dist
	// TickInterval is the local tick period; 0 means 1.
	TickInterval float64
	// ConstantActivation enables the E5 ablation.
	ConstantActivation bool
	// RecandidacyTimeout, when positive, lets passive nodes rejoin as
	// candidates after that many message-free local clock units — the
	// opt-in liveness patch for runs whose faults can wedge the election
	// (e.g. a healed partition). See ElectionNodeConfig.RecandidacyTimeout.
	// 0 (the default) keeps the paper's passive-forever rule.
	RecandidacyTimeout float64
	// KeepRunning disables stop-on-leader: the run continues to Horizon,
	// exposing residual traffic and (if the algorithm were wrong) second
	// leaders. Safety experiments use this.
	KeepRunning bool
	// Horizon bounds virtual time; 0 means unbounded.
	Horizon simtime.Time
	// MaxEvents bounds the number of simulation events; 0 means 50e6,
	// a generous livelock guard.
	MaxEvents uint64
	// Seed determines the whole run.
	Seed uint64
	// Scheduler selects the kernel's event-queue implementation by name
	// ("heap", "calendar"); empty means the default heap. Byte-identical
	// runs either way — a performance knob only.
	Scheduler string
	// Tracer optionally observes the run.
	Tracer network.Tracer
	// Faults optionally injects message faults, node churn and link
	// outages (see internal/faults). Nil keeps the run byte-identical to
	// a fault-free build. Runs that can deadlock under loss should also
	// set a finite Horizon.
	Faults *faults.Plan
	// Observe optionally samples a time series during the run (see
	// internal/probe). Sampling runs off the kernel's post-event hook and
	// never perturbs the schedule: the run stays byte-identical to an
	// unobserved one. Nil disables collection.
	Observe *probe.Config
}

// ElectionResult summarises one election run.
type ElectionResult struct {
	// Elected reports whether some node reached the leader state.
	Elected bool
	// LeaderIndex is the simulator-level index of the leader, or -1. It
	// is measurement-only: the protocol itself never sees identities.
	LeaderIndex int
	// Leaders counts nodes in the leader state (must be 1 after a
	// successful election, and is the safety property under test).
	Leaders int
	// Messages is the number of logical message sends.
	Messages uint64
	// Transmissions counts physical transmissions (≥ Messages for ARQ).
	Transmissions uint64
	// Time is the virtual time at which the run ended (for StopOnLeader
	// runs: the election time).
	Time float64
	// Events is the number of kernel events the run executed — the
	// denominator of throughput (events/sec) measurements. A batch of
	// same-instant deliveries counts as one event.
	Events uint64
	// Activations sums idle→active transitions over all nodes.
	Activations int
	// Knockouts sums purged messages over all nodes.
	Knockouts int
	// ResidualPurges counts messages absorbed by the leader.
	ResidualPurges int
	// Recandidacies counts passive→idle transitions via the opt-in
	// re-candidacy timeout (always 0 when the timeout is disabled).
	Recandidacies int
	// StalePurges counts tokens purged for carrying an outdated epoch
	// (always 0 when the re-candidacy timeout is disabled).
	StalePurges int
	// Violations collects invariant violations from all nodes; empty in
	// every correct run.
	Violations []string
	// Params are the tightest ABE parameters of the simulated network.
	Params Params
	// Faults is the fault-injection telemetry, nil unless the config set
	// a fault plan.
	Faults *faults.Telemetry
	// Series is the sampled time series, nil unless the config set
	// Observe.
	Series *probe.Series
}

// electionProbe exposes protocol-level gauges over the live node slice.
// Churn restarts overwrite slots in place, so the gauges always read the
// current incarnation of each node.
type electionProbe struct{ nodes []*ElectionNode }

// ProbeGauges implements probe.Observable.
func (p electionProbe) ProbeGauges() []probe.Gauge {
	count := func(s State) func() float64 {
		return func() float64 {
			n := 0
			for _, node := range p.nodes {
				if node != nil && node.State() == s {
					n++
				}
			}
			return float64(n)
		}
	}
	leaders := count(Leader)
	return []probe.Gauge{
		{Name: "candidates", Read: count(Active)},
		{Name: "passive", Read: count(Passive)},
		{Name: "elected", Read: func() float64 {
			if leaders() > 0 {
				return 1
			}
			return 0
		}},
	}
}

// RunElection builds an anonymous unidirectional ABE ring per cfg and runs
// the paper's election algorithm on it until a leader is elected (or the
// configured bounds are hit).
func RunElection(cfg ElectionConfig) (ElectionResult, error) {
	graph := cfg.Graph
	n := cfg.N
	var sendPorts []int
	if graph != nil {
		if n != 0 && n != graph.N() {
			return ElectionResult{}, fmt.Errorf("core: N = %d disagrees with graph size %d", n, graph.N())
		}
		n = graph.N()
		if n < 2 {
			return ElectionResult{}, fmt.Errorf("core: ring size %d must be at least 2", n)
		}
		ports, err := graph.RingEmbedding()
		if err != nil {
			return ElectionResult{}, fmt.Errorf("core: %w", err)
		}
		sendPorts = ports
	} else {
		if n < 2 {
			return ElectionResult{}, fmt.Errorf("core: ring size %d must be at least 2", n)
		}
		graph = topology.Ring(n)
	}
	links := cfg.Links
	if links == nil {
		delay := cfg.Delay
		if delay == nil {
			delay = dist.NewExponential(1)
		}
		links = channel.RandomDelayFactory(delay)
	}
	if cfg.KeepRunning && cfg.Horizon == 0 {
		return ElectionResult{}, fmt.Errorf("core: KeepRunning requires a finite Horizon (tick timers never quiesce)")
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = simtime.Forever
	}
	maxEvents := cfg.MaxEvents
	if maxEvents == 0 {
		maxEvents = 50_000_000
	}

	nodes := make([]*ElectionNode, n)
	// Fault recovery restarts a node as a fresh instance (churn), but the
	// dead incarnation's measurements — especially any recorded safety
	// violations — must survive into the result, so fold them in before
	// the slot is overwritten.
	var retired ElectionResult
	var buildErr error
	net, err := network.New(network.Config{
		Graph:      graph,
		Links:      links,
		Clocks:     cfg.Clocks,
		Processing: cfg.Processing,
		Seed:       cfg.Seed,
		Scheduler:  cfg.Scheduler,
		Anonymous:  true,
		Tracer:     cfg.Tracer,
		Faults:     cfg.Faults,
	}, func(i int) network.Node {
		if old := nodes[i]; old != nil {
			retired.Activations += old.Activations
			retired.Knockouts += old.Knockouts
			retired.ResidualPurges += old.ResidualPurges
			retired.Recandidacies += old.Recandidacies
			retired.StalePurges += old.StalePurges
			retired.Violations = append(retired.Violations, old.Violations...)
		}
		sendPort := 0
		if sendPorts != nil {
			sendPort = sendPorts[i]
		}
		node, err := NewElectionNode(ElectionNodeConfig{
			RingSize:           n,
			A0:                 cfg.A0,
			TickInterval:       cfg.TickInterval,
			StopOnLeader:       !cfg.KeepRunning,
			ConstantActivation: cfg.ConstantActivation,
			SendPort:           sendPort,
			RecandidacyTimeout: cfg.RecandidacyTimeout,
		})
		if err != nil {
			buildErr = err
			return brokenNode{}
		}
		nodes[i] = node
		return node
	})
	if buildErr != nil {
		return ElectionResult{}, buildErr
	}
	if err != nil {
		return ElectionResult{}, err
	}
	var collector *probe.Collector
	if cfg.Observe != nil {
		collector, err = probe.NewCollector(*cfg.Observe, net, electionProbe{nodes: nodes})
		if err != nil {
			return ElectionResult{}, fmt.Errorf("core: %w", err)
		}
		net.InstallProbe(collector)
	}

	if err := net.Run(horizon, maxEvents); err != nil {
		return ElectionResult{}, err
	}

	res := ElectionResult{
		LeaderIndex:    -1,
		Params:         ParamsOf(net),
		Activations:    retired.Activations,
		Knockouts:      retired.Knockouts,
		ResidualPurges: retired.ResidualPurges,
		Recandidacies:  retired.Recandidacies,
		StalePurges:    retired.StalePurges,
		Violations:     retired.Violations,
	}
	for i, node := range nodes {
		if node.State() == Leader {
			res.Leaders++
			res.LeaderIndex = i
		}
		res.Activations += node.Activations
		res.Knockouts += node.Knockouts
		res.ResidualPurges += node.ResidualPurges
		res.Recandidacies += node.Recandidacies
		res.StalePurges += node.StalePurges
		res.Violations = append(res.Violations, node.Violations...)
	}
	res.Elected = res.Leaders > 0
	m := net.Metrics()
	res.Messages = m.MessagesSent
	res.Transmissions = m.Transmissions
	res.Time = float64(net.Now())
	res.Events = net.Kernel().Executed()
	res.Faults = net.FaultTelemetry()
	if collector != nil {
		collector.Final(net.Now(), net.Kernel().Executed())
		res.Series = collector.Series()
	}
	return res, nil
}

// brokenNode is a placeholder returned while aborting construction; it is
// never run because RunElection returns the construction error first.
type brokenNode struct{}

func (brokenNode) Init(*network.Context)                {}
func (brokenNode) OnMessage(*network.Context, int, any) {}
func (brokenNode) OnTimer(*network.Context, int)        {}
