// Package core implements the paper's two contributions: the ABE network
// model (Definition 1) as machine-checkable parameters, and the
// leader-election algorithm for anonymous unidirectional ABE rings
// (Section 3).
package core

import (
	"errors"
	"fmt"
	"math"

	"abenet/internal/network"
)

// Params are the known bounds that make a network ABE (Bakhshi et al.,
// PODC 2010, Definition 1):
//
//  1. Delta bounds the expected message delay; delays of different
//     messages are stochastically independent.
//  2. SLow and SHigh bound local clock speeds: for every node A and real
//     instants t1 <= t2,
//     SLow·(t2−t1) <= C_A(t2) − C_A(t1) <= SHigh·(t2−t1).
//  3. Gamma bounds the expected time to process a local event.
//
// Note these are *bounds*, not exact values: the paper motivates this by
// networks whose true expected delays vary over time, or differ per link —
// only an upper bound is realistically knowable.
type Params struct {
	Delta float64 // bound on expected message delay, > 0
	SLow  float64 // lower clock-speed bound, > 0
	SHigh float64 // upper clock-speed bound, >= SLow
	Gamma float64 // bound on expected event-processing time, >= 0
}

// DefaultParams is the unit parameterisation used throughout the
// experiments: expected delay at most one time unit, perfect clocks,
// instantaneous processing.
func DefaultParams() Params {
	return Params{Delta: 1, SLow: 1, SHigh: 1, Gamma: 0}
}

// Validate checks the Definition 1 side conditions on the bounds
// themselves.
func (p Params) Validate() error {
	switch {
	case !(p.Delta > 0) || !isFinite(p.Delta):
		return fmt.Errorf("core: δ = %g must be positive and finite", p.Delta)
	case !(p.SLow > 0) || !isFinite(p.SLow):
		return fmt.Errorf("core: s_low = %g must be positive and finite", p.SLow)
	case p.SHigh < p.SLow || !isFinite(p.SHigh):
		return fmt.Errorf("core: s_high = %g must be finite and >= s_low = %g", p.SHigh, p.SLow)
	case p.Gamma < 0 || !isFinite(p.Gamma):
		return fmt.Errorf("core: γ = %g must be non-negative and finite", p.Gamma)
	}
	return nil
}

// Admits reports whether a network with tightest parameters q satisfies the
// declared bounds p (i.e. p is a valid ABE declaration for that network).
func (p Params) Admits(q Params) bool {
	return q.Delta <= p.Delta &&
		q.SLow >= p.SLow &&
		q.SHigh <= p.SHigh &&
		q.Gamma <= p.Gamma
}

// ParamsOf extracts the tightest ABE parameters a built network actually
// satisfies, from its link means, clock model bounds and processing mean.
func ParamsOf(net *network.Network) Params {
	low, high := net.ClockBounds()
	return Params{
		Delta: net.MaxLinkMeanDelay(),
		SLow:  low,
		SHigh: high,
		Gamma: net.ProcessingMean(),
	}
}

// VerifyNetwork checks that the built network net satisfies the declared
// bounds p, returning a descriptive error on the first violation. This is
// Definition 1 as an executable check.
func VerifyNetwork(net *network.Network, p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	q := ParamsOf(net)
	var errs []error
	if q.Delta > p.Delta {
		errs = append(errs, fmt.Errorf("core: worst link mean delay %g exceeds declared δ = %g", q.Delta, p.Delta))
	}
	if q.SLow < p.SLow {
		errs = append(errs, fmt.Errorf("core: clock model lower bound %g below declared s_low = %g", q.SLow, p.SLow))
	}
	if q.SHigh > p.SHigh {
		errs = append(errs, fmt.Errorf("core: clock model upper bound %g exceeds declared s_high = %g", q.SHigh, p.SHigh))
	}
	if q.Gamma > p.Gamma {
		errs = append(errs, fmt.Errorf("core: mean processing time %g exceeds declared γ = %g", q.Gamma, p.Gamma))
	}
	return errors.Join(errs...)
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
