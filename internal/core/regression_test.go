package core

import (
	"testing"
	"testing/quick"

	"abenet/internal/clock"
	"abenet/internal/dist"
)

// TestGoldenRun pins the exact outcome of one fully-specified run. Any
// change to the kernel's event ordering, the RNG stream layout, or the
// protocol rules shows up here first — intentional changes must update
// the constants below *and* say why in the commit.
func TestGoldenRun(t *testing.T) {
	res, err := RunElection(ElectionConfig{N: 8, A0: 0.05, Seed: 12345})
	if err != nil {
		t.Fatal(err)
	}
	if res.Leaders != 1 {
		t.Fatalf("leaders = %d", res.Leaders)
	}
	got := struct {
		leader      int
		messages    uint64
		activations int
	}{res.LeaderIndex, res.Messages, res.Activations}
	if res.Time <= 0 {
		t.Fatal("time not positive")
	}
	// Re-run to establish the pin is at least internally stable.
	res2, err := RunElection(ElectionConfig{N: 8, A0: 0.05, Seed: 12345})
	if err != nil {
		t.Fatal(err)
	}
	if res2.LeaderIndex != got.leader || res2.Messages != got.messages ||
		res2.Activations != got.activations || res2.Time != res.Time {
		t.Fatalf("replay instability: %+v vs %+v", res, res2)
	}
	// The pinned values for this build of the simulator.
	if got.leader != 7 || got.messages != 8 || got.activations != 1 {
		t.Fatalf("golden run changed: leader=%d messages=%d activations=%d (expected 7/8/1)",
			got.leader, got.messages, got.activations)
	}
}

// TestConfigFuzz drives RunElection across a randomised corner of the
// configuration space — extreme A0, heavy tails, strong drift, slow
// processing — and requires the safety invariants to hold everywhere.
func TestConfigFuzz(t *testing.T) {
	delays := []func(mean float64) dist.Dist{
		func(m float64) dist.Dist { return dist.NewDeterministic(m) },
		func(m float64) dist.Dist { return dist.NewExponential(m) },
		func(m float64) dist.Dist { return dist.ParetoWithMean(m, 1.05) }, // near-infinite-mean tail
		func(m float64) dist.Dist { return dist.NewRetransmission(0.1, m/10) },
	}
	clocks := []clock.Model{
		nil,
		clock.NewUniformFixedModel(0.1, 10),
		clock.NewWanderingModel(0.01, 3, 0.2),
	}
	f := func(seed uint64, nRaw, a0Raw, dRaw, cRaw, gRaw uint8) bool {
		n := 2 + int(nRaw)%10
		mean := 0.05 + float64(dRaw)/32
		// Explore aggressiveness c in [0.1, 8] around the principled
		// A0 = c/(n²·δ) scaling. Arbitrary constant A0 with large δ·n²
		// makes the *expected* election time astronomically large (every
		// traversal is interfered with almost surely) — still safe and
		// terminating w.p. 1, but no finite event budget covers it.
		c := 0.1 + 7.9*float64(a0Raw)/255
		a0 := A0ForRing(n, mean, 1, c)
		var proc dist.Dist
		if gRaw%3 == 0 {
			proc = dist.NewExponential(0.2)
		}
		cfg := ElectionConfig{
			N:          n,
			A0:         a0,
			Delay:      delays[int(dRaw)%len(delays)](mean),
			Clocks:     clocks[int(cRaw)%len(clocks)],
			Processing: proc,
			Seed:       seed,
			MaxEvents:  5_000_000,
		}
		res, err := RunElection(cfg)
		if err != nil {
			t.Logf("n=%d a0=%v: %v", n, a0, err)
			return false
		}
		return res.Leaders == 1 && len(res.Violations) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestTickIntervalScaling checks that halving the tick interval (with A0
// rescaled per A0ForRing) preserves correctness and roughly preserves the
// real-time behaviour — the tick grid is a simulation knob, not part of
// the model.
func TestTickIntervalScaling(t *testing.T) {
	const n = 32
	coarse := Sampled(t, ElectionConfig{
		N: n, A0: A0ForRing(n, 1, 1, 1), TickInterval: 1,
	}, 40)
	fine := Sampled(t, ElectionConfig{
		N: n, A0: A0ForRing(n, 1, 0.5, 1), TickInterval: 0.5,
	}, 40)
	if fine < coarse/2 || fine > coarse*2 {
		t.Fatalf("tick rescaling moved mean time from %v to %v", coarse, fine)
	}
}

// Sampled runs cfg over `runs` seeds and returns the mean election time.
func Sampled(t *testing.T, cfg ElectionConfig, runs int) float64 {
	t.Helper()
	total := 0.0
	for seed := 0; seed < runs; seed++ {
		cfg.Seed = uint64(seed)*104729 + 7
		res, err := RunElection(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Leaders != 1 {
			t.Fatalf("seed %d: leaders = %d", seed, res.Leaders)
		}
		total += res.Time
	}
	return total / float64(runs)
}
