package core

import (
	"testing"

	"abenet/internal/faults"
	"abenet/internal/simtime"
)

// TestChurnPreservesRetiredIncarnationCounters pins that measurements
// recorded by a node incarnation that later crashed and restarted are not
// lost from the result: a run whose nodes all crash at t=100 and restart
// must report at least the activations its t=100 prefix had already
// accumulated (the prefix is seed-identical to a run that simply stops at
// t=100, where the pre-crash incarnations are still in place).
func TestChurnPreservesRetiredIncarnationCounters(t *testing.T) {
	base := ElectionConfig{
		N:           4,
		A0:          DefaultA0(4),
		KeepRunning: true,
		Seed:        6,
	}

	prefix := base
	prefix.Horizon = simtime.Time(100)
	before, err := RunElection(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if before.Activations < 1 || !before.Elected {
		t.Fatalf("prefix run should have elected by t=100: %+v", before)
	}

	churned := base
	churned.Horizon = simtime.Time(250)
	churned.Faults = &faults.Plan{Events: []faults.Event{
		faults.CrashAt(100, 0), faults.CrashAt(100, 1),
		faults.CrashAt(100, 2), faults.CrashAt(100, 3),
		faults.RecoverAt(101, 0), faults.RecoverAt(101, 1),
		faults.RecoverAt(101, 2), faults.RecoverAt(101, 3),
	}}
	after, err := RunElection(churned)
	if err != nil {
		t.Fatal(err)
	}
	// The mass restart wiped every live node's counters; only the retired
	// accumulation can carry the prefix's activations into the result.
	if after.Activations < before.Activations {
		t.Fatalf("activations %d < the %d accumulated before the mass crash: retired incarnations were dropped",
			after.Activations, before.Activations)
	}
	if after.Faults == nil || after.Faults.Crashes != 4 || after.Faults.Recoveries != 4 {
		t.Fatalf("telemetry = %+v, want 4 crashes and 4 recoveries", after.Faults)
	}
	if len(after.Violations) != 0 {
		t.Fatalf("violations under clean churn: %v", after.Violations)
	}
}
